#!/usr/bin/env python3
"""Run every bench binary and validate the BENCH_*.json trajectory files.

The experiment set is enumerated explicitly (the seed ships no e9, e10 or
e12 — see docs/benchmarks.md), mirroring bench/bench_json.hpp; a new bench
binary must be added to both lists, which this script cross-checks against
the binaries it actually finds.

Usage:
  tools/run_benches.py --bin-dir build [--out-dir build/bench-json] [--smoke]

--smoke passes --smoke to each binary (tables + JSON only, no
google-benchmark loops); without it the full benchmark suites run too.
"""

import argparse
import json
import pathlib
import subprocess
import sys

# Keep in sync with kExperiments in bench/bench_json.hpp.
EXPERIMENTS = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8",
    "e11", "e13", "e14", "e15", "e16", "e17",
]

RECORD_FIELDS = {
    "instance": str,
    "n": int,
    "m": int,
    "k": int,
    "rounds": int,
    "wall_ns": (int, float),
    "engine": str,
    "max_message_bytes": int,
    # dmm-bench-2: lower-bound pipeline stats (zero / 1 where not applicable).
    "views": int,
    "pairs": int,
    "csp_nodes": int,
    "memo_hits": int,
    "threads": int,
    # dmm-bench-3: memory-model stats (engine setup wall-clock, peak RSS).
    "init_ms": (int, float),
    "rss_bytes": int,
    # dmm-bench-4: colour-symmetry stats (orbit counts and the ~k!-fold cut).
    "orbits": int,
    "orbit_reduction": (int, float),
}


def find_binary(bin_dir: pathlib.Path, experiment: str) -> pathlib.Path:
    matches = sorted(bin_dir.glob(f"bench_{experiment}_*"))
    matches = [m for m in matches if m.is_file() and m.stat().st_mode & 0o111]
    if len(matches) != 1:
        raise SystemExit(
            f"error: expected exactly one bench_{experiment}_* binary in {bin_dir}, "
            f"found {len(matches)}"
        )
    return matches[0]


def validate_scale_row(path: pathlib.Path) -> None:
    """--scale: e14 must carry the n = 10^7 flat-engine row, with the
    memory-model fields populated and init no longer the dominant phase."""
    with path.open() as fh:
        data = json.load(fh)
    rows = [r for r in data["records"] if r["n"] == 10_000_000]
    if not rows:
        raise SystemExit(f"error: {path}: --scale run but no n=10^7 record")
    for row in rows:
        if row["engine"] != "flat":
            raise SystemExit(f"error: {path}: scale row must use the flat engine: {row}")
        if row["init_ms"] <= 0 or row["rss_bytes"] <= 0:
            raise SystemExit(f"error: {path}: scale row missing memory stats: {row}")
        wall_ms = row["wall_ns"] / 1e6
        if row["init_ms"] * 2 > wall_ms:
            raise SystemExit(
                f"error: {path}: init dominates the scale row "
                f"({row['init_ms']:.1f} ms of {wall_ms:.1f} ms) — the pooled "
                f"program arena regressed"
            )
    print(f"scale: e14 n=10^7 row ok ({rows[0]['init_ms']:.1f} ms init, "
          f"{rows[0]['wall_ns'] / 1e6:.1f} ms wall)")


def validate(path: pathlib.Path, experiment: str) -> int:
    with path.open() as fh:
        data = json.load(fh)
    if data.get("schema") != "dmm-bench-4":
        raise SystemExit(f"error: {path}: bad schema {data.get('schema')!r}")
    if data.get("experiment") != experiment:
        raise SystemExit(f"error: {path}: experiment mismatch {data.get('experiment')!r}")
    records = data.get("records")
    if not isinstance(records, list) or not records:
        raise SystemExit(f"error: {path}: no records")
    for record in records:
        for field, kind in RECORD_FIELDS.items():
            if field not in record:
                raise SystemExit(f"error: {path}: record missing field {field!r}: {record}")
            if not isinstance(record[field], kind):
                raise SystemExit(f"error: {path}: field {field!r} has wrong type: {record}")
        if record["wall_ns"] != record["wall_ns"]:  # NaN guard; writer rejects these too
            raise SystemExit(f"error: {path}: NaN wall_ns: {record}")
        if record["orbit_reduction"] != record["orbit_reduction"]:
            raise SystemExit(f"error: {path}: NaN orbit_reduction: {record}")
        if record["orbits"] > 0 and record["orbit_reduction"] < 1:
            raise SystemExit(
                f"error: {path}: orbit record with a reduction below 1x: {record}"
            )
    return len(records)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin-dir", required=True, type=pathlib.Path)
    parser.add_argument("--out-dir", type=pathlib.Path, default=pathlib.Path("bench-json"))
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--scale",
        action="store_true",
        help="bench_scale: add the opt-in n = 10^7 rows (currently e14's greedy "
        "smoke) and validate their memory-model fields (nightly CI leg)",
    )
    args = parser.parse_args()

    args.out_dir.mkdir(parents=True, exist_ok=True)
    total = 0
    for experiment in EXPERIMENTS:
        binary = find_binary(args.bin_dir, experiment)
        cmd = [str(binary), "--json-dir", str(args.out_dir)]
        if args.smoke:
            cmd.append("--smoke")
        if args.scale:
            cmd.append("--scale")  # every harness accepts it; only e14 reacts
        print(f"== {binary.name} {'(smoke)' if args.smoke else ''}", flush=True)
        subprocess.run(cmd, check=True)
        total += validate(args.out_dir / f"BENCH_{experiment}.json", experiment)

    if args.scale:
        validate_scale_row(args.out_dir / "BENCH_e14.json")
    print(f"ok: {len(EXPERIMENTS)} experiments, {total} records in {args.out_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
