#!/usr/bin/env python3
"""Run every bench binary and validate the BENCH_*.json trajectory files.

The experiment set is enumerated explicitly, mirroring
bench/bench_json.hpp (e12, the churn experiment, closed the last
numbering gap — see docs/benchmarks.md); a new bench binary must be
added to both lists, which this script cross-checks against the binaries
it actually finds.

Usage:
  tools/run_benches.py --bin-dir build [--out-dir build/bench-json] [--smoke]
  tools/run_benches.py --compare FILE [FILE ...] --baseline bench/baseline

--smoke passes --smoke to each binary (tables + JSON only, no
google-benchmark loops); without it the full benchmark suites run too.

--baseline DIR turns on the regression gate: every produced (or, with
--compare, explicitly listed) trajectory is diffed against the pinned
BENCH_*.json of the same name in DIR, matching records by the
(instance, engine, threads) triple — e14 records the same instance once
per engine and per worker count, so the instance label alone is not a key.
Counter fields (csp_nodes, reps_generated, the e9 fault/recovery
counters crashes, restarts, messages_dropped, checkpoint_bytes, the
e10 sessions count, and the e12 churn counters churn_ops, repairs,
touched_nodes, recompute_avoided) must be exactly equal, orbit_reduction must agree to
relative tolerance, and restore_ms / send_ms / receive_ms are never gated
(wall measurements), while wall_ns and the e10 tenant latency fields
(tenant_p50_ms, tenant_p99_ms, fairness_ratio) may not exceed the
baseline by more than --wall-factor (checked only when the baseline row
is slow enough to measure reliably).  Any violation fails the run — this
is the CI gate against silent orbit-layer regressions.
"""

import argparse
import json
import pathlib
import subprocess
import sys

# Keep in sync with kExperiments in bench/bench_json.hpp.
EXPERIMENTS = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
    "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17",
]

RECORD_FIELDS = {
    "instance": str,
    "n": int,
    "m": int,
    "k": int,
    "rounds": int,
    "wall_ns": (int, float),
    "engine": str,
    "max_message_bytes": int,
    # dmm-bench-2: lower-bound pipeline stats (zero / 1 where not applicable).
    "views": int,
    "pairs": int,
    "csp_nodes": int,
    "memo_hits": int,
    "threads": int,
    # dmm-bench-3: memory-model stats (engine setup wall-clock, peak RSS).
    "init_ms": (int, float),
    "rss_bytes": int,
    # dmm-bench-4: colour-symmetry stats (orbit counts and the ~k!-fold cut).
    "orbits": int,
    "orbit_reduction": (int, float),
    # dmm-bench-5: orderly-generation stats (canonical reps built).
    "reps_generated": int,
    # dmm-bench-6: fault/recovery stats (e9; zero on fault-free rows).
    "crashes": int,
    "restarts": int,
    "messages_dropped": int,
    "checkpoint_bytes": int,
    "restore_ms": (int, float),
    # dmm-bench-7: session/front-end stats (e10; zero elsewhere).
    "send_ms": (int, float),
    "receive_ms": (int, float),
    "sessions": int,
    "tenant_p50_ms": (int, float),
    "tenant_p99_ms": (int, float),
    "fairness_ratio": (int, float),
    # dmm-bench-8: dynamic-matching stats (e12; zero on churn-free rows).
    "churn_ops": int,
    "repairs": int,
    "touched_nodes": int,
    "recompute_avoided": int,
}

# Fields the --baseline regression gate diffs, with their comparison mode.
# csp_nodes and reps_generated are deterministic counters: any drift is a
# behaviour change, not noise.  orbit_reduction is a ratio of two exact
# counts serialised through %.17g, so a tiny relative tolerance suffices.
# wall_ns is the only genuinely noisy field: it is gated multiplicatively
# and only when the baseline row is slow enough to measure reliably.
WALL_MIN_BASELINE_NS = 5e7  # 50 ms

def compare_records(name: str, current: dict, baseline: dict, wall_factor: float) -> list:
    errors = []
    for field in ("csp_nodes", "reps_generated"):
        if baseline[field] > 0 and current[field] != baseline[field]:
            errors.append(
                f"{name}: {field} changed {baseline[field]} -> {current[field]}"
            )
    # The e9 fault/recovery counters are pure functions of the seeded plan
    # (and checkpoint_bytes of the checkpointed state), so any drift is a
    # behaviour change.  .get keeps pre-dmm-bench-6 baselines (no such
    # fields) valid: absent baseline counters gate against zero, which is
    # what the new writer emits on fault-free rows.
    for field in ("crashes", "restarts", "messages_dropped", "checkpoint_bytes"):
        if current.get(field, 0) != baseline.get(field, 0):
            errors.append(
                f"{name}: {field} changed {baseline.get(field, 0)} -> "
                f"{current.get(field, 0)}"
            )
    # e10: the session count is an exact workload property (tenants x jobs),
    # never a measurement; .get keeps pre-dmm-bench-7 baselines valid.
    if current.get("sessions", 0) != baseline.get("sessions", 0):
        errors.append(
            f"{name}: sessions changed {baseline.get('sessions', 0)} -> "
            f"{current.get('sessions', 0)}"
        )
    # e12: the churn counters are pure functions of (instance, seed) —
    # engine- and thread-independent — so any drift is a repair-logic
    # behaviour change; .get keeps pre-dmm-bench-8 baselines valid.
    for field in ("churn_ops", "repairs", "touched_nodes", "recompute_avoided"):
        if current.get(field, 0) != baseline.get(field, 0):
            errors.append(
                f"{name}: {field} changed {baseline.get(field, 0)} -> "
                f"{current.get(field, 0)}"
            )
    # e10 tenant latency fields are wall measurements: multiplicative band,
    # and only when the baseline row is slow enough to measure reliably
    # (same discipline as wall_ns).
    for field in ("tenant_p50_ms", "tenant_p99_ms"):
        base_ms = baseline.get(field, 0)
        if base_ms * 1e6 >= WALL_MIN_BASELINE_NS and \
                current.get(field, 0) > base_ms * wall_factor:
            errors.append(
                f"{name}: {field} regressed {base_ms:.1f} ms -> "
                f"{current.get(field, 0):.1f} ms (> {wall_factor:g}x)"
            )
    base_fair = baseline.get("fairness_ratio", 0)
    if base_fair > 0 and baseline.get("tenant_p50_ms", 0) * 1e6 >= WALL_MIN_BASELINE_NS \
            and current.get("fairness_ratio", 0) > base_fair * wall_factor:
        errors.append(
            f"{name}: fairness_ratio regressed {base_fair:.2f} -> "
            f"{current.get('fairness_ratio', 0):.2f} (> {wall_factor:g}x)"
        )
    base_red = baseline["orbit_reduction"]
    if base_red > 0:
        drift = abs(current["orbit_reduction"] - base_red) / base_red
        if drift > 1e-9:
            errors.append(
                f"{name}: orbit_reduction changed {base_red} -> "
                f"{current['orbit_reduction']}"
            )
    if baseline["wall_ns"] >= WALL_MIN_BASELINE_NS and \
            current["wall_ns"] > baseline["wall_ns"] * wall_factor:
        errors.append(
            f"{name}: wall regressed {baseline['wall_ns'] / 1e6:.1f} ms -> "
            f"{current['wall_ns'] / 1e6:.1f} ms (> {wall_factor:g}x)"
        )
    return errors


def compare_with_baseline(path: pathlib.Path, baseline_dir: pathlib.Path,
                          wall_factor: float) -> int:
    """Diffs one trajectory against its pinned baseline; returns the number
    of records actually compared.  Baseline-less files pass (a new bench
    needs a later PR to pin it); baseline rows whose instance vanished fail
    (silently dropping a gated row is exactly what the gate is for)."""
    base_path = baseline_dir / path.name
    if not base_path.exists():
        print(f"baseline: {path.name}: no pinned baseline, skipping")
        return 0

    def keyed(records):
        # (instance, engine, threads): e14 emits one row per engine and per
        # worker count for the same instance label, so the label alone
        # would silently collapse rows into one dict entry.
        return {(r["instance"], r["engine"], r["threads"]): r for r in records}

    with path.open() as fh:
        current = keyed(json.load(fh)["records"])
    with base_path.open() as fh:
        baseline = keyed(json.load(fh)["records"])
    errors = []
    compared = 0
    for key, base_row in baseline.items():
        row = current.get(key)
        label = f"{key[0]} [{key[1]} t{key[2]}]"
        if row is None:
            errors.append(f"{path.name}: baseline row {label!r} missing from run")
            continue
        errors.extend(compare_records(f"{path.name}: {label!r}", row, base_row,
                                      wall_factor))
        compared += 1
    if errors:
        raise SystemExit("error: bench regression gate failed:\n  " + "\n  ".join(errors))
    print(f"baseline: {path.name}: {compared} record(s) within tolerance")
    return compared


def find_binary(bin_dir: pathlib.Path, experiment: str) -> pathlib.Path:
    matches = sorted(bin_dir.glob(f"bench_{experiment}_*"))
    matches = [m for m in matches if m.is_file() and m.stat().st_mode & 0o111]
    if len(matches) != 1:
        raise SystemExit(
            f"error: expected exactly one bench_{experiment}_* binary in {bin_dir}, "
            f"found {len(matches)}"
        )
    return matches[0]


def validate_scale_row(path: pathlib.Path) -> None:
    """--scale: e14 must carry the n = 10^7 flat-engine row, with the
    memory-model fields populated and init no longer the dominant phase."""
    with path.open() as fh:
        data = json.load(fh)
    rows = [r for r in data["records"] if r["n"] == 10_000_000]
    if not rows:
        raise SystemExit(f"error: {path}: --scale run but no n=10^7 record")
    for row in rows:
        if row["engine"] != "flat":
            raise SystemExit(f"error: {path}: scale row must use the flat engine: {row}")
        if row["init_ms"] <= 0 or row["rss_bytes"] <= 0:
            raise SystemExit(f"error: {path}: scale row missing memory stats: {row}")
        wall_ms = row["wall_ns"] / 1e6
        if row["init_ms"] * 2 > wall_ms:
            raise SystemExit(
                f"error: {path}: init dominates the scale row "
                f"({row['init_ms']:.1f} ms of {wall_ms:.1f} ms) — the pooled "
                f"program arena regressed"
            )
    print(f"scale: e14 n=10^7 row ok ({rows[0]['init_ms']:.1f} ms init, "
          f"{rows[0]['wall_ns'] / 1e6:.1f} ms wall)")

    # ISSUE 7's skewed scale rows: the 10^6-node hub cluster must be run
    # flat at t=1 and t=8.  The t1/t8 ratio is reported, not gated — it is
    # a property of the runner's core count, not of the code (a 1-CPU
    # runner executes both rows on the same core).
    skewed = {r["threads"]: r for r in data["records"]
              if r["instance"].startswith("hub_cluster") and r["n"] >= 1_000_000}
    if not skewed:
        raise SystemExit(f"error: {path}: --scale run but no skewed hub_cluster record")
    for threads in (1, 8):
        if threads not in skewed:
            raise SystemExit(
                f"error: {path}: skewed scale row missing threads={threads}"
            )
        if skewed[threads]["engine"] != "flat":
            raise SystemExit(f"error: {path}: skewed scale row must be flat: {skewed[threads]}")
    ratio = skewed[1]["wall_ns"] / skewed[8]["wall_ns"]
    print(f"scale: e14 skewed n=10^6 rows ok (flat t1/t8 = {ratio:.2f}x, "
          f"hardware-dependent)")


def validate_orderly_scale_row(path: pathlib.Path) -> None:
    """--scale: e17 must carry the budgeted orderly k=5,rho=3 smoke — the
    rep-generation run past the old raw-view guard."""
    with path.open() as fh:
        data = json.load(fh)
    rows = [r for r in data["records"] if "orderly reps" in r["instance"]]
    if not rows:
        raise SystemExit(f"error: {path}: --scale run but no orderly reps record")
    for row in rows:
        if row["reps_generated"] <= 0 or row["reps_generated"] != row["orbits"]:
            raise SystemExit(f"error: {path}: orderly scale row generated no reps: {row}")
        if row["views"] < row["reps_generated"]:
            raise SystemExit(f"error: {path}: orderly scale row member count bad: {row}")
    print(f"scale: e17 orderly row ok ({rows[0]['reps_generated']} reps covering "
          f"{rows[0]['views']} raw views in {rows[0]['wall_ns'] / 1e6:.1f} ms)")


def validate(path: pathlib.Path, experiment: str) -> int:
    with path.open() as fh:
        data = json.load(fh)
    if data.get("schema") != "dmm-bench-8":
        raise SystemExit(f"error: {path}: bad schema {data.get('schema')!r}")
    if data.get("experiment") != experiment:
        raise SystemExit(f"error: {path}: experiment mismatch {data.get('experiment')!r}")
    records = data.get("records")
    if not isinstance(records, list) or not records:
        raise SystemExit(f"error: {path}: no records")
    for record in records:
        for field, kind in RECORD_FIELDS.items():
            if field not in record:
                raise SystemExit(f"error: {path}: record missing field {field!r}: {record}")
            if not isinstance(record[field], kind):
                raise SystemExit(f"error: {path}: field {field!r} has wrong type: {record}")
        if record["wall_ns"] != record["wall_ns"]:  # NaN guard; writer rejects these too
            raise SystemExit(f"error: {path}: NaN wall_ns: {record}")
        if record["orbit_reduction"] != record["orbit_reduction"]:
            raise SystemExit(f"error: {path}: NaN orbit_reduction: {record}")
        if record["restore_ms"] != record["restore_ms"]:
            raise SystemExit(f"error: {path}: NaN restore_ms: {record}")
        for field in ("send_ms", "receive_ms", "tenant_p50_ms", "tenant_p99_ms",
                      "fairness_ratio"):
            if record[field] != record[field]:
                raise SystemExit(f"error: {path}: NaN {field}: {record}")
        if record["sessions"] < 0:
            raise SystemExit(f"error: {path}: negative sessions: {record}")
        for field in ("churn_ops", "repairs", "touched_nodes", "recompute_avoided"):
            if record[field] < 0:
                raise SystemExit(f"error: {path}: negative {field}: {record}")
        if record["orbits"] > 0 and record["orbit_reduction"] < 1:
            raise SystemExit(
                f"error: {path}: orbit record with a reduction below 1x: {record}"
            )
    return len(records)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin-dir", type=pathlib.Path)
    parser.add_argument("--out-dir", type=pathlib.Path, default=pathlib.Path("bench-json"))
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--scale",
        action="store_true",
        help="bench_scale: add the opt-in scale rows (e14's n = 10^7 greedy "
        "smoke, e17's budgeted orderly k=5,rho=3 rep generation) and "
        "validate them (nightly CI leg)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        help="pinned-baseline directory; every trajectory produced (or listed "
        "via --compare) is diffed against the same-named file there",
    )
    parser.add_argument(
        "--compare",
        nargs="+",
        type=pathlib.Path,
        help="skip running: just diff these BENCH_*.json files against "
        "--baseline (which becomes required)",
    )
    parser.add_argument(
        "--wall-factor",
        type=float,
        default=3.0,
        help="max wall_ns growth over the baseline before the gate fails "
        "(only rows with a >= 50 ms baseline wall are gated; default 3.0)",
    )
    args = parser.parse_args()

    if args.compare:
        if args.baseline is None:
            parser.error("--compare requires --baseline")
        compared = 0
        for path in args.compare:
            compared += compare_with_baseline(path, args.baseline, args.wall_factor)
        print(f"ok: {len(args.compare)} file(s), {compared} record(s) gated")
        return 0

    if args.bin_dir is None:
        parser.error("--bin-dir is required unless --compare is given")
    args.out_dir.mkdir(parents=True, exist_ok=True)
    total = 0
    for experiment in EXPERIMENTS:
        binary = find_binary(args.bin_dir, experiment)
        cmd = [str(binary), "--json-dir", str(args.out_dir)]
        if args.smoke:
            cmd.append("--smoke")
        if args.scale:
            cmd.append("--scale")  # every harness accepts it; only e14 reacts
        print(f"== {binary.name} {'(smoke)' if args.smoke else ''}", flush=True)
        subprocess.run(cmd, check=True)
        total += validate(args.out_dir / f"BENCH_{experiment}.json", experiment)

    if args.scale:
        validate_scale_row(args.out_dir / "BENCH_e14.json")
        validate_orderly_scale_row(args.out_dir / "BENCH_e17.json")
    if args.baseline is not None:
        for experiment in EXPERIMENTS:
            compare_with_baseline(args.out_dir / f"BENCH_{experiment}.json",
                                  args.baseline, args.wall_factor)
    print(f"ok: {len(EXPERIMENTS)} experiments, {total} records in {args.out_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
