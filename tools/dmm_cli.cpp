// dmm_cli — command-line driver for the library.
//
//   dmm_cli greedy     --instance <spec> [--engine <sync|flat>] [--threads <n>]
//                      [--chunk-slots <n>] [--no-steal] [--faults <spec>]
//                      [--checkpoint <path>] [--checkpoint-every <rounds>]
//                      [--max-rounds <n>] [--round-sleep-ms <ms>] [--json]
//   dmm_cli resume     <checkpoint-path> --instance <spec> [greedy options]
//   dmm_cli serve      [--tenants <n>] [--jobs-per-tenant <n>] [--inflight <n>]
//                      [--quantum <n>] [--threads <n>] [--engine <sync|flat>]
//                      [--instance <spec>] [--faults <spec>] [--max-rounds <n>]
//                      [--json]
//   dmm_cli churn      --instance <spec> [--batches <n>] [--ops-per-batch <n>]
//                      [--seed <s>] [--insert-fraction <pct>] [--engine <sync|flat>]
//                      [--threads <n>] [--oracle] [--json]
//   dmm_cli adversary  --k <k> --algorithm <spec> [--certificate-out <path>] [--no-memo]
//                      [--optimistic] [--threads <n>] [--orbits]
//   dmm_cli views      <k> <d> <rho> [--threads <n>] [--json] [--max-views <n>] [--orbits]
//   dmm_cli lemma4     --algorithm <spec>
//   dmm_cli check      --certificate <path> --algorithm <spec>
//   dmm_cli export-dot --instance <spec> [--out <path>]
//
// `views` runs the Remark-2 / Linial pipeline end to end — catalogue size,
// compatible-pair count, CSP verdict — so the UNSAT frontier is
// reproducible without building the bench binaries.  `--orbits` switches
// to the colour-permutation orbit pipeline (identical verdicts, ~k!-fold
// smaller materialised catalogue); on catalogues beyond the max_views
// guard it falls back to the Burnside census alone, which is how
// `dmm_cli views 5 4 3 --orbits` reports the ~2.1e10-view frontier.
//
// Instance specs:
//   chain:<k>            the §1.2 worst-case long path
//   figure1              the Figure-1 style k=4 graph
//   hypercube:<d>        Q_d with dimension colours (d = k trivial case)
//   bipartite:<d>        K_{d,d} with perfect colour classes
//   random:<n>:<k>:<pct>:<seed>
//   star:<leaves>        one hub of degree <leaves> (max 255: Colour is 8-bit)
//   skewed:<hubs>:<deg>:<first>  hub cluster (power-law-style two-point
//                        degree distribution; colours first..first+deg-1)
//   file:<path>          dmm-graph format (see src/io/serialize.hpp)
//
// Algorithm specs:
//   greedy:<k>           the real greedy algorithm (Lemma 1)
//   truncated:<k>:<r>    radius-limited greedy (refuted when r < k-1)
//   firstcolour:<k>      the 0-round heuristic
//   arbitrary:<k>:<r>:<seed>
//
// Fault specs (--faults, docs/faults.md):
//   crash=<p>,down=<a>-<b>,perm=<p>,drop=<p>,horizon=<r>,seed=<s>
// e.g. --faults crash=0.02,down=1-3,perm=0.25,drop=0.01,seed=7.  With
// faults injected the matching may legitimately be broken at crashed
// nodes, so `greedy --faults` exits 0 regardless of the verification
// verdict (the verdict is still printed / emitted in --json).
//
// --checkpoint <path> writes an EngineCheckpoint to <path> every
// --checkpoint-every rounds (default 1), atomically (tmp + rename), so a
// SIGKILL at any moment leaves a loadable file.  `dmm_cli resume <path>
// --instance <spec> ...` continues such a run to completion; given the
// same instance, engine family and --faults spec, the finished run is
// bit-identical to the uninterrupted one (the CI fault-recovery step
// diffs the outputs_fnv of both).  --round-sleep-ms slows the run down
// (sleeping inside the checkpoint sink only) so a kill lands mid-run.
//
// `serve` drives the multi-tenant front-end (svc::MatchingService,
// docs/service.md): it submits --jobs-per-tenant copies of the greedy job
// per tenant, interleaves all sessions on one shared Runtime, and diffs
// every tenant's outputs_fnv against the same job run standalone — the CI
// serve-smoke step asserts `all_match` and exits non-zero on divergence.
#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "core/dmm.hpp"

namespace {

using namespace dmm;

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "dmm_cli: " << message << "\n";
  std::exit(2);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream in(text);
  std::string part;
  while (std::getline(in, part, sep)) parts.push_back(part);
  return parts;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

graph::EdgeColouredGraph parse_instance(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ':');
  if (parts.empty()) fail("empty instance spec");
  if (parts[0] == "chain" && parts.size() == 2) {
    return graph::worst_case_chain(std::stoi(parts[1])).long_path;
  }
  if (parts[0] == "figure1") return graph::figure1_graph();
  if (parts[0] == "hypercube" && parts.size() == 2) {
    return graph::hypercube(std::stoi(parts[1]));
  }
  if (parts[0] == "bipartite" && parts.size() == 2) {
    return graph::complete_bipartite(std::stoi(parts[1]));
  }
  if (parts[0] == "random" && parts.size() == 5) {
    Rng rng(std::stoull(parts[4]));
    return graph::random_coloured_graph(std::stoi(parts[1]), std::stoi(parts[2]),
                                        std::stod(parts[3]) / 100.0, rng);
  }
  if (parts[0] == "star" && parts.size() == 2) {
    return graph::star_graph(std::stoi(parts[1]));
  }
  if (parts[0] == "skewed" && parts.size() == 4) {
    return graph::hub_cluster_graph(std::stoll(parts[1]), std::stoi(parts[2]),
                                    std::stoi(parts[3]));
  }
  if (parts[0] == "file" && parts.size() == 2) {
    return io::read_graph(slurp(parts[1]));
  }
  fail("unknown instance spec '" + spec + "'");
}

std::unique_ptr<local::LocalAlgorithm> parse_algorithm(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ':');
  if (parts.empty()) fail("empty algorithm spec");
  if (parts[0] == "greedy" && parts.size() == 2) {
    return std::make_unique<algo::GreedyLocal>(std::stoi(parts[1]));
  }
  if (parts[0] == "truncated" && parts.size() == 3) {
    return std::make_unique<algo::TruncatedGreedy>(std::stoi(parts[1]), std::stoi(parts[2]));
  }
  if (parts[0] == "firstcolour" && parts.size() == 2) {
    return std::make_unique<algo::FirstColourLocal>(std::stoi(parts[1]));
  }
  if (parts[0] == "arbitrary" && parts.size() == 4) {
    return std::make_unique<algo::ArbitraryLocal>(std::stoi(parts[1]), std::stoi(parts[2]),
                                                  std::stoull(parts[3]));
  }
  fail("unknown algorithm spec '" + spec + "'");
}

std::string option(const std::vector<std::string>& args, const std::string& name,
                   const std::string& fallback = "") {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == name) return args[i + 1];
  }
  return fallback;
}

bool flag(const std::vector<std::string>& args, const std::string& name) {
  for (const std::string& a : args) {
    if (a == name) return true;
  }
  return false;
}

/// FNV-1a over the per-node outputs and halt rounds — the one-line
/// fingerprint the CI fault-recovery step diffs between an interrupted
/// and an uninterrupted run.
std::uint64_t outputs_fnv(const local::RunResult& run) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const local::Colour c : run.outputs) mix(c);
  for (const int r : run.halt_round) mix(static_cast<std::uint32_t>(r));
  return h;
}

/// Atomic AND durable checkpoint write.  The tmp + rename pair covers a
/// SIGKILL between any two instructions (the old complete file or the new
/// one, never a torn frame); durability against power loss additionally
/// needs the tmp file fsynced before the rename (or the rename can land
/// pointing at not-yet-flushed data) and the parent directory fsynced
/// after it (or the rename itself can be lost).  A frame that does slip
/// through torn is still caught at load time by the checksum
/// (io::CorruptFrameError) — that path detects the damage, this one
/// prevents it.
void write_checkpoint_file(const local::EngineCheckpoint& ck, const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::ostringstream buffer(std::ios::binary);
  ck.write(buffer);
  const std::string bytes = buffer.str();
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open checkpoint file " + tmp);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      ::close(fd);
      fail("cannot write checkpoint file " + tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("cannot fsync checkpoint file " + tmp);
  }
  if (::close(fd) != 0) fail("cannot close checkpoint file " + tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    fail("cannot move checkpoint into place at " + path);
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd < 0) fail("cannot open checkpoint directory " + dir);
  if (::fsync(dirfd) != 0) {
    ::close(dirfd);
    fail("cannot fsync checkpoint directory " + dir);
  }
  ::close(dirfd);
}

/// Shared body of `greedy` and `resume <path>`: run greedy on the chosen
/// engine with optional fault injection and checkpointing.
int run_greedy(const std::vector<std::string>& args, const std::string& resume_path) {
  const char* cmd = resume_path.empty() ? "greedy" : "resume";
  const std::string spec = option(args, "--instance");
  if (spec.empty()) fail(std::string(cmd) + ": --instance required");
  const std::string engine_spec = option(args, "--engine", "sync");
  const auto engine = local::parse_engine_kind(engine_spec);
  if (!engine) fail(std::string(cmd) + ": unknown engine '" + engine_spec + "' (sync|flat)");
  const int threads = std::stoi(option(args, "--threads", "1"));
  if (threads > 1 && *engine != local::EngineKind::kFlat) {
    fail(std::string(cmd) + ": --threads requires --engine flat");
  }
  // Scheduling knobs of the flat engine's persistent pool (results are
  // identical for every setting; these tune throughput on skewed graphs).
  const long chunk_slots = std::stol(option(args, "--chunk-slots", "0"));
  if (chunk_slots < 0) fail(std::string(cmd) + ": --chunk-slots must be >= 0");
  const bool no_steal = flag(args, "--no-steal");
  if ((chunk_slots > 0 || no_steal) && *engine != local::EngineKind::kFlat) {
    fail(std::string(cmd) + ": --chunk-slots/--no-steal require --engine flat");
  }
  const graph::EdgeColouredGraph g = parse_instance(spec);

  // Fault injection: the plan is seeded and schedule-independent, so the
  // same --faults spec names the same plan on both engines and across a
  // kill/resume boundary.
  local::FaultPlan plan;
  const std::string fault_spec = option(args, "--faults");
  if (!fault_spec.empty()) {
    plan = local::FaultPlan::random(g, local::parse_fault_spec(fault_spec));
  }
  const local::FaultOptions faults{&plan};

  // A restarted node still has to finish its protocol, so faulty runs get
  // headroom past the last restart round by default.
  int max_rounds = std::max(g.k() + 1, plan.max_restart_round() + g.k() + 2);
  const std::string max_rounds_opt = option(args, "--max-rounds");
  if (!max_rounds_opt.empty()) max_rounds = std::stoi(max_rounds_opt);

  local::CheckpointOptions checkpoint;
  const std::string ckpt_path = option(args, "--checkpoint", resume_path);
  const int sleep_ms = std::stoi(option(args, "--round-sleep-ms", "0"));
  if (!ckpt_path.empty()) {
    checkpoint.every = std::stoi(option(args, "--checkpoint-every", "1"));
    if (checkpoint.every < 1) fail(std::string(cmd) + ": --checkpoint-every must be >= 1");
    checkpoint.sink = [&](const local::EngineCheckpoint& ck) {
      if (sleep_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      write_checkpoint_file(ck, ckpt_path);
    };
  } else if (sleep_ms > 0) {
    fail(std::string(cmd) + ": --round-sleep-ms requires --checkpoint");
  }

  local::EngineCheckpoint restored;
  if (!resume_path.empty()) {
    std::ifstream in(resume_path, std::ios::binary);
    if (!in) fail("resume: cannot read " + resume_path);
    restored = local::EngineCheckpoint::read(in);
    restored.require_matches(g);  // a wrong --instance fails here, loudly
    checkpoint.resume = &restored;
  }

  local::RunResult run;
  if (*engine == local::EngineKind::kFlat) {
    local::FlatEngineOptions options;
    options.threads = threads;
    options.chunk_slots = static_cast<std::size_t>(chunk_slots);
    options.steal = !no_steal;
    run = local::run_flat(g, algo::greedy_program_factory(), max_rounds, options, faults,
                          checkpoint);
  } else {
    run = local::run_sync(g, algo::greedy_program_factory(), max_rounds, faults, checkpoint);
  }
  const verify::MatchingReport report = verify::check_outputs(g, run.outputs);
  const std::size_t matched = verify::matched_edges(g, run.outputs).size();
  if (flag(args, "--json")) {
    char fnv[32];
    std::snprintf(fnv, sizeof fnv, "%016llx",
                  static_cast<unsigned long long>(outputs_fnv(run)));
    std::cout << "{\"instance\":\"" << spec << "\",\"engine\":\""
              << local::engine_kind_name(*engine) << "\",\"threads\":" << threads
              << ",\"rounds\":" << run.rounds << ",\"matched_edges\":" << matched
              << ",\"crashes\":" << run.crashes << ",\"restarts\":" << run.restarts
              << ",\"messages_dropped\":" << run.messages_dropped
              << ",\"valid\":" << (report.ok() ? "true" : "false") << ",\"outputs_fnv\":\""
              << fnv << "\"}\n";
  } else {
    std::cout << "instance: " << spec << " (n=" << g.node_count() << ", k=" << g.k() << ")\n";
    std::cout << "engine: " << local::engine_kind_name(*engine);
    if (threads > 1) std::cout << " (threads=" << threads << ")";
    std::cout << "\n";
    if (!resume_path.empty()) {
      std::cout << "resumed: " << resume_path << " (rounds 1.." << restored.round
                << " already complete)\n";
    }
    std::cout << "rounds: " << run.rounds << " (bound k-1 = " << g.k() - 1 << ")\n";
    if (!plan.empty()) {
      std::cout << "faults: " << run.crashes << " crash(es), " << run.restarts
                << " restart(s), " << run.messages_dropped << " message(s) dropped\n";
    }
    std::cout << "matched edges: " << matched << "\n";
    std::cout << "max message: " << run.max_message_bytes << " byte(s)\n";
    std::cout << "verification: " << report.describe() << "\n";
  }
  // Crashed nodes legitimately break the matching at their edges, so a
  // faulty run reports the verdict but does not fail on it.
  if (!plan.empty()) return 0;
  return report.ok() ? 0 : 1;
}

int cmd_greedy(const std::vector<std::string>& args) { return run_greedy(args, ""); }

int cmd_resume(const std::vector<std::string>& args) {
  if (args.empty() || args[0].rfind("--", 0) == 0) {
    fail("resume: usage: resume <checkpoint-path> --instance <spec> [greedy options]");
  }
  return run_greedy({args.begin() + 1, args.end()}, args[0]);
}

/// Multi-tenant front-end driver: N tenants × J greedy jobs through one
/// MatchingService, every result fingerprinted against the standalone run.
int cmd_serve(const std::vector<std::string>& args) {
  const int tenants = std::stoi(option(args, "--tenants", "3"));
  const int jobs_per_tenant = std::stoi(option(args, "--jobs-per-tenant", "4"));
  if (tenants < 1 || jobs_per_tenant < 1) {
    fail("serve: --tenants and --jobs-per-tenant must be >= 1");
  }
  const std::string engine_spec = option(args, "--engine", "flat");
  const auto engine = local::parse_engine_kind(engine_spec);
  if (!engine) fail("serve: unknown engine '" + engine_spec + "' (sync|flat)");
  const std::string spec = option(args, "--instance", "random:600:4:70:1");
  const graph::EdgeColouredGraph g = parse_instance(spec);

  local::FaultPlan plan;
  const std::string fault_spec = option(args, "--faults");
  if (!fault_spec.empty()) {
    plan = local::FaultPlan::random(g, local::parse_fault_spec(fault_spec));
  }
  int max_rounds = std::max(g.k() + 1, plan.max_restart_round() + g.k() + 2);
  const std::string max_rounds_opt = option(args, "--max-rounds");
  if (!max_rounds_opt.empty()) max_rounds = std::stoi(max_rounds_opt);

  // The oracle: the same job run standalone (closed-loop, private engine).
  local::RunOptions ropts;
  ropts.max_rounds = max_rounds;
  if (!plan.empty()) ropts.faults.plan = &plan;
  const local::RunResult standalone =
      local::run(*engine, g, algo::greedy_program_factory(), ropts);
  const std::uint64_t want = outputs_fnv(standalone);

  svc::ServiceOptions opts;
  opts.inflight = std::stoi(option(args, "--inflight", "8"));
  opts.quantum = std::stoi(option(args, "--quantum", "4"));
  opts.threads = std::stoi(option(args, "--threads", "2"));
  svc::MatchingService service(opts);

  std::vector<std::vector<std::future<local::RunResult>>> futures(
      static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    std::vector<svc::Job> jobs(static_cast<std::size_t>(jobs_per_tenant));
    for (svc::Job& job : jobs) {
      job.graph = g;
      job.source = algo::greedy_program_factory();
      job.max_rounds = max_rounds;
      job.engine = *engine;
      job.faults = plan;
    }
    futures[static_cast<std::size_t>(t)] =
        service.submit_batch("tenant-" + std::to_string(t), std::move(jobs));
  }

  std::vector<std::uint64_t> tenant_fnv(static_cast<std::size_t>(tenants), 0);
  std::vector<bool> tenant_match(static_cast<std::size_t>(tenants), true);
  bool all_match = true;
  for (int t = 0; t < tenants; ++t) {
    for (auto& future : futures[static_cast<std::size_t>(t)]) {
      const std::uint64_t got = outputs_fnv(future.get());
      tenant_fnv[static_cast<std::size_t>(t)] = got;
      if (got != want) {
        tenant_match[static_cast<std::size_t>(t)] = false;
        all_match = false;
      }
    }
  }
  const svc::ServiceStats stats = service.stats();

  char want_hex[32];
  std::snprintf(want_hex, sizeof want_hex, "%016llx",
                static_cast<unsigned long long>(want));
  if (flag(args, "--json")) {
    std::cout << "{\"instance\":\"" << spec << "\",\"engine\":\""
              << local::engine_kind_name(*engine) << "\",\"tenants\":" << tenants
              << ",\"jobs_per_tenant\":" << jobs_per_tenant
              << ",\"inflight\":" << opts.inflight << ",\"quantum\":" << opts.quantum
              << ",\"threads\":" << opts.threads << ",\"sessions\":" << stats.sessions
              << ",\"pool_spawns\":" << stats.pool_spawns
              << ",\"threads_spawned\":" << stats.threads_spawned
              << ",\"fairness_ratio\":" << stats.fairness_ratio << ",\"standalone_fnv\":\""
              << want_hex << "\",\"tenant\":[";
    for (int t = 0; t < tenants; ++t) {
      char fnv[32];
      std::snprintf(fnv, sizeof fnv, "%016llx",
                    static_cast<unsigned long long>(tenant_fnv[static_cast<std::size_t>(t)]));
      if (t > 0) std::cout << ",";
      std::cout << "{\"tenant\":\"tenant-" << t << "\",\"outputs_fnv\":\"" << fnv
                << "\",\"match\":"
                << (tenant_match[static_cast<std::size_t>(t)] ? "true" : "false") << "}";
    }
    std::cout << "],\"all_match\":" << (all_match ? "true" : "false") << "}\n";
  } else {
    std::cout << "instance: " << spec << " (n=" << g.node_count() << ", k=" << g.k()
              << ")\n";
    std::cout << "service: " << tenants << " tenant(s) x " << jobs_per_tenant
              << " job(s), engine " << local::engine_kind_name(*engine) << ", inflight "
              << opts.inflight << ", quantum " << opts.quantum << ", threads "
              << opts.threads << "\n";
    std::cout << "sessions: " << stats.sessions << " (pool spawns: " << stats.pool_spawns
              << ", threads spawned: " << stats.threads_spawned << ")\n";
    std::cout << "fairness ratio: " << stats.fairness_ratio << "\n";
    for (const svc::TenantStats& t : stats.tenants) {
      std::cout << "  " << t.tenant << ": completed " << t.completed << ", steps "
                << t.steps << ", p50 " << t.p50_ms << " ms, p99 " << t.p99_ms << " ms\n";
    }
    std::cout << "standalone fnv: " << want_hex << "\n";
    std::cout << "all tenants match standalone: " << (all_match ? "yes" : "NO") << "\n";
  }
  return all_match ? 0 : 1;
}

/// Dynamic maximal matching under churn (docs/dynamic.md): seeded batched
/// insert/delete stream, incremental repair, per-batch verification —
/// with --oracle also against a recompute-from-scratch greedy run.  Exits
/// non-zero on ANY maximality violation, which is what makes it a CI
/// smoke: a repair bug cannot hide behind the summary text.
int cmd_churn(const std::vector<std::string>& args) {
  const std::string spec = option(args, "--instance");
  if (spec.empty()) fail("churn: --instance required");
  const std::string engine_spec = option(args, "--engine", "sync");
  const auto engine = local::parse_engine_kind(engine_spec);
  if (!engine) fail("churn: unknown engine '" + engine_spec + "' (sync|flat)");
  const int threads = std::stoi(option(args, "--threads", "1"));
  if (threads > 1 && *engine != local::EngineKind::kFlat) {
    fail("churn: --threads requires --engine flat");
  }
  dyn::ChurnSpec churn_spec;
  churn_spec.batches = std::stoi(option(args, "--batches", "8"));
  churn_spec.ops_per_batch = std::stoi(option(args, "--ops-per-batch", "16"));
  churn_spec.seed = std::stoull(option(args, "--seed", "0"));
  churn_spec.insert_fraction = std::stod(option(args, "--insert-fraction", "50")) / 100.0;
  const bool oracle = flag(args, "--oracle");

  const graph::EdgeColouredGraph g = parse_instance(spec);
  const dyn::ChurnPlan plan = dyn::ChurnPlan::random(g, churn_spec);
  dyn::MatcherOptions mopts;
  mopts.engine = *engine;
  mopts.threads = threads;
  dyn::DynamicMatcher matcher(g, mopts);
  plan.require_applies(g);

  int bad_batches = 0;
  for (std::size_t b = 0; b < plan.batches().size(); ++b) {
    matcher.apply(plan.batches()[b]);
    const verify::MatchingReport incremental = matcher.check();
    bool batch_ok = incremental.ok();
    if (oracle) {
      const std::vector<local::Colour> recomputed = matcher.recompute();
      const verify::MatchingReport oracle_report =
          verify::check_outputs(matcher.graph(), recomputed);
      batch_ok = batch_ok && oracle_report.ok();
      if (!oracle_report.ok()) {
        std::cerr << "churn: batch " << b << " ORACLE invalid:\n" << oracle_report.describe();
      }
    }
    if (!incremental.ok()) {
      std::cerr << "churn: batch " << b << " incremental matching invalid:\n"
                << incremental.describe();
    }
    if (!batch_ok) ++bad_batches;
  }
  const dyn::RepairStats& stats = matcher.stats();
  const std::size_t matched =
      verify::matched_edges(matcher.graph(), matcher.outputs()).size();
  if (flag(args, "--json")) {
    std::cout << "{\"instance\":\"" << spec << "\",\"engine\":\""
              << local::engine_kind_name(*engine) << "\",\"threads\":" << threads
              << ",\"seed\":" << churn_spec.seed << ",\"batches\":" << stats.batches
              << ",\"inserts\":" << stats.inserts << ",\"deletes\":" << stats.deletes
              << ",\"repairs\":" << stats.repairs
              << ",\"touched_nodes\":" << stats.touched_nodes
              << ",\"recompute_avoided\":" << stats.recompute_avoided
              << ",\"matched_edges\":" << matched << ",\"final_edges\":"
              << matcher.graph().edge_count() << ",\"oracle\":" << (oracle ? "true" : "false")
              << ",\"valid\":" << (bad_batches == 0 ? "true" : "false") << "}\n";
  } else {
    std::cout << "instance: " << spec << " (n=" << g.node_count() << ", k=" << g.k()
              << ", edges " << g.edge_count() << " -> " << matcher.graph().edge_count()
              << ")\n";
    std::cout << "churn: " << stats.batches << " batch(es), " << stats.inserts
              << " insert(s), " << stats.deletes << " delete(s), seed " << churn_spec.seed
              << "\n";
    std::cout << "repairs: " << stats.repairs << " (touched " << stats.touched_nodes
              << " node(s), recompute avoided " << stats.recompute_avoided
              << " node-visits)\n";
    std::cout << "matched edges: " << matched << "\n";
    if (bad_batches == 0) {
      std::cout << "verification: valid maximal matching after every batch"
                << (oracle ? " (oracle cross-checked)" : "") << "\n";
    } else {
      std::cout << "verification: " << bad_batches << " batch(es) INVALID\n";
    }
  }
  return bad_batches == 0 ? 0 : 1;
}

int cmd_adversary(const std::vector<std::string>& args) {
  const int k = std::stoi(option(args, "--k", "0"));
  const std::string algo_spec = option(args, "--algorithm");
  if (k < 3 || algo_spec.empty()) fail("adversary: --k (>= 3) and --algorithm required");
  const auto algorithm = parse_algorithm(algo_spec);
  lower::AdversaryOptions options;
  options.memoise = !flag(args, "--no-memo");
  options.optimistic = flag(args, "--optimistic");
  options.threads = std::stoi(option(args, "--threads", "1"));
  options.orbits = flag(args, "--orbits");
  const lower::LowerBoundResult result = lower::run_adversary(k, *algorithm, options);
  std::cout << result.summary() << "\n";
  if (const auto* tp = std::get_if<lower::TightPair>(&result.outcome)) {
    const std::string pair_prefix = option(args, "--pair-out");
    if (!pair_prefix.empty()) {
      std::ofstream(pair_prefix + ".U.txt") << io::write_template(tp->u);
      std::ofstream(pair_prefix + ".V.txt") << io::write_template(tp->v);
      std::ofstream(pair_prefix + ".U.dot") << io::to_dot(tp->u, tp->d);
      std::ofstream(pair_prefix + ".V.dot") << io::to_dot(tp->v, tp->d);
      std::cout << "tight pair written to " << pair_prefix << ".{U,V}.{txt,dot}\n";
    }
  }
  if (const auto* cert = std::get_if<lower::Certificate>(&result.outcome)) {
    const std::string out_path = option(args, "--certificate-out");
    if (!out_path.empty()) {
      std::ofstream out(out_path);
      out << io::write_certificate(*cert);
      std::cout << "certificate written to " << out_path << "\n";
    }
    return 1;  // refuted: report non-zero so scripts can branch
  }
  return result.tight() ? 0 : 3;
}

int cmd_views(const std::vector<std::string>& args) {
  // Positional k d rho, then flags.
  std::vector<int> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].rfind("--", 0) == 0) {
      if (args[i] != "--json" && args[i] != "--orbits") ++i;  // skip the flag's value
      continue;
    }
    positional.push_back(std::stoi(args[i]));
  }
  if (positional.size() != 3) {
    fail("views: usage: views <k> <d> <rho> [--threads N] [--json] [--orbits]");
  }
  const int k = positional[0], d = positional[1], rho = positional[2];
  const int threads = std::stoi(option(args, "--threads", "1"));
  const int max_views = std::stoi(option(args, "--max-views", "2000000"));
  const bool json = flag(args, "--json");
  const bool orbits = flag(args, "--orbits");

  long long views = 0, orbit_count = 0;
  std::size_t pair_count = 0;
  nbhd::CspResult result;
  nbhd::OrbitGenStats gen;
  bool census_only = false;
  if (orbits) {
    const nbhd::OrbitCensus census = nbhd::orbit_census(k, d, rho);
    views = static_cast<long long>(census.views);
    orbit_count = static_cast<long long>(census.orbits);
    if (census.orbits > static_cast<double>(max_views)) {
      // Orderly generation guards on reps generated, not raw views, so
      // only a catalogue whose *orbit* count exceeds the guard falls back
      // to the Burnside census alone.
      census_only = true;
    } else {
      const nbhd::OrbitCatalogue cat = nbhd::enumerate_orbits(k, d, rho, max_views, &gen);
      const std::vector<nbhd::CompatiblePair> pairs = nbhd::compatible_pairs(cat);
      result = nbhd::solve(cat, pairs, nbhd::CspOptions{.threads = threads});
      pair_count = pairs.size();
    }
  } else {
    const nbhd::ViewCatalogue cat = nbhd::enumerate_views(k, d, rho, max_views);
    const std::vector<nbhd::CompatiblePair> pairs = nbhd::compatible_pairs(cat);
    result = nbhd::solve(cat, pairs, {.threads = threads});
    views = cat.size();
    pair_count = pairs.size();
  }
  if (json) {
    std::cout << "{\"k\":" << k << ",\"d\":" << d << ",\"rho\":" << rho
              << ",\"views\":" << views;
    if (orbits) {
      std::cout << ",\"orbits\":" << orbit_count;
    }
    if (census_only) {
      std::cout << ",\"census_only\":true";
    } else {
      if (orbits) {
        std::cout << ",\"reps_generated\":" << gen.reps_generated
                  << ",\"raw_views_avoided\":" << views - gen.views_replayed;
      }
      std::cout << ",\"pairs\":" << pair_count
                << ",\"satisfiable\":" << (result.satisfiable ? "true" : "false")
                << ",\"csp_nodes\":" << result.nodes_explored;
    }
    std::cout << ",\"threads\":" << threads << "}\n";
  } else {
    std::cout << "catalogue: k=" << k << " d=" << d << " rho=" << rho << "\n";
    std::cout << "views: " << views << "\n";
    if (orbits) {
      std::cout << "colour-permutation orbits: " << orbit_count << " ("
                << static_cast<double>(views) / static_cast<double>(orbit_count)
                << "x reduction)\n";
    }
    if (census_only) {
      std::cout << "orbit catalogue exceeds max-views: Burnside census only (no CSP solve)\n";
    } else {
      if (orbits) {
        std::cout << "orderly generation: " << gen.reps_generated << " reps, "
                  << views - gen.views_replayed << " raw views never built\n";
      }
      std::cout << "compatible pairs: " << pair_count << "\n";
      std::cout << "labelling CSP: " << (result.satisfiable ? "SAT" : "UNSAT") << " ("
                << result.nodes_explored << " search nodes";
      if (threads > 1) std::cout << ", " << threads << " threads";
      std::cout << ")\n";
      std::cout << "meaning: " << (result.satisfiable ? "some" : "no") << " (rho-1) = "
                << rho - 1 << "-round algorithm exists on d-regular k-coloured instances\n";
    }
  }
  if (census_only) return 0;
  return result.satisfiable ? 0 : 1;
}

int cmd_lemma4(const std::vector<std::string>& args) {
  const std::string algo_spec = option(args, "--algorithm");
  if (algo_spec.empty()) fail("lemma4: --algorithm required");
  const auto algorithm = parse_algorithm(algo_spec);
  const lower::Lemma4Result result = lower::run_lemma4(*algorithm);
  std::cout << result.summary << "\n";
  if (result.contradiction_found) {
    std::cout << "violated instance:\n" << io::write_graph(result.instance);
    return 1;
  }
  return 0;
}

int cmd_check(const std::vector<std::string>& args) {
  const std::string cert_path = option(args, "--certificate");
  const std::string algo_spec = option(args, "--algorithm");
  if (cert_path.empty() || algo_spec.empty()) fail("check: --certificate and --algorithm required");
  const lower::Certificate cert = io::read_certificate(slurp(cert_path));
  const auto algorithm = parse_algorithm(algo_spec);
  lower::Evaluator eval(*algorithm);
  const bool holds = lower::certificate_holds(cert, eval);
  std::cout << "certificate: " << cert.describe() << "\n";
  std::cout << "re-check against " << algorithm->name() << ": " << (holds ? "HOLDS" : "does not hold")
            << "\n";
  return holds ? 0 : 1;
}

int cmd_export_dot(const std::vector<std::string>& args) {
  const std::string spec = option(args, "--instance");
  if (spec.empty()) fail("export-dot: --instance required");
  const graph::EdgeColouredGraph g = parse_instance(spec);
  const std::string dot = io::to_dot(g);
  const std::string out_path = option(args, "--out");
  if (out_path.empty()) {
    std::cout << dot;
  } else {
    std::ofstream out(out_path);
    out << dot;
    std::cout << "dot written to " << out_path << "\n";
  }
  return 0;
}

void usage() {
  std::cout << "usage: dmm_cli <greedy|resume|serve|churn|adversary|views|lemma4|check|"
               "export-dot> [options]\n"
               "see the header of tools/dmm_cli.cpp for specs\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "greedy") return cmd_greedy(args);
    if (command == "resume") return cmd_resume(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "churn") return cmd_churn(args);
    if (command == "adversary") return cmd_adversary(args);
    if (command == "views") return cmd_views(args);
    if (command == "lemma4") return cmd_lemma4(args);
    if (command == "check") return cmd_check(args);
    if (command == "export-dot") return cmd_export_dot(args);
  } catch (const std::exception& e) {
    fail(e.what());
  }
  usage();
  return 2;
}
