// Quickstart: build a properly edge-coloured graph, run the greedy maximal
// matching algorithm (Lemma 1) through the message-passing engine, verify
// the output against the paper's (M1)(M2)(M3) conditions.
//
//   $ ./examples/quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/dmm.hpp"

int main(int argc, char** argv) {
  using namespace dmm;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const int n = 24, k = 4;
  Rng rng(seed);

  std::cout << "== dmm quickstart ==\n";
  std::cout << "random properly " << k << "-edge-coloured graph on " << n
            << " nodes (seed " << seed << ")\n\n";

  const graph::EdgeColouredGraph g = graph::random_coloured_graph(n, k, 0.8, rng);
  std::cout << g.str() << "\n";

  // Run greedy as a real distributed protocol: synchronous rounds, anonymous
  // nodes, messages along coloured edges.
  const local::RunResult run = local::run_sync(g, algo::greedy_program_factory(), k + 1);

  std::cout << "outputs (node: colour or _ for unmatched):\n  ";
  for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
    const gk::Colour c = run.outputs[static_cast<std::size_t>(v)];
    std::cout << v << ":" << (c == local::kUnmatched ? std::string("_") : std::to_string(c))
              << " ";
  }
  std::cout << "\n\nrounds used: " << run.rounds << "  (Lemma 1 bound: k-1 = " << k - 1 << ")\n";

  const verify::MatchingReport report = verify::check_outputs(g, run.outputs);
  std::cout << "verification: " << report.describe() << "\n";
  std::cout << "matched edges: " << verify::matched_edges(g, run.outputs).size() << " of "
            << g.edge_count() << "\n";
  return report.ok() ? 0 : 1;
}
