// Remark 2, hands on: enumerate the view catalogue, display the
// neighbourhood graph, and watch the labelling CSP separate "impossible"
// from "greedy does it".
//
//   $ ./examples/neighbourhood [k]
#include <cstdlib>
#include <iostream>

#include "core/dmm.hpp"

int main(int argc, char** argv) {
  using namespace dmm;

  const int k = argc > 1 ? std::atoi(argv[1]) : 3;
  const int d = k - 1;
  if (k < 3 || k > 4) {
    std::cerr << "k must be 3 or 4 (catalogue sizes explode beyond that)\n";
    return 1;
  }

  std::cout << "== the (r+1)-view catalogues for d = k-1 = " << d << "-regular " << k
            << "-colour systems ==\n\n";
  const int max_rho = k == 3 ? 3 : 2;
  for (int rho = 1; rho <= max_rho; ++rho) {
    const nbhd::ViewCatalogue cat = nbhd::enumerate_views(k, d, rho);
    const auto pairs = nbhd::compatible_pairs(cat);
    const nbhd::CspResult result = nbhd::solve(cat);
    std::cout << "rho = " << rho << " (algorithms with r = " << rho - 1 << " rounds): "
              << cat.size() << " views, " << pairs.size() << " compatible pairs -> "
              << (result.satisfiable ? "labelling EXISTS" : "NO labelling (no such algorithm)")
              << "\n";
    if (rho == 1) {
      std::cout << "  the views are the root colour sets:\n";
      for (int v = 0; v < cat.size(); ++v) {
        std::cout << "    view " << v << ": { ";
        for (gk::Colour c : cat.views[static_cast<std::size_t>(v)].colours_at(0)) {
          std::cout << static_cast<int>(c) << " ";
        }
        std::cout << "}\n";
      }
    }
  }

  if (k == 3) {
    std::cout << "\n== rho = k = 3: greedy's own labelling solves the CSP ==\n";
    const nbhd::ViewCatalogue cat = nbhd::enumerate_views(3, 2, 3);
    const algo::GreedyLocal greedy(3);
    const auto labelling = nbhd::induced_labelling(cat, greedy);
    const auto violation = nbhd::check_labelling(cat, labelling);
    std::cout << (violation ? "violated (bug!)" : "all (M1)(M2)(M3) constraints satisfied")
              << " across " << cat.size() << " views\n";
    int matched = 0;
    for (gk::Colour c : labelling) {
      if (c != gk::kNoColour) ++matched;
    }
    std::cout << matched << "/" << cat.size() << " views matched, " << cat.size() - matched
              << " answer bottom\n";
  }

  std::cout << "\nThe UNSAT rows are Theorem 5 in universal form — not 'this algorithm\n"
               "fails' but 'no labelling of what r rounds can see is consistent'.\n";
  return 0;
}
