// The §1.1/§1.3 algorithmic landscape on one screen: greedy vs
// reduction-based matching as k grows (the Θ(Δ + log* k) shape), the
// trivial d = k case, Cole-Vishkin's log*, and maximal edge packing.
//
//   $ ./examples/landscape
#include <iomanip>
#include <iostream>

#include "core/dmm.hpp"

int main() {
  using namespace dmm;

  std::cout << "== greedy (k-1 rounds) vs reduction+greedy (O(Delta^2 + log* k)) on paths ==\n";
  std::cout << std::setw(6) << "k" << std::setw(14) << "greedy" << std::setw(14) << "reduced"
            << std::setw(10) << "log* k" << "\n";
  for (int k : {4, 8, 16, 32, 64, 128, 200}) {
    std::vector<gk::Colour> colours;
    for (int c = 1; c <= k; ++c) colours.push_back(static_cast<gk::Colour>(c));
    const graph::EdgeColouredGraph g = graph::path_graph(k, colours);
    const local::RunResult greedy_run = local::run_sync(g, algo::greedy_program_factory(), k + 1);
    const algo::ReducedMatchingResult reduced = algo::reduced_matching(g);
    std::cout << std::setw(6) << k << std::setw(14) << greedy_run.rounds << std::setw(14)
              << reduced.total_rounds << std::setw(10) << log_star(static_cast<std::uint64_t>(k))
              << "\n";
  }

  std::cout << "\n== the trivial case d = k (§1.3): hypercubes ==\n";
  for (int d = 2; d <= 6; ++d) {
    const graph::EdgeColouredGraph g = graph::hypercube(d);
    const local::RunResult run = local::run_sync(g, algo::greedy_program_factory(), d + 1);
    std::cout << "  Q_" << d << " (" << g.node_count() << " nodes, " << d
              << "-regular, k=d): " << run.rounds << " rounds — colour 1 is a perfect matching\n";
  }

  std::cout << "\n== Cole-Vishkin 3-colouring of a directed cycle (log* engine) ==\n";
  Rng rng(7);
  for (std::uint64_t width : {16ull, 32ull, 48ull}) {
    std::vector<std::uint64_t> ids(257);
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = (i * 2654435761ull) % (1ull << width);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    std::shuffle(ids.begin(), ids.end(), rng.engine());
    const algo::CvResult cv = algo::cv_three_colour_cycle(ids);
    std::cout << "  id width 2^" << width << ": " << cv.cv_rounds << " halving + "
              << cv.finish_rounds << " finish rounds -> proper "
              << (algo::is_proper_cycle_colouring(cv.colours) ? "yes" : "NO") << "\n";
  }

  std::cout << "\n== maximal edge packing + 2-approx vertex cover (§1.1) ==\n";
  const graph::EdgeColouredGraph g = graph::figure1_graph();
  const algo::EdgePackingResult packing = algo::maximal_edge_packing(g);
  const auto cover = algo::vertex_cover_from_packing(g, packing);
  std::cout << "  figure-1 graph: packing weight " << packing.total_weight.str() << " in "
            << packing.rounds << " rounds; saturated cover of " << cover.size() << "/"
            << g.node_count() << " nodes (valid 2-approximation)\n";
  return 0;
}
