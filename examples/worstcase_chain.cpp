// §1.2's worst case, made concrete: the two chains whose far endpoints are
// indistinguishable for k-2 rounds yet must answer differently.  Reproduces
// the figure below Lemma 1 for any k.
//
//   $ ./examples/worstcase_chain [k]
#include <cstdlib>
#include <iostream>

#include "core/dmm.hpp"

int main(int argc, char** argv) {
  using namespace dmm;

  const int k = argc > 1 ? std::atoi(argv[1]) : 4;
  if (k < 2) {
    std::cerr << "need k >= 2\n";
    return 1;
  }

  std::cout << "== the greedy worst case (paper §1.2), k = " << k << " ==\n\n";
  const graph::WorstCase wc = graph::worst_case_chain(k);

  std::cout << "long path  (colours 1.." << k << "):\n" << wc.long_path.str();
  std::cout << "short path (colours 2.." << k << "):\n" << wc.short_path.str() << "\n";

  const local::RunResult long_run =
      local::run_sync(wc.long_path, algo::greedy_program_factory(), k + 1);
  const local::RunResult short_run =
      local::run_sync(wc.short_path, algo::greedy_program_factory(), k + 1);

  const gk::Colour out_u = long_run.outputs[static_cast<std::size_t>(wc.u)];
  const gk::Colour out_v = short_run.outputs[static_cast<std::size_t>(wc.v)];

  std::cout << "greedy on the long path:  " << long_run.rounds << " rounds, u = node " << wc.u
            << " -> " << (out_u == local::kUnmatched ? std::string("unmatched") : "matched via " + std::to_string(out_u))
            << "\n";
  std::cout << "greedy on the short path: " << short_run.rounds << " rounds, v = node " << wc.v
            << " -> " << (out_v == local::kUnmatched ? std::string("unmatched") : "matched via " + std::to_string(out_v))
            << "\n\n";

  // Indistinguishability sweep: how many rounds until u and v can differ?
  graph::EdgeColouredGraph merged(wc.long_path.node_count() + wc.short_path.node_count(), k);
  for (const auto& e : wc.long_path.edges()) merged.add_edge(e.u, e.v, e.colour);
  const graph::NodeIndex offset = wc.long_path.node_count();
  for (const auto& e : wc.short_path.edges()) merged.add_edge(e.u + offset, e.v + offset, e.colour);

  std::cout << "rounds r | views of u and v equal after r rounds?\n";
  for (int r = 0; r <= k - 1; ++r) {
    const bool same = local::indistinguishable(merged, wc.u, wc.v + offset, r);
    std::cout << "       " << r << " | " << (same ? "equal  (no algorithm can separate them)"
                                                  : "differ (information has arrived)")
              << "\n";
  }
  std::cout << "\nu and v stay indistinguishable through round " << k - 2
            << ", yet their outputs differ:\nany faithful greedy needs >= k-1 = " << k - 1
            << " rounds.\n";
  return 0;
}
