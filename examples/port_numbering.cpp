// §1.4: the lower bound covers the port-numbering model.  This example
// shows both directions of the relationship:
//
//   * the edge-coloured greedy runs unchanged in the PN model (colours as
//     local inputs, ports on the wire) — and it is even a *broadcast*
//     algorithm, the weakest variant the paper mentions;
//   * without colours, deterministic PN algorithms are helpless on
//     symmetric instances: on the consistently port-numbered cycle, every
//     algorithm's outputs are uniform and uniform outputs are never a
//     valid maximal matching.
//
//   $ ./examples/port_numbering
#include <iostream>

#include "core/dmm.hpp"

namespace {

/// A PN algorithm that tries hard: exchange degrees for a round, then
/// match the smallest port towards a neighbour that also proposed us.
class Handshake final : public dmm::pn::PnProgram {
 public:
  bool init(int degree) override {
    degree_ = degree;
    return degree_ == 0;
  }
  std::map<dmm::pn::Port, dmm::pn::Message> send(int) override {
    std::map<dmm::pn::Port, dmm::pn::Message> out;
    for (dmm::pn::Port p = 1; p <= degree_; ++p) {
      out[p] = p == 1 ? "propose" : "idle";
    }
    return out;
  }
  bool receive(int, const std::map<dmm::pn::Port, dmm::pn::Message>& inbox) override {
    // Accept if our port-1 partner also proposed on the shared edge.
    const auto it = inbox.find(1);
    matched_ = it != inbox.end() && it->second == "propose";
    return true;
  }
  dmm::pn::PnOutput output() const override { return matched_ ? 1 : dmm::pn::kPnUnmatched; }

 private:
  int degree_ = 0;
  bool matched_ = false;
};

}  // namespace

int main() {
  using namespace dmm;

  std::cout << "== direction 1: coloured greedy inside the PN model ==\n";
  const graph::EdgeColouredGraph g = graph::figure1_graph();
  const pn::PnGreedyResult via_pn = pn::greedy_via_pn(g);
  const local::RunResult direct = local::run_sync(g, algo::greedy_program_factory(), g.k() + 1);
  std::cout << "figure-1 graph: PN rounds = " << via_pn.rounds
            << ", coloured rounds = " << direct.rounds << ", outputs "
            << (via_pn.outputs == direct.outputs ? "identical" : "DIFFER (bug)")
            << "\n(greedy passed the engine's broadcast check: one message fits all ports)\n\n";

  std::cout << "== direction 2: symmetry defeats pure PN algorithms ==\n";
  for (int n : {4, 5, 8, 13}) {
    const pn::PortNetwork cycle = pn::PortNetwork::symmetric_cycle(n);
    const pn::PnRunResult run =
        pn::run_pn(cycle, [] { return std::make_unique<Handshake>(); }, 10);
    const bool valid = pn::pn_matching_valid(cycle, run.outputs);
    std::cout << "symmetric " << n << "-cycle: outputs uniform="
              << (run.uniform_throughout ? "yes" : "no") << ", valid maximal matching="
              << (valid ? "YES (bug?)" : "no") << "\n";
  }
  std::cout << "\nEvery deterministic PN algorithm stays uniform on these instances, and\n"
               "uniform outputs cannot encode a maximal matching — which is why the paper\n"
               "equips nodes with an edge colouring before asking the lower-bound question.\n";
  return 0;
}
