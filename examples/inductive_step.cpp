// A guided tour of one inductive step (§3.9, Figures 7-8): builds the
// 1-critical pair for greedy, performs the step with tracing, and prints
// the intermediate objects K, L, X and the Lemma 12 witness y.
//
//   $ ./examples/inductive_step [k]
#include <cstdlib>
#include <iostream>

#include "core/dmm.hpp"

int main(int argc, char** argv) {
  using namespace dmm;
  using namespace dmm::lower;

  const int k = argc > 1 ? std::atoi(argv[1]) : 4;
  if (k < 3) {
    std::cerr << "need k >= 3\n";
    return 1;
  }

  const algo::GreedyLocal greedy(k);
  Evaluator eval(greedy);

  std::cout << "== Lemma 10 (the seed colours) ==\n";
  const auto colours_or = choose_lemma10_colours(k, eval);
  if (!std::holds_alternative<Lemma10Colours>(colours_or)) {
    std::cout << "greedy refuted?! " << std::get<Certificate>(colours_or).describe() << "\n";
    return 1;
  }
  const Lemma10Colours c = std::get<Lemma10Colours>(colours_or);
  std::cout << "c1=" << static_cast<int>(c.c1) << " c2=" << static_cast<int>(c.c2)
            << " c3=" << static_cast<int>(c.c3) << " c4=" << static_cast<int>(c.c4) << "\n";
  std::cout << "  A(Z, c1^, e) = " << static_cast<int>(eval(zero_template(k, c.c1), 0))
            << " (= c2),  A(Z, c3^, e) = " << static_cast<int>(eval(zero_template(k, c.c3), 0))
            << " (= c4 != c2)\n\n";

  std::cout << "== base case (§3.8, Figure 6) ==\n";
  auto base_or = base_case(k, c, eval);
  CriticalPair pair = std::get<CriticalPair>(std::move(base_or));
  std::cout << "1-critical pair on the single edge {e, " << static_cast<int>(c.c2) << "}:\n";
  std::cout << "S_1:\n" << pair.s.str() << "T_1:\n" << pair.t.str() << "\n";

  std::cout << "== inductive step (§3.9, Figure 7) ==\n";
  StepTrace trace;
  const int next_radius = required_radius(k, 2, greedy.running_time());
  StepOutcome out = inductive_step(pair, eval, next_radius, &trace);
  if (!std::holds_alternative<CriticalPair>(out)) {
    std::cout << "unexpected outcome for a correct algorithm\n";
    return 1;
  }
  const CriticalPair next = std::get<CriticalPair>(std::move(out));
  std::cout << "chi = A(T_1, tau_1, e) = " << static_cast<int>(trace.chi) << "\n";
  std::cout << "K = ext(S_1, P): " << trace.k_size << " nodes\n";
  std::cout << "L = ext(T_1, Q): " << trace.l_size << " nodes\n";
  std::cout << "X = K1 (+) L1:  " << trace.x_size << " nodes\n";
  std::cout << "Lemma 12 scan probed " << trace.scanned << " near nodes; witness y = "
            << trace.y.str() << " with A(X, xi, y) = "
            << (trace.y_output == local::kUnmatched ? std::string("bottom")
                                                    : std::to_string(trace.y_output))
            << " (not an incident colour)\n";
  std::cout << "y lies on the " << (trace.y_on_k_side ? "K" : "L") << " side; re-rooting gives:\n";
  std::cout << "S_2 (" << next.s.tree().size() << " nodes):\n" << next.s.str();
  std::cout << "T_2 (" << next.t.tree().size() << " nodes):\n" << next.t.str();
  std::cout << "\nS_2[2] == T_2[2]: "
            << (colsys::ColourSystem::equal_to_radius(next.s.tree(), next.t.tree(), 2) ? "yes"
                                                                                       : "no")
            << "  — a 2-critical pair (Lemma 13).\n";

  std::cout << "\ntotal distinct views evaluated: " << eval.evaluations() << " (memo hits "
            << eval.memo_hits() << ")\n";
  return 0;
}
