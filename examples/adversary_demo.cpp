// The executable Theorem 2: run the paper's adversary against
//   (a) the real greedy algorithm  -> a tight pair U, V with U[d] = V[d]
//       and different outputs at e (so >= k-1 rounds are necessary), and
//   (b) a radius-limited "fast greedy" -> a concrete, re-checkable
//       certificate that it is not a maximal-matching algorithm at all.
//
//   $ ./examples/adversary_demo [k] [r]
//     k: palette size (3 or 4 are instant; the construction is exact)
//     r: running time of the fast algorithm to refute (default k-2)
#include <cstdlib>
#include <iostream>

#include "core/dmm.hpp"

namespace {

void show(const dmm::lower::LowerBoundResult& result) {
  using namespace dmm;
  std::cout << result.summary() << "\n";
  if (const auto* tp = std::get_if<lower::TightPair>(&result.outcome)) {
    std::cout << "\n  U (root matched via " << static_cast<int>(tp->out_u) << "):\n";
    std::cout << "    " << tp->u.tree().size() << " nodes materialised, d-regular with d = "
              << tp->d << "\n";
    std::cout << "  V (root unmatched):\n";
    std::cout << "    " << tp->v.tree().size() << " nodes materialised\n";
    std::cout << "  U[" << tp->d << "] == V[" << tp->d << "]: "
              << (colsys::ColourSystem::equal_to_radius(tp->u.tree(), tp->v.tree(), tp->d)
                      ? "yes"
                      : "NO (bug)")
              << "\n";
    std::cout << "  => any algorithm producing these outputs needs >= " << tp->d
              << " rounds (Theorem 5).\n";
  } else if (const auto* cert = std::get_if<lower::Certificate>(&result.outcome)) {
    std::cout << "\n  certificate: " << cert->describe() << "\n";
    std::cout << "  instance: " << cert->instance.tree().size()
              << "-node template (realises a d-regular colour system)\n";
  }
  for (const auto& step : result.stats.steps) {
    std::cout << "  step h=" << step.h << ": chi=" << static_cast<int>(step.chi)
              << " |K|=" << step.k_size << " |L|=" << step.l_size << " |X|=" << step.x_size
              << " scanned=" << step.scanned;
    if (step.y_found) {
      std::cout << " y=" << step.y.str() << (step.y_on_k_side ? " (K side)" : " (L side)");
    } else {
      std::cout << " (refutation found during the Lemma 12 scan)";
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmm;

  const int k = argc > 1 ? std::atoi(argv[1]) : 4;
  const int r = argc > 2 ? std::atoi(argv[2]) : k - 2;
  if (k < 3) {
    std::cerr << "need k >= 3 (Lemma 4 covers k <= 2; see the test suite)\n";
    return 1;
  }

  std::cout << "== adversary vs the correct greedy algorithm (k=" << k << ") ==\n";
  const algo::GreedyLocal greedy(k);
  // k >= 5 needs the optimistic scan-cap schedule (see EXPERIMENTS.md E15b).
  show(lower::run_adversary(k, greedy, {.memoise = true, .optimistic = k >= 5}));

  std::cout << "\n== adversary vs truncated greedy with r=" << r << " < k-1 ==\n";
  const algo::TruncatedGreedy fast(k, r);
  const lower::LowerBoundResult vs_fast = lower::run_adversary(k, fast);
  show(vs_fast);
  if (const auto* cert = std::get_if<lower::Certificate>(&vs_fast.outcome)) {
    lower::Evaluator fresh(fast);
    std::cout << "\n  independent re-check of the certificate: "
              << (lower::certificate_holds(*cert, fresh) ? "HOLDS" : "STALE (bug)") << "\n";
  }
  return 0;
}
