// E11 — Remark 1: extensions as universal covers of looped multigraphs.
// Prints the structural agreement table and times both constructions.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;
using namespace dmm::lower;

void print_rows() {
  std::printf("## E11: ext(T, tau, P) vs universal cover of looped Gamma_k(T)\n");
  std::printf("%6s %8s %10s %10s %10s\n", "depth", "k", "|ext|", "|cover|", "equal?");
  for (int depth : {4, 6, 8, 10}) {
    const int k = 5;
    colsys::ColourSystem edge(k);
    edge.add_child(colsys::ColourSystem::root(), 2);
    const Template tmpl(edge, {1, 1}, 1);
    Picker p;
    p.choices = {{3, 4}, {5}};
    const Extension e = extend(tmpl, p, depth);

    cover::Multigraph g(2, k);
    g.add_edge(0, 1, 2);
    g.add_loop(0, 3);
    g.add_loop(0, 4);
    g.add_loop(1, 5);
    const colsys::ColourSystem cov = cover::universal_cover(g, 0, depth);
    std::printf("%6d %8d %10d %10d %10s\n", depth, k, e.result.tree().size(), cov.size(),
                colsys::ColourSystem::equal_to_radius(e.result.tree(), cov, depth) ? "yes"
                                                                                   : "NO");
  }
  std::printf("\n");
}

void BM_UniversalCover(benchmark::State& state) {
  cover::Multigraph g(2, 5);
  g.add_edge(0, 1, 2);
  g.add_loop(0, 3);
  g.add_loop(0, 4);
  g.add_loop(1, 5);
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cover::universal_cover(g, 0, depth));
  }
}
BENCHMARK(BM_UniversalCover)->Arg(6)->Arg(8)->Arg(10);

void BM_ExtensionSameObject(benchmark::State& state) {
  colsys::ColourSystem edge(5);
  edge.add_child(colsys::ColourSystem::root(), 2);
  const Template tmpl(edge, {1, 1}, 1);
  Picker p;
  p.choices = {{3, 4}, {5}};
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(extend(tmpl, p, depth));
  }
}
BENCHMARK(BM_ExtensionSameObject)->Arg(6)->Arg(8)->Arg(10);

}  // namespace

int main(int argc, char** argv) {
  return dmm::benchjson::Harness::run_table_experiment("e11", argc, argv, print_rows, [&] {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  });
}
