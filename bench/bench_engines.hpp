// Shared helper for the engine-aware benches (e1, e2, e5, e14): run a
// NodeProgram on the chosen engine, time it, and append the BENCH_*.json
// record with the run's own rounds/message accounting.
#pragma once

#include <string>

#include "bench_json.hpp"
#include "core/dmm.hpp"

namespace dmm::benchjson {

inline local::RunResult record_engine_run(Harness& harness, const std::string& instance,
                                          const graph::EdgeColouredGraph& g,
                                          local::EngineKind kind,
                                          const local::ProgramSource& source,
                                          int max_rounds,
                                          const local::FlatEngineOptions& options = {}) {
  Record record;
  record.instance = instance;
  record.n = g.node_count();
  record.m = g.edge_count();
  record.k = g.k();
  record.engine = local::engine_kind_name(kind);
  // Sync is always serial; flat rows record the requested worker count so
  // the baseline gate can key rows by (instance, engine, threads).
  record.threads = kind == local::EngineKind::kFlat ? options.threads : 1;
  local::RunResult run;
  record.wall_ns = Harness::time_ns([&] {
    run = kind == local::EngineKind::kFlat ? local::run_flat(g, source, max_rounds, options)
                                           : local::run_sync(g, source, max_rounds);
  });
  record.rounds = run.rounds;
  record.max_message_bytes = run.max_message_bytes;
  // dmm-bench-3: how much of the wall clock was setup (program
  // construction + init), and where the process RSS peaked.
  record.init_ms = run.init_ns / 1e6;
  record.rss_bytes = peak_rss_bytes();
  // dmm-bench-7: the per-phase wall-clock split (measurement only — these
  // fields are excluded from engine equivalence and never gated).
  record.send_ms = run.send_ns / 1e6;
  record.receive_ms = run.receive_ns / 1e6;
  harness.add(std::move(record));
  return run;
}

}  // namespace dmm::benchjson
