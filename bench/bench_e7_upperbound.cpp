// E7 — §1.3's upper-bound shape: greedy costs k-1 rounds while the
// reduction-based matching costs O(Δ² + log* k), so for k ≫ Δ the reduction
// wins and the crossover moves with Δ.  Prints the (Δ, k) sweep.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

/// A "thick path": Δ/2 parallel paths braided to reach max degree ~delta
/// while keeping all k colours in play.  Simplest faithful family: a path
/// for delta = 2; random coloured graphs with bounded palette otherwise.
graph::EdgeColouredGraph instance_for(int delta, int k, Rng& rng) {
  if (delta <= 2) {
    std::vector<gk::Colour> colours;
    for (int c = 1; c <= k; ++c) colours.push_back(static_cast<gk::Colour>(c));
    return graph::path_graph(k, colours);
  }
  // Random graph, then verify the degree bound holds by construction:
  // each colour class adds at most 1 to a node's degree; with k classes we
  // subsample so expected degree ~ delta.
  const double density = std::min(1.0, static_cast<double>(delta) / k);
  return graph::random_coloured_graph(64, k, density, rng);
}

void print_rows() {
  std::printf("## E7: rounds of greedy (k-1) vs reduction+greedy (O(Delta^2 + log* k))\n");
  std::printf("%6s %6s %6s %14s %14s %10s %8s\n", "Delta", "k", "n", "greedy", "reduced",
              "winner", "log*k");
  Rng rng(11);
  for (int delta : {2, 4, 8}) {
    for (int k : {8, 16, 32, 64, 128}) {
      if (k < delta) continue;
      const graph::EdgeColouredGraph g = instance_for(delta, k, rng);
      const local::RunResult greedy = local::run_sync(g, algo::greedy_program_factory(), k + 1);
      const algo::ReducedMatchingResult reduced = algo::reduced_matching(g);
      const bool reduced_ok = verify::check_outputs(g, reduced.outputs).ok();
      std::printf("%6d %6d %6d %14d %14d %10s %8d\n", g.max_degree(), k, g.node_count(),
                  greedy.rounds, reduced.total_rounds,
                  !reduced_ok        ? "INVALID"
                  : reduced.total_rounds < greedy.rounds ? "reduced"
                                                         : "greedy",
                  log_star(static_cast<std::uint64_t>(k)));
    }
  }
  std::printf("\n(shape check: 'reduced' wins once k >> Delta^2 — the paper's Θ(Δ + log* k)"
              " vs k-1 comparison)\n\n");
}

void BM_ReducedMatching(benchmark::State& state) {
  Rng rng(13);
  const int k = static_cast<int>(state.range(0));
  std::vector<gk::Colour> colours;
  for (int c = 1; c <= k; ++c) colours.push_back(static_cast<gk::Colour>(c));
  const graph::EdgeColouredGraph g = graph::path_graph(k, colours);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::reduced_matching(g));
  }
}
BENCHMARK(BM_ReducedMatching)->Arg(16)->Arg(64)->Arg(200);

void BM_LinialReductionOnly(benchmark::State& state) {
  Rng rng(17);
  const graph::EdgeColouredGraph g =
      graph::random_coloured_graph(static_cast<int>(state.range(0)), 12, 0.6, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::linial_colour_reduction(g));
  }
}
BENCHMARK(BM_LinialReductionOnly)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  return dmm::benchjson::Harness::run_table_experiment("e7", argc, argv, print_rows, [&] {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  });
}
