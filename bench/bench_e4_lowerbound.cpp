// E4 — Theorems 2/5: the executable adversary.
//
// Row 1 block: against the correct greedy algorithm the adversary produces
// the tight pair (U[d] = V[d], outputs differ at e) — the constructive
// k-1 lower bound.  Row 2 block: every truncated greedy with r < k-1 is
// refuted with a re-checkable certificate.  Timings measure the whole
// construction.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

void record_run(benchjson::Harness& harness, const std::string& label, int k,
                const lower::LowerBoundResult& result, double wall_ns) {
  benchjson::Record record;
  record.instance = label;
  record.k = k;
  record.rounds = -1;
  record.wall_ns = wall_ns;
  record.views = static_cast<long long>(result.stats.evaluations);
  record.memo_hits = static_cast<long long>(result.stats.memo_hits);
  record.threads = result.stats.threads;
  // dmm-bench-4 colour-symmetry stats: with the orbit memo on, the byte
  // store holds one key per view orbit; the reduction is entries/orbits.
  record.orbits = static_cast<long long>(result.stats.orbits);
  record.orbit_reduction =
      result.stats.orbits > 0 ? static_cast<double>(result.stats.memo_entries) /
                                    static_cast<double>(result.stats.orbits)
                              : 0.0;
  // dmm-bench-5: on e4 rows the "reps" are the evaluator-interned orbit
  // keys — one canonical form per view orbit the adversary ever touched.
  record.reps_generated = static_cast<long long>(result.stats.orbits);
  harness.add(std::move(record));
}

void print_rows(benchjson::Harness& harness) {
  std::printf("## E4: the Theorem 5 adversary\n");
  std::printf("%-30s %3s %3s %-10s %10s %10s %10s %12s\n", "algorithm", "k", "r", "outcome",
              "views", "memo", "max|X|", "U[d]=V[d]");
  // k = 6 is the current practical frontier (hours, ~10^7-node templates);
  // the table stops at k = 5, which the optimistic schedule solves in
  // milliseconds.
  for (int k = 3; k <= 5; ++k) {
    const algo::GreedyLocal greedy(k);
    // k <= 4 runs under the conservative budget; k >= 5 needs the
    // optimistic scan-cap schedule (same outcomes, far smaller trees).
    const lower::AdversaryOptions options{
        .memoise = true, .optimistic = k >= 5, .max_template_nodes = 2e7};
    lower::LowerBoundResult result;
    const double wall_ns = benchjson::Harness::time_ns(
        [&] { result = lower::run_adversary(k, greedy, options); });
    const auto* tp = std::get_if<lower::TightPair>(&result.outcome);
    std::printf("%-30s %3d %3d %-10s %10llu %10llu %10d %12s\n", greedy.name().c_str(), k,
                greedy.running_time(), result.tight() ? "tight" : "other",
                static_cast<unsigned long long>(result.stats.evaluations),
                static_cast<unsigned long long>(result.stats.memo_hits),
                result.stats.max_template_nodes,
                tp && colsys::ColourSystem::equal_to_radius(tp->u.tree(), tp->v.tree(), tp->d)
                    ? "yes"
                    : "-");
    record_run(harness, "adversary vs " + greedy.name(), k, result, wall_ns);
  }
  // Orbit-memo rows (ISSUE 5): same outcomes, evaluator memo keyed by
  // colour-permutation orbit — the stored-key space shrinks towards 1/k!.
  for (int k = 3; k <= 5; ++k) {
    const algo::GreedyLocal greedy(k);
    const lower::AdversaryOptions options{.memoise = true,
                                          .optimistic = k >= 5,
                                          .max_template_nodes = 2e7,
                                          .threads = 1,
                                          .orbits = true};
    lower::LowerBoundResult result;
    const double wall_ns = benchjson::Harness::time_ns(
        [&] { result = lower::run_adversary(k, greedy, options); });
    const std::string label = greedy.name() + " [orbit memo]";
    std::printf("%-30s %3d %3d %-10s %10llu %10llu %10d %12s\n", label.c_str(), k,
                greedy.running_time(), result.tight() ? "tight" : "other",
                static_cast<unsigned long long>(result.stats.evaluations),
                static_cast<unsigned long long>(result.stats.memo_hits),
                result.stats.max_template_nodes,
                result.stats.orbits > 0 ? "orbits" : "-");
    record_run(harness, "adversary vs " + label, k, result, wall_ns);
  }
  for (int k = 3; k <= 4; ++k) {
    for (int r = 0; r < k - 1; ++r) {
      const algo::TruncatedGreedy fast(k, r);
      lower::LowerBoundResult result;
      const double wall_ns =
          benchjson::Harness::time_ns([&] { result = lower::run_adversary(k, fast); });
      std::printf("%-30s %3d %3d %-10s %10llu %10llu %10d %12s\n", fast.name().c_str(), k, r,
                  result.refuted() ? "refuted" : "other",
                  static_cast<unsigned long long>(result.stats.evaluations),
                  static_cast<unsigned long long>(result.stats.memo_hits),
                  result.stats.max_template_nodes, "-");
      record_run(harness, "adversary vs " + fast.name(), k, result, wall_ns);
    }
  }
  {
    // k = 5 is feasible against 0-round algorithms (the depth budget stays
    // at 10 on 4-regular trees); the full greedy at k = 5 would need
    // ~10^13-node trees — that cliff is the h^depth growth, reported here.
    const algo::TruncatedGreedy fast(5, 0);
    lower::LowerBoundResult result;
    const double wall_ns =
        benchjson::Harness::time_ns([&] { result = lower::run_adversary(5, fast); });
    std::printf("%-30s %3d %3d %-10s %10llu %10llu %10d %12s\n", fast.name().c_str(), 5, 0,
                result.refuted() ? "refuted" : "other",
                static_cast<unsigned long long>(result.stats.evaluations),
                static_cast<unsigned long long>(result.stats.memo_hits),
                result.stats.max_template_nodes, "-");
    record_run(harness, "adversary vs " + fast.name(), 5, result, wall_ns);
  }
  std::printf("\n");
}

void BM_AdversaryVsGreedy(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const algo::GreedyLocal greedy(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lower::run_adversary(k, greedy));
  }
}
BENCHMARK(BM_AdversaryVsGreedy)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_AdversaryVsTruncated(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const algo::TruncatedGreedy fast(k, k - 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lower::run_adversary(k, fast));
  }
}
BENCHMARK(BM_AdversaryVsTruncated)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dmm::benchjson::Harness harness("e4", argc, argv);
  print_rows(harness);
  if (!harness.smoke()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return harness.write();
}
