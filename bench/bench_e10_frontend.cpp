// E10 — the multi-tenant request front-end (ISSUE 9): what interleaving
// many sessions on one shared Runtime costs over running them back to
// back, and how evenly the deficit-round-robin scheduler treats tenants.
//
// Every row drives a deterministic workload (tenants × jobs of the same
// seeded instance) through svc::MatchingService and checks each session's
// RunResult against the standalone run of the same job — the bench aborts
// on any divergence, so a green baseline row doubles as an equivalence
// smoke check.  `sessions` is an exact workload property (the gate pins it
// on equality); tenant_p50_ms / tenant_p99_ms / fairness_ratio are wall
// measurements (banded); send_ms / receive_ms carry the engines' phase
// split summed over the row's sessions (recorded, never gated).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

// The e10 workload: mid-sized so per-round scheduling cost is visible but
// the CI smoke stays fast.  Seeded — the pinned BENCH_e10.json session
// counts reproduce anywhere.
graph::EdgeColouredGraph workload() {
  Rng rng(42);
  return graph::random_coloured_graph(5000, 6, 0.7, rng);
}

local::FaultPlan workload_plan(const graph::EdgeColouredGraph& g) {
  local::FaultSpec spec;
  spec.crash_prob = 0.02;
  spec.horizon = 5;
  spec.min_down = 1;
  spec.max_down = 2;
  spec.permanent_prob = 0.25;
  spec.drop_prob = 0.01;
  spec.seed = 4210;
  return local::FaultPlan::random(g, spec);
}

bool same_result(const local::RunResult& a, const local::RunResult& b) {
  return a.outputs == b.outputs && a.halt_round == b.halt_round && a.rounds == b.rounds &&
         a.max_message_bytes == b.max_message_bytes &&
         a.total_message_bytes == b.total_message_bytes &&
         a.messages_sent == b.messages_sent && a.crashes == b.crashes &&
         a.restarts == b.restarts && a.messages_dropped == b.messages_dropped;
}

/// One front-end row: tenants × jobs_per_tenant copies of the greedy job
/// through a fresh MatchingService, every result diffed against the
/// standalone oracle.
benchjson::Record record_service_run(benchjson::Harness& harness, const std::string& label,
                                     const graph::EdgeColouredGraph& g,
                                     local::EngineKind kind, int tenants,
                                     int jobs_per_tenant, int threads,
                                     const local::FaultPlan& plan) {
  const int max_rounds = std::max(g.k() + 1, plan.max_restart_round() + g.k() + 2);
  local::RunOptions ropts;
  ropts.max_rounds = max_rounds;
  if (!plan.empty()) ropts.faults.plan = &plan;
  const local::RunResult standalone =
      local::run(kind, g, algo::greedy_program_factory(), ropts);

  benchjson::Record record;
  record.instance = label;
  record.n = g.node_count();
  record.m = g.edge_count();
  record.k = g.k();
  record.engine = local::engine_kind_name(kind);
  record.threads = threads;
  record.rounds = standalone.rounds;
  record.max_message_bytes = standalone.max_message_bytes;

  svc::ServiceOptions opts;
  opts.inflight = tenants * jobs_per_tenant;  // every session in flight at once
  opts.quantum = 4;
  opts.threads = threads;

  svc::ServiceStats stats;
  record.wall_ns = benchjson::Harness::time_ns([&] {
    svc::MatchingService service(opts);
    std::vector<std::vector<std::future<local::RunResult>>> futures(
        static_cast<std::size_t>(tenants));
    for (int t = 0; t < tenants; ++t) {
      std::vector<svc::Job> jobs(static_cast<std::size_t>(jobs_per_tenant));
      for (svc::Job& job : jobs) {
        job.graph = g;
        job.source = algo::greedy_program_factory();
        job.max_rounds = max_rounds;
        job.engine = kind;
        job.faults = plan;
      }
      futures[static_cast<std::size_t>(t)] =
          service.submit_batch("tenant-" + std::to_string(t), std::move(jobs));
    }
    for (auto& tenant_futures : futures) {
      for (auto& future : tenant_futures) {
        const local::RunResult run = future.get();
        if (!same_result(standalone, run)) {
          std::fprintf(stderr, "e10: service session diverged from standalone (%s)\n",
                       label.c_str());
          std::abort();
        }
        record.send_ms += run.send_ns / 1e6;
        record.receive_ms += run.receive_ns / 1e6;
        record.crashes += static_cast<long long>(run.crashes);
        record.restarts += static_cast<long long>(run.restarts);
        record.messages_dropped += static_cast<long long>(run.messages_dropped);
      }
    }
    stats = service.stats();
  });
  record.sessions = static_cast<long long>(stats.sessions);
  // The worst tenant's percentiles: the number a fair-share regression
  // moves first.
  for (const svc::TenantStats& t : stats.tenants) {
    record.tenant_p50_ms = std::max(record.tenant_p50_ms, t.p50_ms);
    record.tenant_p99_ms = std::max(record.tenant_p99_ms, t.p99_ms);
  }
  record.fairness_ratio = stats.fairness_ratio;
  record.init_ms = standalone.init_ns / 1e6;
  record.rss_bytes = benchjson::peak_rss_bytes();
  harness.add(record);
  return record;
}

void print_rows(benchjson::Harness& harness) {
  const graph::EdgeColouredGraph g = workload();
  const local::FaultPlan plan = workload_plan(g);
  const local::FaultPlan no_faults;
  constexpr int kTenants = 4;
  constexpr int kJobs = 8;

  std::printf("## E10: multi-tenant front-end, %d tenants x %d greedy jobs, n = %d, k = %d\n",
              kTenants, kJobs, g.node_count(), g.k());
  std::printf("%-32s %-6s %8s %12s %9s %9s %9s %9s\n", "instance", "engine", "threads",
              "wall (ms)", "sessions", "p50 (ms)", "p99 (ms)", "fairness");
  const std::string clean_label = "frontend n=5000 k=6 4x8";
  const std::string faulty_label = "frontend n=5000 k=6 4x8 faults";
  struct Config {
    const std::string* label;
    local::EngineKind kind;
    int threads;
    const local::FaultPlan* plan;
  };
  const Config configs[] = {
      {&clean_label, local::EngineKind::kSync, 1, &no_faults},
      {&clean_label, local::EngineKind::kFlat, 1, &no_faults},
      {&clean_label, local::EngineKind::kFlat, 4, &no_faults},
      {&faulty_label, local::EngineKind::kFlat, 4, &plan},
  };
  for (const Config& config : configs) {
    const benchjson::Record record =
        record_service_run(harness, *config.label, g, config.kind, kTenants, kJobs,
                           config.threads, *config.plan);
    std::printf("%-32s %-6s %8d %12.2f %9lld %9.2f %9.2f %9.2f\n", config.label->c_str(),
                local::engine_kind_name(config.kind), config.threads,
                record.wall_ns / 1e6, record.sessions, record.tenant_p50_ms,
                record.tenant_p99_ms, record.fairness_ratio);
  }
  std::printf("\n");
}

void BM_FrontendDrain(benchmark::State& state) {
  const graph::EdgeColouredGraph g = workload();
  const int max_rounds = g.k() + 1;
  svc::ServiceOptions opts;
  opts.inflight = 16;
  opts.quantum = 4;
  opts.threads = 4;
  for (auto _ : state) {
    svc::MatchingService service(opts);
    std::vector<std::future<local::RunResult>> futures;
    for (int t = 0; t < 2; ++t) {
      std::vector<svc::Job> jobs(4);
      for (svc::Job& job : jobs) {
        job.graph = g;
        job.source = algo::greedy_program_factory();
        job.max_rounds = max_rounds;
      }
      auto batch = service.submit_batch("tenant-" + std::to_string(t), std::move(jobs));
      for (auto& future : batch) futures.push_back(std::move(future));
    }
    for (auto& future : futures) benchmark::DoNotOptimize(future.get().rounds);
  }
  state.SetItemsProcessed(state.iterations() * 8 * g.node_count());
}
BENCHMARK(BM_FrontendDrain);

}  // namespace

int main(int argc, char** argv) {
  dmm::benchjson::Harness harness("e10", argc, argv);
  print_rows(harness);
  if (!harness.smoke()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return harness.write();
}
