// E12 — dynamic maximal matching under edge churn (docs/dynamic.md):
// what incremental repair costs per batch, and how little of the graph it
// touches compared to recomputing from scratch.
//
// Every row applies one seeded ChurnPlan to a DynamicMatcher and times
// ONLY the incremental apply (plan validation and the seeding greedy run
// sit outside the measured section; the seeding run's wall is recorded as
// init_ms).  The same plan is then replayed untimed on a fresh matcher
// with per-batch verification — incremental outputs AND a recompute-
// from-scratch oracle run must both pass check_outputs after every batch,
// and the replay's counters must equal the timed run's — the binary
// aborts on any violation, so a green baseline row doubles as a repair
// correctness smoke.  The churn counters (churn_ops / repairs /
// touched_nodes / recompute_avoided) are pure functions of
// (instance, seed): the same instance's sync and flat rows must agree on
// them exactly (also aborted on), and the pinned BENCH_e12.json gates
// them on equality; wall_ns is banded like every other experiment.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

struct ChurnCase {
  const char* label;
  graph::EdgeColouredGraph (*make)();
  dyn::ChurnSpec spec;
};

graph::EdgeColouredGraph random_workload() {
  Rng rng(42);
  return graph::random_coloured_graph(20000, 8, 0.7, rng);
}

graph::EdgeColouredGraph skewed_workload() {
  return graph::hub_cluster_graph(1500, 48, 1);
}

graph::EdgeColouredGraph star_workload() { return graph::star_graph(192); }

dyn::ChurnSpec spec_of(int batches, int ops, std::uint64_t seed) {
  dyn::ChurnSpec spec;
  spec.batches = batches;
  spec.ops_per_batch = ops;
  spec.insert_fraction = 0.5;
  spec.seed = seed;
  return spec;
}

/// One churn row: timed incremental apply, then the untimed verification
/// replay (per-batch incremental + oracle maximality, counter equality).
benchjson::Record record_churn_run(benchjson::Harness& harness, const std::string& label,
                                   const graph::EdgeColouredGraph& g, local::EngineKind kind,
                                   int threads, const dyn::ChurnSpec& spec) {
  const dyn::ChurnPlan plan = dyn::ChurnPlan::random(g, spec);
  plan.require_applies(g);

  dyn::MatcherOptions mopts;
  mopts.engine = kind;
  mopts.threads = threads;

  benchjson::Record record;
  record.instance = label;
  record.n = g.node_count();
  record.m = g.edge_count();
  record.k = g.k();
  record.rounds = -1;
  record.engine = local::engine_kind_name(kind);
  record.threads = threads;

  // Timed: the incremental repair path alone.
  double init_ns = 0.0;
  dyn::DynamicMatcher* matcher_ptr = nullptr;
  init_ns = benchjson::Harness::time_ns(
      [&] { matcher_ptr = new dyn::DynamicMatcher(g, mopts); });
  dyn::DynamicMatcher& matcher = *matcher_ptr;
  record.init_ms = init_ns / 1e6;
  record.wall_ns = benchjson::Harness::time_ns([&] {
    for (const dyn::ChurnBatch& batch : plan.batches()) matcher.apply(batch);
  });

  // Untimed replay: every batch must leave BOTH the incremental matching
  // and a from-scratch recompute maximal, and the replayed counters must
  // equal the timed run's.
  dyn::DynamicMatcher checker(g, mopts);
  for (std::size_t b = 0; b < plan.batches().size(); ++b) {
    checker.apply(plan.batches()[b]);
    const verify::MatchingReport incremental = checker.check();
    const verify::MatchingReport oracle =
        verify::check_outputs(checker.graph(), checker.recompute());
    if (!incremental.ok() || !oracle.ok()) {
      std::fprintf(stderr, "e12: %s batch %zu invalid (%s)\n", label.c_str(), b,
                   incremental.ok() ? "oracle" : "incremental");
      std::abort();
    }
  }
  if (!(checker.stats() == matcher.stats())) {
    std::fprintf(stderr, "e12: %s replay counters diverged from timed run\n", label.c_str());
    std::abort();
  }

  record.churn_ops = static_cast<long long>(matcher.stats().inserts + matcher.stats().deletes);
  record.repairs = static_cast<long long>(matcher.stats().repairs);
  record.touched_nodes = static_cast<long long>(matcher.stats().touched_nodes);
  record.recompute_avoided = static_cast<long long>(matcher.stats().recompute_avoided);
  record.rss_bytes = benchjson::peak_rss_bytes();
  delete matcher_ptr;
  harness.add(record);
  return record;
}

void print_rows(benchjson::Harness& harness) {
  const ChurnCase cases[] = {
      {"churn random n=20000 k=8", &random_workload, spec_of(48, 256, 1207)},
      {"churn hub_cluster h=1500 d=48", &skewed_workload, spec_of(32, 128, 1207)},
      {"churn star n=193", &star_workload, spec_of(16, 32, 1207)},
  };
  std::printf("## E12: dynamic maximal matching under churn, incremental repair vs oracle\n");
  std::printf("%-32s %-6s %8s %12s %8s %8s %10s %14s\n", "instance", "engine", "threads",
              "wall (ms)", "ops", "repairs", "touched", "avoided");
  for (const ChurnCase& c : cases) {
    const graph::EdgeColouredGraph g = c.make();
    benchjson::Record sync_row;
    struct EngineRow {
      local::EngineKind kind;
      int threads;
    };
    const EngineRow engines[] = {{local::EngineKind::kSync, 1}, {local::EngineKind::kFlat, 4}};
    for (const EngineRow& e : engines) {
      const benchjson::Record record =
          record_churn_run(harness, c.label, g, e.kind, e.threads, c.spec);
      if (e.kind == local::EngineKind::kSync) {
        sync_row = record;
      } else if (record.churn_ops != sync_row.churn_ops ||
                 record.repairs != sync_row.repairs ||
                 record.touched_nodes != sync_row.touched_nodes ||
                 record.recompute_avoided != sync_row.recompute_avoided) {
        // The counters are a pure function of (instance, seed); an engine
        // that changes them has leaked into the repair path.
        std::fprintf(stderr, "e12: %s counters differ between engines\n", c.label);
        std::abort();
      }
      std::printf("%-32s %-6s %8d %12.2f %8lld %8lld %10lld %14lld\n", c.label,
                  local::engine_kind_name(e.kind), e.threads, record.wall_ns / 1e6,
                  record.churn_ops, record.repairs, record.touched_nodes,
                  record.recompute_avoided);
    }
  }
  std::printf("\n");
}

void BM_ChurnApply(benchmark::State& state) {
  const graph::EdgeColouredGraph g = random_workload();
  const dyn::ChurnSpec spec = spec_of(48, 256, 1207);
  const dyn::ChurnPlan plan = dyn::ChurnPlan::random(g, spec);
  for (auto _ : state) {
    state.PauseTiming();
    dyn::DynamicMatcher matcher(g, {});
    state.ResumeTiming();
    for (const dyn::ChurnBatch& batch : plan.batches()) matcher.apply(batch);
    benchmark::DoNotOptimize(matcher.stats().repairs);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(plan.op_count()));
}
BENCHMARK(BM_ChurnApply);

}  // namespace

int main(int argc, char** argv) {
  dmm::benchjson::Harness harness("e12", argc, argv);
  print_rows(harness);
  if (!harness.smoke()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return harness.write();
}
