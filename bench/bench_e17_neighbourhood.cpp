// E17 — Remark 2 / Linial's neighbourhood-graph technique: sizes of the
// view catalogues, and the satisfiability frontier — UNSAT below rho = k,
// SAT at rho = k — obtained by exhaustive labelling search.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

void print_rows() {
  std::printf("## E17: r-round algorithms as labellings of the (r+1)-view catalogue\n");
  std::printf("%4s %4s %5s %8s %10s %12s %14s\n", "k", "d", "rho", "views", "pairs",
              "satisfiable", "search nodes");
  struct Row {
    int k, d, rho;
  };
  // The last row takes ~20 s: 78732 views, ~9.6M constraints, UNSAT — a
  // machine-checked "no 2-round algorithm exists for k = 4" (r = 2 < k-1).
  const Row rows[] = {{3, 2, 1}, {3, 2, 2}, {3, 2, 3}, {4, 3, 1}, {4, 3, 2}, {4, 3, 3}};
  for (const Row& row : rows) {
    const nbhd::ViewCatalogue cat = nbhd::enumerate_views(row.k, row.d, row.rho);
    const auto pairs = nbhd::compatible_pairs(cat);
    const nbhd::CspResult result = nbhd::solve(cat);
    std::printf("%4d %4d %5d %8d %10zu %12s %14llu\n", row.k, row.d, row.rho, cat.size(),
                pairs.size(), result.satisfiable ? "SAT" : "UNSAT",
                static_cast<unsigned long long>(result.nodes_explored));
  }
  std::printf("\n(UNSAT at rho <= k-1 is the *universal* form of Theorem 5: no (rho-1)-round\n"
              " algorithm exists at all; SAT at rho = k matches Lemma 1 — greedy's own\n"
              " labelling is a solution)\n\n");
}

void BM_EnumerateViews(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::enumerate_views(3, 2, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_EnumerateViews)->Arg(2)->Arg(3)->Arg(4);

void BM_SolveCspK3(benchmark::State& state) {
  const nbhd::ViewCatalogue cat = nbhd::enumerate_views(3, 2, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::solve(cat));
  }
}
BENCHMARK(BM_SolveCspK3)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_SolveCspK4Rho2(benchmark::State& state) {
  const nbhd::ViewCatalogue cat = nbhd::enumerate_views(4, 3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::solve(cat));
  }
}
BENCHMARK(BM_SolveCspK4Rho2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dmm::benchjson::Harness::run_table_experiment("e17", argc, argv, print_rows, [&] {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  });
}
