// E17 — Remark 2 / Linial's neighbourhood-graph technique: sizes of the
// view catalogues, and the satisfiability frontier — UNSAT below rho = k,
// SAT at rho = k — obtained by exhaustive labelling search.
//
// Since the canonical-form rewrite (interned enumeration, id-bucketed
// pairs, bitset CSP with arc consistency) the full table through
// k = 4, rho = 3 (78 732 views, ~9.6M constraints) runs in ~2 s where the
// seed pipeline took ~20 s, and the k = 5, rho = 2 row is part of the
// standard table.  Each row is recorded in BENCH_e17.json with the
// pipeline stats (views, pairs, csp_nodes, threads).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

void print_rows(benchjson::Harness& harness, int threads) {
  std::printf("## E17: r-round algorithms as labellings of the (r+1)-view catalogue\n");
  std::printf("%4s %4s %5s %8s %10s %12s %14s %10s\n", "k", "d", "rho", "views", "pairs",
              "satisfiable", "search nodes", "wall ms");
  struct Row {
    int k, d, rho;
  };
  const Row rows[] = {{3, 2, 1}, {3, 2, 2}, {3, 2, 3}, {4, 3, 1},
                      {4, 3, 2}, {4, 3, 3}, {5, 4, 2}};
  for (const Row& row : rows) {
    nbhd::ViewCatalogue cat;
    std::vector<nbhd::CompatiblePair> pairs;
    nbhd::CspResult result;
    benchjson::Record record;
    record.instance = "views k=" + std::to_string(row.k) + " d=" + std::to_string(row.d) +
                      " rho=" + std::to_string(row.rho);
    record.k = row.k;
    record.rounds = row.rho - 1;  // an rho-catalogue decides (rho-1)-round algorithms
    record.threads = threads;
    record.wall_ns = benchjson::Harness::time_ns([&] {
      cat = nbhd::enumerate_views(row.k, row.d, row.rho);
      pairs = nbhd::compatible_pairs(cat);
      result = nbhd::solve(cat, pairs, {.threads = threads});
    });
    record.views = cat.size();
    record.pairs = static_cast<long long>(pairs.size());
    record.csp_nodes = static_cast<long long>(result.nodes_explored);
    std::printf("%4d %4d %5d %8d %10zu %12s %14llu %10.1f\n", row.k, row.d, row.rho, cat.size(),
                pairs.size(), result.satisfiable ? "SAT" : "UNSAT",
                static_cast<unsigned long long>(result.nodes_explored),
                record.wall_ns / 1e6);
    harness.add(std::move(record));
  }
  std::printf("\n(UNSAT at rho <= k-1 is the *universal* form of Theorem 5: no (rho-1)-round\n"
              " algorithm exists at all; SAT at rho = k matches Lemma 1 — greedy's own\n"
              " labelling is a solution)\n\n");
}

void BM_EnumerateViews(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::enumerate_views(3, 2, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_EnumerateViews)->Arg(2)->Arg(3)->Arg(4);

void BM_CompatiblePairsK4Rho3(benchmark::State& state) {
  const nbhd::ViewCatalogue cat = nbhd::enumerate_views(4, 3, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::compatible_pairs(cat));
  }
}
BENCHMARK(BM_CompatiblePairsK4Rho3)->Unit(benchmark::kMillisecond);

void BM_SolveCspK3(benchmark::State& state) {
  const nbhd::ViewCatalogue cat = nbhd::enumerate_views(3, 2, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::solve(cat));
  }
}
BENCHMARK(BM_SolveCspK3)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_SolveCspK4Rho2(benchmark::State& state) {
  const nbhd::ViewCatalogue cat = nbhd::enumerate_views(4, 3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::solve(cat));
  }
}
BENCHMARK(BM_SolveCspK4Rho2)->Unit(benchmark::kMillisecond);

void BM_SolveCspK5Rho2(benchmark::State& state) {
  const nbhd::ViewCatalogue cat = nbhd::enumerate_views(5, 4, 2);
  const auto pairs = nbhd::compatible_pairs(cat);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::solve(cat, pairs));
  }
}
BENCHMARK(BM_SolveCspK5Rho2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dmm::benchjson::Harness harness("e17", argc, argv);
  // Strip --threads before google-benchmark sees the arguments.
  int threads = 1;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  print_rows(harness, threads);
  if (!harness.smoke()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return harness.write();
}
