// E17 — Remark 2 / Linial's neighbourhood-graph technique: sizes of the
// view catalogues, and the satisfiability frontier — UNSAT below rho = k,
// SAT at rho = k — obtained by exhaustive labelling search.
//
// Since the canonical-form rewrite (interned enumeration, id-bucketed
// pairs, bitset CSP with arc consistency) the full table through
// k = 4, rho = 3 (78 732 views, ~9.6M constraints) runs in ~1 s where the
// seed pipeline took ~20 s, and the k = 5, rho = 2 row is part of the
// standard table.  `--orbits` switches every row to the colour-permutation
// orbit pipeline (one materialised representative per orbit, pair index
// lifted through permutation witnesses, identical verdicts); the census
// row reports the k = 5, rho = 3 catalogue — ~2.1e10 views, ~1.8e8 orbits
// — by pure Burnside arithmetic; its *reps* are reachable by the orderly
// generator (the nightly --scale smoke streams them under a wall budget).
// Each row is recorded in BENCH_e17.json with the pipeline stats (views,
// pairs, csp_nodes, threads, orbits, orbit_reduction, reps_generated).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "bench_json.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

void print_rows(benchjson::Harness& harness, int threads, bool orbits) {
  std::printf("## E17: r-round algorithms as labellings of the (r+1)-view catalogue%s\n",
              orbits ? " (orbit-reduced)" : "");
  std::printf("%4s %4s %5s %11s %9s %10s %12s %14s %10s\n", "k", "d", "rho", "views", "orbits",
              "pairs", "satisfiable", "search nodes", "wall ms");
  struct Row {
    int k, d, rho;
  };
  const Row rows[] = {{3, 2, 1}, {3, 2, 2}, {3, 2, 3}, {4, 3, 1},
                      {4, 3, 2}, {4, 3, 3}, {5, 4, 2}};
  for (const Row& row : rows) {
    benchjson::Record record;
    record.instance = std::string("views k=") + std::to_string(row.k) +
                      " d=" + std::to_string(row.d) + " rho=" + std::to_string(row.rho) +
                      (orbits ? " orbits" : "");
    record.k = row.k;
    record.rounds = row.rho - 1;  // an rho-catalogue decides (rho-1)-round algorithms
    record.threads = threads;
    long long views = 0, orbit_count = 0;
    std::size_t pair_count = 0;
    nbhd::CspResult result;
    if (orbits) {
      nbhd::OrbitGenStats gen;
      record.wall_ns = benchjson::Harness::time_ns([&] {
        const nbhd::OrbitCatalogue cat =
            nbhd::enumerate_orbits(row.k, row.d, row.rho, 2'000'000, &gen);
        const auto pairs = nbhd::compatible_pairs(cat);
        result = nbhd::solve(cat, pairs, {.threads = threads});
        views = cat.view_count();
        orbit_count = cat.orbit_count();
        pair_count = pairs.size();
      });
      record.orbits = orbit_count;
      record.orbit_reduction =
          orbit_count > 0 ? static_cast<double>(views) / static_cast<double>(orbit_count) : 0.0;
      record.reps_generated = gen.reps_generated;
    } else {
      record.wall_ns = benchjson::Harness::time_ns([&] {
        const nbhd::ViewCatalogue cat = nbhd::enumerate_views(row.k, row.d, row.rho);
        const auto pairs = nbhd::compatible_pairs(cat);
        result = nbhd::solve(cat, pairs, {.threads = threads});
        views = cat.size();
        pair_count = pairs.size();
      });
    }
    record.views = views;
    record.pairs = static_cast<long long>(pair_count);
    record.csp_nodes = static_cast<long long>(result.nodes_explored);
    std::printf("%4d %4d %5d %11lld %9lld %10zu %12s %14llu %10.1f\n", row.k, row.d, row.rho,
                views, orbit_count, pair_count, result.satisfiable ? "SAT" : "UNSAT",
                static_cast<unsigned long long>(result.nodes_explored), record.wall_ns / 1e6);
    harness.add(std::move(record));
  }
  // The k = 5, rho = 3 orbit census: materialisation throws the max_views
  // guard (~2.1e10 views), the Burnside count is arithmetic.  This is the
  // row the colour-symmetry quotient opens.
  {
    benchjson::Record record;
    record.instance = "orbit census k=5 d=4 rho=3";
    record.k = 5;
    record.rounds = 2;
    record.threads = threads;
    nbhd::OrbitCensus census;
    record.wall_ns = benchjson::Harness::time_ns([&] { census = nbhd::orbit_census(5, 4, 3); });
    record.views = static_cast<long long>(census.views);
    record.orbits = static_cast<long long>(census.orbits);
    record.orbit_reduction = census.orbits > 0 ? census.views / census.orbits : 0.0;
    std::printf("%4d %4d %5d %11lld %9lld %10s %12s %14s %10.1f  (census only)\n", 5, 4, 3,
                record.views, record.orbits, "-", "-", "-", record.wall_ns / 1e6);
    harness.add(std::move(record));
  }
  std::printf("\n(UNSAT at rho <= k-1 is the *universal* form of Theorem 5: no (rho-1)-round\n"
              " algorithm exists at all; SAT at rho = k matches Lemma 1 — greedy's own\n"
              " labelling is a solution.  Orbit rows decide the same CSP from a ~k!-fold\n"
              " smaller materialised catalogue; the census row needs no catalogue at all)\n\n");
}

// Nightly (`--scale`) orderly-generation smoke: stream canonical reps of
// the k = 5, rho = 3 catalogue — past the raw-view guard that used to cap
// this instance at its census — under a wall-time budget
// (DMM_ORDERLY_BUDGET_MS, default 2 minutes; the full 1.79e8-rep walk is
// a ~45-minute single-core run, so the budget row normally stops early).
// If the budget does cover the whole walk, the closed-form member count
// must land exactly on the 21 474 836 480 raw views.
void print_orderly_scale_row(benchjson::Harness& harness) {
  long long budget_ms = 120'000;
  if (const char* env = std::getenv("DMM_ORDERLY_BUDGET_MS")) budget_ms = std::atoll(env);
  benchjson::Record record;
  record.instance = "orderly reps k=5 d=4 rho=3";
  record.k = 5;
  record.rounds = 2;
  nbhd::OrbitGenStats gen;
  record.wall_ns = benchjson::Harness::time_ns([&] {
    const auto start = std::chrono::steady_clock::now();
    long long seen = 0;
    gen = nbhd::orderly_orbit_reps(5, 4, 3, [&](nbhd::OrderlyRep&&) {
      if ((++seen & 0xffff) != 0) return true;  // clock check every 2^16 reps
      return std::chrono::steady_clock::now() - start < std::chrono::milliseconds(budget_ms);
    });
  });
  if (gen.complete && gen.member_views != 21'474'836'480.0) {
    throw std::logic_error("e17 orderly scale row: member count disagrees with the census");
  }
  record.views = static_cast<long long>(gen.member_views);
  record.orbits = gen.reps_generated;
  record.orbit_reduction = gen.reps_generated > 0
                               ? gen.member_views / static_cast<double>(gen.reps_generated)
                               : 0.0;
  record.reps_generated = gen.reps_generated;
  std::printf("orderly scale smoke: k=5 d=4 rho=3 — %lld reps covering %.0f raw views in "
              "%.1f ms (%s)\n\n",
              static_cast<long long>(gen.reps_generated), gen.member_views,
              record.wall_ns / 1e6, gen.complete ? "complete" : "budget stop");
  harness.add(std::move(record));
}

void BM_EnumerateViews(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::enumerate_views(3, 2, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_EnumerateViews)->Arg(2)->Arg(3)->Arg(4);

void BM_EnumerateOrbits(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::enumerate_orbits(3, 2, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_EnumerateOrbits)->Arg(2)->Arg(3)->Arg(4);

void BM_OrbitCensusK5Rho3(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::orbit_census(5, 4, 3));
  }
}
BENCHMARK(BM_OrbitCensusK5Rho3);

void BM_CompatiblePairsK4Rho3(benchmark::State& state) {
  const nbhd::ViewCatalogue cat = nbhd::enumerate_views(4, 3, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::compatible_pairs(cat));
  }
}
BENCHMARK(BM_CompatiblePairsK4Rho3)->Unit(benchmark::kMillisecond);

void BM_OrbitPairsK4Rho3(benchmark::State& state) {
  const nbhd::OrbitCatalogue cat = nbhd::enumerate_orbits(4, 3, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::compatible_pairs(cat));
  }
}
BENCHMARK(BM_OrbitPairsK4Rho3)->Unit(benchmark::kMillisecond);

void BM_SolveCspK3(benchmark::State& state) {
  const nbhd::ViewCatalogue cat = nbhd::enumerate_views(3, 2, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::solve(cat));
  }
}
BENCHMARK(BM_SolveCspK3)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_SolveCspK4Rho2(benchmark::State& state) {
  const nbhd::ViewCatalogue cat = nbhd::enumerate_views(4, 3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::solve(cat));
  }
}
BENCHMARK(BM_SolveCspK4Rho2)->Unit(benchmark::kMillisecond);

void BM_SolveCspK5Rho2(benchmark::State& state) {
  const nbhd::ViewCatalogue cat = nbhd::enumerate_views(5, 4, 2);
  const auto pairs = nbhd::compatible_pairs(cat);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbhd::solve(cat, pairs));
  }
}
BENCHMARK(BM_SolveCspK5Rho2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dmm::benchjson::Harness harness("e17", argc, argv);
  // Strip --threads / --orbits before google-benchmark sees the arguments.
  int threads = 1;
  bool orbits = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::string(argv[i]) == "--orbits") {
      orbits = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  print_rows(harness, threads, orbits);
  if (harness.scale()) print_orderly_scale_row(harness);
  if (!harness.smoke()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return harness.write();
}
