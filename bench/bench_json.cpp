#include "bench_json.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dmm::benchjson {

namespace {

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal scanner for the writer's own output.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_space();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      throw std::invalid_argument(std::string("bench_json: expected '") + c + "' at offset " +
                                  std::to_string(pos_));
    }
    ++pos_;
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) throw std::invalid_argument("bench_json: bad \\u");
            c = static_cast<char>(std::stoi(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: c = esc;
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) throw std::invalid_argument("bench_json: unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double number_value() {
    skip_space();
    std::size_t used = 0;
    const double value = std::stod(text_.substr(pos_), &used);
    if (used == 0) throw std::invalid_argument("bench_json: expected a number");
    pos_ += used;
    return value;
  }

  void key(const char* name) {
    skip_space();
    const std::string got = string_value();
    if (got != name) {
      throw std::invalid_argument("bench_json: expected field '" + std::string(name) +
                                  "', got '" + got + "'");
    }
    expect(':');
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool known_experiment(const std::string& experiment) {
  return std::any_of(std::begin(kExperiments), std::end(kExperiments),
                     [&](const char* e) { return experiment == e; });
}

std::string to_json(const Record& record) {
  if (!std::isfinite(record.wall_ns)) {
    throw std::invalid_argument("bench_json: wall_ns must be finite (instance '" +
                                record.instance + "')");
  }
  if (!std::isfinite(record.init_ms)) {
    throw std::invalid_argument("bench_json: init_ms must be finite (instance '" +
                                record.instance + "')");
  }
  if (!std::isfinite(record.orbit_reduction)) {
    throw std::invalid_argument("bench_json: orbit_reduction must be finite (instance '" +
                                record.instance + "')");
  }
  if (!std::isfinite(record.restore_ms)) {
    throw std::invalid_argument("bench_json: restore_ms must be finite (instance '" +
                                record.instance + "')");
  }
  if (!std::isfinite(record.send_ms) || !std::isfinite(record.receive_ms)) {
    throw std::invalid_argument("bench_json: send_ms/receive_ms must be finite (instance '" +
                                record.instance + "')");
  }
  if (!std::isfinite(record.tenant_p50_ms) || !std::isfinite(record.tenant_p99_ms) ||
      !std::isfinite(record.fairness_ratio)) {
    throw std::invalid_argument("bench_json: tenant latency stats must be finite (instance '" +
                                record.instance + "')");
  }
  char wall[64];
  std::snprintf(wall, sizeof wall, "%.17g", record.wall_ns);
  char init[64];
  std::snprintf(init, sizeof init, "%.17g", record.init_ms);
  char reduction[64];
  std::snprintf(reduction, sizeof reduction, "%.17g", record.orbit_reduction);
  char restore[64];
  std::snprintf(restore, sizeof restore, "%.17g", record.restore_ms);
  char send[64];
  std::snprintf(send, sizeof send, "%.17g", record.send_ms);
  char receive[64];
  std::snprintf(receive, sizeof receive, "%.17g", record.receive_ms);
  char p50[64];
  std::snprintf(p50, sizeof p50, "%.17g", record.tenant_p50_ms);
  char p99[64];
  std::snprintf(p99, sizeof p99, "%.17g", record.tenant_p99_ms);
  char fairness[64];
  std::snprintf(fairness, sizeof fairness, "%.17g", record.fairness_ratio);
  std::ostringstream out;
  out << "{\"instance\":\"" << escape(record.instance) << "\""
      << ",\"n\":" << record.n << ",\"m\":" << record.m << ",\"k\":" << record.k
      << ",\"rounds\":" << record.rounds << ",\"wall_ns\":" << wall << ",\"engine\":\""
      << escape(record.engine) << "\",\"max_message_bytes\":" << record.max_message_bytes
      << ",\"views\":" << record.views << ",\"pairs\":" << record.pairs
      << ",\"csp_nodes\":" << record.csp_nodes << ",\"memo_hits\":" << record.memo_hits
      << ",\"threads\":" << record.threads << ",\"init_ms\":" << init
      << ",\"rss_bytes\":" << record.rss_bytes << ",\"orbits\":" << record.orbits
      << ",\"orbit_reduction\":" << reduction
      << ",\"reps_generated\":" << record.reps_generated
      << ",\"crashes\":" << record.crashes << ",\"restarts\":" << record.restarts
      << ",\"messages_dropped\":" << record.messages_dropped
      << ",\"checkpoint_bytes\":" << record.checkpoint_bytes
      << ",\"restore_ms\":" << restore << ",\"send_ms\":" << send
      << ",\"receive_ms\":" << receive << ",\"sessions\":" << record.sessions
      << ",\"tenant_p50_ms\":" << p50 << ",\"tenant_p99_ms\":" << p99
      << ",\"fairness_ratio\":" << fairness << ",\"churn_ops\":" << record.churn_ops
      << ",\"repairs\":" << record.repairs << ",\"touched_nodes\":" << record.touched_nodes
      << ",\"recompute_avoided\":" << record.recompute_avoided << "}";
  return out.str();
}

Record parse_record(const std::string& json) {
  Scanner in(json);
  Record r;
  in.expect('{');
  in.key("instance");
  r.instance = in.string_value();
  in.expect(',');
  in.key("n");
  r.n = static_cast<int>(in.number_value());
  in.expect(',');
  in.key("m");
  r.m = static_cast<int>(in.number_value());
  in.expect(',');
  in.key("k");
  r.k = static_cast<int>(in.number_value());
  in.expect(',');
  in.key("rounds");
  r.rounds = static_cast<int>(in.number_value());
  in.expect(',');
  in.key("wall_ns");
  r.wall_ns = in.number_value();
  in.expect(',');
  in.key("engine");
  r.engine = in.string_value();
  in.expect(',');
  in.key("max_message_bytes");
  r.max_message_bytes = static_cast<std::size_t>(in.number_value());
  in.expect(',');
  in.key("views");
  r.views = static_cast<long long>(in.number_value());
  in.expect(',');
  in.key("pairs");
  r.pairs = static_cast<long long>(in.number_value());
  in.expect(',');
  in.key("csp_nodes");
  r.csp_nodes = static_cast<long long>(in.number_value());
  in.expect(',');
  in.key("memo_hits");
  r.memo_hits = static_cast<long long>(in.number_value());
  in.expect(',');
  in.key("threads");
  r.threads = static_cast<int>(in.number_value());
  in.expect(',');
  in.key("init_ms");
  r.init_ms = in.number_value();
  in.expect(',');
  in.key("rss_bytes");
  r.rss_bytes = static_cast<long long>(in.number_value());
  in.expect(',');
  in.key("orbits");
  r.orbits = static_cast<long long>(in.number_value());
  in.expect(',');
  in.key("orbit_reduction");
  r.orbit_reduction = in.number_value();
  in.expect(',');
  in.key("reps_generated");
  r.reps_generated = static_cast<long long>(in.number_value());
  in.expect(',');
  in.key("crashes");
  r.crashes = static_cast<long long>(in.number_value());
  in.expect(',');
  in.key("restarts");
  r.restarts = static_cast<long long>(in.number_value());
  in.expect(',');
  in.key("messages_dropped");
  r.messages_dropped = static_cast<long long>(in.number_value());
  in.expect(',');
  in.key("checkpoint_bytes");
  r.checkpoint_bytes = static_cast<long long>(in.number_value());
  in.expect(',');
  in.key("restore_ms");
  r.restore_ms = in.number_value();
  in.expect(',');
  in.key("send_ms");
  r.send_ms = in.number_value();
  in.expect(',');
  in.key("receive_ms");
  r.receive_ms = in.number_value();
  in.expect(',');
  in.key("sessions");
  r.sessions = static_cast<long long>(in.number_value());
  in.expect(',');
  in.key("tenant_p50_ms");
  r.tenant_p50_ms = in.number_value();
  in.expect(',');
  in.key("tenant_p99_ms");
  r.tenant_p99_ms = in.number_value();
  in.expect(',');
  in.key("fairness_ratio");
  r.fairness_ratio = in.number_value();
  in.expect(',');
  in.key("churn_ops");
  r.churn_ops = static_cast<long long>(in.number_value());
  in.expect(',');
  in.key("repairs");
  r.repairs = static_cast<long long>(in.number_value());
  in.expect(',');
  in.key("touched_nodes");
  r.touched_nodes = static_cast<long long>(in.number_value());
  in.expect(',');
  in.key("recompute_avoided");
  r.recompute_avoided = static_cast<long long>(in.number_value());
  in.expect('}');
  return r;
}

Harness::Harness(std::string experiment, int& argc, char** argv)
    : experiment_(std::move(experiment)) {
  if (!known_experiment(experiment_)) {
    throw std::invalid_argument("bench_json: unknown experiment '" + experiment_ +
                                "' (the set is enumerated in bench_json.hpp)");
  }
  if (const char* env = std::getenv("DMM_BENCH_JSON_DIR")) directory_ = env;
  // Strip harness flags so google-benchmark's own parser never sees them.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke_ = true;
    } else if (arg == "--scale") {
      scale_ = true;
    } else if (arg == "--json-dir" && i + 1 < argc) {
      directory_ = argv[++i];
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
}

long long peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is KiB on Linux, bytes on macOS.
#if defined(__APPLE__)
  return static_cast<long long>(usage.ru_maxrss);
#else
  return static_cast<long long>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

void Harness::add(Record record) {
  (void)to_json(record);  // validates (finite wall time) before storing
  records_.push_back(std::move(record));
}

double Harness::time_ns(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count());
}

std::string Harness::path() const {
  std::string dir = directory_.empty() ? "." : directory_;
  if (dir.back() != '/') dir += '/';
  return dir + "BENCH_" + experiment_ + ".json";
}

int Harness::write() const {
  std::ofstream out(path());
  if (!out) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path().c_str());
    return 2;
  }
  out << "{\"schema\":\"dmm-bench-8\",\"experiment\":\"" << escape(experiment_)
      << "\",\"records\":[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (i) out << ",";
    out << "\n  " << to_json(records_[i]);
  }
  out << "\n]}\n";
  out.close();
  std::printf("bench_json: wrote %s (%zu record%s)\n", path().c_str(), records_.size(),
              records_.size() == 1 ? "" : "s");
  return out ? 0 : 2;
}

}  // namespace dmm::benchjson
