// E2 — §1.2 worst case: greedy needs exactly k-1 rounds; the endpoints are
// indistinguishable through round k-2.  Prints the series over k and times
// the chain simulation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_engines.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

void print_rows(benchjson::Harness& harness) {
  std::printf("## E2: the greedy worst case (paper §1.2)\n");
  std::printf("%4s %14s %8s %22s %22s\n", "k", "rounds(greedy)", "k-1", "views equal @ k-2",
              "views equal @ k-1");
  for (int k = 2; k <= 16; ++k) {
    const graph::WorstCase wc = graph::worst_case_chain(k);
    local::RunResult run;
    for (const local::EngineKind kind : {local::EngineKind::kSync, local::EngineKind::kFlat}) {
      run = benchjson::record_engine_run(harness, "worst-case chain k=" + std::to_string(k),
                                         wc.long_path, kind, algo::greedy_program_factory(),
                                         k + 1);
    }
    graph::EdgeColouredGraph merged(wc.long_path.node_count() + wc.short_path.node_count(), k);
    for (const auto& e : wc.long_path.edges()) merged.add_edge(e.u, e.v, e.colour);
    const graph::NodeIndex offset = wc.long_path.node_count();
    for (const auto& e : wc.short_path.edges()) {
      merged.add_edge(e.u + offset, e.v + offset, e.colour);
    }
    const bool eq_km2 = local::indistinguishable(merged, wc.u, wc.v + offset, k - 2);
    const bool eq_km1 = local::indistinguishable(merged, wc.u, wc.v + offset, k - 1);
    std::printf("%4d %14d %8d %22s %22s\n", k, run.rounds, k - 1, eq_km2 ? "yes" : "NO",
                eq_km1 ? "YES (bug)" : "no");
  }
  std::printf("\n");
}

void BM_WorstCaseChain(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const graph::WorstCase wc = graph::worst_case_chain(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::run_sync(wc.long_path, algo::greedy_program_factory(), k + 1));
  }
}
BENCHMARK(BM_WorstCaseChain)->Arg(4)->Arg(16)->Arg(64)->Arg(200);

void BM_WorstCaseChainFlat(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const graph::WorstCase wc = graph::worst_case_chain(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::run_flat(wc.long_path, algo::greedy_program_factory(), k + 1));
  }
}
BENCHMARK(BM_WorstCaseChainFlat)->Arg(4)->Arg(16)->Arg(64)->Arg(200);

void BM_IndistinguishabilityCheck(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const graph::WorstCase wc = graph::worst_case_chain(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::view_ball(wc.long_path, wc.u, k - 1));
  }
}
BENCHMARK(BM_IndistinguishabilityCheck)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  dmm::benchjson::Harness harness("e2", argc, argv);
  print_rows(harness);
  if (!harness.smoke()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return harness.write();
}
