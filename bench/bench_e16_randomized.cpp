// E16 — contrast: the k-1 lower bound is about *deterministic* anonymous
// algorithms.  A Luby-style randomized matcher ignores colours entirely
// and finishes in O(log m) rounds regardless of k; side by side with
// greedy on the worst-case chain the scope of Theorem 2 is visible.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

void print_rows() {
  std::printf("## E16: deterministic greedy vs randomized matching (rounds)\n");
  std::printf("%6s %14s %18s %18s\n", "k", "greedy (=k-1)", "randomized (mean)",
              "randomized (max)");
  Rng rng(2027);
  for (int k : {8, 16, 32, 64, 128, 200}) {
    const graph::EdgeColouredGraph g = graph::worst_case_chain(k).long_path;
    const local::RunResult det = local::run_sync(g, algo::greedy_program_factory(), k + 1);
    int total = 0, worst = 0;
    const int reps = 20;
    for (int rep = 0; rep < reps; ++rep) {
      const algo::RandomizedMatchingResult r = algo::randomized_matching(g, rng);
      total += r.rounds;
      worst = std::max(worst, r.rounds);
    }
    std::printf("%6d %14d %18.1f %18d\n", k, det.rounds,
                static_cast<double>(total) / reps, worst);
  }
  std::printf("\n(the deterministic lower bound k-1 grows linearly; the randomized\n"
              " baseline stays logarithmic — Theorem 2 is specifically about\n"
              " deterministic anonymous algorithms)\n\n");
}

void BM_RandomizedMatching(benchmark::State& state) {
  Rng rng(2029);
  const graph::EdgeColouredGraph g =
      graph::random_coloured_graph(static_cast<int>(state.range(0)), 6, 0.8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::randomized_matching(g, rng));
  }
}
BENCHMARK(BM_RandomizedMatching)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  return dmm::benchjson::Harness::run_table_experiment("e16", argc, argv, print_rows, [&] {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  });
}
