// Machine-readable benchmark trajectory: every bench binary emits a
// BENCH_<exp>.json file so perf PRs can show before/after numbers.
//
// File format (one JSON object per file):
//
//   {"schema":"dmm-bench-8","experiment":"e14","records":[
//     {"instance":"random n=100000 k=4","n":100000,"m":159862,"k":4,
//      "rounds":3,"wall_ns":12345678.0,"engine":"flat",
//      "max_message_bytes":1,"views":0,"pairs":0,"csp_nodes":0,
//      "memo_hits":0,"threads":1,"init_ms":1.25,"rss_bytes":104857600,
//      "orbits":0,"orbit_reduction":0,"reps_generated":0,"crashes":0,
//      "restarts":0,"messages_dropped":0,"checkpoint_bytes":0,
//      "restore_ms":0,"send_ms":4.5,"receive_ms":6.25,"sessions":0,
//      "tenant_p50_ms":0,"tenant_p99_ms":0,"fairness_ratio":0,
//      "churn_ops":0,"repairs":0,"touched_nodes":0,
//      "recompute_avoided":0}, ...]}
//
// Schema history: dmm-bench-2 appended the lower-bound pipeline stats —
// views, pairs, csp_nodes, memo_hits, threads — to every record (zero / 1
// where not applicable).  dmm-bench-3 appended the memory-model stats:
// init_ms (engine setup wall-clock — the phase the pooled program arena
// shrinks; 0 where no engine runs) and rss_bytes (peak process RSS after
// the measured section; 0 on platforms without getrusage), so the n = 10⁷
// scale rows capture whether init still dominates.  dmm-bench-4 appended
// the colour-symmetry stats: orbits (distinct colour-permutation orbits —
// catalogue orbits on e17 rows, evaluator memo orbits on e4 rows) and
// orbit_reduction (the raw/orbit count ratio, the ~k!-fold cut; both 0
// where the orbit layer is off).  dmm-bench-5 appended reps_generated —
// canonical representatives built by the orderly generator on e17 orbit
// rows (== orbits there: the generator never emits a non-canonical view)
// and evaluator-interned orbit keys on e4 rows; 0 where the orbit layer is
// off.  dmm-bench-6 (this PR) appends the fault/recovery stats measured by
// the new e9 experiment: crashes, restarts and messages_dropped (the
// RunResult fault counters — exact, so they gate on equality),
// checkpoint_bytes (serialised EngineCheckpoint size; deterministic) and
// restore_ms (wall-clock of EngineCheckpoint::read + engine restore; a
// measurement, never gated).  All zero on fault-free rows.  dmm-bench-7
// (this PR) appends the session/front-end stats: send_ms / receive_ms (the
// engines' per-phase wall-clock split, RunResult::send_ns/receive_ns; pure
// measurements, never gated or part of engine equivalence) and the e10
// multi-tenant front-end columns — sessions (completed sessions behind the
// row; exact, gates on equality), tenant_p50_ms / tenant_p99_ms (sojourn
// latency percentiles across tenants) and fairness_ratio (max/min tenant
// mean sojourn; wall-banded).  All zero on rows without a service.
// dmm-bench-8 (this PR) appends the dynamic-matching stats measured by the
// new e12 experiment (docs/dynamic.md): churn_ops (insert/delete events
// applied), repairs (matching edges created by incremental repair),
// touched_nodes (Σ per batch of distinct nodes the repairs visited) and
// recompute_avoided (Σ per batch of nodes a from-scratch rerun would have
// revisited for nothing).  All four are pure functions of
// (instance, seed) — engine- and thread-independent — so they gate on
// exact equality; all zero on churn-free rows.
//
// The record field names are part of the schema and locked by
// tests/test_bench_json.cpp; wall times must be finite (NaN is a
// measurement bug and is rejected at write time, not discovered by a
// downstream parser).
//
// The experiment set is enumerated explicitly — the seed shipped no e9,
// e10 or e12; e9 (bench_e9_faults.cpp), e10 (bench_e10_frontend.cpp) and
// e12 (bench_e12_churn.cpp) have since filled every gap, but the set
// stays an explicit list so the next gap fails loudly instead of being
// iterated over.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace dmm::benchjson {

/// Every experiment that exists in this repository, in bench/ file order.
inline constexpr const char* kExperiments[] = {
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
    "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17",
};

bool known_experiment(const std::string& experiment);

struct Record {
  std::string instance;              // instance family / table row label
  int n = 0;                         // nodes (0 when not graph-shaped)
  int m = 0;                         // edges
  int k = 0;                         // palette size
  int rounds = 0;                    // rounds used (-1 when not applicable)
  double wall_ns = 0.0;              // wall-clock of the measured section
  std::string engine = "-";          // "sync", "flat", or "-"
  std::size_t max_message_bytes = 0;
  // Lower-bound pipeline stats (dmm-bench-2); zero where not applicable.
  long long views = 0;               // view catalogue size
  long long pairs = 0;               // compatible pairs
  long long csp_nodes = 0;           // CSP search nodes explored
  long long memo_hits = 0;           // evaluator memo hits
  int threads = 1;                   // worker threads used by the run
  // Memory-model stats (dmm-bench-3); zero where not applicable.
  double init_ms = 0.0;              // engine setup (programs + init) wall-clock
  long long rss_bytes = 0;           // peak process RSS when recorded
  // Colour-symmetry stats (dmm-bench-4); zero where the orbit layer is off.
  long long orbits = 0;              // distinct colour-permutation orbits
  double orbit_reduction = 0.0;      // raw count / orbit count (~k!-fold cut)
  // Orderly-generation stats (dmm-bench-5); zero where the orbit layer is off.
  long long reps_generated = 0;      // canonical reps built by the generator
  // Fault/recovery stats (dmm-bench-6); zero on fault-free rows.
  long long crashes = 0;             // crash events applied
  long long restarts = 0;            // restarts applied
  long long messages_dropped = 0;    // messages dropped in flight
  long long checkpoint_bytes = 0;    // serialised EngineCheckpoint size
  double restore_ms = 0.0;           // read + restore wall-clock (not gated)
  // Session/front-end stats (dmm-bench-7); zero where not applicable.
  double send_ms = 0.0;              // engine send-phase wall-clock (not gated)
  double receive_ms = 0.0;           // engine receive-phase wall-clock (not gated)
  long long sessions = 0;            // completed service sessions (exact)
  double tenant_p50_ms = 0.0;        // median tenant sojourn latency (not gated)
  double tenant_p99_ms = 0.0;        // p99 tenant sojourn latency (not gated)
  double fairness_ratio = 0.0;       // max/min tenant mean sojourn (banded)
  // Dynamic-matching stats (dmm-bench-8); zero on churn-free rows.  Pure
  // functions of (instance, seed): all gate on exact equality.
  long long churn_ops = 0;           // insert/delete events applied
  long long repairs = 0;             // matching edges created by repair
  long long touched_nodes = 0;       // Σ distinct nodes repairs visited, per batch
  long long recompute_avoided = 0;   // Σ nodes a from-scratch rerun would redo

  bool operator==(const Record&) const = default;
};

/// Peak resident set size of this process in bytes (getrusage); 0 where
/// the platform has no such counter.
long long peak_rss_bytes();

/// One-line JSON object with the schema's exact field order.  Throws
/// std::invalid_argument on a non-finite wall_ns.
std::string to_json(const Record& record);

/// Exact inverse of to_json (round-trip checked in the tests).  Throws
/// std::invalid_argument on malformed input.
Record parse_record(const std::string& json);

/// Collects records for one experiment and writes BENCH_<exp>.json.
///
/// The constructor strips the harness flags out of argc/argv so that
/// google-benchmark never sees them:
///   --smoke            only the instrumented tables run, benchmark loops
///                      are skipped by the caller (see bench mains)
///   --scale            opt-in n = 10⁷ scale rows (the `bench_scale`
///                      nightly leg; only e14 reacts, every binary accepts
///                      the flag so run_benches.py can pass it uniformly)
///   --json-dir <path>  output directory (default: $DMM_BENCH_JSON_DIR,
///                      falling back to the working directory)
class Harness {
 public:
  Harness(std::string experiment, int& argc, char** argv);

  bool smoke() const noexcept { return smoke_; }
  bool scale() const noexcept { return scale_; }

  /// Validates (via to_json) and stores one record.
  void add(Record record);

  /// Runs fn(), fills record.wall_ns with its wall-clock, stores it.
  template <class F>
  void timed(Record record, F&& fn) {
    record.wall_ns = time_ns([&] { fn(); });
    add(std::move(record));
  }

  /// Wall-clock of fn() in nanoseconds, for callers that patch a record
  /// with results computed inside fn().
  static double time_ns(const std::function<void()>& fn);

  /// Writes BENCH_<experiment>.json; returns 0, or 2 on I/O failure.  Call
  /// last in main().
  int write() const;

  const std::vector<Record>& records() const noexcept { return records_; }
  std::string path() const;

  /// Shared main() body for the table-only experiments: one whole-table
  /// record, benchmark loops skipped in --smoke mode.  (The engine-aware
  /// benches e1/e2/e5/e14 record per-instance rows instead.)
  template <class Table, class Benchmarks>
  static int run_table_experiment(const char* experiment, int& argc, char** argv,
                                  Table&& print_table, Benchmarks&& run_benchmarks) {
    Harness harness(experiment, argc, argv);
    Record table;
    table.instance = "experiment table";
    table.rounds = -1;
    harness.timed(std::move(table), std::forward<Table>(print_table));
    if (!harness.smoke()) run_benchmarks();
    return harness.write();
  }

 private:
  std::string experiment_;
  std::string directory_;
  bool smoke_ = false;
  bool scale_ = false;
  std::vector<Record> records_;
};

}  // namespace dmm::benchjson
