// E5 — Corollary 1: the lower-bound instances are d-regular with d = k-1,
// so the bound is Ω(Δ) in the maximum degree.  Prints the per-k row
// (regularity of U/V, greedy's horizon on them) and times greedy on
// d-regular trees of growing degree.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_engines.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

void print_rows(benchjson::Harness& harness) {
  std::printf("## E5: Corollary 1 — Omega(Delta) on d-regular instances (d = k-1)\n");
  std::printf("%4s %4s %12s %12s %14s\n", "k", "d", "U regular?", "V regular?",
              "greedy rounds");
  for (int k = 3; k <= 4; ++k) {
    const algo::GreedyLocal greedy(k);
    const lower::LowerBoundResult result = lower::run_adversary(k, greedy);
    if (!result.tight()) continue;
    const auto& tp = std::get<lower::TightPair>(result.outcome);
    // Simulate greedy on a concrete ball of U big enough to settle node 0.
    const colsys::ColourSystem chunk = tp.u.tree().ball(colsys::ColourSystem::root(),
                                                        std::min(tp.u.valid_radius(), k + 1));
    const graph::EdgeColouredGraph g = graph::to_graph(chunk);
    local::RunResult run;
    for (const local::EngineKind kind : {local::EngineKind::kSync, local::EngineKind::kFlat}) {
      run = benchjson::record_engine_run(harness, "tight-pair U ball k=" + std::to_string(k),
                                         g, kind, algo::greedy_program_factory(), k + 1);
    }
    std::printf("%4d %4d %12s %12s %14d\n", k, k - 1,
                tp.u.tree().is_regular(k - 1) ? "yes" : "NO",
                tp.v.tree().is_regular(k - 1) ? "yes" : "NO", run.rounds);
  }
  std::printf("\n(regular trees of degree d need Theta(d) greedy rounds; see also E2)\n\n");
}

void BM_GreedyOnRegularTree(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int k = d + 1;
  const colsys::ColourSystem tree = colsys::regular_system(k, d, 6);
  const graph::EdgeColouredGraph g = graph::to_graph(tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::run_sync(g, algo::greedy_program_factory(), k + 1));
  }
  state.counters["nodes"] = g.node_count();
}
BENCHMARK(BM_GreedyOnRegularTree)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace

int main(int argc, char** argv) {
  dmm::benchjson::Harness harness("e5", argc, argv);
  print_rows(harness);
  if (!harness.smoke()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return harness.write();
}
