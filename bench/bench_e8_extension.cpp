// E8 — the extension algebra (§3.3-3.4): sizes and costs of ext(T, τ, P),
// plus computational confirmations of Lemma 6 (regularity) and Lemma 8
// (commutativity) at bench scale.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;
using namespace dmm::lower;

Template edge_template(int k) {
  colsys::ColourSystem edge(k);
  edge.add_child(colsys::ColourSystem::root(), 2);
  return Template(edge, {1, 1}, 1);
}

void print_rows() {
  std::printf("## E8: extension sizes (h-template + b-picker -> (h+b)-template)\n");
  std::printf("%4s %4s %4s %8s %10s %12s\n", "k", "h", "b", "depth", "|X|", "regular?");
  for (int b = 1; b <= 3; ++b) {
    const int k = 6;
    const Template t = edge_template(k);
    const Picker p = canonical_free_picker(t, b);
    for (int depth : {4, 6, 8}) {
      const Extension e = extend(t, p, depth);
      std::printf("%4d %4d %4d %8d %10d %12s\n", k, t.h(), b, depth, e.result.tree().size(),
                  e.result.tree().is_regular(1 + b) ? "yes" : "NO");
    }
  }
  std::printf("\n");
}

void BM_Extend(benchmark::State& state) {
  const Template t = edge_template(6);
  const Picker p = canonical_free_picker(t, 2);
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(extend(t, p, depth));
  }
}
BENCHMARK(BM_Extend)->Arg(6)->Arg(9)->Arg(12);

void BM_RealisationBall(benchmark::State& state) {
  const Template t = edge_template(6);
  const int radius = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(realisation_ball(t, colsys::ColourSystem::root(), radius));
  }
}
BENCHMARK(BM_RealisationBall)->Arg(3)->Arg(5)->Arg(7);

void BM_Lemma8BothOrders(benchmark::State& state) {
  // Cost of checking commutativity: ext-then-ext vs ext-by-union.
  const Template t = edge_template(6);
  Picker p, q;
  p.choices = {{3}, {3}};
  q.choices = {{4}, {5}};
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const Extension kp = extend(t, p, depth);
    Picker q_on_k;
    q_on_k.choices.resize(static_cast<std::size_t>(kp.result.tree().size()));
    for (colsys::NodeId v = 0; v < kp.result.tree().size(); ++v) {
      q_on_k.choices[static_cast<std::size_t>(v)] = q.at(kp.p[static_cast<std::size_t>(v)]);
    }
    const Extension lq = extend(kp.result, q_on_k, depth);
    const Extension xr = extend(t, union_picker(p, q), depth);
    benchmark::DoNotOptimize(
        colsys::ColourSystem::equal_to_radius(lq.result.tree(), xr.result.tree(), depth));
  }
}
BENCHMARK(BM_Lemma8BothOrders)->Arg(5)->Arg(7);

}  // namespace

int main(int argc, char** argv) {
  return dmm::benchjson::Harness::run_table_experiment("e8", argc, argv, print_rows, [&] {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  });
}
