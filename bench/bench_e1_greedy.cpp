// E1 — Figure 1 + Lemma 1: greedy maximal matching.
//
// Prints the experiment rows (instance family, k, rounds used vs the k-1
// bound, matching size, validity) and then times the three greedy
// realisations with google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_engines.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

void print_rows(benchjson::Harness& harness) {
  std::printf("## E1: greedy maximal matching (Lemma 1: rounds <= k-1)\n");
  std::printf("%-28s %-5s %4s %8s %8s %8s %8s\n", "instance", "eng", "k", "rounds", "bound",
              "matched", "valid");
  struct Row {
    const char* name;
    graph::EdgeColouredGraph g;
  };
  Rng rng(1);
  const Row rows[] = {
      {"figure-1 (paper)", graph::figure1_graph()},
      {"random n=256 k=4", graph::random_coloured_graph(256, 4, 0.8, rng)},
      {"random n=256 k=8", graph::random_coloured_graph(256, 8, 0.8, rng)},
      {"hypercube d=8", graph::hypercube(8)},
      {"complete-bipartite d=8", graph::complete_bipartite(8)},
      {"worst-case chain k=8", graph::worst_case_chain(8).long_path},
      {"cayley ball k=4 depth=6", graph::to_graph(colsys::cayley_ball(4, 6))},
  };
  for (const Row& row : rows) {
    const int k = row.g.k();
    for (const local::EngineKind kind : {local::EngineKind::kSync, local::EngineKind::kFlat}) {
      const local::RunResult run = benchjson::record_engine_run(
          harness, row.name, row.g, kind, algo::greedy_program_factory(), k + 1);
      const auto matched = verify::matched_edges(row.g, run.outputs);
      const bool ok = verify::check_outputs(row.g, run.outputs).ok();
      std::printf("%-28s %-5s %4d %8d %8d %8zu %8s\n", row.name,
                  local::engine_kind_name(kind), k, run.rounds, k - 1, matched.size(),
                  ok ? "yes" : "NO");
    }
  }
  std::printf("\n");
}

void BM_GreedyReference(benchmark::State& state) {
  Rng rng(2);
  const graph::EdgeColouredGraph g =
      graph::random_coloured_graph(static_cast<int>(state.range(0)), 6, 0.8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::greedy_outputs(g));
  }
  state.SetItemsProcessed(state.iterations() * g.node_count());
}
BENCHMARK(BM_GreedyReference)->Arg(256)->Arg(1024)->Arg(4096);

void BM_GreedyMessagePassing(benchmark::State& state) {
  Rng rng(3);
  const graph::EdgeColouredGraph g =
      graph::random_coloured_graph(static_cast<int>(state.range(0)), 6, 0.8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::run_sync(g, algo::greedy_program_factory(), 8));
  }
  state.SetItemsProcessed(state.iterations() * g.node_count());
}
BENCHMARK(BM_GreedyMessagePassing)->Arg(256)->Arg(1024)->Arg(4096);

void BM_GreedyFlatEngine(benchmark::State& state) {
  Rng rng(3);
  const graph::EdgeColouredGraph g =
      graph::random_coloured_graph(static_cast<int>(state.range(0)), 6, 0.8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::run_flat(g, algo::greedy_program_factory(), 8));
  }
  state.SetItemsProcessed(state.iterations() * g.node_count());
}
BENCHMARK(BM_GreedyFlatEngine)->Arg(256)->Arg(1024)->Arg(4096);

void BM_GreedyViewBased(benchmark::State& state) {
  Rng rng(4);
  const int k = 6;
  const graph::EdgeColouredGraph g =
      graph::random_coloured_graph(static_cast<int>(state.range(0)), k, 0.8, rng);
  const algo::GreedyLocal algo_obj(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::run_views(g, algo_obj));
  }
  state.SetItemsProcessed(state.iterations() * g.node_count());
}
BENCHMARK(BM_GreedyViewBased)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  dmm::benchjson::Harness harness("e1", argc, argv);
  print_rows(harness);
  if (!harness.smoke()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return harness.write();
}
