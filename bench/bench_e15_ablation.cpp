// E15 — ablations of the adversary's design choices (DESIGN.md §3):
//
//  (a) view memoisation on/off: identical outcomes, wildly different
//      algorithm-invocation counts (Corollary 2 means most views repeat);
//  (b) depth budget: the conservative required_radius formula vs what the
//      construction actually used (|y| is usually 1, the formula assumes
//      r+2) — measured as materialised tree sizes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

void print_rows() {
  std::printf("## E15a: memoisation ablation (outcome must not change)\n");
  std::printf("%-24s %3s %10s %12s %12s %10s\n", "algorithm", "k", "memo", "invocations",
              "memo hits", "outcome");
  for (int k = 3; k <= 4; ++k) {
    const algo::GreedyLocal greedy(k);
    for (bool memo : {true, false}) {
      const lower::LowerBoundResult result =
          lower::run_adversary(k, greedy, {.memoise = memo});
      std::printf("%-24s %3d %10s %12llu %12llu %10s\n", greedy.name().c_str(), k,
                  memo ? "on" : "off",
                  static_cast<unsigned long long>(result.stats.evaluations),
                  static_cast<unsigned long long>(result.stats.memo_hits),
                  result.tight() ? "tight" : "other");
    }
  }

  std::printf("\n## E15b: depth actually consumed vs budgeted (|y| per step)\n");
  std::printf("%-24s %3s %6s %14s %16s\n", "algorithm", "k", "step", "|y| (used)",
              "budget (r+2)");
  for (int k = 3; k <= 4; ++k) {
    const algo::GreedyLocal greedy(k);
    const lower::LowerBoundResult result = lower::run_adversary(k, greedy);
    for (const auto& step : result.stats.steps) {
      std::printf("%-24s %3d %6d %14d %16d\n", greedy.name().c_str(), k, step.h,
                  step.y_found ? step.y.norm() : -1, greedy.running_time() + 2);
    }
  }
  std::printf("\n");
}

void BM_AdversaryMemoised(benchmark::State& state) {
  const algo::GreedyLocal greedy(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lower::run_adversary(static_cast<int>(state.range(0)), greedy, {.memoise = true}));
  }
}
BENCHMARK(BM_AdversaryMemoised)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_AdversaryUnmemoised(benchmark::State& state) {
  const algo::GreedyLocal greedy(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lower::run_adversary(static_cast<int>(state.range(0)), greedy, {.memoise = false}));
  }
}
BENCHMARK(BM_AdversaryUnmemoised)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dmm::benchjson::Harness::run_table_experiment("e15", argc, argv, print_rows, [&] {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  });
}
