// E6 — §1.3's trivial case d = k: colour class 1 is a perfect matching and
// a 0-round algorithm solves the problem.  Prints rows for hypercubes and
// complete bipartite instances; times the constant-round solve vs greedy.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

void print_rows() {
  std::printf("## E6: the trivial case d = k (§1.3)\n");
  std::printf("%-26s %4s %8s %14s %12s\n", "instance", "d=k", "nodes", "0-round valid",
              "greedy rounds");
  for (int d = 2; d <= 9; ++d) {
    const graph::EdgeColouredGraph g = graph::hypercube(d);
    const algo::FirstColourLocal naive(d);
    const bool ok = verify::check_outputs(g, local::run_views(g, naive)).ok();
    const local::RunResult greedy = local::run_sync(g, algo::greedy_program_factory(), d + 1);
    std::printf("hypercube Q_%-13d %4d %8d %14s %12d\n", d, d, g.node_count(),
                ok ? "yes" : "NO", greedy.rounds);
  }
  for (int d = 2; d <= 9; ++d) {
    const graph::EdgeColouredGraph g = graph::complete_bipartite(d);
    const algo::FirstColourLocal naive(d);
    const bool ok = verify::check_outputs(g, local::run_views(g, naive)).ok();
    const local::RunResult greedy = local::run_sync(g, algo::greedy_program_factory(), d + 1);
    std::printf("K_{%d,%d}%*s %4d %8d %14s %12d\n", d, d, d >= 10 ? 15 : 17, "", d,
                g.node_count(), ok ? "yes" : "NO", greedy.rounds);
  }
  std::printf("\n(d = k-1, by contrast, forces k-1 rounds: see E2/E4)\n\n");
}

void BM_TrivialCaseHypercube(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const graph::EdgeColouredGraph g = graph::hypercube(d);
  const algo::FirstColourLocal naive(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::run_views(g, naive));
  }
  state.counters["nodes"] = g.node_count();
}
BENCHMARK(BM_TrivialCaseHypercube)->Arg(6)->Arg(10)->Arg(14);

}  // namespace

int main(int argc, char** argv) {
  return dmm::benchjson::Harness::run_table_experiment("e6", argc, argv, print_rows, [&] {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  });
}
