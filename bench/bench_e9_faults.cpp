// E9 — fault injection and checkpoint/replay recovery (ISSUE 8): what a
// faulty run costs over a clean one, what a checkpoint weighs, and how fast
// a killed run comes back.  The fault counters (crashes, restarts,
// messages_dropped) are pure functions of the seeded FaultPlan, so the
// baseline gates them on exact equality; checkpoint_bytes is deterministic
// for the same reason.  restore_ms is a wall-clock measurement and is
// recorded but never gated.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "bench_engines.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

// One greedy run under `plan` on the chosen engine, recorded with the
// dmm-bench-6 fault counters filled in from the RunResult.
local::RunResult record_faulty_run(benchjson::Harness& harness, const std::string& instance,
                                   const graph::EdgeColouredGraph& g, local::EngineKind kind,
                                   const local::FaultPlan& plan, int max_rounds,
                                   const local::FlatEngineOptions& options = {},
                                   const local::CheckpointOptions& checkpoint = {}) {
  benchjson::Record record;
  record.instance = instance;
  record.n = g.node_count();
  record.m = g.edge_count();
  record.k = g.k();
  record.engine = local::engine_kind_name(kind);
  record.threads = kind == local::EngineKind::kFlat ? options.threads : 1;
  const local::FaultOptions faults{&plan};
  local::RunResult run;
  record.wall_ns = benchjson::Harness::time_ns([&] {
    run = kind == local::EngineKind::kFlat
              ? local::run_flat(g, algo::greedy_program_factory(), max_rounds, options, faults,
                                checkpoint)
              : local::run_sync(g, algo::greedy_program_factory(), max_rounds, faults,
                                checkpoint);
  });
  record.rounds = run.rounds;
  record.max_message_bytes = run.max_message_bytes;
  record.init_ms = run.init_ns / 1e6;
  record.rss_bytes = benchjson::peak_rss_bytes();
  record.crashes = static_cast<long long>(run.crashes);
  record.restarts = static_cast<long long>(run.restarts);
  record.messages_dropped = static_cast<long long>(run.messages_dropped);
  harness.add(std::move(record));
  return run;
}

// The e9 workload: large enough that per-round engine cost is visible,
// small enough for the CI bench gate.  Everything below is seeded, so the
// pinned BENCH_e9.json counters reproduce on any machine.
graph::EdgeColouredGraph workload() {
  Rng rng(97);
  return graph::random_coloured_graph(20000, 8, 0.6, rng);
}

local::FaultPlan workload_plan(const graph::EdgeColouredGraph& g) {
  local::FaultSpec spec;
  spec.crash_prob = 0.02;
  spec.horizon = 6;
  spec.min_down = 1;
  spec.max_down = 3;
  spec.permanent_prob = 0.25;
  spec.drop_prob = 0.01;
  spec.seed = 1097;
  return local::FaultPlan::random(g, spec);
}

int faulty_max_rounds(const graph::EdgeColouredGraph& g, const local::FaultPlan& plan) {
  // A restarted node still has to finish its protocol, so faulty runs get
  // headroom past the last restart.
  return std::max(g.k() + 1, plan.max_restart_round() + g.k() + 2);
}

void print_rows(benchjson::Harness& harness) {
  const graph::EdgeColouredGraph g = workload();
  const local::FaultPlan plan = workload_plan(g);
  const local::FaultPlan no_faults;
  const int rounds_budget = faulty_max_rounds(g, plan);

  std::printf("## E9a: fault-free vs faulty, greedy at n = %d, k = %d\n", g.node_count(),
              g.k());
  std::printf("%-28s %-6s %8s %12s %7s %8s %9s %7s\n", "instance", "engine", "threads",
              "wall (ms)", "rounds", "crashes", "restarts", "drops");
  const std::string clean_label = "random n=20000 k=8";
  const std::string faulty_label = "random n=20000 k=8 faults";
  for (const local::EngineKind kind : {local::EngineKind::kSync, local::EngineKind::kFlat}) {
    const local::RunResult run =
        record_faulty_run(harness, clean_label, g, kind, no_faults, g.k() + 1);
    std::printf("%-28s %-6s %8d %12.2f %7d %8llu %9llu %7llu\n", clean_label.c_str(),
                local::engine_kind_name(kind), 1, harness.records().back().wall_ns / 1e6,
                run.rounds, static_cast<unsigned long long>(run.crashes),
                static_cast<unsigned long long>(run.restarts),
                static_cast<unsigned long long>(run.messages_dropped));
  }
  local::RunResult faulty_serial;
  for (const local::EngineKind kind : {local::EngineKind::kSync, local::EngineKind::kFlat}) {
    const local::RunResult run =
        record_faulty_run(harness, faulty_label, g, kind, plan, rounds_budget);
    if (kind == local::EngineKind::kSync) faulty_serial = run;
    std::printf("%-28s %-6s %8d %12.2f %7d %8llu %9llu %7llu\n", faulty_label.c_str(),
                local::engine_kind_name(kind), 1, harness.records().back().wall_ns / 1e6,
                run.rounds, static_cast<unsigned long long>(run.crashes),
                static_cast<unsigned long long>(run.restarts),
                static_cast<unsigned long long>(run.messages_dropped));
  }
  {
    // The schedule-independence claim in one row: four workers, same plan,
    // same counters — the baseline gate pins all three against the serial
    // rows above.
    local::FlatEngineOptions options;
    options.threads = 4;
    const local::RunResult run = record_faulty_run(harness, faulty_label, g,
                                                   local::EngineKind::kFlat, plan,
                                                   rounds_budget, options);
    std::printf("%-28s %-6s %8d %12.2f %7d %8llu %9llu %7llu\n", faulty_label.c_str(), "flat",
                4, harness.records().back().wall_ns / 1e6, run.rounds,
                static_cast<unsigned long long>(run.crashes),
                static_cast<unsigned long long>(run.restarts),
                static_cast<unsigned long long>(run.messages_dropped));
    if (run.outputs != faulty_serial.outputs || run.crashes != faulty_serial.crashes ||
        run.restarts != faulty_serial.restarts ||
        run.messages_dropped != faulty_serial.messages_dropped) {
      std::fprintf(stderr, "e9: threaded faulty run diverged from the serial oracle\n");
      std::abort();
    }
  }
  std::printf("\n");

  // E9b: capture a checkpoint mid-run, then measure what recovery costs:
  // checkpoint_bytes is the serialised frame size, restore_ms times
  // EngineCheckpoint::read (+ FlatEngine::restore on the flat row).  The
  // resumed run must finish bit-identical to the uninterrupted one — the
  // bench aborts if it ever does not, so a green baseline row doubles as a
  // recovery smoke check.
  std::printf("## E9b: checkpoint + restore, greedy under faults, every 2 rounds\n");
  std::printf("%-28s %-6s %12s %12s %13s %8s\n", "instance", "engine", "wall (ms)",
              "ckpt bytes", "restore (ms)", "resumed");
  const std::string ckpt_label = "random n=20000 k=8 ckpt";
  for (const local::EngineKind kind : {local::EngineKind::kSync, local::EngineKind::kFlat}) {
    local::EngineCheckpoint last;
    bool captured = false;
    local::CheckpointOptions capture;
    capture.every = 2;
    capture.sink = [&](const local::EngineCheckpoint& ck) {
      last = ck;
      captured = true;
    };
    benchjson::Record record;
    record.instance = ckpt_label;
    record.n = g.node_count();
    record.m = g.edge_count();
    record.k = g.k();
    record.engine = local::engine_kind_name(kind);
    const local::FaultOptions faults{&plan};
    local::RunResult run;
    record.wall_ns = benchjson::Harness::time_ns([&] {
      run = kind == local::EngineKind::kFlat
                ? local::run_flat(g, algo::greedy_program_factory(), rounds_budget, {}, faults,
                                  capture)
                : local::run_sync(g, algo::greedy_program_factory(), rounds_budget, faults,
                                  capture);
    });
    record.rounds = run.rounds;
    record.max_message_bytes = run.max_message_bytes;
    record.init_ms = run.init_ns / 1e6;
    record.rss_bytes = benchjson::peak_rss_bytes();
    record.crashes = static_cast<long long>(run.crashes);
    record.restarts = static_cast<long long>(run.restarts);
    record.messages_dropped = static_cast<long long>(run.messages_dropped);
    if (!captured) {
      std::fprintf(stderr, "e9: checkpoint sink never fired\n");
      std::abort();
    }
    std::ostringstream frames;
    last.write(frames);
    const std::string bytes = frames.str();
    record.checkpoint_bytes = static_cast<long long>(bytes.size());

    // restore_ms: parse + validate the frames, and on the flat row also
    // load them into a live engine (the sync engine has no persistent
    // object to restore into — its resume path re-reads inside run_sync).
    local::EngineCheckpoint parsed;
    record.restore_ms = benchjson::Harness::time_ns([&] {
                          std::istringstream in(bytes);
                          parsed = local::EngineCheckpoint::read(in);
                          parsed.require_matches(g);
                          if (kind == local::EngineKind::kFlat) {
                            local::FlatEngine engine(g, algo::greedy_program_factory(),
                                                     rounds_budget, {});
                            engine.restore(parsed);
                          }
                        }) /
                        1e6;

    local::CheckpointOptions resume;
    resume.resume = &parsed;
    const local::RunResult resumed =
        kind == local::EngineKind::kFlat
            ? local::run_flat(g, algo::greedy_program_factory(), rounds_budget, {}, faults,
                              resume)
            : local::run_sync(g, algo::greedy_program_factory(), rounds_budget, faults, resume);
    const bool ok = resumed.outputs == run.outputs && resumed.halt_round == run.halt_round &&
                    resumed.rounds == run.rounds && resumed.crashes == run.crashes &&
                    resumed.restarts == run.restarts &&
                    resumed.messages_dropped == run.messages_dropped;
    if (!ok) {
      std::fprintf(stderr, "e9: resumed run diverged from the uninterrupted run\n");
      std::abort();
    }
    harness.add(std::move(record));
    const benchjson::Record& rec = harness.records().back();
    std::printf("%-28s %-6s %12.2f %12lld %13.3f %8s\n", ckpt_label.c_str(),
                local::engine_kind_name(kind), rec.wall_ns / 1e6, rec.checkpoint_bytes,
                rec.restore_ms, ok ? "ok" : "FAIL");
  }
  std::printf("\n");
}

void BM_FaultyRun(benchmark::State& state) {
  const graph::EdgeColouredGraph g = workload();
  const local::FaultPlan plan = workload_plan(g);
  const local::FaultOptions faults{&plan};
  const int budget = faulty_max_rounds(g, plan);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        local::run_flat(g, algo::greedy_program_factory(), budget, {}, faults));
  }
  state.SetItemsProcessed(state.iterations() * g.node_count());
}
BENCHMARK(BM_FaultyRun);

void BM_DropHash(benchmark::State& state) {
  // The per-message cost every drop-enabled round pays: one stateless hash
  // per (round, sender, colour) triple.
  local::FaultPlan plan;
  plan.set_drops(0.01, 1097);
  int round = 1;
  for (auto _ : state) {
    bool any = false;
    for (graph::NodeIndex v = 0; v < 4096; ++v) {
      any ^= plan.drops(round, v, static_cast<gk::Colour>(1 + (v & 7)));
    }
    benchmark::DoNotOptimize(any);
    ++round;
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_DropHash);

void BM_CheckpointCapture(benchmark::State& state) {
  const graph::EdgeColouredGraph g = workload();
  // Capture at round 2 of a clean run: most nodes are still running, so
  // this is the expensive end (every live program serialises its state).
  local::EngineCheckpoint snap;
  local::CheckpointOptions capture;
  capture.every = 2;
  capture.sink = [&](const local::EngineCheckpoint& ck) {
    if (snap.round == 0) snap = ck;
  };
  (void)local::run_sync(g, algo::greedy_program_factory(), g.k() + 1, {}, capture);
  for (auto _ : state) {
    std::ostringstream out;
    snap.write(out);
    benchmark::DoNotOptimize(out.str().size());
  }
}
BENCHMARK(BM_CheckpointCapture);

void BM_CheckpointRestore(benchmark::State& state) {
  const graph::EdgeColouredGraph g = workload();
  local::EngineCheckpoint snap;
  local::CheckpointOptions capture;
  capture.every = 2;
  capture.sink = [&](const local::EngineCheckpoint& ck) {
    if (snap.round == 0) snap = ck;
  };
  (void)local::run_sync(g, algo::greedy_program_factory(), g.k() + 1, {}, capture);
  std::ostringstream out;
  snap.write(out);
  const std::string bytes = out.str();
  local::FlatEngine engine(g, algo::greedy_program_factory(), g.k() + 1, {});
  for (auto _ : state) {
    std::istringstream in(bytes);
    engine.restore(in);
    benchmark::DoNotOptimize(engine.snapshot().round);
  }
}
BENCHMARK(BM_CheckpointRestore);

}  // namespace

int main(int argc, char** argv) {
  dmm::benchjson::Harness harness("e9", argc, argv);
  print_rows(harness);
  if (!harness.smoke()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return harness.write();
}
