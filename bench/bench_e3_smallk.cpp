// E3 — Lemma 4 (k <= 2): every 0-round algorithm fails on one of the three
// instances T = {e,1}, U = {e,2}, V = {e,1,2}.  Prints the refutation table
// over a family of candidate algorithms and times the Lemma 4 runner.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

void print_rows() {
  std::printf("## E3: Lemma 4 — zero-round algorithms on k = 2\n");
  std::printf("%-34s %12s %-50s\n", "algorithm", "refuted", "witness");
  std::vector<std::unique_ptr<local::LocalAlgorithm>> algorithms;
  algorithms.push_back(std::make_unique<algo::TruncatedGreedy>(2, 0));
  algorithms.push_back(std::make_unique<algo::FirstColourLocal>(2));
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    algorithms.push_back(std::make_unique<algo::ArbitraryLocal>(2, 0, seed));
  }
  for (const auto& a : algorithms) {
    const lower::Lemma4Result result = lower::run_lemma4(*a);
    std::printf("%-34s %12s %-50s\n", a->name().c_str(),
                result.contradiction_found ? "yes" : "NO (bug)",
                result.contradiction_found
                    ? result.report.violations.front().describe().c_str()
                    : "-");
  }
  // The 1-round greedy is correct; Lemma 4 has nothing to refute.
  const algo::GreedyLocal greedy(2);
  const lower::Lemma4Result ok = lower::run_lemma4(greedy);
  std::printf("%-34s %12s %-50s\n", greedy.name().c_str(),
              ok.contradiction_found ? "YES (bug)" : "no", "bound k-1 = 1 is met");
  std::printf("\n");
}

void BM_Lemma4(benchmark::State& state) {
  const algo::TruncatedGreedy fast(2, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lower::run_lemma4(fast));
  }
}
BENCHMARK(BM_Lemma4);

}  // namespace

int main(int argc, char** argv) {
  return dmm::benchjson::Harness::run_table_experiment("e3", argc, argv, print_rows, [&] {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  });
}
