// E14 — substrate microbenchmarks: G_k word arithmetic, colour-system
// surgeries, view extraction, and simulator throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_engines.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

void print_rows(benchjson::Harness& harness) {
  std::printf("## E14: substrate characteristics\n");
  std::printf("%-28s %12s\n", "object", "size");
  std::printf("%-28s %12d\n", "Gamma_4[6] nodes", colsys::cayley_ball(4, 6).size());
  std::printf("%-28s %12d\n", "Gamma_5[6] nodes", colsys::cayley_ball(5, 6).size());
  std::printf("%-28s %12d\n", "3-regular k=4 depth 10", colsys::regular_system(4, 3, 10).size());
  std::printf("\n");

  // The engine-throughput regression gauge (ROADMAP "Engine throughput"):
  // one greedy run per engine at n = 100 000, recorded to BENCH_e14.json.
  // The flat engine's whole reason to exist is this ratio (the acceptance
  // bar is >= 5x; k = 12 at density 0.6 keeps many nodes running for all
  // k-1 rounds, which is exactly the regime the per-round engine cost
  // dominates).
  std::printf("## E14b: engine throughput, greedy at n = 100000, k = 12\n");
  std::printf("%-8s %14s %10s\n", "engine", "wall (ms)", "rounds");
  Rng rng(41);
  const graph::EdgeColouredGraph big = graph::random_coloured_graph(100000, 12, 0.6, rng);
  const std::string instance = "random n=100000 k=12";
  double sync_ns = 0;
  double flat_ns = 0;
  for (const local::EngineKind kind : {local::EngineKind::kSync, local::EngineKind::kFlat}) {
    const local::RunResult run = benchjson::record_engine_run(
        harness, instance, big, kind, algo::greedy_program_factory(), big.k() + 1);
    const double wall = harness.records().back().wall_ns;
    (kind == local::EngineKind::kSync ? sync_ns : flat_ns) = wall;
    std::printf("%-8s %14.2f %10d\n", local::engine_kind_name(kind), wall / 1e6, run.rounds);
  }
  std::printf("flat/sync speedup: %.1fx\n\n", sync_ns / flat_ns);

  // E14d: skewed (hub-cluster / power-law-style) instances — the gauge of
  // ISSUE 7's degree-aware chunking + work stealing.  The node range opens
  // with a contiguous run of max-degree hub rows, the layout on which the
  // old static node-count partition serialised one worker.  The small row
  // runs both engines (the run_sync oracle is O(d² log d) per hub-round,
  // so it stays small); the 258k-node row runs flat serial vs flat with 8
  // workers — on multicore hardware the t8 row is where the chunker's
  // ≥ 3× shows up, and both are pinned in the e14 baseline.
  std::printf("## E14d: skewed instances, greedy on hub clusters\n");
  std::printf("%-34s %-8s %8s %14s %10s\n", "instance", "engine", "threads",
              "wall (ms)", "rounds");
  {
    const graph::EdgeColouredGraph small =
        graph::hub_cluster_graph(/*hubs=*/120, /*hub_degree=*/64, /*first_colour=*/192);
    const std::string inst = "hub_cluster n=7800 d=64";
    for (const local::EngineKind kind :
         {local::EngineKind::kSync, local::EngineKind::kFlat}) {
      const local::RunResult run = benchjson::record_engine_run(
          harness, inst, small, kind, algo::greedy_program_factory(), small.k() + 1);
      std::printf("%-34s %-8s %8d %14.2f %10d\n", inst.c_str(),
                  local::engine_kind_name(kind), 1,
                  harness.records().back().wall_ns / 1e6, run.rounds);
    }
  }
  {
    const graph::EdgeColouredGraph skewed =
        graph::hub_cluster_graph(/*hubs=*/2000, /*hub_degree=*/128, /*first_colour=*/128);
    const std::string inst = "hub_cluster n=258000 d=128";
    double serial_ns = 0;
    for (const int threads : {1, 8}) {
      local::FlatEngineOptions options;
      options.threads = threads;
      const local::RunResult run =
          benchjson::record_engine_run(harness, inst, skewed, local::EngineKind::kFlat,
                                       algo::greedy_program_factory(), 256, options);
      const double wall = harness.records().back().wall_ns;
      if (threads == 1) serial_ns = wall;
      std::printf("%-34s %-8s %8d %14.2f %10d\n", inst.c_str(), "flat", threads,
                  wall / 1e6, run.rounds);
      if (threads == 8) {
        std::printf("skewed flat t1/t8 ratio: %.2fx (hardware-dependent; "
                    "threads_spawned=%zu, constant in rounds)\n",
                    serial_ns / wall, run.threads_spawned);
      }
    }
  }
  std::printf("\n");

  // E14c (opt-in: --scale, the nightly bench_scale leg): greedy at
  // n = 10⁷ on the flat engine — the row ISSUE 4 opens.  The acceptance
  // gauge is the init share: with arena-pooled programs the setup phase
  // (construction + init) must no longer dominate the run.  Only the flat
  // engine is exercised; run_sync at this size is hours, not seconds.
  if (harness.scale()) {
    std::printf("## E14c: scale row, greedy at n = 10000000, k = 4 (flat engine)\n");
    Rng scale_rng(43);
    const graph::EdgeColouredGraph huge =
        graph::random_coloured_graph(10'000'000, 4, 0.5, scale_rng);
    const local::RunResult run = benchjson::record_engine_run(
        harness, "random n=10000000 k=4", huge, local::EngineKind::kFlat,
        algo::greedy_program_factory(), huge.k() + 1);
    const benchjson::Record& rec = harness.records().back();
    std::printf("%-8s %14.2f %10d   init %.2f ms (%.0f%% of wall)  rss %.1f GiB\n",
                "flat", rec.wall_ns / 1e6, run.rounds, rec.init_ms,
                100.0 * rec.init_ms / (rec.wall_ns / 1e6),
                static_cast<double>(rec.rss_bytes) / (1024.0 * 1024.0 * 1024.0));
    std::printf("\n");

    // Skewed scale row (ISSUE 7 acceptance): greedy on a 10⁶-node hub
    // cluster, flat serial vs 8 workers.  The ≥ 3× t1/t8 bar is a
    // multicore claim — run_benches.py --scale validates the rows exist
    // and reports the ratio, but only hardware with ≥ 8 cores can meet
    // the bar (a single-CPU runner executes both rows on one core).
    std::printf("## E14e: scale skewed row, greedy on hub_cluster n = 1000008 (flat)\n");
    const graph::EdgeColouredGraph skewed =
        graph::hub_cluster_graph(/*hubs=*/7752, /*hub_degree=*/128, /*first_colour=*/128);
    for (const int threads : {1, 8}) {
      local::FlatEngineOptions options;
      options.threads = threads;
      const local::RunResult run =
          benchjson::record_engine_run(harness, "hub_cluster n=1000008 d=128", skewed,
                                       local::EngineKind::kFlat,
                                       algo::greedy_program_factory(), 256, options);
      std::printf("%-8s t%-3d %14.2f %10d\n", "flat", threads,
                  harness.records().back().wall_ns / 1e6, run.rounds);
    }
    std::printf("\n");
  }
}

void BM_WordMultiply(benchmark::State& state) {
  Rng rng(31);
  std::vector<gk::Word> words;
  for (int i = 0; i < 256; ++i) {
    std::vector<gk::Colour> letters;
    for (int j = 0; j < 24; ++j) letters.push_back(static_cast<gk::Colour>(rng.uniform(1, 6)));
    words.push_back(gk::Word::from_letters(letters));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(words[i % 256] * words[(i + 1) % 256]);
    ++i;
  }
}
BENCHMARK(BM_WordMultiply);

void BM_CayleyBall(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(colsys::cayley_ball(4, depth));
  }
}
BENCHMARK(BM_CayleyBall)->Arg(4)->Arg(6)->Arg(8);

void BM_Reroot(benchmark::State& state) {
  const colsys::ColourSystem g = colsys::cayley_ball(4, static_cast<int>(state.range(0)));
  const colsys::NodeId y = g.find(gk::Word::parse("1.2"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.rerooted(y));
  }
  state.counters["nodes"] = g.size();
}
BENCHMARK(BM_Reroot)->Arg(5)->Arg(7);

void BM_Serialize(benchmark::State& state) {
  const colsys::ColourSystem g = colsys::cayley_ball(4, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.serialize(g.valid_radius()));
  }
  state.counters["nodes"] = g.size();
}
BENCHMARK(BM_Serialize)->Arg(5)->Arg(7);

void BM_ViewBall(benchmark::State& state) {
  Rng rng(37);
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(512, 6, 0.8, rng);
  for (auto _ : state) {
    for (graph::NodeIndex v = 0; v < 32; ++v) {
      benchmark::DoNotOptimize(local::view_ball(g, v, static_cast<int>(state.range(0))));
    }
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ViewBall)->Arg(2)->Arg(4);

void BM_EngineThroughput(benchmark::State& state) {
  Rng rng(41);
  const graph::EdgeColouredGraph g =
      graph::random_coloured_graph(static_cast<int>(state.range(0)), 8, 0.8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::run_sync(g, algo::greedy_program_factory(), 10));
  }
  state.SetItemsProcessed(state.iterations() * g.node_count());
}
BENCHMARK(BM_EngineThroughput)->Arg(1024)->Arg(8192);

void BM_FlatEngineThroughput(benchmark::State& state) {
  Rng rng(41);
  const graph::EdgeColouredGraph g =
      graph::random_coloured_graph(static_cast<int>(state.range(0)), 8, 0.8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::run_flat(g, algo::greedy_program_factory(), 10));
  }
  state.SetItemsProcessed(state.iterations() * g.node_count());
}
BENCHMARK(BM_FlatEngineThroughput)->Arg(1024)->Arg(8192)->Arg(131072);

void BM_FlatEngineThreaded(benchmark::State& state) {
  Rng rng(41);
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(131072, 8, 0.8, rng);
  local::FlatEngineOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        local::run_flat(g, algo::greedy_program_factory(), 10, options));
  }
  state.SetItemsProcessed(state.iterations() * g.node_count());
}
BENCHMARK(BM_FlatEngineThreaded)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  dmm::benchjson::Harness harness("e14", argc, argv);
  print_rows(harness);
  if (!harness.smoke()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return harness.write();
}
