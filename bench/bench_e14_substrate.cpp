// E14 — substrate microbenchmarks: G_k word arithmetic, colour-system
// surgeries, view extraction, and simulator throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/dmm.hpp"

namespace {

using namespace dmm;

void print_rows() {
  std::printf("## E14: substrate characteristics\n");
  std::printf("%-28s %12s\n", "object", "size");
  std::printf("%-28s %12d\n", "Gamma_4[6] nodes", colsys::cayley_ball(4, 6).size());
  std::printf("%-28s %12d\n", "Gamma_5[6] nodes", colsys::cayley_ball(5, 6).size());
  std::printf("%-28s %12d\n", "3-regular k=4 depth 10", colsys::regular_system(4, 3, 10).size());
  std::printf("\n");
}

void BM_WordMultiply(benchmark::State& state) {
  Rng rng(31);
  std::vector<gk::Word> words;
  for (int i = 0; i < 256; ++i) {
    std::vector<gk::Colour> letters;
    for (int j = 0; j < 24; ++j) letters.push_back(static_cast<gk::Colour>(rng.uniform(1, 6)));
    words.push_back(gk::Word::from_letters(letters));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(words[i % 256] * words[(i + 1) % 256]);
    ++i;
  }
}
BENCHMARK(BM_WordMultiply);

void BM_CayleyBall(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(colsys::cayley_ball(4, depth));
  }
}
BENCHMARK(BM_CayleyBall)->Arg(4)->Arg(6)->Arg(8);

void BM_Reroot(benchmark::State& state) {
  const colsys::ColourSystem g = colsys::cayley_ball(4, static_cast<int>(state.range(0)));
  const colsys::NodeId y = g.find(gk::Word::parse("1.2"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.rerooted(y));
  }
  state.counters["nodes"] = g.size();
}
BENCHMARK(BM_Reroot)->Arg(5)->Arg(7);

void BM_Serialize(benchmark::State& state) {
  const colsys::ColourSystem g = colsys::cayley_ball(4, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.serialize(g.valid_radius()));
  }
  state.counters["nodes"] = g.size();
}
BENCHMARK(BM_Serialize)->Arg(5)->Arg(7);

void BM_ViewBall(benchmark::State& state) {
  Rng rng(37);
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(512, 6, 0.8, rng);
  for (auto _ : state) {
    for (graph::NodeIndex v = 0; v < 32; ++v) {
      benchmark::DoNotOptimize(local::view_ball(g, v, static_cast<int>(state.range(0))));
    }
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ViewBall)->Arg(2)->Arg(4);

void BM_EngineThroughput(benchmark::State& state) {
  Rng rng(41);
  const graph::EdgeColouredGraph g =
      graph::random_coloured_graph(static_cast<int>(state.range(0)), 8, 0.8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::run_sync(g, algo::greedy_program_factory(), 10));
  }
  state.SetItemsProcessed(state.iterations() * g.node_count());
}
BENCHMARK(BM_EngineThroughput)->Arg(1024)->Arg(8192);

}  // namespace

int main(int argc, char** argv) {
  print_rows();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
