// E13 — the §1.1 landscape: 2-coloured matching in <= 1 round,
// Cole-Vishkin's log* behaviour, maximal edge packing in O(Δ) rounds and
// the derived 2-approximate vertex cover.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "core/dmm.hpp"

namespace {

using namespace dmm;

void print_rows() {
  std::printf("## E13: the Section 1.1 landscape\n");

  std::printf("\n2-coloured maximal matching (k = 2 => <= 1 round):\n");
  std::printf("%8s %8s %8s %8s\n", "n", "edges", "rounds", "valid");
  Rng rng(19);
  for (int n : {16, 64, 256}) {
    const graph::EdgeColouredGraph g = graph::random_coloured_graph(n, 2, 0.9, rng);
    const algo::TwoColourResult r = algo::two_colour_matching(g);
    std::printf("%8d %8d %8d %8s\n", n, g.edge_count(), r.rounds,
                verify::check_outputs(g, r.outputs).ok() ? "yes" : "NO");
  }

  std::printf("\nCole-Vishkin on directed cycles (rounds ~ log* of id width):\n");
  std::printf("%12s %10s %10s %10s\n", "id width", "halving", "finish", "proper");
  for (std::uint64_t width : {8ull, 16ull, 32ull, 48ull, 60ull}) {
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < 128; ++i) ids.push_back((i * 2654435761ull) % (1ull << width));
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    std::shuffle(ids.begin(), ids.end(), rng.engine());
    const algo::CvResult cv = algo::cv_three_colour_cycle(ids);
    std::printf("%10llub %10d %10d %10s\n", static_cast<unsigned long long>(width),
                cv.cv_rounds, cv.finish_rounds,
                algo::is_proper_cycle_colouring(cv.colours) ? "yes" : "NO");
  }

  std::printf("\nbipartite proposal matching [6] (O(Delta) rounds, independent of k):\n");
  std::printf("%8s %8s %8s %8s %8s\n", "n", "k", "Delta", "rounds", "valid");
  for (int k : {4, 8, 16}) {
    const graph::EdgeColouredGraph g = algo::random_bipartite(20, 20, k, 0.8, rng);
    std::vector<bool> white(static_cast<std::size_t>(g.node_count()), false);
    for (int i = 0; i < 20; ++i) white[static_cast<std::size_t>(i)] = true;
    const algo::BipartiteMatchingResult r = algo::bipartite_proposal_matching(g, white);
    std::printf("%8d %8d %8d %8d %8s\n", g.node_count(), k, g.max_degree(), r.rounds,
                verify::check_outputs(g, r.outputs).ok() ? "yes" : "NO");
  }

  std::printf("\nmaximal edge packing -> 2-approx vertex cover (rounds vs Delta):\n");
  std::printf("%8s %8s %8s %10s %10s\n", "n", "Delta", "rounds", "cover", "2*weight");
  for (int k : {2, 3, 4, 5}) {
    const graph::EdgeColouredGraph g = graph::random_coloured_graph(24, k, 0.9, rng);
    const algo::EdgePackingResult packing = algo::maximal_edge_packing(g);
    const auto cover = algo::vertex_cover_from_packing(g, packing);
    std::printf("%8d %8d %8d %10zu %10.2f\n", g.node_count(), g.max_degree(), packing.rounds,
                cover.size(), 2.0 * packing.total_weight.to_double());
  }
  std::printf("\n");
}

void BM_TwoColourMatching(benchmark::State& state) {
  Rng rng(23);
  const graph::EdgeColouredGraph g =
      graph::random_coloured_graph(static_cast<int>(state.range(0)), 2, 0.9, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::two_colour_matching(g));
  }
}
BENCHMARK(BM_TwoColourMatching)->Arg(256)->Arg(1024);

void BM_ColeVishkin(benchmark::State& state) {
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
    ids.push_back(i * 2654435761ull % (1ull << 48));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::cv_three_colour_cycle(ids));
  }
}
BENCHMARK(BM_ColeVishkin)->Arg(128)->Arg(1024);

void BM_EdgePacking(benchmark::State& state) {
  Rng rng(29);
  const graph::EdgeColouredGraph g =
      graph::random_coloured_graph(static_cast<int>(state.range(0)), 4, 0.8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::maximal_edge_packing(g));
  }
}
BENCHMARK(BM_EdgePacking)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  return dmm::benchjson::Harness::run_table_experiment("e13", argc, argv, print_rows, [&] {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  });
}
