// Fault injection and checkpoint/replay recovery (ISSUE 8).
//
// The two headline guarantees pinned here:
//
//   1. Engine equivalence extends to faulty runs: for any FaultPlan, any
//      program and any flat-engine schedule, run_sync and run_flat produce
//      bit-identical RunResults — outputs, halt rounds, message accounting
//      *and* the fault counters.
//
//   2. Interrupted equals uninterrupted: kill a run after any completed
//      round, restore the checkpoint (on either engine — checkpoints are
//      engine-agnostic), and the finished RunResult is bit-identical to the
//      run that was never interrupted.  The same discipline covers the
//      lower-bound side: an adversary hunt resumed mid-sweep ends with the
//      same certificate and the same evaluator history.
//
// Plus the failure modes: corrupted or truncated checkpoint bytes are
// rejected (never silently resumed), wrong-instance restores are rejected,
// and checkpointing a program without save_state fails loudly.
#include "local/faults.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "algo/greedy.hpp"
#include "algo/truncated_greedy.hpp"
#include "engine_test_util.hpp"
#include "graph/generators.hpp"
#include "io/serialize.hpp"
#include "local/checkpoint.hpp"
#include "local/flat_engine.hpp"
#include "local/flooding.hpp"
#include "lower/adversary.hpp"
#include "util/rng.hpp"

namespace dmm::local {
namespace {

// --- fault-plan plumbing ------------------------------------------------

TEST(FaultPlan, EventsSortedAndRestartsBeforeCrashesOnTies) {
  FaultPlan plan;
  plan.add_crash(3, 5, 2);  // down rounds 5,6 — restarts at 7
  plan.add_crash(1, 2, 3);  // down rounds 2,3,4 — restarts at 5
  plan.add_crash(7, 1, 0);  // permanent
  const std::vector<FaultEvent>& events = plan.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].round, events[i].round);
    if (events[i - 1].round == events[i].round) {
      EXPECT_GE(events[i - 1].up, events[i].up) << "restart must precede crash at round "
                                                << events[i].round;
    }
  }
  EXPECT_EQ(plan.max_restart_round(), 7);
  EXPECT_EQ(plan.first_event_at(1), 0u);
  EXPECT_EQ(plan.first_event_at(6), 4u);  // events at rounds 1,2,5,5,7
  EXPECT_EQ(plan.first_event_at(100), events.size());
  EXPECT_THROW(plan.add_crash(0, 0, 1), std::invalid_argument);
}

TEST(FaultPlan, DropsArePureAndSeedSensitive) {
  FaultPlan plan;
  plan.set_drops(0.5, 42);
  FaultPlan same;
  same.set_drops(0.5, 42);
  FaultPlan other;
  other.set_drops(0.5, 43);
  int agree = 0, differ = 0, dropped = 0;
  for (int round = 1; round <= 40; ++round) {
    for (graph::NodeIndex sender = 0; sender < 20; ++sender) {
      for (Colour c = 1; c <= 4; ++c) {
        const bool d = plan.drops(round, sender, c);
        EXPECT_EQ(d, plan.drops(round, sender, c));  // pure: no state advances
        EXPECT_EQ(d, same.drops(round, sender, c));
        dropped += d ? 1 : 0;
        (d == other.drops(round, sender, c) ? agree : differ) += 1;
      }
    }
  }
  EXPECT_GT(dropped, 1000);  // roughly half of 3200
  EXPECT_LT(dropped, 2200);
  EXPECT_GT(differ, 500);  // a different seed is a different coin
  FaultPlan always;
  always.set_drops(1.0, 7);
  FaultPlan never;
  never.set_drops(0.0, 7);
  EXPECT_TRUE(always.drops(1, 0, 1));
  EXPECT_FALSE(never.has_drops());
  EXPECT_THROW(always.set_drops(1.5, 0), std::invalid_argument);
}

TEST(FaultPlan, RandomPlanIsSeedDeterministic) {
  Rng rng(9);
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(60, 4, 0.8, rng);
  FaultSpec spec;
  spec.crash_prob = 0.4;
  spec.permanent_prob = 0.25;
  spec.drop_prob = 0.05;
  spec.horizon = 6;
  spec.seed = 77;
  const FaultPlan a = FaultPlan::random(g, spec);
  const FaultPlan b = FaultPlan::random(g, spec);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].round, b.events()[i].round);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
    EXPECT_EQ(a.events()[i].up, b.events()[i].up);
    EXPECT_EQ(a.events()[i].permanent, b.events()[i].permanent);
  }
  EXPECT_TRUE(a.has_crashes());  // 60 nodes at p=0.4: vanishingly unlikely to be empty
  spec.seed = 78;
  const FaultPlan c = FaultPlan::random(g, spec);
  EXPECT_TRUE(a.events().size() != c.events().size() ||
              a.events().front().node != c.events().front().node ||
              a.events().front().round != c.events().front().round);
}

TEST(FaultPlan, SpecGrammar) {
  const FaultSpec spec = parse_fault_spec("crash=0.02,down=2-5,perm=0.1,drop=0.01,horizon=16,seed=7");
  EXPECT_DOUBLE_EQ(spec.crash_prob, 0.02);
  EXPECT_EQ(spec.min_down, 2);
  EXPECT_EQ(spec.max_down, 5);
  EXPECT_DOUBLE_EQ(spec.permanent_prob, 0.1);
  EXPECT_DOUBLE_EQ(spec.drop_prob, 0.01);
  EXPECT_EQ(spec.horizon, 16);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_THROW(parse_fault_spec("crash"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("warp=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash=banana"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash=2.0"), std::invalid_argument);
}

// --- crash/restart/drop semantics ---------------------------------------

TEST(Faults, PermanentCrashRemovesNodeFromTheRun) {
  // chain(3).long_path is 0 -1- 1 -2- 2 -3- 3: nodes 0 and 1 match on the
  // colour-1 edge at round 0 (greedy needs no communication for step 1), so
  // the crash targets node 2, which is still running at round 1.
  const graph::EdgeColouredGraph g = graph::worst_case_chain(3).long_path;
  FaultPlan plan;
  plan.add_crash(2, 1, 0);  // node 2, round 1, permanent
  for (EngineKind kind : {EngineKind::kSync, EngineKind::kFlat}) {
    const RunResult r = run(kind, g, algo::greedy_program_factory(), 32, FaultOptions{&plan});
    EXPECT_EQ(r.crashes, 1u) << engine_kind_name(kind);
    EXPECT_EQ(r.restarts, 0u) << engine_kind_name(kind);
    EXPECT_EQ(r.outputs[2], kUnmatched) << engine_kind_name(kind);
    EXPECT_EQ(r.halt_round[2], -1) << engine_kind_name(kind);
    // Everyone else still halts with a recorded round.
    for (std::size_t v = 0; v < r.outputs.size(); ++v) {
      if (v != 2) EXPECT_GE(r.halt_round[v], 0) << engine_kind_name(kind) << " node " << v;
    }
  }
}

TEST(Faults, TemporaryCrashRestartsAndHalts) {
  const graph::EdgeColouredGraph g = graph::worst_case_chain(4).long_path;
  FaultPlan plan;
  plan.add_crash(2, 1, 2);  // down rounds 1-2, restarts at 3
  for (EngineKind kind : {EngineKind::kSync, EngineKind::kFlat}) {
    const RunResult r = run(kind, g, algo::greedy_program_factory(), 32, FaultOptions{&plan});
    EXPECT_EQ(r.crashes, 1u) << engine_kind_name(kind);
    EXPECT_EQ(r.restarts, 1u) << engine_kind_name(kind);
    EXPECT_GE(r.halt_round[2], 0) << engine_kind_name(kind);  // came back and finished
  }
}

TEST(Faults, CrashOnHaltedNodeIsANoOp) {
  // Greedy on a single colour-1 edge halts both endpoints at round 1; a
  // crash scheduled later must not fire (the announced output is part of
  // the environment) and the result must equal the fault-free run.
  graph::EdgeColouredGraph g(2, 1);
  g.add_edge(0, 1, 1);
  FaultPlan plan;
  plan.add_crash(0, 3, 1);
  const RunResult clean = run_sync(g, algo::greedy_program_factory(), 8);
  for (EngineKind kind : {EngineKind::kSync, EngineKind::kFlat}) {
    const RunResult r = run(kind, g, algo::greedy_program_factory(), 8, FaultOptions{&plan});
    EXPECT_EQ(r.crashes, 0u) << engine_kind_name(kind);
    expect_same_result(clean, r, std::string("halted-crash no-op ") + engine_kind_name(kind));
  }
}

TEST(Faults, EventOutsideTheGraphIsRejected) {
  graph::EdgeColouredGraph g(2, 1);
  g.add_edge(0, 1, 1);
  FaultPlan plan;
  plan.add_crash(5, 1, 1);  // node 5 of a 2-node graph
  EXPECT_THROW(run_sync(g, algo::greedy_program_factory(), 8, FaultOptions{&plan}),
               std::invalid_argument);
  EXPECT_THROW(run_flat(g, algo::greedy_program_factory(), 8, {}, FaultOptions{&plan}),
               std::invalid_argument);
}

TEST(Faults, EmptyPlanEqualsFaultFreeRun) {
  Rng rng(11);
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(30, 4, 0.8, rng);
  const FaultPlan empty;
  const RunResult clean = run_sync(g, algo::greedy_program_factory(), 8);
  expect_same_result(clean,
                     run_sync(g, algo::greedy_program_factory(), 8, FaultOptions{&empty}),
                     "empty plan sync");
  expect_same_result(clean, run_flat(g, algo::greedy_program_factory(), 8, {}, FaultOptions{&empty}),
                     "empty plan flat");
  EXPECT_EQ(clean.crashes, 0u);
  EXPECT_EQ(clean.messages_dropped, 0u);
}

// --- engine equivalence under faults ------------------------------------

std::vector<FlatEngineOptions> schedule_grid() {
  std::vector<FlatEngineOptions> grid;
  grid.push_back({});  // serial
  FlatEngineOptions threaded;
  threaded.threads = 3;
  grid.push_back(threaded);
  FlatEngineOptions shattered;
  shattered.threads = 4;
  shattered.chunk_slots = 1;
  grid.push_back(shattered);
  FlatEngineOptions no_steal;
  no_steal.threads = 2;
  no_steal.steal = false;
  grid.push_back(no_steal);
  return grid;
}

void expect_engines_agree_under(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                                int max_rounds, const FaultPlan& plan,
                                const std::string& context) {
  const RunResult oracle = run_sync(g, source, max_rounds, FaultOptions{&plan});
  int schedule = 0;
  for (const FlatEngineOptions& options : schedule_grid()) {
    expect_same_result(oracle, run_flat(g, source, max_rounds, options, FaultOptions{&plan}),
                       context + " [schedule " + std::to_string(schedule++) + "]");
  }
  // Determinism: the oracle agrees with itself on a second run.
  expect_same_result(oracle, run_sync(g, source, max_rounds, FaultOptions{&plan}),
                     context + " [repeat]");
}

TEST(Faults, EnginesAgreeOnRandomFaultyRuns) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    const int n = 6 + static_cast<int>(seed % 40);
    const int k = 2 + static_cast<int>(seed % 5);
    const graph::EdgeColouredGraph g = graph::random_coloured_graph(n, k, 0.7, rng);
    FaultSpec spec;
    spec.crash_prob = 0.3;
    spec.permanent_prob = 0.3;
    spec.drop_prob = (seed % 3 == 0) ? 0.2 : 0.0;
    spec.horizon = k + 1;
    spec.seed = seed * 31 + 5;
    const FaultPlan plan = FaultPlan::random(g, spec);
    expect_engines_agree_under(g, algo::greedy_program_factory(), 64, plan,
                               "greedy n=" + std::to_string(n) + " k=" + std::to_string(k) +
                                   " seed=" + std::to_string(seed));
  }
}

TEST(Faults, EnginesAgreeOnFloodingUnderFaults) {
  // Flooding spills past the inline slot bytes as views grow, so this also
  // exercises fault masking on the spill-arena path.
  const int k = 3;
  const graph::EdgeColouredGraph g = graph::worst_case_chain(k).long_path;
  const ProgramSource flood =
      flooding_program_factory(std::make_shared<algo::GreedyLocal>(k), k);
  FaultPlan crashes;
  crashes.add_crash(1, 1, 2);
  crashes.add_crash(3, 2, 0);  // long_path has k+1 = 4 nodes
  expect_engines_agree_under(g, flood, 64, crashes, "flooding crashes");
  FaultPlan drops;
  drops.set_drops(0.3, 99);
  expect_engines_agree_under(g, flood, 64, drops, "flooding drops");
}

TEST(Faults, EnginesAgreeWhenEverythingDrops) {
  const graph::EdgeColouredGraph g = graph::worst_case_chain(3).long_path;
  FaultPlan plan;
  plan.set_drops(1.0, 1);
  const RunResult oracle = run_sync(g, algo::greedy_program_factory(), 64, FaultOptions{&plan});
  EXPECT_GT(oracle.messages_dropped, 0u);
  expect_same_result(oracle, run_flat(g, algo::greedy_program_factory(), 64, {}, FaultOptions{&plan}),
                     "total blackout");
}

// --- checkpoint / restore: interrupted equals uninterrupted --------------

struct CapturedRun {
  RunResult clean;
  std::vector<EngineCheckpoint> checkpoints;  // one per completed round
};

CapturedRun run_with_checkpoints(EngineKind kind, const graph::EdgeColouredGraph& g,
                                 const ProgramSource& source, int max_rounds,
                                 const FaultPlan* plan) {
  CapturedRun captured;
  CheckpointOptions every_round;
  every_round.every = 1;
  every_round.sink = [&](const EngineCheckpoint& cp) { captured.checkpoints.push_back(cp); };
  captured.clean = run(kind, g, source, max_rounds, FaultOptions{plan}, every_round);
  return captured;
}

void expect_resume_equivalence(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                               int max_rounds, const FaultPlan* plan,
                               const std::string& context) {
  // Capture on the sync engine; the flat capture must be byte-identical
  // state, which restoring cross-engine (both directions) pins below.
  const CapturedRun sync_run =
      run_with_checkpoints(EngineKind::kSync, g, source, max_rounds, plan);
  const CapturedRun flat_run =
      run_with_checkpoints(EngineKind::kFlat, g, source, max_rounds, plan);
  expect_same_result(sync_run.clean, flat_run.clean, context + " [uninterrupted]");
  ASSERT_EQ(sync_run.checkpoints.size(), flat_run.checkpoints.size()) << context;

  for (std::size_t i = 0; i < sync_run.checkpoints.size(); ++i) {
    const std::string at = context + " [kill after round " +
                           std::to_string(sync_run.checkpoints[i].round) + "]";
    // Serialise + reload: every resume below goes through the byte format.
    std::stringstream bytes;
    sync_run.checkpoints[i].write(bytes);
    const EngineCheckpoint restored = EngineCheckpoint::read(bytes);

    CheckpointOptions resume;
    resume.resume = &restored;
    expect_same_result(sync_run.clean, run_sync(g, source, max_rounds, FaultOptions{plan}, resume),
                       at + " sync→sync");
    expect_same_result(sync_run.clean,
                       run_flat(g, source, max_rounds, {}, FaultOptions{plan}, resume),
                       at + " sync→flat");

    // Flat-captured checkpoint back into the sync oracle.
    CheckpointOptions resume_flat;
    resume_flat.resume = &flat_run.checkpoints[i];
    expect_same_result(sync_run.clean,
                       run_sync(g, source, max_rounds, FaultOptions{plan}, resume_flat),
                       at + " flat→sync");
  }
}

TEST(Checkpoint, GreedyKillAtEveryRound) {
  const graph::EdgeColouredGraph g = graph::worst_case_chain(5).long_path;
  expect_resume_equivalence(g, algo::greedy_program_factory(), 16, nullptr, "greedy chain k=5");
}

TEST(Checkpoint, GreedyKillAtEveryRoundUnderFaults) {
  const graph::EdgeColouredGraph g = graph::worst_case_chain(5).long_path;
  FaultPlan plan;
  plan.add_crash(2, 1, 2);
  plan.add_crash(5, 3, 0);  // long_path has k+1 = 6 nodes
  plan.set_drops(0.15, 12);
  expect_resume_equivalence(g, algo::greedy_program_factory(), 64, &plan,
                            "greedy chain k=5 faulty");
}

TEST(Checkpoint, FloodingKillAtEveryRound) {
  // Flooding's save_state is a serialised colour system that grows with the
  // round — the checkpoint carries real per-node program state, not flags.
  const int k = 4;
  const graph::EdgeColouredGraph g = graph::worst_case_chain(k).long_path;
  const ProgramSource flood =
      flooding_program_factory(std::make_shared<algo::GreedyLocal>(k), k);
  expect_resume_equivalence(g, flood, 16, nullptr, "flooding chain k=4");
  FaultPlan plan;
  plan.add_crash(1, 1, 2);
  expect_resume_equivalence(g, flood, 64, &plan, "flooding chain k=4 faulty");
}

TEST(Checkpoint, RandomGraphKillAtEveryRound) {
  Rng rng(23);
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(40, 6, 0.8, rng);
  FaultSpec spec;
  spec.crash_prob = 0.2;
  spec.permanent_prob = 0.2;
  spec.drop_prob = 0.1;
  spec.horizon = 5;
  spec.seed = 4242;
  const FaultPlan plan = FaultPlan::random(g, spec);
  expect_resume_equivalence(g, algo::greedy_program_factory(), 64, &plan, "random n=40 k=6");
}

TEST(Checkpoint, FlatEngineObjectCheckpointStream) {
  // The FlatEngine object API: checkpoint(ostream) from a sink, then a
  // fresh engine restore(istream) + run() to the bit-identical result.
  const graph::EdgeColouredGraph g = graph::worst_case_chain(4).long_path;
  const ProgramSource source = algo::greedy_program_factory();
  const RunResult clean = run_flat(g, source, 16);

  std::stringstream bytes;
  int captured_round = 0;
  {
    FlatEngine engine(g, source, 16, {});
    CheckpointOptions opts;
    opts.every = 2;
    opts.sink = [&](const EngineCheckpoint& cp) {
      if (cp.round == 2) {
        bytes.str("");
        engine.checkpoint(bytes);
        captured_round = cp.round;
      }
    };
    expect_same_result(clean, engine.run(FaultOptions{}, opts), "checkpointed run");
  }
  ASSERT_EQ(captured_round, 2);

  FlatEngineOptions threaded;
  threaded.threads = 3;
  FlatEngine resumed(g, source, 16, threaded);
  resumed.restore(bytes);
  expect_same_result(clean, resumed.run(), "restored engine");
}

TEST(Checkpoint, SinkFiresOnTheRequestedCadence) {
  const graph::EdgeColouredGraph g = graph::worst_case_chain(6).long_path;
  std::vector<int> rounds;
  CheckpointOptions opts;
  opts.every = 2;
  opts.sink = [&](const EngineCheckpoint& cp) { rounds.push_back(cp.round); };
  const RunResult r = run_sync(g, algo::greedy_program_factory(), 16, FaultOptions{}, opts);
  ASSERT_FALSE(rounds.empty());
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    EXPECT_EQ(rounds[i], 2 * static_cast<int>(i + 1));
    EXPECT_LT(rounds[i], r.rounds);  // only while someone is still running
  }
}

// --- failure modes -------------------------------------------------------

TEST(Checkpoint, CorruptedBytesAreNeverSilentlyResumed) {
  const graph::EdgeColouredGraph g = graph::worst_case_chain(4).long_path;
  const CapturedRun captured =
      run_with_checkpoints(EngineKind::kSync, g, algo::greedy_program_factory(), 16, nullptr);
  ASSERT_FALSE(captured.checkpoints.empty());
  std::stringstream clean;
  captured.checkpoints.front().write(clean);
  const std::string bytes = clean.str();

  // Every truncation is rejected.
  for (std::size_t keep : {std::size_t{0}, bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    std::istringstream in(bytes.substr(0, keep));
    EXPECT_THROW(EngineCheckpoint::read(in), io::CorruptFrameError) << "prefix " << keep;
  }
  // Every byte flip is rejected (frame checksums cover the whole stream).
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string damaged = bytes;
    damaged[i] = static_cast<char>(static_cast<unsigned char>(damaged[i]) ^ 0x20);
    std::istringstream in(damaged);
    EXPECT_THROW(EngineCheckpoint::read(in), std::runtime_error) << "byte " << i;
  }
}

TEST(Checkpoint, WrongInstanceIsRejected) {
  const graph::EdgeColouredGraph g = graph::worst_case_chain(4).long_path;
  const CapturedRun captured =
      run_with_checkpoints(EngineKind::kSync, g, algo::greedy_program_factory(), 16, nullptr);
  ASSERT_FALSE(captured.checkpoints.empty());
  const graph::EdgeColouredGraph other = graph::worst_case_chain(4).short_path;
  CheckpointOptions resume;
  resume.resume = &captured.checkpoints.front();
  EXPECT_THROW(run_sync(other, algo::greedy_program_factory(), 16, FaultOptions{}, resume),
               CheckpointError);
  EXPECT_THROW(
      {
        FlatEngine engine(other, algo::greedy_program_factory(), 16, {});
        engine.restore(captured.checkpoints.front());
      },
      CheckpointError);
}

/// Runs forever-ish with no save_state override.
class Oblivious final : public NodeProgram {
 public:
  bool init(const std::vector<Colour>&) override { return false; }
  std::map<Colour, Message> send(int) override { return {}; }
  bool receive(int round, const std::map<Colour, Message>&) override { return round >= 4; }
  Colour output() const override { return kUnmatched; }
};

TEST(Checkpoint, ProgramWithoutSaveStateFailsLoudly) {
  graph::EdgeColouredGraph g(2, 1);
  g.add_edge(0, 1, 1);
  CheckpointOptions opts;
  opts.every = 1;
  opts.sink = [](const EngineCheckpoint&) {};
  EXPECT_THROW(run_sync(g, [] { return std::make_unique<Oblivious>(); }, 16, FaultOptions{}, opts),
               std::logic_error);
  EXPECT_THROW(run_flat(g, [] { return std::make_unique<Oblivious>(); }, 16, {}, FaultOptions{}, opts),
               std::logic_error);
}

}  // namespace
}  // namespace dmm::local

// --- lower-bound side: evaluator + hunt checkpoints ----------------------

namespace dmm::lower {
namespace {

/// A template with a non-trivial node set to sweep: the tight pair's S_d
/// side from the adversary run against the (correct) greedy algorithm.
Template tight_template(int k) {
  const algo::GreedyLocal greedy(k);
  LowerBoundResult result = run_adversary(k, greedy);
  EXPECT_TRUE(result.tight());
  return std::get<TightPair>(std::move(result.outcome)).u;
}

TEST(EvaluatorCheckpoint, SaveLoadRoundTripPreservesHistory) {
  const int k = 3;
  const Template tmpl = tight_template(k);
  const algo::GreedyLocal greedy(k);

  Evaluator original(greedy);
  for (NodeId v : tmpl.tree().nodes_up_to(2)) (void)original(tmpl, v);
  ASSERT_GT(original.evaluations(), 0u);

  std::stringstream bytes;
  original.save(bytes);

  Evaluator loaded(greedy);
  loaded.load(bytes);
  EXPECT_EQ(loaded.evaluations(), original.evaluations());
  EXPECT_EQ(loaded.memo_hits(), original.memo_hits());
  EXPECT_EQ(loaded.memo_entries(), original.memo_entries());

  // Future answers and memo behaviour are identical: re-probing the same
  // nodes is pure hits on both, and the answers agree node by node.
  for (NodeId v : tmpl.tree().nodes_up_to(2)) {
    EXPECT_EQ(loaded(tmpl, v), original(tmpl, v)) << "node " << v;
  }
  EXPECT_EQ(loaded.evaluations(), original.evaluations());
  EXPECT_EQ(loaded.memo_hits(), original.memo_hits());
}

TEST(EvaluatorCheckpoint, OrbitMemoRoundTrips) {
  const int k = 3;
  const Template tmpl = tight_template(k);
  const algo::GreedyLocal greedy(k);
  Evaluator original(greedy, /*memoise=*/true, /*threads=*/1, /*orbit_memo=*/true);
  for (NodeId v : tmpl.tree().nodes_up_to(2)) (void)original(tmpl, v);
  std::stringstream bytes;
  original.save(bytes);
  Evaluator loaded(greedy, true, 1, true);
  loaded.load(bytes);
  EXPECT_EQ(loaded.memo_entries(), original.memo_entries());
  EXPECT_EQ(loaded.orbits(), original.orbits());
  for (NodeId v : tmpl.tree().nodes_up_to(2)) {
    EXPECT_EQ(loaded(tmpl, v), original(tmpl, v));
  }
}

TEST(EvaluatorCheckpoint, MismatchedTargetsAreRejected) {
  const int k = 3;
  const Template tmpl = tight_template(k);
  const algo::GreedyLocal greedy(k);
  Evaluator original(greedy);
  (void)original(tmpl, colsys::ColourSystem::root());
  std::stringstream bytes;
  original.save(bytes);

  // Not fresh: has already evaluated something.
  Evaluator dirty(greedy);
  (void)dirty(tmpl, colsys::ColourSystem::root());
  std::stringstream copy1(bytes.str());
  EXPECT_THROW(dirty.load(copy1), std::runtime_error);

  // Different algorithm name.
  const algo::TruncatedGreedy fast(k, 1);
  Evaluator wrong_algo(fast);
  std::stringstream copy2(bytes.str());
  EXPECT_THROW(wrong_algo.load(copy2), std::runtime_error);

  // Different memo mode.
  Evaluator wrong_mode(greedy, true, 1, /*orbit_memo=*/true);
  std::stringstream copy3(bytes.str());
  EXPECT_THROW(wrong_mode.load(copy3), std::runtime_error);
}

TEST(HuntCheckpoint, ResumedHuntMatchesUninterrupted) {
  const int k = 3;
  const Template tmpl = tight_template(k);
  const algo::GreedyLocal greedy(k);
  const int limit = std::max(k - 1, greedy.running_time() + 2);

  // Uninterrupted sweep: correct greedy, so no violation — the sweep visits
  // every node, the interesting case for resume.
  Evaluator whole(greedy);
  EXPECT_FALSE(hunt_violation(tmpl, whole, limit).has_value());

  // Interrupted sweep: save a checkpoint a few nodes in, throw the rest of
  // the run away ("the process died"), reload into a fresh evaluator and
  // finish from the saved cursor.
  std::stringstream bytes;
  bool saved = false;
  {
    Evaluator doomed(greedy);
    HuntControl control;
    control.checkpoint_every = 3;
    control.sink = [&](std::size_t next_index) {
      if (saved) return;  // keep the *first* checkpoint: maximal remaining work
      save_hunt_checkpoint(bytes, tmpl, limit, next_index, doomed);
      saved = true;
    };
    EXPECT_FALSE(hunt_violation(tmpl, doomed, limit, control).has_value());
  }
  ASSERT_TRUE(saved);

  Evaluator resumed_eval(greedy);
  const HuntCheckpoint cp = load_hunt_checkpoint(bytes, resumed_eval);
  EXPECT_EQ(cp.norm_limit, limit);
  EXPECT_GT(cp.next_index, 0u);
  HuntControl resume;
  resume.start_index = cp.next_index;
  EXPECT_FALSE(hunt_violation(cp.tmpl, resumed_eval, cp.norm_limit, resume).has_value());

  // The evaluation history converges to the uninterrupted run's.
  EXPECT_EQ(resumed_eval.evaluations(), whole.evaluations());
  EXPECT_EQ(resumed_eval.memo_hits(), whole.memo_hits());
  EXPECT_EQ(resumed_eval.memo_entries(), whole.memo_entries());
}

TEST(HuntCheckpoint, ResumedHuntMatchesUninterruptedOnARefutedAlgorithm) {
  // Against a too-fast algorithm the adversary refutes; re-hunting the
  // certificate's own template resumed mid-sweep must reach exactly the
  // same outcome (the same certificate, or the same "nothing in range") as
  // the uninterrupted sweep.
  const int k = 4;
  const algo::TruncatedGreedy fast(k, 2);
  LowerBoundResult result = run_adversary(k, fast);
  ASSERT_TRUE(result.refuted());
  const Certificate& archived = std::get<Certificate>(result.outcome);
  const int limit = std::max(k - 1, fast.running_time() + 2);

  Evaluator whole(fast);
  const std::optional<Certificate> direct =
      hunt_violation(archived.instance, whole, limit);

  std::stringstream bytes;
  bool saved = false;
  {
    Evaluator doomed(fast);
    HuntControl control;
    control.checkpoint_every = 1;
    control.sink = [&](std::size_t next_index) {
      if (saved) return;
      save_hunt_checkpoint(bytes, archived.instance, limit, next_index, doomed);
      saved = true;
    };
    const std::optional<Certificate> interrupted =
        hunt_violation(archived.instance, doomed, limit, control);
    EXPECT_EQ(interrupted.has_value(), direct.has_value());
    // If the sweep decided before probing its second node there is no
    // checkpoint to resume from — the equivalence is then already covered.
    if (!saved) return;
  }

  Evaluator resumed_eval(fast);
  const HuntCheckpoint cp = load_hunt_checkpoint(bytes, resumed_eval);
  HuntControl resume;
  resume.start_index = cp.next_index;
  const std::optional<Certificate> again =
      hunt_violation(cp.tmpl, resumed_eval, cp.norm_limit, resume);
  ASSERT_EQ(again.has_value(), direct.has_value());
  if (direct.has_value()) {
    EXPECT_EQ(again->kind, direct->kind);
    EXPECT_EQ(again->node, direct->node);
    EXPECT_EQ(again->other, direct->other);
    EXPECT_EQ(again->colour, direct->colour);
    EXPECT_EQ(again->output, direct->output);
    EXPECT_EQ(again->other_output, direct->other_output);
    EXPECT_EQ(again->detail, direct->detail);
    EXPECT_EQ(resumed_eval.evaluations(), whole.evaluations());
    EXPECT_EQ(resumed_eval.memo_hits(), whole.memo_hits());
  }
}

TEST(HuntCheckpoint, CorruptedHuntBytesAreRejected) {
  const int k = 3;
  const Template tmpl = tight_template(k);
  const algo::GreedyLocal greedy(k);
  Evaluator eval(greedy);
  (void)eval(tmpl, colsys::ColourSystem::root());
  std::stringstream clean;
  save_hunt_checkpoint(clean, tmpl, 2, 5, eval);
  const std::string bytes = clean.str();
  Rng rng(5150);
  for (int trial = 0; trial < 64; ++trial) {
    std::string damaged = bytes;
    const std::size_t at = rng.index(damaged.size());
    damaged[at] = static_cast<char>(static_cast<unsigned char>(damaged[at]) ^
                                    static_cast<unsigned char>(1 + rng.index(255)));
    std::istringstream in(damaged);
    Evaluator fresh(greedy);
    EXPECT_THROW(load_hunt_checkpoint(in, fresh), std::runtime_error) << "byte " << at;
  }
}

}  // namespace
}  // namespace dmm::lower
