// The BENCH_*.json trajectory files are consumed by scripts across PRs, so
// the writer is under test: stable field names, exact round-trips, finite
// wall times, and an explicitly enumerated experiment set (e12 closed the
// last numbering gap, but the set stays an explicit list — nothing may
// assume "e1..e17" holds forever).
#include "bench_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace dmm::benchjson {
namespace {

Record sample() {
  Record r;
  r.instance = "random n=256 k=4";
  r.n = 256;
  r.m = 380;
  r.k = 4;
  r.rounds = 3;
  r.wall_ns = 1234567.25;
  r.engine = "flat";
  r.max_message_bytes = 1;
  r.views = 78732;
  r.pairs = 9570312;
  r.csp_nodes = 135864;
  r.memo_hits = 11;
  r.threads = 2;
  r.init_ms = 1.5;
  r.rss_bytes = 104857600;
  r.orbits = 3330;
  r.orbit_reduction = 23.64;
  r.reps_generated = 3330;
  r.crashes = 4;
  r.restarts = 3;
  r.messages_dropped = 17;
  r.checkpoint_bytes = 2048;
  r.restore_ms = 0.75;
  r.send_ms = 4.5;
  r.receive_ms = 6.25;
  r.sessions = 1000;
  r.tenant_p50_ms = 12.5;
  r.tenant_p99_ms = 31.25;
  r.fairness_ratio = 1.125;
  r.churn_ops = 416;
  r.repairs = 38;
  r.touched_nodes = 935;
  r.recompute_avoided = 23065;
  return r;
}

TEST(BenchJson, StableFieldNamesAndOrder) {
  // This string is the schema; changing it breaks every downstream reader.
  EXPECT_EQ(to_json(sample()),
            "{\"instance\":\"random n=256 k=4\",\"n\":256,\"m\":380,\"k\":4,"
            "\"rounds\":3,\"wall_ns\":1234567.25,\"engine\":\"flat\","
            "\"max_message_bytes\":1,\"views\":78732,\"pairs\":9570312,"
            "\"csp_nodes\":135864,\"memo_hits\":11,\"threads\":2,"
            "\"init_ms\":1.5,\"rss_bytes\":104857600,"
            "\"orbits\":3330,\"orbit_reduction\":23.640000000000001,"
            "\"reps_generated\":3330,\"crashes\":4,\"restarts\":3,"
            "\"messages_dropped\":17,\"checkpoint_bytes\":2048,"
            "\"restore_ms\":0.75,\"send_ms\":4.5,\"receive_ms\":6.25,"
            "\"sessions\":1000,\"tenant_p50_ms\":12.5,\"tenant_p99_ms\":31.25,"
            "\"fairness_ratio\":1.125,\"churn_ops\":416,\"repairs\":38,"
            "\"touched_nodes\":935,\"recompute_avoided\":23065}");
}

TEST(BenchJson, PipelineStatsDefaultToInert) {
  // Records from benches that predate the lower-bound pipeline carry the
  // neutral values, so one validator covers every experiment.
  const Record r;
  EXPECT_EQ(r.views, 0);
  EXPECT_EQ(r.pairs, 0);
  EXPECT_EQ(r.csp_nodes, 0);
  EXPECT_EQ(r.memo_hits, 0);
  EXPECT_EQ(r.threads, 1);
  // dmm-bench-3 memory-model stats are likewise inert by default.
  EXPECT_EQ(r.init_ms, 0.0);
  EXPECT_EQ(r.rss_bytes, 0);
  // dmm-bench-4 colour-symmetry stats too.
  EXPECT_EQ(r.orbits, 0);
  EXPECT_EQ(r.orbit_reduction, 0.0);
  // dmm-bench-5 orderly-generation stats too.
  EXPECT_EQ(r.reps_generated, 0);
  // dmm-bench-6 fault/recovery stats too.
  EXPECT_EQ(r.crashes, 0);
  EXPECT_EQ(r.restarts, 0);
  EXPECT_EQ(r.messages_dropped, 0);
  EXPECT_EQ(r.checkpoint_bytes, 0);
  EXPECT_EQ(r.restore_ms, 0.0);
  // dmm-bench-7 session/front-end stats too.
  EXPECT_EQ(r.send_ms, 0.0);
  EXPECT_EQ(r.receive_ms, 0.0);
  EXPECT_EQ(r.sessions, 0);
  EXPECT_EQ(r.tenant_p50_ms, 0.0);
  EXPECT_EQ(r.tenant_p99_ms, 0.0);
  EXPECT_EQ(r.fairness_ratio, 0.0);
  // dmm-bench-8 dynamic-matching stats too.
  EXPECT_EQ(r.churn_ops, 0);
  EXPECT_EQ(r.repairs, 0);
  EXPECT_EQ(r.touched_nodes, 0);
  EXPECT_EQ(r.recompute_avoided, 0);
}

TEST(BenchJson, PeakRssIsPositiveOnLinux) {
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(peak_rss_bytes(), 0);
#else
  EXPECT_EQ(peak_rss_bytes(), 0);
#endif
}

TEST(BenchJson, RoundTripsExactly) {
  Record r = sample();
  EXPECT_EQ(parse_record(to_json(r)), r);
  // Doubles survive the %.17g round-trip bit for bit.
  r.wall_ns = 1.0 / 3.0 * 1e9;
  EXPECT_EQ(parse_record(to_json(r)).wall_ns, r.wall_ns);
  // Awkward strings survive escaping.
  r.instance = "quote \" backslash \\ tab \t done";
  EXPECT_EQ(parse_record(to_json(r)), r);
}

TEST(BenchJson, RejectsNonFiniteWallTimes) {
  Record r = sample();
  r.wall_ns = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(to_json(r), std::invalid_argument);
  r.wall_ns = std::numeric_limits<double>::infinity();
  EXPECT_THROW(to_json(r), std::invalid_argument);
  r.wall_ns = -std::numeric_limits<double>::infinity();
  EXPECT_THROW(to_json(r), std::invalid_argument);
  r = sample();
  r.init_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(to_json(r), std::invalid_argument);
  r = sample();
  r.orbit_reduction = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(to_json(r), std::invalid_argument);
  r.orbit_reduction = std::numeric_limits<double>::infinity();
  EXPECT_THROW(to_json(r), std::invalid_argument);
  r = sample();
  r.restore_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(to_json(r), std::invalid_argument);
  r = sample();
  r.send_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(to_json(r), std::invalid_argument);
  r = sample();
  r.receive_ms = std::numeric_limits<double>::infinity();
  EXPECT_THROW(to_json(r), std::invalid_argument);
  r = sample();
  r.fairness_ratio = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(to_json(r), std::invalid_argument);
}

TEST(BenchJson, RejectsMalformedRecords) {
  EXPECT_THROW(parse_record("{}"), std::invalid_argument);
  EXPECT_THROW(parse_record("{\"instance\":\"x\",\"n\":1}"), std::invalid_argument);
  EXPECT_THROW(parse_record("not json"), std::invalid_argument);
  // A dmm-bench-3 record (orbits/orbit_reduction absent) is rejected: the
  // schema's field set is closed, old trajectories must not parse as new.
  const std::string current = to_json(sample());
  const std::string::size_type cut = current.find(",\"orbits\"");
  ASSERT_NE(cut, std::string::npos);
  EXPECT_THROW(parse_record(current.substr(0, cut) + "}"), std::invalid_argument);
  // Likewise a dmm-bench-4 record (reps_generated absent).
  const std::string::size_type cut5 = current.find(",\"reps_generated\"");
  ASSERT_NE(cut5, std::string::npos);
  EXPECT_THROW(parse_record(current.substr(0, cut5) + "}"), std::invalid_argument);
  // And a dmm-bench-5 record (fault/recovery stats absent).
  const std::string::size_type cut6 = current.find(",\"crashes\"");
  ASSERT_NE(cut6, std::string::npos);
  EXPECT_THROW(parse_record(current.substr(0, cut6) + "}"), std::invalid_argument);
  // And a dmm-bench-6 record (session/front-end stats absent).
  const std::string::size_type cut7 = current.find(",\"send_ms\"");
  ASSERT_NE(cut7, std::string::npos);
  EXPECT_THROW(parse_record(current.substr(0, cut7) + "}"), std::invalid_argument);
  // And a dmm-bench-7 record (dynamic-matching stats absent).
  const std::string::size_type cut8 = current.find(",\"churn_ops\"");
  ASSERT_NE(cut8, std::string::npos);
  EXPECT_THROW(parse_record(current.substr(0, cut8) + "}"), std::invalid_argument);
  // A record whose orbits field is present but mis-ordered is rejected too.
  std::string swapped = current;
  swapped.replace(swapped.find("\"orbits\""), 8, "\"orbitz\"");
  EXPECT_THROW(parse_record(swapped), std::invalid_argument);
}

TEST(BenchJson, ExperimentSetIsExplicit) {
  // 17 experiments exist (e9 arrived with the fault layer, e10 with the
  // multi-tenant front-end, e12 with the dynamic-matching churn bench —
  // the numbering has no gaps left, but the set stays an explicit list).
  EXPECT_EQ(std::end(kExperiments) - std::begin(kExperiments), 17);
  EXPECT_TRUE(known_experiment("e12"));
  for (const char* e : kExperiments) {
    EXPECT_TRUE(known_experiment(e)) << e;
  }
  EXPECT_FALSE(known_experiment("e0"));
  EXPECT_FALSE(known_experiment("e18"));
}

TEST(BenchJson, HarnessRejectsUnknownExperiments) {
  int argc = 1;
  char binary[] = "bench";
  char* argv[] = {binary, nullptr};
  EXPECT_THROW(Harness("e18", argc, argv), std::invalid_argument);
  EXPECT_THROW(Harness("bogus", argc, argv), std::invalid_argument);
}

TEST(BenchJson, HarnessStripsItsFlagsAndWrites) {
  char binary[] = "bench";
  char smoke[] = "--smoke";
  char json_dir[] = "--json-dir";
  char dir[] = ".";
  char passthrough[] = "--benchmark_filter=x";
  char* argv[] = {binary, smoke, json_dir, dir, passthrough, nullptr};
  int argc = 5;
  Harness h("e1", argc, argv);
  // Only the binary name and the google-benchmark flag survive.
  EXPECT_TRUE(h.smoke());
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], passthrough);

  h.add(sample());
  Record second = sample();
  second.instance = "chain k=8";
  second.engine = "sync";
  h.timed(second, [] {});
  ASSERT_EQ(h.records().size(), 2u);
  EXPECT_GE(h.records()[1].wall_ns, 0.0);

  EXPECT_EQ(h.write(), 0);
  std::ifstream in(h.path());
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const std::string text = content.str();
  EXPECT_NE(text.find("\"schema\":\"dmm-bench-8\""), std::string::npos);
  EXPECT_NE(text.find("\"experiment\":\"e1\""), std::string::npos);
  // Each stored record is embedded verbatim, so the file parses record by
  // record with the same parser the round-trip test uses.
  for (const Record& r : h.records()) {
    EXPECT_NE(text.find(to_json(r)), std::string::npos);
  }
  std::remove(h.path().c_str());
}

}  // namespace
}  // namespace dmm::benchjson
