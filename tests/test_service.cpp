// Multi-tenant front-end + session-stepped runtime (ISSUE 9).
//
// The guarantees pinned here:
//
//   1. Stepping is exact: driving a Session by hand (any interleaving of
//      step() calls across concurrently-open sessions, including two
//      flooding sessions sharing one Runtime's spill arenas) ends in a
//      RunResult bit-identical to the closed-loop run_sync/run_flat call.
//
//   2. Service equivalence: every job submitted through MatchingService —
//      any engine, any program, fault plans on, any quantum/inflight
//      setting — resolves to a future whose RunResult is bit-identical to
//      the same job run standalone.
//
//   3. One pool per process-wide Runtime: N sessions multiplexed on a
//      shared Runtime spawn the worker pool exactly once (pool_spawns
//      gauge == 1) and the per-session threads_spawned counters sum to
//      threads − 1 — the satellite regression for the hoisted pool.
//
//   4. Fair share: the deficit-round-robin discipline bounds how long a
//      flooding tenant can stall a greedy tenant — between two consecutive
//      steps granted to a tenant with runnable work, every other tenant
//      receives at most `quantum` steps (observed via step_observer).
//
//   5. Rejection: submit after shutdown() throws std::runtime_error;
//      non-positive round budgets and oversized instances throw
//      std::invalid_argument before anything is enqueued.
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algo/greedy.hpp"
#include "engine_test_util.hpp"
#include "graph/generators.hpp"
#include "local/engine.hpp"
#include "local/faults.hpp"
#include "local/flat_engine.hpp"
#include "local/flooding.hpp"
#include "local/runtime.hpp"
#include "util/rng.hpp"

namespace dmm::svc {
namespace {

using dmm::local::EngineKind;
using dmm::local::expect_same_result;
using dmm::local::FaultPlan;
using dmm::local::FaultSpec;
using dmm::local::ProgramSource;
using dmm::local::RunOptions;
using dmm::local::RunResult;

ProgramSource flooding_greedy(int k) {
  return dmm::local::flooding_program_factory(std::make_shared<dmm::algo::GreedyLocal>(k),
                                              k);
}

// ---------------------------------------------------------------------------
// 1. Session stepping == closed-loop run, including manual interleavings.

TEST(Session, HandSteppedMatchesClosedRun) {
  dmm::Rng rng(41);
  const auto g = dmm::graph::random_coloured_graph(80, 4, 0.7, rng);
  FaultSpec spec;
  spec.crash_prob = 0.1;
  spec.drop_prob = 0.05;
  spec.horizon = 16;
  spec.seed = 7;
  const FaultPlan plan = FaultPlan::random(g, spec);

  for (const EngineKind kind : {EngineKind::kSync, EngineKind::kFlat}) {
    RunOptions options;
    options.max_rounds = 64;
    options.faults.plan = &plan;
    const RunResult closed =
        dmm::local::run(kind, g, dmm::algo::greedy_program_factory(), options);

    auto session =
        dmm::local::make_session(kind, g, dmm::algo::greedy_program_factory(), options);
    int steps = 0;
    while (!session->done()) {
      EXPECT_EQ(session->round(), steps);
      session->step();
      ++steps;
    }
    EXPECT_EQ(steps, closed.rounds);
    expect_same_result(closed, session->result(),
                       std::string("hand-stepped, engine ") +
                           dmm::local::engine_kind_name(kind));
  }
}

// Two flooding sessions alternating steps on ONE shared Runtime: flooding
// spills big messages into the runtime's shared arenas, so this is the
// direct test that arena sharing across interleaved sessions is safe (the
// borrow lock spans a full step; arenas are round-scoped scratch).
TEST(Session, InterleavedFloodingSessionsShareRuntime) {
  const int k = 5;
  const auto chain = dmm::graph::worst_case_chain(k);
  const auto& g = chain.long_path;
  const ProgramSource source = flooding_greedy(k);

  RunOptions options;
  options.max_rounds = 64;
  const RunResult standalone = dmm::local::run_flat(g, source, options);

  dmm::local::Runtime runtime(3);
  dmm::local::FlatEngineOptions fopts;
  fopts.threads = 3;
  auto a = dmm::local::make_flat_session(g, source, options, fopts, &runtime);
  auto b = dmm::local::make_flat_session(g, source, options, fopts, &runtime);
  // Lock-step interleaving: a, b, a, b, ... then drain whichever remains.
  while (!a->done() || !b->done()) {
    if (!a->done()) a->step();
    if (!b->done()) b->step();
  }
  const RunResult ra = a->result();
  const RunResult rb = b->result();
  expect_same_result(standalone, ra, "interleaved flooding session a");
  expect_same_result(standalone, rb, "interleaved flooding session b");
  EXPECT_EQ(runtime.pool_spawns(), 1u);
  EXPECT_EQ(ra.threads_spawned + rb.threads_spawned, 2);
}

// ---------------------------------------------------------------------------
// 2. Service equivalence grid: engines × programs × fault plans × knobs.

TEST(Service, InterleavedEqualsStandalone) {
  dmm::Rng rng(97);
  const int k = 4;
  const auto random_g = dmm::graph::random_coloured_graph(60, k, 0.6, rng);
  const auto chain = dmm::graph::worst_case_chain(k);

  FaultSpec spec;
  spec.crash_prob = 0.08;
  spec.permanent_prob = 0.3;
  spec.drop_prob = 0.04;
  spec.horizon = 12;
  spec.seed = 23;
  const FaultPlan random_plan = FaultPlan::random(random_g, spec);

  struct Case {
    std::string name;
    const dmm::graph::EdgeColouredGraph* graph;
    ProgramSource source;
    FaultPlan faults;  // empty = clean run
  };
  std::vector<Case> cases;
  cases.push_back({"greedy-clean", &random_g, dmm::algo::greedy_program_factory(), {}});
  cases.push_back(
      {"greedy-faulty", &random_g, dmm::algo::greedy_program_factory(), random_plan});
  cases.push_back({"flooding-clean", &chain.long_path, flooding_greedy(k), {}});

  for (const int quantum : {1, 7}) {
    for (const int inflight : {2, 32}) {
      ServiceOptions opts;
      opts.quantum = quantum;
      opts.inflight = inflight;
      opts.threads = 2;
      MatchingService service(opts);

      std::vector<std::future<RunResult>> futures;
      std::vector<std::pair<EngineKind, const Case*>> expected;
      for (const EngineKind kind : {EngineKind::kSync, EngineKind::kFlat}) {
        for (const Case& c : cases) {
          Job job;
          job.graph = *c.graph;
          job.source = c.source;
          job.max_rounds = 64;
          job.engine = kind;
          job.faults = c.faults;
          futures.push_back(service.submit("tenant-" + c.name, std::move(job)));
          expected.emplace_back(kind, &c);
        }
      }

      for (std::size_t i = 0; i < futures.size(); ++i) {
        const auto& [kind, c] = expected[i];
        RunOptions options;
        options.max_rounds = 64;
        if (!c->faults.empty()) options.faults.plan = &c->faults;
        const RunResult standalone = dmm::local::run(kind, *c->graph, c->source, options);
        expect_same_result(standalone, futures[i].get(),
                           c->name + ", engine " +
                               dmm::local::engine_kind_name(kind) + ", quantum " +
                               std::to_string(quantum) + ", inflight " +
                               std::to_string(inflight));
      }
      const ServiceStats stats = service.stats();
      EXPECT_EQ(stats.sessions, futures.size());
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Acceptance: 1000 concurrent sessions, mixed tenants, one shared
//    Runtime, exactly one pool spawn, every result bit-identical to its
//    standalone run.

TEST(Service, ThousandSessionsOneSharedPool) {
  constexpr int kJobs = 1000;
  constexpr int kDistinct = 10;
  constexpr int kThreads = 4;

  std::vector<dmm::graph::EdgeColouredGraph> graphs;
  graphs.reserve(kDistinct);
  for (int i = 0; i < kDistinct; ++i) {
    dmm::Rng rng(1000 + i);
    graphs.push_back(dmm::graph::random_coloured_graph(1000, 6, 0.8, rng));
  }
  // One oracle per distinct instance (the reference sync engine).
  std::vector<RunResult> oracles;
  oracles.reserve(kDistinct);
  RunOptions options;
  options.max_rounds = 64;
  for (const auto& g : graphs) {
    oracles.push_back(
        dmm::local::run_sync(g, dmm::algo::greedy_program_factory(), options));
  }

  ServiceOptions opts;
  opts.inflight = kJobs;  // all 1000 sessions genuinely concurrent
  opts.quantum = 3;
  opts.threads = kThreads;
  MatchingService service(opts);

  std::vector<std::future<RunResult>> futures;
  futures.reserve(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    Job job;
    job.graph = graphs[static_cast<std::size_t>(j % kDistinct)];
    job.source = dmm::algo::greedy_program_factory();
    job.max_rounds = 64;
    job.engine = EngineKind::kFlat;
    futures.push_back(
        service.submit("tenant-" + std::to_string(j % kDistinct), std::move(job)));
  }

  int threads_spawned_total = 0;
  for (int j = 0; j < kJobs; ++j) {
    RunResult r = futures[static_cast<std::size_t>(j)].get();
    threads_spawned_total += r.threads_spawned;
    expect_same_result(oracles[static_cast<std::size_t>(j % kDistinct)], r,
                       "session " + std::to_string(j));
  }
  // The pool was spawned exactly once for all 1000 sessions, and the
  // per-session gauges sum to the one pool's size (threads − 1).
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(stats.pool_spawns, 1u);
  EXPECT_EQ(stats.threads_spawned, static_cast<std::size_t>(kThreads - 1));
  EXPECT_EQ(threads_spawned_total, kThreads - 1);
  EXPECT_EQ(stats.tenants.size(), static_cast<std::size_t>(kDistinct));
  for (const TenantStats& t : stats.tenants) {
    EXPECT_EQ(t.completed, static_cast<std::uint64_t>(kJobs / kDistinct)) << t.tenant;
  }
}

// A serial service (threads = 1) never spawns a pool at all.
TEST(Service, SerialRuntimeNeverSpawnsPool) {
  dmm::Rng rng(5);
  const auto g = dmm::graph::random_coloured_graph(50, 3, 0.6, rng);
  ServiceOptions opts;
  opts.threads = 1;
  MatchingService service(opts);
  Job job;
  job.graph = g;
  job.source = dmm::algo::greedy_program_factory();
  job.max_rounds = 32;
  const RunResult r = service.submit("solo", std::move(job)).get();
  EXPECT_EQ(r.threads_spawned, 0);
  EXPECT_EQ(service.stats().pool_spawns, 0u);
}

// ---------------------------------------------------------------------------
// 4. Fair share: the starvation bound quantum × (tenants − 1).

TEST(Service, FairShareBoundsCrossTenantStall) {
  const int k = 6;
  const auto chain = dmm::graph::worst_case_chain(k);
  dmm::Rng rng(61);
  const auto small = dmm::graph::random_coloured_graph(40, 3, 0.6, rng);

  constexpr int kQuantum = 2;
  std::vector<std::string> log;  // written by the scheduler thread only
  {
    ServiceOptions opts;
    opts.quantum = kQuantum;
    opts.inflight = 64;
    opts.step_observer = [&log](const std::string& tenant) { log.push_back(tenant); };
    MatchingService service(opts);

    // The flooding tenant dumps a pile of long jobs first; the greedy
    // tenant's short jobs arrive second and must still get steps promptly.
    std::vector<Job> flood_jobs;
    for (int i = 0; i < 12; ++i) {
      Job job;
      job.graph = chain.long_path;
      job.source = flooding_greedy(k);
      job.max_rounds = 64;
      flood_jobs.push_back(std::move(job));
    }
    auto flood_futures = service.submit_batch("zz-flood", std::move(flood_jobs));
    std::vector<Job> fast_jobs;
    for (int i = 0; i < 4; ++i) {
      Job job;
      job.graph = small;
      job.source = dmm::algo::greedy_program_factory();
      job.max_rounds = 32;
      fast_jobs.push_back(std::move(job));
    }
    auto fast_futures = service.submit_batch("aa-fast", std::move(fast_jobs));
    for (auto& f : fast_futures) f.get();
    for (auto& f : flood_futures) f.get();

    const ServiceStats stats = service.stats();
    EXPECT_GT(stats.fairness_ratio, 0.0);
    // Destroy the service (joining the scheduler) before reading `log`.
  }

  // Between two consecutive steps granted to the fast tenant, the flood
  // tenant received at most quantum × (tenants − 1) steps.
  std::optional<std::size_t> last_fast;
  std::size_t worst_gap = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i] != "aa-fast") continue;
    if (last_fast.has_value()) {
      worst_gap = std::max(worst_gap, i - *last_fast - 1);
    }
    last_fast = i;
  }
  ASSERT_TRUE(last_fast.has_value());
  EXPECT_LE(worst_gap, static_cast<std::size_t>(kQuantum) * 1u);
}

// ---------------------------------------------------------------------------
// 5. Rejection paths.

TEST(Service, RejectsInvalidAndShutdownSubmissions) {
  dmm::Rng rng(13);
  const auto small = dmm::graph::random_coloured_graph(10, 3, 0.6, rng);
  const auto big = dmm::graph::random_coloured_graph(100, 3, 0.6, rng);

  ServiceOptions opts;
  opts.max_nodes = 32;
  MatchingService service(opts);

  {  // Non-positive round budget: rejected synchronously.
    Job job;
    job.graph = small;
    job.source = dmm::algo::greedy_program_factory();
    job.max_rounds = 0;
    EXPECT_THROW(service.submit("t", std::move(job)), std::invalid_argument);
  }
  {  // Oversized instance: rejected synchronously.
    Job job;
    job.graph = big;
    job.source = dmm::algo::greedy_program_factory();
    job.max_rounds = 32;
    EXPECT_THROW(service.submit("t", std::move(job)), std::invalid_argument);
  }
  {  // A batch with one bad job rejects the whole batch before enqueuing.
    std::vector<Job> jobs(2);
    jobs[0].graph = small;
    jobs[0].source = dmm::algo::greedy_program_factory();
    jobs[0].max_rounds = 32;
    jobs[1].graph = big;
    jobs[1].source = dmm::algo::greedy_program_factory();
    jobs[1].max_rounds = 32;
    EXPECT_THROW(service.submit_batch("t", std::move(jobs)), std::invalid_argument);
    EXPECT_EQ(service.stats().sessions, 0u);
  }
  {  // A session that exhausts its round budget delivers through the future.
    Job job;
    job.graph = dmm::graph::worst_case_chain(4).long_path;
    job.source = dmm::algo::greedy_program_factory();
    job.max_rounds = 1;
    auto future = service.submit("t", std::move(job));
    EXPECT_THROW(future.get(), std::runtime_error);
  }
  {  // Accepted before shutdown: still runs to completion.
    Job job;
    job.graph = small;
    job.source = dmm::algo::greedy_program_factory();
    job.max_rounds = 32;
    auto future = service.submit("t", std::move(job));
    service.shutdown();
    const RunResult standalone =
        dmm::local::run_sync(small, dmm::algo::greedy_program_factory(), 32);
    expect_same_result(standalone, future.get(), "accepted-before-shutdown");
  }
  {  // After shutdown: runtime_error, for single and batched submission.
    Job job;
    job.graph = small;
    job.source = dmm::algo::greedy_program_factory();
    job.max_rounds = 32;
    EXPECT_THROW(service.submit("t", std::move(job)), std::runtime_error);
    std::vector<Job> jobs(1);
    jobs[0].graph = small;
    jobs[0].source = dmm::algo::greedy_program_factory();
    jobs[0].max_rounds = 32;
    EXPECT_THROW(service.submit_batch("t", std::move(jobs)), std::runtime_error);
  }
}

// ---------------------------------------------------------------------------
// 6. Latency percentiles use the nearest rank (ISSUE 10 satellite): the old
//    idx = q·N indexing overshot by one rank on exact multiples, so the p50
//    of a 2-sample came back as the UPPER element.

TEST(Service, PercentileUsesNearestRank) {
  // Size 1: every quantile is the only element.
  EXPECT_EQ(nearest_rank_percentile({42.0}, 0.50), 42.0);
  EXPECT_EQ(nearest_rank_percentile({42.0}, 0.99), 42.0);

  // Size 2: rank ceil(0.5·2) = 1 → the LOWER element (the bug returned 2).
  EXPECT_EQ(nearest_rank_percentile({1.0, 2.0}, 0.50), 1.0);
  EXPECT_EQ(nearest_rank_percentile({1.0, 2.0}, 0.99), 2.0);

  // Size 4: ranks ceil(.25·4)=1, ceil(.5·4)=2, ceil(.75·4)=3, ceil(.99·4)=4.
  const std::vector<double> four = {10.0, 20.0, 30.0, 40.0};
  EXPECT_EQ(nearest_rank_percentile(four, 0.25), 10.0);
  EXPECT_EQ(nearest_rank_percentile(four, 0.50), 20.0);
  EXPECT_EQ(nearest_rank_percentile(four, 0.75), 30.0);
  EXPECT_EQ(nearest_rank_percentile(four, 0.99), 40.0);

  // Size 100: p50 is the 50th order statistic, p99 the 99th — and q = 1
  // (rank 100) stays in range instead of indexing one past the end.
  std::vector<double> hundred(100);
  for (std::size_t i = 0; i < hundred.size(); ++i) {
    hundred[i] = static_cast<double>(i + 1);
  }
  EXPECT_EQ(nearest_rank_percentile(hundred, 0.50), 50.0);
  EXPECT_EQ(nearest_rank_percentile(hundred, 0.99), 99.0);
  EXPECT_EQ(nearest_rank_percentile(hundred, 1.0), 100.0);

  // Monotone in q by construction, so p50 ≤ p99 on any sample; clamped
  // below so q = 0 is the minimum, and empty samples read 0.
  EXPECT_LE(nearest_rank_percentile(four, 0.50), nearest_rank_percentile(four, 0.99));
  EXPECT_EQ(nearest_rank_percentile(four, 0.0), 10.0);
  EXPECT_EQ(nearest_rank_percentile({}, 0.50), 0.0);
}

}  // namespace
}  // namespace dmm::svc
