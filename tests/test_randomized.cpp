// Randomized contrast baseline: correct on everything, rounds independent
// of k — the deterministic-only scope of Theorem 2 made visible.
#include "algo/randomized_matching.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "verify/matching.hpp"

namespace dmm::algo {
namespace {

TEST(Randomized, ValidMaximalMatchingOnFamilies) {
  Rng rng(1001);
  for (const graph::EdgeColouredGraph& g :
       {graph::figure1_graph(), graph::hypercube(5), graph::complete_bipartite(6),
        graph::worst_case_chain(9).long_path}) {
    const RandomizedMatchingResult r = randomized_matching(g, rng);
    const verify::MatchingReport report = verify::check_outputs(g, r.outputs);
    EXPECT_TRUE(report.ok()) << report.describe();
  }
}

TEST(Randomized, ValidOnRandomInstances) {
  Rng rng(1003);
  for (int trial = 0; trial < 25; ++trial) {
    const graph::EdgeColouredGraph g = graph::random_coloured_graph(
        static_cast<int>(rng.uniform(2, 60)), static_cast<int>(rng.uniform(1, 9)), 0.8, rng);
    const RandomizedMatchingResult r = randomized_matching(g, rng);
    EXPECT_TRUE(verify::check_outputs(g, r.outputs).ok());
  }
}

TEST(Randomized, RoundsDoNotScaleWithK) {
  // On the worst-case chain, greedy is forced to k-1 rounds; the
  // randomized algorithm needs O(log k) (it never looks at colours).
  Rng rng(1009);
  for (int k : {16, 64, 200}) {
    const graph::EdgeColouredGraph g = graph::worst_case_chain(k).long_path;
    int worst = 0;
    for (int rep = 0; rep < 5; ++rep) {
      const RandomizedMatchingResult r = randomized_matching(g, rng);
      EXPECT_TRUE(verify::check_outputs(g, r.outputs).ok());
      worst = std::max(worst, r.rounds);
    }
    EXPECT_LT(worst, k - 1) << "k=" << k;   // beats the deterministic bound
    EXPECT_LE(worst, 6 * 8 + 8) << "k=" << k;  // ~O(log edges) in practice
  }
}

TEST(Randomized, DeterministicGivenSeed) {
  const graph::EdgeColouredGraph g = graph::figure1_graph();
  Rng a(77), b(77);
  EXPECT_EQ(randomized_matching(g, a).outputs, randomized_matching(g, b).outputs);
}

TEST(Randomized, EdgelessGraph) {
  Rng rng(1013);
  const graph::EdgeColouredGraph g(6, 3);
  const RandomizedMatchingResult r = randomized_matching(g, rng);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_TRUE(verify::check_outputs(g, r.outputs).ok());
}

}  // namespace
}  // namespace dmm::algo
