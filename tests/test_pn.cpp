// The port-numbering model (§1.4): structure, engine, the classical
// symmetry impossibility on transitive instances, and the reduction from
// the edge-coloured model.
#include "pn/adapter.hpp"

#include <gtest/gtest.h>

#include "algo/bipartite_matching.hpp"
#include "algo/greedy.hpp"
#include "graph/generators.hpp"
#include "verify/matching.hpp"

namespace dmm::pn {
namespace {

TEST(PortNetwork, ConnectAndEndpoints) {
  PortNetwork net(3);
  net.connect(0, 1, 1, 1);
  net.connect(1, 2, 2, 1);
  EXPECT_TRUE(net.is_valid());
  EXPECT_EQ(net.degree(1), 2);
  EXPECT_EQ(net.endpoint(0, 1).node, 1);
  EXPECT_EQ(net.endpoint(0, 1).port, 1);
  EXPECT_EQ(net.endpoint(1, 2).node, 2);
  EXPECT_THROW(net.endpoint(0, 2), std::invalid_argument);
  EXPECT_THROW(net.connect(0, 1, 2, 2), std::logic_error);  // port reuse
}

TEST(PortNetwork, GapInNumberingIsInvalid) {
  PortNetwork net(2);
  net.connect(0, 2, 1, 1);  // port 1 at node 0 left open
  EXPECT_FALSE(net.is_valid());
}

TEST(PortNetwork, FromColouredPreservesAdjacency) {
  const graph::EdgeColouredGraph g = graph::figure1_graph();
  const PortNetwork net = PortNetwork::from_coloured(g);
  EXPECT_TRUE(net.is_valid());
  for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(net.degree(v), g.degree(v));
    const auto colours = g.incident_colours(v);
    for (Port p = 1; p <= net.degree(v); ++p) {
      // Port p of v corresponds to the p-th smallest incident colour.
      const auto e = net.endpoint(v, p);
      EXPECT_EQ(e.node, *g.neighbour(v, colours[static_cast<std::size_t>(p - 1)]));
    }
  }
}

TEST(PortNetwork, SymmetricCycleShape) {
  const PortNetwork net = PortNetwork::symmetric_cycle(5);
  EXPECT_TRUE(net.is_valid());
  for (NodeIndex v = 0; v < 5; ++v) {
    EXPECT_EQ(net.degree(v), 2);
    EXPECT_EQ(net.endpoint(v, 1).node, (v + 1) % 5);
    EXPECT_EQ(net.endpoint(v, 1).port, 2);
  }
}

/// "Match along port 1 after one round" — a natural but doomed PN guess.
class MatchPortOne final : public PnProgram {
 public:
  bool init(int degree) override {
    degree_ = degree;
    return degree_ == 0;
  }
  std::map<Port, Message> send(int) override {
    std::map<Port, Message> out;
    for (Port p = 1; p <= degree_; ++p) out[p] = "hi";
    return out;
  }
  bool receive(int, const std::map<Port, Message>&) override { return true; }
  PnOutput output() const override { return degree_ >= 1 ? 1 : kPnUnmatched; }

 private:
  int degree_ = 0;
};

/// Never matches anyone.
class AllBottom final : public PnProgram {
 public:
  bool init(int) override { return true; }
  std::map<Port, Message> send(int) override { return {}; }
  bool receive(int, const std::map<Port, Message>&) override { return true; }
  PnOutput output() const override { return kPnUnmatched; }
};

TEST(PnEngine, SymmetryImpossibilityOnCycles) {
  // §1.4: no deterministic PN algorithm finds a maximal matching on the
  // symmetric cycle — uniform outputs are either inconsistent or empty.
  for (int n : {4, 5, 8}) {
    EXPECT_TRUE(pn_symmetry_defeats([] { return std::make_unique<MatchPortOne>(); }, n, 10));
    EXPECT_TRUE(pn_symmetry_defeats([] { return std::make_unique<AllBottom>(); }, n, 10));
  }
}

TEST(PnEngine, UniformityDetected) {
  const PortNetwork net = PortNetwork::symmetric_cycle(6);
  const PnRunResult run = run_pn(net, [] { return std::make_unique<MatchPortOne>(); }, 10);
  EXPECT_TRUE(run.uniform_throughout);
  // Everyone matched "their" port 1: pairwise inconsistent.
  EXPECT_FALSE(pn_matching_valid(net, run.outputs));
}

TEST(PnEngine, ValidityChecker) {
  // A 2-node network matched through its single edge: valid.
  PortNetwork net(2);
  net.connect(0, 1, 1, 1);
  EXPECT_TRUE(pn_matching_valid(net, {1, 1}));
  EXPECT_FALSE(pn_matching_valid(net, {1, kPnUnmatched}));  // (M2)
  EXPECT_FALSE(pn_matching_valid(net, {kPnUnmatched, kPnUnmatched}));  // (M3)
  EXPECT_FALSE(pn_matching_valid(net, {2, 1}));  // (M1): no port 2
}

TEST(Adapter, GreedyThroughPnMatchesColouredEngine) {
  // The reduction: greedy runs unchanged in the PN model when colours are
  // provided as local inputs; outputs and round counts agree.
  Rng rng(811);
  for (int trial = 0; trial < 15; ++trial) {
    const int k = static_cast<int>(rng.uniform(2, 6));
    const graph::EdgeColouredGraph g =
        graph::random_coloured_graph(static_cast<int>(rng.uniform(2, 40)), k, 0.8, rng);
    const PnGreedyResult via_pn = greedy_via_pn(g);
    const local::RunResult direct = local::run_sync(g, algo::greedy_program_factory(), k + 1);
    EXPECT_EQ(via_pn.outputs, direct.outputs);
    EXPECT_EQ(via_pn.rounds, direct.rounds);
  }
}

TEST(Adapter, GreedyIsABroadcastAlgorithm) {
  // run_pn(broadcast=true) throws on port-dependent messages; greedy_via_pn
  // enables that enforcement, so completing at all is the assertion.
  const graph::EdgeColouredGraph g = graph::worst_case_chain(5).long_path;
  const PnGreedyResult r = greedy_via_pn(g);
  EXPECT_TRUE(verify::check_outputs(g, r.outputs).ok());
  EXPECT_EQ(r.rounds, 4);
}

TEST(ProposalPn, ValidMaximalMatchingOnBipartiteInstances) {
  // The [6] proposal algorithm as a *native* PN program: side bit in,
  // ports on the wire, maximal matching out.
  Rng rng(831);
  for (int trial = 0; trial < 20; ++trial) {
    const int nl = static_cast<int>(rng.uniform(1, 15));
    const int nr = static_cast<int>(rng.uniform(1, 15));
    const graph::EdgeColouredGraph g =
        algo::random_bipartite(nl, nr, static_cast<int>(rng.uniform(1, 6)), 0.8, rng);
    std::vector<bool> white(static_cast<std::size_t>(g.node_count()), false);
    for (int i = 0; i < nl; ++i) white[static_cast<std::size_t>(i)] = true;
    const PnProposalResult r = proposal_via_pn(g, white);
    const verify::MatchingReport report = verify::check_outputs(g, r.outputs);
    EXPECT_TRUE(report.ok()) << report.describe();
    EXPECT_LE(r.rounds, 2 * g.max_degree() + 2);
  }
}

TEST(ProposalPn, CompleteBipartitePerfect) {
  for (int d = 1; d <= 5; ++d) {
    const graph::EdgeColouredGraph g = graph::complete_bipartite(d);
    std::vector<bool> white(static_cast<std::size_t>(2 * d), false);
    for (int i = 0; i < d; ++i) white[static_cast<std::size_t>(i)] = true;
    const PnProposalResult r = proposal_via_pn(g, white);
    EXPECT_TRUE(verify::check_outputs(g, r.outputs).ok());
    for (gk::Colour c : r.outputs) EXPECT_NE(c, local::kUnmatched);
  }
}

TEST(ProposalPn, MatchesCentralisedVariantInSize) {
  // The PN realisation and the centralised reference may differ in the
  // exact matching (ports vs colours tie-breaks coincide here by
  // construction: ports are in colour order), so compare matched-set size
  // and validity.
  Rng rng(839);
  const graph::EdgeColouredGraph g = algo::random_bipartite(12, 12, 5, 0.9, rng);
  std::vector<bool> white(static_cast<std::size_t>(g.node_count()), false);
  for (int i = 0; i < 12; ++i) white[static_cast<std::size_t>(i)] = true;
  const PnProposalResult via_pn = proposal_via_pn(g, white);
  const algo::BipartiteMatchingResult central = algo::bipartite_proposal_matching(g, white);
  EXPECT_TRUE(verify::check_outputs(g, via_pn.outputs).ok());
  EXPECT_TRUE(verify::check_outputs(g, central.outputs).ok());
  EXPECT_EQ(verify::matched_edges(g, via_pn.outputs).size(),
            verify::matched_edges(g, central.outputs).size());
}

TEST(Adapter, OutputColoursAreValidMatchings) {
  Rng rng(821);
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(50, 5, 0.8, rng);
  const PnGreedyResult r = greedy_via_pn(g);
  EXPECT_TRUE(verify::check_outputs(g, r.outputs).ok());
}

}  // namespace
}  // namespace dmm::pn
