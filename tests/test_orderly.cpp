// Completeness-oracle suite for orderly generation of canonical orbit
// representatives.
//
// The orderly generator replaces the PR 5 replay-fold inside
// enumerate_orbits; a generation bug would silently *drop orbits* and flip
// UNSAT verdicts, so the generator is pinned three independent ways:
//   1. against the replay-fold itself (reduce_catalogue over a full raw
//      enumeration), byte for byte — same rep set, same canonical
//      serialisations, same stabilisers, same cosets — over every feasible
//      k <= 4, rho <= 3 instance;
//   2. against the closed-form Burnside census (rep count and the implied
//      raw member count) for every instance the guard admits;
//   3. metamorphically: relabelling the raw catalogue by any global colour
//      permutation before folding must land on the orderly output exactly.
// Alongside, prune-soundness unit tests drive hand-built partial choice
// vectors through the incremental is-canonical test, so a pruning bug
// fails a named test rather than silently shrinking the catalogue, and the
// k = 5, rho = 3 streaming test runs past the old raw-view guard.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "colsys/canon.hpp"
#include "nbhd/views.hpp"
#include "util/rng.hpp"

namespace dmm {
namespace {

using colsys::ColourPerm;
using colsys::ColourSystem;
using colsys::SerialisedView;
using gk::Colour;

// Every (k, d, rho) with k <= 4, rho <= 3 whose raw catalogue stays small
// enough for the replay-fold oracle (the largest, k = 4, d = 3, rho = 3,
// is the 78 732-view instance the tentpole targets).
struct Grid {
  int k, d, rho;
};
const Grid kOracleGrid[] = {
    {2, 1, 2}, {2, 2, 2}, {2, 2, 3}, {3, 1, 2}, {3, 2, 1}, {3, 2, 2},
    {3, 2, 3}, {3, 3, 2}, {3, 3, 3}, {4, 1, 2}, {4, 2, 2}, {4, 2, 3},
    {4, 3, 1}, {4, 3, 2}, {4, 3, 3}, {4, 4, 2}, {4, 4, 3},
};

std::vector<std::uint8_t> serialised(const ColourSystem& view, int rho) {
  std::vector<std::uint8_t> bytes;
  view.serialize_into(rho, bytes);
  return bytes;
}

/// Byte-level equality of two orbit catalogues: reps (as serialisations),
/// stabilisers, cosets and offsets.  EXPECTs with context so a mismatch
/// names the instance and orbit.
void expect_catalogues_equal(const nbhd::OrbitCatalogue& got, const nbhd::OrbitCatalogue& want,
                             const char* what) {
  ASSERT_EQ(got.orbit_count(), want.orbit_count()) << what;
  ASSERT_EQ(got.view_count(), want.view_count()) << what;
  EXPECT_EQ(got.offsets, want.offsets) << what;
  for (int o = 0; o < got.orbit_count(); ++o) {
    const auto i = static_cast<std::size_t>(o);
    EXPECT_EQ(serialised(got.reps[i], got.rho), serialised(want.reps[i], want.rho))
        << what << " orbit " << o;
    EXPECT_EQ(got.stabilisers[i], want.stabilisers[i]) << what << " orbit " << o;
    EXPECT_EQ(got.cosets[i], want.cosets[i]) << what << " orbit " << o;
  }
}

// ---------------------------------------------------------------------------
// Completeness oracle: orderly == replay-fold == census.
// ---------------------------------------------------------------------------

TEST(Orderly, MatchesReplayFoldOnTheFullGrid) {
  for (const Grid& g : kOracleGrid) {
    SCOPED_TRACE(testing::Message() << "k=" << g.k << " d=" << g.d << " rho=" << g.rho);
    const nbhd::OrbitCatalogue orderly = nbhd::enumerate_orbits(g.k, g.d, g.rho);
    const nbhd::OrbitCatalogue fold =
        nbhd::reduce_catalogue(nbhd::enumerate_views(g.k, g.d, g.rho));
    expect_catalogues_equal(orderly, fold, "orderly vs replay-fold");
  }
}

TEST(Orderly, CountsMatchTheBurnsideCensus) {
  for (const Grid& g : kOracleGrid) {
    SCOPED_TRACE(testing::Message() << "k=" << g.k << " d=" << g.d << " rho=" << g.rho);
    const nbhd::OrbitCensus census = nbhd::orbit_census(g.k, g.d, g.rho);
    nbhd::OrbitGenStats stats;
    const nbhd::OrbitCatalogue cat = nbhd::enumerate_orbits(g.k, g.d, g.rho, 2'000'000, &stats);
    EXPECT_EQ(static_cast<double>(cat.orbit_count()), census.orbits);
    EXPECT_EQ(static_cast<double>(cat.view_count()), census.views);
    EXPECT_EQ(static_cast<double>(stats.reps_generated), census.orbits);
    EXPECT_EQ(stats.member_views, census.views);
    EXPECT_TRUE(stats.complete);
  }
}

TEST(Orderly, NeverReplaysARawView) {
  // The acceptance criterion of the orderly refactor: k = 4, rho = 3
  // produces its 3 330 reps without walking any of the 78 732 raw views.
  nbhd::OrbitGenStats stats;
  const nbhd::OrbitCatalogue cat = nbhd::enumerate_orbits(4, 3, 3, 2'000'000, &stats);
  EXPECT_EQ(cat.orbit_count(), 3330);
  EXPECT_EQ(cat.view_count(), 78732);
  EXPECT_EQ(stats.reps_generated, 3330);
  EXPECT_EQ(stats.views_replayed, 0);
  EXPECT_LT(stats.views_replayed, 78732);
  EXPECT_EQ(stats.member_views, 78732.0);
}

TEST(Orderly, RepsEmergeInCanonicalByteOrderAndSelfCanonical) {
  std::vector<std::uint8_t> prev;
  nbhd::orderly_orbit_reps(4, 3, 2, [&](nbhd::OrderlyRep&& rep) {
    // Strictly ascending lexicographic bytes — the OrbitCatalogue order.
    EXPECT_TRUE(prev.empty() || prev < rep.bytes);
    // Self-canonical: the branch-and-bound canoniser agrees the emitted
    // bytes are already the orbit minimum.
    std::vector<std::uint8_t> canonical;
    SerialisedView(rep.bytes).canonicalise(canonical);
    EXPECT_EQ(canonical, rep.bytes);
    prev = std::move(rep.bytes);
    return true;
  });
  EXPECT_FALSE(prev.empty());
}

TEST(Orderly, MetamorphicRelabellingFuzz) {
  // Folding a globally relabelled raw catalogue must land exactly on the
  // orderly output: the generator's canonical order erases the input
  // permutation entirely.
  Rng rng(0xd15c0);
  const Grid cases[] = {{3, 2, 2}, {4, 2, 2}, {4, 3, 2}, {3, 2, 3}};
  for (const Grid& g : cases) {
    SCOPED_TRACE(testing::Message() << "k=" << g.k << " d=" << g.d << " rho=" << g.rho);
    const nbhd::OrbitCatalogue orderly = nbhd::enumerate_orbits(g.k, g.d, g.rho);
    const auto perms = colsys::all_perms(g.k);
    nbhd::ViewCatalogue raw = nbhd::enumerate_views(g.k, g.d, g.rho);
    for (int trial = 0; trial < 3; ++trial) {
      const ColourPerm& pi = perms[rng.index(perms.size())];
      nbhd::ViewCatalogue relabelled;
      relabelled.k = raw.k;
      relabelled.d = raw.d;
      relabelled.rho = raw.rho;
      for (const ColourSystem& view : raw.views) relabelled.views.push_back(view.permuted(pi));
      expect_catalogues_equal(nbhd::reduce_catalogue(relabelled), orderly,
                              "relabelled fold vs orderly");
    }
  }
}

// ---------------------------------------------------------------------------
// Streaming past the old raw-view guard.
// ---------------------------------------------------------------------------

TEST(Orderly, StreamsKFiveRhoThreePastTheRawViewGuard) {
  // 2.1e10 raw views made enumerate_orbits(5, 4, 3) throw at any feasible
  // max_views before this PR; the orderly generator streams the same
  // instance's canonical reps directly.  First slice only — the full
  // 178 981 952-rep walk is a nightly-budget affair (bench --scale).
  std::vector<std::uint8_t> prev;
  long long seen = 0;
  const nbhd::OrbitGenStats stats = nbhd::orderly_orbit_reps(5, 4, 3, [&](nbhd::OrderlyRep&& rep) {
    EXPECT_EQ(rep.index, seen);
    EXPECT_TRUE(prev.empty() || prev < rep.bytes);
    prev = std::move(rep.bytes);
    return ++seen < 2000;
  });
  EXPECT_EQ(seen, 2000);
  EXPECT_FALSE(stats.complete);  // stopped early by the callback
  EXPECT_EQ(stats.reps_generated, 2000);
  EXPECT_EQ(stats.views_replayed, 0);
  // The guard itself still protects enumerate_orbits: 1.79e8 reps > 2e6.
  EXPECT_THROW(nbhd::enumerate_orbits(5, 4, 3), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Prune soundness: hand-built partial choice vectors.
// ---------------------------------------------------------------------------

/// k = 3, d = 2, rho = 2 skeleton: internal nodes are the root (2 child
/// colours) and its two children (1 downward colour each).
SerialisedView k3_skeleton() { return SerialisedView(3, 2, 2); }

TEST(PruneSoundness, NonMinimalRootSetsAreRejected) {
  // Root {2, 3}: relabelling 2→1, 3→2 yields root bytes {1, 2} < {2, 3},
  // so no completion can be canonical.
  {
    SerialisedView sv = k3_skeleton();
    const Colour root[] = {2, 3};
    sv.push_assignment(root);
    EXPECT_TRUE(sv.prefix_rejects());
  }
  // Root {1, 3}: 3→2 (fixing 1) beats it the same way.
  {
    SerialisedView sv = k3_skeleton();
    const Colour root[] = {1, 3};
    sv.push_assignment(root);
    EXPECT_TRUE(sv.prefix_rejects());
  }
  // Root {1, 2} is the minimal root set: must NOT be rejected (it has
  // canonical completions, e.g. both children descending by colour 3).
  {
    SerialisedView sv = k3_skeleton();
    const Colour root[] = {1, 2};
    sv.push_assignment(root);
    EXPECT_FALSE(sv.prefix_rejects());
  }
}

TEST(PruneSoundness, SymmetricPrefixIsIndeterminateNotRejected) {
  // Root {1, 2}, first child descends by 3.  The only permutation that
  // could compete (swap 1↔2) hits the still-unassigned second child and
  // certifies nothing; the completion (3, 3) is canonical, so rejecting
  // here would drop a real orbit.
  SerialisedView sv = k3_skeleton();
  const Colour root[] = {1, 2};
  const Colour first[] = {3};
  sv.push_assignment(root);
  sv.push_assignment(first);
  EXPECT_FALSE(sv.prefix_rejects());
  // Completing symmetrically gives the canonical tree with stabiliser
  // {id, (1 2)} — the exact tie set of the full-assignment test.
  const Colour second[] = {3};
  sv.push_assignment(second);
  std::vector<ColourPerm> stab;
  EXPECT_FALSE(sv.prefix_rejects(&stab));
  ASSERT_EQ(stab.size(), 2u);
  EXPECT_EQ(stab[0], colsys::identity_perm(3));
  EXPECT_EQ(stab[1], (ColourPerm{gk::kNoColour, 2, 1, 3}));
}

TEST(PruneSoundness, CompleteNonCanonicalAssignmentIsRejected) {
  // Root {1, 2}, children descend by (3, 2): swapping 1↔2 turns the
  // colour-2 child's segment [1][2] into a colour-1 segment [1][1] — the
  // exact test on the full assignment must reject.
  SerialisedView sv = k3_skeleton();
  const Colour root[] = {1, 2};
  const Colour first[] = {3};
  const Colour second[] = {2};
  sv.push_assignment(root);
  sv.push_assignment(first);
  sv.push_assignment(second);
  EXPECT_TRUE(sv.prefix_rejects());
}

TEST(PruneSoundness, RejectionCanFireBeforeTheAssignmentCompletes) {
  // k = 4, d = 2, rho = 2: root {1, 2}, first child descends by 4.  The
  // transposition (3 4) fixes the root bytes and rewrites the first
  // child's segment to [1][3] < [1][4] without ever touching the
  // unassigned second child — the prune fires mid-prefix.
  SerialisedView sv(4, 2, 2);
  const Colour root[] = {1, 2};
  const Colour first[] = {4};
  sv.push_assignment(root);
  EXPECT_FALSE(sv.prefix_rejects());
  sv.push_assignment(first);
  EXPECT_TRUE(sv.prefix_rejects());
  // Backing the choice out restores the accepted prefix.
  sv.pop_assignment();
  EXPECT_FALSE(sv.prefix_rejects());
  const Colour third[] = {3};
  sv.push_assignment(third);
  EXPECT_FALSE(sv.prefix_rejects());
}

TEST(PruneSoundness, PrefixBytesGrowAndShrinkWithAssignments) {
  SerialisedView sv = k3_skeleton();
  const std::vector<std::uint8_t> empty{3};  // just the k byte
  EXPECT_EQ(sv.prefix_bytes(), empty);
  const Colour root[] = {1, 2};
  sv.push_assignment(root);
  const std::vector<std::uint8_t> after_root{3, 2, 1, 2};
  EXPECT_EQ(sv.prefix_bytes(), after_root);
  const Colour first[] = {3};
  sv.push_assignment(first);
  // The first child's segment closes with the truncated grandchild.
  const std::vector<std::uint8_t> after_first{3, 2, 1, 2, 1, 3, 0xff};
  EXPECT_EQ(sv.prefix_bytes(), after_first);
  sv.pop_assignment();
  EXPECT_EQ(sv.prefix_bytes(), after_root);
  sv.pop_assignment();
  EXPECT_EQ(sv.prefix_bytes(), empty);
  // A fully assigned skeleton's prefix is the whole serialisation.
  sv.push_assignment(root);
  sv.push_assignment(first);
  const Colour second[] = {3};
  sv.push_assignment(second);
  std::vector<std::uint8_t> full;
  sv.serialise(colsys::identity_perm(3), full);
  EXPECT_EQ(sv.prefix_bytes(), full);
}

// ---------------------------------------------------------------------------
// The fast stabiliser walk vs the literal k! oracle.
// ---------------------------------------------------------------------------

TEST(Orderly, StabiliserWalkMatchesBruteForce) {
  for (const Grid& g : {Grid{3, 2, 2}, Grid{4, 2, 2}, Grid{4, 3, 2}}) {
    SCOPED_TRACE(testing::Message() << "k=" << g.k << " d=" << g.d << " rho=" << g.rho);
    const nbhd::ViewCatalogue raw = nbhd::enumerate_views(g.k, g.d, g.rho);
    const auto perms = colsys::all_perms(g.k);
    for (const ColourSystem& view : raw.views) {
      const SerialisedView sv(serialised(view, g.rho));
      std::vector<ColourPerm> brute;
      std::vector<std::uint8_t> ref, buf;
      sv.serialise(colsys::identity_perm(g.k), ref);
      for (const ColourPerm& pi : perms) {
        buf.clear();
        sv.serialise(pi, buf);
        if (buf == ref) brute.push_back(pi);
      }
      EXPECT_EQ(sv.stabiliser(), brute);
    }
  }
}

}  // namespace
}  // namespace dmm
