// Maximal edge packing + 2-approximate vertex cover (§1.1 / E13).
#include "algo/edge_packing.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "verify/matching.hpp"

namespace dmm::algo {
namespace {

TEST(Fraction, ExactArithmetic) {
  const Fraction half(1, 2);
  const Fraction third(1, 3);
  EXPECT_EQ(half + third, Fraction(5, 6));
  EXPECT_EQ(half - third, Fraction(1, 6));
  EXPECT_EQ(Fraction(2, 4), half);  // normalisation
  EXPECT_TRUE(third < half);
  EXPECT_TRUE((half / 2).is_zero() == false);
  EXPECT_EQ(half / 2, Fraction(1, 4));
  EXPECT_THROW(Fraction(1, 0), std::invalid_argument);
  EXPECT_THROW(half / 0, std::invalid_argument);
}

TEST(Fraction, NegativeDenominatorNormalised) {
  EXPECT_EQ(Fraction(1, -2), Fraction(-1, 2));
  EXPECT_TRUE(Fraction(-1, 2) < Fraction::zero());
}

TEST(EdgePacking, SingleEdgeGetsFullWeight) {
  graph::EdgeColouredGraph g(2, 1);
  g.add_edge(0, 1, 1);
  const EdgePackingResult r = maximal_edge_packing(g);
  EXPECT_EQ(r.weights[0], Fraction::one());
  EXPECT_EQ(r.rounds, 1);
  EXPECT_TRUE(is_maximal_edge_packing(g, r.weights));
}

TEST(EdgePacking, StarSplitsEvenly) {
  graph::EdgeColouredGraph g(4, 3);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 2);
  g.add_edge(0, 3, 3);
  const EdgePackingResult r = maximal_edge_packing(g);
  for (const Fraction& w : r.weights) EXPECT_EQ(w, Fraction(1, 3));
  EXPECT_TRUE(is_maximal_edge_packing(g, r.weights));
  EXPECT_TRUE(r.saturated[0]);
}

TEST(EdgePacking, FeasibleAndMaximalOnRandomGraphs) {
  Rng rng(503);
  for (int trial = 0; trial < 20; ++trial) {
    const graph::EdgeColouredGraph g =
        graph::random_coloured_graph(static_cast<int>(rng.uniform(2, 24)),
                                     static_cast<int>(rng.uniform(1, 5)), 0.8, rng);
    const EdgePackingResult r = maximal_edge_packing(g);
    EXPECT_TRUE(is_maximal_edge_packing(g, r.weights));
  }
}

TEST(EdgePacking, RoundsBoundedByDegreeish) {
  // The O(Δ)-rounds claim of [2]: on our instances the proportional-offer
  // scheme freezes everything within a small multiple of Δ.
  Rng rng(509);
  for (int trial = 0; trial < 15; ++trial) {
    const graph::EdgeColouredGraph g =
        graph::random_coloured_graph(static_cast<int>(rng.uniform(4, 24)), 4, 0.8, rng);
    if (g.edge_count() == 0) continue;
    const EdgePackingResult r = maximal_edge_packing(g);
    EXPECT_LE(r.rounds, 4 * g.max_degree() + 2) << g.str();
  }
}

TEST(VertexCover, CoversEveryEdge) {
  Rng rng(521);
  for (int trial = 0; trial < 15; ++trial) {
    const graph::EdgeColouredGraph g =
        graph::random_coloured_graph(static_cast<int>(rng.uniform(2, 30)), 3, 0.8, rng);
    const EdgePackingResult packing = maximal_edge_packing(g);
    const auto cover = vertex_cover_from_packing(g, packing);
    std::vector<char> in_cover(static_cast<std::size_t>(g.node_count()), 0);
    for (graph::NodeIndex v : cover) in_cover[static_cast<std::size_t>(v)] = 1;
    for (const graph::Edge& e : g.edges()) {
      EXPECT_TRUE(in_cover[static_cast<std::size_t>(e.u)] ||
                  in_cover[static_cast<std::size_t>(e.v)]);
    }
  }
}

TEST(VertexCover, TwoApproximation) {
  // |cover| ≤ 2 Σ y_e ≤ 2 OPT; we check the checkable half against the
  // matching lower bound: |cover| ≤ 2 * (max matching ≥ greedy matching).
  Rng rng(523);
  for (int trial = 0; trial < 15; ++trial) {
    const graph::EdgeColouredGraph g =
        graph::random_coloured_graph(static_cast<int>(rng.uniform(2, 30)), 4, 0.9, rng);
    const EdgePackingResult packing = maximal_edge_packing(g);
    const auto cover = vertex_cover_from_packing(g, packing);
    // Σ y_e is a fractional matching; OPT_VC ≥ Σ y_e, so the 2-approx
    // guarantee is |cover| ≤ 2 Σ y_e.
    const double total = packing.total_weight.to_double();
    EXPECT_LE(static_cast<double>(cover.size()), 2.0 * total + 1e-9);
  }
}

TEST(EdgePacking, EdgelessGraph) {
  const graph::EdgeColouredGraph g(5, 2);
  const EdgePackingResult r = maximal_edge_packing(g);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_TRUE(is_maximal_edge_packing(g, r.weights));
  EXPECT_TRUE(vertex_cover_from_packing(g, r).empty());
}

}  // namespace
}  // namespace dmm::algo
