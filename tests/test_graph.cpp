// Edge-coloured graph substrate: proper-colouring enforcement, adjacency.
#include "graph/edge_coloured_graph.hpp"

#include <gtest/gtest.h>

namespace dmm::graph {
namespace {

TEST(EdgeColouredGraph, BasicAdjacency) {
  EdgeColouredGraph g(3, 4);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_EQ(*g.neighbour(0, 2), 1);
  EXPECT_EQ(*g.neighbour(1, 2), 0);
  EXPECT_EQ(*g.neighbour(1, 3), 2);
  EXPECT_FALSE(g.neighbour(0, 3).has_value());
  EXPECT_EQ(g.incident_colours(1), (std::vector<gk::Colour>{2, 3}));
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_TRUE(g.is_properly_coloured());
}

TEST(EdgeColouredGraph, RejectsImproperColouring) {
  EdgeColouredGraph g(3, 2);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(g.add_edge(0, 2, 1), std::logic_error);  // colour 1 reused at 0
  EXPECT_THROW(g.add_edge(1, 2, 1), std::logic_error);  // colour 1 reused at 1
  EXPECT_NO_THROW(g.add_edge(1, 2, 2));
}

TEST(EdgeColouredGraph, RejectsSelfLoopsAndParallelEdges) {
  EdgeColouredGraph g(2, 3);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(g.add_edge(0, 0, 2), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, 2), std::logic_error);  // parallel
}

TEST(EdgeColouredGraph, RejectsBadColoursAndNodes) {
  EdgeColouredGraph g(2, 3);
  EXPECT_THROW(g.add_edge(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, 4), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5, 1), std::out_of_range);
  EXPECT_THROW(g.degree(-1), std::out_of_range);
}

TEST(EdgeColouredGraph, ProperColouringBoundsDegreeByK) {
  EdgeColouredGraph g(10, 3);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 2);
  g.add_edge(0, 3, 3);
  EXPECT_EQ(g.degree(0), 3);
  // A fourth edge at node 0 is impossible: all k colours used.
  for (gk::Colour c = 1; c <= 3; ++c) {
    EXPECT_THROW(g.add_edge(0, 4, c), std::logic_error);
  }
}

TEST(EdgeColouredGraph, EmptyGraph) {
  EdgeColouredGraph g(0, 1);
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.max_degree(), 0);
  EXPECT_TRUE(g.is_properly_coloured());
}

}  // namespace
}  // namespace dmm::graph
