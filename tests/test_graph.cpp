// Edge-coloured graph substrate: proper-colouring enforcement, adjacency.
#include "graph/edge_coloured_graph.hpp"

#include <gtest/gtest.h>

namespace dmm::graph {
namespace {

TEST(EdgeColouredGraph, BasicAdjacency) {
  EdgeColouredGraph g(3, 4);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_EQ(*g.neighbour(0, 2), 1);
  EXPECT_EQ(*g.neighbour(1, 2), 0);
  EXPECT_EQ(*g.neighbour(1, 3), 2);
  EXPECT_FALSE(g.neighbour(0, 3).has_value());
  EXPECT_EQ(g.incident_colours(1), (std::vector<gk::Colour>{2, 3}));
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_TRUE(g.is_properly_coloured());
}

TEST(EdgeColouredGraph, RejectsImproperColouring) {
  EdgeColouredGraph g(3, 2);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(g.add_edge(0, 2, 1), std::logic_error);  // colour 1 reused at 0
  EXPECT_THROW(g.add_edge(1, 2, 1), std::logic_error);  // colour 1 reused at 1
  EXPECT_NO_THROW(g.add_edge(1, 2, 2));
}

TEST(EdgeColouredGraph, RejectsSelfLoopsAndParallelEdges) {
  EdgeColouredGraph g(2, 3);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(g.add_edge(0, 0, 2), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, 2), std::logic_error);  // parallel
}

TEST(EdgeColouredGraph, RejectsBadColoursAndNodes) {
  EdgeColouredGraph g(2, 3);
  EXPECT_THROW(g.add_edge(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, 4), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5, 1), std::out_of_range);
  EXPECT_THROW(g.degree(-1), std::out_of_range);
}

TEST(EdgeColouredGraph, ProperColouringBoundsDegreeByK) {
  EdgeColouredGraph g(10, 3);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 2);
  g.add_edge(0, 3, 3);
  EXPECT_EQ(g.degree(0), 3);
  // A fourth edge at node 0 is impossible: all k colours used.
  for (gk::Colour c = 1; c <= 3; ++c) {
    EXPECT_THROW(g.add_edge(0, 4, c), std::logic_error);
  }
}

TEST(EdgeColouredGraph, EmptyGraph) {
  EdgeColouredGraph g(0, 1);
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.max_degree(), 0);
  EXPECT_TRUE(g.is_properly_coloured());
}

TEST(EdgeColouredGraph, BulkConstructorMatchesAddEdge) {
  const std::vector<Edge> edges = {{0, 1, 2}, {1, 2, 3}, {0, 3, 1}, {2, 3, 2}};
  const EdgeColouredGraph bulk(4, 3, edges);
  EdgeColouredGraph incremental(4, 3);
  for (const Edge& e : edges) incremental.add_edge(e.u, e.v, e.colour);
  EXPECT_EQ(bulk.node_count(), incremental.node_count());
  EXPECT_EQ(bulk.edge_count(), incremental.edge_count());
  EXPECT_TRUE(bulk.is_properly_coloured());
  for (NodeIndex v = 0; v < 4; ++v) {
    EXPECT_EQ(bulk.degree(v), incremental.degree(v)) << v;
    EXPECT_EQ(bulk.incident_colours(v), incremental.incident_colours(v)) << v;
    for (gk::Colour c = 1; c <= 3; ++c) {
      EXPECT_EQ(bulk.neighbour(v, c), incremental.neighbour(v, c)) << v;
    }
  }
  // The retained edge list is the input, verbatim and in order.
  ASSERT_EQ(bulk.edges().size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(bulk.edges()[i].u, edges[i].u);
    EXPECT_EQ(bulk.edges()[i].v, edges[i].v);
    EXPECT_EQ(bulk.edges()[i].colour, edges[i].colour);
  }
}

TEST(EdgeColouredGraph, BulkConstructorRejectsEverythingAddEdgeDoes) {
  using E = std::vector<Edge>;
  EXPECT_THROW(EdgeColouredGraph(3, 2, E{{0, 0, 1}}), std::invalid_argument);  // self-loop
  EXPECT_THROW(EdgeColouredGraph(3, 2, E{{0, 1, 0}}), std::invalid_argument);  // colour 0
  EXPECT_THROW(EdgeColouredGraph(3, 2, E{{0, 1, 3}}), std::invalid_argument);  // colour > k
  EXPECT_THROW(EdgeColouredGraph(3, 2, E{{0, 5, 1}}), std::out_of_range);      // bad node
  // Colour reused at a shared endpoint.
  EXPECT_THROW(EdgeColouredGraph(3, 2, E{{0, 1, 1}, {0, 2, 1}}), std::logic_error);
  // Parallel edge, same colour and different colour (the different-colour
  // pair is invisible to the (node, colour) sort — the second pass exists
  // for exactly this case).
  EXPECT_THROW(EdgeColouredGraph(3, 2, E{{0, 1, 1}, {1, 0, 1}}), std::logic_error);
  EXPECT_THROW(EdgeColouredGraph(3, 2, E{{0, 1, 1}, {1, 0, 2}}), std::logic_error);
  EXPECT_NO_THROW(EdgeColouredGraph(3, 2, E{{0, 1, 1}, {1, 2, 2}}));
  EXPECT_NO_THROW(EdgeColouredGraph(3, 2, E{}));
}

TEST(EdgeColouredGraph, RemoveEdgeDropsBothSides) {
  EdgeColouredGraph g(4, 3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 1);

  g.remove_edge(2, 1);  // either orientation works
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_FALSE(g.neighbour(1, 2).has_value());
  EXPECT_FALSE(g.neighbour(2, 2).has_value());
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.degree(2), 1);
  EXPECT_TRUE(g.is_properly_coloured());
  // The surviving edges are intact (edges() order is NOT preserved — the
  // removal swap-pops — so check membership, not position).
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));

  // The freed colour slot is reusable: re-add {1,2} on a different colour.
  g.add_edge(1, 2, 3);
  EXPECT_EQ(*g.edge_colour(1, 2), 3);
  EXPECT_TRUE(g.is_properly_coloured());
}

TEST(EdgeColouredGraph, RemoveEdgeRejectsNonEdges) {
  EdgeColouredGraph g(3, 2);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(g.remove_edge(0, 2), std::invalid_argument);  // never existed
  EXPECT_THROW(g.remove_edge(0, 3), std::out_of_range);      // node range
  g.remove_edge(0, 1);
  EXPECT_THROW(g.remove_edge(0, 1), std::invalid_argument);  // already gone
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(EdgeColouredGraph, EdgeColourReadsEitherOrientation) {
  EdgeColouredGraph g(3, 2);
  g.add_edge(0, 1, 2);
  EXPECT_EQ(*g.edge_colour(0, 1), 2);
  EXPECT_EQ(*g.edge_colour(1, 0), 2);
  EXPECT_FALSE(g.edge_colour(0, 2).has_value());
  EXPECT_THROW(g.edge_colour(0, 9), std::out_of_range);
}

}  // namespace
}  // namespace dmm::graph
