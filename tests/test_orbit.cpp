// Orbit-equivalence suite for the colour-permutation reduction of the
// lower-bound catalogue.
//
// The quotient by global colour relabellings must never change an answer:
// the fast branch-and-bound canoniser is pinned byte for byte against a
// literal k! minimisation loop, orbit counts against Burnside hand counts
// and against an independent brute-force partition, the orbit-level pair
// index against the raw pair index on the expanded catalogue, and the
// orbit-mode CSP against the raw solve.  A metamorphic fuzz then relabels
// whole catalogues by random permutations and checks that the orbit
// pipeline erases the relabelling entirely (identical reduced catalogues,
// identical verdicts *and* search-node counts).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "algo/greedy.hpp"
#include "colsys/canon.hpp"
#include "lower/adversary.hpp"
#include "nbhd/csp.hpp"
#include "util/rng.hpp"

namespace dmm {
namespace {

using colsys::ColourPerm;
using colsys::ColourSystem;
using gk::Colour;

// The small-parameter grid (k ≤ 4, ρ ≤ 2 per the canoniser pinning task,
// plus the ρ = 3 row used by the CSP-level checks).
struct Grid {
  int k, d, rho;
};
const Grid kCanonGrid[] = {{3, 2, 1}, {3, 2, 2}, {4, 3, 1}, {4, 3, 2},
                           {4, 2, 2}, {3, 3, 2}, {4, 1, 2}, {2, 1, 2}};
const Grid kCspGrid[] = {{3, 2, 1}, {3, 2, 2}, {3, 2, 3}, {4, 3, 1},
                         {4, 3, 2}, {4, 2, 2}, {3, 3, 2}, {4, 1, 2}};

/// Literal k! reference: minimise the serialisation over every relabelled
/// copy of the tree, built through ColourSystem::permuted.
std::vector<std::uint8_t> brute_force_canonical(const ColourSystem& view, int rho,
                                                ColourPerm* witness = nullptr) {
  std::vector<std::uint8_t> best;
  for (const ColourPerm& pi : colsys::all_perms(view.k())) {
    const std::vector<std::uint8_t> bytes = view.permuted(pi).serialize(rho);
    if (best.empty() || bytes < best) {
      best = bytes;
      if (witness) *witness = pi;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Permutation helpers.
// ---------------------------------------------------------------------------

TEST(ColourPerms, ComposeInvertRank) {
  const auto perms = colsys::all_perms(3);
  ASSERT_EQ(perms.size(), 6u);
  EXPECT_EQ(perms.front(), colsys::identity_perm(3));
  for (std::uint32_t i = 0; i < perms.size(); ++i) {
    EXPECT_EQ(colsys::perm_rank(perms[i]), i);  // all_perms is rank order
    const ColourPerm inv = colsys::inverse_perm(perms[i]);
    EXPECT_EQ(colsys::compose_perm(perms[i], inv), colsys::identity_perm(3));
    EXPECT_EQ(colsys::compose_perm(inv, perms[i]), colsys::identity_perm(3));
  }
  // (a ∘ b)(c) = a(b(c)).
  const ColourPerm a = perms[1], b = perms[4];
  const ColourPerm ab = colsys::compose_perm(a, b);
  for (Colour c = 1; c <= 3; ++c) EXPECT_EQ(ab[c], a[b[c]]);
}

TEST(ColourPerms, PermutedTreeRoundTrips) {
  const ColourSystem ball = colsys::regular_system(4, 3, 3);
  for (const ColourPerm& pi : colsys::all_perms(4)) {
    const ColourSystem image = ball.permuted(pi);
    EXPECT_EQ(image.permuted(colsys::inverse_perm(pi)).serialize(3), ball.serialize(3));
  }
  EXPECT_THROW(ball.permuted({0, 1, 2}), std::invalid_argument);  // wrong size
}

// ---------------------------------------------------------------------------
// Canoniser: fast path == literal k! loop, on every view of the grid.
// ---------------------------------------------------------------------------

TEST(OrbitCanon, FastPathMatchesBruteForceOnAllGridViews) {
  for (const Grid& g : kCanonGrid) {
    const nbhd::ViewCatalogue cat = nbhd::enumerate_views(g.k, g.d, g.rho);
    for (const ColourSystem& view : cat.views) {
      const std::vector<std::uint8_t> reference = brute_force_canonical(view, g.rho);
      std::vector<std::uint8_t> fast;
      ColourPerm witness;
      colsys::orbit_canonical_bytes(view, g.rho, fast, &witness);
      ASSERT_EQ(fast, reference) << "k=" << g.k << " d=" << g.d << " rho=" << g.rho;
      // The witness realises the minimum: π·view serialises to the bytes.
      EXPECT_EQ(view.permuted(witness).serialize(g.rho), reference);
    }
  }
}

TEST(OrbitCanon, WitnessAndPermutedSerialisationAgree) {
  // SerialisedView::serialise(π) == permuted(π).serialize — the identity
  // the member-map folding and the pair lifting both rest on.
  const nbhd::ViewCatalogue cat = nbhd::enumerate_views(4, 3, 2);
  for (int i = 0; i < cat.size(); i += 7) {
    const ColourSystem& view = cat.views[static_cast<std::size_t>(i)];
    const colsys::SerialisedView parsed(view, cat.rho);
    for (const ColourPerm& pi : colsys::all_perms(4)) {
      std::vector<std::uint8_t> direct;
      parsed.serialise(pi, direct);
      EXPECT_EQ(direct, view.permuted(pi).serialize(cat.rho));
    }
  }
}

TEST(OrbitCanon, StabiliserIsTheFullSymmetryGroupOfTheTree) {
  // The depth-1 star on colours {1..d} is stabilised by exactly the
  // permutations fixing {1..d} setwise: d! · (k-d)! elements.
  const ColourSystem star = colsys::regular_system(4, 2, 1);
  const auto stab = colsys::SerialisedView(star, 1).stabiliser();
  EXPECT_EQ(stab.size(), 4u);  // 2! · 2!
  for (const ColourPerm& s : stab) {
    EXPECT_EQ(star.permuted(s).serialize(1), star.serialize(1));
  }
}

TEST(OrbitCanon, InternOrbitDeduplicatesAcrossRelabellings) {
  colsys::CanonicalStore store;
  const ColourSystem view = colsys::regular_system(3, 2, 2);
  ColourPerm witness;
  const colsys::OrbitId id = store.intern_orbit(view, 2, &witness);
  EXPECT_EQ(id, 0);
  EXPECT_EQ(view.permuted(witness).serialize(2), store.orbit_bytes(id));
  for (const ColourPerm& pi : colsys::all_perms(3)) {
    EXPECT_EQ(store.intern_orbit(view.permuted(pi), 2), id);
  }
  EXPECT_EQ(store.orbit_count(), 1);
  EXPECT_THROW(store.orbit_bytes(1), std::out_of_range);
  // Orbit ids live in their own space: the view-id store is untouched.
  EXPECT_EQ(store.size(), 0);
}

// ---------------------------------------------------------------------------
// Census: Burnside hand counts and brute-force partitions.
// ---------------------------------------------------------------------------

/// Independent oracle: partition the raw catalogue into orbits by brute
/// force (k! serialisations per view, set union).
int brute_force_orbit_count(const nbhd::ViewCatalogue& cat) {
  std::set<std::vector<std::uint8_t>> reps;
  for (const ColourSystem& view : cat.views) {
    reps.insert(brute_force_canonical(view, cat.rho));
  }
  return static_cast<int>(reps.size());
}

TEST(OrbitCensus, MatchesHandCountsOnTinyCases) {
  // k = 3, d = 2, ρ = 1: the three 2-subsets of [3] — a single orbit.
  nbhd::OrbitCensus census = nbhd::orbit_census(3, 2, 1);
  EXPECT_EQ(census.views, 3.0);
  EXPECT_EQ(census.orbits, 1.0);
  // k = 3, d = 2, ρ = 2: 12 views; by Burnside (12 + 3·2 + 2·0)/6 = 3
  // orbits (both children bounce back / one bounces / neither bounces).
  census = nbhd::orbit_census(3, 2, 2);
  EXPECT_EQ(census.views, 12.0);
  EXPECT_EQ(census.orbits, 3.0);
  // k = 4, d = 3, ρ = 1: four 3-subsets, again a single orbit.
  census = nbhd::orbit_census(4, 3, 1);
  EXPECT_EQ(census.views, 4.0);
  EXPECT_EQ(census.orbits, 1.0);
  // k = 2, d = 1, ρ = 2: the two single edges — one orbit.
  census = nbhd::orbit_census(2, 1, 2);
  EXPECT_EQ(census.views, 2.0);
  EXPECT_EQ(census.orbits, 1.0);
}

TEST(OrbitCensus, MatchesBruteForcePartitionOnTheGrid) {
  for (const Grid& g : kCanonGrid) {
    const nbhd::ViewCatalogue cat = nbhd::enumerate_views(g.k, g.d, g.rho);
    const nbhd::OrbitCensus census = nbhd::orbit_census(g.k, g.d, g.rho);
    EXPECT_EQ(census.views, static_cast<double>(cat.size()))
        << "k=" << g.k << " d=" << g.d << " rho=" << g.rho;
    EXPECT_EQ(census.orbits, static_cast<double>(brute_force_orbit_count(cat)))
        << "k=" << g.k << " d=" << g.d << " rho=" << g.rho;
  }
}

TEST(OrbitCensus, CountsTheFrontierWithoutEnumerating) {
  // k = 5, ρ = 3: ~5.5e12 raw views — materialisation throws the guard,
  // the census is arithmetic.  The exact raw count is the closed form
  // C(5,4) · C(4,3)^(4 + 4·3) = 5 · 4^16.
  EXPECT_THROW(nbhd::enumerate_views(5, 4, 3), std::runtime_error);
  EXPECT_THROW(nbhd::enumerate_orbits(5, 4, 3), std::runtime_error);
  const nbhd::OrbitCensus census = nbhd::orbit_census(5, 4, 3);
  EXPECT_EQ(census.views, 5.0 * std::pow(4.0, 16.0));
  EXPECT_GE(census.orbits, census.views / 120.0);  // |S_5| = 120
  EXPECT_LT(census.orbits, census.views / 100.0);  // ... and nearly free orbits
  // The k = 4, ρ = 3 tier-1 row: 78 732 views fold into 3 303 orbits — the
  // ≥ 20× catalogue cut the bench records as orbit_reduction.
  const nbhd::OrbitCensus tier1 = nbhd::orbit_census(4, 3, 3);
  EXPECT_EQ(tier1.views, 78732.0);
  EXPECT_GE(tier1.views / tier1.orbits, 20.0);
}

// ---------------------------------------------------------------------------
// Orbit catalogues: enumeration, reduction, expansion.
// ---------------------------------------------------------------------------

TEST(OrbitCatalogue, EnumerateEqualsReduceAndMatchesCensus) {
  for (const Grid& g : kCspGrid) {
    const nbhd::ViewCatalogue raw = nbhd::enumerate_views(g.k, g.d, g.rho);
    const nbhd::OrbitCatalogue enumerated = nbhd::enumerate_orbits(g.k, g.d, g.rho);
    const nbhd::OrbitCatalogue reduced = nbhd::reduce_catalogue(raw);
    const nbhd::OrbitCensus census = nbhd::orbit_census(g.k, g.d, g.rho);
    ASSERT_EQ(enumerated.orbit_count(), static_cast<int>(census.orbits));
    ASSERT_EQ(enumerated.view_count(), raw.size());
    ASSERT_EQ(reduced.orbit_count(), enumerated.orbit_count());
    ASSERT_EQ(reduced.offsets, enumerated.offsets);
    for (int o = 0; o < enumerated.orbit_count(); ++o) {
      const std::size_t i = static_cast<std::size_t>(o);
      EXPECT_EQ(reduced.reps[i].serialize(g.rho), enumerated.reps[i].serialize(g.rho));
      EXPECT_EQ(reduced.cosets[i], enumerated.cosets[i]);
      EXPECT_EQ(reduced.stabilisers[i], enumerated.stabilisers[i]);
      // |orbit| · |stabiliser| = k! (orbit–stabiliser theorem).
      std::size_t fact = 1;
      for (int f = 2; f <= g.k; ++f) fact *= static_cast<std::size_t>(f);
      EXPECT_EQ(enumerated.cosets[i].size() * enumerated.stabilisers[i].size(), fact);
      // The representative is canonical: its own orbit minimum.
      EXPECT_EQ(enumerated.reps[i].serialize(g.rho),
                brute_force_canonical(enumerated.reps[i], g.rho));
    }
    // Orbit order is canonical-bytes order.
    for (int o = 0; o + 1 < enumerated.orbit_count(); ++o) {
      EXPECT_LT(enumerated.reps[static_cast<std::size_t>(o)].serialize(g.rho),
                enumerated.reps[static_cast<std::size_t>(o + 1)].serialize(g.rho));
    }
  }
}

TEST(OrbitCatalogue, ExpansionIsTheRawCatalogueUpToOrder) {
  for (const Grid& g : kCspGrid) {
    const nbhd::ViewCatalogue raw = nbhd::enumerate_views(g.k, g.d, g.rho);
    const nbhd::ViewCatalogue expanded =
        nbhd::expand_catalogue(nbhd::enumerate_orbits(g.k, g.d, g.rho));
    ASSERT_EQ(expanded.size(), raw.size());
    std::set<std::vector<std::uint8_t>> raw_bytes, expanded_bytes;
    for (const ColourSystem& v : raw.views) raw_bytes.insert(v.serialize(g.rho));
    for (const ColourSystem& v : expanded.views) expanded_bytes.insert(v.serialize(g.rho));
    EXPECT_EQ(expanded_bytes, raw_bytes);  // sets equal + sizes equal ⇒ no dup
  }
}

// ---------------------------------------------------------------------------
// Pairs and CSP.
// ---------------------------------------------------------------------------

TEST(OrbitPairs, LiftedPairIndexEqualsRawIndexOnExpandedCatalogue) {
  for (const Grid& g : kCspGrid) {
    const nbhd::OrbitCatalogue orbits = nbhd::enumerate_orbits(g.k, g.d, g.rho);
    const auto lifted = nbhd::compatible_pairs(orbits);
    const auto raw = nbhd::compatible_pairs(nbhd::expand_catalogue(orbits));
    ASSERT_EQ(lifted.size(), raw.size()) << "k=" << g.k << " d=" << g.d << " rho=" << g.rho;
    for (std::size_t i = 0; i < lifted.size(); ++i) {
      EXPECT_EQ(lifted[i].a, raw[i].a);
      EXPECT_EQ(lifted[i].b, raw[i].b);
      EXPECT_EQ(lifted[i].colour, raw[i].colour);
    }
  }
}

TEST(OrbitCsp, VerdictMatchesRawSolveEverywhere) {
  for (const Grid& g : kCspGrid) {
    const nbhd::ViewCatalogue raw = nbhd::enumerate_views(g.k, g.d, g.rho);
    const nbhd::OrbitCatalogue orbits = nbhd::enumerate_orbits(g.k, g.d, g.rho);
    const nbhd::CspResult raw_result = nbhd::solve(raw);
    const nbhd::CspResult orbit_result = nbhd::solve(orbits);
    EXPECT_EQ(orbit_result.satisfiable, raw_result.satisfiable)
        << "k=" << g.k << " d=" << g.d << " rho=" << g.rho;
    if (orbit_result.satisfiable) {
      // The labelling is indexed by member order: valid on the expansion.
      EXPECT_FALSE(
          nbhd::check_labelling(nbhd::expand_catalogue(orbits), orbit_result.labelling)
              .has_value());
    }
    // Serial and threaded orbit solves agree (same contract as raw).
    const nbhd::CspResult threaded = nbhd::solve(orbits, nbhd::CspOptions{.threads = 4});
    EXPECT_EQ(threaded.satisfiable, orbit_result.satisfiable);
    EXPECT_EQ(threaded.labelling, orbit_result.labelling);
  }
}

TEST(OrbitCsp, TheoremFiveFrontierSurvivesTheQuotient) {
  // UNSAT below ρ = k, SAT at ρ = k — bit-identical to the raw engine.
  EXPECT_FALSE(nbhd::solve(nbhd::enumerate_orbits(3, 2, 2)).satisfiable);
  EXPECT_TRUE(nbhd::solve(nbhd::enumerate_orbits(3, 2, 3)).satisfiable);
  EXPECT_FALSE(nbhd::solve(nbhd::enumerate_orbits(4, 3, 2)).satisfiable);
}

// ---------------------------------------------------------------------------
// Metamorphic fuzz: a global relabelling of the input catalogue must be
// erased by the orbit reduction — identical reduced catalogues, identical
// verdicts and search-node counts — and must never flip the raw verdict.
// ---------------------------------------------------------------------------

nbhd::ViewCatalogue permute_catalogue(const nbhd::ViewCatalogue& cat, const ColourPerm& pi) {
  nbhd::ViewCatalogue out;
  out.k = cat.k;
  out.d = cat.d;
  out.rho = cat.rho;
  for (const ColourSystem& view : cat.views) out.views.push_back(view.permuted(pi));
  return out;
}

TEST(OrbitMetamorphic, RandomRelabellingsAreErasedByTheReduction) {
  Rng rng(0xdecaf);
  const Grid fuzz_grid[] = {{3, 2, 2}, {4, 3, 2}, {4, 2, 2}, {3, 2, 3}};
  for (const Grid& g : fuzz_grid) {
    const nbhd::ViewCatalogue raw = nbhd::enumerate_views(g.k, g.d, g.rho);
    const nbhd::OrbitCatalogue baseline = nbhd::reduce_catalogue(raw);
    const nbhd::CspResult baseline_result = nbhd::solve(baseline);
    const auto perms = colsys::all_perms(g.k);
    for (int round = 0; round < 25; ++round) {
      const ColourPerm& pi = perms[rng.index(perms.size())];
      const nbhd::ViewCatalogue permuted = permute_catalogue(raw, pi);
      const nbhd::OrbitCatalogue reduced = nbhd::reduce_catalogue(permuted);
      // The reduced catalogue is identical object by object...
      ASSERT_EQ(reduced.orbit_count(), baseline.orbit_count());
      ASSERT_EQ(reduced.offsets, baseline.offsets);
      for (int o = 0; o < reduced.orbit_count(); ++o) {
        const std::size_t i = static_cast<std::size_t>(o);
        ASSERT_EQ(reduced.reps[i].serialize(g.rho), baseline.reps[i].serialize(g.rho));
        ASSERT_EQ(reduced.cosets[i], baseline.cosets[i]);
      }
      // ... so the orbit solve returns the same verdict AND csp_nodes.
      const nbhd::CspResult result = nbhd::solve(reduced);
      EXPECT_EQ(result.satisfiable, baseline_result.satisfiable);
      EXPECT_EQ(result.nodes_explored, baseline_result.nodes_explored);
      EXPECT_EQ(result.labelling, baseline_result.labelling);
      // And the raw engine on the permuted catalogue agrees on the verdict
      // (its nodes_explored may differ — value order is colour order).
      EXPECT_EQ(nbhd::solve(permuted).satisfiable, baseline_result.satisfiable);
    }
  }
}

// ---------------------------------------------------------------------------
// Evaluator orbit memo.
// ---------------------------------------------------------------------------

/// A colour-equivariant probe: matches along the root colour whose branch
/// is structurally heaviest (strictly more depth-2 descendants than every
/// other branch), ⊥ otherwise.  "Heaviest branch" commutes with any
/// relabelling, so A(π·V) = π(A(V)) holds by construction.
class HeaviestBranchLocal final : public local::LocalAlgorithm {
 public:
  explicit HeaviestBranchLocal(int k) : k_(k) {}
  int running_time() const override { return 1; }
  bool colour_equivariant() const override { return true; }
  std::string name() const override { return "heaviest-branch"; }
  Colour evaluate(const ColourSystem& view) const override {
    Colour best = local::kUnmatched;
    int best_count = -1;
    bool tie = false;
    for (Colour c = 1; c <= static_cast<Colour>(k_); ++c) {
      const colsys::NodeId child = view.child(ColourSystem::root(), c);
      if (child == colsys::kNullNode) continue;
      int count = 0;
      for (Colour cc = 1; cc <= static_cast<Colour>(k_); ++cc) {
        if (view.child(child, cc) != colsys::kNullNode) ++count;
      }
      if (count > best_count) {
        best = c;
        best_count = count;
        tie = false;
      } else if (count == best_count) {
        tie = true;
      }
    }
    return tie ? local::kUnmatched : best;
  }

 private:
  int k_;
};

lower::Template permuted_template(const lower::Template& tmpl, const ColourPerm& pi) {
  std::vector<colsys::NodeId> old_to_new;
  ColourSystem tree = tmpl.tree().permuted(pi, &old_to_new);
  std::vector<Colour> tau(static_cast<std::size_t>(tree.size()), gk::kNoColour);
  for (colsys::NodeId t = 0; t < tmpl.tree().size(); ++t) {
    tau[static_cast<std::size_t>(old_to_new[static_cast<std::size_t>(t)])] =
        pi[tmpl.tau(t)];
  }
  return lower::Template(std::move(tree), std::move(tau), tmpl.h());
}

TEST(OrbitEvaluator, EquivariantAlgorithmStoresOneEntryPerOrbit) {
  const HeaviestBranchLocal probe(4);
  // A 1-template whose realisation views are asymmetric enough to exercise
  // the witness lifting.
  ColourSystem tree(4, colsys::kExactRadius);
  tree.add_child(ColourSystem::root(), 2);
  const lower::Template tmpl(std::move(tree), {1, 1}, 1);
  lower::Evaluator raw_eval(probe);
  lower::Evaluator orbit_eval(probe, true, 1, true);
  for (const ColourPerm& pi : colsys::all_perms(4)) {
    const lower::Template image = permuted_template(tmpl, pi);
    for (colsys::NodeId t = 0; t < image.tree().size(); ++t) {
      // Answers are exact (the raw evaluator is the oracle)...
      EXPECT_EQ(orbit_eval(image, t), raw_eval(image, t));
    }
  }
  // ... and the orbit memo collapsed the 24 relabelled templates into one
  // orbit per distinct view shape: one stored answer per orbit.
  EXPECT_EQ(orbit_eval.memo_entries(), orbit_eval.orbits());
  EXPECT_LT(orbit_eval.evaluations(), raw_eval.evaluations());
  EXPECT_GT(orbit_eval.memo_hits(), 0u);
}

TEST(OrbitEvaluator, NonEquivariantAlgorithmKeepsPerMemberAnswers) {
  // Greedy reads colour order, so relabelled views may answer differently;
  // the orbit memo must keep them apart (and agree with the raw memo).
  const algo::GreedyLocal greedy(3);
  ColourSystem tree(3, colsys::kExactRadius);
  tree.add_child(ColourSystem::root(), 2);
  const lower::Template tmpl(std::move(tree), {1, 1}, 1);
  lower::Evaluator raw_eval(greedy);
  lower::Evaluator orbit_eval(greedy, true, 1, true);
  for (const ColourPerm& pi : colsys::all_perms(3)) {
    const lower::Template image = permuted_template(tmpl, pi);
    for (colsys::NodeId t = 0; t < image.tree().size(); ++t) {
      EXPECT_EQ(orbit_eval(image, t), raw_eval(image, t));
    }
  }
  EXPECT_GT(orbit_eval.orbits(), 0u);
  EXPECT_GT(orbit_eval.memo_entries(), orbit_eval.orbits());
  // Same distinct-view count as the raw memo: nothing was conflated.
  EXPECT_EQ(orbit_eval.memo_entries(), raw_eval.memo_entries());
}

}  // namespace
}  // namespace dmm
