// Schedule-perturbation stress suite for the flat engine's persistent
// work-stealing pool (ISSUE 7).
//
// The pool's contract is that RunResult is a pure function of
// (graph, program): the thread count, the chunk size and the steal switch
// change only *which worker executes which chunk*, never the simulated
// behaviour.  This suite perturbs the schedule across the full grid
//
//   threads ∈ {1, 2, 7, 16} × chunk_slots ∈ {1, 64, default} × steal ∈ {on, off}
//
// and asserts every RunResult field is identical to the run_sync oracle —
// on random graphs for every engine realisation, on the maximally skewed
// instances the chunker exists for (a 255-leaf star, the model's degree
// cap, and hub-cluster / power-law-style graphs where a contiguous run of
// max-degree hub rows serialised the old static node-count partition), and
// across two round-stamp tag cycles with mixed halted/running nodes (the
// wipe_running_rows regression).  It also pins the structural gauge of the
// fix: threads are spawned once per engine, so threads_spawned is
// workers − 1 regardless of how many rounds run — the old engine spawned
// 2·rounds·(workers−1).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "algo/greedy.hpp"
#include "algo/runner.hpp"
#include "engine_test_util.hpp"
#include "graph/generators.hpp"
#include "local/flat_engine.hpp"
#include "util/rng.hpp"

namespace dmm::local {
namespace {

struct Schedule {
  int threads;
  std::size_t chunk_slots;
  bool steal;
};

std::string schedule_str(const Schedule& s) {
  return " [threads=" + std::to_string(s.threads) +
         " chunk=" + std::to_string(s.chunk_slots) + (s.steal ? " steal" : " no-steal") + "]";
}

/// The full 24-configuration grid from the issue.  chunk_slots = 0 is the
/// auto default; 1 shatters into per-node chunks (maximum stealing
/// traffic); 64 sits between.
std::vector<Schedule> full_grid() {
  std::vector<Schedule> grid;
  for (int threads : {1, 2, 7, 16}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{64}, std::size_t{0}}) {
      for (bool steal : {true, false}) grid.push_back({threads, chunk, steal});
    }
  }
  return grid;
}

void expect_grid_agrees(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                        int max_rounds, const RunResult& oracle,
                        const std::vector<Schedule>& grid, const std::string& context) {
  for (const Schedule& s : grid) {
    FlatEngineOptions options;
    options.threads = s.threads;
    options.chunk_slots = s.chunk_slots;
    options.steal = s.steal;
    expect_same_result(oracle, run_flat(g, source, max_rounds, options),
                       context + schedule_str(s));
  }
}

TEST(FlatStress, FuzzRealisationsAcrossScheduleGrid) {
  // Every engine realisation on a spread of random instances, all 24
  // schedules each.  Smaller instance count than test_flat_engine's fuzz —
  // the grid multiplies every run by 24.
  const std::vector<Schedule> grid = full_grid();
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed * 31 + 5);
    const int n = 4 + static_cast<int>(seed * 2);
    const int k = 2 + static_cast<int>(seed % 3);
    const graph::EdgeColouredGraph g = graph::random_coloured_graph(n, k, 0.7, rng);
    const std::string context =
        "random n=" + std::to_string(n) + " k=" + std::to_string(k);
    for (const algo::EngineRealisation& r : algo::engine_realisations(k)) {
      const RunResult oracle = run_sync(g, r.factory, r.round_bound);
      expect_grid_agrees(g, r.factory, r.round_bound, oracle, grid, context + " " + r.name);
    }
  }
}

TEST(FlatStress, StarGraphMaxSkewAgrees) {
  // The 255-leaf star is the most skewed instance the 8-bit colour model
  // admits: one row holds half of all slots, so with chunk_slots = 1 the
  // hub row is a single chunk one worker must take while the others steal
  // the leaves.  Greedy runs the full 254 rounds on it (k = 255).
  const graph::EdgeColouredGraph g = graph::star_graph(255);
  const RunResult oracle = run_sync(g, algo::greedy_program_factory(), 256);
  EXPECT_EQ(oracle.rounds, 254);  // greedy's k - 1 bound, maximal here
  expect_grid_agrees(g, algo::greedy_program_factory(), 256, oracle, full_grid(),
                     "star(255) greedy");
}

TEST(FlatStress, HubClusterPowerLawAgrees) {
  // Two-point degree distribution {60, 1}: 40 max-degree hubs front-loaded
  // in node order — the adversarial layout for the old static node-count
  // partition, where worker 0 got all the hubs.  Degree-aware chunking
  // splits the hub run; stealing drains it.
  const graph::EdgeColouredGraph g =
      graph::hub_cluster_graph(/*hubs=*/40, /*hub_degree=*/60, /*first_colour=*/1);
  const RunResult oracle = run_sync(g, algo::greedy_program_factory(), 64);
  expect_grid_agrees(g, algo::greedy_program_factory(), 64, oracle, full_grid(),
                     "hub_cluster(40,60) greedy");
}

/// Broadcasts one byte per round for `rounds` rounds, then halts with the
/// count of non-empty messages heard (mod 251) — any misdelivered,
/// dropped or stale-slot-aliased message changes the output.  The flat
/// overrides avoid building 10⁵-entry std::maps per round, keeping the
/// n ≈ 10⁵ hot-row case fast on both engines.
class PulseProgram final : public NodeProgram {
 public:
  explicit PulseProgram(int rounds) : remaining_(rounds) {}
  bool init(const std::vector<Colour>& incident) override {
    incident_ = incident;
    return false;
  }
  bool init_flat(const Colour* incident, int degree) override {
    incident_.assign(incident, incident + degree);
    return false;
  }
  std::map<Colour, Message> send(int) override {
    std::map<Colour, Message> out;
    const Message pulse(1, 'p');
    for (Colour c : incident_) out.emplace(c, pulse);
    return out;
  }
  void send_flat(int, FlatOutbox& out) override { out.broadcast("p"); }
  bool receive(int round, const std::map<Colour, Message>& inbox) override {
    for (const auto& [c, m] : inbox) {
      if (!m.empty()) ++heard_;
    }
    return round >= remaining_;
  }
  bool receive_flat(int round, const FlatInbox& in) override {
    for (int port = 0; port < in.ports(); ++port) {
      if (!in.at(port).empty()) ++heard_;
    }
    return round >= remaining_;
  }
  Colour output() const override { return static_cast<Colour>(heard_ % 251); }

 private:
  std::vector<Colour> incident_;
  int remaining_;
  std::size_t heard_ = 0;
};

TEST(FlatStress, HotRowsAtHundredThousandNodes) {
  // n = 390 · 256 = 99 840 with every hub at the model's 255-degree cap:
  // the hub rows hold half the plane's slots in the first 0.4% of the node
  // range.  (The issue's literal one-hub n = 10⁵ star cannot exist — a
  // proper colouring of a degree-d hub needs d distinct colours and Colour
  // is uint8_t — so maximum-degree hubs are tiled instead.)
  const graph::EdgeColouredGraph g =
      graph::hub_cluster_graph(/*hubs=*/390, /*hub_degree=*/255, /*first_colour=*/1);
  EXPECT_EQ(g.node_count(), 99840);
  const auto factory = [] { return std::make_unique<PulseProgram>(3); };
  const RunResult oracle = run_sync(g, factory, 8);
  EXPECT_EQ(oracle.rounds, 3);
  expect_grid_agrees(g, factory, 8, oracle, full_grid(), "hub_cluster(390,255) pulse");
}

TEST(FlatStress, GreedySkewedAtHundredThousandNodes) {
  // Greedy end-to-end on a 10⁵-node skewed instance (hubs at degree 128,
  // colours 128..255, so the run lasts 254 rounds).  The serial flat run
  // is the oracle here — run_sync's per-round map inboxes are O(d² log d)
  // per hub and would dominate the suite; serial-vs-sync equivalence on
  // this family is already pinned at smaller n above.
  const graph::EdgeColouredGraph g =
      graph::hub_cluster_graph(/*hubs=*/776, /*hub_degree=*/128, /*first_colour=*/128);
  EXPECT_EQ(g.node_count(), 100104);
  const RunResult oracle = run_flat(g, algo::greedy_program_factory(), 256);
  EXPECT_EQ(oracle.rounds, 254);
  const std::vector<Schedule> grid = {
      {2, 0, true}, {7, 0, true}, {7, 0, false}, {7, 4096, true}, {16, 0, true},
  };
  expect_grid_agrees(g, algo::greedy_program_factory(), 256, oracle, grid,
                     "hub_cluster(776,128,first=128) greedy");
}

/// Halts after `rounds` rounds; while running, sends its running round
/// count on its smallest incident colour only (other ports deliberately
/// silent) and folds everything it hears into a checksum.  With staggered
/// lifetimes this leaves a mix of halted and running senders across the
/// 255-round tag-cycle boundaries: a wipe that misses a live row (stale
/// stamp aliasing a new round) or touches state it should not would
/// corrupt the checksum of some node.
class StaggeredChirper final : public NodeProgram {
 public:
  explicit StaggeredChirper(int rounds) : remaining_(rounds) {}
  bool init(const std::vector<Colour>& incident) override {
    incident_ = incident;
    return incident_.empty();
  }
  std::map<Colour, Message> send(int round) override {
    return {{incident_.front(), std::to_string(round)}};
  }
  bool receive(int round, const std::map<Colour, Message>& inbox) override {
    for (const auto& [c, m] : inbox) {
      for (char ch : m) sum_ = sum_ * 31 + static_cast<unsigned char>(ch);
      sum_ += c;
    }
    return round >= remaining_;
  }
  Colour output() const override { return static_cast<Colour>(sum_ % 255); }

 private:
  std::vector<Colour> incident_;
  int remaining_;
  std::size_t sum_ = 0;
};

TEST(FlatStress, WipeCycleRegressionAcrossTwoTagCycles) {
  // Round stamps cycle 1..255, so a 600-round run crosses the wipe twice
  // (rounds 256 and 511).  A third of the nodes halt at round 5 and stay
  // halted through both wipes — their rows must keep serving the cached
  // announcement while the running rows are re-zeroed.  The legacy
  // factory's call counter resets modulo n per run, so every engine and
  // schedule sees the same per-node lifetimes.
  Rng rng(99);
  const int n = 60;
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(n, 5, 0.9, rng);
  int counter = 0;
  const auto factory = [&]() -> std::unique_ptr<NodeProgram> {
    const int i = counter++ % n;
    return std::make_unique<StaggeredChirper>(i % 3 == 0 ? 5 : 600);
  };
  const RunResult oracle = run_sync(g, factory, 601);
  EXPECT_EQ(oracle.rounds, 600);  // crossed both tag cycles
  expect_grid_agrees(g, factory, 601, oracle, full_grid(), "two-tag-cycle chirper");
}

TEST(FlatStress, ThreadsSpawnedOncePerEngineNotPerRound) {
  // The structural gauge of the tentpole: the pool is created once in the
  // engine constructor, so threads_spawned is workers − 1 — independent of
  // the round count.  The old engine spawned 2·rounds·(workers−1) threads;
  // on this 600-round run that would have been 7188 with 7 workers.
  Rng rng(7);
  const int n = 60;
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(n, 5, 0.9, rng);
  int counter = 0;
  const auto factory = [&]() -> std::unique_ptr<NodeProgram> {
    const int i = counter++ % n;
    return std::make_unique<StaggeredChirper>(i % 3 == 0 ? 5 : 600);
  };
  for (int threads : {1, 2, 7, 16}) {
    FlatEngineOptions options;
    options.threads = threads;
    const RunResult result = run_flat(g, factory, 601, options);
    EXPECT_EQ(result.rounds, 600);
    EXPECT_EQ(result.threads_spawned, static_cast<std::size_t>(threads - 1))
        << "threads=" << threads;
  }
  // Serial paths never spawn: run_sync by construction, run_flat threads=1
  // because the pool is only built for workers > 1.
  EXPECT_EQ(run_sync(g, algo::greedy_program_factory(), 6).threads_spawned, 0u);
  EXPECT_EQ(run_flat(g, algo::greedy_program_factory(), 6).threads_spawned, 0u);
  // The clamp still caps workers at the node count: 1000 requested threads
  // on 60 nodes spawn 59 pool threads, not 999.
  FlatEngineOptions oversub;
  oversub.threads = 1000;
  EXPECT_EQ(run_flat(g, algo::greedy_program_factory(), 6, oversub).threads_spawned, 59u);
}

}  // namespace
}  // namespace dmm::local
