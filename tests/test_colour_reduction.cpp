// Linial-style colour reduction (the §1.3 upper-bound machinery, E7):
// properness is preserved, the palette collapses to poly(Δ) independent of
// k, rounds stay O(log* k), and the derived maximal matching is valid.
#include "algo/colour_reduction.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/logstar.hpp"
#include "verify/matching.hpp"

namespace dmm::algo {
namespace {

using graph::EdgeColouredGraph;

bool labels_proper(const EdgeColouredGraph& g, const std::vector<std::int64_t>& labels) {
  const auto& edges = g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      const bool adjacent = edges[i].u == edges[j].u || edges[i].u == edges[j].v ||
                            edges[i].v == edges[j].u || edges[i].v == edges[j].v;
      if (adjacent && labels[i] == labels[j]) return false;
    }
  }
  return true;
}

TEST(ColourReduction, PreservesProperness) {
  Rng rng(301);
  for (int trial = 0; trial < 15; ++trial) {
    const EdgeColouredGraph g =
        graph::random_coloured_graph(static_cast<int>(rng.uniform(4, 40)),
                                     static_cast<int>(rng.uniform(2, 12)), 0.7, rng);
    const ReductionResult r = linial_colour_reduction(g);
    EXPECT_TRUE(labels_proper(g, r.labels));
    for (std::int64_t l : r.labels) {
      EXPECT_GE(l, 0);
      EXPECT_LT(l, r.palette);
    }
  }
}

TEST(ColourReduction, PaletteIndependentOfKForBoundedDegree) {
  // Δ fixed (paths have line-graph degree 2): the final palette is bounded
  // by a constant independent of k.  For D = 2 the evaluation-point prime
  // is at most 5, so the fixed point is at most 25 colours no matter how
  // large the input palette was.
  for (int k : {8, 64, 200}) {
    std::vector<gk::Colour> colours;
    for (int c = 1; c <= k; ++c) colours.push_back(static_cast<gk::Colour>(c));
    const std::int64_t palette = linial_colour_reduction(graph::path_graph(k, colours)).palette;
    EXPECT_LE(palette, 25) << "k=" << k;
  }
}

TEST(ColourReduction, RoundsGrowLikeLogStar) {
  // On paths, rounds should stay tiny even for large k.
  for (int k : {4, 16, 64, 200}) {
    std::vector<gk::Colour> colours;
    for (int c = 1; c <= k; ++c) colours.push_back(static_cast<gk::Colour>(c));
    const ReductionResult r = linial_colour_reduction(graph::path_graph(k, colours));
    EXPECT_LE(r.rounds, log_star(static_cast<std::uint64_t>(k)) + 3) << "k=" << k;
  }
}

TEST(ColourReduction, SmallPaletteShortCircuits) {
  // Already few colours: nothing to do.
  const EdgeColouredGraph g = graph::path_graph(2, {1, 2});
  const ReductionResult r = linial_colour_reduction(g);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_EQ(r.palette, 2);
}

TEST(ColourReduction, EmptyGraph) {
  const EdgeColouredGraph g(4, 7);
  const ReductionResult r = linial_colour_reduction(g);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_TRUE(r.labels.empty());
}

TEST(EdgeColouringTwoDelta, ReachesLineDegreePlusOne) {
  Rng rng(307);
  for (int trial = 0; trial < 10; ++trial) {
    const EdgeColouredGraph g = graph::random_coloured_graph(30, 10, 0.6, rng);
    if (g.edge_count() == 0) continue;
    const EdgeColouringResult r = edge_colouring_two_delta(g);
    EXPECT_TRUE(labels_proper(g, r.labels));
    // Palette ≤ 2Δ-1 (the §1.1 bound).
    EXPECT_LE(r.palette, 2 * g.max_degree() - 1);
  }
}

TEST(EdgeColouringTwoDelta, PathsGetThreeColours) {
  std::vector<gk::Colour> colours;
  for (int c = 1; c <= 20; ++c) colours.push_back(static_cast<gk::Colour>(c));
  const EdgeColouringResult r = edge_colouring_two_delta(graph::path_graph(20, colours));
  EXPECT_LE(r.palette, 3);  // Δ_L + 1 = 3 on a path
  EXPECT_TRUE(labels_proper(graph::path_graph(20, colours), r.labels));
}

TEST(ReducedMatching, ValidMaximalMatching) {
  Rng rng(311);
  for (int trial = 0; trial < 15; ++trial) {
    const EdgeColouredGraph g =
        graph::random_coloured_graph(static_cast<int>(rng.uniform(4, 50)),
                                     static_cast<int>(rng.uniform(2, 14)), 0.7, rng);
    const ReducedMatchingResult r = reduced_matching(g);
    const verify::MatchingReport report = verify::check_outputs(g, r.outputs);
    EXPECT_TRUE(report.ok()) << report.describe();
    EXPECT_EQ(r.total_rounds, r.reduction_rounds + r.greedy_rounds);
  }
}

TEST(ReducedMatching, BeatsGreedyWhenKIsLarge) {
  // The §1.3 crossover: for a path with k = 200 colours, greedy needs 199
  // rounds while reduction + greedy needs O(Δ² + log* k) ≈ a few dozen.
  std::vector<gk::Colour> colours;
  for (int c = 1; c <= 200; ++c) colours.push_back(static_cast<gk::Colour>(c));
  const EdgeColouredGraph g = graph::path_graph(200, colours);
  const ReducedMatchingResult r = reduced_matching(g);
  EXPECT_LT(r.total_rounds, 199);
  EXPECT_TRUE(verify::check_outputs(g, r.outputs).ok());
}

}  // namespace
}  // namespace dmm::algo
