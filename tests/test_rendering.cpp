// Human-facing renderings: str()/describe()/summary() functions are part
// of the public API (examples and the CLI rely on them), so their key
// content is pinned here.
#include <gtest/gtest.h>

#include "algo/greedy.hpp"
#include "algo/truncated_greedy.hpp"
#include "graph/generators.hpp"
#include "lower/adversary.hpp"

namespace dmm {
namespace {

TEST(Rendering, GraphStrListsEdges) {
  const graph::EdgeColouredGraph g = graph::path_graph(3, {1, 2, 3});
  const std::string s = g.str();
  EXPECT_NE(s.find("n=4"), std::string::npos);
  EXPECT_NE(s.find("k=3"), std::string::npos);
  EXPECT_NE(s.find("0 -1- 1"), std::string::npos);
  EXPECT_NE(s.find("2 -3- 3"), std::string::npos);
}

TEST(Rendering, ColourSystemStrShowsRootAndEdges) {
  const colsys::ColourSystem v = colsys::path_system(3, {1, 2});
  const std::string s = v.str();
  EXPECT_NE(s.find("e"), std::string::npos);
  EXPECT_NE(s.find("-1-"), std::string::npos);
  EXPECT_NE(s.find("-2-"), std::string::npos);
}

TEST(Rendering, TemplateStrShowsTauAndRadius) {
  colsys::ColourSystem edge(4);
  edge.add_child(colsys::ColourSystem::root(), 2);
  const lower::Template t(edge, {1, 3}, 1);
  const std::string s = t.str();
  EXPECT_NE(s.find("h=1"), std::string::npos);
  EXPECT_NE(s.find("exact"), std::string::npos);
  EXPECT_NE(s.find("tau=1"), std::string::npos);
  EXPECT_NE(s.find("tau=3"), std::string::npos);
}

TEST(Rendering, AlgorithmNamesAreDescriptive) {
  EXPECT_EQ(algo::GreedyLocal(4).name(), "greedy(k=4)");
  EXPECT_EQ(algo::TruncatedGreedy(4, 2).name(), "truncated-greedy(k=4,r=2)");
  EXPECT_NE(algo::ArbitraryLocal(3, 1, 7).name().find("seed=7"), std::string::npos);
}

TEST(Rendering, AdversarySummaryStatesTheTheorem) {
  const algo::GreedyLocal greedy(3);
  const lower::LowerBoundResult result = lower::run_adversary(3, greedy);
  const std::string s = result.summary();
  EXPECT_NE(s.find("tight pair"), std::string::npos);
  EXPECT_NE(s.find("U[2] = V[2]"), std::string::npos);
  EXPECT_NE(s.find("k-1"), std::string::npos);
}

TEST(Rendering, RefutationSummaryNamesTheViolation) {
  const algo::TruncatedGreedy fast(3, 0);
  const lower::LowerBoundResult result = lower::run_adversary(3, fast);
  ASSERT_TRUE(result.refuted());
  const std::string s = result.summary();
  EXPECT_NE(s.find("refuted"), std::string::npos);
  // Kind appears (one of M1/M2/M3/Lemma 9).
  const bool names_kind = s.find("M1") != std::string::npos ||
                          s.find("M2") != std::string::npos ||
                          s.find("M3") != std::string::npos ||
                          s.find("Lemma 9") != std::string::npos;
  EXPECT_TRUE(names_kind) << s;
}

TEST(Rendering, CertificateDescribeUsesWords) {
  const algo::TruncatedGreedy fast(4, 1);
  const lower::LowerBoundResult result = lower::run_adversary(4, fast);
  ASSERT_TRUE(result.refuted());
  const std::string s = std::get<lower::Certificate>(result.outcome).describe();
  EXPECT_NE(s.find("violation at node"), std::string::npos);
  EXPECT_NE(s.find("output="), std::string::npos);
}

TEST(Rendering, WordStrRoundTrips) {
  for (const char* text : {"e", "2", "1.2.1.2", "4.3.2.1"}) {
    EXPECT_EQ(gk::Word::parse(text).str(), text);
  }
}

}  // namespace
}  // namespace dmm
