// The synchronous message-passing engine: halting, rounds, announcements.
#include "local/engine.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dmm::local {
namespace {

/// Halts immediately with output = smallest incident colour (or ⊥).
class HaltAtInit final : public NodeProgram {
 public:
  bool init(const std::vector<Colour>& incident) override {
    out_ = incident.empty() ? kUnmatched : incident.front();
    return true;
  }
  std::map<Colour, Message> send(int) override { return {}; }
  bool receive(int, const std::map<Colour, Message>&) override { return true; }
  Colour output() const override { return out_; }

 private:
  Colour out_ = kUnmatched;
};

/// Counts down `rounds` rounds, then halts with ⊥.
class HaltAfter final : public NodeProgram {
 public:
  explicit HaltAfter(int rounds) : remaining_(rounds) {}
  bool init(const std::vector<Colour>&) override { return remaining_ == 0; }
  std::map<Colour, Message> send(int) override { return {}; }
  bool receive(int, const std::map<Colour, Message>&) override { return --remaining_ == 0; }
  Colour output() const override { return kUnmatched; }

 private:
  int remaining_;
};

/// Halts after the first exchange; remembers what it heard.
class Listener final : public NodeProgram {
 public:
  bool init(const std::vector<Colour>&) override { return false; }
  std::map<Colour, Message> send(int) override { return {}; }
  bool receive(int, const std::map<Colour, Message>& inbox) override {
    last_heard = inbox.empty() ? Message{} : inbox.begin()->second;
    return true;
  }
  Colour output() const override { return kUnmatched; }

  static Message last_heard;
};
Message Listener::last_heard;

TEST(Engine, ZeroRoundAlgorithmHaltsAtRoundZero) {
  const graph::EdgeColouredGraph g = graph::path_graph(3, {1, 2});
  const RunResult r = run_sync(g, [] { return std::make_unique<HaltAtInit>(); }, 10);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_EQ(r.outputs[0], 1);
  EXPECT_EQ(r.outputs[1], 1);
  EXPECT_EQ(r.outputs[2], 2);
  for (int h : r.halt_round) EXPECT_EQ(h, 0);
}

TEST(Engine, RunningTimeIsMaxHaltRound) {
  const graph::EdgeColouredGraph g = graph::path_graph(3, {1, 2});
  const RunResult r = run_sync(g, [] { return std::make_unique<HaltAfter>(3); }, 10);
  EXPECT_EQ(r.rounds, 3);
}

TEST(Engine, MixedHaltRoundsReported) {
  const graph::EdgeColouredGraph g = graph::path_graph(3, {1, 2});
  int counter = 0;
  const RunResult r = run_sync(
      g,
      [&]() -> std::unique_ptr<NodeProgram> {
        return std::make_unique<HaltAfter>(counter++);
      },
      10);
  EXPECT_EQ(r.halt_round[0], 0);
  EXPECT_EQ(r.halt_round[1], 1);
  EXPECT_EQ(r.halt_round[2], 2);
  EXPECT_EQ(r.rounds, 2);
}

TEST(Engine, ThrowsIfAlgorithmNeverHalts) {
  const graph::EdgeColouredGraph g = graph::path_graph(3, {1, 2});
  EXPECT_THROW(run_sync(g, [] { return std::make_unique<HaltAfter>(100); }, 5),
               std::runtime_error);
}

TEST(Engine, IsolatedNodesHaltImmediately) {
  const graph::EdgeColouredGraph g(4, 2);  // no edges
  const RunResult r = run_sync(g, [] { return std::make_unique<HaltAfter>(0); }, 10);
  EXPECT_EQ(r.rounds, 0);
}

/// Misbehaving program: sends messages for colours it does not have.
class RogueSender final : public NodeProgram {
 public:
  bool init(const std::vector<Colour>& incident) override {
    incident_ = incident;
    return false;
  }
  std::map<Colour, Message> send(int) override {
    std::map<Colour, Message> out;
    for (Colour c = 1; c <= 9; ++c) out[c] = "spam";  // mostly non-incident
    return out;
  }
  bool receive(int, const std::map<Colour, Message>& inbox) override {
    received_count = inbox.size();
    return true;
  }
  Colour output() const override { return kUnmatched; }
  static std::size_t received_count;

 private:
  std::vector<Colour> incident_;
};
std::size_t RogueSender::received_count = 0;

TEST(Engine, FailureInjectionRogueSendsAreIgnored) {
  // A program writing to non-incident colours cannot corrupt anyone: the
  // engine only ever routes messages along real edges.
  graph::EdgeColouredGraph g(2, 9);
  g.add_edge(0, 1, 3);
  const RunResult r = run_sync(g, [] { return std::make_unique<RogueSender>(); }, 10);
  EXPECT_EQ(r.rounds, 1);
  // Each node received exactly one message (its single incident colour).
  EXPECT_EQ(RogueSender::received_count, 1u);
}

/// Misbehaving program: throws during a round.
class Thrower final : public NodeProgram {
 public:
  bool init(const std::vector<Colour>&) override { return false; }
  std::map<Colour, Message> send(int) override {
    throw std::runtime_error("node crashed");
  }
  bool receive(int, const std::map<Colour, Message>&) override { return true; }
  Colour output() const override { return kUnmatched; }
};

TEST(Engine, FailureInjectionExceptionsPropagate) {
  // The engine is deterministic and fail-fast: a crashing node surfaces as
  // an exception rather than a silently wrong result.
  graph::EdgeColouredGraph g(2, 2);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(run_sync(g, [] { return std::make_unique<Thrower>(); }, 10),
               std::runtime_error);
}

TEST(Engine, MessageAccounting) {
  // Greedy uses constant-size messages (the remark after Theorem 2): one
  // byte of status per edge per round.
  const graph::EdgeColouredGraph g = graph::worst_case_chain(8).long_path;
  const RunResult r = run_sync(
      g, [] { return std::make_unique<HaltAfter>(2); }, 10);
  EXPECT_EQ(r.max_message_bytes, 0u);  // HaltAfter sends empty messages
  EXPECT_EQ(r.total_message_bytes, 0u);
}

TEST(Engine, HaltedAnnouncementVisibleToNeighbours) {
  graph::EdgeColouredGraph g(2, 1);
  g.add_edge(0, 1, 1);
  int counter = 0;
  Listener::last_heard.clear();
  const RunResult r = run_sync(
      g,
      [&]() -> std::unique_ptr<NodeProgram> {
        if (counter++ == 0) return std::make_unique<HaltAtInit>();
        return std::make_unique<Listener>();
      },
      10);
  EXPECT_EQ(r.rounds, 1);
  // The listener received the halted-announcement of output 1.
  EXPECT_EQ(Listener::last_heard, std::string(1, kHaltedPrefix) + "1");
}

}  // namespace
}  // namespace dmm::local
