// Extensions (§3.3-3.4): the observations (a)-(i), Lemma 6 (regularity),
// Lemma 7 (symmetry) and Lemma 8 (commutativity), all verified
// computationally on concrete templates.
#include "lower/extension.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace dmm::lower {
namespace {

Template one_template(int k, Colour edge_colour, Colour tau_root, Colour tau_child) {
  ColourSystem edge(k);
  edge.add_child(ColourSystem::root(), edge_colour);
  return Template(edge, {tau_root, tau_child}, 1);
}

TEST(Extension, Figure5PathExample) {
  // A 2-template (infinite path) extended by a 1-colour picker gives a
  // 3-regular tree (the paper's Figure 5 scenario, shrunk).
  ColourSystem path(5, 4);
  NodeId v = ColourSystem::root();
  // Path alternating colours 1, 2 to depth 4.
  for (int i = 0; i < 4; ++i) v = path.add_child(v, static_cast<Colour>(i % 2 == 0 ? 1 : 2));
  // Make it 2-regular: the root needs a second colour; re-root mid-path.
  const ColourSystem tree = path.rerooted(path.find(gk::Word::parse("1.2")));
  std::vector<Colour> tau(static_cast<std::size_t>(tree.size()), 5);
  const Template tmpl(tree, tau, 2);

  const Picker p = canonical_free_picker(tmpl, 1);
  const Extension ext_result = extend(tmpl, p, 2);
  EXPECT_EQ(ext_result.result.h(), 3);
  EXPECT_TRUE(ext_result.result.tree().is_regular(3));
  // Root expansion: C = {1,2} plus one picked colour.
  EXPECT_EQ(ext_result.result.tree().degree(ColourSystem::root()), 3);
}

TEST(Extension, Lemma6RegularityAndColours) {
  // C(X, x) = C(T, p(x)) ∪ P(p(x)) for every interior x.
  const Template tmpl = one_template(5, 2, 1, 1);
  const Picker p = canonical_free_picker(tmpl, 1);
  const Extension e = extend(tmpl, p, 4);
  const ColourSystem& x = e.result.tree();
  EXPECT_TRUE(x.is_regular(2));
  for (NodeId v : x.nodes_up_to(3)) {
    const NodeId label = e.p[static_cast<std::size_t>(v)];
    std::vector<Colour> expected = tmpl.tree().colours_at(label);
    for (Colour c : p.at(label)) expected.push_back(c);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(x.colours_at(v), expected) << x.word_of(v).str();
  }
}

TEST(Extension, XiIsTauComposedWithP) {
  const Template tmpl = one_template(5, 2, 1, 3);
  const Picker p = canonical_free_picker(tmpl, 1);
  const Extension e = extend(tmpl, p, 4);
  for (NodeId v : e.result.tree().nodes_up_to(4)) {
    EXPECT_EQ(e.result.tau(v), tmpl.tau(e.p[static_cast<std::size_t>(v)]));
  }
}

TEST(Extension, ObservationH_NormNeverShrinks) {
  // x ↝ t implies |x| ≥ |t|.
  const Template tmpl = one_template(4, 2, 1, 1);
  const Picker p = canonical_free_picker(tmpl, 1);
  const Extension e = extend(tmpl, p, 5);
  for (NodeId v : e.result.tree().nodes_up_to(5)) {
    EXPECT_GE(e.result.tree().depth(v),
              tmpl.tree().depth(e.p[static_cast<std::size_t>(v)]));
  }
}

TEST(Extension, ObservationI_EveryTemplateNodeIsCovered) {
  const Template tmpl = one_template(4, 2, 1, 1);
  const Picker p = canonical_free_picker(tmpl, 1);
  const Extension e = extend(tmpl, p, 4);
  std::vector<char> hit(static_cast<std::size_t>(tmpl.tree().size()), 0);
  for (NodeId label : e.p) hit[static_cast<std::size_t>(label)] = 1;
  for (char h : hit) EXPECT_TRUE(h);
}

TEST(Extension, Lemma7Symmetry) {
  // p(x) = p(y) implies the rooted trees around x and y coincide: check
  // that balls of equal radius around same-label nodes are equal.
  const Template tmpl = one_template(5, 2, 1, 1);
  const Picker p = canonical_free_picker(tmpl, 1);
  const int depth = 6;
  const Extension e = extend(tmpl, p, depth);
  const ColourSystem& x = e.result.tree();
  // Group nodes at depth ≤ 2 by label and compare radius-2 balls.
  for (NodeId a : x.nodes_up_to(2)) {
    for (NodeId b : x.nodes_up_to(2)) {
      if (a >= b || e.p[static_cast<std::size_t>(a)] != e.p[static_cast<std::size_t>(b)]) {
        continue;
      }
      EXPECT_TRUE(ColourSystem::equal_to_radius(x.ball(a, 2), x.ball(b, 2), 2))
          << x.word_of(a).str() << " vs " << x.word_of(b).str();
    }
  }
}

TEST(Extension, Lemma8Commutativity) {
  // ext by P then Q ∘ p equals ext by P ∪ Q, including the label maps.
  const Template tmpl = one_template(6, 2, 1, 1);
  Picker p, q;
  p.choices = {{3}, {3}};
  q.choices = {{4}, {5}};
  ASSERT_TRUE(disjoint_pickers(p, q));

  const int depth = 5;
  const Extension kp = extend(tmpl, p, depth);
  // Q ∘ p: the picker on K induced by labels.
  Picker q_on_k;
  q_on_k.choices.resize(static_cast<std::size_t>(kp.result.tree().size()));
  for (NodeId v = 0; v < kp.result.tree().size(); ++v) {
    q_on_k.choices[static_cast<std::size_t>(v)] = q.at(kp.p[static_cast<std::size_t>(v)]);
  }
  const Extension lq = extend(kp.result, q_on_k, depth);
  const Extension xr = extend(tmpl, union_picker(p, q), depth);

  // X = L as trees.
  EXPECT_TRUE(ColourSystem::equal_to_radius(lq.result.tree(), xr.result.tree(), depth));
  // λ = ξ and p ∘ q = r on the shared truncation.
  for (NodeId v : lq.result.tree().nodes_up_to(depth - 1)) {
    const NodeId in_x = xr.result.tree().find(lq.result.tree().word_of(v));
    ASSERT_NE(in_x, colsys::kNullNode);
    EXPECT_EQ(lq.result.tau(v), xr.result.tau(in_x));
    const NodeId p_of_q = kp.p[static_cast<std::size_t>(lq.p[static_cast<std::size_t>(v)])];
    EXPECT_EQ(tmpl.tree().word_of(p_of_q),
              tmpl.tree().word_of(xr.p[static_cast<std::size_t>(in_x)]));
  }
}

TEST(Extension, EmptyPickerReproducesTemplate) {
  const Template tmpl = one_template(4, 2, 1, 1);
  Picker none;
  none.choices = {{}, {}};
  const Extension e = extend(tmpl, none, 6);
  // ext by the empty picker is T itself; it drains before depth 6 and is
  // marked exact.
  EXPECT_TRUE(e.result.tree().is_exact());
  EXPECT_EQ(e.result.tree().size(), 2);
  EXPECT_EQ(e.result.h(), 1);
}

TEST(Extension, BaseCaseShapeFromZeroTemplate) {
  // §3.8: ext(Z, ĉ1, P) with P(e) = {c2} is the single edge {e, c2}.
  ColourSystem z(4);
  const Template zt(z, {1}, 0);
  Picker p;
  p.choices = {{2}};
  const Extension e = extend(zt, p, 8);
  EXPECT_TRUE(e.result.tree().is_exact());
  EXPECT_EQ(e.result.tree().size(), 2);
  EXPECT_EQ(e.result.h(), 1);
  EXPECT_EQ(e.result.tau(ColourSystem::root()), 1);
  EXPECT_EQ(e.result.tau(1), 1);
  EXPECT_EQ(e.p[1], ColourSystem::root());  // picker copies keep the label
}

TEST(Extension, DepthBudgetEnforced) {
  const Template shallow =
      make_template_unchecked(colsys::regular_system(4, 2, 3),
                              std::vector<Colour>(static_cast<std::size_t>(
                                                      colsys::regular_system(4, 2, 3).size()),
                                                  4),
                              2);
  Picker p = canonical_free_picker(shallow, 1);
  EXPECT_THROW(extend(shallow, p, 5), std::logic_error);
  EXPECT_NO_THROW(extend(shallow, p, 3));
}

}  // namespace
}  // namespace dmm::lower
