// Figure 2 of the paper, executed: the 3-colour system
// V = {e, 1, 2, 2·1, 3, 3·1, 3·2} and its translation U = 3̄V, with the
// caption's claims V[1] = U[1] and V = V[2] ≠ U[2] ≠ U.
#include <gtest/gtest.h>

#include "colsys/colour_system.hpp"

namespace dmm::colsys {
namespace {

ColourSystem figure2_v() {
  ColourSystem v(3);
  v.add_child(ColourSystem::root(), 1);
  const NodeId two = v.add_child(ColourSystem::root(), 2);
  v.add_child(two, 1);
  const NodeId three = v.add_child(ColourSystem::root(), 3);
  v.add_child(three, 1);
  v.add_child(three, 2);
  return v;
}

TEST(Figure2, VIsAColourSystem) {
  const ColourSystem v = figure2_v();
  EXPECT_EQ(v.size(), 7);
  // Prefix closure: every claimed member is reachable.
  for (const char* word : {"e", "1", "2", "2.1", "3", "3.1", "3.2"}) {
    EXPECT_NE(v.find(gk::Word::parse(word)), kNullNode) << word;
  }
}

TEST(Figure2, UIsTheTranslationByThree) {
  const ColourSystem v = figure2_v();
  const NodeId three = v.find(gk::Word::parse("3"));
  std::vector<NodeId> map;
  const ColourSystem u = v.rerooted(three, &map);
  // U = 3̄V = {3̄v : v ∈ V} = {3, e, 3.1, 3.2, 3.2.1, 1, 2}.
  for (const char* word : {"e", "3", "1", "2", "3.1", "3.2", "3.2.1"}) {
    EXPECT_NE(u.find(gk::Word::parse(word)), kNullNode) << word;
  }
  EXPECT_EQ(u.size(), v.size());
  // And the element-wise law 3̄v: node a of V appears in U under 3̄·word(a).
  for (NodeId a = 0; a < v.size(); ++a) {
    EXPECT_EQ(u.word_of(map[static_cast<std::size_t>(a)]),
              gk::Word::generator(3) * v.word_of(a));
  }
}

TEST(Figure2, CaptionClaims) {
  const ColourSystem v = figure2_v();
  const ColourSystem u = v.rerooted(v.find(gk::Word::parse("3")));
  // V[1] = U[1]: both radius-1 balls are the full 3-star.
  EXPECT_TRUE(ColourSystem::equal_to_radius(v, u, 1));
  // V = V[2]: V has depth 2, restricting changes nothing.
  EXPECT_TRUE(ColourSystem::equal_to_radius(v, v.restricted(2), 8));
  // V[2] != U[2]: the radius-2 balls differ ...
  EXPECT_FALSE(ColourSystem::equal_to_radius(v, u, 2));
  // ... and U[2] != U: U has an element at depth 3 (namely 3̄·(2·1)... the
  // translated word 3.2.1).
  EXPECT_NE(u.find(gk::Word::parse("3.2.1")), kNullNode);
  EXPECT_EQ(u.restricted(2).size(), u.size() - 1);
}

TEST(Figure2, Lemma3IsomorphismOnV) {
  // x -> ūx preserves adjacencies and edge colours (Lemma 3), verified
  // node-by-node on the concrete Figure 2 system.
  const ColourSystem v = figure2_v();
  const NodeId three = v.find(gk::Word::parse("3"));
  std::vector<NodeId> map;
  const ColourSystem u = v.rerooted(three, &map);
  const gk::Word u_bar = gk::Word::generator(3);  // 3̄ = 3
  for (NodeId a = 0; a < v.size(); ++a) {
    EXPECT_EQ(u.word_of(map[static_cast<std::size_t>(a)]), u_bar * v.word_of(a));
    for (gk::Colour c = 1; c <= 3; ++c) {
      const NodeId nb = v.neighbour(a, c);
      if (nb == kNullNode) continue;
      EXPECT_EQ(u.neighbour(map[static_cast<std::size_t>(a)], c),
                map[static_cast<std::size_t>(nb)]);
    }
  }
}

TEST(Figure2, Gamma3IsThreeRegularTree) {
  const ColourSystem g = cayley_ball(3, 4);
  EXPECT_TRUE(g.is_regular(3));
  // Γ_3[4]: 1 + 3 + 6 + 12 + 24.
  EXPECT_EQ(g.size(), 46);
}

}  // namespace
}  // namespace dmm::colsys
