// Lemma 10 (§3.6): the seed colours exist for correct algorithms and the
// case analysis is exercised on adversarial-but-M1-valid algorithms.
#include "lower/zero_template.hpp"

#include <gtest/gtest.h>

#include "algo/greedy.hpp"
#include "algo/truncated_greedy.hpp"

namespace dmm::lower {
namespace {

TEST(ZeroTemplate, ConstructionAndValidation) {
  const Template z = zero_template(5, 3);
  EXPECT_EQ(z.h(), 0);
  EXPECT_EQ(z.tau(ColourSystem::root()), 3);
  EXPECT_THROW(zero_template(5, 0), std::invalid_argument);
  EXPECT_THROW(zero_template(5, 6), std::invalid_argument);
}

void expect_lemma10_contract(const Lemma10Colours& c, Evaluator& eval, int k) {
  // Distinctness.
  EXPECT_NE(c.c1, c.c2);
  EXPECT_NE(c.c2, c.c3);
  EXPECT_NE(c.c1, c.c3);
  // A(Z, ĉ1, e) = c2 and A(Z, ĉ3, e) = c4 != c2.
  EXPECT_EQ(eval(zero_template(k, c.c1), ColourSystem::root()), c.c2);
  EXPECT_EQ(eval(zero_template(k, c.c3), ColourSystem::root()), c.c4);
  EXPECT_NE(c.c4, c.c2);
}

TEST(Lemma10, GreedySweepOverK) {
  for (int k = 3; k <= 7; ++k) {
    const algo::GreedyLocal greedy(k);
    Evaluator eval(greedy);
    const auto out = choose_lemma10_colours(k, eval);
    ASSERT_TRUE(std::holds_alternative<Lemma10Colours>(out)) << "k=" << k;
    Lemma10Colours c = std::get<Lemma10Colours>(out);
    expect_lemma10_contract(c, eval, k);
  }
}

TEST(Lemma10, GreedyConcreteValuesK4) {
  // h(c) = smallest colour != c; h(1) = 2, h(2) = 1, so h(h(1)) = 1 and the
  // second branch fires with c = 3: h(3) = 1 != h(1) = 2
  //   -> c1 = 1, c2 = 2, c3 = 3, c4 = h(3) = 1.
  const algo::GreedyLocal greedy(4);
  Evaluator eval(greedy);
  const auto out = choose_lemma10_colours(4, eval);
  ASSERT_TRUE(std::holds_alternative<Lemma10Colours>(out));
  const Lemma10Colours c = std::get<Lemma10Colours>(out);
  EXPECT_EQ(c.c1, 1);
  EXPECT_EQ(c.c2, 2);
  EXPECT_EQ(c.c3, 3);
  EXPECT_EQ(c.c4, 1);
}

TEST(Lemma10, TruncatedGreedyStillYieldsColours) {
  // Radius-limited greedy is wrong globally but answers zero-templates the
  // same way; Lemma 10 must go through (the refutation happens later).
  for (int r = 0; r <= 2; ++r) {
    const algo::TruncatedGreedy fast(4, r);
    Evaluator eval(fast);
    const auto out = choose_lemma10_colours(4, eval);
    ASSERT_TRUE(std::holds_alternative<Lemma10Colours>(out)) << "r=" << r;
    Lemma10Colours c = std::get<Lemma10Colours>(out);
    expect_lemma10_contract(c, eval, 4);
  }
}

/// Breaks Lemma 9 on zero-templates: answers ⊥ whenever the view is the
/// full (k-1)-regular tree of a zero-template realisation.
class BottomOnZero final : public local::LocalAlgorithm {
 public:
  explicit BottomOnZero(int k) : k_(k) {}
  int running_time() const override { return 0; }
  Colour evaluate(const ColourSystem& view) const override {
    if (static_cast<int>(view.colours_at(ColourSystem::root()).size()) == k_ - 1) {
      return local::kUnmatched;
    }
    return view.colours_at(ColourSystem::root()).empty()
               ? local::kUnmatched
               : view.colours_at(ColourSystem::root()).front();
  }
  std::string name() const override { return "bottom-on-zero"; }

 private:
  int k_;
};

TEST(Lemma10, Lemma9ViolationSurfacesAsCertificate) {
  const BottomOnZero bad(4);
  Evaluator eval(bad);
  const auto out = choose_lemma10_colours(4, eval);
  ASSERT_TRUE(std::holds_alternative<Certificate>(out));
  const Certificate& cert = std::get<Certificate>(out);
  EXPECT_EQ(cert.kind, Certificate::Kind::L9);
  Evaluator fresh(bad);
  EXPECT_TRUE(certificate_holds(cert, fresh));
}

TEST(Lemma10, RequiresKAtLeastThree) {
  const algo::GreedyLocal greedy(2);
  Evaluator eval(greedy);
  EXPECT_THROW(choose_lemma10_colours(2, eval), std::invalid_argument);
}

TEST(Lemma10, ArbitraryAlgorithmsEitherYieldColoursOrCertificates) {
  // Property sweep: for any M1-respecting deterministic function, Lemma 10
  // either succeeds with the contract or pinpoints a Lemma 9 breach.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const algo::ArbitraryLocal arb(5, 1, seed);
    Evaluator eval(arb);
    const auto out = choose_lemma10_colours(5, eval);
    if (std::holds_alternative<Lemma10Colours>(out)) {
      Lemma10Colours c = std::get<Lemma10Colours>(out);
      expect_lemma10_contract(c, eval, 5);
    } else {
      Evaluator fresh(arb);
      EXPECT_TRUE(certificate_holds(std::get<Certificate>(out), fresh)) << "seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace dmm::lower
