// Realisations (§3.5): lazily unfolded views, Corollary 2 symmetry,
// Corollary 3 (template and extension share realisations), Lemma 9, the
// memoised evaluator and the certificate machinery.
#include "lower/realisation.hpp"

#include <gtest/gtest.h>

#include "algo/greedy.hpp"
#include "algo/truncated_greedy.hpp"
#include "lower/extension.hpp"

namespace dmm::lower {
namespace {

Template one_template(int k, Colour edge_colour, Colour tau_root, Colour tau_child) {
  ColourSystem edge(k);
  edge.add_child(ColourSystem::root(), edge_colour);
  return Template(edge, {tau_root, tau_child}, 1);
}

TEST(RealisationBall, ZeroTemplateGivesFullRegularTree) {
  // real(Z, ĉ) is the (k-1)-regular tree over colours [k] - c.
  ColourSystem z(4);
  const Template zt(z, {2}, 0);
  const ColourSystem ball = realisation_ball(zt, ColourSystem::root(), 2);
  EXPECT_TRUE(ball.is_regular(3));
  // 1 + 3 + 3*2 = 10 nodes.
  EXPECT_EQ(ball.size(), 10);
  // No edge of the forbidden colour anywhere.
  for (NodeId v = 1; v < ball.size(); ++v) EXPECT_NE(ball.parent_colour(v), 2);
}

TEST(RealisationBall, EveryNodeSeesOpenColours) {
  const Template tmpl = one_template(5, 2, 1, 3);
  const ColourSystem ball = realisation_ball(tmpl, ColourSystem::root(), 3);
  // Interior ball nodes all have degree k-1 = 4 (d-regular realisation).
  for (NodeId v : ball.nodes_up_to(2)) {
    EXPECT_EQ(ball.degree(v), 4);
  }
}

TEST(RealisationBall, RespectsTemplateTruncation) {
  ColourSystem tree = colsys::regular_system(4, 2, 3);
  std::vector<Colour> tau(static_cast<std::size_t>(tree.size()), 4);
  const Template tmpl = make_template_unchecked(tree, tau, 2);
  EXPECT_NO_THROW(realisation_ball(tmpl, ColourSystem::root(), 3));
  EXPECT_THROW(realisation_ball(tmpl, ColourSystem::root(), 4), std::logic_error);
}

TEST(RealisationBall, Corollary2SameLabelSameView) {
  // Nodes of an extension with the same p-label produce identical
  // realisation views (Corollary 2 via Lemma 7).
  const Template tmpl = one_template(5, 2, 1, 1);
  const Picker p = canonical_free_picker(tmpl, 1);
  const Extension e = extend(tmpl, p, 6);
  const int radius = 2;
  for (NodeId a : e.result.tree().nodes_up_to(2)) {
    for (NodeId b : e.result.tree().nodes_up_to(2)) {
      if (a >= b || e.p[static_cast<std::size_t>(a)] != e.p[static_cast<std::size_t>(b)]) {
        continue;
      }
      EXPECT_TRUE(ColourSystem::equal_to_radius(realisation_ball(e.result, a, radius),
                                                realisation_ball(e.result, b, radius), radius));
    }
  }
}

TEST(RealisationBall, Corollary3ExtensionSharesRealisation) {
  // real(K, κ) = real(T, τ): the view of x in K's realisation equals the
  // view of p(x) in T's realisation.
  const Template tmpl = one_template(5, 2, 1, 3);
  const Picker p = canonical_free_picker(tmpl, 1);
  const Extension e = extend(tmpl, p, 6);
  const int radius = 3;
  for (NodeId x : e.result.tree().nodes_up_to(2)) {
    const NodeId label = e.p[static_cast<std::size_t>(x)];
    EXPECT_TRUE(ColourSystem::equal_to_radius(realisation_ball(e.result, x, radius),
                                              realisation_ball(tmpl, label, radius), radius))
        << "x=" << e.result.tree().word_of(x).str();
  }
}

TEST(Evaluator, MemoisesByView) {
  const algo::GreedyLocal greedy(4);
  Evaluator eval(greedy);
  const Template zt = make_template_unchecked(ColourSystem(4), {2}, 0);
  const Colour first = eval(zt, ColourSystem::root());
  const Colour second = eval(zt, ColourSystem::root());
  EXPECT_EQ(first, second);
  EXPECT_EQ(eval.evaluations(), 1u);
  EXPECT_EQ(eval.memo_hits(), 1u);
}

TEST(Evaluator, GreedyOnZeroTemplateMatchesLemma10Intuition) {
  // For the greedy algorithm, A(Z, 1̂, e) = 2 and A(Z, 3̂, e) = 1 (§3.6).
  const algo::GreedyLocal greedy(4);
  Evaluator eval(greedy);
  EXPECT_EQ(eval(make_template_unchecked(ColourSystem(4), {1}, 0), ColourSystem::root()), 2);
  EXPECT_EQ(eval(make_template_unchecked(ColourSystem(4), {3}, 0), ColourSystem::root()), 1);
}

TEST(Evaluator, Lemma9GreedyNeverUnmatchedOnNonFullTemplates) {
  // h < d: greedy always matches every node of the realisation (Lemma 9
  // instantiated for our concrete correct algorithm).
  const algo::GreedyLocal greedy(5);
  Evaluator eval(greedy);
  for (Colour tau = 1; tau <= 5; ++tau) {
    const Template zt = make_template_unchecked(ColourSystem(5), {tau}, 0);
    EXPECT_NE(eval(zt, ColourSystem::root()), local::kUnmatched);
  }
  const Template ot = one_template(5, 2, 1, 3);
  for (NodeId t = 0; t < ot.tree().size(); ++t) {
    EXPECT_NE(eval(ot, t), local::kUnmatched);
  }
}

TEST(EvaluateChecked, M1PassesForGreedy) {
  const algo::GreedyLocal greedy(4);
  Evaluator eval(greedy);
  const Template ot = one_template(4, 2, 1, 3);
  const CheckedOutput co = evaluate_checked(eval, ot, ColourSystem::root());
  EXPECT_FALSE(co.violation.has_value());
  EXPECT_NE(co.output, 1);  // τ(e) = 1 is not incident in the realisation
}

/// An algorithm that deliberately breaks (M1): outputs its forbidden...
/// outputs a colour that is never incident (k+... we use τ implicitly by
/// always answering colour 1 even when absent).
class AlwaysColourOne final : public local::LocalAlgorithm {
 public:
  explicit AlwaysColourOne(int k) : k_(k) {}
  int running_time() const override { return 0; }
  Colour evaluate(const ColourSystem&) const override { return 1; }
  std::string name() const override { return "always-1"; }

 private:
  int k_;
};

TEST(EvaluateChecked, M1ViolationCaught) {
  const AlwaysColourOne bad(4);
  Evaluator eval(bad);
  // τ(e) = 1: colour 1 is not incident to e's realisation copy.
  const Template zt = make_template_unchecked(ColourSystem(4), {1}, 0);
  const CheckedOutput co = evaluate_checked(eval, zt, ColourSystem::root());
  ASSERT_TRUE(co.violation.has_value());
  EXPECT_EQ(co.violation->kind, Certificate::Kind::M1);
  EXPECT_TRUE(certificate_holds(*co.violation, eval));
  EXPECT_NE(co.violation->describe().find("M1"), std::string::npos);
}

/// Unmatches everyone: breaks Lemma 9 / (M3) immediately.
class AlwaysBottom final : public local::LocalAlgorithm {
 public:
  int running_time() const override { return 0; }
  Colour evaluate(const ColourSystem&) const override { return local::kUnmatched; }
  std::string name() const override { return "always-bottom"; }
};

TEST(Certificate, L9RecheckHolds) {
  const AlwaysBottom bad;
  Evaluator eval(bad);
  const Template zt = make_template_unchecked(ColourSystem(4), {2}, 0);
  Certificate cert{Certificate::Kind::L9, zt, ColourSystem::root(), colsys::kNullNode,
                   zt.free_colours(ColourSystem::root()).front(), local::kUnmatched,
                   local::kUnmatched, "test"};
  EXPECT_TRUE(certificate_holds(cert, eval));
}

TEST(Certificate, StaleEvidenceRejected) {
  // A certificate claiming greedy answered ⊥ must fail the recheck.
  const algo::GreedyLocal greedy(4);
  Evaluator eval(greedy);
  const Template zt = make_template_unchecked(ColourSystem(4), {2}, 0);
  Certificate cert{Certificate::Kind::L9, zt, ColourSystem::root(), colsys::kNullNode, 1,
                   local::kUnmatched, local::kUnmatched, "stale"};
  EXPECT_FALSE(certificate_holds(cert, eval));
}

}  // namespace
}  // namespace dmm::lower
