// Neighbourhood graphs + CSP (Remark 2): the second proof engine.
//
// The headline assertions: for d = k-1,
//   * rho = r+1 <= k-1  (i.e. r < k-1): the labelling CSP is UNSAT —
//     *no* r-round algorithm exists (Linial-style universal statement,
//     independent of the §3 adversary);
//   * rho = k (r = k-1): greedy's induced labelling is a solution — the
//     bound is tight.
#include "nbhd/csp.hpp"

#include <gtest/gtest.h>

#include "algo/greedy.hpp"
#include "algo/truncated_greedy.hpp"

namespace dmm::nbhd {
namespace {

TEST(Views, CatalogueSizesK3) {
  // d = 2 (paths): root picks 2 of 3 colours; deeper nodes extend by one
  // fresh colour each.
  EXPECT_EQ(enumerate_views(3, 2, 1).size(), 3);
  EXPECT_EQ(enumerate_views(3, 2, 2).size(), 3 * 2 * 2);
  EXPECT_EQ(enumerate_views(3, 2, 3).size(), 3 * 4 * 4);
}

TEST(Views, CatalogueSizesK4) {
  // d = 3: root picks 3 of 4; each depth-1 node picks 2 of remaining 3.
  EXPECT_EQ(enumerate_views(4, 3, 1).size(), 4);
  EXPECT_EQ(enumerate_views(4, 3, 2).size(), 4 * 3 * 3 * 3);
}

TEST(Views, AllViewsAreRegularTrees) {
  const ViewCatalogue cat = enumerate_views(3, 2, 2);
  for (const auto& view : cat.views) {
    for (colsys::NodeId v : view.nodes_up_to(1)) {
      EXPECT_EQ(view.degree(v), 2);
    }
  }
}

TEST(Views, GuardAgainstBlowup) {
  EXPECT_THROW(enumerate_views(4, 3, 2, /*max_views=*/10), std::runtime_error);
}

TEST(Views, CompatibilityIsSymmetricAndNeedsSharedColour) {
  const ViewCatalogue cat = enumerate_views(3, 2, 2);
  for (int a = 0; a < cat.size(); ++a) {
    for (int b = 0; b < cat.size(); ++b) {
      for (Colour c = 1; c <= 3; ++c) {
        const bool ab = c_compatible(cat.views[static_cast<std::size_t>(a)],
                                     cat.views[static_cast<std::size_t>(b)], c, 2);
        const bool ba = c_compatible(cat.views[static_cast<std::size_t>(b)],
                                     cat.views[static_cast<std::size_t>(a)], c, 2);
        EXPECT_EQ(ab, ba);
        if (ab) {
          const auto ca = cat.views[static_cast<std::size_t>(a)].colours_at(0);
          EXPECT_NE(std::find(ca.begin(), ca.end(), c), ca.end());
        }
      }
    }
  }
}

TEST(Views, HashedPairsMatchBruteForce) {
  // The bucketed compatible_pairs must agree with the direct definition.
  for (int rho = 1; rho <= 2; ++rho) {
    const ViewCatalogue cat = enumerate_views(3, 2, rho);
    const auto hashed = compatible_pairs(cat);
    std::set<std::tuple<int, int, int>> hashed_set;
    for (const auto& p : hashed) hashed_set.insert({p.a, p.b, p.colour});
    std::set<std::tuple<int, int, int>> brute;
    for (int a = 0; a < cat.size(); ++a) {
      for (int b = a; b < cat.size(); ++b) {
        for (Colour c = 1; c <= 3; ++c) {
          if (c_compatible(cat.views[static_cast<std::size_t>(a)],
                           cat.views[static_cast<std::size_t>(b)], c, rho)) {
            brute.insert({a, b, c});
          }
        }
      }
    }
    EXPECT_EQ(hashed_set, brute) << "rho=" << rho;
  }
}

TEST(Views, CompatiblePairsNonEmpty) {
  const ViewCatalogue cat = enumerate_views(3, 2, 2);
  EXPECT_FALSE(compatible_pairs(cat).empty());
}

TEST(Csp, DOneIsTriviallySatisfiable) {
  // d = 1 instances are disjoint single edges: "output your only colour"
  // is a 0-round algorithm, so the rho = 1 CSP must be SAT — a positive
  // control for the encoding.
  for (int k = 2; k <= 4; ++k) {
    const CspResult r = solve(enumerate_views(k, 1, 1));
    ASSERT_TRUE(r.satisfiable) << "k=" << k;
    // Moreover every view must be matched in any solution (self-pairs ban ⊥).
    for (Colour c : r.labelling) EXPECT_NE(c, gk::kNoColour);
  }
}

TEST(Csp, DEqualsKIsSatisfiableAtRhoOne) {
  // d = k: colour class 1 is perfect (§1.3's trivial case); "output 1"
  // solves the rho = 1 CSP.
  for (int k = 2; k <= 4; ++k) {
    const CspResult r = solve(enumerate_views(k, k, 1));
    EXPECT_TRUE(r.satisfiable) << "k=" << k;
  }
}

TEST(Csp, NoZeroRoundAlgorithmK3) {
  const CspResult r = solve(enumerate_views(3, 2, 1));
  EXPECT_FALSE(r.satisfiable);
}

TEST(Csp, NoOneRoundAlgorithmK3) {
  // The universal form of Theorem 5 at k = 3: r = 1 < k-1 = 2 is
  // impossible, by exhaustive labelling search over all 12 views.
  const CspResult r = solve(enumerate_views(3, 2, 2));
  EXPECT_FALSE(r.satisfiable);
}

TEST(Csp, TwoRoundLabellingExistsK3) {
  // r = 2 = k-1: satisfiable, matching Lemma 1.
  const CspResult r = solve(enumerate_views(3, 2, 3));
  ASSERT_TRUE(r.satisfiable);
  EXPECT_FALSE(check_labelling(enumerate_views(3, 2, 3), r.labelling).has_value());
}

TEST(Csp, GreedyLabellingIsASolutionK3) {
  const ViewCatalogue cat = enumerate_views(3, 2, 3);
  const algo::GreedyLocal greedy(3);
  const std::vector<Colour> labelling = induced_labelling(cat, greedy);
  const auto violation = check_labelling(cat, labelling);
  EXPECT_FALSE(violation.has_value())
      << "views " << violation->a << "," << violation->b << " colour "
      << static_cast<int>(violation->colour);
}

TEST(Csp, TruncatedGreedyLabellingViolatesConstraints) {
  // The 1-round truncated greedy induces a labelling at rho = 2 that must
  // break some constraint (since the CSP is UNSAT).
  const ViewCatalogue cat = enumerate_views(3, 2, 2);
  const algo::TruncatedGreedy fast(3, 1);
  const std::vector<Colour> labelling = induced_labelling(cat, fast);
  EXPECT_TRUE(check_labelling(cat, labelling).has_value());
}

TEST(Csp, NoZeroRoundAlgorithmK4) {
  const CspResult r = solve(enumerate_views(4, 3, 1));
  EXPECT_FALSE(r.satisfiable);
}

TEST(Csp, NoOneRoundAlgorithmK4) {
  // 108 views, UNSAT — r = 1 < k-1 = 3.
  const CspResult r = solve(enumerate_views(4, 3, 2));
  EXPECT_FALSE(r.satisfiable);
}

// ~20 s: 78732 views, ~9.6M constraints.  Run with
// --gtest_also_run_disabled_tests to include it; bench_e17 executes the
// same computation as part of its experiment table.
TEST(Csp, DISABLED_NoTwoRoundAlgorithmK4) {
  const CspResult r = solve(enumerate_views(4, 3, 3, 100'000));
  EXPECT_FALSE(r.satisfiable);
}

TEST(Csp, AgreesWithExhaustiveEnumerationAtRhoOne) {
  // Third cross-validation at k = 3, r = 0: the CSP verdict (UNSAT) agrees
  // with the 864-fold enumeration in test_exhaustive.cpp and with the
  // adversary.  Here: every 0-round table must violate check_labelling on
  // the rho = 1 catalogue.  (The 0-round table's view is the colour set —
  // exactly a rho = 1 view.)
  const ViewCatalogue cat = enumerate_views(3, 2, 1);
  const algo::TruncatedGreedy fast(3, 0);
  EXPECT_TRUE(check_labelling(cat, induced_labelling(cat, fast)).has_value());
}

}  // namespace
}  // namespace dmm::nbhd
