// §1.2's worst case (experiment E2): greedy needs exactly k-1 rounds, the
// endpoints' fates differ while their radius-(k-2) views coincide.
#include <gtest/gtest.h>

#include "algo/greedy.hpp"
#include "graph/generators.hpp"
#include "local/ball.hpp"
#include "verify/matching.hpp"

namespace dmm {
namespace {

class WorstCaseSweep : public ::testing::TestWithParam<int> {};

TEST_P(WorstCaseSweep, GreedyTakesExactlyKMinusOneRounds) {
  const int k = GetParam();
  const graph::WorstCase wc = graph::worst_case_chain(k);
  const local::RunResult on_long = local::run_sync(wc.long_path, algo::greedy_program_factory(), k + 2);
  EXPECT_EQ(on_long.rounds, k - 1);
  EXPECT_TRUE(verify::check_outputs(wc.long_path, on_long.outputs).ok());
}

TEST_P(WorstCaseSweep, EndpointFatesDiffer) {
  const int k = GetParam();
  const graph::WorstCase wc = graph::worst_case_chain(k);
  const std::vector<gk::Colour> on_long = algo::greedy_outputs(wc.long_path);
  const std::vector<gk::Colour> on_short = algo::greedy_outputs(wc.short_path);
  // Greedy matches the odd classes on the long path and the even ones on
  // the short path, so exactly one of u, v is matched.
  const bool u_matched = on_long[static_cast<std::size_t>(wc.u)] != local::kUnmatched;
  const bool v_matched = on_short[static_cast<std::size_t>(wc.v)] != local::kUnmatched;
  EXPECT_NE(u_matched, v_matched);
}

TEST_P(WorstCaseSweep, EndpointsIndistinguishableBelowKMinusOne) {
  const int k = GetParam();
  const graph::WorstCase wc = graph::worst_case_chain(k);
  graph::EdgeColouredGraph merged(wc.long_path.node_count() + wc.short_path.node_count(), k);
  for (const auto& e : wc.long_path.edges()) merged.add_edge(e.u, e.v, e.colour);
  const graph::NodeIndex offset = wc.long_path.node_count();
  for (const auto& e : wc.short_path.edges()) merged.add_edge(e.u + offset, e.v + offset, e.colour);
  // Radius-(k-2+1) views coincide: no (k-2)-round algorithm separates them.
  EXPECT_TRUE(local::indistinguishable(merged, wc.u, wc.v + offset, k - 2));
  // One more round breaks the symmetry (the colour-1 edge enters the view).
  EXPECT_FALSE(local::indistinguishable(merged, wc.u, wc.v + offset, k - 1));
}

TEST_P(WorstCaseSweep, AnyCorrectAlgorithmMustSeparateThem) {
  // The §1.2 argument: greedy (or any correct algorithm) gives u and v
  // different outputs, hence its running time is at least k-1.  We verify
  // the premise for greedy-as-a-view-function.
  const int k = GetParam();
  const graph::WorstCase wc = graph::worst_case_chain(k);
  const algo::GreedyLocal algo(k);
  const colsys::ColourSystem view_u = local::view_ball(wc.long_path, wc.u, k);
  const colsys::ColourSystem view_v = local::view_ball(wc.short_path, wc.v, k);
  EXPECT_NE(algo.evaluate(view_u), algo.evaluate(view_v));
}

INSTANTIATE_TEST_SUITE_P(AllK, WorstCaseSweep, ::testing::Range(2, 12));

TEST(WorstCase, LongPathGreedyMatchesOddClasses) {
  const graph::WorstCase wc = graph::worst_case_chain(6);
  const std::vector<gk::Colour> outputs = algo::greedy_outputs(wc.long_path);
  // Edges 1, 3, 5 are matched; their endpoints report those colours.
  EXPECT_EQ(outputs[0], 1);
  EXPECT_EQ(outputs[1], 1);
  EXPECT_EQ(outputs[2], 3);
  EXPECT_EQ(outputs[3], 3);
  EXPECT_EQ(outputs[4], 5);
  EXPECT_EQ(outputs[5], 5);
  EXPECT_EQ(outputs[6], local::kUnmatched);
}

}  // namespace
}  // namespace dmm
