// Experiment E12: the three realisations of the model agree.
//
//   (1) message-passing engine (run_sync + GreedyProgram),
//   (2) view-based execution (run_views + GreedyLocal),
//   (3) template evaluation (Evaluator + realisation balls),
//
// pairwise, on shared instances.
#include <gtest/gtest.h>

#include "algo/greedy.hpp"
#include "graph/generators.hpp"
#include "local/view_engine.hpp"
#include "lower/realisation.hpp"
#include "verify/matching.hpp"

namespace dmm {
namespace {

TEST(ModelEquivalence, MessagePassingVsViewsOnRandomInstances) {
  Rng rng(601);
  for (int trial = 0; trial < 25; ++trial) {
    const int k = static_cast<int>(rng.uniform(2, 6));
    const graph::EdgeColouredGraph g =
        graph::random_coloured_graph(static_cast<int>(rng.uniform(2, 40)), k, 0.8, rng);
    const local::RunResult mp = local::run_sync(g, algo::greedy_program_factory(), k + 2);
    const algo::GreedyLocal view_algo(k);
    const std::vector<gk::Colour> by_views = local::run_views(g, view_algo);
    EXPECT_EQ(mp.outputs, by_views) << "k=" << k;
  }
}

TEST(ModelEquivalence, MessagePassingVsViewsOnNamedInstances) {
  const std::vector<std::pair<graph::EdgeColouredGraph, int>> instances = {
      {graph::figure1_graph(), 4},
      {graph::hypercube(4), 4},
      {graph::complete_bipartite(4), 4},
      {graph::alternating_cycle(3, 5, 1, 3), 3},
      {graph::worst_case_chain(6).long_path, 6},
  };
  for (const auto& [g, k] : instances) {
    const local::RunResult mp = local::run_sync(g, algo::greedy_program_factory(), k + 2);
    const algo::GreedyLocal view_algo(k);
    EXPECT_EQ(mp.outputs, local::run_views(g, view_algo));
  }
}

TEST(ModelEquivalence, TemplateEvaluationVsConcreteSimulation) {
  // Evaluate greedy on a zero-template via realisation balls, then build a
  // large concrete chunk of the realisation as a plain graph, run the
  // message-passing greedy on it, and compare at the centre.
  const int k = 4;
  const algo::GreedyLocal greedy(k);
  lower::Evaluator eval(greedy);
  for (gk::Colour tau = 1; tau <= k; ++tau) {
    const lower::Template zt =
        lower::make_template_unchecked(colsys::ColourSystem(k), {tau}, 0);
    const gk::Colour by_template = eval(zt, colsys::ColourSystem::root());

    // Concrete: the realisation ball of radius k+2 (strictly deeper than
    // greedy's horizon k), as a finite graph; the centre (node 0) sees the
    // same universe greedy can reach.
    const colsys::ColourSystem chunk =
        lower::realisation_ball(zt, colsys::ColourSystem::root(), k + 2);
    const graph::EdgeColouredGraph g = graph::to_graph(chunk);
    const local::RunResult mp = local::run_sync(g, algo::greedy_program_factory(), k + 2);
    EXPECT_EQ(mp.outputs[0], by_template) << "tau=" << static_cast<int>(tau);
  }
}

TEST(ModelEquivalence, TemplateEvaluationVsViewEngineOnEdgeTemplate) {
  const int k = 4;
  const algo::GreedyLocal greedy(k);
  lower::Evaluator eval(greedy);
  colsys::ColourSystem edge(k);
  edge.add_child(colsys::ColourSystem::root(), 2);
  const lower::Template tmpl(edge, {1, 3}, 1);

  for (colsys::NodeId t = 0; t < tmpl.tree().size(); ++t) {
    const gk::Colour by_template = eval(tmpl, t);
    const colsys::ColourSystem chunk = lower::realisation_ball(tmpl, t, k + 2);
    const graph::EdgeColouredGraph g = graph::to_graph(chunk);
    const local::RunResult mp = local::run_sync(g, algo::greedy_program_factory(), k + 2);
    EXPECT_EQ(mp.outputs[0], by_template) << "t=" << t;
  }
}

TEST(ModelEquivalence, HaltingRoundsMatchDecisionDepth) {
  // In the message-passing greedy, a node matched along colour c halts at
  // round c-1 — the "step i at time i-1" accounting of §1.2.
  const graph::WorstCase wc = graph::worst_case_chain(5);
  const local::RunResult mp = local::run_sync(wc.long_path, algo::greedy_program_factory(), 7);
  for (graph::NodeIndex v = 0; v < wc.long_path.node_count(); ++v) {
    const gk::Colour out = mp.outputs[static_cast<std::size_t>(v)];
    if (out != local::kUnmatched) {
      EXPECT_EQ(mp.halt_round[static_cast<std::size_t>(v)], static_cast<int>(out) - 1);
    }
  }
}

}  // namespace
}  // namespace dmm
