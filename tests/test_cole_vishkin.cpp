// Cole–Vishkin 3-colouring (E13): properness, palette {0,1,2}, log* rounds.
#include "algo/cole_vishkin.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/logstar.hpp"
#include "util/rng.hpp"

namespace dmm::algo {
namespace {

std::vector<std::uint64_t> shuffled_ids(Rng& rng, std::size_t n, std::uint64_t stride) {
  std::vector<std::uint64_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = (i + 1) * stride;
  std::shuffle(ids.begin(), ids.end(), rng.engine());
  return ids;
}

TEST(ColeVishkin, ProducesProperThreeColouring) {
  Rng rng(401);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform(3, 200));
    const CvResult r = cv_three_colour_cycle(shuffled_ids(rng, n, 7919));
    EXPECT_TRUE(is_proper_cycle_colouring(r.colours));
    for (int c : r.colours) {
      EXPECT_GE(c, 0);
      EXPECT_LE(c, 2);
    }
  }
}

TEST(ColeVishkin, OddCyclesHandled) {
  Rng rng(409);
  for (std::size_t n : {3u, 5u, 7u, 101u}) {
    const CvResult r = cv_three_colour_cycle(shuffled_ids(rng, n, 13));
    EXPECT_TRUE(is_proper_cycle_colouring(r.colours));
  }
}

TEST(ColeVishkin, RoundsLogStarInIdSpace) {
  // Identifiers up to ~2^48: the halving phase needs only a handful of
  // rounds — the log* k phenomenon of §1.3.
  Rng rng(419);
  const CvResult r = cv_three_colour_cycle(shuffled_ids(rng, 64, 1ull << 40));
  EXPECT_LE(r.cv_rounds, log_star(1ull << 48) + 4);
  EXPECT_EQ(r.finish_rounds, 3);
  EXPECT_LE(r.total_rounds(), 10);
}

TEST(ColeVishkin, RoundsGrowVerySlowlyWithIdWidth) {
  Rng rng(421);
  const CvResult small = cv_three_colour_cycle(shuffled_ids(rng, 32, 3));
  const CvResult huge = cv_three_colour_cycle(shuffled_ids(rng, 32, 1ull << 50));
  EXPECT_LE(huge.cv_rounds, small.cv_rounds + 3);
}

TEST(ColeVishkin, RejectsBadInput) {
  EXPECT_THROW(cv_three_colour_cycle({1, 2}), std::invalid_argument);
  EXPECT_THROW(cv_three_colour_cycle({1, 2, 1}), std::invalid_argument);
}

TEST(ColeVishkin, DeterministicForFixedIds) {
  const std::vector<std::uint64_t> ids{5, 1, 9, 2, 8, 3};
  const CvResult a = cv_three_colour_cycle(ids);
  const CvResult b = cv_three_colour_cycle(ids);
  EXPECT_EQ(a.colours, b.colours);
  EXPECT_EQ(a.total_rounds(), b.total_rounds());
}

}  // namespace
}  // namespace dmm::algo
