// The greedy algorithm (Lemma 1 / experiment E1): correctness on every
// generator family, round bound k-1, and agreement between all three
// realisations (reference, message-passing, view-based).
#include "algo/greedy.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "local/view_engine.hpp"
#include "verify/matching.hpp"

namespace dmm::algo {
namespace {

using graph::EdgeColouredGraph;

void expect_valid_maximal(const EdgeColouredGraph& g, const std::vector<Colour>& outputs) {
  const verify::MatchingReport report = verify::check_outputs(g, outputs);
  EXPECT_TRUE(report.ok()) << report.describe();
}

TEST(Greedy, Figure1Instance) {
  const EdgeColouredGraph g = graph::figure1_graph();
  const std::vector<Colour> outputs = greedy_outputs(g);
  expect_valid_maximal(g, outputs);
}

TEST(Greedy, ColourClassPriority) {
  // Colour 1 edges always enter; a colour-2 edge sharing a node does not.
  EdgeColouredGraph g(3, 2);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  const std::vector<Colour> outputs = greedy_outputs(g);
  EXPECT_EQ(outputs[0], 1);
  EXPECT_EQ(outputs[1], 1);
  EXPECT_EQ(outputs[2], local::kUnmatched);
}

TEST(Greedy, MessagePassingMatchesReference) {
  Rng rng(211);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(rng.uniform(2, 40));
    const int k = static_cast<int>(rng.uniform(1, 6));
    const EdgeColouredGraph g = graph::random_coloured_graph(n, k, 0.8, rng);
    const std::vector<Colour> reference = greedy_outputs(g);
    const local::RunResult mp = local::run_sync(g, greedy_program_factory(), k + 2);
    EXPECT_EQ(mp.outputs, reference) << "n=" << n << " k=" << k;
    EXPECT_LE(mp.rounds, k - 1 < 0 ? 0 : k - 1);
  }
}

TEST(Greedy, ViewBasedMatchesReferenceOnTrees) {
  // GreedyLocal consumes radius-k views; on tree instances these are exact,
  // so outputs must agree everywhere.
  Rng rng(223);
  for (int trial = 0; trial < 10; ++trial) {
    const colsys::ColourSystem s = colsys::regular_system(4, 3, 4);
    const EdgeColouredGraph g = graph::to_graph(s.restricted(4));
    const GreedyLocal algo(4);
    const std::vector<Colour> by_views = local::run_views(g, algo);
    const std::vector<Colour> reference = greedy_outputs(g);
    EXPECT_EQ(by_views, reference);
  }
}

TEST(Greedy, RoundBoundLemma1) {
  // Running time at most k-1 on every instance (Lemma 1).
  Rng rng(227);
  for (int k = 2; k <= 7; ++k) {
    for (int trial = 0; trial < 10; ++trial) {
      const EdgeColouredGraph g =
          graph::random_coloured_graph(static_cast<int>(rng.uniform(4, 50)), k, 0.9, rng);
      const local::RunResult mp = local::run_sync(g, greedy_program_factory(), k + 2);
      EXPECT_LE(mp.rounds, k - 1);
      expect_valid_maximal(g, mp.outputs);
    }
  }
}

TEST(Greedy, MaximalOnAllGeneratorFamilies) {
  Rng rng(229);
  const std::vector<EdgeColouredGraph> instances = {
      graph::figure1_graph(),
      graph::hypercube(4),
      graph::complete_bipartite(5),
      graph::alternating_cycle(3, 6, 1, 3),
      graph::worst_case_chain(5).long_path,
      graph::worst_case_chain(5).short_path,
      graph::random_coloured_graph(64, 6, 0.5, rng),
      graph::to_graph(colsys::cayley_ball(4, 3)),
      graph::grid_graph(7, 5, false),
      graph::grid_graph(6, 6, true),
  };
  for (const auto& g : instances) {
    expect_valid_maximal(g, greedy_outputs(g));
  }
}

TEST(Greedy, HypercubeMatchesPerfectlyInRoundZero) {
  // d = k: colour class 1 is perfect, so everybody matches at once (§1.3).
  for (int dim = 1; dim <= 5; ++dim) {
    const EdgeColouredGraph g = graph::hypercube(dim);
    const local::RunResult mp = local::run_sync(g, greedy_program_factory(), dim + 2);
    for (Colour c : mp.outputs) EXPECT_EQ(c, 1);
    EXPECT_EQ(mp.rounds, 0);
  }
}

TEST(Greedy, OnColourSystems) {
  // The colour-system overload agrees with the graph overload.
  const colsys::ColourSystem s = colsys::cayley_ball(4, 4);
  const EdgeColouredGraph g = graph::to_graph(s);
  const std::vector<Colour> on_system = greedy_outputs(s);
  const std::vector<Colour> on_graph = greedy_outputs(g);
  EXPECT_EQ(on_system, on_graph);
}

TEST(GreedyLocal, DeterministicFunctionOfView) {
  const GreedyLocal algo(4);
  const colsys::ColourSystem ball = colsys::cayley_ball(4, 4);
  EXPECT_EQ(algo.evaluate(ball), algo.evaluate(ball));
  EXPECT_EQ(algo.running_time(), 3);
}

TEST(Greedy, EmptyAndEdgelessGraphs) {
  const EdgeColouredGraph g(5, 3);
  const std::vector<Colour> outputs = greedy_outputs(g);
  for (Colour c : outputs) EXPECT_EQ(c, local::kUnmatched);
  expect_valid_maximal(g, outputs);
}

TEST(Greedy, UsesConstantSizeMessages) {
  // The paper (after Theorem 2): the lower bound permits unbounded
  // messages, but the matching upper bound — greedy — needs only tiny
  // ones.  Our greedy sends one status byte per edge per round.
  Rng rng(239);
  for (int k : {3, 6, 10}) {
    const graph::EdgeColouredGraph g = graph::random_coloured_graph(60, k, 0.9, rng);
    const local::RunResult mp = local::run_sync(g, greedy_program_factory(), k + 2);
    EXPECT_LE(mp.max_message_bytes, 1u) << "k=" << k;
  }
}

TEST(Greedy, MatchedEdgesFormMatching) {
  Rng rng(233);
  const EdgeColouredGraph g = graph::random_coloured_graph(50, 5, 0.8, rng);
  const std::vector<Colour> outputs = greedy_outputs(g);
  const auto edges = verify::matched_edges(g, outputs);
  EXPECT_TRUE(verify::is_matching(g, edges));
  EXPECT_TRUE(verify::is_maximal_matching(g, edges));
}

}  // namespace
}  // namespace dmm::algo
