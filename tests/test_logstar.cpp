#include "util/logstar.hpp"

#include <gtest/gtest.h>

namespace dmm {
namespace {

TEST(LogStar, SmallValues) {
  EXPECT_EQ(log_star(0), 0);
  EXPECT_EQ(log_star(1), 0);
  EXPECT_EQ(log_star(2), 1);
  EXPECT_EQ(log_star(3), 2);
  EXPECT_EQ(log_star(4), 2);
  EXPECT_EQ(log_star(5), 3);
  EXPECT_EQ(log_star(16), 3);
  EXPECT_EQ(log_star(17), 4);
  EXPECT_EQ(log_star(65536), 4);
  EXPECT_EQ(log_star(65537), 5);
}

TEST(LogStar, Monotone) {
  for (std::uint64_t x = 1; x < 100000; x += 97) {
    EXPECT_LE(log_star(x), log_star(x + 1));
  }
}

TEST(LogStar, GrowsExtremelySlowly) {
  EXPECT_LE(log_star(UINT64_MAX), 5);
}

TEST(FloorLog2, PowersAndBetween) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
}

TEST(CeilLog2, PowersAndBetween) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(LogStar, DefinitionViaCeilLog2) {
  for (std::uint64_t x = 2; x < 5000; ++x) {
    EXPECT_EQ(log_star(x), 1 + log_star(static_cast<std::uint64_t>(ceil_log2(x))));
  }
}

}  // namespace
}  // namespace dmm
