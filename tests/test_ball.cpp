// Views (§2.3): universal-cover balls and indistinguishability.
#include "local/ball.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dmm::local {
namespace {

using colsys::ColourSystem;

TEST(ViewBall, TreeInstanceBallsMatchSubtreeBalls) {
  const ColourSystem s = colsys::cayley_ball(3, 4);
  const graph::EdgeColouredGraph g = graph::to_graph(s);
  // Node ids of to_graph coincide with colour-system node ids.
  for (colsys::NodeId v : s.nodes_up_to(2)) {
    const ColourSystem from_graph = view_ball(g, static_cast<graph::NodeIndex>(v), 2);
    const ColourSystem from_tree = s.ball(v, 2);
    EXPECT_TRUE(ColourSystem::equal_to_radius(from_graph, from_tree, 2));
  }
}

TEST(ViewBall, CycleUnrollsIntoPath) {
  // The universal cover of an alternating cycle is an alternating path: the
  // radius-r view of any node is a path of length 2r.
  const graph::EdgeColouredGraph g = graph::alternating_cycle(2, 4, 1, 2);
  const ColourSystem ball = view_ball(g, 0, 3);
  EXPECT_EQ(ball.size(), 7);  // root + 3 on each side
  // Every view node has degree <= 2.
  for (colsys::NodeId v = 0; v < ball.size(); ++v) {
    EXPECT_LE(ball.degree(v), 2);
  }
}

TEST(ViewBall, CoverBallCanExceedGraphSize) {
  // On a short even cycle, deep views keep unrolling past the graph size —
  // the defining feature of anonymous views.
  const graph::EdgeColouredGraph g = graph::alternating_cycle(2, 2, 1, 2);  // 4 nodes
  const ColourSystem ball = view_ball(g, 0, 6);
  EXPECT_EQ(ball.size(), 13);  // a path of 13 >= 4 nodes
}

TEST(Indistinguishable, CycleNodesWithSameColourPattern) {
  const graph::EdgeColouredGraph g = graph::alternating_cycle(2, 4, 1, 2);
  // All even positions look alike at any radius; odd positions too.
  EXPECT_TRUE(indistinguishable(g, 0, 2, 5));
  EXPECT_TRUE(indistinguishable(g, 1, 3, 5));
}

TEST(Indistinguishable, WorstCaseChainEndpoints) {
  // §1.2: the far endpoints u, v of the two chains are indistinguishable
  // for k-2 rounds but distinguishable with one more.
  for (int k = 2; k <= 7; ++k) {
    const graph::WorstCase wc = graph::worst_case_chain(k);
    // Merge the two instances into one graph to compare views directly.
    graph::EdgeColouredGraph merged(wc.long_path.node_count() + wc.short_path.node_count(), k);
    for (const auto& e : wc.long_path.edges()) merged.add_edge(e.u, e.v, e.colour);
    const graph::NodeIndex offset = wc.long_path.node_count();
    for (const auto& e : wc.short_path.edges()) {
      merged.add_edge(e.u + offset, e.v + offset, e.colour);
    }
    const graph::NodeIndex u = wc.u;
    const graph::NodeIndex v = wc.v + offset;
    EXPECT_TRUE(indistinguishable(merged, u, v, k - 2)) << "k=" << k;
    EXPECT_FALSE(indistinguishable(merged, u, v, k - 1)) << "k=" << k;
  }
}

TEST(ViewBall, RadiusZeroIsSingleton) {
  const graph::EdgeColouredGraph g = graph::figure1_graph();
  EXPECT_EQ(view_ball(g, 0, 0).size(), 1);
}

TEST(ViewBall, RadiusOneEncodesIncidentColours) {
  const graph::EdgeColouredGraph g = graph::figure1_graph();
  for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
    const ColourSystem ball = view_ball(g, v, 1);
    EXPECT_EQ(ball.colours_at(ColourSystem::root()), g.incident_colours(v));
  }
}

}  // namespace
}  // namespace dmm::local
