// Remark 1 (experiment E11): extensions are universal covers of looped
// multigraphs, checked structurally against the direct construction.
#include "cover/universal_cover.hpp"

#include <gtest/gtest.h>

#include "lower/extension.hpp"

namespace dmm::cover {
namespace {

using colsys::ColourSystem;
using lower::Picker;
using lower::Template;

TEST(Multigraph, PortsAndLoops) {
  Multigraph g(2, 3);
  g.add_edge(0, 1, 2);
  g.add_loop(0, 3);
  EXPECT_EQ(*g.port(0, 2), 1);
  EXPECT_EQ(*g.port(0, 3), 0);
  EXPECT_TRUE(g.has_loop(0, 3));
  EXPECT_FALSE(g.has_loop(0, 2));
  EXPECT_FALSE(g.port(0, 1).has_value());
  EXPECT_EQ(g.colours_at(0), (std::vector<gk::Colour>{2, 3}));
  EXPECT_THROW(g.add_loop(0, 3), std::logic_error);
  EXPECT_THROW(g.add_edge(0, 0, 1), std::invalid_argument);
}

TEST(UniversalCover, SingleLoopUnfoldsToSingleEdge) {
  // A lone node with a c-loop: the involution pairs e with c; the cover is
  // the single edge {e, c} (exactly the base-case extension §3.8).
  Multigraph g(1, 4);
  g.add_loop(0, 2);
  const ColourSystem cover = universal_cover(g, 0, 8);
  EXPECT_TRUE(cover.is_exact());
  EXPECT_EQ(cover.size(), 2);
  EXPECT_NE(cover.find(gk::Word::generator(2)), colsys::kNullNode);
}

TEST(UniversalCover, TwoLoopsUnfoldToInfinitePath) {
  // Loops of colours 1 and 2 at one node: the cover is the infinite
  // alternating path (the 2-regular tree).
  Multigraph g(1, 3);
  g.add_loop(0, 1);
  g.add_loop(0, 2);
  const ColourSystem cover = universal_cover(g, 0, 5);
  EXPECT_TRUE(cover.is_regular(2));
  EXPECT_EQ(cover.size(), 11);  // path of length 2*5
}

TEST(UniversalCover, EdgePlusLoopsMatchesByHand) {
  // Two nodes joined by colour 2; loops 1 at node 0 and 3 at node 1.
  Multigraph g(2, 3);
  g.add_edge(0, 1, 2);
  g.add_loop(0, 1);
  g.add_loop(1, 3);
  std::vector<NodeIndex> labels;
  const ColourSystem cover = universal_cover(g, 0, 3, &labels);
  // Every cover node's colour set matches its base node's port colours.
  for (colsys::NodeId v : cover.nodes_up_to(2)) {
    EXPECT_EQ(cover.colours_at(v), g.colours_at(labels[static_cast<std::size_t>(v)]));
  }
}

TEST(UniversalCover, Remark1ExtensionEqualsCover) {
  // Build a 1-template (single edge, colour 2) with picker colours {3} at
  // both nodes; per Remark 1 its extension is the cover of the edge with a
  // 3-loop at each endpoint.
  ColourSystem edge(4);
  edge.add_child(ColourSystem::root(), 2);
  const Template tmpl(edge, {1, 1}, 1);
  Picker p;
  p.choices = {{3}, {3}};
  const int depth = 6;
  const lower::Extension ext_result = lower::extend(tmpl, p, depth);

  Multigraph g(2, 4);
  g.add_edge(0, 1, 2);
  g.add_loop(0, 3);
  g.add_loop(1, 3);
  const ColourSystem cover = universal_cover(g, 0, depth);

  EXPECT_TRUE(ColourSystem::equal_to_radius(ext_result.result.tree(), cover, depth));
}

TEST(UniversalCover, Remark1WithAsymmetricPickers) {
  // Different picker colours per node still match the cover construction.
  ColourSystem edge(5);
  edge.add_child(ColourSystem::root(), 2);
  const Template tmpl(edge, {1, 1}, 1);
  Picker p;
  p.choices = {{3, 4}, {5}};
  const int depth = 5;
  const lower::Extension ext_result = lower::extend(tmpl, p, depth);

  Multigraph g(2, 5);
  g.add_edge(0, 1, 2);
  g.add_loop(0, 3);
  g.add_loop(0, 4);
  g.add_loop(1, 5);
  const ColourSystem cover = universal_cover(g, 0, depth);

  EXPECT_TRUE(ColourSystem::equal_to_radius(ext_result.result.tree(), cover, depth));
}

TEST(UniversalCover, LabelsMatchExtensionPMap) {
  // The cover's base labels are the extension's p-map (both implement ↝).
  ColourSystem edge(4);
  edge.add_child(ColourSystem::root(), 2);
  const Template tmpl(edge, {1, 1}, 1);
  Picker p;
  p.choices = {{3}, {4}};
  const int depth = 5;
  const lower::Extension ext_result = lower::extend(tmpl, p, depth);

  Multigraph g(2, 4);
  g.add_edge(0, 1, 2);
  g.add_loop(0, 3);
  g.add_loop(1, 4);
  std::vector<NodeIndex> labels;
  const ColourSystem cover = universal_cover(g, 0, depth, &labels);

  ASSERT_TRUE(ColourSystem::equal_to_radius(ext_result.result.tree(), cover, depth));
  // Node-by-node: find each extension node in the cover by word and compare
  // labels (template NodeIds coincide with multigraph indices 0/1 here).
  for (colsys::NodeId v : ext_result.result.tree().nodes_up_to(depth - 1)) {
    const colsys::NodeId in_cover = cover.find(ext_result.result.tree().word_of(v));
    ASSERT_NE(in_cover, colsys::kNullNode);
    EXPECT_EQ(static_cast<colsys::NodeId>(labels[static_cast<std::size_t>(in_cover)]),
              ext_result.p[static_cast<std::size_t>(v)]);
  }
}

TEST(UniversalCover, PathQuotientUnrollsCycle) {
  // A 4-cycle alternating colours 1/2 as a multigraph: cover = infinite
  // alternating path.
  Multigraph g(4, 2);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 1);
  g.add_edge(3, 0, 2);
  const ColourSystem cover = universal_cover(g, 0, 6);
  EXPECT_TRUE(cover.is_regular(2));
}

}  // namespace
}  // namespace dmm::cover
