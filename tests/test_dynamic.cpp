// Dynamic maximal matching under churn (src/dyn, docs/dynamic.md): the
// incremental repair path must leave a verifiably maximal matching after
// every batch — cross-checked against a recompute-from-scratch oracle on
// both engines — and every counter must be a pure function of
// (instance, seed), independent of engine and thread count.
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/dmm.hpp"

namespace dmm {
namespace {

using gk::Colour;

using dyn::ChurnBatch;
using dyn::ChurnOp;
using dyn::ChurnPlan;
using dyn::ChurnSpec;
using dyn::DynamicMatcher;
using dyn::MatcherOptions;
using local::EngineKind;

ChurnOp insert_op(graph::NodeIndex u, graph::NodeIndex v, Colour c) {
  return ChurnOp{ChurnOp::Kind::kInsert, u, v, c};
}

ChurnOp delete_op(graph::NodeIndex u, graph::NodeIndex v, Colour c) {
  return ChurnOp{ChurnOp::Kind::kDelete, u, v, c};
}

ChurnSpec spec_of(int batches, int ops, double insert_fraction, std::uint64_t seed) {
  ChurnSpec spec;
  spec.batches = batches;
  spec.ops_per_batch = ops;
  spec.insert_fraction = insert_fraction;
  spec.seed = seed;
  return spec;
}

struct ChurnResult {
  dyn::RepairStats stats;
  std::vector<Colour> outputs;
};

/// Applies `plan` batch by batch, asserting after every batch that the
/// incremental matching and a from-scratch oracle recompute both verify
/// maximal.  (DynamicMatcher owns a Runtime and is not movable, so this
/// returns the final stats and outputs rather than the matcher.)
ChurnResult churn_and_check(const graph::EdgeColouredGraph& g, const ChurnPlan& plan,
                            EngineKind engine, int threads = 1) {
  MatcherOptions options;
  options.engine = engine;
  options.threads = threads;
  DynamicMatcher matcher(g, options);
  EXPECT_TRUE(matcher.check().ok()) << matcher.check().describe();
  for (const ChurnBatch& batch : plan.batches()) {
    matcher.apply(batch);
    const verify::MatchingReport incremental = matcher.check();
    EXPECT_TRUE(incremental.ok()) << incremental.describe();
    const std::vector<Colour> oracle = matcher.recompute();
    const verify::MatchingReport recomputed = verify::check_outputs(matcher.graph(), oracle);
    EXPECT_TRUE(recomputed.ok()) << recomputed.describe();
  }
  return ChurnResult{matcher.stats(), matcher.outputs()};
}

// ---------------------------------------------------------------------------
// The churn grid: {insert-only, delete-only, mixed} × instance families ×
// both oracle engines, maximality oracle-checked after every batch.
// ---------------------------------------------------------------------------

struct GridCase {
  const char* name;
  graph::EdgeColouredGraph (*make)();
};

graph::EdgeColouredGraph grid_random() {
  Rng rng(7);
  return graph::random_coloured_graph(400, 6, 0.7, rng);
}
graph::EdgeColouredGraph grid_star() { return graph::star_graph(12); }
graph::EdgeColouredGraph grid_hub() { return graph::hub_cluster_graph(16, 8, 1); }
graph::EdgeColouredGraph grid_chain() { return graph::worst_case_chain(7).long_path; }

const GridCase kGrid[] = {
    {"random", &grid_random},
    {"star", &grid_star},
    {"hub_cluster", &grid_hub},
    {"chain", &grid_chain},
};

TEST(Dynamic, ChurnGridStaysMaximalOnBothEngines) {
  const double mixes[] = {1.0, 0.0, 0.5};  // insert-only, delete-only, mixed
  for (const GridCase& c : kGrid) {
    const graph::EdgeColouredGraph g = c.make();
    for (const double mix : mixes) {
      const ChurnPlan plan = ChurnPlan::random(g, spec_of(6, 12, mix, 99));
      const ChurnResult sync = churn_and_check(g, plan, EngineKind::kSync);
      const ChurnResult flat = churn_and_check(g, plan, EngineKind::kFlat, 2);
      // The counters are pure functions of (instance, plan): the oracle
      // engine and its thread count must not leak into them.
      EXPECT_EQ(sync.stats, flat.stats) << c.name << " mix " << mix;
      EXPECT_EQ(sync.outputs, flat.outputs) << c.name << " mix " << mix;
    }
  }
}

TEST(Dynamic, CountersAreReproducibleFromInstanceAndSeed) {
  const graph::EdgeColouredGraph g = grid_random();
  const ChurnSpec spec = spec_of(5, 20, 0.5, 1234);
  const ChurnResult first = churn_and_check(g, ChurnPlan::random(g, spec), EngineKind::kSync);
  const ChurnResult second = churn_and_check(g, ChurnPlan::random(g, spec), EngineKind::kSync);
  EXPECT_EQ(first.stats, second.stats);
  EXPECT_EQ(first.outputs, second.outputs);
  EXPECT_GT(first.stats.repairs, 0u);

  // A different seed is a different plan (on this instance, overwhelmingly).
  const ChurnPlan other = ChurnPlan::random(g, spec_of(5, 20, 0.5, 4321));
  const ChurnResult third = churn_and_check(g, other, EngineKind::kSync);
  EXPECT_NE(first.stats.touched_nodes, third.stats.touched_nodes);
}

TEST(Dynamic, LocalityAccountingIsConsistent) {
  const graph::EdgeColouredGraph g = grid_hub();
  const ChurnPlan plan = ChurnPlan::random(g, spec_of(4, 10, 0.5, 5));
  const ChurnResult m = churn_and_check(g, plan, EngineKind::kSync);
  const auto& s = m.stats;
  EXPECT_EQ(s.batches, 4u);
  EXPECT_EQ(s.inserts + s.deletes, plan.op_count());
  EXPECT_EQ(s.inserts, plan.insert_count());
  EXPECT_EQ(s.deletes, plan.delete_count());
  // touched + avoided = batches · n, by definition of the two counters.
  EXPECT_EQ(s.touched_nodes + s.recompute_avoided,
            s.batches * static_cast<std::uint64_t>(g.node_count()));
  EXPECT_GT(s.recompute_avoided, 0u) << "repair should not touch the whole graph";
}

// ---------------------------------------------------------------------------
// Hand-built batches: matched vs unmatched deletes, insert repairs.
// ---------------------------------------------------------------------------

TEST(Dynamic, DeleteOfUnmatchedEdgeChangesNothing) {
  // Path 0-1-2 with colours 1,2: greedy matches {0,1} on colour 1, edge
  // {1,2} stays unmatched.  Deleting it must not move anything.
  const graph::EdgeColouredGraph g = graph::path_graph(2, {1, 2});
  DynamicMatcher m(g);
  const std::vector<Colour> before = m.outputs();
  ASSERT_EQ(before[0], 1);
  ASSERT_EQ(before[1], 1);
  ASSERT_EQ(before[2], local::kUnmatched);
  m.apply(ChurnBatch{{delete_op(1, 2, 2)}});
  EXPECT_EQ(m.outputs(), before);
  EXPECT_EQ(m.stats().repairs, 0u);
  EXPECT_TRUE(m.check().ok());
}

TEST(Dynamic, DeleteOfMatchedEdgeRematchesBothEndpoints) {
  // Path 0-1-2-3 with colours 1,2,1: greedy matches {0,1} and {2,3} on
  // colour 1.  Deleting {0,1} frees 0 (isolated, stays ⊥) and 1, which
  // re-matches along colour 2 — stealing nothing, since 2 is freed only if
  // its own matched edge went away.  Here 2 is matched to 3, so 1 cannot
  // re-match and the matching {2,3} remains maximal.
  const graph::EdgeColouredGraph g = graph::path_graph(3, {1, 2, 1});
  DynamicMatcher m(g);
  ASSERT_EQ(m.outputs()[0], 1);
  ASSERT_EQ(m.outputs()[1], 1);
  m.apply(ChurnBatch{{delete_op(0, 1, 1)}});
  EXPECT_EQ(m.outputs()[0], local::kUnmatched);
  EXPECT_EQ(m.outputs()[1], local::kUnmatched);  // neighbour 2 is taken
  EXPECT_EQ(m.outputs()[2], 1);
  EXPECT_EQ(m.outputs()[3], 1);
  EXPECT_TRUE(m.check().ok());

  // Now delete the remaining matched edge: 2 re-matches to 1 along colour
  // 2 (its lowest free incident colour), restoring maximality by repair.
  m.apply(ChurnBatch{{delete_op(2, 3, 1)}});
  EXPECT_EQ(m.outputs()[1], 2);
  EXPECT_EQ(m.outputs()[2], 2);
  EXPECT_EQ(m.outputs()[3], local::kUnmatched);
  EXPECT_EQ(m.stats().repairs, 1u);
  EXPECT_TRUE(m.check().ok());
}

TEST(Dynamic, InsertBetweenTwoFreeNodesMatchesOnTheSpot) {
  // Two isolated matched pairs plus two free nodes; inserting an edge
  // between the free pair must match it immediately.
  graph::EdgeColouredGraph g(6, 3);
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  DynamicMatcher m(g);
  ASSERT_EQ(m.outputs()[4], local::kUnmatched);
  ASSERT_EQ(m.outputs()[5], local::kUnmatched);
  m.apply(ChurnBatch{{insert_op(4, 5, 2)}});
  EXPECT_EQ(m.outputs()[4], 2);
  EXPECT_EQ(m.outputs()[5], 2);
  EXPECT_EQ(m.stats().repairs, 1u);
  EXPECT_TRUE(m.check().ok());

  // Inserting between a matched and a free node leaves both as they are —
  // the matching stays maximal because one endpoint is covered.
  m.apply(ChurnBatch{{insert_op(0, 4, 3)}});
  EXPECT_EQ(m.outputs()[0], 1);
  EXPECT_EQ(m.outputs()[4], 2);
  EXPECT_TRUE(m.check().ok());
}

TEST(Dynamic, CheckNodeAgreesWithFullSweep) {
  const graph::EdgeColouredGraph g = grid_star();
  DynamicMatcher m(g);
  for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
    EXPECT_TRUE(verify::check_node(g, m.outputs(), v).ok()) << v;
  }
  // Corrupt the hub's output: the per-node check must see it from the hub
  // (M2: partner disagrees) without a full sweep.
  std::vector<Colour> bad = m.outputs();
  bad[0] = local::kUnmatched;
  bool flagged = false;
  for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
    if (!verify::check_node(g, bad, v).ok()) flagged = true;
  }
  EXPECT_TRUE(flagged);
  EXPECT_FALSE(verify::check_outputs(g, bad).ok());
}

// ---------------------------------------------------------------------------
// Plan validation and generation.
// ---------------------------------------------------------------------------

TEST(Dynamic, PlanGenerationIsDeterministic) {
  const graph::EdgeColouredGraph g = grid_random();
  const ChurnSpec spec = spec_of(4, 16, 0.6, 77);
  const ChurnPlan a = ChurnPlan::random(g, spec);
  const ChurnPlan b = ChurnPlan::random(g, spec);
  ASSERT_EQ(a.batches().size(), b.batches().size());
  for (std::size_t i = 0; i < a.batches().size(); ++i) {
    const auto& ops_a = a.batches()[i].ops;
    const auto& ops_b = b.batches()[i].ops;
    ASSERT_EQ(ops_a.size(), ops_b.size());
    for (std::size_t j = 0; j < ops_a.size(); ++j) {
      EXPECT_EQ(ops_a[j].kind, ops_b[j].kind);
      EXPECT_EQ(ops_a[j].u, ops_b[j].u);
      EXPECT_EQ(ops_a[j].v, ops_b[j].v);
      EXPECT_EQ(ops_a[j].colour, ops_b[j].colour);
    }
  }
  EXPECT_EQ(a.op_count(), a.insert_count() + a.delete_count());
  a.require_applies(g);  // valid by construction
}

TEST(Dynamic, PlanGenerationRespectsKindExtremes) {
  const graph::EdgeColouredGraph g = grid_random();
  const ChurnPlan inserts = ChurnPlan::random(g, spec_of(3, 10, 1.0, 1));
  EXPECT_EQ(inserts.delete_count(), 0u);
  EXPECT_GT(inserts.insert_count(), 0u);
  const ChurnPlan deletes = ChurnPlan::random(g, spec_of(3, 10, 0.0, 1));
  EXPECT_EQ(deletes.insert_count(), 0u);
  EXPECT_GT(deletes.delete_count(), 0u);
}

TEST(Dynamic, RandomRejectsBadSpecs) {
  const graph::EdgeColouredGraph g = grid_star();
  EXPECT_THROW(ChurnPlan::random(g, spec_of(-1, 4, 0.5, 0)), std::invalid_argument);
  EXPECT_THROW(ChurnPlan::random(g, spec_of(4, -1, 0.5, 0)), std::invalid_argument);
  EXPECT_THROW(ChurnPlan::random(g, spec_of(4, 4, -0.1, 0)), std::invalid_argument);
  EXPECT_THROW(ChurnPlan::random(g, spec_of(4, 4, 1.5, 0)), std::invalid_argument);
}

TEST(Dynamic, RequireAppliesRejectsInvalidOps) {
  // Path 0-1-2 with colours 1,2.
  const graph::EdgeColouredGraph g = graph::path_graph(2, {1, 2});
  const auto reject = [&](ChurnOp op) {
    const ChurnPlan plan(std::vector<ChurnBatch>{ChurnBatch{{op}}});
    EXPECT_THROW(plan.require_applies(g), std::invalid_argument);
    DynamicMatcher m(g);
    const std::vector<Colour> before = m.outputs();
    EXPECT_THROW(m.apply(plan), std::invalid_argument);
    // The ChurnPlan overload validates up front: nothing mutated.
    EXPECT_EQ(m.graph().edge_count(), g.edge_count());
    EXPECT_EQ(m.outputs(), before);
  };
  reject(insert_op(0, 0, 2));    // self-loop
  reject(insert_op(0, 1, 2));    // parallel edge
  reject(insert_op(0, 2, 1));    // colour 1 already used at 0
  reject(insert_op(0, 2, 9));    // colour out of range (k = 2)
  reject(delete_op(0, 2, 1));    // no such edge
  reject(delete_op(0, 1, 2));    // live edge, wrong colour
  reject(insert_op(0, 5, 2));    // node out of range
}

TEST(Dynamic, RequireAppliesTracksGraphEvolution) {
  // An op legal only because an earlier op in the plan made it so: delete
  // {0,1} colour 1, then re-insert it as colour 2 at node 0 — properness
  // at 1 blocks colour 2, so use the freed colour 1 at both.
  const graph::EdgeColouredGraph g = graph::path_graph(2, {1, 2});
  const ChurnPlan plan(std::vector<ChurnBatch>{
      ChurnBatch{{delete_op(0, 1, 1), insert_op(0, 1, 1)}}});
  plan.require_applies(g);  // must not throw
  DynamicMatcher m(g);
  m.apply(plan);
  EXPECT_TRUE(m.check().ok());
  EXPECT_EQ(m.graph().edge_count(), g.edge_count());
}

}  // namespace
}  // namespace dmm
