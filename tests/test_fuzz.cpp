// Randomised property sweeps across the lower-bound machinery: surgery
// composition laws on colour systems, the individual ↝-relation
// observations of §3.3 on random templates/pickers, the Remark 1
// equivalence on random quotients, and adversary robustness against
// batches of arbitrary algorithms.
#include <gtest/gtest.h>

#include "algo/truncated_greedy.hpp"
#include "cover/universal_cover.hpp"
#include "lower/adversary.hpp"
#include "lower/extension.hpp"
#include "util/rng.hpp"

namespace dmm::lower {
namespace {

using colsys::ColourSystem;
using colsys::NodeId;

/// Random exact tree with at most `target` nodes.
ColourSystem random_tree(Rng& rng, int k, int target) {
  ColourSystem out(k, colsys::kExactRadius);
  std::vector<NodeId> pool{ColourSystem::root()};
  int attempts = 0;
  while (out.size() < target && ++attempts < target * 8) {
    const NodeId v = pool[rng.index(pool.size())];
    const gk::Colour c = static_cast<gk::Colour>(rng.uniform(1, k));
    if (out.parent_colour(v) != c && out.child(v, c) == colsys::kNullNode) {
      pool.push_back(out.add_child(v, c));
    }
  }
  return out;
}

/// τ assignment picking, per node, a uniformly random non-incident colour.
std::vector<gk::Colour> random_tau(Rng& rng, const ColourSystem& tree) {
  std::vector<gk::Colour> tau;
  for (NodeId v = 0; v < tree.size(); ++v) {
    std::vector<gk::Colour> open;
    for (gk::Colour c = 1; c <= tree.k(); ++c) {
      if (tree.neighbour(v, c) == colsys::kNullNode) open.push_back(c);
    }
    tau.push_back(open[rng.index(open.size())]);
  }
  return tau;
}

TEST(Fuzz, RerootComposition) {
  // (ūV re-rooted at w̄·e) ... re-rooting twice along a path equals
  // re-rooting once at the composite node.
  Rng rng(1201);
  for (int trial = 0; trial < 30; ++trial) {
    const ColourSystem v = random_tree(rng, 4, 40);
    const NodeId a = static_cast<NodeId>(rng.index(static_cast<std::size_t>(v.size())));
    std::vector<NodeId> map_a;
    const ColourSystem va = v.rerooted(a, &map_a);
    const NodeId b = static_cast<NodeId>(rng.index(static_cast<std::size_t>(v.size())));
    const ColourSystem vab = va.rerooted(map_a[static_cast<std::size_t>(b)]);
    const ColourSystem direct = v.rerooted(b);
    EXPECT_TRUE(ColourSystem::equal_to_radius(vab, direct, 64));
  }
}

TEST(Fuzz, SerializeEqualityIsStructuralEquality) {
  Rng rng(1203);
  for (int trial = 0; trial < 30; ++trial) {
    const ColourSystem a = random_tree(rng, 3, 25);
    const ColourSystem b = random_tree(rng, 3, 25);
    const bool serial_equal = a.serialize(32) == b.serialize(32);
    // Structural check by mutual embedding of all words.
    bool structural = a.size() == b.size();
    for (NodeId v = 0; structural && v < a.size(); ++v) {
      structural = b.find(a.word_of(v)) != colsys::kNullNode;
    }
    EXPECT_EQ(serial_equal, structural);
  }
}

TEST(Fuzz, PruneRemovesExactlyHeadClass) {
  Rng rng(1207);
  for (int trial = 0; trial < 20; ++trial) {
    ColourSystem v = random_tree(rng, 4, 40);
    const std::vector<gk::Colour> root_colours = v.colours_at(ColourSystem::root());
    if (root_colours.empty()) continue;
    const gk::Colour c = root_colours[rng.index(root_colours.size())];
    std::vector<NodeId> map;
    const ColourSystem p = v.pruned(c, &map);
    int kept = 0;
    for (NodeId n = 0; n < v.size(); ++n) {
      const gk::Word w = v.word_of(n);
      const bool should_keep = w.is_identity() || w.head() != c;
      EXPECT_EQ(map[static_cast<std::size_t>(n)] != colsys::kNullNode, should_keep);
      if (should_keep) ++kept;
    }
    EXPECT_EQ(p.size(), kept);
  }
}

TEST(Fuzz, ExtensionObservationsOnRandomTemplates) {
  // §3.3 observations (b)-(f) on random 1-regular... on random templates
  // built from single edges with random τ, random 1-pickers.
  Rng rng(1213);
  for (int trial = 0; trial < 25; ++trial) {
    const int k = static_cast<int>(rng.uniform(4, 6));
    ColourSystem edge(k);
    const gk::Colour ec = static_cast<gk::Colour>(rng.uniform(1, k));
    edge.add_child(ColourSystem::root(), ec);
    const Template tmpl(edge, random_tau(rng, edge), 1);

    Picker picker;
    picker.choices.resize(2);
    for (NodeId t = 0; t < 2; ++t) {
      const std::vector<gk::Colour> free = tmpl.free_colours(t);
      picker.choices[static_cast<std::size_t>(t)] = {free[rng.index(free.size())]};
    }
    const int depth = 5;
    const Extension e = extend(tmpl, picker, depth);
    const ColourSystem& x = e.result.tree();
    for (NodeId v : x.nodes_up_to(depth - 1)) {
      const NodeId label = e.p[static_cast<std::size_t>(v)];
      if (v == ColourSystem::root()) continue;
      const gk::Colour tail = x.parent_colour(v);
      // (b) tail(x) ∈ C(T, p(x)) ∪ P(p(x)).
      const auto c_label = tmpl.tree().colours_at(label);
      const bool in_c = std::find(c_label.begin(), c_label.end(), tail) != c_label.end();
      const bool in_p = picker.at(label).front() == tail;
      EXPECT_TRUE(in_c || in_p);
      // (c)/(d): the parent's label follows the relation.
      const NodeId parent_label = e.p[static_cast<std::size_t>(x.parent(v))];
      if (in_c) {
        EXPECT_EQ(parent_label, tmpl.tree().neighbour(label, tail));
      } else {
        EXPECT_EQ(parent_label, label);
      }
    }
  }
}

TEST(Fuzz, Remark1OnRandomQuotients) {
  // Random single-edge-or-path quotient trees with random loops: the
  // extension equals the universal cover, including label maps.
  Rng rng(1217);
  for (int trial = 0; trial < 20; ++trial) {
    const int k = 5;
    // Quotient tree: a path of 2 or 3 nodes with random distinct colours.
    const int quotient_nodes = static_cast<int>(rng.uniform(2, 3));
    ColourSystem tree(k);
    std::vector<gk::Colour> path_colours;
    gk::Colour prev = 0;
    for (int i = 1; i < quotient_nodes; ++i) {
      gk::Colour c;
      do {
        c = static_cast<gk::Colour>(rng.uniform(1, k));
      } while (c == prev);
      path_colours.push_back(c);
      prev = c;
    }
    NodeId tip = ColourSystem::root();
    for (gk::Colour c : path_colours) tip = tree.add_child(tip, c);
    const std::vector<gk::Colour> tau = random_tau(rng, tree);

    // One random loop (free colour) per node.
    cover::Multigraph quotient(quotient_nodes, k);
    {
      NodeId node = ColourSystem::root();
      for (std::size_t i = 0; i < path_colours.size(); ++i) {
        const NodeId next = tree.child(node, path_colours[i]);
        quotient.add_edge(static_cast<cover::NodeIndex>(node),
                          static_cast<cover::NodeIndex>(next), path_colours[i]);
        node = next;
      }
    }
    Picker picker;
    picker.choices.resize(static_cast<std::size_t>(tree.size()));
    const Template tmpl = make_template_unchecked(tree, tau, 0);  // h unused here
    bool ok = true;
    for (NodeId v = 0; v < tree.size(); ++v) {
      const std::vector<gk::Colour> free = tmpl.free_colours(v);
      if (free.empty()) {
        ok = false;
        break;
      }
      const gk::Colour loop = free[rng.index(free.size())];
      picker.choices[static_cast<std::size_t>(v)] = {loop};
      quotient.add_loop(static_cast<cover::NodeIndex>(v), loop);
    }
    if (!ok) continue;

    const int depth = 5;
    const Extension e = extend(tmpl, picker, depth);
    std::vector<cover::NodeIndex> labels;
    const ColourSystem cov = cover::universal_cover(quotient, 0, depth, &labels);
    ASSERT_TRUE(ColourSystem::equal_to_radius(e.result.tree(), cov, depth)) << trial;
    for (NodeId v : e.result.tree().nodes_up_to(depth - 1)) {
      const NodeId in_cover = cov.find(e.result.tree().word_of(v));
      ASSERT_NE(in_cover, colsys::kNullNode);
      EXPECT_EQ(static_cast<NodeId>(labels[static_cast<std::size_t>(in_cover)]),
                e.p[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Fuzz, AdversaryBatchK4Arbitrary) {
  // A batch of arbitrary 1-round algorithms at k = 4: each is either
  // refuted with a valid certificate or (in principle) survives — in
  // practice random functions never survive; count and assert.
  int refuted = 0;
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const algo::ArbitraryLocal arb(4, 1, seed);
    const LowerBoundResult result = run_adversary(4, arb);
    if (result.refuted()) {
      Evaluator fresh(arb);
      EXPECT_TRUE(certificate_holds(std::get<Certificate>(result.outcome), fresh))
          << "seed " << seed;
      ++refuted;
    }
  }
  EXPECT_GE(refuted, 10);
}

TEST(Fuzz, RealisationBallDeterministic) {
  Rng rng(1223);
  for (int trial = 0; trial < 10; ++trial) {
    ColourSystem edge(5);
    edge.add_child(ColourSystem::root(), static_cast<gk::Colour>(rng.uniform(1, 5)));
    const Template tmpl(edge, random_tau(rng, edge), 1);
    const auto a = realisation_ball(tmpl, 0, 4).serialize(4);
    const auto b = realisation_ball(tmpl, 0, 4).serialize(4);
    EXPECT_EQ(a, b);
  }
}

}  // namespace
}  // namespace dmm::lower
