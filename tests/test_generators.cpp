// Instance generators: every generator must produce properly coloured
// graphs with the structural properties the experiments rely on.
#include "graph/generators.hpp"

#include <gtest/gtest.h>

namespace dmm::graph {
namespace {

TEST(Generators, PathGraph) {
  const EdgeColouredGraph g = path_graph(4, {1, 2, 3, 4});
  EXPECT_EQ(g.node_count(), 5);
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_TRUE(g.is_properly_coloured());
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
}

TEST(Generators, WorstCaseChainShape) {
  for (int k = 2; k <= 8; ++k) {
    const WorstCase wc = worst_case_chain(k);
    EXPECT_EQ(wc.long_path.node_count(), k + 1);
    EXPECT_EQ(wc.short_path.node_count(), k);
    EXPECT_TRUE(wc.long_path.is_properly_coloured());
    EXPECT_TRUE(wc.short_path.is_properly_coloured());
    // u and v are the far (colour-k) endpoints.
    EXPECT_EQ(wc.long_path.incident_colours(wc.u), (std::vector<gk::Colour>{static_cast<gk::Colour>(k)}));
    EXPECT_EQ(wc.short_path.incident_colours(wc.v), (std::vector<gk::Colour>{static_cast<gk::Colour>(k)}));
  }
  EXPECT_THROW(worst_case_chain(1), std::invalid_argument);
}

TEST(Generators, Figure1GraphIsProperK4) {
  const EdgeColouredGraph g = figure1_graph();
  EXPECT_EQ(g.k(), 4);
  EXPECT_TRUE(g.is_properly_coloured());
  EXPECT_GE(g.edge_count(), 20);
  // All four colour classes are inhabited.
  std::vector<int> class_size(5, 0);
  for (const Edge& e : g.edges()) ++class_size[e.colour];
  for (int c = 1; c <= 4; ++c) EXPECT_GT(class_size[static_cast<std::size_t>(c)], 0);
}

TEST(Generators, RandomColouredGraphAlwaysProper) {
  Rng rng(101);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = static_cast<int>(rng.uniform(2, 60));
    const int k = static_cast<int>(rng.uniform(1, 8));
    const EdgeColouredGraph g = random_coloured_graph(n, k, 0.7, rng);
    EXPECT_TRUE(g.is_properly_coloured());
    EXPECT_LE(g.max_degree(), k);
  }
}

TEST(Generators, RandomColouredGraphDensityZeroIsEmpty) {
  Rng rng(5);
  const EdgeColouredGraph g = random_coloured_graph(20, 3, 0.0, rng);
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(Generators, HypercubeRegularAndPerfectClassOne) {
  for (int dim = 1; dim <= 6; ++dim) {
    const EdgeColouredGraph g = hypercube(dim);
    EXPECT_EQ(g.node_count(), 1 << dim);
    EXPECT_TRUE(g.is_properly_coloured());
    EXPECT_EQ(g.max_degree(), dim);
    for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(g.degree(v), dim);  // d-regular with d = k
    }
    // Colour class 1 is a perfect matching (the trivial d = k case, §1.3).
    int class_one = 0;
    for (const Edge& e : g.edges()) {
      if (e.colour == 1) ++class_one;
    }
    EXPECT_EQ(class_one, g.node_count() / 2);
  }
}

TEST(Generators, CompleteBipartitePerfectClasses) {
  for (int d = 1; d <= 6; ++d) {
    const EdgeColouredGraph g = complete_bipartite(d);
    EXPECT_TRUE(g.is_properly_coloured());
    EXPECT_EQ(g.edge_count(), d * d);
    std::vector<int> class_size(static_cast<std::size_t>(d) + 1, 0);
    for (const Edge& e : g.edges()) ++class_size[e.colour];
    for (int c = 1; c <= d; ++c) EXPECT_EQ(class_size[static_cast<std::size_t>(c)], d);
  }
}

TEST(Generators, AlternatingCycle) {
  const EdgeColouredGraph g = alternating_cycle(4, 5, 1, 2);
  EXPECT_EQ(g.node_count(), 10);
  EXPECT_EQ(g.edge_count(), 10);
  EXPECT_TRUE(g.is_properly_coloured());
  for (graph::NodeIndex v = 0; v < g.node_count(); ++v) EXPECT_EQ(g.degree(v), 2);
}

TEST(Generators, GridGraphProperAndShaped) {
  const EdgeColouredGraph g = graph::grid_graph(5, 4, false);
  EXPECT_EQ(g.node_count(), 20);
  EXPECT_TRUE(g.is_properly_coloured());
  EXPECT_LE(g.max_degree(), 4);
  // Interior node degree 4, corner degree 2.
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(6), 4);
}

TEST(Generators, TorusIsFourRegularWithPerfectClassOne) {
  const EdgeColouredGraph g = graph::grid_graph(6, 4, true);
  EXPECT_TRUE(g.is_properly_coloured());
  for (NodeIndex v = 0; v < g.node_count(); ++v) EXPECT_EQ(g.degree(v), 4);
  int class_one = 0;
  for (const Edge& e : g.edges()) {
    if (e.colour == 1) ++class_one;
  }
  EXPECT_EQ(class_one, g.node_count() / 2);  // d = k trivial case again
}

TEST(Generators, TorusRejectsOddDimensions) {
  EXPECT_THROW(graph::grid_graph(5, 4, true), std::invalid_argument);
  EXPECT_THROW(graph::grid_graph(4, 3, true), std::invalid_argument);
  EXPECT_NO_THROW(graph::grid_graph(4, 4, true));
}

TEST(Generators, OversizedInstancesThrowInsteadOfWrapping) {
  // 64-bit audit (ISSUE 4): these products overflow 32-bit arithmetic, and
  // each generator must reject them up front — a silent wrap would hand
  // the engines a tiny graph with a plausible-looking shape.
  EXPECT_THROW(grid_graph(65536, 65536, false), std::invalid_argument);   // 2³² nodes
  EXPECT_THROW(grid_graph(3, 1'000'000'000'000, false), std::invalid_argument);
  // Dimensions whose int64 *product* would itself overflow: the guard must
  // bound the factors first (UBSan-clean), not multiply and hope.
  EXPECT_THROW(grid_graph(4'000'000'000, 4'000'000'000, false), std::invalid_argument);
  EXPECT_THROW(complete_bipartite(70000), std::invalid_argument);         // d² ≈ 4.9e9 edges
  EXPECT_THROW(complete_bipartite(2'000'000'000), std::invalid_argument); // 2d nodes
  EXPECT_THROW(alternating_cycle(4, 2'000'000'000, 1, 2), std::invalid_argument);
  Rng rng(3);
  EXPECT_THROW(random_coloured_graph(3'000'000'000, 3, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(random_coloured_graph(-1, 3, 0.1, rng), std::invalid_argument);
  // Near the boundary but representable: must not throw at validation
  // time (constructing 10⁷ nodes is the scale suite's job, not this one's,
  // so keep the accepted case small).
  EXPECT_NO_THROW(grid_graph(200, 150, false));
}

TEST(Generators, StarGraphShape) {
  const EdgeColouredGraph g = star_graph(255);  // the model's maximum skew
  EXPECT_EQ(g.node_count(), 256);
  EXPECT_EQ(g.edge_count(), 255);
  EXPECT_EQ(g.k(), 255);
  EXPECT_TRUE(g.is_properly_coloured());
  EXPECT_EQ(g.degree(0), 255);
  for (NodeIndex v = 1; v < g.node_count(); ++v) EXPECT_EQ(g.degree(v), 1);
  // Hub colours are exactly 1..255.
  std::vector<gk::Colour> expected;
  for (int c = 1; c <= 255; ++c) expected.push_back(static_cast<gk::Colour>(c));
  EXPECT_EQ(g.incident_colours(0), expected);
  // Colour is uint8_t: 256 distinct hub colours cannot exist.
  EXPECT_THROW(star_graph(256), std::invalid_argument);
  EXPECT_THROW(star_graph(0), std::invalid_argument);
}

TEST(Generators, HubClusterGraphShape) {
  const EdgeColouredGraph g = hub_cluster_graph(/*hubs=*/7, /*hub_degree=*/5,
                                                /*first_colour=*/3);
  EXPECT_EQ(g.node_count(), 7 * 6);
  EXPECT_EQ(g.edge_count(), 7 * 5);
  EXPECT_EQ(g.k(), 7);  // first_colour + hub_degree - 1
  EXPECT_TRUE(g.is_properly_coloured());
  // Two-point degree distribution, hubs first in node order.
  for (NodeIndex v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 5);
  for (NodeIndex v = 7; v < g.node_count(); ++v) EXPECT_EQ(g.degree(v), 1);
  // Every hub sees exactly colours first..first+d-1.
  EXPECT_EQ(g.incident_colours(0), (std::vector<gk::Colour>{3, 4, 5, 6, 7}));
  // Port-major leaf interleave: hub h's colour-(first+j) neighbour is node
  // hubs + j·hubs + h.
  EXPECT_EQ(*g.neighbour(2, 3), 7 + 0 * 7 + 2);
  EXPECT_EQ(*g.neighbour(2, 7), 7 + 4 * 7 + 2);
  EXPECT_THROW(hub_cluster_graph(0, 5, 1), std::invalid_argument);
  EXPECT_THROW(hub_cluster_graph(3, 200, 100), std::invalid_argument);  // colours past 255
  EXPECT_THROW(hub_cluster_graph(2'000'000'000, 2, 1), std::invalid_argument);  // n wraps
}

TEST(Generators, ToGraphPreservesStructure) {
  const colsys::ColourSystem s = colsys::cayley_ball(3, 3);
  const EdgeColouredGraph g = to_graph(s);
  EXPECT_EQ(g.node_count(), s.size());
  EXPECT_EQ(g.edge_count(), s.size() - 1);  // trees
  EXPECT_TRUE(g.is_properly_coloured());
  // Node 0 (the root) keeps its colour set.
  EXPECT_EQ(g.incident_colours(0), s.colours_at(colsys::ColourSystem::root()));
}

}  // namespace
}  // namespace dmm::graph
