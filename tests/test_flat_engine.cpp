// Engine equivalence: run_flat is only allowed to exist because it agrees
// with the reference oracle run_sync on every RunResult field, for every
// program — the native greedy (with its flat fast path), the flooding
// realisation of every LocalAlgorithm in src/algo/, and a zoo of
// misbehaving programs probing the engine edge cases.
#include "local/flat_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "algo/greedy.hpp"
#include "algo/runner.hpp"
#include "engine_test_util.hpp"
#include "graph/generators.hpp"
#include "local/flooding.hpp"
#include "local/view_engine.hpp"
#include "util/rng.hpp"

namespace dmm::local {
namespace {

void expect_engines_agree(const graph::EdgeColouredGraph& g,
                          const ProgramSource& source, int max_rounds,
                          const std::string& context) {
  const RunResult oracle = run_sync(g, source, max_rounds);
  expect_same_result(oracle, run_flat(g, source, max_rounds), context + " [serial]");
  FlatEngineOptions threaded;
  threaded.threads = 3;
  expect_same_result(oracle, run_flat(g, source, max_rounds, threaded),
                     context + " [threads=3]");
}

TEST(FlatEngine, FuzzRandomGraphsEveryAlgorithm) {
  // ~200 random instances; the native greedy runs on all of them, the
  // flooding realisations (exponential views) on the small-k subset.
  int instances = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    const int n = 2 + static_cast<int>(seed % 59);
    const int k = 1 + static_cast<int>(seed % 8);
    const double density = 0.2 + 0.1 * static_cast<double>(seed % 9);
    const graph::EdgeColouredGraph g = graph::random_coloured_graph(n, k, density, rng);
    ++instances;
    const std::string context = "random n=" + std::to_string(n) + " k=" + std::to_string(k) +
                                " seed=" + std::to_string(seed);
    if (k <= 4 && n <= 32) {
      for (const algo::EngineRealisation& r : algo::engine_realisations(k)) {
        expect_engines_agree(g, r.factory, r.round_bound, context + " " + r.name);
      }
    } else {
      expect_engines_agree(g, algo::greedy_program_factory(), k + 1, context + " greedy");
    }
  }
  EXPECT_EQ(instances, 200);
}

TEST(FlatEngine, WorstCaseChainsEveryAlgorithm) {
  // The adversarial instances of test_worst_case.cpp.  Chains have degree
  // <= 2, so views stay linear and every flooding realisation is cheap.
  for (int k = 2; k <= 8; ++k) {
    const graph::WorstCase wc = graph::worst_case_chain(k);
    for (const graph::EdgeColouredGraph* g : {&wc.long_path, &wc.short_path}) {
      for (const algo::EngineRealisation& r :
           algo::engine_realisations(k, /*flood_radius_cap=*/k)) {
        expect_engines_agree(*g, r.factory, r.round_bound,
                             "chain k=" + std::to_string(k) + " " + r.name);
      }
    }
  }
}

TEST(FlatEngine, FloodingMatchesViewEngine) {
  // The flooding realisation is pinned to run_views as well: three
  // independent implementations of §2.3 give the same outputs.
  Rng rng(424242);
  const int k = 4;
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(24, k, 0.7, rng);
  for (const algo::EngineRealisation& r : algo::engine_realisations(k)) {
    if (r.name.rfind("flood:", 0) != 0) continue;
    SCOPED_TRACE(r.name);
    expect_same_result(run_sync(g, r.factory, r.round_bound),
                       run_flat(g, r.factory, r.round_bound), r.name);
  }
  // Direct run_views pin for the canonical case: flooded greedy.
  const algo::GreedyLocal greedy(k);
  const std::vector<Colour> views = run_views(g, greedy);
  const RunResult flooded = run_flat(
      g, flooding_program_factory(std::make_shared<algo::GreedyLocal>(k), k), k + 1);
  EXPECT_EQ(views, flooded.outputs);
  const RunResult native = run_flat(g, algo::greedy_program_factory(), k + 1);
  EXPECT_EQ(views, native.outputs);
}

// --- misbehaving-program zoo: engine edge cases -------------------------

/// Halts immediately with output = smallest incident colour (or ⊥).
class HaltAtInit final : public NodeProgram {
 public:
  bool init(const std::vector<Colour>& incident) override {
    out_ = incident.empty() ? kUnmatched : incident.front();
    return true;
  }
  std::map<Colour, Message> send(int) override { return {}; }
  bool receive(int, const std::map<Colour, Message>&) override { return true; }
  Colour output() const override { return out_; }

 private:
  Colour out_ = kUnmatched;
};

/// Counts down `rounds` rounds, then halts with ⊥.
class HaltAfter final : public NodeProgram {
 public:
  explicit HaltAfter(int rounds) : remaining_(rounds) {}
  bool init(const std::vector<Colour>&) override { return remaining_ == 0; }
  std::map<Colour, Message> send(int) override { return {}; }
  bool receive(int, const std::map<Colour, Message>&) override { return --remaining_ == 0; }
  Colour output() const override { return kUnmatched; }

 private:
  int remaining_;
};

/// Sends messages on colours it does not have (they are counted, never
/// delivered) and a growing payload on the colours it does.
class RogueGrower final : public NodeProgram {
 public:
  bool init(const std::vector<Colour>& incident) override {
    incident_ = incident;
    return false;
  }
  std::map<Colour, Message> send(int round) override {
    std::map<Colour, Message> out;
    for (Colour c = 1; c <= 9; ++c) {
      // Crosses the kFlatInlineBytes boundary round over round: spills.
      out[c] = Message(static_cast<std::size_t>(round) * 9, 'x');
    }
    return out;
  }
  bool receive(int round, const std::map<Colour, Message>& inbox) override {
    for (const auto& [c, m] : inbox) seen_ += m.size();
    return round >= 3;
  }
  Colour output() const override { return static_cast<Colour>(seen_ % 5); }

 private:
  std::vector<Colour> incident_;
  std::size_t seen_ = 0;
};

/// Sends only along its smallest incident colour; other ports stay silent,
/// so receivers see the engine-synthesised empty message.
class PartialSender final : public NodeProgram {
 public:
  bool init(const std::vector<Colour>& incident) override {
    incident_ = incident;
    return incident_.empty();
  }
  std::map<Colour, Message> send(int) override {
    return {{incident_.front(), "only"}};
  }
  bool receive(int round, const std::map<Colour, Message>& inbox) override {
    heard_ = 0;
    for (const auto& [c, m] : inbox) heard_ += m.empty() ? 0 : 1;
    return round >= 2;
  }
  Colour output() const override { return static_cast<Colour>(heard_); }

 private:
  std::vector<Colour> incident_;
  int heard_ = 0;
};

TEST(FlatEngine, ProgramZooAgrees) {
  Rng rng(7);
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(40, 6, 0.8, rng);
  expect_engines_agree(g, [] { return std::make_unique<HaltAtInit>(); }, 10, "halt-at-init");
  int counter = 0;
  expect_engines_agree(
      g,
      [&]() -> std::unique_ptr<NodeProgram> {
        return std::make_unique<HaltAfter>(counter++ % 5);
      },
      10, "staggered-halts");
  expect_engines_agree(g, [] { return std::make_unique<RogueGrower>(); }, 10, "rogue-grower");
  expect_engines_agree(g, [] { return std::make_unique<PartialSender>(); }, 10,
                       "partial-sender");
}

TEST(FlatEngine, IsolatedNodesAndEmptyGraphs) {
  const graph::EdgeColouredGraph empty(0, 3);
  expect_engines_agree(empty, algo::greedy_program_factory(), 4, "empty graph");
  const graph::EdgeColouredGraph isolated(5, 3);  // no edges
  expect_engines_agree(isolated, algo::greedy_program_factory(), 4, "isolated nodes");
}

TEST(FlatEngine, ThrowsLikeTheOracleWhenNotHalting) {
  const graph::EdgeColouredGraph g = graph::path_graph(3, {1, 2});
  const auto factory = [] { return std::make_unique<HaltAfter>(100); };
  EXPECT_THROW(run_sync(g, factory, 5), std::runtime_error);
  EXPECT_THROW(run_flat(g, factory, 5), std::runtime_error);
  FlatEngineOptions threaded;
  threaded.threads = 2;
  EXPECT_THROW(run_flat(g, factory, 5, threaded), std::runtime_error);
}

/// Throws during send — the flat engine must fail fast on any thread.
class Thrower final : public NodeProgram {
 public:
  bool init(const std::vector<Colour>&) override { return false; }
  std::map<Colour, Message> send(int) override { throw std::runtime_error("node crashed"); }
  bool receive(int, const std::map<Colour, Message>&) override { return true; }
  Colour output() const override { return kUnmatched; }
};

TEST(FlatEngine, ExceptionsPropagateFromWorkers) {
  graph::EdgeColouredGraph g(2, 2);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(run_flat(g, [] { return std::make_unique<Thrower>(); }, 10),
               std::runtime_error);
  FlatEngineOptions threaded;
  threaded.threads = 2;
  EXPECT_THROW(run_flat(g, [] { return std::make_unique<Thrower>(); }, 10, threaded),
               std::runtime_error);
}

TEST(FlatEngine, RowOffsetsAre64BitSafe) {
  // The CSR scan the engine itself uses (build_csr → flat_row_offsets)
  // must accumulate in std::size_t: three nodes of degree 2³⁰ push the
  // running slot count past 2³¹, which wrapped in 32-bit arithmetic.  The
  // offsets are pure bookkeeping — no plane is allocated here — so the
  // regression test covers the n·Δ > 2³¹ regime without 16 GiB of slots.
  const int big = 1 << 30;
  const std::vector<std::size_t> offsets = flat_row_offsets({big, big, big, 5});
  ASSERT_EQ(offsets.size(), 5u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[2], std::size_t{2} << 30);
  EXPECT_EQ(offsets[3], std::size_t{3} << 30);  // 3 · 2³⁰ > 2³¹: needs 64 bits
  EXPECT_EQ(offsets[4], (std::size_t{3} << 30) + 5);
  // Port addressing widens before the addition as well.
  EXPECT_EQ(flat_slot(std::size_t{3} << 30, 7), (std::size_t{3} << 30) + 7);
  EXPECT_THROW(flat_row_offsets({1, -1}), std::invalid_argument);
}

/// (n, threads) grid — the `threads > n`, `n = 0` and near-empty-partition
/// edges every combination of which used to be easy to hit with
/// `dmm_cli --threads 8` on a toy instance.
class FlatEngineThreadGrid : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FlatEngineThreadGrid, MatchesOracleForAnyPartition) {
  const auto [n, threads] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 1000 + threads));
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(n, 3, 0.8, rng);
  const RunResult oracle = run_sync(g, algo::greedy_program_factory(), 5);
  FlatEngineOptions options;
  options.threads = threads;
  expect_same_result(oracle,
                     run_flat(g, algo::greedy_program_factory(), 5, options),
                     "n=" + std::to_string(n) + " threads=" + std::to_string(threads));
}

INSTANTIATE_TEST_SUITE_P(
    SmallNByManyThreads, FlatEngineThreadGrid,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 5, 8, 17),
                       ::testing::Values(1, 2, 7, 8, 64, 1000)));

TEST(FlatEngine, EngineKindSwitch) {
  const graph::EdgeColouredGraph g = graph::worst_case_chain(5).long_path;
  const RunResult via_sync = run(EngineKind::kSync, g, algo::greedy_program_factory(), 6);
  const RunResult via_flat = run(EngineKind::kFlat, g, algo::greedy_program_factory(), 6);
  expect_same_result(via_sync, via_flat, "EngineKind dispatch");
  EXPECT_STREQ(engine_kind_name(EngineKind::kSync), "sync");
  EXPECT_STREQ(engine_kind_name(EngineKind::kFlat), "flat");
  EXPECT_EQ(parse_engine_kind("sync"), EngineKind::kSync);
  EXPECT_EQ(parse_engine_kind("flat"), EngineKind::kFlat);
  EXPECT_FALSE(parse_engine_kind("warp").has_value());
}

}  // namespace
}  // namespace dmm::local
