// Maximal matching in 2-coloured graphs (§1.1 / E13): one round suffices.
#include "algo/two_colour.hpp"

#include <gtest/gtest.h>

#include "algo/greedy.hpp"
#include "graph/generators.hpp"
#include "verify/matching.hpp"

namespace dmm::algo {
namespace {

TEST(TwoColour, AlternatingCycleFullyMatchedInstantly) {
  const graph::EdgeColouredGraph g = graph::alternating_cycle(2, 5, 1, 2);
  const TwoColourResult r = two_colour_matching(g);
  EXPECT_TRUE(verify::check_outputs(g, r.outputs).ok());
  // Colour-1 edges form a perfect matching here.
  for (gk::Colour c : r.outputs) EXPECT_EQ(c, 1);
}

TEST(TwoColour, PathNeedsTheOneAllowedRound) {
  const graph::EdgeColouredGraph g = graph::path_graph(2, {1, 2});
  const TwoColourResult r = two_colour_matching(g);
  EXPECT_TRUE(verify::check_outputs(g, r.outputs).ok());
  EXPECT_EQ(r.rounds, 1);
  EXPECT_EQ(r.outputs[2], local::kUnmatched);
}

TEST(TwoColour, MatchesGreedyEverywhere) {
  Rng rng(431);
  for (int trial = 0; trial < 30; ++trial) {
    const graph::EdgeColouredGraph g =
        graph::random_coloured_graph(static_cast<int>(rng.uniform(2, 50)), 2, 0.8, rng);
    const TwoColourResult r = two_colour_matching(g);
    EXPECT_EQ(r.outputs, greedy_outputs(g));
    EXPECT_LE(r.rounds, 1);  // Lemma 1 with k = 2
  }
}

TEST(TwoColour, SingleColourInstancesTakeZeroRounds) {
  Rng rng(433);
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(30, 1, 0.9, rng);
  const TwoColourResult r = two_colour_matching(g);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_TRUE(verify::check_outputs(g, r.outputs).ok());
}

TEST(TwoColour, RejectsLargerPalettes) {
  const graph::EdgeColouredGraph g = graph::path_graph(3, {1, 2, 3});
  EXPECT_THROW(two_colour_matching(g), std::invalid_argument);
}

}  // namespace
}  // namespace dmm::algo
