// Theorem 2 / Theorem 5 (experiment E4) and Lemma 4 (E3), end to end.
//
// The adversary must (a) produce the tight pair against the correct greedy
// algorithm — establishing the k-1 round lower bound constructively — and
// (b) refute *every* too-fast algorithm we throw at it with a re-checkable
// certificate.
#include "lower/adversary.hpp"

#include <gtest/gtest.h>

#include "algo/greedy.hpp"
#include "graph/generators.hpp"
#include "algo/truncated_greedy.hpp"

namespace dmm::lower {
namespace {

class GreedyAdversarySweep : public ::testing::TestWithParam<int> {};

TEST_P(GreedyAdversarySweep, TightPairAgainstGreedy) {
  const int k = GetParam();
  const int d = k - 1;
  const algo::GreedyLocal greedy(k);
  const LowerBoundResult result = run_adversary(k, greedy);
  ASSERT_TRUE(result.tight()) << result.summary();
  const TightPair& tp = std::get<TightPair>(result.outcome);
  EXPECT_EQ(tp.d, d);
  // The theorem's witness: U[d] = V[d] ...
  EXPECT_TRUE(ColourSystem::equal_to_radius(tp.u.tree(), tp.v.tree(), d));
  // ... both d-regular ...
  EXPECT_TRUE(tp.u.tree().is_regular(d));
  EXPECT_TRUE(tp.v.tree().is_regular(d));
  // ... with A(U, e) matched and A(V, e) = ⊥.
  EXPECT_NE(tp.out_u, local::kUnmatched);
  EXPECT_EQ(tp.out_v, local::kUnmatched);
  // Independent re-evaluation confirms the outputs.
  Evaluator fresh(greedy);
  EXPECT_EQ(fresh(tp.u, ColourSystem::root()), tp.out_u);
  EXPECT_EQ(fresh(tp.v, ColourSystem::root()), tp.out_v);
}

INSTANTIATE_TEST_SUITE_P(K3toK4, GreedyAdversarySweep, ::testing::Values(3, 4));

TEST(Adversary, TightPairImpliesRoundLowerBound) {
  // The punchline, spelled out: since U[d] = V[d], any algorithm with
  // running time r ≤ d-1 sees identical views at e and must answer
  // identically — but greedy's answers differ.  Therefore greedy's
  // radius-(d+1) views at e must differ, which we verify directly.
  const int k = 3, d = 2;
  const algo::GreedyLocal greedy(k);
  const LowerBoundResult result = run_adversary(k, greedy);
  ASSERT_TRUE(result.tight());
  const TightPair& tp = std::get<TightPair>(result.outcome);
  for (int radius = 1; radius <= d; ++radius) {
    EXPECT_TRUE(ColourSystem::equal_to_radius(tp.u.tree(), tp.v.tree(), radius));
  }
  EXPECT_FALSE(ColourSystem::equal_to_radius(tp.u.tree(), tp.v.tree(), d + 1));
}

TEST(Adversary, RefutesTruncatedGreedyK3) {
  // Every r < k-1 = 2 variant must be caught with a valid certificate.
  for (int r = 0; r <= 1; ++r) {
    const algo::TruncatedGreedy fast(3, r);
    const LowerBoundResult result = run_adversary(3, fast);
    ASSERT_TRUE(result.refuted()) << "r=" << r << ": " << result.summary();
    const Certificate& cert = std::get<Certificate>(result.outcome);
    Evaluator fresh(fast);
    EXPECT_TRUE(certificate_holds(cert, fresh)) << cert.describe();
  }
}

TEST(Adversary, RefutesTruncatedGreedyK4) {
  for (int r = 0; r <= 2; ++r) {
    const algo::TruncatedGreedy fast(4, r);
    const LowerBoundResult result = run_adversary(4, fast);
    ASSERT_TRUE(result.refuted()) << "r=" << r << ": " << result.summary();
    const Certificate& cert = std::get<Certificate>(result.outcome);
    Evaluator fresh(fast);
    EXPECT_TRUE(certificate_holds(cert, fresh)) << cert.describe();
  }
}

TEST(Adversary, RefutesZeroRoundAlgorithmsK5) {
  // k = 5 is out of reach for the full greedy (the budget explodes as
  // h^depth), but 0-round algorithms keep the budget at depth 10 on
  // 4-regular trees — still laptop-instant.
  std::vector<std::unique_ptr<local::LocalAlgorithm>> algorithms;
  algorithms.push_back(std::make_unique<algo::TruncatedGreedy>(5, 0));
  algorithms.push_back(std::make_unique<algo::FirstColourLocal>(5));
  for (const auto& a : algorithms) {
    const LowerBoundResult result = run_adversary(5, *a);
    EXPECT_TRUE(result.refuted()) << result.summary();
    if (result.refuted()) {
      Evaluator fresh(*a);
      EXPECT_TRUE(certificate_holds(std::get<Certificate>(result.outcome), fresh));
    }
  }
}

TEST(Adversary, OptimisticBudgetTightPairK5) {
  // The conservative depth budget prices k = 5 vs greedy at ~10^13 nodes;
  // the optimistic scan-cap schedule (witnesses sit at norm 1, E15b)
  // brings it to ~12k nodes.  Outcomes are exact either way — the caps
  // only decide how much tree gets materialised.
  const int k = 5, d = 4;
  const algo::GreedyLocal greedy(k);
  const LowerBoundResult result = run_adversary(k, greedy, {.optimistic = true});
  ASSERT_TRUE(result.tight()) << result.summary();
  const TightPair& tp = std::get<TightPair>(result.outcome);
  EXPECT_EQ(tp.d, d);
  EXPECT_TRUE(ColourSystem::equal_to_radius(tp.u.tree(), tp.v.tree(), d));
  EXPECT_TRUE(tp.u.tree().is_regular(d));
  EXPECT_TRUE(tp.v.tree().is_regular(d));
  EXPECT_NE(tp.out_u, local::kUnmatched);
  EXPECT_EQ(tp.out_v, local::kUnmatched);
  EXPECT_LT(result.stats.max_template_nodes, 100000);
}

TEST(Adversary, OptimisticMatchesConservativeWhereBothRun) {
  for (int k = 3; k <= 4; ++k) {
    const algo::GreedyLocal greedy(k);
    const LowerBoundResult conservative = run_adversary(k, greedy);
    const LowerBoundResult optimistic = run_adversary(k, greedy, {.optimistic = true});
    ASSERT_TRUE(conservative.tight());
    ASSERT_TRUE(optimistic.tight());
    const auto& a = std::get<TightPair>(conservative.outcome);
    const auto& b = std::get<TightPair>(optimistic.outcome);
    EXPECT_EQ(a.out_u, b.out_u);
    // Same certificate pair up to the verified radius d.
    EXPECT_TRUE(ColourSystem::equal_to_radius(a.u.tree(), b.u.tree(), a.d));
    EXPECT_TRUE(ColourSystem::equal_to_radius(a.v.tree(), b.v.tree(), a.d));
    // And the optimistic run materialises no more than the conservative.
    EXPECT_LE(optimistic.stats.max_template_nodes, conservative.stats.max_template_nodes);
  }
}

TEST(Adversary, OptimisticRefutationsStillValid) {
  for (int r = 0; r <= 2; ++r) {
    const algo::TruncatedGreedy fast(4, r);
    const LowerBoundResult result = run_adversary(4, fast, {.optimistic = true});
    ASSERT_TRUE(result.refuted()) << result.summary();
    Evaluator fresh(fast);
    EXPECT_TRUE(certificate_holds(std::get<Certificate>(result.outcome), fresh));
  }
}

TEST(Adversary, MemoisationDoesNotChangeOutcomes) {
  for (int k = 3; k <= 4; ++k) {
    const algo::GreedyLocal greedy(k);
    const LowerBoundResult with_memo = run_adversary(k, greedy, {.memoise = true});
    const LowerBoundResult without = run_adversary(k, greedy, {.memoise = false});
    EXPECT_EQ(with_memo.tight(), without.tight());
    if (with_memo.tight() && without.tight()) {
      const auto& a = std::get<TightPair>(with_memo.outcome);
      const auto& b = std::get<TightPair>(without.outcome);
      EXPECT_EQ(a.out_u, b.out_u);
      EXPECT_TRUE(ColourSystem::equal_to_radius(a.u.tree(), b.u.tree(), a.d));
      EXPECT_TRUE(ColourSystem::equal_to_radius(a.v.tree(), b.v.tree(), a.d));
    }
    EXPECT_GE(without.stats.evaluations, with_memo.stats.evaluations);
  }
}

TEST(Adversary, DeterministicAcrossRuns) {
  const algo::TruncatedGreedy fast(4, 1);
  const LowerBoundResult first = run_adversary(4, fast);
  const LowerBoundResult second = run_adversary(4, fast);
  ASSERT_TRUE(first.refuted());
  ASSERT_TRUE(second.refuted());
  const auto& a = std::get<Certificate>(first.outcome);
  const auto& b = std::get<Certificate>(second.outcome);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.node, b.node);
  EXPECT_EQ(a.output, b.output);
}

TEST(Adversary, RefutesFirstColourHeuristic) {
  const algo::FirstColourLocal naive(3);
  const LowerBoundResult result = run_adversary(3, naive);
  ASSERT_TRUE(result.refuted()) << result.summary();
  Evaluator fresh(naive);
  EXPECT_TRUE(certificate_holds(std::get<Certificate>(result.outcome), fresh));
}

TEST(Adversary, DefeatsArbitraryAlgorithmsK3) {
  // Theorem 2 quantifies over all algorithms: every pseudo-random
  // M1-respecting 0/1-round algorithm must be refuted (none of them is a
  // correct maximal-matching algorithm, let alone a fast one).
  int refuted = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const algo::ArbitraryLocal arb(3, static_cast<int>(seed % 2), seed);
    const LowerBoundResult result = run_adversary(3, arb);
    if (result.refuted()) {
      Evaluator fresh(arb);
      EXPECT_TRUE(certificate_holds(std::get<Certificate>(result.outcome), fresh))
          << "seed=" << seed;
      ++refuted;
    } else {
      // An arbitrary function essentially never behaves like a correct
      // algorithm; a tight pair would still be sound, but flag it so the
      // suite notices if it becomes common.
      EXPECT_TRUE(result.tight()) << result.summary();
    }
  }
  EXPECT_GE(refuted, 10);
}

TEST(Adversary, TightPairAgreesWithConcreteSimulation) {
  // End-to-end integration: the adversary's claimed outputs at e must
  // match what the *message-passing* greedy computes on a concrete finite
  // chunk of U and V (big enough that node 0's fate is exact).
  for (int k = 3; k <= 4; ++k) {
    const algo::GreedyLocal greedy(k);
    const LowerBoundResult result = run_adversary(k, greedy);
    ASSERT_TRUE(result.tight());
    const TightPair& tp = std::get<TightPair>(result.outcome);
    for (const auto& [tmpl, expected] :
         {std::pair<const Template&, Colour>{tp.u, tp.out_u},
          std::pair<const Template&, Colour>{tp.v, tp.out_v}}) {
      const int radius = std::min(tmpl.valid_radius(), k + 1);
      ASSERT_GE(radius, k) << "chunk too shallow to trust node 0";
      const colsys::ColourSystem chunk = tmpl.tree().ball(colsys::ColourSystem::root(), radius);
      const graph::EdgeColouredGraph g = graph::to_graph(chunk);
      const local::RunResult run = local::run_sync(g, algo::greedy_program_factory(), k + 2);
      EXPECT_EQ(run.outputs[0], expected) << "k=" << k;
    }
  }
}

TEST(Adversary, StatsAreRecorded) {
  const algo::GreedyLocal greedy(3);
  const LowerBoundResult result = run_adversary(3, greedy);
  EXPECT_GT(result.stats.evaluations, 0u);
  EXPECT_FALSE(result.stats.steps.empty());
  EXPECT_GT(result.stats.max_template_nodes, 0);
  EXPECT_NE(result.summary().find("tight pair"), std::string::npos);
}

TEST(Adversary, RejectsSmallK) {
  const algo::GreedyLocal greedy(2);
  EXPECT_THROW(run_adversary(2, greedy), std::invalid_argument);
}

TEST(Lemma4, RefutesZeroRoundAlgorithms) {
  // Any 0-round algorithm on k = 2 fails on T, U, or V (Lemma 4's proof).
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const algo::ArbitraryLocal arb(2, 0, seed);
    const Lemma4Result result = run_lemma4(arb);
    EXPECT_TRUE(result.contradiction_found) << result.summary;
    EXPECT_FALSE(result.report.ok());
  }
  const algo::TruncatedGreedy fast(2, 0);
  const Lemma4Result result = run_lemma4(fast);
  EXPECT_TRUE(result.contradiction_found) << result.summary;
}

TEST(Lemma4, DoesNotApplyToOneRoundAlgorithms) {
  const algo::GreedyLocal greedy(2);
  const Lemma4Result result = run_lemma4(greedy);
  EXPECT_FALSE(result.contradiction_found);
  EXPECT_NE(result.summary.find("nothing to refute"), std::string::npos);
}

TEST(Adversary, GreedyWithExtraRadiusStillTight) {
  // A correct algorithm that looks even further (radius k+1) still cannot
  // avoid the tight pair — the bound is information-theoretic.
  class WideGreedy final : public local::LocalAlgorithm {
   public:
    explicit WideGreedy(int k) : k_(k) {}
    int running_time() const override { return k_; }  // one extra round
    Colour evaluate(const ColourSystem& view) const override {
      return algo::greedy_outputs(view)[static_cast<std::size_t>(ColourSystem::root())];
    }
    std::string name() const override { return "wide-greedy"; }

   private:
    int k_;
  };
  const WideGreedy wide(3);
  const LowerBoundResult result = run_adversary(3, wide);
  EXPECT_TRUE(result.tight()) << result.summary();
}

}  // namespace
}  // namespace dmm::lower
