// The arena-pooled program path (util::Arena + local::ProgramPool +
// ProgramFactory) is only allowed to exist because it is observationally
// identical to the legacy one-unique_ptr-per-node path: this suite runs
// every registered realisation through both construction paths on both
// engines and requires every RunResult field to match, and pins the
// arena's reuse/reset contract (exercised under the ASan+UBSan CI leg,
// where a double-destroy or a dangling slab pointer would abort).
#include "local/program_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "algo/greedy.hpp"
#include "algo/runner.hpp"
#include "engine_test_util.hpp"
#include "graph/generators.hpp"
#include "local/flat_engine.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace dmm::local {
namespace {

// --- util::Arena ---------------------------------------------------------

TEST(Arena, AlignsAndBumps) {
  util::Arena arena(256);
  auto* a = static_cast<char*>(arena.allocate(3, 1));
  auto* b = static_cast<double*>(arena.allocate(sizeof(double), alignof(double)));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(double), 0u);
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(b));
  *b = 1.5;  // must be writable
  EXPECT_EQ(*b, 1.5);
  EXPECT_GE(arena.bytes_allocated(), 3 + sizeof(double));
  EXPECT_THROW(arena.allocate(8, 3), std::invalid_argument);  // non-power-of-two
}

TEST(Arena, OversizedRequestsGetDedicatedSlabs) {
  util::Arena arena(64);
  void* big = arena.allocate(10000, alignof(std::max_align_t));
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 10000u);
}

TEST(Arena, ResetReusesSlabsWithoutGrowing) {
  util::Arena arena(1024);
  auto fill = [&arena] {
    for (int i = 0; i < 100; ++i) arena.allocate(64, 8);
  };
  fill();
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t slabs = arena.slab_count();
  EXPECT_GT(reserved, 0u);
  // Steady state: reset + identical refill must not acquire new memory.
  for (int round = 0; round < 5; ++round) {
    arena.reset();
    EXPECT_EQ(arena.bytes_allocated(), 0u);
    fill();
    EXPECT_EQ(arena.bytes_reserved(), reserved);
    EXPECT_EQ(arena.slab_count(), slabs);
  }
}

// --- ProgramPool lifetime ------------------------------------------------

/// Counts constructions and destructions so the pool's clear() contract is
/// observable.
class CountedProgram final : public NodeProgram {
 public:
  explicit CountedProgram(int* live) : live_(live) { ++*live_; }
  ~CountedProgram() override { --*live_; }
  CountedProgram(const CountedProgram&) = delete;
  CountedProgram& operator=(const CountedProgram&) = delete;

  bool init(const std::vector<Colour>&) override { return true; }
  std::map<Colour, Message> send(int) override { return {}; }
  bool receive(int, const std::map<Colour, Message>&) override { return true; }
  Colour output() const override { return kUnmatched; }

 private:
  int* live_;
};

TEST(ProgramPool, ClearDestroysPooledAndAdoptedPrograms) {
  int live = 0;
  ProgramPool pool;
  for (int i = 0; i < 10; ++i) pool.emplace<CountedProgram>(&live);
  pool.adopt(std::make_unique<CountedProgram>(&live));
  EXPECT_EQ(pool.size(), 11u);
  EXPECT_EQ(live, 11);
  pool.clear();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(live, 0);
  // The pool is reusable after clear, on the same slabs.
  const std::size_t reserved = pool.arena().bytes_reserved();
  for (int i = 0; i < 10; ++i) pool.emplace<CountedProgram>(&live);
  EXPECT_EQ(live, 10);
  EXPECT_EQ(pool.arena().bytes_reserved(), reserved);
  pool.clear();
  EXPECT_EQ(live, 0);
}

TEST(ProgramPool, EmplaceBatchIsContiguous) {
  ProgramPool pool;
  pool.emplace_batch<algo::GreedyProgram>(64);
  ASSERT_EQ(pool.size(), 64u);
  // One block: adjacent programs are exactly sizeof apart.
  for (std::size_t i = 1; i < 64; ++i) {
    const auto prev = reinterpret_cast<std::uintptr_t>(pool[i - 1]);
    const auto cur = reinterpret_cast<std::uintptr_t>(pool[i]);
    EXPECT_EQ(cur - prev, sizeof(algo::GreedyProgram));
  }
}

TEST(ProgramSource, EmptySourceThrows) {
  ProgramPool pool;
  EXPECT_THROW(ProgramSource().build(1, pool), std::logic_error);
}

// --- pooled vs unique_ptr equivalence fuzz ------------------------------
// (expect_same_result comes from engine_test_util.hpp, shared with the
// flat-vs-sync suite so both pin the same definition of equivalence.)

TEST(ProgramPool, PooledMatchesHeapForEveryRealisationAndEngine) {
  // Every registered algorithm, both engines, both construction paths:
  // RunResult must be bit-identical.  This is the fuzz suite ISSUE 4 asks
  // for; ~60 random instances plus the adversarial chains.
  int checked = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(seed * 31 + 7);
    const int n = 2 + static_cast<int>(seed % 23);
    const int k = 1 + static_cast<int>(seed % 4);
    const graph::EdgeColouredGraph g = graph::random_coloured_graph(n, k, 0.6, rng);
    for (const algo::EngineRealisation& r : algo::engine_realisations(k)) {
      for (const EngineKind kind : {EngineKind::kSync, EngineKind::kFlat}) {
        const std::string context = r.name + " seed=" + std::to_string(seed) +
                                    " engine=" + engine_kind_name(kind);
        expect_same_result(run(kind, g, r.factory, r.round_bound),
                           run(kind, g, ProgramSource(r.heap_factory), r.round_bound),
                           context);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 400);
}

TEST(ProgramPool, PooledMatchesHeapOnWorstCaseChains) {
  for (int k = 2; k <= 6; ++k) {
    const graph::WorstCase wc = graph::worst_case_chain(k);
    for (const graph::EdgeColouredGraph* g : {&wc.long_path, &wc.short_path}) {
      for (const algo::EngineRealisation& r :
           algo::engine_realisations(k, /*flood_radius_cap=*/k)) {
        for (const EngineKind kind : {EngineKind::kSync, EngineKind::kFlat}) {
          expect_same_result(run(kind, *g, r.factory, r.round_bound),
                             run(kind, *g, ProgramSource(r.heap_factory), r.round_bound),
                             "chain k=" + std::to_string(k) + " " + r.name);
        }
      }
    }
  }
}

}  // namespace
}  // namespace dmm::local
