// Shared definition of engine-result equivalence for the test suites.
//
// Both the flat-vs-sync suite (test_flat_engine.cpp) and the
// pooled-vs-heap suite (test_program_pool.cpp) pin their paths to "every
// RunResult field identical"; keeping the predicate in one place means the
// two suites cannot drift on what "every field" means.  init_ns is
// deliberately excluded: it is a wall-clock measurement, not part of the
// simulated behaviour.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "local/engine.hpp"

namespace dmm::local {

inline void expect_same_result(const RunResult& expected, const RunResult& actual,
                               const std::string& context) {
  EXPECT_EQ(expected.outputs, actual.outputs) << context;
  EXPECT_EQ(expected.halt_round, actual.halt_round) << context;
  EXPECT_EQ(expected.rounds, actual.rounds) << context;
  EXPECT_EQ(expected.max_message_bytes, actual.max_message_bytes) << context;
  EXPECT_EQ(expected.total_message_bytes, actual.total_message_bytes) << context;
  EXPECT_EQ(expected.messages_sent, actual.messages_sent) << context;
  EXPECT_EQ(expected.crashes, actual.crashes) << context;
  EXPECT_EQ(expected.restarts, actual.restarts) << context;
  EXPECT_EQ(expected.messages_dropped, actual.messages_dropped) << context;
}

}  // namespace dmm::local
