// Base case (§3.8, Lemma 11) and inductive step (§3.9, Lemmas 12-13),
// exercised against the real greedy algorithm and against broken ones.
#include "lower/critical_pair.hpp"

#include <gtest/gtest.h>

#include "algo/greedy.hpp"
#include "algo/truncated_greedy.hpp"

namespace dmm::lower {
namespace {

CriticalPair make_base(int k, Evaluator& eval) {
  const auto colours = choose_lemma10_colours(k, eval);
  EXPECT_TRUE(std::holds_alternative<Lemma10Colours>(colours));
  auto pair = base_case(k, std::get<Lemma10Colours>(colours), eval);
  EXPECT_TRUE(std::holds_alternative<CriticalPair>(pair));
  return std::get<CriticalPair>(std::move(pair));
}

TEST(BaseCase, GreedyYieldsOneCriticalPair) {
  for (int k = 3; k <= 6; ++k) {
    const algo::GreedyLocal greedy(k);
    Evaluator eval(greedy);
    const CriticalPair pair = make_base(k, eval);
    EXPECT_EQ(pair.level, 1);
    // Lemma 11: a genuine 1-critical pair.
    const auto failure = verify_critical_pair(pair, eval, 1);
    EXPECT_FALSE(failure.has_value()) << "k=" << k << ": " << *failure;
  }
}

TEST(BaseCase, PairSharesTheSingleEdge) {
  const algo::GreedyLocal greedy(4);
  Evaluator eval(greedy);
  const CriticalPair pair = make_base(4, eval);
  // (C1): S[1] = T[1] = {e, c2}: a single edge.
  EXPECT_EQ(pair.s.tree().size(), 2);
  EXPECT_EQ(pair.t.tree().size(), 2);
  EXPECT_TRUE(ColourSystem::equal_to_radius(pair.s.tree(), pair.t.tree(), 1));
  // (C2): equal τ at the root.
  EXPECT_EQ(pair.s.tau(ColourSystem::root()), pair.t.tau(ColourSystem::root()));
}

TEST(BaseCase, GreedyK4MatchesPaperFigure6) {
  // Lemma 10 for greedy/k=4 gives c1=1, c2=2, c3=3, c4=1.  On (X, ξ) with
  // ξ(e)=1, ξ(c2)=3: greedy matches e along colour 2 iff its partner is
  // still free after step 1 — the partner's copy has colour-1 edges
  // (τ=3 ≠ 1), so it is taken in step 1 and A(X, ξ, e) ≠ 2: case (i).
  const algo::GreedyLocal greedy(4);
  Evaluator eval(greedy);
  const CriticalPair pair = make_base(4, eval);
  // Case (i): S1 = K with κ ≡ c1 = 1.
  EXPECT_EQ(pair.s.tau(ColourSystem::root()), 1);
  EXPECT_EQ(pair.s.tau(1), 1);
  // T1 = X with ξ(e)=1, ξ(c2)=3.
  EXPECT_EQ(pair.t.tau(ColourSystem::root()), 1);
  EXPECT_EQ(pair.t.tau(1), 3);
}

TEST(InductiveStep, GreedyK3ReachesLevelTwo) {
  const int k = 3, d = 2;
  const algo::GreedyLocal greedy(k);
  Evaluator eval(greedy);
  CriticalPair pair = make_base(k, eval);
  StepTrace trace;
  const StepOutcome out = inductive_step(pair, eval, required_radius(k, 2, greedy.running_time()),
                                         &trace);
  ASSERT_TRUE(std::holds_alternative<CriticalPair>(out));
  const CriticalPair& next = std::get<CriticalPair>(out);
  EXPECT_EQ(next.level, d);
  EXPECT_EQ(next.s.h(), d);
  EXPECT_EQ(next.t.h(), d);
  // (C1)/(C2)/(C3) + (C4) near the root.
  const auto failure = verify_critical_pair(next, eval, 2);
  EXPECT_FALSE(failure.has_value()) << *failure;
  // The trace recorded the χ colour and the witness.
  EXPECT_NE(trace.chi, gk::kNoColour);
  EXPECT_GT(trace.x_size, 0);
}

TEST(InductiveStep, GreedyK4BothSteps) {
  const int k = 4, d = 3;
  const algo::GreedyLocal greedy(k);
  Evaluator eval(greedy);
  CriticalPair pair = make_base(k, eval);
  for (int level = 2; level <= d; ++level) {
    const StepOutcome out =
        inductive_step(pair, eval, required_radius(k, level, greedy.running_time()), nullptr);
    ASSERT_TRUE(std::holds_alternative<CriticalPair>(out)) << "level " << level;
    pair = std::get<CriticalPair>(out);
    EXPECT_EQ(pair.level, level);
    const auto failure = verify_critical_pair(pair, eval, 2);
    EXPECT_FALSE(failure.has_value()) << "level " << level << ": " << *failure;
  }
  // Final level: the trees agree to radius d (Theorem 5's U[d] = V[d]).
  EXPECT_TRUE(ColourSystem::equal_to_radius(pair.s.tree(), pair.t.tree(), d));
}

TEST(InductiveStep, ProducesHPlusOneRegularTemplates) {
  const algo::GreedyLocal greedy(4);
  Evaluator eval(greedy);
  CriticalPair pair = make_base(4, eval);
  const StepOutcome out =
      inductive_step(pair, eval, required_radius(4, 2, greedy.running_time()), nullptr);
  ASSERT_TRUE(std::holds_alternative<CriticalPair>(out));
  const CriticalPair& next = std::get<CriticalPair>(out);
  EXPECT_TRUE(next.s.tree().is_regular(2));
  EXPECT_TRUE(next.t.tree().is_regular(2));
}

TEST(InductiveStep, DepthBudgetEnforced) {
  const algo::GreedyLocal greedy(4);
  Evaluator eval(greedy);
  CriticalPair pair = make_base(4, eval);
  // Step once to get truncated templates, then demand an absurd radius.
  const StepOutcome out =
      inductive_step(pair, eval, required_radius(4, 2, greedy.running_time()), nullptr);
  ASSERT_TRUE(std::holds_alternative<CriticalPair>(out));
  const CriticalPair& next = std::get<CriticalPair>(out);
  EXPECT_THROW(inductive_step(next, eval, next.s.valid_radius() + 100, nullptr),
               std::logic_error);
}

TEST(InductiveStep, TruncatedGreedyGetsRefuted) {
  // A 1-round "greedy" on k = 4 must fail somewhere in the construction.
  const algo::TruncatedGreedy fast(4, 1);
  Evaluator eval(fast);
  CriticalPair pair = make_base(4, eval);
  bool refuted = false;
  for (int level = 2; level <= 3 && !refuted; ++level) {
    StepOutcome out =
        inductive_step(pair, eval, required_radius(4, level, fast.running_time()), nullptr);
    if (std::holds_alternative<Certificate>(out)) {
      const Certificate& cert = std::get<Certificate>(out);
      Evaluator fresh(fast);
      EXPECT_TRUE(certificate_holds(cert, fresh));
      refuted = true;
      break;
    }
    ASSERT_TRUE(std::holds_alternative<CriticalPair>(out));
    pair = std::get<CriticalPair>(std::move(out));
  }
  if (!refuted) {
    // If the induction survived, the final pair itself convicts the
    // algorithm: both sides would need different outputs on equal views.
    EXPECT_EQ(pair.level, 3);
    const Colour a = eval(pair.s, ColourSystem::root());
    const Colour b = eval(pair.t, ColourSystem::root());
    // Radius r+1 = 2 ≤ d = 3 and U[3] = V[3]: the views at e are equal, so
    // the outputs are equal — and then one side violates its promise.
    EXPECT_EQ(a, b);
  }
}

TEST(RequiredRadius, FormulaShape) {
  // Final level needs max(d, r+1); each step adds max(need+r+2, 2r+4)+r.
  EXPECT_EQ(required_radius(3, 2, 2), 3);  // k=3: level d needs max(2,3)=3
  // One step below: D_X = max(3 + r + 2, 2r + 4) = 8, plus r = 10.
  EXPECT_EQ(required_radius(3, 1, 2), 10);
  EXPECT_GT(required_radius(4, 1, 3), required_radius(4, 2, 3));
  EXPECT_GT(required_radius(4, 1, 3), required_radius(4, 1, 1));
}

}  // namespace
}  // namespace dmm::lower
