// Group G_k (§2.1): reduced words, involution relations, norm / metric
// facts stated in the paper, exercised both on hand-picked cases and on
// randomized sweeps over k.
#include "gk/word.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace dmm::gk {
namespace {

Word random_word(Rng& rng, int k, int max_len) {
  std::vector<Colour> letters;
  const int len = static_cast<int>(rng.uniform(0, max_len));
  for (int i = 0; i < len; ++i) {
    letters.push_back(static_cast<Colour>(rng.uniform(1, k)));
  }
  return Word::from_letters(letters);
}

TEST(Word, IdentityBasics) {
  Word e;
  EXPECT_TRUE(e.is_identity());
  EXPECT_EQ(e.norm(), 0);
  EXPECT_EQ(e.str(), "e");
  EXPECT_EQ(e * e, e);
  EXPECT_EQ(e.inverse(), e);
}

TEST(Word, GeneratorsAreInvolutions) {
  for (Colour c = 1; c <= 9; ++c) {
    const Word g = Word::generator(c);
    EXPECT_EQ(g * g, Word{});
    EXPECT_EQ(g.inverse(), g);
    EXPECT_EQ(g.norm(), 1);
  }
}

TEST(Word, FromLettersReduces) {
  EXPECT_EQ(Word::from_letters({1, 1}), Word{});
  EXPECT_EQ(Word::from_letters({1, 2, 2, 1}), Word{});
  EXPECT_EQ(Word::from_letters({1, 2, 2, 3}).str(), "1.3");
  EXPECT_EQ(Word::from_letters({3, 3, 3}).str(), "3");
  EXPECT_EQ(Word::from_letters({1, 2, 1, 2}).norm(), 4);
}

TEST(Word, ParseRoundTrip) {
  for (const char* text : {"e", "1", "3.1.2", "2.1.2.1.2"}) {
    EXPECT_EQ(Word::parse(text).str(), text);
  }
  EXPECT_THROW(Word::parse("0"), std::invalid_argument);
}

TEST(Word, TailHeadPred) {
  const Word w = Word::parse("3.1.2");
  EXPECT_EQ(w.tail(), 2);
  EXPECT_EQ(w.head(), 3);
  EXPECT_EQ(w.pred().str(), "3.1");
  // head(x) = tail(x̄), as defined in the paper.
  EXPECT_EQ(w.head(), w.inverse().tail());
  EXPECT_THROW(Word{}.tail(), std::logic_error);
  EXPECT_THROW(Word{}.head(), std::logic_error);
  EXPECT_THROW(Word{}.pred(), std::logic_error);
}

TEST(Word, PredReducesNormByOne) {
  const Word w = Word::parse("1.2.3.4");
  EXPECT_EQ((w * w.tail()).norm(), w.norm() - 1);
  EXPECT_EQ(w.pred(), w * w.tail());
}

TEST(Word, MultiplicationSeamCancellation) {
  EXPECT_EQ((Word::parse("1.2") * Word::parse("2.1")), Word{});
  EXPECT_EQ((Word::parse("1.2") * Word::parse("2.3")).str(), "1.3");
  EXPECT_EQ((Word::parse("1.2.3") * Word::parse("3.2.1")), Word{});
  EXPECT_EQ((Word::parse("1.2.3") * Word::parse("1.2.3")).norm(), 6);
}

TEST(Word, NormParityLaw) {
  // |xy| ≡ |x| + |y| (mod 2) for all x, y (paper §2.1).
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    const Word x = random_word(rng, 5, 12);
    const Word y = random_word(rng, 5, 12);
    EXPECT_EQ(((x * y).norm() - x.norm() - y.norm()) % 2, 0);
  }
}

TEST(Word, NormAdditiveIff) {
  // |xy| = |x| + |y| iff x = e, y = e, or tail(x) != head(y).
  Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    const Word x = random_word(rng, 4, 10);
    const Word y = random_word(rng, 4, 10);
    const bool additive = (x * y).norm() == x.norm() + y.norm();
    EXPECT_EQ(additive, norm_additive(x, y)) << x.str() << " * " << y.str();
  }
}

TEST(Word, MetricAxioms) {
  Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const Word x = random_word(rng, 4, 8);
    const Word y = random_word(rng, 4, 8);
    const Word z = random_word(rng, 4, 8);
    EXPECT_EQ(distance(x, x), 0);
    EXPECT_EQ(distance(x, y), distance(y, x));
    EXPECT_LE(distance(x, z), distance(x, y) + distance(y, z));
    EXPECT_EQ(distance(x, y) == 0, x == y);
  }
}

TEST(Word, InverseNormPreserved) {
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const Word x = random_word(rng, 6, 15);
    EXPECT_EQ(x.inverse().norm(), x.norm());
    EXPECT_EQ(x * x.inverse(), Word{});
    EXPECT_EQ(x.inverse() * x, Word{});
  }
}

TEST(Word, Associativity) {
  Rng rng(19);
  for (int trial = 0; trial < 300; ++trial) {
    const Word x = random_word(rng, 4, 8);
    const Word y = random_word(rng, 4, 8);
    const Word z = random_word(rng, 4, 8);
    EXPECT_EQ((x * y) * z, x * (y * z));
  }
}

TEST(Word, GeneratorMultiplicationMatchesWordMultiplication) {
  Rng rng(23);
  for (int trial = 0; trial < 300; ++trial) {
    const Word x = random_word(rng, 5, 10);
    const Colour c = static_cast<Colour>(rng.uniform(1, 5));
    EXPECT_EQ(x * c, x * Word::generator(c));
  }
}

TEST(Word, DistanceOneMeansEdgeOfThatColour) {
  // If |x̄y| = 1 then x and y are joined by an edge of colour x̄y in Γ_k.
  const Word x = Word::parse("1.2");
  const Word y = Word::parse("1.2.3");
  EXPECT_EQ(distance(x, y), 1);
  EXPECT_EQ((x.inverse() * y).str(), "3");
}

TEST(WordHash, EqualWordsHashEqual) {
  Rng rng(29);
  WordHash hash;
  for (int trial = 0; trial < 100; ++trial) {
    const Word x = random_word(rng, 4, 10);
    const Word y = Word::from_letters(x.letters());
    EXPECT_EQ(hash(x), hash(y));
  }
}

TEST(Word, OrderingIsTotal) {
  const Word a = Word::parse("1");
  const Word b = Word::parse("1.2");
  EXPECT_TRUE(a < b || b < a || a == b);
  EXPECT_FALSE(a < a);
}

}  // namespace
}  // namespace dmm::gk
