// (Δ+1)-vertex colouring (§1.1 / E13): properness, palette Δ+1, and the
// log*-flavoured round behaviour in the identifier width.
#include "algo/vertex_colouring.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "util/logstar.hpp"

namespace dmm::algo {
namespace {

std::vector<std::uint64_t> spread_ids(Rng& rng, int n, std::uint64_t stride) {
  std::vector<std::uint64_t> ids(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = (i + 1) * stride;
  std::shuffle(ids.begin(), ids.end(), rng.engine());
  return ids;
}

TEST(VertexColouring, ProperWithDeltaPlusOneColours) {
  Rng rng(901);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.uniform(2, 60));
    const int k = static_cast<int>(rng.uniform(1, 7));
    const graph::EdgeColouredGraph g = graph::random_coloured_graph(n, k, 0.8, rng);
    const auto ids = spread_ids(rng, n, 97);
    const VertexColouringResult r = delta_plus_one_colouring(g, ids);
    EXPECT_TRUE(is_proper_vertex_colouring(g, r.colours));
    EXPECT_LE(r.palette, g.max_degree() + 1);
    for (std::int64_t c : r.colours) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, r.palette);
    }
  }
}

TEST(VertexColouring, NamedFamilies) {
  Rng rng(907);
  for (const graph::EdgeColouredGraph& g :
       {graph::figure1_graph(), graph::hypercube(4), graph::complete_bipartite(5),
        graph::worst_case_chain(7).long_path}) {
    const auto ids = spread_ids(rng, g.node_count(), 1315423911ull);
    const VertexColouringResult r = delta_plus_one_colouring(g, ids);
    EXPECT_TRUE(is_proper_vertex_colouring(g, r.colours));
    EXPECT_LE(r.palette, g.max_degree() + 1);
  }
}

TEST(VertexColouring, RoundsInsensitiveToIdWidth) {
  // Doubling the id width costs O(log*) extra rounds only.
  Rng rng(911);
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(48, 4, 0.8, rng);
  Rng r1(1), r2(2);
  const VertexColouringResult narrow =
      delta_plus_one_colouring(g, spread_ids(r1, g.node_count(), 3));
  const VertexColouringResult wide =
      delta_plus_one_colouring(g, spread_ids(r2, g.node_count(), 1ull << 40));
  EXPECT_LE(wide.rounds, narrow.rounds + log_star(1ull << 46) + 2);
}

TEST(VertexColouring, RejectsBadIds) {
  const graph::EdgeColouredGraph g = graph::path_graph(2, {1, 2});
  EXPECT_THROW(delta_plus_one_colouring(g, {1, 2}), std::invalid_argument);        // wrong size
  EXPECT_THROW(delta_plus_one_colouring(g, {1, 1, 2}), std::invalid_argument);     // duplicate
  EXPECT_NO_THROW(delta_plus_one_colouring(g, {5, 1, 9}));
}

TEST(VertexColouring, EdgelessGraphGetsOneColour) {
  const graph::EdgeColouredGraph g(5, 2);
  const VertexColouringResult r = delta_plus_one_colouring(g, {1, 2, 3, 4, 5});
  EXPECT_TRUE(is_proper_vertex_colouring(g, r.colours));
  EXPECT_LE(r.palette, 1);
}

TEST(VertexColouring, PathNeedsOnlyThreeColoursWorth) {
  // Δ = 2 on paths: palette ≤ 3.
  std::vector<gk::Colour> colours;
  for (int c = 1; c <= 12; ++c) colours.push_back(static_cast<gk::Colour>(c));
  const graph::EdgeColouredGraph g = graph::path_graph(12, colours);
  std::vector<std::uint64_t> ids(static_cast<std::size_t>(g.node_count()));
  std::iota(ids.begin(), ids.end(), 100);
  const VertexColouringResult r = delta_plus_one_colouring(g, ids);
  EXPECT_LE(r.palette, 3);
  EXPECT_TRUE(is_proper_vertex_colouring(g, r.colours));
}

}  // namespace
}  // namespace dmm::algo
