// Scale smoke test (tier-1): greedy on a 100 000-node instance must be
// routine for the flat engine.  This is the suite that catches a
// throughput regression — the reference run_sync engine is deliberately
// not exercised at this size (it is orders of magnitude slower), so a
// slowdown in the flat path shows up directly as a ctest timeout.
#include "local/flat_engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>

#include "algo/greedy.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "verify/matching.hpp"

namespace dmm {
namespace {

constexpr int kNodes = 100000;
constexpr int kPalette = 4;

graph::EdgeColouredGraph big_instance() {
  Rng rng(20120716);  // PODC'12
  return graph::random_coloured_graph(kNodes, kPalette, 0.8, rng);
}

TEST(EngineScale, GreedyHundredThousandNodes) {
  const graph::EdgeColouredGraph g = big_instance();
  ASSERT_EQ(g.node_count(), kNodes);
  const local::RunResult run =
      local::run_flat(g, algo::greedy_program_factory(), kPalette + 1);
  // Lemma 1 at scale: everyone halts by round k-1, and at this size some
  // node needs every round.
  EXPECT_EQ(run.rounds, kPalette - 1);
  // Constant-size messages (remark after Theorem 2).
  EXPECT_EQ(run.max_message_bytes, 1u);
  // The outputs are the greedy matching, exactly.
  EXPECT_EQ(run.outputs, algo::greedy_outputs(g));
  EXPECT_TRUE(verify::check_outputs(g, run.outputs).ok());
}

// The bench_scale row (ISSUE 4): greedy at n = 10⁷ on the flat engine with
// arena-pooled programs.  Too heavy for the tier-1 loop, so it runs only
// when DMM_SCALE_TESTS is set — the nightly CI leg does
// `DMM_SCALE_TESTS=1 ctest -L scale` (tests/CMakeLists.txt labels this
// suite `scale`).
TEST(EngineScale, GreedyTenMillionNodes) {
  if (std::getenv("DMM_SCALE_TESTS") == nullptr) {
    GTEST_SKIP() << "set DMM_SCALE_TESTS=1 to run the n = 10^7 scale smoke";
  }
  constexpr std::int64_t kBig = 10'000'000;
  Rng rng(20120716);
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(kBig, kPalette, 0.5, rng);
  ASSERT_EQ(g.node_count(), kBig);
  const auto start = std::chrono::steady_clock::now();
  const local::RunResult run =
      local::run_flat(g, algo::greedy_program_factory(), kPalette + 1);
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count());
  EXPECT_EQ(run.rounds, kPalette - 1);
  EXPECT_EQ(run.max_message_bytes, 1u);
  EXPECT_EQ(run.outputs, algo::greedy_outputs(g));
  EXPECT_TRUE(verify::check_outputs(g, run.outputs).ok());
  // The acceptance gauge: with pooled construction, setup (programs +
  // init) must no longer be the dominant phase of the run.
  EXPECT_LT(run.init_ns, wall_ns / 2)
      << "init " << run.init_ns / 1e6 << " ms of " << wall_ns / 1e6 << " ms total";
}

TEST(EngineScale, ThreadedRunIsIdentical) {
  const graph::EdgeColouredGraph g = big_instance();
  const local::RunResult serial =
      local::run_flat(g, algo::greedy_program_factory(), kPalette + 1);
  local::FlatEngineOptions options;
  options.threads = 4;
  const local::RunResult threaded =
      local::run_flat(g, algo::greedy_program_factory(), kPalette + 1, options);
  EXPECT_EQ(serial.outputs, threaded.outputs);
  EXPECT_EQ(serial.halt_round, threaded.halt_round);
  EXPECT_EQ(serial.rounds, threaded.rounds);
  EXPECT_EQ(serial.max_message_bytes, threaded.max_message_bytes);
  EXPECT_EQ(serial.total_message_bytes, threaded.total_message_bytes);
  EXPECT_EQ(serial.messages_sent, threaded.messages_sent);
}

}  // namespace
}  // namespace dmm
