// Scale smoke test (tier-1): greedy on a 100 000-node instance must be
// routine for the flat engine.  This is the suite that catches a
// throughput regression — the reference run_sync engine is deliberately
// not exercised at this size (it is orders of magnitude slower), so a
// slowdown in the flat path shows up directly as a ctest timeout.
#include "local/flat_engine.hpp"

#include <gtest/gtest.h>

#include "algo/greedy.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "verify/matching.hpp"

namespace dmm {
namespace {

constexpr int kNodes = 100000;
constexpr int kPalette = 4;

graph::EdgeColouredGraph big_instance() {
  Rng rng(20120716);  // PODC'12
  return graph::random_coloured_graph(kNodes, kPalette, 0.8, rng);
}

TEST(EngineScale, GreedyHundredThousandNodes) {
  const graph::EdgeColouredGraph g = big_instance();
  ASSERT_EQ(g.node_count(), kNodes);
  const local::RunResult run =
      local::run_flat(g, algo::greedy_program_factory(), kPalette + 1);
  // Lemma 1 at scale: everyone halts by round k-1, and at this size some
  // node needs every round.
  EXPECT_EQ(run.rounds, kPalette - 1);
  // Constant-size messages (remark after Theorem 2).
  EXPECT_EQ(run.max_message_bytes, 1u);
  // The outputs are the greedy matching, exactly.
  EXPECT_EQ(run.outputs, algo::greedy_outputs(g));
  EXPECT_TRUE(verify::check_outputs(g, run.outputs).ok());
}

TEST(EngineScale, ThreadedRunIsIdentical) {
  const graph::EdgeColouredGraph g = big_instance();
  const local::RunResult serial =
      local::run_flat(g, algo::greedy_program_factory(), kPalette + 1);
  local::FlatEngineOptions options;
  options.threads = 4;
  const local::RunResult threaded =
      local::run_flat(g, algo::greedy_program_factory(), kPalette + 1, options);
  EXPECT_EQ(serial.outputs, threaded.outputs);
  EXPECT_EQ(serial.halt_round, threaded.halt_round);
  EXPECT_EQ(serial.rounds, threaded.rounds);
  EXPECT_EQ(serial.max_message_bytes, threaded.max_message_bytes);
  EXPECT_EQ(serial.total_message_bytes, threaded.total_message_bytes);
  EXPECT_EQ(serial.messages_sent, threaded.messages_sent);
}

}  // namespace
}  // namespace dmm
