// Colour systems (§2.2): prefix closure, C(V, v), restriction, re-rooting
// (Lemma 3), pruning, grafting, balls and canonical serialisation.
#include "colsys/colour_system.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace dmm::colsys {
namespace {

using gk::Word;

/// Random exact colour system on k colours with roughly `target` nodes.
ColourSystem random_system(Rng& rng, int k, int target) {
  ColourSystem out(k, kExactRadius);
  std::vector<NodeId> pool{ColourSystem::root()};
  while (out.size() < target) {
    const NodeId v = pool[rng.index(pool.size())];
    const gk::Colour c = static_cast<gk::Colour>(rng.uniform(1, k));
    if (out.parent_colour(v) != c && out.child(v, c) == kNullNode) {
      pool.push_back(out.add_child(v, c));
    }
  }
  return out;
}

TEST(ColourSystem, SingletonBasics) {
  ColourSystem z(4);
  EXPECT_EQ(z.size(), 1);
  EXPECT_TRUE(z.is_exact());
  EXPECT_EQ(z.degree(ColourSystem::root()), 0);
  EXPECT_TRUE(z.colours_at(ColourSystem::root()).empty());
  EXPECT_EQ(z.word_of(ColourSystem::root()), Word{});
}

TEST(ColourSystem, AddChildMaintainsWords) {
  ColourSystem v(4);
  const NodeId a = v.add_child(ColourSystem::root(), 2);
  const NodeId b = v.add_child(a, 3);
  EXPECT_EQ(v.word_of(b).str(), "2.3");
  EXPECT_EQ(v.depth(b), 2);
  EXPECT_EQ(v.parent(b), a);
  EXPECT_EQ(v.parent_colour(b), 3);
  EXPECT_EQ(v.find(Word::parse("2.3")), b);
  EXPECT_EQ(v.find(Word::parse("3")), kNullNode);
}

TEST(ColourSystem, AddChildRejectsUnreducedAndDuplicates) {
  ColourSystem v(4);
  const NodeId a = v.add_child(ColourSystem::root(), 2);
  EXPECT_THROW(v.add_child(a, 2), std::logic_error);       // word would not be reduced
  EXPECT_THROW(v.add_child(ColourSystem::root(), 2), std::logic_error);  // duplicate slot
  EXPECT_THROW(v.add_child(a, 0), std::invalid_argument);
  EXPECT_THROW(v.add_child(a, 5), std::invalid_argument);
}

TEST(ColourSystem, ColoursAtIncludesParentColour) {
  ColourSystem v = path_system(4, {1, 2, 3});
  const NodeId mid = v.find(Word::parse("1.2"));
  const std::vector<gk::Colour> c = v.colours_at(mid);
  EXPECT_EQ(c, (std::vector<gk::Colour>{2, 3}));
  EXPECT_EQ(v.degree(mid), 2);
}

TEST(ColourSystem, PrefixClosureByConstruction) {
  // Every node's pred is present: walking towards e never leaves V (§2.2).
  Rng rng(31);
  ColourSystem v = random_system(rng, 5, 200);
  for (NodeId n = 0; n < v.size(); ++n) {
    Word w = v.word_of(n);
    while (!w.is_identity()) {
      w = w.pred();
      EXPECT_NE(v.find(w), kNullNode);
    }
  }
}

TEST(ColourSystem, CayleyBallIsKRegular) {
  const ColourSystem g = cayley_ball(3, 4);
  EXPECT_TRUE(g.is_regular(3));
  EXPECT_EQ(g.valid_radius(), 4);
  // |Γ_3[4]| = 1 + 3 + 3*2 + 3*4 + 3*8 = 46.
  EXPECT_EQ(g.size(), 46);
}

TEST(ColourSystem, RegularSystemDegrees) {
  const ColourSystem v = regular_system(5, 3, 5);
  EXPECT_TRUE(v.is_regular(3));
  for (NodeId n : v.nodes_up_to(4)) {
    EXPECT_EQ(v.degree(n), 3);
  }
}

TEST(ColourSystem, RegularSystemZeroIsSingleton) {
  const ColourSystem v = regular_system(4, 0, 7);
  EXPECT_EQ(v.size(), 1);
  EXPECT_TRUE(v.is_exact());
}

TEST(ColourSystem, RestrictedKeepsExactlyTheBall) {
  const ColourSystem g = cayley_ball(3, 5);
  const ColourSystem h = g.restricted(2);
  EXPECT_TRUE(h.is_exact());
  EXPECT_EQ(h.size(), 1 + 3 + 6);
  for (NodeId n = 0; n < h.size(); ++n) EXPECT_LE(h.depth(n), 2);
}

TEST(ColourSystem, RestrictedBeyondTruncationThrows) {
  const ColourSystem g = cayley_ball(3, 3);
  EXPECT_THROW(g.restricted(4), std::logic_error);
  EXPECT_NO_THROW(g.restricted(3));
}

TEST(ColourSystem, RerootedIsIsomorphicTranslation) {
  // Lemma 3: x -> ūx is an isomorphism from Γ_k(V) to Γ_k(ūV).
  Rng rng(37);
  for (int trial = 0; trial < 20; ++trial) {
    ColourSystem v = random_system(rng, 4, 60);
    const NodeId y = static_cast<NodeId>(rng.index(static_cast<std::size_t>(v.size())));
    std::vector<NodeId> map;
    const ColourSystem w = v.rerooted(y, &map);
    ASSERT_EQ(w.size(), v.size());
    const Word u_bar = v.word_of(y).inverse();
    for (NodeId n = 0; n < v.size(); ++n) {
      ASSERT_NE(map[static_cast<std::size_t>(n)], kNullNode);
      // The relabelled node carries the translated word.
      EXPECT_EQ(w.word_of(map[static_cast<std::size_t>(n)]), u_bar * v.word_of(n));
      // Degrees (adjacency) are preserved.
      EXPECT_EQ(w.degree(map[static_cast<std::size_t>(n)]), v.degree(n));
    }
  }
}

TEST(ColourSystem, RerootedTwiceReturnsHome) {
  Rng rng(41);
  ColourSystem v = random_system(rng, 4, 50);
  const NodeId y = static_cast<NodeId>(rng.index(static_cast<std::size_t>(v.size())));
  std::vector<NodeId> map;
  const ColourSystem w = v.rerooted(y, &map);
  // Find e's image and re-root back.
  const NodeId e_in_w = map[0];
  const ColourSystem v2 = w.rerooted(e_in_w);
  EXPECT_TRUE(ColourSystem::equal_to_radius(v, v2, 64));
}

TEST(ColourSystem, RerootedTruncationAccounting) {
  const ColourSystem g = cayley_ball(3, 6);
  const NodeId y = g.find(Word::parse("1.2"));
  ASSERT_NE(y, kNullNode);
  const ColourSystem h = g.rerooted(y);
  EXPECT_EQ(h.valid_radius(), 4);
}

TEST(ColourSystem, PrunedDropsExactlyTheSubtree) {
  // prune(V, c) = {v ∈ V - e : head(v) != c} + e (§2.2).
  const ColourSystem g = cayley_ball(3, 3);
  std::vector<NodeId> map;
  const ColourSystem p = g.pruned(2, &map);
  for (NodeId n = 0; n < g.size(); ++n) {
    const Word w = g.word_of(n);
    const bool kept = w.is_identity() || w.head() != 2;
    EXPECT_EQ(map[static_cast<std::size_t>(n)] != kNullNode, kept) << w.str();
  }
  // Root degree drops by one, all other interior degrees unchanged.
  EXPECT_EQ(p.degree(ColourSystem::root()), 2);
}

TEST(ColourSystem, PrunedRegularityStatement) {
  // If V is d-regular then prune(V, c) has deg(u) = d except deg(e) = d-1.
  const ColourSystem g = cayley_ball(4, 4);
  const ColourSystem p = g.pruned(1);
  EXPECT_EQ(p.degree(ColourSystem::root()), 3);
  for (NodeId n = 1; n < p.size(); ++n) {
    if (p.depth(n) < p.valid_radius()) {
      EXPECT_EQ(p.degree(n), 4);
    }
  }
}

TEST(ColourSystem, GraftedSplicesSubtrees) {
  // X = K's tree with its c-subtree replaced by L's c-subtree.
  ColourSystem k_sys = path_system(4, {1});
  k_sys.add_child(ColourSystem::root(), 2);  // K has subtrees 1 and 2
  ColourSystem l_sys(4);
  const NodeId l1 = l_sys.add_child(ColourSystem::root(), 2);
  l_sys.add_child(l1, 3);  // L's 2-subtree is deeper

  std::vector<NodeId> self_map, other_map;
  const ColourSystem x = k_sys.grafted(2, l_sys, &self_map, &other_map);
  EXPECT_NE(x.find(Word::parse("1")), kNullNode);       // kept from K
  EXPECT_NE(x.find(Word::parse("2.3")), kNullNode);     // grafted from L
  EXPECT_EQ(x.size(), 4);                               // e, 1, 2, 2.3
  // Maps point where they should.
  EXPECT_EQ(x.word_of(other_map[static_cast<std::size_t>(l1)]).str(), "2");
}

TEST(ColourSystem, GraftedRequiresDonorSubtree) {
  ColourSystem a = path_system(3, {1});
  ColourSystem b = path_system(3, {1});
  EXPECT_THROW(a.grafted(2, b), std::logic_error);
}

TEST(ColourSystem, BallIsTheLocalView) {
  // (v̄V)[h] around a path's midpoint.
  const ColourSystem v = path_system(4, {1, 2, 3, 4});
  const NodeId mid = v.find(Word::parse("1.2"));
  const ColourSystem ball = v.ball(mid, 1);
  EXPECT_EQ(ball.size(), 3);  // mid + two neighbours
  const ColourSystem ball2 = v.ball(mid, 2);
  EXPECT_EQ(ball2.size(), 5);
}

TEST(ColourSystem, BallRespectsTruncationBudget) {
  const ColourSystem g = cayley_ball(3, 4);
  const NodeId n = g.find(Word::parse("1.2"));
  EXPECT_NO_THROW(g.ball(n, 2));
  EXPECT_THROW(g.ball(n, 3), std::logic_error);
}

TEST(ColourSystem, SerializeDistinguishesTrees) {
  const ColourSystem a = path_system(4, {1, 2});
  const ColourSystem b = path_system(4, {1, 3});
  EXPECT_NE(a.serialize(2), b.serialize(2));
  EXPECT_EQ(a.serialize(1), b.serialize(1));  // differ only at depth 2
}

TEST(ColourSystem, EqualToRadiusMatchesPaperNotation) {
  // U[h] = V[h] as used in Theorem 5.
  const ColourSystem u = cayley_ball(3, 4);
  ColourSystem v = cayley_ball(3, 4);
  EXPECT_TRUE(ColourSystem::equal_to_radius(u, v, 4));
  // Modify v at depth 4 only: equal up to 3, different at 4.
  const ColourSystem v3 = v.restricted(3);
  EXPECT_TRUE(ColourSystem::equal_to_radius(u, v3, 3));
  EXPECT_FALSE(ColourSystem::equal_to_radius(u, v3, 4));
}

TEST(ColourSystem, SerializeCanonicalUnderInsertionOrder) {
  // The same tree built in different child orders serialises identically.
  ColourSystem a(4);
  a.add_child(ColourSystem::root(), 1);
  a.add_child(ColourSystem::root(), 3);
  ColourSystem b(4);
  b.add_child(ColourSystem::root(), 3);
  b.add_child(ColourSystem::root(), 1);
  EXPECT_EQ(a.serialize(2), b.serialize(2));
}

TEST(ColourSystem, PathSystemRejectsRepeatedColour) {
  EXPECT_THROW(path_system(3, {1, 1}), std::logic_error);
}

TEST(ColourSystem, NodesUpToIsBfsOrdered) {
  const ColourSystem g = cayley_ball(3, 3);
  int last_depth = 0;
  for (NodeId n : g.nodes_up_to(3)) {
    EXPECT_GE(g.depth(n), last_depth);
    last_depth = g.depth(n);
  }
}

}  // namespace
}  // namespace dmm::colsys
