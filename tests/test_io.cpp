// DOT export and text serialisation: round trips, independent re-checking
// of archived certificates, error handling on malformed input — plus the
// binary checkpoint frame layer: checksummed round trips, exhaustive
// byte-flip corruption fuzz, and the bounds-checked payload readers.
#include "io/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "algo/truncated_greedy.hpp"
#include "graph/generators.hpp"
#include "io/dot.hpp"
#include "lower/adversary.hpp"

namespace dmm::io {
namespace {

TEST(Serialize, GraphRoundTrip) {
  Rng rng(1101);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::EdgeColouredGraph g = graph::random_coloured_graph(
        static_cast<int>(rng.uniform(2, 40)), static_cast<int>(rng.uniform(1, 6)), 0.7, rng);
    const graph::EdgeColouredGraph back = read_graph(write_graph(g));
    EXPECT_EQ(back.node_count(), g.node_count());
    EXPECT_EQ(back.k(), g.k());
    ASSERT_EQ(back.edge_count(), g.edge_count());
    for (int i = 0; i < g.edge_count(); ++i) {
      EXPECT_EQ(back.edges()[static_cast<std::size_t>(i)].u, g.edges()[static_cast<std::size_t>(i)].u);
      EXPECT_EQ(back.edges()[static_cast<std::size_t>(i)].colour,
                g.edges()[static_cast<std::size_t>(i)].colour);
    }
  }
}

TEST(Serialize, SystemRoundTripPreservesIdsAndRadius) {
  const colsys::ColourSystem g = colsys::cayley_ball(3, 4);
  const colsys::ColourSystem back = read_system(write_system(g));
  EXPECT_EQ(back.size(), g.size());
  EXPECT_EQ(back.valid_radius(), g.valid_radius());
  EXPECT_TRUE(colsys::ColourSystem::equal_to_radius(back, g, 4));
  // NodeIds survive (parents precede children in the format).
  for (colsys::NodeId v = 0; v < g.size(); ++v) {
    EXPECT_EQ(back.word_of(v), g.word_of(v));
  }
}

TEST(Serialize, ExactSystemStaysExact) {
  const colsys::ColourSystem g = colsys::path_system(4, {1, 2, 3});
  const colsys::ColourSystem back = read_system(write_system(g));
  EXPECT_TRUE(back.is_exact());
}

TEST(Serialize, TemplateRoundTrip) {
  colsys::ColourSystem edge(4);
  edge.add_child(colsys::ColourSystem::root(), 2);
  const lower::Template tmpl(edge, {1, 3}, 1);
  const lower::Template back = read_template(write_template(tmpl));
  EXPECT_EQ(back.h(), 1);
  EXPECT_EQ(back.tau(0), 1);
  EXPECT_EQ(back.tau(1), 3);
  EXPECT_TRUE(colsys::ColourSystem::equal_to_radius(back.tree(), tmpl.tree(), 1));
}

TEST(Serialize, CertificateRoundTripAndRecheck) {
  // Produce a real refutation, archive it, read it back, re-verify it
  // against a *fresh* evaluator — the full paper trail.
  const algo::TruncatedGreedy fast(4, 2);
  const lower::LowerBoundResult result = lower::run_adversary(4, fast);
  ASSERT_TRUE(result.refuted());
  const lower::Certificate& original = std::get<lower::Certificate>(result.outcome);

  const std::string archived = write_certificate(original);
  const lower::Certificate restored = read_certificate(archived);
  EXPECT_EQ(restored.kind, original.kind);
  EXPECT_EQ(restored.node, original.node);
  EXPECT_EQ(restored.colour, original.colour);
  EXPECT_EQ(restored.detail, original.detail);

  lower::Evaluator fresh(fast);
  EXPECT_TRUE(lower::certificate_holds(restored, fresh));
}

TEST(Serialize, FuzzRoundTripRandomSystems) {
  Rng rng(1103);
  for (int trial = 0; trial < 20; ++trial) {
    // Random exact trees of varying k.
    const int k = static_cast<int>(rng.uniform(2, 6));
    colsys::ColourSystem sys(k);
    std::vector<colsys::NodeId> pool{colsys::ColourSystem::root()};
    const int target = static_cast<int>(rng.uniform(1, 50));
    for (int step = 0; step < target * 4 && sys.size() < target; ++step) {
      const colsys::NodeId v = pool[rng.index(pool.size())];
      const gk::Colour c = static_cast<gk::Colour>(rng.uniform(1, k));
      if (sys.parent_colour(v) != c && sys.child(v, c) == colsys::kNullNode) {
        pool.push_back(sys.add_child(v, c));
      }
    }
    const colsys::ColourSystem back = read_system(write_system(sys));
    ASSERT_EQ(back.size(), sys.size());
    for (colsys::NodeId v = 0; v < sys.size(); ++v) {
      EXPECT_EQ(back.word_of(v), sys.word_of(v));
    }
  }
}

TEST(Serialize, TruncatedSystemKeepsRadius) {
  const colsys::ColourSystem g = colsys::regular_system(4, 3, 5);
  const colsys::ColourSystem back = read_system(write_system(g));
  EXPECT_FALSE(back.is_exact());
  EXPECT_EQ(back.valid_radius(), 5);
  EXPECT_TRUE(back.is_regular(3));
}

TEST(Serialize, MalformedInputRejected) {
  EXPECT_THROW(read_graph("nonsense"), std::runtime_error);
  EXPECT_THROW(read_graph("dmm-graph 2\nn 1 k 1\n"), std::runtime_error);
  EXPECT_THROW(read_system("dmm-system 1\nk 3 valid exact\nq 0 1\n"), std::runtime_error);
  EXPECT_THROW(read_template("dmm-template 1\nh 1\n"), std::runtime_error);
  EXPECT_THROW(read_certificate("dmm-certificate 1\nkind X\n"), std::runtime_error);
}

TEST(Frame, RoundTripPreservesTypeVersionPayload) {
  std::stringstream stream;
  write_frame(stream, "TSTA", 7, "hello frame");
  write_frame(stream, "TSTB", 1, "");  // empty payloads are legal
  const Frame a = read_frame(stream);
  EXPECT_EQ(a.type, "TSTA");
  EXPECT_EQ(a.version, 7u);
  EXPECT_EQ(a.payload, "hello frame");
  const Frame b = read_frame(stream, "TSTB");
  EXPECT_EQ(b.version, 1u);
  EXPECT_TRUE(b.payload.empty());
}

TEST(Frame, TypeMismatchRejected) {
  std::stringstream stream;
  write_frame(stream, "TSTA", 1, "x");
  EXPECT_THROW(read_frame(stream, "TSTB"), CorruptFrameError);
}

TEST(Frame, EveryByteFlipIsDetected) {
  // The headline corruption guarantee: damage *anywhere* in a frame —
  // magic, type, version, length, payload, checksum — is detected, never
  // silently accepted with the original content.
  std::stringstream clean;
  write_frame(clean, "TSTC", 3, "fault-injection payload \x01\x02\x03");
  const std::string bytes = clean.str();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const unsigned char flip : {0x01u, 0x80u, 0xffu}) {
      std::string damaged = bytes;
      damaged[i] = static_cast<char>(static_cast<unsigned char>(damaged[i]) ^ flip);
      std::istringstream in(damaged);
      try {
        const Frame frame = read_frame(in, "TSTC");
        // A flip inside the length prefix can only *pass* the checksum if it
        // reproduced the original frame — impossible for a non-zero flip.
        ADD_FAILURE() << "byte " << i << " flip 0x" << std::hex << static_cast<int>(flip)
                      << " accepted; payload size " << frame.payload.size();
      } catch (const CorruptFrameError&) {
        // expected
      }
    }
  }
}

TEST(Frame, TruncationAtEveryPrefixIsDetected) {
  std::stringstream clean;
  write_frame(clean, "TSTD", 1, "truncate me");
  const std::string bytes = clean.str();
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    std::istringstream in(bytes.substr(0, keep));
    EXPECT_THROW(read_frame(in), CorruptFrameError) << "prefix " << keep;
  }
}

TEST(Frame, OversizedLengthPrefixRejectedBeforeAllocation) {
  // Hand-build a header claiming a payload beyond kMaxFramePayload: the
  // reader must reject it from the length field alone (no 1-GiB allocation,
  // no attempt to slurp the stream).
  std::string bytes = "DMMFTSTE";
  bytes.append(4, '\0');  // version 0
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<char>((kMaxFramePayload + 1) >> (8 * i)));
  }
  std::istringstream in(bytes);
  EXPECT_THROW(read_frame(in), CorruptFrameError);
}

TEST(ByteLayer, VarintAndSvarintRoundTrip) {
  ByteWriter w;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 0xffffffffull, ~0ull};
  const std::int64_t signed_values[] = {0, -1, 1, -64, 64, -1000000, 1000000};
  for (std::uint64_t v : values) w.varint(v);
  for (std::int64_t v : signed_values) w.svarint(v);
  w.u8(0xab);
  w.bytes("tail");
  ByteReader r(w.buffer());
  for (std::uint64_t v : values) EXPECT_EQ(r.varint(), v);
  for (std::int64_t v : signed_values) EXPECT_EQ(r.svarint(), v);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.bytes(), "tail");
  EXPECT_TRUE(r.done());
  r.expect_done("round trip");
}

TEST(ByteLayer, TruncatedReadsThrow) {
  ByteReader empty("");
  EXPECT_THROW(empty.u8(), CorruptFrameError);
  ByteReader unterminated("\xff\xff\xff");  // varint with no final byte
  EXPECT_THROW(unterminated.varint(), CorruptFrameError);
}

TEST(ByteLayer, ByteRunLengthPrefixBeyondBufferThrows) {
  ByteWriter w;
  w.varint(100);  // length prefix promising 100 bytes...
  std::string payload = w.take();
  payload += "only a few";  // ...but far fewer present
  ByteReader r(payload);
  EXPECT_THROW(r.bytes(), CorruptFrameError);
}

TEST(ByteLayer, TrailingGarbageRejectedByExpectDone) {
  ByteWriter w;
  w.varint(5);
  w.u8(9);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.varint(), 5u);
  EXPECT_THROW(r.expect_done("partial"), CorruptFrameError);
}

TEST(ByteLayer, OverlongVarintRejected) {
  // 11 continuation bytes: more than any 64-bit value needs.
  const std::string overlong(11, '\x80');
  ByteReader r(overlong);
  EXPECT_THROW(r.varint(), CorruptFrameError);
}

TEST(Dot, GraphExportMentionsAllEdges) {
  const graph::EdgeColouredGraph g = graph::path_graph(3, {1, 2, 3});
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph instance {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -- n3"), std::string::npos);
  EXPECT_NE(dot.find("label=\"3\""), std::string::npos);
}

TEST(Dot, SystemExportUsesWords) {
  const colsys::ColourSystem g = colsys::cayley_ball(3, 2);
  const std::string dot = to_dot(g, 2);
  EXPECT_NE(dot.find("label=\"e\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"1.2\""), std::string::npos);
}

TEST(Dot, TemplateExportShowsTau) {
  colsys::ColourSystem edge(4);
  edge.add_child(colsys::ColourSystem::root(), 2);
  const lower::Template tmpl(edge, {1, 3}, 1);
  const std::string dot = to_dot(tmpl, 1);
  EXPECT_NE(dot.find("tau=1"), std::string::npos);
  EXPECT_NE(dot.find("tau=3"), std::string::npos);
}

}  // namespace
}  // namespace dmm::io
