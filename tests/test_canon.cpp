// Equivalence suite for the canonical-form rewrite of the lower-bound
// pipeline.  The seed implementations of enumerate_views and
// compatible_pairs (cross-product tree copies; map keyed on re-serialised
// byte vectors) are reproduced here verbatim as references, and the
// interned pipeline is pinned to them byte for byte: identical view
// catalogues (content *and* order — view ids are load-bearing), identical
// pair vectors, identical CSP verdicts serial vs threaded, and identical
// run_adversary outcomes with interning on/off and with a worker pool.
#include "colsys/canon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "algo/greedy.hpp"
#include "algo/truncated_greedy.hpp"
#include "lower/adversary.hpp"
#include "nbhd/csp.hpp"

namespace dmm {
namespace {

using colsys::CanonicalStore;
using colsys::ColourSystem;
using colsys::ViewId;
using gk::Colour;

// ---------------------------------------------------------------------------
// Seed reference implementations (PR 2 state of src/nbhd/views.cpp).
// ---------------------------------------------------------------------------

void reference_subsets(int k, int count, Colour forced,
                       std::vector<std::vector<Colour>>& out) {
  std::vector<Colour> pool;
  for (Colour c = 1; c <= k; ++c) {
    if (c != forced) pool.push_back(c);
  }
  const int pick = forced == gk::kNoColour ? count : count - 1;
  if (pick < 0 || pick > static_cast<int>(pool.size())) return;
  std::vector<int> idx(static_cast<std::size_t>(pick));
  for (int i = 0; i < pick; ++i) idx[static_cast<std::size_t>(i)] = i;
  while (true) {
    std::vector<Colour> chosen;
    if (forced != gk::kNoColour) chosen.push_back(forced);
    for (int i : idx) chosen.push_back(pool[static_cast<std::size_t>(i)]);
    std::sort(chosen.begin(), chosen.end());
    out.push_back(std::move(chosen));
    int i = pick - 1;
    while (i >= 0 &&
           idx[static_cast<std::size_t>(i)] == static_cast<int>(pool.size()) - pick + i) {
      --i;
    }
    if (i < 0) break;
    ++idx[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < pick; ++j) {
      idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

nbhd::ViewCatalogue reference_enumerate_views(int k, int d, int rho) {
  nbhd::ViewCatalogue catalogue;
  catalogue.k = k;
  catalogue.d = d;
  catalogue.rho = rho;
  std::vector<ColourSystem> frontier{ColourSystem(k, colsys::kExactRadius)};
  for (int depth = 0; depth < rho; ++depth) {
    std::vector<ColourSystem> next;
    for (const ColourSystem& tree : frontier) {
      std::vector<colsys::NodeId> level;
      for (colsys::NodeId v : tree.nodes_up_to(depth)) {
        if (tree.depth(v) == depth) level.push_back(v);
      }
      std::vector<std::vector<std::vector<Colour>>> options(level.size());
      for (std::size_t i = 0; i < level.size(); ++i) {
        const Colour parent_colour = tree.parent_colour(level[i]);
        std::vector<std::vector<Colour>> sets;
        if (depth == 0) {
          reference_subsets(k, d, gk::kNoColour, sets);
        } else {
          std::vector<std::vector<Colour>> with;
          reference_subsets(k, d, parent_colour, with);
          for (auto& s : with) {
            s.erase(std::remove(s.begin(), s.end(), parent_colour), s.end());
            sets.push_back(std::move(s));
          }
        }
        options[i] = std::move(sets);
      }
      std::vector<std::size_t> pick(level.size(), 0);
      while (true) {
        ColourSystem grown = tree;
        for (std::size_t i = 0; i < level.size(); ++i) {
          for (Colour c : options[i][pick[i]]) grown.add_child(level[i], c);
        }
        next.push_back(std::move(grown));
        std::size_t i = 0;
        while (i < level.size() && ++pick[i] == options[i].size()) {
          pick[i] = 0;
          ++i;
        }
        if (i == level.size()) break;
      }
    }
    frontier = std::move(next);
  }
  std::set<std::vector<std::uint8_t>> seen;
  for (ColourSystem& view : frontier) {
    if (seen.insert(view.serialize(rho)).second) {
      catalogue.views.push_back(std::move(view));
    }
  }
  return catalogue;
}

std::vector<nbhd::CompatiblePair> reference_compatible_pairs(
    const nbhd::ViewCatalogue& catalogue) {
  const int rho = catalogue.rho;
  struct Halves {
    std::vector<std::uint8_t> across;
    std::vector<std::uint8_t> remainder;
    bool has_colour = false;
  };
  std::vector<std::vector<Halves>> halves(static_cast<std::size_t>(catalogue.size()));
  std::map<std::pair<Colour, std::vector<std::uint8_t>>, std::vector<int>> by_remainder;
  for (int a = 0; a < catalogue.size(); ++a) {
    auto& mine = halves[static_cast<std::size_t>(a)];
    mine.resize(static_cast<std::size_t>(catalogue.k) + 1);
    const ColourSystem& view = catalogue.views[static_cast<std::size_t>(a)];
    for (Colour c = 1; c <= catalogue.k; ++c) {
      const colsys::NodeId child = view.child(ColourSystem::root(), c);
      if (child == colsys::kNullNode) continue;
      Halves& h = mine[c];
      h.has_colour = true;
      h.across = view.rerooted(child).pruned(c).restricted(rho - 1).serialize(rho - 1);
      h.remainder = view.pruned(c).restricted(rho - 1).serialize(rho - 1);
      by_remainder[{c, h.remainder}].push_back(a);
    }
  }
  std::vector<nbhd::CompatiblePair> out;
  for (int a = 0; a < catalogue.size(); ++a) {
    for (Colour c = 1; c <= catalogue.k; ++c) {
      const Halves& ha = halves[static_cast<std::size_t>(a)][c];
      if (!ha.has_colour) continue;
      const auto it = by_remainder.find({c, ha.across});
      if (it == by_remainder.end()) continue;
      for (int b : it->second) {
        if (b < a) continue;
        const Halves& hb = halves[static_cast<std::size_t>(b)][c];
        if (hb.across == ha.remainder) out.push_back({a, b, c});
      }
    }
  }
  return out;
}

// The parameter grid small enough for the O(frontier²) reference.
struct Grid {
  int k, d, rho;
};
const Grid kGrid[] = {{3, 2, 1}, {3, 2, 2}, {3, 2, 3}, {4, 3, 1}, {4, 3, 2},
                      {4, 2, 2}, {3, 3, 2}, {5, 4, 1}, {5, 4, 2}, {4, 1, 2}};

// ---------------------------------------------------------------------------
// CanonicalStore unit behaviour.
// ---------------------------------------------------------------------------

TEST(CanonicalStore, InternsDenselyAndDeduplicates) {
  CanonicalStore store;
  const std::vector<std::uint8_t> a{1, 2, 3}, b{1, 2, 4}, c{1, 2, 3};
  EXPECT_EQ(store.intern(a), 0);
  EXPECT_EQ(store.intern(b), 1);
  EXPECT_EQ(store.intern(c), 0);  // same bytes, same id
  EXPECT_EQ(store.size(), 2);
  EXPECT_EQ(store.bytes(0), a);
  EXPECT_EQ(store.bytes(1), b);
  EXPECT_EQ(store.find(a), 0);
  EXPECT_EQ(store.find({9, 9}), colsys::kNullView);
  EXPECT_GT(store.resident_bytes(), a.size() + b.size());
  EXPECT_THROW(store.bytes(2), std::out_of_range);
}

TEST(CanonicalStore, InternByTreeMatchesSerialize) {
  CanonicalStore store;
  const ColourSystem ball = colsys::cayley_ball(3, 2);
  const ViewId id = store.intern(ball, 2);
  EXPECT_EQ(store.bytes(id), ball.serialize(2));
  EXPECT_EQ(store.intern(ball, 2), id);
  // A different radius is a different canonical form.
  EXPECT_NE(store.intern(ball, 1), id);
}

TEST(TransformCache, StoresPerColourEntries) {
  colsys::TransformCache cache(3);
  EXPECT_EQ(cache.get(0, 1), colsys::kUncachedView);
  cache.put(0, 1, 7);
  cache.put(2, 3, colsys::kNullView);  // "no transform" is a cached value
  EXPECT_EQ(cache.get(0, 1), 7);
  EXPECT_EQ(cache.get(2, 3), colsys::kNullView);
  EXPECT_EQ(cache.get(1, 2), colsys::kUncachedView);
}

// ---------------------------------------------------------------------------
// Subtree serialisation against the tree-surgery composition it replaces.
// ---------------------------------------------------------------------------

TEST(SubtreeSerialisation, MatchesRerootPruneRestrictComposition) {
  for (const Grid& g : kGrid) {
    if (g.rho < 2) continue;
    const nbhd::ViewCatalogue cat = nbhd::enumerate_views(g.k, g.d, g.rho);
    for (int a = 0; a < std::min(cat.size(), 40); ++a) {
      const ColourSystem& view = cat.views[static_cast<std::size_t>(a)];
      for (Colour c = 1; c <= g.k; ++c) {
        const colsys::NodeId child = view.child(ColourSystem::root(), c);
        if (child == colsys::kNullNode) continue;
        std::vector<std::uint8_t> across, remainder;
        view.serialize_subtree_into(child, gk::kNoColour, g.rho - 1, across);
        view.serialize_subtree_into(ColourSystem::root(), c, g.rho - 1, remainder);
        EXPECT_EQ(across,
                  view.rerooted(child).pruned(c).restricted(g.rho - 1).serialize(g.rho - 1));
        EXPECT_EQ(remainder, view.pruned(c).restricted(g.rho - 1).serialize(g.rho - 1));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Catalogue and pair equivalence against the seed pipeline.
// ---------------------------------------------------------------------------

TEST(InternedPipeline, CataloguesAreByteIdenticalToSeed) {
  for (const Grid& g : kGrid) {
    const nbhd::ViewCatalogue seed = reference_enumerate_views(g.k, g.d, g.rho);
    const nbhd::ViewCatalogue now = nbhd::enumerate_views(g.k, g.d, g.rho);
    ASSERT_EQ(now.size(), seed.size()) << "k=" << g.k << " d=" << g.d << " rho=" << g.rho;
    for (int i = 0; i < now.size(); ++i) {
      EXPECT_EQ(now.views[static_cast<std::size_t>(i)].serialize(g.rho),
                seed.views[static_cast<std::size_t>(i)].serialize(g.rho))
          << "view " << i << " at k=" << g.k << " d=" << g.d << " rho=" << g.rho;
    }
  }
}

TEST(InternedPipeline, PairVectorsAreIdenticalToSeed) {
  for (const Grid& g : kGrid) {
    const nbhd::ViewCatalogue cat = nbhd::enumerate_views(g.k, g.d, g.rho);
    const auto seed = reference_compatible_pairs(cat);
    const auto now = nbhd::compatible_pairs(cat);
    ASSERT_EQ(now.size(), seed.size()) << "k=" << g.k << " d=" << g.d << " rho=" << g.rho;
    for (std::size_t i = 0; i < now.size(); ++i) {
      EXPECT_EQ(now[i].a, seed[i].a);
      EXPECT_EQ(now[i].b, seed[i].b);
      EXPECT_EQ(now[i].colour, seed[i].colour);
    }
  }
}

TEST(InternedPipeline, GoldenCatalogueAndPairCounts) {
  // The k = 4, rho = 3 row — the seed's 20-second frontier, now in tier-1.
  const nbhd::ViewCatalogue cat = nbhd::enumerate_views(4, 3, 3);
  EXPECT_EQ(cat.size(), 78732);
  EXPECT_EQ(nbhd::compatible_pairs(cat).size(), 9570312u);
  // The k = 5 frontier row.
  const nbhd::ViewCatalogue k5 = nbhd::enumerate_views(5, 4, 2);
  EXPECT_EQ(k5.size(), 1280);
  EXPECT_EQ(nbhd::compatible_pairs(k5).size(), 164480u);
}

TEST(InternedPipeline, BlowupGuardIsArithmetic) {
  // The seed materialised up to max_views trees before throwing (~45 s at
  // k = 5, rho = 3); the count is now closed-form, so the guard must fire
  // without enumerating anything.  A wall-clock assertion would be flaky;
  // instead note that this test completing at all (on the 5.5e12-view
  // catalogue) proves the guard no longer marches through memory.
  EXPECT_THROW(nbhd::enumerate_views(5, 4, 3), std::runtime_error);
  EXPECT_THROW(nbhd::enumerate_views(4, 3, 3, /*max_views=*/10), std::runtime_error);
  EXPECT_NO_THROW(nbhd::enumerate_views(4, 3, 2, /*max_views=*/108));
  // The root level alone can blow the budget (rho = 1 has no deeper
  // levels, so the check must not live only inside the level loop).
  EXPECT_THROW(nbhd::enumerate_views(4, 3, 1, /*max_views=*/3), std::runtime_error);
  EXPECT_NO_THROW(nbhd::enumerate_views(4, 3, 1, /*max_views=*/4));
}

// ---------------------------------------------------------------------------
// CSP: serial vs threaded, and labelling validity.
// ---------------------------------------------------------------------------

TEST(CspEquivalence, SerialAndThreadedAgree) {
  for (const Grid& g : kGrid) {
    const nbhd::ViewCatalogue cat = nbhd::enumerate_views(g.k, g.d, g.rho);
    const auto pairs = nbhd::compatible_pairs(cat);
    const nbhd::CspResult serial = nbhd::solve(cat, pairs, {.threads = 1});
    for (int threads : {2, 4}) {
      const nbhd::CspResult parallel = nbhd::solve(cat, pairs, {.threads = threads});
      EXPECT_EQ(parallel.satisfiable, serial.satisfiable)
          << "k=" << g.k << " d=" << g.d << " rho=" << g.rho << " threads=" << threads;
      // The winning branch is the lowest SAT value of the root variable in
      // both modes, so the labelling itself is deterministic.
      EXPECT_EQ(parallel.labelling, serial.labelling);
    }
    if (serial.satisfiable) {
      EXPECT_FALSE(nbhd::check_labelling(cat, serial.labelling).has_value());
    }
  }
}

TEST(CspEquivalence, PairReuseOverloadMatches) {
  const nbhd::ViewCatalogue cat = nbhd::enumerate_views(3, 2, 3);
  const auto pairs = nbhd::compatible_pairs(cat);
  const nbhd::CspResult direct = nbhd::solve(cat);
  const nbhd::CspResult reused = nbhd::solve(cat, pairs);
  EXPECT_EQ(direct.satisfiable, reused.satisfiable);
  EXPECT_EQ(direct.labelling, reused.labelling);
  EXPECT_EQ(direct.nodes_explored, reused.nodes_explored);
}

TEST(CspEquivalence, VerdictFrontierMatchesTheorem5) {
  // UNSAT below rho = k, SAT at rho = k (d = k-1): the machine-checked form
  // of the k-1 lower bound, still intact after the rewrite.
  EXPECT_FALSE(nbhd::solve(nbhd::enumerate_views(3, 2, 2)).satisfiable);
  EXPECT_TRUE(nbhd::solve(nbhd::enumerate_views(3, 2, 3)).satisfiable);
  EXPECT_FALSE(nbhd::solve(nbhd::enumerate_views(4, 3, 2)).satisfiable);
  EXPECT_FALSE(nbhd::solve(nbhd::enumerate_views(5, 4, 2)).satisfiable);
}

// ~2 s: the full k = 4, rho = 3 frontier (78 732 views, ~9.6M constraints)
// — the row the canonical-form rewrite brought from ~20 s into tier-1
// reach.  UNSAT here is "no 2-round algorithm exists for k = 4".
TEST(CspEquivalence, NoTwoRoundAlgorithmK4InTierOne) {
  const nbhd::ViewCatalogue cat = nbhd::enumerate_views(4, 3, 3);
  const auto pairs = nbhd::compatible_pairs(cat);
  EXPECT_FALSE(nbhd::solve(cat, pairs).satisfiable);
}

// ---------------------------------------------------------------------------
// Adversary: interning on/off and worker pool on/off change nothing.
// ---------------------------------------------------------------------------

std::string tight_pair_fingerprint(const lower::LowerBoundResult& result) {
  const auto* tp = std::get_if<lower::TightPair>(&result.outcome);
  if (!tp) return "not tight";
  const auto u = tp->u.tree().serialize(tp->d);
  const auto v = tp->v.tree().serialize(tp->d);
  std::string out(u.begin(), u.end());
  out += "|";
  out.append(v.begin(), v.end());
  out += "|" + std::to_string(static_cast<int>(tp->out_u)) + "|" +
         std::to_string(static_cast<int>(tp->out_v)) + "|" + std::to_string(tp->d);
  return out;
}

TEST(AdversaryEquivalence, MemoOnOffIdenticalOutcomes) {
  for (int k = 3; k <= 4; ++k) {
    const algo::GreedyLocal greedy(k);
    const lower::LowerBoundResult with = lower::run_adversary(k, greedy, {.memoise = true});
    const lower::LowerBoundResult without = lower::run_adversary(k, greedy, {.memoise = false});
    ASSERT_TRUE(with.tight()) << "k=" << k;
    ASSERT_TRUE(without.tight()) << "k=" << k;
    EXPECT_EQ(tight_pair_fingerprint(with), tight_pair_fingerprint(without)) << "k=" << k;
    // The memo reports its shape; without memoisation it stays empty.
    EXPECT_GT(with.stats.memo_entries, 0u);
    EXPECT_GT(with.stats.memo_bytes, 0u);
    EXPECT_EQ(without.stats.memo_entries, 0u);
    EXPECT_EQ(without.stats.memo_hits, 0u);
  }
}

TEST(AdversaryEquivalence, OrbitMemoIdenticalOutcomes) {
  // The colour-permutation orbit memo (ISSUE 5) may change only the memo's
  // shape, never an outcome: greedy is *not* colour-equivariant, so the
  // evaluator keeps one answer per (orbit, coset) — the fingerprints are
  // bit-identical with orbits on and off, while the interned byte store
  // shrinks to one key per orbit.
  for (int k = 3; k <= 4; ++k) {
    const algo::GreedyLocal greedy(k);
    const lower::LowerBoundResult plain = lower::run_adversary(k, greedy, {.orbits = false});
    const lower::LowerBoundResult orbit = lower::run_adversary(k, greedy, {.orbits = true});
    ASSERT_TRUE(plain.tight()) << "k=" << k;
    ASSERT_TRUE(orbit.tight()) << "k=" << k;
    EXPECT_EQ(tight_pair_fingerprint(orbit), tight_pair_fingerprint(plain)) << "k=" << k;
    // Same distinct views evaluated, same stored answers — only the key
    // space is quotiented.
    EXPECT_EQ(orbit.stats.evaluations, plain.stats.evaluations);
    EXPECT_EQ(orbit.stats.memo_entries, plain.stats.memo_entries);
    EXPECT_GT(orbit.stats.orbits, 0u);
    EXPECT_LT(orbit.stats.orbits, orbit.stats.memo_entries);
    EXPECT_EQ(plain.stats.orbits, 0u);
    EXPECT_NE(orbit.summary().find("orbits"), std::string::npos);
  }
  // Refutations survive the orbit memo too.
  const algo::TruncatedGreedy fast(4, 1);
  const lower::LowerBoundResult refuted = lower::run_adversary(4, fast, {.orbits = true});
  ASSERT_TRUE(refuted.refuted());
  lower::Evaluator eval(fast);
  EXPECT_TRUE(lower::certificate_holds(std::get<lower::Certificate>(refuted.outcome), eval));
}

TEST(AdversaryEquivalence, WorkerPoolIdenticalOutcomes) {
  for (int k = 3; k <= 4; ++k) {
    const algo::GreedyLocal greedy(k);
    const lower::LowerBoundResult serial = lower::run_adversary(k, greedy, {.threads = 1});
    const lower::LowerBoundResult pooled = lower::run_adversary(k, greedy, {.threads = 4});
    ASSERT_TRUE(serial.tight());
    ASSERT_TRUE(pooled.tight());
    EXPECT_EQ(tight_pair_fingerprint(serial), tight_pair_fingerprint(pooled)) << "k=" << k;
    EXPECT_EQ(pooled.stats.threads, 4);
  }
}

TEST(AdversaryEquivalence, RefutationsSurviveTheRewrite) {
  // Too-fast algorithms are still refuted with re-checkable certificates,
  // with or without the worker pool.
  for (int threads : {1, 2}) {
    const algo::TruncatedGreedy fast(4, 1);
    const lower::LowerBoundResult result =
        lower::run_adversary(4, fast, {.threads = threads});
    ASSERT_TRUE(result.refuted()) << "threads=" << threads;
    lower::Evaluator eval(fast);
    EXPECT_TRUE(
        lower::certificate_holds(std::get<lower::Certificate>(result.outcome), eval));
  }
}

TEST(AdversaryEquivalence, SummaryReportsMemoShape) {
  const algo::GreedyLocal greedy(3);
  const lower::LowerBoundResult result = lower::run_adversary(3, greedy);
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("memo entries"), std::string::npos);
  EXPECT_NE(summary.find("KiB resident"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Evaluator: the direct realisation-view serialisation is byte-identical
// to materialising the ball and serialising it.
// ---------------------------------------------------------------------------

TEST(Evaluator, DirectSerialisationMatchesBallSerialisation) {
  const algo::GreedyLocal greedy(4);
  lower::Evaluator eval(greedy);
  // A 1-template with a non-trivial tree: the base-case edge system.
  ColourSystem tree(4, colsys::kExactRadius);
  tree.add_child(ColourSystem::root(), 2);
  const lower::Template tmpl(std::move(tree), {1, 1}, 1);
  for (colsys::NodeId t = 0; t < tmpl.tree().size(); ++t) {
    for (int radius = 0; radius <= 3; ++radius) {
      std::vector<std::uint8_t> direct;
      lower::serialize_realisation_into(tmpl, t, radius, direct);
      EXPECT_EQ(direct, lower::realisation_ball(tmpl, t, radius).serialize(radius))
          << "t=" << t << " radius=" << radius;
    }
  }
}

}  // namespace
}  // namespace dmm
