// Templates (§3.2): validity, free colours, transport of τ through tree
// surgeries, and the (C1)/(C2) compatibility predicate of §3.7.
#include "lower/template.hpp"

#include <gtest/gtest.h>

namespace dmm::lower {
namespace {

TEST(Template, ZeroTemplateShape) {
  Template z(ColourSystem(4), {2}, 0);
  EXPECT_EQ(z.h(), 0);
  EXPECT_EQ(z.tau(ColourSystem::root()), 2);
  EXPECT_EQ(z.free_colours(ColourSystem::root()), (std::vector<Colour>{1, 3, 4}));
  EXPECT_EQ(z.open_colours(ColourSystem::root()), (std::vector<Colour>{1, 3, 4}));
}

TEST(Template, RejectsTauIncidentToNode) {
  ColourSystem edge(4);
  edge.add_child(ColourSystem::root(), 2);
  // τ(e) = 2 collides with the incident edge of colour 2.
  EXPECT_THROW(Template(edge, {2, 1}, 1), std::invalid_argument);
  EXPECT_NO_THROW(Template(edge, {1, 1}, 1));
}

TEST(Template, RejectsTauOutOfRange) {
  EXPECT_THROW(Template(ColourSystem(4), {0}, 0), std::invalid_argument);
  EXPECT_THROW(Template(ColourSystem(4), {5}, 0), std::invalid_argument);
}

TEST(Template, RejectsNonRegularTree) {
  ColourSystem path = colsys::path_system(4, {1, 2});
  // Interior node has degree 2, endpoints degree 1: not 1-regular.
  EXPECT_THROW(Template(path, {3, 3, 3}, 1), std::invalid_argument);
}

TEST(Template, RejectsSizeMismatch) {
  EXPECT_THROW(Template(ColourSystem(4), {1, 1}, 0), std::invalid_argument);
}

TEST(Template, FreeColoursCountForHTemplate) {
  // An h-template over [k] has |F| = k - h - 1 everywhere (interior).
  const int k = 5, h = 3;
  ColourSystem tree = colsys::regular_system(k, h, 3);
  std::vector<Colour> tau;
  for (NodeId t = 0; t < tree.size(); ++t) {
    // The largest colour not incident works as τ for this builder (it uses
    // the smallest colours first).
    Colour forbidden = static_cast<Colour>(k);
    while (tree.neighbour(t, forbidden) != colsys::kNullNode) --forbidden;
    tau.push_back(forbidden);
  }
  const Template tmpl(tree, tau, h);
  for (NodeId t : tree.nodes_up_to(2)) {
    EXPECT_EQ(static_cast<int>(tmpl.free_colours(t).size()), k - h - 1);
    EXPECT_EQ(static_cast<int>(tmpl.open_colours(t).size()), k - 1);
  }
}

TEST(Template, RerootedTransportsTau) {
  ColourSystem edge(4);
  const NodeId child = edge.add_child(ColourSystem::root(), 2);
  Template t(edge, {1, 3}, 1);
  const Template r = t.rerooted(child);
  // After re-rooting at the child, the root's τ is the child's old τ.
  EXPECT_EQ(r.tau(ColourSystem::root()), 3);
  const NodeId new_child = r.tree().find(gk::Word::generator(2));
  ASSERT_NE(new_child, colsys::kNullNode);
  EXPECT_EQ(r.tau(new_child), 1);
}

TEST(Template, RestrictedTransportsTau) {
  ColourSystem tree = colsys::path_system(4, {1});
  Template t(tree, {2, 2}, 1);
  const Template cut = t.restricted(1, 1);
  EXPECT_EQ(cut.tree().size(), 2);
  EXPECT_EQ(cut.tau(ColourSystem::root()), 2);
}

TEST(Compatible, C1AndC2) {
  // Two single-edge templates with equal trees: compatibility at h = 1
  // needs σ[0] = τ[0], i.e. equal τ at the root only.
  ColourSystem edge(4);
  edge.add_child(ColourSystem::root(), 2);
  const Template a(edge, {1, 1}, 1);
  const Template b(edge, {1, 3}, 1);  // same τ(e), different τ(c2)
  const Template c(edge, {3, 3}, 1);  // different τ(e)
  EXPECT_TRUE(compatible(a, b, 1));
  EXPECT_FALSE(compatible(a, c, 1));
  // At h = 2 the τ of depth-1 nodes matters too.
  EXPECT_FALSE(compatible(a, b, 2));
}

TEST(Compatible, DifferentTreesFail) {
  ColourSystem e1(4), e2(4);
  e1.add_child(ColourSystem::root(), 2);
  e2.add_child(ColourSystem::root(), 3);
  EXPECT_FALSE(compatible(Template(e1, {1, 1}, 1), Template(e2, {1, 1}, 1), 1));
}

TEST(Template, MakeUncheckedSkipsValidation) {
  // Used internally for by-construction-valid results; it must not throw
  // even for data the checked constructor would reject.
  ColourSystem edge(4);
  edge.add_child(ColourSystem::root(), 2);
  EXPECT_NO_THROW(make_template_unchecked(edge, {2, 1}, 1));
}

}  // namespace
}  // namespace dmm::lower
