// The (M1)(M2)(M3) output checker (§2.4): each property caught separately.
#include "verify/matching.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dmm::verify {
namespace {

graph::EdgeColouredGraph triangle_ish() {
  // Path 0 -1- 1 -2- 2 plus a pendant 2 -3- 3.
  return graph::path_graph(3, {1, 2, 3});
}

TEST(Verify, AcceptsValidMatching) {
  const auto g = triangle_ish();
  // Edge 1 matched, edge 3 matched: maximal.
  const std::vector<Colour> outputs{1, 1, 3, 3};
  EXPECT_TRUE(check_outputs(g, outputs).ok());
}

TEST(Verify, M1NonIncidentColour) {
  const auto g = triangle_ish();
  const std::vector<Colour> outputs{3, 1, 3, 3};  // node 0 has no colour-3 edge
  const MatchingReport r = check_outputs(g, outputs);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Violation::Kind::M1));
}

TEST(Verify, M2PartnerDisagrees) {
  const auto g = triangle_ish();
  const std::vector<Colour> outputs{1, 2, 2, local::kUnmatched};
  // Node 0 says 1 but node 1 says 2: M2 at node 0; also M3 on edge 3? node
  // 2 matched, node 3 unmatched -> fine.
  const MatchingReport r = check_outputs(g, outputs);
  EXPECT_TRUE(r.has(Violation::Kind::M2));
}

TEST(Verify, M3UnmatchedNeighbours) {
  const auto g = triangle_ish();
  const std::vector<Colour> outputs{1, 1, local::kUnmatched, local::kUnmatched};
  const MatchingReport r = check_outputs(g, outputs);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Violation::Kind::M3));
  EXPECT_FALSE(r.has(Violation::Kind::M1));
  EXPECT_FALSE(r.has(Violation::Kind::M2));
}

TEST(Verify, AllUnmatchedOnEdgelessGraphIsFine) {
  const graph::EdgeColouredGraph g(3, 2);
  EXPECT_TRUE(check_outputs(g, {local::kUnmatched, local::kUnmatched, local::kUnmatched}).ok());
}

TEST(Verify, SizeMismatchRejected) {
  const auto g = triangle_ish();
  EXPECT_FALSE(check_outputs(g, {1, 1}).ok());
}

TEST(Verify, MatchedEdgesExtraction) {
  const auto g = triangle_ish();
  const std::vector<Colour> outputs{1, 1, 3, 3};
  const auto edges = matched_edges(g, outputs);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_TRUE(is_matching(g, edges));
  EXPECT_TRUE(is_maximal_matching(g, edges));
}

TEST(Verify, IsMatchingRejectsSharedEndpoints) {
  const auto g = triangle_ish();
  std::vector<graph::Edge> both{g.edges()[0], g.edges()[1]};  // share node 1
  EXPECT_FALSE(is_matching(g, both));
  EXPECT_FALSE(is_maximal_matching(g, both));
}

TEST(Verify, IsMaximalMatchingRejectsExtendable) {
  const auto g = triangle_ish();
  // Only the middle edge (colour 2): edge 1... no wait, matching {edge 2}
  // blocks edges 1 and 3?  Edge 2 covers nodes 1 and 2, so edges 1 (0-1)
  // and 3 (2-3) are blocked: maximal.  Use the empty matching instead.
  EXPECT_FALSE(is_maximal_matching(g, {}));
  EXPECT_TRUE(is_maximal_matching(g, {g.edges()[1]}));
}

TEST(Verify, ViolationDescribeMentionsKindAndNode) {
  const auto g = triangle_ish();
  const MatchingReport r = check_outputs(g, {3, 1, 3, 3});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.describe().find("M1"), std::string::npos);
}

}  // namespace
}  // namespace dmm::verify
