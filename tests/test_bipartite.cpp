// The bipartite proposal algorithm (§1.1, [6]): maximality, the O(Δ)
// round bound, and input validation.
#include "algo/bipartite_matching.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "verify/matching.hpp"

namespace dmm::algo {
namespace {

std::vector<bool> side_split(int n_left, int total) {
  std::vector<bool> white(static_cast<std::size_t>(total), false);
  for (int i = 0; i < n_left; ++i) white[static_cast<std::size_t>(i)] = true;
  return white;
}

TEST(BipartiteProposal, SingleEdge) {
  graph::EdgeColouredGraph g(2, 1);
  g.add_edge(0, 1, 1);
  const BipartiteMatchingResult r = bipartite_proposal_matching(g, {true, false});
  EXPECT_EQ(r.outputs[0], 1);
  EXPECT_EQ(r.outputs[1], 1);
  EXPECT_EQ(r.rounds, 2);
}

TEST(BipartiteProposal, CompleteBipartiteIsPerfectlyMatched) {
  for (int d = 1; d <= 6; ++d) {
    const graph::EdgeColouredGraph g = graph::complete_bipartite(d);
    const BipartiteMatchingResult r =
        bipartite_proposal_matching(g, side_split(d, g.node_count()));
    EXPECT_TRUE(verify::check_outputs(g, r.outputs).ok());
    // K_{d,d} has a perfect matching and the proposal algorithm finds one
    // (every white eventually lands).
    for (gk::Colour c : r.outputs) EXPECT_NE(c, local::kUnmatched);
  }
}

TEST(BipartiteProposal, MaximalOnRandomInstances) {
  Rng rng(1301);
  for (int trial = 0; trial < 25; ++trial) {
    const int nl = static_cast<int>(rng.uniform(1, 20));
    const int nr = static_cast<int>(rng.uniform(1, 20));
    const int k = static_cast<int>(rng.uniform(1, 7));
    const graph::EdgeColouredGraph g = random_bipartite(nl, nr, k, 0.7, rng);
    const BipartiteMatchingResult r =
        bipartite_proposal_matching(g, side_split(nl, g.node_count()));
    const verify::MatchingReport report = verify::check_outputs(g, r.outputs);
    EXPECT_TRUE(report.ok()) << report.describe();
  }
}

TEST(BipartiteProposal, RoundBoundTwoDelta) {
  Rng rng(1303);
  for (int trial = 0; trial < 15; ++trial) {
    const graph::EdgeColouredGraph g = random_bipartite(15, 15, 6, 0.9, rng);
    const BipartiteMatchingResult r =
        bipartite_proposal_matching(g, side_split(15, g.node_count()));
    EXPECT_LE(r.rounds, 2 * g.max_degree());
  }
}

TEST(BipartiteProposal, RoundsIndependentOfK) {
  // Degree 1 per white node regardless of k: two rounds, done — the O(Δ)
  // bound really is about Δ, not k.
  Rng rng(1307);
  for (int k : {2, 8, 32}) {
    graph::EdgeColouredGraph g(2 * k, k);
    for (int i = 0; i < k; ++i) {
      g.add_edge(i, k + i, static_cast<gk::Colour>(i + 1));
    }
    const BipartiteMatchingResult r = bipartite_proposal_matching(g, side_split(k, 2 * k));
    EXPECT_EQ(r.rounds, 2) << "k=" << k;
    EXPECT_TRUE(verify::check_outputs(g, r.outputs).ok());
  }
}

TEST(BipartiteProposal, RejectsNonBipartiteInput) {
  graph::EdgeColouredGraph g = graph::path_graph(3, {1, 2, 3});
  EXPECT_THROW(bipartite_proposal_matching(g, {true, true, false, false}),
               std::invalid_argument);
  EXPECT_THROW(bipartite_proposal_matching(g, {true, false}), std::invalid_argument);
}

TEST(BipartiteProposal, EdgelessGraph) {
  const graph::EdgeColouredGraph g(4, 2);
  const BipartiteMatchingResult r = bipartite_proposal_matching(g, side_split(2, 4));
  EXPECT_EQ(r.rounds, 0);
  EXPECT_TRUE(verify::check_outputs(g, r.outputs).ok());
}

TEST(RandomBipartite, GeneratorRespectsStructure) {
  Rng rng(1309);
  const graph::EdgeColouredGraph g = random_bipartite(10, 14, 5, 0.8, rng);
  EXPECT_TRUE(g.is_properly_coloured());
  for (const graph::Edge& e : g.edges()) {
    const bool u_left = e.u < 10;
    const bool v_left = e.v < 10;
    EXPECT_NE(u_left, v_left);
  }
}

}  // namespace
}  // namespace dmm::algo
