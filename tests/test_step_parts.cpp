// The §3.9 intermediate objects, tested directly against the paper's
// observations (a)-(h) and the Lemma 12 parity facts:
//
//   (f)/(g)  M(K, κ) and M(L, λ) are perfect matchings (checked near),
//   (h)      {e, χ} ∉ M(K, κ) but {e, χ} ∈ M(L, λ),
//   parity   |K₂| is even, |L₂| is odd, and the witness y of the actual
//            step lies in K₂ ∪ L₂.
#include <gtest/gtest.h>

#include "algo/greedy.hpp"
#include "lower/critical_pair.hpp"

namespace dmm::lower {
namespace {

struct StepFixture {
  int k;
  Evaluator eval;
  CriticalPair pair;
  int d_x;
  StepParts parts;

  static StepFixture make(int k, const local::LocalAlgorithm& algo) {
    Evaluator eval(algo);
    const auto colours = choose_lemma10_colours(k, eval);
    auto base = base_case(k, std::get<Lemma10Colours>(colours), eval);
    CriticalPair pair = std::get<CriticalPair>(std::move(base));
    const int r = algo.running_time();
    const int d_x = std::max(required_radius(k, 2, r) + r + 2, 2 * r + 4);
    auto parts = build_step_parts(pair, eval, d_x);
    return StepFixture{k, std::move(eval), std::move(pair), d_x,
                       std::get<StepParts>(std::move(parts))};
  }
};

TEST(StepParts, ObservationH_ChiEdgeMembership) {
  for (int k = 3; k <= 5; ++k) {
    const algo::GreedyLocal greedy(k);
    StepFixture f = StepFixture::make(k, greedy);
    const Colour chi = f.parts.chi;
    // {e, χ} ∈ M(L, λ): both ends of L's χ-edge output χ.
    const Template& L = f.parts.l.result;
    const colsys::NodeId chi_in_l = L.tree().child(colsys::ColourSystem::root(), chi);
    ASSERT_NE(chi_in_l, colsys::kNullNode);
    EXPECT_EQ(f.eval(L, colsys::ColourSystem::root()), chi);
    EXPECT_EQ(f.eval(L, chi_in_l), chi);
    // {e, χ} ∉ M(K, κ): K's root does not match along χ.
    const Template& K = f.parts.k.result;
    EXPECT_NE(f.eval(K, colsys::ColourSystem::root()), chi);
  }
}

TEST(StepParts, ObservationsFG_PerfectMatchingsNearTheRoot) {
  for (int k = 3; k <= 4; ++k) {
    const algo::GreedyLocal greedy(k);
    StepFixture f = StepFixture::make(k, greedy);
    const int r = greedy.running_time();
    for (const Template* side : {&f.parts.k.result, &f.parts.l.result}) {
      for (colsys::NodeId v : side->tree().nodes_up_to(r + 1)) {
        const Colour out = f.eval(*side, v);
        const auto incident = side->tree().colours_at(v);
        ASSERT_NE(std::find(incident.begin(), incident.end(), out), incident.end())
            << "k=" << k << " node " << side->tree().word_of(v).str();
        // (M2) pairing.
        EXPECT_EQ(f.eval(*side, side->tree().neighbour(v, out)), out);
      }
    }
  }
}

TEST(StepParts, SymmetryChiBarKEqualsK) {
  // Observation (e): χ̄K = K — K looks the same from both ends of the
  // χ-edge (they share their p-image).
  const algo::GreedyLocal greedy(4);
  StepFixture f = StepFixture::make(4, greedy);
  const Template& K = f.parts.k.result;
  const colsys::NodeId chi_node =
      K.tree().child(colsys::ColourSystem::root(), f.parts.chi);
  ASSERT_NE(chi_node, colsys::kNullNode);
  const Template flipped = K.rerooted(chi_node);
  const int radius = std::min(4, flipped.valid_radius());
  EXPECT_TRUE(colsys::ColourSystem::equal_to_radius(K.tree(), flipped.tree(), radius));
}

TEST(StepParts, Lemma12ParityFacts) {
  for (int k = 3; k <= 4; ++k) {
    const algo::GreedyLocal greedy(k);
    StepFixture f = StepFixture::make(k, greedy);
    const int r = greedy.running_time();
    const Lemma12Partition partition = lemma12_partition(f.parts, f.eval, r);
    EXPECT_EQ(partition.k2.size() % 2, 0u) << "k=" << k;   // even
    EXPECT_EQ(partition.l2.size() % 2, 1u) << "k=" << k;   // odd
  }
}

TEST(StepParts, WitnessLiesInKTwoUnionLTwo) {
  for (int k = 3; k <= 4; ++k) {
    const algo::GreedyLocal greedy(k);
    StepFixture f = StepFixture::make(k, greedy);
    const int r = greedy.running_time();
    const Lemma12Partition partition = lemma12_partition(f.parts, f.eval, r);
    // Run the real step to obtain y.
    StepTrace trace;
    const StepOutcome out =
        inductive_step(f.pair, f.eval, required_radius(k, 2, r), &trace);
    ASSERT_TRUE(std::holds_alternative<CriticalPair>(out));
    ASSERT_TRUE(trace.y_found);
    const colsys::NodeId y = f.parts.x.tree().find(trace.y);
    ASSERT_NE(y, colsys::kNullNode);
    const bool in_k2 =
        std::find(partition.k2.begin(), partition.k2.end(), y) != partition.k2.end();
    const bool in_l2 =
        std::find(partition.l2.begin(), partition.l2.end(), y) != partition.l2.end();
    EXPECT_TRUE(in_k2 || in_l2) << "k=" << k << " y=" << trace.y.str();
  }
}

TEST(StepParts, PairwiseHCompatibility) {
  // §3.9's second observation list: (X, ξ), (K, κ), (L, λ) are pairwise
  // h-compatible.
  for (int k = 3; k <= 4; ++k) {
    const algo::GreedyLocal greedy(k);
    StepFixture f = StepFixture::make(k, greedy);
    const int h = f.pair.level;
    EXPECT_TRUE(compatible(f.parts.x, f.parts.k.result, h)) << k;
    EXPECT_TRUE(compatible(f.parts.x, f.parts.l.result, h)) << k;
    EXPECT_TRUE(compatible(f.parts.k.result, f.parts.l.result, h)) << k;
  }
}

TEST(StepParts, RerootedHPlusOneCompatibility) {
  // (ȳX, ȳξ) and (ȳK, ȳκ) are (h+1)-compatible for y ∈ K₁ (and with L for
  // y ∈ L₁) — checked on a few near nodes of each side.
  const algo::GreedyLocal greedy(4);
  StepFixture f = StepFixture::make(4, greedy);
  const int h = f.pair.level;
  int checked = 0;
  for (colsys::NodeId y : f.parts.x.tree().nodes_up_to(1)) {
    const gk::Word w = f.parts.x.tree().word_of(y);
    const bool l_side = !w.is_identity() && w.head() == f.parts.chi;
    const Template& source = l_side ? f.parts.l.result : f.parts.k.result;
    const colsys::NodeId y_src = source.tree().find(w);
    ASSERT_NE(y_src, colsys::kNullNode);
    EXPECT_TRUE(compatible(f.parts.x.rerooted(y), source.rerooted(y_src), h + 1))
        << w.str();
    ++checked;
  }
  EXPECT_GE(checked, 3);
}

TEST(StepParts, VerifyCriticalPairCatchesFabrications) {
  // Negative control for the (C1)-(C4) checker: a "pair" whose T-side root
  // output is an incident colour violates (C3).
  const algo::GreedyLocal greedy(4);
  Evaluator eval(greedy);
  // S = T = the single edge {e, 2} with τ ≡ 1: greedy matches everything
  // along colour 2 at the root, so A(T, τ, e) ∈ C(T, e): (C3) fails.
  colsys::ColourSystem edge(4);
  edge.add_child(colsys::ColourSystem::root(), 2);
  const Template t(edge, {1, 1}, 1);
  const CriticalPair fake{t, t, 1};
  const auto failure = verify_critical_pair(fake, eval, 1);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->find("(C3)"), std::string::npos);
}

TEST(StepParts, PickersAreValidOnTheExpandedRegion) {
  const algo::GreedyLocal greedy(4);
  StepFixture f = StepFixture::make(4, greedy);
  EXPECT_TRUE(is_valid_picker(f.pair.t, f.parts.q, 1, f.d_x - 1));
  EXPECT_TRUE(is_valid_picker(f.pair.s, f.parts.p, 1, f.d_x - 1));
  // P copies Q on the shared prefix (depth ≤ h-1 = 0: the root).
  EXPECT_EQ(f.parts.p.at(colsys::ColourSystem::root()),
            f.parts.q.at(colsys::ColourSystem::root()));
}

TEST(StepParts, XSplicesKAndL) {
  const algo::GreedyLocal greedy(4);
  StepFixture f = StepFixture::make(4, greedy);
  const Colour chi = f.parts.chi;
  const Template& X = f.parts.x;
  // X's non-χ root branches come from K; the χ-subtree comes from L.
  for (colsys::NodeId v : X.tree().nodes_up_to(3)) {
    const gk::Word w = X.tree().word_of(v);
    const bool l_side = !w.is_identity() && w.head() == chi;
    const Template& source = l_side ? f.parts.l.result : f.parts.k.result;
    const colsys::NodeId in_source = source.tree().find(w);
    ASSERT_NE(in_source, colsys::kNullNode) << w.str();
    EXPECT_EQ(X.tau(v), source.tau(in_source)) << w.str();
  }
}

}  // namespace
}  // namespace dmm::lower
