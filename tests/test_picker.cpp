// Colour pickers (§3.2): validity, canonical and full pickers, disjoint
// unions (the Lemma 8 setup).
#include "lower/picker.hpp"

#include <gtest/gtest.h>

namespace dmm::lower {
namespace {

Template one_template(int k) {
  ColourSystem edge(k);
  edge.add_child(ColourSystem::root(), 2);
  std::vector<Colour> tau(2, 1);
  return Template(edge, tau, 1);
}

TEST(Picker, CanonicalPickerIsValid) {
  const Template t = one_template(5);
  const Picker p = canonical_free_picker(t, 1);
  EXPECT_TRUE(is_valid_picker(t, p, 1, 1));
  // Smallest free colour at the root: F = {3,4,5} (1 is τ, 2 incident).
  EXPECT_EQ(p.at(ColourSystem::root()), (std::vector<Colour>{3}));
}

TEST(Picker, CanonicalPickerMultipleColours) {
  const Template t = one_template(6);
  const Picker p = canonical_free_picker(t, 2);
  EXPECT_TRUE(is_valid_picker(t, p, 2, 1));
  EXPECT_EQ(p.at(ColourSystem::root()), (std::vector<Colour>{3, 4}));
}

TEST(Picker, CanonicalPickerThrowsWhenTooGreedy) {
  const Template t = one_template(4);  // F has k-h-1 = 2 colours
  EXPECT_THROW(canonical_free_picker(t, 3), std::logic_error);
}

TEST(Picker, FullFreePickerTakesEverything) {
  const Template t = one_template(5);
  const Picker p = full_free_picker(t);
  EXPECT_EQ(p.at(ColourSystem::root()), t.free_colours(ColourSystem::root()));
  EXPECT_TRUE(is_valid_picker(t, p, 3, 1));
}

TEST(Picker, ValidityCatchesNonFreeChoice) {
  const Template t = one_template(5);
  Picker p = canonical_free_picker(t, 1);
  p.choices[0] = {2};  // colour 2 is incident, not free
  EXPECT_FALSE(is_valid_picker(t, p, 1, 1));
  p.choices[0] = {1};  // colour 1 is forbidden
  EXPECT_FALSE(is_valid_picker(t, p, 1, 1));
}

TEST(Picker, ValidityCatchesWrongArity) {
  const Template t = one_template(5);
  const Picker p = canonical_free_picker(t, 1);
  EXPECT_FALSE(is_valid_picker(t, p, 2, 1));
}

TEST(Picker, DisjointAndUnion) {
  const Template t = one_template(6);  // F = {3,4,5,6} at both nodes
  Picker p, q;
  p.choices = {{3}, {3}};
  q.choices = {{4}, {5}};
  EXPECT_TRUE(disjoint_pickers(p, q));
  const Picker r = union_picker(p, q);
  EXPECT_EQ(r.at(0), (std::vector<Colour>{3, 4}));
  EXPECT_EQ(r.at(1), (std::vector<Colour>{3, 5}));
  EXPECT_TRUE(is_valid_picker(t, r, 2, 1));
}

TEST(Picker, UnionRejectsOverlap) {
  Picker p, q;
  p.choices = {{3}};
  q.choices = {{3}};
  EXPECT_FALSE(disjoint_pickers(p, q));
  EXPECT_THROW(union_picker(p, q), std::invalid_argument);
}

}  // namespace
}  // namespace dmm::lower
