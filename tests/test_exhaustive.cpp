// Theorem 2's universal quantifier, brute-forced at small k: the adversary
// refutes *every single* 0-round algorithm.
//
//  * k = 2 (Lemma 4): all 12 M1-valid tables fail on one of T, U, V.
//  * k = 3 (Theorem 5): all 864 M1-valid tables are refuted with a
//    re-checkable certificate (none is even a correct maximal-matching
//    algorithm, let alone a fast one — exactly as the theorem demands,
//    since k-1 = 2 > 0 rounds are necessary).
//
// This is an independent end-to-end validation of the whole §3 machinery:
// if any lemma were implemented wrongly, some table would slip through.
#include <gtest/gtest.h>

#include "algo/zero_round_table.hpp"
#include "lower/adversary.hpp"

namespace dmm::lower {
namespace {

TEST(Exhaustive, CountFormula) {
  EXPECT_EQ(algo::zero_round_algorithm_count(1), 2u);    // ∅:1 × {1}:2
  EXPECT_EQ(algo::zero_round_algorithm_count(2), 12u);   // 1·2·2·3
  EXPECT_EQ(algo::zero_round_algorithm_count(3), 864u);  // 1·2³·3³·4
}

TEST(Exhaustive, EnumerationIsValidAndDistinct) {
  const std::uint64_t total = algo::zero_round_algorithm_count(3);
  std::set<std::vector<gk::Colour>> seen;
  for (std::uint64_t i = 0; i < total; ++i) {
    const algo::ZeroRoundTable a = algo::make_zero_round_algorithm(3, i);
    EXPECT_TRUE(seen.insert(a.table()).second) << "duplicate at index " << i;
  }
  EXPECT_EQ(seen.size(), total);
}

TEST(Exhaustive, Lemma4RefutesAllZeroRoundTablesK2) {
  const std::uint64_t total = algo::zero_round_algorithm_count(2);
  for (std::uint64_t i = 0; i < total; ++i) {
    const algo::ZeroRoundTable a = algo::make_zero_round_algorithm(2, i);
    const Lemma4Result result = run_lemma4(a);
    EXPECT_TRUE(result.contradiction_found) << "index " << i << ": " << a.name();
  }
}

TEST(Exhaustive, AdversaryRefutesAllZeroRoundTablesK3) {
  const std::uint64_t total = algo::zero_round_algorithm_count(3);
  std::uint64_t refuted = 0, inconclusive = 0, tight = 0;
  for (std::uint64_t i = 0; i < total; ++i) {
    const algo::ZeroRoundTable a = algo::make_zero_round_algorithm(3, i);
    const LowerBoundResult result = run_adversary(3, a);
    if (result.refuted()) {
      ++refuted;
      // Spot-check certificates (re-checking all 864 would be slow-ish but
      // fine; sample every 37th for suite speed).
      if (i % 37 == 0) {
        Evaluator fresh(a);
        EXPECT_TRUE(certificate_holds(std::get<Certificate>(result.outcome), fresh))
            << "index " << i;
      }
    } else if (result.tight()) {
      ++tight;
      ADD_FAILURE() << "0-round algorithm survived to a tight pair: " << a.name();
    } else {
      ++inconclusive;
      ADD_FAILURE() << "inconclusive for " << a.name() << ": " << result.summary();
    }
  }
  EXPECT_EQ(refuted, total);
  EXPECT_EQ(tight, 0u);
  EXPECT_EQ(inconclusive, 0u);
}

TEST(Exhaustive, TableRespectsM1ByConstruction) {
  EXPECT_THROW(algo::ZeroRoundTable(2, {0, 2, 0, 0}), std::invalid_argument);  // 2 ∉ {1}
  EXPECT_THROW(algo::ZeroRoundTable(2, {1, 0, 0, 0}), std::invalid_argument);  // 1 ∉ ∅
  EXPECT_NO_THROW(algo::ZeroRoundTable(2, {0, 1, 2, 1}));
}

}  // namespace
}  // namespace dmm::lower
