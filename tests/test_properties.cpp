// Cross-module property sweeps (parameterised): greedy correctness over a
// grid of (n, k, density) instance families, invariance of outputs under
// node relabelling (anonymity), and the Corollary 1 / §1.3 round-count
// facts on regular instances.
#include <gtest/gtest.h>

#include "algo/greedy.hpp"
#include "algo/truncated_greedy.hpp"
#include "graph/generators.hpp"
#include "local/view_engine.hpp"
#include "lower/adversary.hpp"
#include "verify/matching.hpp"

namespace dmm {
namespace {

struct InstanceParams {
  int n;
  int k;
  double density;
};

class GreedyGrid : public ::testing::TestWithParam<InstanceParams> {};

TEST_P(GreedyGrid, GreedyIsCorrectAndFast) {
  const InstanceParams p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p.n * 1000 + p.k * 10) +
          static_cast<std::uint64_t>(p.density * 7));
  for (int trial = 0; trial < 5; ++trial) {
    const graph::EdgeColouredGraph g = graph::random_coloured_graph(p.n, p.k, p.density, rng);
    const local::RunResult mp = local::run_sync(g, algo::greedy_program_factory(), p.k + 2);
    const verify::MatchingReport report = verify::check_outputs(g, mp.outputs);
    EXPECT_TRUE(report.ok()) << report.describe();
    EXPECT_LE(mp.rounds, p.k - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GreedyGrid,
    ::testing::Values(InstanceParams{8, 2, 0.5}, InstanceParams{8, 4, 0.9},
                      InstanceParams{24, 3, 0.3}, InstanceParams{24, 6, 0.7},
                      InstanceParams{64, 4, 0.5}, InstanceParams{64, 8, 0.9},
                      InstanceParams{128, 5, 0.2}, InstanceParams{128, 10, 0.8}),
    [](const ::testing::TestParamInfo<InstanceParams>& info) {
      return "n" + std::to_string(info.param.n) + "_k" + std::to_string(info.param.k) + "_d" +
             std::to_string(static_cast<int>(info.param.density * 10));
    });

TEST(Anonymity, OutputsInvariantUnderRelabelling) {
  // Permute node indices; per-node outputs must follow the permutation —
  // no algorithm in this library may depend on identifiers.
  Rng rng(701);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 30, k = 4;
    const graph::EdgeColouredGraph g = graph::random_coloured_graph(n, k, 0.8, rng);
    std::vector<graph::NodeIndex> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng.engine());
    graph::EdgeColouredGraph h(n, k);
    for (const graph::Edge& e : g.edges()) {
      h.add_edge(perm[static_cast<std::size_t>(e.u)], perm[static_cast<std::size_t>(e.v)],
                 e.colour);
    }
    const std::vector<gk::Colour> out_g = algo::greedy_outputs(g);
    const std::vector<gk::Colour> out_h = algo::greedy_outputs(h);
    for (graph::NodeIndex v = 0; v < n; ++v) {
      EXPECT_EQ(out_g[static_cast<std::size_t>(v)],
                out_h[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])]);
    }
  }
}

TEST(Corollary1, RegularInstanceRoundsScaleWithDegree) {
  // On the d-regular trees produced by the adversary (d = k-1), greedy
  // genuinely spends Θ(Δ) rounds: its horizon is k = Δ+1.
  for (int k = 3; k <= 4; ++k) {
    const algo::GreedyLocal greedy(k);
    const lower::LowerBoundResult result = lower::run_adversary(k, greedy);
    ASSERT_TRUE(result.tight());
    const lower::TightPair& tp = std::get<lower::TightPair>(result.outcome);
    EXPECT_TRUE(tp.u.tree().is_regular(k - 1));
    EXPECT_EQ(tp.d, k - 1);
  }
}

TEST(Section13, TrivialCaseDEqualsK) {
  // d = k: colour class 1 is a perfect matching; a 0-round algorithm
  // (FirstColour) solves these instances outright.
  for (int d = 2; d <= 5; ++d) {
    const graph::EdgeColouredGraph g = graph::hypercube(d);
    const algo::FirstColourLocal naive(d);
    const std::vector<gk::Colour> outputs = local::run_views(g, naive);
    EXPECT_TRUE(verify::check_outputs(g, outputs).ok());
  }
  for (int d = 1; d <= 5; ++d) {
    const graph::EdgeColouredGraph g = graph::complete_bipartite(d);
    const algo::FirstColourLocal naive(d);
    const std::vector<gk::Colour> outputs = local::run_views(g, naive);
    EXPECT_TRUE(verify::check_outputs(g, outputs).ok());
  }
}

TEST(Section13, FirstColourFailsOffTheTrivialCase) {
  // The same 0-round algorithm violates maximality on d = k-1 instances —
  // the lower bound's regime.
  const graph::WorstCase wc = graph::worst_case_chain(4);
  const algo::FirstColourLocal naive(4);
  const std::vector<gk::Colour> outputs = local::run_views(wc.long_path, naive);
  EXPECT_FALSE(verify::check_outputs(wc.long_path, outputs).ok());
}

TEST(TruncatedGreedy, AgreesWithGreedyWhenRadiusSuffices) {
  // For r >= k-1 the truncated greedy IS greedy.
  Rng rng(709);
  const int k = 4;
  const graph::EdgeColouredGraph g = graph::random_coloured_graph(40, k, 0.8, rng);
  const algo::TruncatedGreedy full(k, k - 1);
  const algo::GreedyLocal greedy(k);
  EXPECT_EQ(local::run_views(g, full), local::run_views(g, greedy));
}

TEST(TruncatedGreedy, ProducesM3ViolationsOnLongChains) {
  // r < k-1: on the worst-case chain the truncated view misleads the far
  // endpoint; a concrete non-maximal output appears.
  const int k = 5;
  const graph::WorstCase wc = graph::worst_case_chain(k);
  bool any_violation = false;
  for (int r = 0; r + 1 < k - 1; ++r) {
    const algo::TruncatedGreedy fast(k, r);
    const std::vector<gk::Colour> outputs = local::run_views(wc.long_path, fast);
    if (!verify::check_outputs(wc.long_path, outputs).ok()) any_violation = true;
  }
  EXPECT_TRUE(any_violation);
}

}  // namespace
}  // namespace dmm
