#include "lower/adversary.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "graph/generators.hpp"
#include "io/serialize.hpp"
#include "local/view_engine.hpp"

namespace dmm::lower {

namespace {

bool contains(const std::vector<Colour>& colours, Colour c) {
  return std::find(colours.begin(), colours.end(), c) != colours.end();
}

}  // namespace

std::string LowerBoundResult::summary() const {
  std::string out = "adversary vs " + algorithm + " (k=" + std::to_string(k) + "): ";
  if (const auto* tp = std::get_if<TightPair>(&outcome)) {
    out += "tight pair found — U[" + std::to_string(tp->d) + "] = V[" + std::to_string(tp->d) +
           "], A(U,e)=" + std::to_string(static_cast<int>(tp->out_u)) +
           ", A(V,e)=⊥ ⇒ running time ≥ " + std::to_string(tp->d) + " = k-1";
  } else if (const auto* cert = std::get_if<Certificate>(&outcome)) {
    out += "algorithm refuted — " + cert->describe();
  } else {
    out += "inconclusive — " + std::get<Inconclusive>(outcome).reason;
  }
  out += " [" + std::to_string(stats.evaluations) + " evaluations, " +
         std::to_string(stats.memo_hits) + " memo hits, " + std::to_string(stats.memo_entries) +
         " memo entries, " + std::to_string(stats.memo_bytes / 1024) + " KiB resident";
  if (stats.orbits > 0) out += ", " + std::to_string(stats.orbits) + " orbits";
  if (stats.threads > 1) out += ", " + std::to_string(stats.threads) + " threads";
  out += "]";
  return out;
}

std::optional<Certificate> hunt_violation(const Template& tmpl, Evaluator& eval,
                                          int norm_limit) {
  return hunt_violation(tmpl, eval, norm_limit, HuntControl{});
}

std::optional<Certificate> hunt_violation(const Template& tmpl, Evaluator& eval,
                                          int norm_limit, const HuntControl& control) {
  const int r = eval.algorithm().running_time();
  if (!tmpl.tree().is_exact()) {
    norm_limit = std::min(norm_limit, tmpl.valid_radius() - (r + 2));
  }
  const std::vector<NodeId> nodes = tmpl.tree().nodes_up_to(norm_limit);
  const std::size_t start = std::min(control.start_index, nodes.size());
  // Warm the memo in parallel; the serial sweep below still takes every
  // decision (and finds the same first breach, since answers are pure).
  eval.prefetch(tmpl, std::vector<NodeId>(nodes.begin() + static_cast<std::ptrdiff_t>(start),
                                          nodes.end()));
  for (std::size_t i = start; i < nodes.size(); ++i) {
    // Checkpoint *before* probing node i, so `continue` paths below cannot
    // skew the cadence: resuming at i re-probes exactly the unvisited tail.
    if (control.checkpoint_every > 0 && control.sink && i > start &&
        (i - start) % control.checkpoint_every == 0) {
      control.sink(i);
    }
    const NodeId v = nodes[i];
    CheckedOutput co = evaluate_checked(eval, tmpl, v);
    if (co.violation) return co.violation;
    const std::vector<Colour> incident = tmpl.tree().colours_at(v);
    if (co.output == local::kUnmatched) {
      const std::vector<Colour> free = tmpl.free_colours(v);
      if (!free.empty()) {
        return Certificate{Certificate::Kind::L9, tmpl, v, colsys::kNullNode, free.front(),
                           local::kUnmatched, local::kUnmatched,
                           "unmatched node with a free colour"};
      }
      for (Colour c : incident) {
        const NodeId u = tmpl.tree().neighbour(v, c);
        CheckedOutput cu = evaluate_checked(eval, tmpl, u);
        if (cu.violation) return cu.violation;
        if (cu.output == local::kUnmatched) {
          return Certificate{Certificate::Kind::M3, tmpl, v, u, c, local::kUnmatched,
                             local::kUnmatched, "two adjacent unmatched nodes"};
        }
      }
      continue;
    }
    if (!contains(incident, co.output)) continue;  // matched to a free copy: fine
    const NodeId u = tmpl.tree().neighbour(v, co.output);
    CheckedOutput cu = evaluate_checked(eval, tmpl, u);
    if (cu.violation) return cu.violation;
    if (cu.output != co.output) {
      return Certificate{Certificate::Kind::M2, tmpl, v, u, co.output, co.output, cu.output,
                         "matched edge claimed by one endpoint only"};
    }
  }
  return std::nullopt;
}

namespace {

/// Rough upper bound on the largest template materialised by a full run
/// with the given scan cap: at each level h the step builds (h+1)-regular
/// trees to its internal depth D_X.
double estimate_max_nodes(int k, int r, int cap) {
  const int d = k - 1;
  double worst = 1.0;
  int need = std::max(d, r + 1);
  for (int h = d - 1; h >= 1; --h) {
    const int dx = std::max(need + cap, cap + r + 2);
    // (h+1)-regular tree of depth dx: (h+1) * h^(dx-1) frontier-dominated.
    double nodes = static_cast<double>(h + 1);
    for (int i = 1; i < dx; ++i) nodes *= std::max(1, h);
    worst = std::max(worst, nodes);
    need = dx + r;
  }
  return worst;
}

}  // namespace

LowerBoundResult run_adversary(int k, const local::LocalAlgorithm& algorithm,
                               const AdversaryOptions& options) {
  if (k < 3) throw std::invalid_argument("run_adversary: needs k >= 3 (use run_lemma4)");
  const int d = k - 1;
  const int r = algorithm.running_time();

  LowerBoundResult result;
  result.k = k;
  result.algorithm = algorithm.name();

  Evaluator eval(algorithm, options.memoise, options.threads, options.orbits);
  auto finish = [&](std::variant<TightPair, Certificate, Inconclusive> outcome) {
    result.outcome = std::move(outcome);
    result.stats.evaluations = eval.evaluations();
    result.stats.memo_hits = eval.memo_hits();
    result.stats.memo_entries = eval.memo_entries();
    result.stats.orbits = eval.orbits();
    result.stats.memo_bytes = eval.memo_bytes();
    result.stats.threads = eval.threads();
    return result;
  };

  // §3.6: Lemma 10 colours.
  auto colours_or = choose_lemma10_colours(k, eval);
  if (std::holds_alternative<Certificate>(colours_or)) {
    return finish(std::get<Certificate>(std::move(colours_or)));
  }
  const Lemma10Colours colours = std::get<Lemma10Colours>(colours_or);

  // Scan-cap schedule: conservative only, or optimistic-then-growing.  The
  // memoised evaluator makes retries nearly free.
  std::vector<int> caps;
  if (options.optimistic) {
    for (int cap = 1; cap < r + 2; ++cap) caps.push_back(cap);
  }
  caps.push_back(-1);  // the proof-guaranteed cap r+2

  CriticalPair pair{Template(ColourSystem(k), std::vector<Colour>{1}, 0),
                    Template(ColourSystem(k), std::vector<Colour>{1}, 0), 0};
  bool decided = false;
  std::string last_reason = "no feasible scan cap";
  for (int cap : caps) {
    const int effective = cap < 0 ? r + 2 : cap;
    if (estimate_max_nodes(k, r, effective) > options.max_template_nodes) {
      last_reason = "scan cap " + std::to_string(effective) +
                    " exceeds the template size limit; result unknown at this scale";
      continue;
    }
    // §3.8: base case (cheap; redo per attempt for a clean pair).
    auto base_or = base_case(k, colours, eval);
    if (std::holds_alternative<Certificate>(base_or)) {
      return finish(std::get<Certificate>(std::move(base_or)));
    }
    pair = std::get<CriticalPair>(std::move(base_or));
    result.stats.steps.clear();

    // §3.9: inductive steps up to level d.
    bool retry = false;
    while (pair.level < d) {
      const int next_radius = required_radius(k, pair.level + 1, r, cap);
      StepTrace trace;
      StepOutcome step = inductive_step(pair, eval, next_radius, &trace, cap);
      result.stats.steps.push_back(trace);
      result.stats.max_template_nodes =
          std::max(result.stats.max_template_nodes, trace.x_size);
      if (std::holds_alternative<Certificate>(step)) {
        return finish(std::get<Certificate>(std::move(step)));
      }
      if (std::holds_alternative<Inconclusive>(step)) {
        last_reason = std::get<Inconclusive>(step).reason;
        if (cap >= 0) {
          retry = true;  // optimistic cap too small: grow it
          break;
        }
        return finish(std::get<Inconclusive>(std::move(step)));
      }
      pair = std::get<CriticalPair>(std::move(step));
    }
    if (!retry) {
      decided = true;
      break;
    }
  }
  if (!decided) {
    return finish(Inconclusive{last_reason});
  }

  // Theorem 5 final checks on U = S_d, V = T_d.
  if (!ColourSystem::equal_to_radius(pair.s.tree(), pair.t.tree(), d)) {
    throw std::logic_error("run_adversary: U[d] != V[d] (bug)");
  }
  CheckedOutput out_v = evaluate_checked(eval, pair.t, ColourSystem::root());
  if (out_v.violation) return finish(std::move(*out_v.violation));
  CheckedOutput out_u = evaluate_checked(eval, pair.s, ColourSystem::root());
  if (out_u.violation) return finish(std::move(*out_u.violation));

  const std::vector<Colour> c_u = pair.s.tree().colours_at(ColourSystem::root());
  if (out_v.output != local::kUnmatched) {
    // (C3) promised ∉ C(V, e), and at level d there are no free colours, so
    // a colour output here means the construction's evaluation changed —
    // impossible with a deterministic algorithm.
    throw std::logic_error("run_adversary: A(V, e) flipped (bug)");
  }
  if (out_u.output != local::kUnmatched && contains(c_u, out_u.output)) {
    // (M2) consistency of U's root matching, then success.
    const NodeId partner = pair.s.tree().neighbour(ColourSystem::root(), out_u.output);
    CheckedOutput pu = evaluate_checked(eval, pair.s, partner);
    if (pu.violation) return finish(std::move(*pu.violation));
    if (pu.output != out_u.output) {
      return finish(Certificate{Certificate::Kind::M2, pair.s, ColourSystem::root(), partner,
                                out_u.output, out_u.output, pu.output,
                                "U's root matching is inconsistent"});
    }
    TightPair tight{std::move(pair.s), std::move(pair.t), out_u.output, local::kUnmatched, d};
    return finish(std::move(tight));
  }
  // A(U, e) = ⊥ (or a non-incident colour, impossible at level d after the
  // M1 check): (C4) failed, so A must err somewhere concrete — hunt for it
  // on both sides within the remaining budget.
  const int limit = std::max(d, r + 2);
  if (auto cert = hunt_violation(pair.s, eval, limit)) return finish(std::move(*cert));
  if (auto cert = hunt_violation(pair.t, eval, limit)) return finish(std::move(*cert));
  return finish(Inconclusive{
      "final pair degenerate (A(U,e) = A(V,e)) and no local breach within budget"});
}

namespace {

constexpr std::uint32_t kHuntCheckpointVersion = 1;

}  // namespace

void save_hunt_checkpoint(std::ostream& out, const Template& tmpl, int norm_limit,
                          std::size_t next_index, const Evaluator& eval) {
  io::ByteWriter w;
  w.bytes(io::write_template(tmpl));
  w.svarint(norm_limit);
  w.varint(next_index);
  io::write_frame(out, "HUNT", kHuntCheckpointVersion, w.buffer());
  eval.save(out);
}

HuntCheckpoint load_hunt_checkpoint(std::istream& in, Evaluator& eval) {
  const io::Frame frame = io::read_frame(in, "HUNT");
  if (frame.version != kHuntCheckpointVersion) {
    throw std::runtime_error("load_hunt_checkpoint: unsupported hunt checkpoint version " +
                             std::to_string(frame.version));
  }
  io::ByteReader reader(frame.payload);
  Template tmpl = io::read_template(std::string(reader.bytes()));
  const int norm_limit = static_cast<int>(reader.svarint());
  const std::size_t next_index = static_cast<std::size_t>(reader.varint());
  reader.expect_done("hunt checkpoint");
  eval.load(in);
  return HuntCheckpoint{std::move(tmpl), norm_limit, next_index};
}

Lemma4Result run_lemma4(const local::LocalAlgorithm& algorithm) {
  Lemma4Result result{false, graph::EdgeColouredGraph(0, 2), {}, {}, ""};
  if (algorithm.running_time() >= 1) {
    result.summary = "lemma 4: bound k-1 = 1 not exceeded by a " +
                     std::to_string(algorithm.running_time()) + "-round algorithm; nothing to refute";
    return result;
  }
  // T = {e,1}, U = {e,2}, V = {e,1,2} as concrete graphs.
  const graph::EdgeColouredGraph t = graph::path_graph(2, {1});
  const graph::EdgeColouredGraph u = graph::path_graph(2, {2});
  graph::EdgeColouredGraph v(3, 2);
  v.add_edge(0, 1, 1);  // node 0 = e
  v.add_edge(0, 2, 2);
  const graph::EdgeColouredGraph& v_ref = v;
  for (const auto* g : {&t, &u, &v_ref}) {
    std::vector<Colour> outputs = local::run_views(*g, algorithm);
    verify::MatchingReport report = verify::check_outputs(*g, outputs);
    if (!report.ok()) {
      result.contradiction_found = true;
      result.instance = *g;
      result.outputs = std::move(outputs);
      result.report = std::move(report);
      result.summary = "lemma 4: 0-round algorithm " + algorithm.name() +
                       " violated on a 2-coloured instance: " + result.report.describe();
      return result;
    }
  }
  result.summary = "lemma 4: no violation found (impossible for a deterministic 0-round "
                   "algorithm — check the LocalAlgorithm implementation)";
  return result;
}

}  // namespace dmm::lower
