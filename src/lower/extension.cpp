#include "lower/extension.hpp"

#include <deque>
#include <stdexcept>

namespace dmm::lower {

Extension extend(const Template& tmpl, const Picker& picker, int depth) {
  const ColourSystem& T = tmpl.tree();
  if (!T.is_exact() && T.valid_radius() < depth) {
    throw std::logic_error("extend: template truncation too shallow for requested depth");
  }
  if (picker.choices.size() != static_cast<std::size_t>(T.size())) {
    throw std::invalid_argument("extend: picker size mismatch");
  }

  ColourSystem X(T.k(), depth);
  std::vector<NodeId> p{T.root()};
  std::vector<Colour> xi{tmpl.tau(T.root())};

  struct Item {
    NodeId x;        // node in X
    NodeId label;    // p(x) in T
    Colour arrived;  // tail(x); kNoColour at the root
    int d;
  };
  std::deque<Item> queue{{ColourSystem::root(), T.root(), gk::kNoColour, 0}};
  bool truncated = false;
  while (!queue.empty()) {
    const Item it = queue.front();
    queue.pop_front();
    if (it.d == depth) {
      truncated = true;
      continue;
    }
    // Children of x: all of C(T, label) ∪ P(label) except the arrival
    // colour (that edge is the parent).  C-colours move in T, P-colours
    // stay (self-loop unfold).
    for (Colour c : T.colours_at(it.label)) {
      if (c == it.arrived) continue;
      const NodeId nx = X.add_child(it.x, c);
      p.push_back(T.neighbour(it.label, c));
      xi.push_back(tmpl.tau(p.back()));
      queue.push_back({nx, p.back(), c, it.d + 1});
    }
    for (Colour c : picker.at(it.label)) {
      if (c == it.arrived) continue;
      const NodeId nx = X.add_child(it.x, c);
      p.push_back(it.label);
      xi.push_back(tmpl.tau(it.label));
      queue.push_back({nx, it.label, c, it.d + 1});
    }
  }
  // If the BFS drained without hitting the depth limit, X is finite and
  // complete.
  if (!truncated) {
    // Rebuild with the exact marker (cheap: reuse the same structure).
    ColourSystem exact(T.k(), colsys::kExactRadius);
    for (NodeId v = 1; v < X.size(); ++v) exact.add_child(X.parent(v), X.parent_colour(v));
    X = std::move(exact);
  }

  // The regularity of the result: every expanded node has degree
  // |C(T,t)| + |P(t)|; for an h-template with a b-picker that is h + b.
  const int b = static_cast<int>(picker.at(T.root()).size());
  Extension out{make_template_unchecked(std::move(X), std::move(xi), tmpl.h() + b),
                std::move(p)};
  return out;
}

}  // namespace dmm::lower
