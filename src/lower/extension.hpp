// Extensions (§3.3): given an h-template (T, τ) and a b-colour picker P,
// the extension ext(T, τ, P) = (X, ξ, p) is the (h+b)-template obtained by
// the recursive relation ↝ of the paper:
//
//   * e ↝ e; c ↝ c for c ∈ C(T, e); c ↝ e for c ∈ P(e);
//   * if x ↝ t, x ≠ e:  xc ↝ tc for c ∈ C(T, t) − tail(x),
//                        xc ↝ t  for c ∈ P(t) − tail(x).
//
// Operationally (Remark 1): X is the universal cover of Γ_k(T) with a
// self-loop of colour c at t for every c ∈ P(t).  The construction below
// unfolds that cover breadth-first: an X-node is expanded knowing only its
// p-label and the colour of the edge towards its parent, which is exactly
// why extensions have the symmetry of Lemma 7.
#pragma once

#include "lower/picker.hpp"
#include "lower/template.hpp"

namespace dmm::lower {

struct Extension {
  Template result;            // (X, ξ) with ξ = τ ∘ p
  std::vector<NodeId> p;      // p : X → T (by NodeId)
};

/// Builds ext(T, τ, P) truncated to `depth`.  The picker must populate
/// every T-node up to depth-1 (they are the labels that get expanded).  If
/// the extension is finite and fully materialised before reaching `depth`,
/// the result is marked exact.
Extension extend(const Template& tmpl, const Picker& picker, int depth);

}  // namespace dmm::lower
