// Colour pickers (§3.2): a b-colour picker for an h-template (T, τ) chooses
// b free colours P(t) ⊆ F(T, τ, t) for every node t.
//
// Pickers are stored densely, parallel to the template's node array; only
// entries for nodes that an extension actually expands need to be
// populated.
#pragma once

#include <vector>

#include "lower/template.hpp"

namespace dmm::lower {

struct Picker {
  /// P(t) per node (indexed by NodeId of the template's tree).
  std::vector<std::vector<Colour>> choices;

  const std::vector<Colour>& at(NodeId t) const { return choices[static_cast<std::size_t>(t)]; }
};

/// Validates that `picker` is a b-colour picker for `tmpl` on all nodes up
/// to the given depth: every P(t) has exactly b distinct free colours.
bool is_valid_picker(const Template& tmpl, const Picker& picker, int b, int depth);

/// The canonical b-colour picker: the smallest b free colours at each node.
/// Requires b ≤ k - h - 1 (so enough free colours exist).
Picker canonical_free_picker(const Template& tmpl, int b);

/// The full free picker P(t) = F(T, τ, t) used by realisations (§3.5).
Picker full_free_picker(const Template& tmpl);

/// Disjoint union R(t) = P(t) ∪ Q(t) of disjoint pickers (Lemma 8 setup).
Picker union_picker(const Picker& p, const Picker& q);

/// True iff P(t) ∩ Q(t) = ∅ for every node.
bool disjoint_pickers(const Picker& p, const Picker& q);

}  // namespace dmm::lower
