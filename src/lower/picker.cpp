#include "lower/picker.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmm::lower {

bool is_valid_picker(const Template& tmpl, const Picker& picker, int b, int depth) {
  if (picker.choices.size() != static_cast<std::size_t>(tmpl.tree().size())) return false;
  for (NodeId t : tmpl.tree().nodes_up_to(depth)) {
    const auto& chosen = picker.at(t);
    if (static_cast<int>(chosen.size()) != b) return false;
    const std::vector<Colour> free = tmpl.free_colours(t);
    for (Colour c : chosen) {
      if (std::find(free.begin(), free.end(), c) == free.end()) return false;
    }
    std::vector<Colour> sorted = chosen;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) return false;
  }
  return true;
}

Picker canonical_free_picker(const Template& tmpl, int b) {
  Picker out;
  out.choices.resize(static_cast<std::size_t>(tmpl.tree().size()));
  for (NodeId t = 0; t < tmpl.tree().size(); ++t) {
    std::vector<Colour> free = tmpl.free_colours(t);
    if (static_cast<int>(free.size()) < b) {
      throw std::logic_error("canonical_free_picker: not enough free colours");
    }
    free.resize(static_cast<std::size_t>(b));
    out.choices[static_cast<std::size_t>(t)] = std::move(free);
  }
  return out;
}

Picker full_free_picker(const Template& tmpl) {
  Picker out;
  out.choices.resize(static_cast<std::size_t>(tmpl.tree().size()));
  for (NodeId t = 0; t < tmpl.tree().size(); ++t) {
    out.choices[static_cast<std::size_t>(t)] = tmpl.free_colours(t);
  }
  return out;
}

Picker union_picker(const Picker& p, const Picker& q) {
  if (p.choices.size() != q.choices.size()) {
    throw std::invalid_argument("union_picker: size mismatch");
  }
  Picker out;
  out.choices.resize(p.choices.size());
  for (std::size_t i = 0; i < p.choices.size(); ++i) {
    std::vector<Colour> merged = p.choices[i];
    merged.insert(merged.end(), q.choices[i].begin(), q.choices[i].end());
    std::sort(merged.begin(), merged.end());
    if (std::adjacent_find(merged.begin(), merged.end()) != merged.end()) {
      throw std::invalid_argument("union_picker: pickers not disjoint");
    }
    out.choices[i] = std::move(merged);
  }
  return out;
}

bool disjoint_pickers(const Picker& p, const Picker& q) {
  if (p.choices.size() != q.choices.size()) return false;
  for (std::size_t i = 0; i < p.choices.size(); ++i) {
    for (Colour c : p.choices[i]) {
      if (std::find(q.choices[i].begin(), q.choices[i].end(), c) != q.choices[i].end()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace dmm::lower
