// Realisations (§3.5) and the algorithm oracle.
//
// The realisation real(T, τ) of an h-template is its extension by the full
// free picker P(t) = F(T, τ, t): a d-regular colour system (d = k-1) in
// which every node v sits in the equivalence class p⁻¹(p(v)) of nodes with
// identical views (Corollary 2).  This lets us define A(T, τ, t) := A(V, v)
// for any representative v.
//
// We never materialise the d-regular realisation: the radius-(r+1) view of
// a representative of t is unfolded lazily.  A ball node is expanded
// knowing only its p-label t' and its arrival colour — its neighbour
// colours are exactly [k] − τ(t'), each leading to the label's tree
// neighbour (C-colour) or to the label itself (free colour).  Corollary 2
// is thereby built into the data structure: the view genuinely depends only
// on p-labels.
//
// Evaluator memoises A's answers by the canonical view serialisation, and
// checks (M1) on every answer; any breach is packaged as a Certificate — a
// finite, re-checkable witness that A is not a correct maximal-matching
// algorithm (§2.4).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "local/algorithm.hpp"
#include "lower/template.hpp"

namespace dmm::lower {

/// The radius-`radius` view of (a realisation copy of) node t in
/// real(T, τ), as a rooted colour system.  Requires
/// depth(t) + radius ≤ valid_radius of the template's tree.
ColourSystem realisation_ball(const Template& tmpl, NodeId t, int radius);

/// A finite witness that the algorithm under test violates one of the
/// §2.4 properties on a concrete d-regular instance (the realisation of
/// `instance` — for a d-template, the instance itself).
struct Certificate {
  enum class Kind {
    M1,       // output not an incident colour of the realisation copy, nor ⊥
    M2,       // node claims colour c but its c-neighbour disagrees
    M3,       // two adjacent nodes both unmatched
    L9,       // Lemma 9: ⊥ at a node with a free colour (an M3 violation
              //   against its identically-viewed free-copy neighbour)
  };
  Kind kind;
  Template instance;
  NodeId node;                     // offending node (template coordinates)
  NodeId other = colsys::kNullNode;  // tree partner for M2/M3
  Colour colour = gk::kNoColour;   // colour involved
  Colour output = gk::kNoColour;   // A's output at `node`
  Colour other_output = gk::kNoColour;
  std::string detail;

  std::string describe() const;
};

class Evaluator {
 public:
  /// `memoise = false` disables the canonical-view cache (ablation E15);
  /// results are identical, only the evaluation count and time change.
  explicit Evaluator(const local::LocalAlgorithm& algorithm, bool memoise = true)
      : algorithm_(algorithm), memoise_(memoise) {}

  /// A(T, τ, t): evaluates the algorithm on the realisation view of t.
  Colour operator()(const Template& tmpl, NodeId t);

  const local::LocalAlgorithm& algorithm() const noexcept { return algorithm_; }
  int radius() const { return algorithm_.running_time() + 1; }

  std::uint64_t evaluations() const noexcept { return evaluations_; }
  std::uint64_t memo_hits() const noexcept { return memo_hits_; }

 private:
  const local::LocalAlgorithm& algorithm_;
  bool memoise_ = true;
  std::unordered_map<std::string, Colour> memo_;
  std::uint64_t evaluations_ = 0;
  std::uint64_t memo_hits_ = 0;
};

/// Evaluates A(T, τ, t) and checks (M1): the output must be ⊥ or a colour
/// in [k] − τ(t) (the incident colours of the realisation copy).  Returns
/// the output, or a Certificate if (M1) fails.
struct CheckedOutput {
  Colour output = gk::kNoColour;
  std::optional<Certificate> violation;
};
CheckedOutput evaluate_checked(Evaluator& eval, const Template& tmpl, NodeId t);

/// Recomputes the outputs stored in a certificate from scratch and confirms
/// the violation still holds — certificates are self-contained evidence.
bool certificate_holds(const Certificate& cert, Evaluator& eval);

}  // namespace dmm::lower
