// Realisations (§3.5) and the algorithm oracle.
//
// The realisation real(T, τ) of an h-template is its extension by the full
// free picker P(t) = F(T, τ, t): a d-regular colour system (d = k-1) in
// which every node v sits in the equivalence class p⁻¹(p(v)) of nodes with
// identical views (Corollary 2).  This lets us define A(T, τ, t) := A(V, v)
// for any representative v.
//
// We never materialise the d-regular realisation: the radius-(r+1) view of
// a representative of t is unfolded lazily.  A ball node is expanded
// knowing only its p-label t' and its arrival colour — its neighbour
// colours are exactly [k] − τ(t'), each leading to the label's tree
// neighbour (C-colour) or to the label itself (free colour).  Corollary 2
// is thereby built into the data structure: the view genuinely depends only
// on p-labels.
//
// Evaluator memoises A's answers by interned canonical view id: the
// radius-(r+1) serialisation is emitted straight off the template (no ball
// tree is materialised on a memo hit), hash-consed into a dense
// colsys::ViewId by a CanonicalStore, and the memo itself is a flat
// vector indexed by id.  An optional orbit mode keys the memo by
// colour-permutation orbit instead (byte store ~k!-fold smaller; answers
// stay per member unless the algorithm declares colour_equivariant()).
// Every answer is (M1)-checked; any breach is packaged as a Certificate —
// a finite, re-checkable witness that A is not a correct maximal-matching
// algorithm (§2.4).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "colsys/canon.hpp"
#include "local/algorithm.hpp"
#include "lower/template.hpp"

namespace dmm::lower {

/// The radius-`radius` view of (a realisation copy of) node t in
/// real(T, τ), as a rooted colour system.  Requires
/// depth(t) + radius ≤ valid_radius of the template's tree.
ColourSystem realisation_ball(const Template& tmpl, NodeId t, int radius);

/// Appends the canonical serialisation of realisation_ball(tmpl, t, radius)
/// to `out` without materialising the ball: the bytes are identical to
/// realisation_ball(...).serialize(radius), but memo lookups pay only for
/// the byte emission.
void serialize_realisation_into(const Template& tmpl, NodeId t, int radius,
                                std::vector<std::uint8_t>& out);

/// A finite witness that the algorithm under test violates one of the
/// §2.4 properties on a concrete d-regular instance (the realisation of
/// `instance` — for a d-template, the instance itself).
struct Certificate {
  enum class Kind {
    M1,       // output not an incident colour of the realisation copy, nor ⊥
    M2,       // node claims colour c but its c-neighbour disagrees
    M3,       // two adjacent nodes both unmatched
    L9,       // Lemma 9: ⊥ at a node with a free colour (an M3 violation
              //   against its identically-viewed free-copy neighbour)
  };
  Kind kind;
  Template instance;
  NodeId node;                     // offending node (template coordinates)
  NodeId other = colsys::kNullNode;  // tree partner for M2/M3
  Colour colour = gk::kNoColour;   // colour involved
  Colour output = gk::kNoColour;   // A's output at `node`
  Colour other_output = gk::kNoColour;
  std::string detail;

  std::string describe() const;
};

class Evaluator {
 public:
  /// `memoise = false` disables the canonical-view cache (ablation E15);
  /// results are identical, only the evaluation count and time change.
  /// `threads > 1` makes the evaluator thread-safe (the memo is guarded by
  /// a mutex) and sizes prefetch()'s worker pool; it requires the
  /// algorithm's evaluate() to be safe for concurrent const calls.
  /// `orbit_memo = true` keys the memo by colour-permutation *orbit* of the
  /// view instead of by view: the interned byte store (the memory hog)
  /// shrinks ~k!-fold.  Answers stay exact for every algorithm — a
  /// colour_equivariant() algorithm stores one answer per orbit and lifts
  /// it through the witness permutation; any other algorithm stores one
  /// answer per (orbit, coset), which is per view again but shares the
  /// orbit key bytes.  Outcomes are bit-identical with the mode off.
  explicit Evaluator(const local::LocalAlgorithm& algorithm, bool memoise = true,
                     int threads = 1, bool orbit_memo = false)
      : algorithm_(algorithm),
        memoise_(memoise),
        threads_(threads < 1 ? 1 : threads),
        orbit_(orbit_memo) {}

  /// A(T, τ, t): evaluates the algorithm on the realisation view of t.
  Colour operator()(const Template& tmpl, NodeId t);

  /// Warms the memo with A(T, τ, t) for every listed node, sharded across
  /// the worker pool.  Outcome-neutral: it only changes which thread first
  /// computes each canonical view, so serial code that later reads the
  /// answers behaves exactly as without the prefetch.  No-op unless
  /// memoising with threads > 1.
  void prefetch(const Template& tmpl, const std::vector<NodeId>& nodes);

  const local::LocalAlgorithm& algorithm() const noexcept { return algorithm_; }
  int radius() const { return algorithm_.running_time() + 1; }
  int threads() const noexcept { return threads_; }

  /// Serialises the whole memo state — interned canonical views, answers,
  /// orbit tables, counters — as one checksummed "EVAL" frame
  /// (io/serialize.hpp), so an interrupted adversary hunt can resume with
  /// the exact evaluation history of the uninterrupted run.  load()
  /// requires a freshly constructed evaluator with the same algorithm name
  /// and memo modes (throws std::runtime_error otherwise; byte damage
  /// raises io::CorruptFrameError).  Serial-path only: the caller must not
  /// run concurrent evaluations while saving or loading.
  void save(std::ostream& out) const;
  void load(std::istream& in);

  bool orbit_memo() const noexcept { return orbit_; }

  std::uint64_t evaluations() const noexcept { return evaluations_; }
  std::uint64_t memo_hits() const noexcept { return memo_hits_; }
  /// Stored answers: distinct canonical views (raw memo) or distinct
  /// (orbit, coset) / orbit answers (orbit memo).
  std::uint64_t memo_entries() const noexcept {
    return orbit_ ? answers_ : static_cast<std::uint64_t>(store_.size());
  }
  /// Distinct colour-permutation orbits interned; 0 unless orbit-memoising.
  std::uint64_t orbits() const noexcept {
    return orbit_ ? static_cast<std::uint64_t>(store_.orbit_count()) : 0;
  }
  /// Approximate heap footprint of the memo (interned keys + tables).
  std::size_t memo_bytes() const noexcept {
    std::size_t orbit_tables = 0;
    for (const OrbitEntry& entry : orbit_memo_) {
      if (!entry.stabiliser.empty()) {
        orbit_tables += entry.stabiliser.size() *
                        (sizeof(colsys::ColourPerm) + entry.stabiliser.front().capacity());
      }
      orbit_tables += entry.answers.size() *
                      (sizeof(std::uint32_t) + sizeof(Colour) + 2 * sizeof(void*));
    }
    return store_.resident_bytes() + memo_.capacity() * sizeof(Colour) + orbit_tables;
  }

 private:
  /// memo_ entry value meaning "not evaluated yet" (legal outputs are
  /// ⊥ = 0 and colours 1..k ≤ 30).
  static constexpr Colour kUnknownOutput = 0xff;

  /// Per-orbit memo state (orbit mode only).
  struct OrbitEntry {
    std::vector<colsys::ColourPerm> stabiliser;  // of the orbit representative
    /// Non-equivariant algorithms: answer per member, keyed by the Lehmer
    /// rank of the member's canonical coset representative.
    std::unordered_map<std::uint32_t, Colour> answers;
    /// Equivariant algorithms: A(representative), lifted through witnesses.
    Colour rep_answer = 0xff;
  };

  Colour evaluate_interned(const Template& tmpl, NodeId t, std::vector<std::uint8_t>& buf);
  Colour evaluate_orbit(const Template& tmpl, NodeId t, std::vector<std::uint8_t>& buf);

  const local::LocalAlgorithm& algorithm_;
  bool memoise_ = true;
  int threads_ = 1;
  bool orbit_ = false;
  colsys::CanonicalStore store_;
  std::vector<Colour> memo_;  // by ViewId; kUnknownOutput = pending
  std::vector<OrbitEntry> orbit_memo_;  // by OrbitId
  // Guards store_/memo_/counters when threads_ > 1; owned indirectly so
  // the evaluator stays movable.
  std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
  std::vector<std::uint8_t> buf_;  // serial-path scratch
  std::uint64_t evaluations_ = 0;
  std::uint64_t memo_hits_ = 0;
  std::uint64_t answers_ = 0;
};

/// Evaluates A(T, τ, t) and checks (M1): the output must be ⊥ or a colour
/// in [k] − τ(t) (the incident colours of the realisation copy).  Returns
/// the output, or a Certificate if (M1) fails.
struct CheckedOutput {
  Colour output = gk::kNoColour;
  std::optional<Certificate> violation;
};
CheckedOutput evaluate_checked(Evaluator& eval, const Template& tmpl, NodeId t);

/// Recomputes the outputs stored in a certificate from scratch and confirms
/// the violation still holds — certificates are self-contained evidence.
bool certificate_holds(const Certificate& cert, Evaluator& eval);

}  // namespace dmm::lower
