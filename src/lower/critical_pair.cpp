#include "lower/critical_pair.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace dmm::lower {

namespace {

bool contains(const std::vector<Colour>& colours, Colour c) {
  return std::find(colours.begin(), colours.end(), c) != colours.end();
}

/// The single-edge system {e, c}.
ColourSystem edge_system(int k, Colour c) {
  ColourSystem out(k, colsys::kExactRadius);
  out.add_child(ColourSystem::root(), c);
  return out;
}

}  // namespace

int required_radius(int k, int level, int r, int scan_norm_cap) {
  const int d = k - 1;
  const int cap = scan_norm_cap < 0 ? r + 2 : scan_norm_cap;
  int need = std::max(d, r + 1);  // final pair: U[d] = V[d] check + eval at e
  for (int h = d - 1; h >= level; --h) {
    // D_X: deep enough to (a) re-root at a witness of norm ≤ cap and still
    // have `need`, (b) evaluate scan nodes (norm ≤ cap) and their partners
    // (norm ≤ cap+1) with radius r+1 balls.
    const int dx = std::max(need + cap, cap + r + 2);
    need = dx + r;  // the guided picker evaluates T_h nodes up to D_X - 1
  }
  return need;
}

std::variant<CriticalPair, Certificate> base_case(int k, const Lemma10Colours& colours,
                                                  Evaluator& eval) {
  const Colour c1 = colours.c1, c2 = colours.c2, c3 = colours.c3;
  // K = L = X = {e, c2} as node sets; the τ assignments differ (Figure 6).
  Template K(edge_system(k, c2), {c1, c1}, 1);
  Template L(edge_system(k, c2), {c3, c3}, 1);
  Template X(edge_system(k, c2), {c1, c3}, 1);

  CheckedOutput at_e = evaluate_checked(eval, X, ColourSystem::root());
  if (at_e.violation) return std::move(*at_e.violation);

  if (at_e.output != c2) {
    // Case (i): (S1, σ1) = (K, κ), (T1, τ1) = (X, ξ).
    return CriticalPair{std::move(K), std::move(X), 1};
  }
  // Case (ii): re-root both at the node c2.
  const NodeId c2_node = X.tree().find(gk::Word::generator(c2));
  return CriticalPair{X.rerooted(c2_node), L.rerooted(c2_node), 1};
}

namespace {

/// Builds the algorithm-guided 1-colour picker Q for (T, τ) (§3.9(i)):
/// Q(t) = {A(T, τ, t)} when that output is free, else the smallest free
/// colour.  Evaluates only nodes with depth ≤ eval_depth (the ones an
/// extension to depth eval_depth+1 can expand); deeper stored nodes get the
/// canonical choice without consulting the algorithm.
std::variant<Picker, Certificate> guided_picker(const Template& tmpl, Evaluator& eval,
                                                int eval_depth) {
  // The per-node evaluations are independent; warm the memo with the
  // worker pool, then let the serial loop (which alone decides choices and
  // surfaces certificates, in node order) read the cached answers.
  if (eval.threads() > 1) {
    std::vector<NodeId> to_evaluate;
    for (NodeId t = 0; t < tmpl.tree().size(); ++t) {
      if (tmpl.tree().depth(t) <= eval_depth) to_evaluate.push_back(t);
    }
    eval.prefetch(tmpl, to_evaluate);
  }
  Picker out;
  out.choices.resize(static_cast<std::size_t>(tmpl.tree().size()));
  for (NodeId t = 0; t < tmpl.tree().size(); ++t) {
    const std::vector<Colour> free = tmpl.free_colours(t);
    if (free.empty()) throw std::logic_error("guided_picker: no free colours (h = d?)");
    Colour choice = free.front();
    if (tmpl.tree().depth(t) <= eval_depth) {
      CheckedOutput co = evaluate_checked(eval, tmpl, t);
      if (co.violation) return std::move(*co.violation);
      if (co.output != local::kUnmatched && contains(free, co.output)) choice = co.output;
    }
    out.choices[static_cast<std::size_t>(t)] = {choice};
  }
  return out;
}

/// P for (S, σ) (§3.9(ii)): copy Q on the shared prefix S[h-1] = T[h-1],
/// canonical smallest free colour elsewhere.
Picker prefix_copy_picker(const Template& s, const Template& t, const Picker& q, int h) {
  Picker out;
  out.choices.resize(static_cast<std::size_t>(s.tree().size()));
  for (NodeId v = 0; v < s.tree().size(); ++v) {
    const std::vector<Colour> free = s.free_colours(v);
    if (free.empty()) throw std::logic_error("prefix_copy_picker: no free colours");
    Colour choice = free.front();
    if (s.tree().depth(v) <= h - 1) {
      const NodeId tv = t.tree().find(s.tree().word_of(v));
      if (tv == colsys::kNullNode) {
        throw std::logic_error("prefix_copy_picker: compatibility violated (bug)");
      }
      choice = q.at(tv).front();
    }
    out.choices[static_cast<std::size_t>(v)] = {choice};
  }
  return out;
}

}  // namespace

std::variant<StepParts, Certificate> build_step_parts(const CriticalPair& pair, Evaluator& eval,
                                                      int d_x) {
  const int h = pair.level;
  const int r = eval.algorithm().running_time();
  for (const Template* tm : {&pair.s, &pair.t}) {
    if (!tm->tree().is_exact() && tm->valid_radius() < d_x + r) {
      throw std::logic_error("build_step_parts: input pair valid radius " +
                             std::to_string(tm->valid_radius()) + " < required " +
                             std::to_string(d_x + r));
    }
  }

  // χ = A(T_h, τ_h, e); by (C3) ∉ C(T_h, e), so (M1) + Lemma 9 put it in F.
  CheckedOutput chi_out = evaluate_checked(eval, pair.t, ColourSystem::root());
  if (chi_out.violation) return std::move(*chi_out.violation);
  if (chi_out.output == local::kUnmatched) {
    const std::vector<Colour> free = pair.t.free_colours(ColourSystem::root());
    if (free.empty()) throw std::logic_error("build_step_parts: called at level d (bug)");
    Certificate cert{Certificate::Kind::L9, pair.t, ColourSystem::root(), colsys::kNullNode,
                     free.front(), local::kUnmatched, local::kUnmatched,
                     "Lemma 9 fails at the root of T_h"};
    return cert;
  }
  const Colour chi = chi_out.output;
  if (contains(pair.t.tree().colours_at(ColourSystem::root()), chi)) {
    // (C3) of the input pair is broken; that can only come from a caller
    // bug, not from the algorithm (previous steps established it).
    throw std::logic_error("build_step_parts: input pair violates (C3) (bug)");
  }

  // Colour pickers (§3.9 (i)-(ii)).  Labels expanded by extend(·, d_x) have
  // depth ≤ d_x - 1.
  auto q_or = guided_picker(pair.t, eval, d_x - 1);
  if (std::holds_alternative<Certificate>(q_or)) return std::get<Certificate>(std::move(q_or));
  Picker q = std::get<Picker>(std::move(q_or));
  Picker p = prefix_copy_picker(pair.s, pair.t, q, h);

  // (K, κ) = ext(S_h, σ_h, P), (L, λ) = ext(T_h, τ_h, Q).
  Extension ke = extend(pair.s, p, d_x);
  Extension le = extend(pair.t, q, d_x);

  // Both roots must carry the χ-edge: Q(e) = {χ} and P(e) copies it.
  if (ke.result.tree().child(ColourSystem::root(), chi) == colsys::kNullNode ||
      le.result.tree().child(ColourSystem::root(), chi) == colsys::kNullNode) {
    throw std::logic_error("build_step_parts: χ-edge missing after extension (bug)");
  }

  // X = K₁ ∪ L₁: K without its χ-subtree, plus L's χ-subtree (§3.9).
  std::vector<NodeId> k_to_x, l_to_x;
  ColourSystem x_tree = ke.result.tree().grafted(chi, le.result.tree(), &k_to_x, &l_to_x);
  std::vector<Colour> xi(static_cast<std::size_t>(x_tree.size()), gk::kNoColour);
  for (NodeId v = 0; v < ke.result.tree().size(); ++v) {
    if (k_to_x[static_cast<std::size_t>(v)] != colsys::kNullNode) {
      xi[static_cast<std::size_t>(k_to_x[static_cast<std::size_t>(v)])] = ke.result.tau(v);
    }
  }
  for (NodeId v = 0; v < le.result.tree().size(); ++v) {
    if (l_to_x[static_cast<std::size_t>(v)] != colsys::kNullNode) {
      xi[static_cast<std::size_t>(l_to_x[static_cast<std::size_t>(v)])] = le.result.tau(v);
    }
  }
  Template x = make_template_unchecked(std::move(x_tree), std::move(xi), h + 1);
  return StepParts{chi, std::move(q), std::move(p), std::move(ke), std::move(le), std::move(x)};
}

Lemma12Partition lemma12_partition(const StepParts& parts, Evaluator& eval, int r) {
  Lemma12Partition out;
  // Walk both sides: matched near pairs of M(K, K₁, κ) and M(L, L₁, λ).
  auto collect = [&](const Template& side, bool l_side) {
    std::vector<NodeId>& bucket = l_side ? out.l2 : out.k2;
    std::set<NodeId> seen;
    for (NodeId v : side.tree().nodes_up_to(r + 2)) {
      const gk::Word w = side.tree().word_of(v);
      const bool in_part = l_side ? (!w.is_identity() && w.head() == parts.chi)
                                  : (w.is_identity() || w.head() != parts.chi);
      if (!in_part) continue;
      const Colour out_v = eval(side, v);
      const std::vector<Colour> incident = side.tree().colours_at(v);
      if (std::find(incident.begin(), incident.end(), out_v) == incident.end()) continue;
      const NodeId partner = side.tree().neighbour(v, out_v);
      if (eval(side, partner) != out_v) continue;  // not a consistent pair
      // Partner must be in the same part (the proof: M(K,κ) edges never
      // cross the χ-cut; for L only {e, χ} crosses and e ∉ L₁).
      const gk::Word pw = side.tree().word_of(partner);
      const bool partner_in = l_side ? (!pw.is_identity() && pw.head() == parts.chi)
                                     : (pw.is_identity() || pw.head() != parts.chi);
      if (!partner_in) continue;
      // Near edge: at least one endpoint within norm r+1.
      if (side.tree().depth(v) > r + 1 && side.tree().depth(partner) > r + 1) continue;
      // Record both endpoints in X coordinates (shared words).
      for (const gk::Word& word : {w, pw}) {
        const NodeId in_x = parts.x.tree().find(word);
        if (in_x != colsys::kNullNode && seen.insert(in_x).second) bucket.push_back(in_x);
      }
    }
  };
  collect(parts.k.result, /*l_side=*/false);
  collect(parts.l.result, /*l_side=*/true);
  // L₂ additionally contains χ itself (its M(L, λ) partner is e ∉ L₁).
  const NodeId chi_node = parts.x.tree().find(gk::Word::generator(parts.chi));
  if (chi_node != colsys::kNullNode &&
      std::find(out.l2.begin(), out.l2.end(), chi_node) == out.l2.end()) {
    out.l2.push_back(chi_node);
  }
  return out;
}

StepOutcome inductive_step(const CriticalPair& pair, Evaluator& eval, int result_radius,
                           StepTrace* trace, int scan_norm_cap) {
  const int h = pair.level;
  const int r = eval.algorithm().running_time();
  const int cap = scan_norm_cap < 0 ? r + 2 : scan_norm_cap;
  const int d_x = std::max(result_radius + cap, cap + r + 2);

  auto parts_or = build_step_parts(pair, eval, d_x);
  if (std::holds_alternative<Certificate>(parts_or)) {
    return std::get<Certificate>(std::move(parts_or));
  }
  StepParts parts = std::get<StepParts>(std::move(parts_or));
  const Colour chi = parts.chi;
  const Template& K = parts.k.result;
  const Template& L = parts.l.result;
  const Template& X = parts.x;

  if (trace) {
    trace->h = h;
    trace->chi = chi;
    trace->k_size = K.tree().size();
    trace->l_size = L.tree().size();
    trace->x_size = X.tree().size();
    trace->scanned = 0;
  }

  // Lemma 12 scan: find y with A(X, ξ, y) ∉ C(X, y) among nodes of norm
  // ≤ r+2 (that is where the parity argument places one), checking (M1),
  // (M2), (M3) and Lemma 9 as we go.  With a worker pool the scan nodes'
  // answers are precomputed in parallel; the serial loop below still
  // performs every check in order, so the chosen witness (and any
  // certificate) is identical to the serial run.
  if (eval.threads() > 1) eval.prefetch(X, X.tree().nodes_up_to(cap));
  NodeId y = colsys::kNullNode;
  Colour y_output = gk::kNoColour;
  for (NodeId v : X.tree().nodes_up_to(cap)) {
    if (trace) ++trace->scanned;
    CheckedOutput co = evaluate_checked(eval, X, v);
    if (co.violation) return std::move(*co.violation);
    const std::vector<Colour> incident = X.tree().colours_at(v);
    if (co.output == local::kUnmatched) {
      const std::vector<Colour> free = X.free_colours(v);
      if (!free.empty()) {
        // Lemma 9 breach: the identically-viewed free-copy is also ⊥.
        Certificate cert{Certificate::Kind::L9, X, v, colsys::kNullNode, free.front(),
                         local::kUnmatched, local::kUnmatched,
                         "unmatched node with a free colour (Lemma 9)"};
        return cert;
      }
      // No free colours (level d): check the tree neighbours for (M3).
      for (Colour c : incident) {
        const NodeId u = X.tree().neighbour(v, c);
        CheckedOutput cu = evaluate_checked(eval, X, u);
        if (cu.violation) return std::move(*cu.violation);
        if (cu.output == local::kUnmatched) {
          Certificate cert{Certificate::Kind::M3, X, v, u, c, local::kUnmatched,
                           local::kUnmatched, "two adjacent unmatched nodes"};
          return cert;
        }
      }
      y = v;
      y_output = co.output;
      break;
    }
    if (!contains(incident, co.output)) {
      // Matched along a free colour: unmatched in the tree matching M(X, ξ)
      // — a valid Lemma 12 witness.
      y = v;
      y_output = co.output;
      break;
    }
    // Matched along a tree edge: (M2) consistency with the partner.
    const NodeId u = X.tree().neighbour(v, co.output);
    CheckedOutput cu = evaluate_checked(eval, X, u);
    if (cu.violation) return std::move(*cu.violation);
    if (cu.output != co.output) {
      Certificate cert{Certificate::Kind::M2, X, v, u, co.output, co.output, cu.output,
                       "matched edge claimed by one endpoint only"};
      return cert;
    }
  }
  if (y == colsys::kNullNode) {
    if (cap < r + 2) {
      return Inconclusive{"no Lemma 12 witness within the optimistic scan cap " +
                          std::to_string(cap) + "; retry with a larger cap"};
    }
    return Inconclusive{
        "no Lemma 12 witness within norm r+2 and no local (M1)/(M2)/(M3) breach; "
        "for a correct algorithm this is impossible (parity argument)"};
  }

  if (trace) {
    trace->y_found = true;
    trace->y = X.tree().word_of(y);
    trace->y_output = y_output;
  }

  // Which side does y live on?  L₁ is exactly the χ-subtree (head(y) = χ);
  // everything else, including e, is K₁.
  const gk::Word y_word = X.tree().word_of(y);
  const bool on_l_side = !y_word.is_identity() && y_word.head() == chi;
  if (trace) trace->y_on_k_side = !on_l_side;

  Template t_next = X.rerooted(y);
  if (on_l_side) {
    const NodeId y_in_l = L.tree().find(y_word);
    if (y_in_l == colsys::kNullNode) throw std::logic_error("inductive_step: y not in L (bug)");
    return CriticalPair{L.rerooted(y_in_l), std::move(t_next), h + 1};
  }
  const NodeId y_in_k = K.tree().find(y_word);
  if (y_in_k == colsys::kNullNode) throw std::logic_error("inductive_step: y not in K (bug)");
  return CriticalPair{K.rerooted(y_in_k), std::move(t_next), h + 1};
}

std::optional<std::string> verify_critical_pair(const CriticalPair& pair, Evaluator& eval,
                                                int scan_radius) {
  const int h = pair.level;
  if (pair.s.h() != h || pair.t.h() != h) return "levels disagree with template regularity";
  if (!compatible(pair.s, pair.t, h)) return "(C1)/(C2) compatibility fails";
  // (C3).
  CheckedOutput at_e = evaluate_checked(eval, pair.t, ColourSystem::root());
  if (at_e.violation) return "(M1) breach while checking (C3): " + at_e.violation->describe();
  if (contains(pair.t.tree().colours_at(ColourSystem::root()), at_e.output)) {
    return "(C3) fails: A(T, tau, e) is an incident colour";
  }
  // (C4) within the scan radius.
  for (NodeId s : pair.s.tree().nodes_up_to(scan_radius)) {
    CheckedOutput co = evaluate_checked(eval, pair.s, s);
    if (co.violation) return "(M1) breach while checking (C4): " + co.violation->describe();
    if (!contains(pair.s.tree().colours_at(s), co.output)) {
      return "(C4) fails at " + pair.s.tree().word_of(s).str();
    }
  }
  return std::nullopt;
}

}  // namespace dmm::lower
