#include "lower/template.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmm::lower {

Template::Template(ColourSystem tree, std::vector<Colour> tau, int h, Unchecked)
    : tree_(std::move(tree)), tau_(std::move(tau)), h_(h) {}

Template::Template(ColourSystem tree, std::vector<Colour> tau, int h)
    : Template(std::move(tree), std::move(tau), h, Unchecked{}) {
  if (static_cast<int>(tau_.size()) != tree_.size()) {
    throw std::invalid_argument("Template: tau size mismatch");
  }
  if (!tree_.is_regular(h_)) {
    throw std::invalid_argument("Template: tree is not h-regular on its faithful region");
  }
  for (NodeId t = 0; t < tree_.size(); ++t) {
    const Colour f = tau_[static_cast<std::size_t>(t)];
    if (f < 1 || f > tree_.k()) throw std::invalid_argument("Template: tau out of range");
    if (tree_.neighbour(t, f) != colsys::kNullNode &&
        (tree_.is_exact() || tree_.depth(t) < tree_.valid_radius())) {
      throw std::invalid_argument("Template: tau(t) must not be incident to t");
    }
  }
}

Template make_template_unchecked(ColourSystem tree, std::vector<Colour> tau, int h) {
  return Template(std::move(tree), std::move(tau), h, Template::Unchecked{});
}

std::vector<Colour> Template::free_colours(NodeId t) const {
  std::vector<Colour> out;
  const Colour forbidden = tau(t);
  for (Colour c = 1; c <= tree_.k(); ++c) {
    if (c != forbidden && tree_.neighbour(t, c) == colsys::kNullNode) out.push_back(c);
  }
  return out;
}

std::vector<Colour> Template::open_colours(NodeId t) const {
  std::vector<Colour> out;
  const Colour forbidden = tau(t);
  for (Colour c = 1; c <= tree_.k(); ++c) {
    if (c != forbidden) out.push_back(c);
  }
  return out;
}

Template Template::restricted(int new_h, int radius) const {
  std::vector<NodeId> map;
  ColourSystem new_tree = tree_.restricted(radius, &map);
  std::vector<Colour> new_tau(static_cast<std::size_t>(new_tree.size()), gk::kNoColour);
  for (NodeId t = 0; t < tree_.size(); ++t) {
    if (map[static_cast<std::size_t>(t)] != colsys::kNullNode) {
      new_tau[static_cast<std::size_t>(map[static_cast<std::size_t>(t)])] =
          tau_[static_cast<std::size_t>(t)];
    }
  }
  return make_template_unchecked(std::move(new_tree), std::move(new_tau), new_h);
}

Template Template::rerooted(NodeId y) const {
  std::vector<NodeId> map;
  ColourSystem new_tree = tree_.rerooted(y, &map);
  std::vector<Colour> new_tau(static_cast<std::size_t>(new_tree.size()), gk::kNoColour);
  for (NodeId t = 0; t < tree_.size(); ++t) {
    if (map[static_cast<std::size_t>(t)] != colsys::kNullNode) {
      new_tau[static_cast<std::size_t>(map[static_cast<std::size_t>(t)])] =
          tau_[static_cast<std::size_t>(t)];
    }
  }
  return Template(std::move(new_tree), std::move(new_tau), h_, Unchecked{});
}

std::string Template::str(int max_depth) const {
  std::string out = "template h=" + std::to_string(h_) +
                    " valid_radius=" + (tree_.is_exact() ? std::string("exact")
                                                         : std::to_string(valid_radius())) +
                    "\n";
  for (NodeId t : tree_.nodes_up_to(std::min(max_depth, 3))) {
    out += "  " + tree_.word_of(t).str() + ": tau=" + std::to_string(static_cast<int>(tau(t))) + "\n";
  }
  return out;
}

bool compatible(const Template& s, const Template& t, int h) {
  if (s.k() != t.k()) return false;
  if (!ColourSystem::equal_to_radius(s.tree(), t.tree(), h)) return false;  // (C1)
  // (C2): σ[h-1] = τ[h-1].  Nodes correspond by their words; walk s's tree.
  for (NodeId a : s.tree().nodes_up_to(h - 1)) {
    const NodeId b = t.tree().find(s.tree().word_of(a));
    if (b == colsys::kNullNode || s.tau(a) != t.tau(b)) return false;
  }
  return true;
}

}  // namespace dmm::lower
