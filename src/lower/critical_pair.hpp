// Critical pairs (§3.7) and the induction of §3.8–§3.9.
//
// An h-critical pair is a pair of h-compatible h-templates (S, σ), (T, τ)
// with
//   (C3)  A(T, τ, e) ∉ C(T, e)      — the T-side root is "unmatched" in the
//                                      tree matching M(T, τ), and
//   (C4)  A(S, σ, s) ∈ C(S, s) ∀s   — M(S, σ) is a perfect matching.
//
// base_case builds a 1-critical pair from the Lemma 10 colours; each
// inductive_step turns an h-critical pair into an (h+1)-critical pair,
// following the paper exactly:
//
//   1. pick the colour pickers Q (algorithm-guided) and P (copying Q on the
//      shared prefix),
//   2. extend to (K, κ) = ext(S, σ, P) and (L, λ) = ext(T, τ, Q),
//   3. splice X = K₁ ∪ L₁ by pruning K's χ-subtree and grafting L's,
//   4. find y with A(X, ξ, y) ∉ C(X, y) among the near nodes (Lemma 12's
//      parity argument guarantees one exists for a correct algorithm), and
//   5. re-root: (S_{h+1}, T_{h+1}) = (ȳK, ȳX) or (ȳL, ȳX).
//
// For an *incorrect* algorithm, some evaluation along the way breaches
// (M1)/(M2)/(M3)/Lemma 9 on a concrete realisation; the step then returns
// that Certificate instead — the executable content of Theorem 2's
// universal quantifier.
#pragma once

#include <optional>
#include <string>
#include <variant>

#include "lower/extension.hpp"
#include "lower/realisation.hpp"
#include "lower/zero_template.hpp"

namespace dmm::lower {

struct CriticalPair {
  Template s;  // (S_h, σ_h): the perfectly-matched side
  Template t;  // (T_h, τ_h): the side whose root is unmatched
  int level;   // h
};

/// The construction could not decide within its depth budget.  Cannot
/// happen for a correct algorithm (the parity argument bounds where y
/// lives); reported instead of guessing when the algorithm under test is
/// broken only far from every probed root.
struct Inconclusive {
  std::string reason;
};

using PairOutcome = std::variant<CriticalPair, Certificate, Inconclusive>;
using StepOutcome = std::variant<CriticalPair, Certificate, Inconclusive>;

/// Optional per-step introspection for examples and tests.
struct StepTrace {
  int h = 0;
  Colour chi = gk::kNoColour;            // χ = A(T_h, τ_h, e)
  bool y_found = false;                  // false when the step refuted A instead
  gk::Word y;                            // the Lemma 12 witness
  Colour y_output = gk::kNoColour;       // A(X, ξ, y)
  bool y_on_k_side = false;              // y ∈ K₁ (else L₁)
  int k_size = 0, l_size = 0, x_size = 0;
  int scanned = 0;                       // nodes probed by the Lemma 12 scan
};

/// §3.8: builds a 1-critical pair.  May instead surface an (M1) breach on
/// the tiny base instances.
std::variant<CriticalPair, Certificate> base_case(int k, const Lemma10Colours& colours,
                                                  Evaluator& eval);

/// The intermediate objects of one §3.9 step, exposed for tests, examples
/// and the Lemma 12 analyses: χ, the pickers Q (algorithm-guided, on T_h)
/// and P (prefix copy, on S_h), the extensions (K, κ) and (L, λ) with
/// their p-maps, and the spliced (X, ξ).
struct StepParts {
  Colour chi = gk::kNoColour;
  Picker q;  // for (T_h, τ_h)
  Picker p;  // for (S_h, σ_h)
  Extension k;
  Extension l;
  Template x;
};

/// Builds the step intermediates at internal depth d_x (without running
/// the Lemma 12 scan).  Returns a Certificate instead if an evaluation
/// already refutes the algorithm.
std::variant<StepParts, Certificate> build_step_parts(const CriticalPair& pair, Evaluator& eval,
                                                      int d_x);

/// The finite halves of the Lemma 12 partition: the matched near pairs of
/// M(K, K₁, κ) (that is K₂) and of M(L, L₁, λ) plus χ (that is L₂).  The
/// proof's parity argument: |K₂| is even, |L₂| is odd, and the witness y
/// lives in K₂ ∪ L₂.
struct Lemma12Partition {
  std::vector<NodeId> k2;  // X-tree node ids
  std::vector<NodeId> l2;
};
Lemma12Partition lemma12_partition(const StepParts& parts, Evaluator& eval, int r);

/// §3.9: one inductive step.  `result_radius` is the valid radius the
/// produced (h+1)-pair must have.
///
/// `scan_norm_cap` bounds the norm of the Lemma 12 scan (and hence the
/// internal depth D_X = max(result_radius + cap, cap + r + 2)).  The
/// default -1 means the proof-guaranteed cap r+2; smaller caps are
/// *optimistic* budgets (the witness empirically sits at norm 1, see
/// ablation E15b) — if no witness appears within the cap the step returns
/// Inconclusive and the caller may retry with a larger cap.
StepOutcome inductive_step(const CriticalPair& pair, Evaluator& eval, int result_radius,
                           StepTrace* trace = nullptr, int scan_norm_cap = -1);

/// Valid radius the level-h pair needs so that d-h further steps plus the
/// final checks (radius max(d, r+1)) fit.  r is the algorithm's running
/// time; scan_norm_cap as in inductive_step.
int required_radius(int k, int level, int r, int scan_norm_cap = -1);

/// Test helper: checks (C1)-(C3) exactly and (C4) for all nodes of S within
/// `scan_radius`.  Returns a description of the first failure, if any.
std::optional<std::string> verify_critical_pair(const CriticalPair& pair, Evaluator& eval,
                                                int scan_radius);

}  // namespace dmm::lower
