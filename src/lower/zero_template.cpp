#include "lower/zero_template.hpp"

#include <stdexcept>

namespace dmm::lower {

Template zero_template(int k, Colour c) {
  if (c < 1 || static_cast<int>(c) > k) {
    throw std::invalid_argument("zero_template: colour out of range");
  }
  ColourSystem z(k, colsys::kExactRadius);
  return Template(std::move(z), {c}, /*h=*/0);
}

namespace {

/// h(c) = A(Z, ĉ, e) with (M1) and Lemma 9 enforcement.
std::variant<Colour, Certificate> lemma9_output(int k, Evaluator& eval, Colour c) {
  const Template z = zero_template(k, c);
  CheckedOutput out = evaluate_checked(eval, z, ColourSystem::root());
  if (out.violation) return std::move(*out.violation);
  if (out.output == local::kUnmatched) {
    // Lemma 9: a 0-template with k ≥ 2 has free colours, so ⊥ here means
    // two identically-viewed adjacent nodes both answer ⊥.
    Certificate cert{Certificate::Kind::L9, z, ColourSystem::root(), colsys::kNullNode,
                     z.free_colours(ColourSystem::root()).front(), local::kUnmatched,
                     local::kUnmatched, "Lemma 9 fails on a zero-template realisation"};
    return cert;
  }
  return out.output;
}

}  // namespace

std::variant<Lemma10Colours, Certificate> choose_lemma10_colours(int k, Evaluator& eval) {
  if (k < 3) throw std::invalid_argument("choose_lemma10_colours: needs k >= 3");
  auto h = [&](Colour c) { return lemma9_output(k, eval, c); };

  const auto h1 = h(1);
  if (std::holds_alternative<Certificate>(h1)) return std::get<Certificate>(h1);
  const Colour h_1 = std::get<Colour>(h1);

  const auto hh1 = h(h_1);
  if (std::holds_alternative<Certificate>(hh1)) return std::get<Certificate>(hh1);
  const Colour h_h_1 = std::get<Colour>(hh1);

  Lemma10Colours out{};
  if (h_h_1 != 1) {
    out.c1 = h_1;
    out.c2 = h_h_1;
    out.c3 = 1;
  } else {
    // h(h(1)) = 1: pick any c ∉ {1, h(1)} (exists since k ≥ 3).
    Colour c = 1;
    while (c == 1 || c == h_1) ++c;
    const auto hc = h(c);
    if (std::holds_alternative<Certificate>(hc)) return std::get<Certificate>(hc);
    const Colour h_c = std::get<Colour>(hc);
    if (h_c == h_1) {
      out.c1 = h_1;
      out.c2 = 1;
      out.c3 = c;
    } else {
      out.c1 = 1;
      out.c2 = h_1;
      out.c3 = c;
    }
  }
  const auto hc3 = h(out.c3);
  if (std::holds_alternative<Certificate>(hc3)) return std::get<Certificate>(hc3);
  out.c4 = std::get<Colour>(hc3);

  // Sanity: the Lemma 10 guarantees.
  if (out.c1 == out.c2 || out.c2 == out.c3 || out.c1 == out.c3 || out.c4 == out.c2) {
    throw std::logic_error("choose_lemma10_colours: case analysis broken (bug)");
  }
  return out;
}

}  // namespace dmm::lower
