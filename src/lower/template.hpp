// Templates (§3.2): an h-template is a pair (T, τ) where T is an h-regular
// colour system and τ assigns each node a forbidden colour τ(t) ∉ C(T, t).
//
// Templates are compact schematic representations of problem instances: the
// realisation (§3.5) blows each node up into an equivalence class of nodes
// of a d-regular colour system.  This class couples the tree with τ and
// transports τ through all the tree surgeries of the construction
// (restriction, re-rooting, pruning, grafting).
#pragma once

#include <string>
#include <vector>

#include "colsys/colour_system.hpp"

namespace dmm::lower {

using colsys::ColourSystem;
using colsys::NodeId;
using gk::Colour;

class Template {
 public:
  /// Wraps a tree and a parallel forbidden-colour assignment.  Validates
  /// τ(t) ∉ C(T, t) and h-regularity on the faithful region.
  Template(ColourSystem tree, std::vector<Colour> tau, int h);

  const ColourSystem& tree() const noexcept { return tree_; }
  int h() const noexcept { return h_; }
  int k() const noexcept { return tree_.k(); }
  int valid_radius() const noexcept { return tree_.valid_radius(); }

  Colour tau(NodeId t) const { return tau_[static_cast<std::size_t>(t)]; }

  /// F(T, τ, t) = [k] \ (C(T, t) + τ(t)) — the free colours (§3.2).
  std::vector<Colour> free_colours(NodeId t) const;

  /// [k] \ τ(t): the colours adjacent to (any realisation copy of) t.
  std::vector<Colour> open_colours(NodeId t) const;

  /// Template for T[h'] (restriction of both tree and τ).
  Template restricted(int new_h, int radius) const;

  /// (ȳT, ȳτ): re-roots at y, transporting τ (Lemma 3 / §3.9 step).
  Template rerooted(NodeId y) const;

  std::string str(int max_depth = 4) const;

 private:
  friend Template make_template_unchecked(ColourSystem, std::vector<Colour>, int);
  struct Unchecked {};
  Template(ColourSystem tree, std::vector<Colour> tau, int h, Unchecked);

  ColourSystem tree_;
  std::vector<Colour> tau_;
  int h_;
};

/// Constructs without the O(n·k) validity sweep; for module-internal use on
/// results that are correct by construction (extensions, re-rootings).
Template make_template_unchecked(ColourSystem tree, std::vector<Colour> tau, int h);

/// (C1) + (C2) of §3.7: S[h] = T[h] and σ[h-1] = τ[h-1].
bool compatible(const Template& s, const Template& t, int h);

}  // namespace dmm::lower
