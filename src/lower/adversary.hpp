// The executable adversary of Theorems 2 and 5 (and Lemma 4 for k ≤ 2).
//
// Given any algorithm A (a black box behind the LocalAlgorithm interface),
// run_adversary(k, A) mechanically performs the paper's induction and ends
// in one of three ways:
//
//  * TightPair — two d-regular k-colour systems U, V (d = k-1) with
//    U[d] = V[d], A(U, e) matched, A(V, e) = ⊥.  Since the radius-d views
//    at e coincide, *no* algorithm with running time < d can produce these
//    outputs: the pair is a machine-checked witness that A's answers
//    require ≥ k-1 rounds.  This is what happens when A is correct (e.g.
//    the greedy algorithm).
//
//  * Certificate — a concrete finite witness (re-checkable via
//    certificate_holds) that A violates (M1)/(M2)/(M3) on the realisation
//    of a specific template: A is simply not a maximal-matching algorithm.
//    This is what happens to every "too fast" algorithm, exactly as the
//    theorem's universal quantifier demands.
//
//  * Inconclusive — the depth budget ran out before either of the above;
//    impossible for a correct algorithm (parity argument), and reported
//    honestly instead of guessing for broken ones.
//
// Lemma 4 (k = 2, 0-round algorithms) uses the paper's explicit
// three-instance argument and returns the violated instance as a plain
// finite graph.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "graph/edge_coloured_graph.hpp"
#include "lower/critical_pair.hpp"
#include "verify/matching.hpp"

namespace dmm::lower {

struct TightPair {
  Template u;  // S_d: perfectly matched side
  Template v;  // T_d: root unmatched
  Colour out_u = gk::kNoColour;  // A(U, e) ∈ C(U, e)
  Colour out_v = gk::kNoColour;  // A(V, e) = ⊥
  int d = 0;
};

struct AdversaryStats {
  std::uint64_t evaluations = 0;  // distinct views handed to A
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_entries = 0;  // stored answers (distinct views / members)
  std::uint64_t orbits = 0;        // distinct view orbits interned (orbit memo only)
  std::size_t memo_bytes = 0;      // approximate resident size of the memo
  int threads = 1;                 // evaluator worker pool size used
  int max_template_nodes = 0;
  std::vector<StepTrace> steps;
};

struct LowerBoundResult {
  int k = 0;
  std::string algorithm;
  std::variant<TightPair, Certificate, Inconclusive> outcome =
      Inconclusive{"not yet run"};
  AdversaryStats stats;

  bool tight() const noexcept { return std::holds_alternative<TightPair>(outcome); }
  bool refuted() const noexcept { return std::holds_alternative<Certificate>(outcome); }
  std::string summary() const;
};

struct AdversaryOptions {
  /// Cache algorithm answers by canonical view (ablation: E15).
  bool memoise = true;
  /// Try optimistic (small) Lemma 12 scan caps first, growing on demand.
  /// The conservative budget assumes the witness can sit at norm r+2; in
  /// practice it sits at norm 1 (E15b), and the optimistic schedule makes
  /// k = 5 against the full greedy algorithm feasible.  Outcomes never
  /// change — only the materialised tree sizes do.
  bool optimistic = false;
  /// Safety valve: skip any attempt whose estimated largest template would
  /// exceed this many nodes.
  double max_template_nodes = 5e6;
  /// Worker threads for the picker / Lemma-12 evaluation sweeps.  Outcomes
  /// are identical to the serial run (the sweeps only pre-warm the
  /// evaluator memo; every decision is still taken by the serial merge),
  /// but requires the algorithm's evaluate() to tolerate concurrent const
  /// calls.
  int threads = 1;
  /// Key the evaluator memo by colour-permutation orbit of the view (the
  /// interned byte store shrinks ~k!-fold; outcomes are bit-identical —
  /// see Evaluator).  Requires k ≤ colsys::kMaxOrbitColours.
  bool orbits = false;
};

/// Runs the §3 construction.  Requires k ≥ 3; see run_lemma4 for k = 2.
LowerBoundResult run_adversary(int k, const local::LocalAlgorithm& algorithm,
                               const AdversaryOptions& options = {});

/// Lemma 4: for k = 2 and a 0-round algorithm, one of the instances
/// T = {e,1}, U = {e,2}, V = {e,1,2} is violated.
struct Lemma4Result {
  bool contradiction_found = false;
  graph::EdgeColouredGraph instance;  // the violated instance (if found)
  std::vector<Colour> outputs;
  verify::MatchingReport report;
  std::string summary;
};
Lemma4Result run_lemma4(const local::LocalAlgorithm& algorithm);

/// Bounded hunt for a concrete (M1)/(M2)/(M3)/Lemma-9 breach on the
/// realisation of a template; probes all nodes with norm ≤ norm_limit.
std::optional<Certificate> hunt_violation(const Template& tmpl, Evaluator& eval, int norm_limit);

/// Resumable-sweep control for hunt_violation (ISSUE 8): start the serial
/// sweep at index `start_index` of nodes_up_to(norm_limit) and call
/// `sink(next_index)` after every `checkpoint_every` probed nodes while the
/// sweep is still unfinished — the natural place to save_hunt_checkpoint.
/// Because the evaluator's answers are pure and memoised, a resumed hunt
/// probes the remaining nodes with the exact evaluation history of the
/// uninterrupted run: same certificate (or none), same counters.
struct HuntControl {
  std::size_t start_index = 0;
  std::size_t checkpoint_every = 0;
  std::function<void(std::size_t next_index)> sink;
};

std::optional<Certificate> hunt_violation(const Template& tmpl, Evaluator& eval,
                                          int norm_limit, const HuntControl& control);

/// A persisted hunt position: the template under interrogation, the norm
/// limit, and the index of the next node to probe.  Serialised as a "HUNT"
/// frame followed by the evaluator's "EVAL" frame on the same stream
/// (io/serialize.hpp), so corruption anywhere is detected on load.
struct HuntCheckpoint {
  Template tmpl;
  int norm_limit = 0;
  std::size_t next_index = 0;
};

void save_hunt_checkpoint(std::ostream& out, const Template& tmpl, int norm_limit,
                          std::size_t next_index, const Evaluator& eval);

/// Reads the hunt frame and loads the evaluator memo into `eval` (which
/// must be freshly constructed for the same algorithm — see
/// Evaluator::load).
HuntCheckpoint load_hunt_checkpoint(std::istream& in, Evaluator& eval);

}  // namespace dmm::lower
