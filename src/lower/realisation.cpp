#include "lower/realisation.hpp"

#include <algorithm>
#include <deque>
#include <thread>
#include <utility>

#include "io/serialize.hpp"

namespace dmm::lower {

namespace {
constexpr std::uint32_t kEvaluatorStateVersion = 1;
}  // namespace

void Evaluator::save(std::ostream& out) const {
  io::ByteWriter w;
  w.bytes(algorithm_.name());
  w.u8(memoise_ ? 1 : 0);
  w.u8(orbit_ ? 1 : 0);
  w.varint(evaluations_);
  w.varint(memo_hits_);
  w.varint(answers_);
  // The interned canonical views, in id order: re-interning them in the
  // same order on load reproduces the identical ViewId assignment.
  w.varint(static_cast<std::uint64_t>(store_.size()));
  for (colsys::ViewId id = 0; id < store_.size(); ++id) {
    const std::vector<std::uint8_t>& key = store_.bytes(id);
    w.bytes(std::string_view(reinterpret_cast<const char*>(key.data()), key.size()));
  }
  w.bytes(std::string_view(reinterpret_cast<const char*>(memo_.data()), memo_.size()));
  w.varint(static_cast<std::uint64_t>(store_.orbit_count()));
  for (colsys::OrbitId id = 0; id < store_.orbit_count(); ++id) {
    const std::vector<std::uint8_t>& key = store_.orbit_bytes(id);
    w.bytes(std::string_view(reinterpret_cast<const char*>(key.data()), key.size()));
  }
  w.varint(orbit_memo_.size());
  for (const OrbitEntry& entry : orbit_memo_) {
    w.varint(entry.stabiliser.size());
    for (const colsys::ColourPerm& p : entry.stabiliser) {
      w.bytes(std::string_view(reinterpret_cast<const char*>(p.data()), p.size()));
    }
    // unordered_map iteration order is not deterministic; sort by rank so
    // the byte stream is a pure function of the memo contents.
    std::vector<std::pair<std::uint32_t, Colour>> answers(entry.answers.begin(),
                                                          entry.answers.end());
    std::sort(answers.begin(), answers.end());
    w.varint(answers.size());
    for (const auto& [rank, colour] : answers) {
      w.varint(rank);
      w.u8(colour);
    }
    w.u8(entry.rep_answer);
  }
  io::write_frame(out, "EVAL", kEvaluatorStateVersion, w.buffer());
}

void Evaluator::load(std::istream& in) {
  if (evaluations_ != 0 || memo_hits_ != 0 || store_.size() != 0 ||
      store_.orbit_count() != 0) {
    throw std::runtime_error("Evaluator::load: requires a freshly constructed evaluator");
  }
  const io::Frame frame = io::read_frame(in, "EVAL");
  if (frame.version != kEvaluatorStateVersion) {
    throw std::runtime_error("Evaluator::load: unsupported state version " +
                             std::to_string(frame.version));
  }
  io::ByteReader r(frame.payload);
  const std::string_view name = r.bytes();
  if (name != algorithm_.name()) {
    throw std::runtime_error("Evaluator::load: state was captured for algorithm '" +
                             std::string(name) + "', this evaluator runs '" +
                             algorithm_.name() + "'");
  }
  if ((r.u8() != 0) != memoise_ || (r.u8() != 0) != orbit_) {
    throw std::runtime_error("Evaluator::load: memo-mode mismatch");
  }
  evaluations_ = r.varint();
  memo_hits_ = r.varint();
  answers_ = r.varint();
  const std::uint64_t views = r.varint();
  std::vector<std::uint8_t> key;
  for (std::uint64_t i = 0; i < views; ++i) {
    const std::string_view bytes = r.bytes();
    key.assign(bytes.begin(), bytes.end());
    store_.intern(key);
  }
  const std::string_view memo = r.bytes();
  if (memo.size() > static_cast<std::size_t>(store_.size())) {
    throw std::runtime_error("Evaluator::load: memo longer than the view store");
  }
  memo_.assign(memo.begin(), memo.end());
  const std::uint64_t orbits = r.varint();
  for (std::uint64_t i = 0; i < orbits; ++i) {
    const std::string_view bytes = r.bytes();
    key.assign(bytes.begin(), bytes.end());
    store_.intern_orbit_canonical(key);
  }
  const std::uint64_t entries = r.varint();
  if (entries > orbits) {
    throw std::runtime_error("Evaluator::load: more orbit entries than orbits");
  }
  orbit_memo_.assign(entries, OrbitEntry{});
  for (OrbitEntry& entry : orbit_memo_) {
    const std::uint64_t stab = r.varint();
    entry.stabiliser.resize(stab);
    for (colsys::ColourPerm& p : entry.stabiliser) {
      const std::string_view bytes = r.bytes();
      p.assign(bytes.begin(), bytes.end());
    }
    const std::uint64_t count = r.varint();
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto rank = static_cast<std::uint32_t>(r.varint());
      const Colour colour = r.u8();
      entry.answers.emplace(rank, colour);
    }
    entry.rep_answer = r.u8();
  }
  r.expect_done("evaluator state");
}

ColourSystem realisation_ball(const Template& tmpl, NodeId t, int radius) {
  const ColourSystem& T = tmpl.tree();
  if (!T.is_exact() && T.depth(t) + radius > T.valid_radius()) {
    throw std::logic_error("realisation_ball: template truncation too shallow");
  }
  // The view is a truncation of the infinite d-regular realisation:
  // faithful exactly to `radius`.
  ColourSystem out(T.k(), radius);
  struct Item {
    NodeId label;    // p-label in T
    NodeId lift;     // node in the output ball
    Colour arrived;  // colour towards the ball parent
    int d;
  };
  std::deque<Item> queue{{t, ColourSystem::root(), gk::kNoColour, 0}};
  while (!queue.empty()) {
    const Item it = queue.front();
    queue.pop_front();
    if (it.d == radius) continue;
    const Colour forbidden = tmpl.tau(it.label);
    for (Colour c = 1; c <= T.k(); ++c) {
      if (c == forbidden || c == it.arrived) continue;
      const NodeId tree_next = T.neighbour(it.label, c);
      const NodeId label_next = tree_next != colsys::kNullNode ? tree_next : it.label;
      queue.push_back({label_next, out.add_child(it.lift, c), c, it.d + 1});
    }
  }
  return out;
}

void serialize_realisation_into(const Template& tmpl, NodeId t, int radius,
                                std::vector<std::uint8_t>& out) {
  const ColourSystem& T = tmpl.tree();
  if (!T.is_exact() && T.depth(t) + radius > T.valid_radius()) {
    throw std::logic_error("serialize_realisation_into: template truncation too shallow");
  }
  const int k = T.k();
  out.push_back(static_cast<std::uint8_t>(k));
  // Mirrors ColourSystem::serialize on the virtual ball: pre-order DFS,
  // children in colour order, 0xff at the truncation radius.  A virtual
  // node is (p-label, arrival colour); its child colours are
  // [k] − {τ(label), arrived}, each leading to the label's tree neighbour
  // or (free colour) to the label itself.
  struct Frame {
    NodeId label;
    Colour arrived;
    int depth;
  };
  std::vector<Frame> stack{{t, gk::kNoColour, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.depth == radius) {
      out.push_back(0xff);
      continue;
    }
    const Colour forbidden = tmpl.tau(f.label);
    const std::uint8_t count =
        static_cast<std::uint8_t>(k - 1 - (f.arrived != gk::kNoColour ? 1 : 0));
    out.push_back(count);
    // Push in reverse colour order so DFS visits ascending colours.
    for (Colour c = static_cast<Colour>(k); c >= 1; --c) {
      if (c == forbidden || c == f.arrived) continue;
      const NodeId tree_next = T.neighbour(f.label, c);
      stack.push_back({tree_next != colsys::kNullNode ? tree_next : f.label, c, f.depth + 1});
    }
    for (Colour c = 1; c <= k; ++c) {
      if (c != forbidden && c != f.arrived) out.push_back(c);
    }
  }
}

Colour Evaluator::evaluate_orbit(const Template& tmpl, NodeId t,
                                 std::vector<std::uint8_t>& buf) {
  buf.clear();
  serialize_realisation_into(tmpl, t, radius(), buf);
  // Canonise outside any lock (pure function of the bytes).  rep = w·V.
  std::vector<std::uint8_t> canonical;
  colsys::ColourPerm witness;
  colsys::SerialisedView(buf).canonicalise(canonical, &witness);
  const colsys::ColourPerm inverse_witness = colsys::inverse_perm(witness);
  const int k = tmpl.k();
  const bool equivariant = algorithm_.colour_equivariant();
  const bool locking = threads_ > 1;
  colsys::OrbitId id;
  std::uint32_t member = 0;
  bool need_stabiliser = false;
  {
    std::unique_lock<std::mutex> lock(*mutex_, std::defer_lock);
    if (locking) lock.lock();
    id = store_.intern_orbit_canonical(canonical);
    if (static_cast<std::size_t>(id) >= orbit_memo_.size()) {
      orbit_memo_.resize(static_cast<std::size_t>(store_.orbit_count()));
    }
    OrbitEntry& entry = orbit_memo_[static_cast<std::size_t>(id)];
    if (equivariant) {
      if (entry.rep_answer != kUnknownOutput) {
        ++memo_hits_;
        // Stored is A(rep) = w(A(V)), so A(V) = w⁻¹(stored); ⊥ is fixed.
        const Colour stored = entry.rep_answer;
        return stored <= static_cast<Colour>(k) ? inverse_witness[stored] : stored;
      }
    } else {
      need_stabiliser = entry.stabiliser.empty();
    }
  }
  if (need_stabiliser) {
    // A branch-and-bound tie walk over the canonical bytes (most branches
    // die within a node or two; far below the old k! serialise-and-compare
    // sweep) — a pure function of those bytes, so run it outside the
    // critical section and let the first finisher install (double-checked:
    // a racing thread's identical result is dropped).
    std::vector<colsys::ColourPerm> stabiliser = colsys::serialisation_stabiliser(canonical);
    std::unique_lock<std::mutex> lock(*mutex_, std::defer_lock);
    if (locking) lock.lock();
    OrbitEntry& entry = orbit_memo_[static_cast<std::size_t>(id)];
    if (entry.stabiliser.empty()) entry.stabiliser = std::move(stabiliser);
  }
  if (!equivariant) {
    std::unique_lock<std::mutex> lock(*mutex_, std::defer_lock);
    if (locking) lock.lock();
    OrbitEntry& entry = orbit_memo_[static_cast<std::size_t>(id)];
    // The member's identity inside its orbit: the left coset w⁻¹·Stab.
    member = colsys::perm_rank(colsys::min_coset_rep(inverse_witness, entry.stabiliser));
    const auto it = entry.answers.find(member);
    if (it != entry.answers.end()) {
      ++memo_hits_;
      return it->second;
    }
  }
  // Miss: materialise the ball and consult the algorithm outside the lock
  // (two threads may race on the same view; both compute the same answer).
  const Colour out = algorithm_.evaluate(realisation_ball(tmpl, t, radius()));
  {
    std::unique_lock<std::mutex> lock(*mutex_, std::defer_lock);
    if (locking) lock.lock();
    OrbitEntry& entry = orbit_memo_[static_cast<std::size_t>(id)];
    if (equivariant) {
      if (entry.rep_answer == kUnknownOutput) {
        ++evaluations_;
        ++answers_;
        entry.rep_answer = out <= static_cast<Colour>(k) ? witness[out] : out;
      }
    } else if (entry.answers.try_emplace(member, out).second) {
      ++evaluations_;
      ++answers_;
    }
  }
  return out;
}

Colour Evaluator::evaluate_interned(const Template& tmpl, NodeId t,
                                    std::vector<std::uint8_t>& buf) {
  if (orbit_) return evaluate_orbit(tmpl, t, buf);
  buf.clear();
  serialize_realisation_into(tmpl, t, radius(), buf);
  const bool locking = threads_ > 1;
  colsys::ViewId id;
  {
    std::unique_lock<std::mutex> lock(*mutex_, std::defer_lock);
    if (locking) lock.lock();
    id = store_.intern(buf);
    if (static_cast<std::size_t>(id) >= memo_.size()) {
      memo_.resize(static_cast<std::size_t>(store_.size()), kUnknownOutput);
    }
    if (memo_[static_cast<std::size_t>(id)] != kUnknownOutput) {
      ++memo_hits_;
      return memo_[static_cast<std::size_t>(id)];
    }
  }
  // Miss: materialise the ball and consult the algorithm outside the lock
  // (two threads may race on the same view; both compute the same answer).
  const Colour out = algorithm_.evaluate(realisation_ball(tmpl, t, radius()));
  {
    std::unique_lock<std::mutex> lock(*mutex_, std::defer_lock);
    if (locking) lock.lock();
    // Count each distinct view once even when racing workers both computed
    // it — evaluations_ means "distinct views handed to A".
    if (memo_[static_cast<std::size_t>(id)] == kUnknownOutput) {
      ++evaluations_;
      memo_[static_cast<std::size_t>(id)] = out;
    }
  }
  return out;
}

Colour Evaluator::operator()(const Template& tmpl, NodeId t) {
  if (!memoise_) {
    ++evaluations_;
    return algorithm_.evaluate(realisation_ball(tmpl, t, radius()));
  }
  return evaluate_interned(tmpl, t, buf_);
}

void Evaluator::prefetch(const Template& tmpl, const std::vector<NodeId>& nodes) {
  if (!memoise_ || threads_ <= 1 || nodes.size() < 2) return;
  const int workers = std::min<int>(threads_, static_cast<int>(nodes.size()));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  // An algorithm under test may throw on some view; capture the first
  // exception and rethrow after the join so errors surface exactly as the
  // serial sweep would surface them (not via std::terminate).
  std::exception_ptr failure;
  std::mutex failure_mutex;
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([this, &tmpl, &nodes, &failure, &failure_mutex, w, workers] {
      std::vector<std::uint8_t> buf;
      try {
        for (std::size_t i = static_cast<std::size_t>(w); i < nodes.size();
             i += static_cast<std::size_t>(workers)) {
          evaluate_interned(tmpl, nodes[i], buf);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> guard(failure_mutex);
        if (!failure) failure = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (failure) std::rethrow_exception(failure);
}

std::string Certificate::describe() const {
  const char* names[] = {"M1", "M2", "M3", "Lemma 9 (M3 against a free-copy)"};
  std::string out = std::string(names[static_cast<int>(kind)]) + " violation";
  out += " at node " + instance.tree().word_of(node).str();
  if (other != colsys::kNullNode) {
    out += " vs " + instance.tree().word_of(other).str();
  }
  if (colour != gk::kNoColour) out += ", colour " + std::to_string(static_cast<int>(colour));
  out += "; output=" + std::to_string(static_cast<int>(output));
  if (other != colsys::kNullNode || kind == Kind::M2) {
    out += ", partner output=" + std::to_string(static_cast<int>(other_output));
  }
  if (!detail.empty()) out += " — " + detail;
  return out;
}

CheckedOutput evaluate_checked(Evaluator& eval, const Template& tmpl, NodeId t) {
  CheckedOutput result;
  result.output = eval(tmpl, t);
  if (result.output == local::kUnmatched) return result;
  // (M1): in the realisation, t's copy is incident to exactly the colours
  // [k] − τ(t).
  if (result.output < 1 || result.output > static_cast<Colour>(tmpl.k()) ||
      result.output == tmpl.tau(t)) {
    Certificate cert{Certificate::Kind::M1, tmpl,          t,
                     colsys::kNullNode,     result.output, result.output,
                     gk::kNoColour,         ""};
    cert.detail = "output is not an incident colour of the realisation copy";
    result.violation = std::move(cert);
  }
  return result;
}

bool certificate_holds(const Certificate& cert, Evaluator& eval) {
  const Template& tmpl = cert.instance;
  const Colour out = eval(tmpl, cert.node);
  if (out != cert.output) return false;  // stored evidence stale
  switch (cert.kind) {
    case Certificate::Kind::M1:
      return out != local::kUnmatched &&
             (out < 1 || out > static_cast<Colour>(tmpl.k()) || out == tmpl.tau(cert.node));
    case Certificate::Kind::M2: {
      if (out != cert.colour) return false;
      const NodeId partner = tmpl.tree().neighbour(cert.node, cert.colour);
      if (partner == colsys::kNullNode || partner != cert.other) return false;
      return eval(tmpl, partner) != out;
    }
    case Certificate::Kind::M3: {
      const NodeId partner = tmpl.tree().neighbour(cert.node, cert.colour);
      if (partner == colsys::kNullNode || partner != cert.other) return false;
      return out == local::kUnmatched && eval(tmpl, partner) == local::kUnmatched;
    }
    case Certificate::Kind::L9: {
      // ⊥ at a node with a free colour c: the free-copy neighbour has, by
      // construction of realisation balls, the *same* view and hence the
      // same output ⊥ — two adjacent unmatched nodes.
      if (out != local::kUnmatched) return false;
      const std::vector<Colour> free = tmpl.free_colours(cert.node);
      return std::find(free.begin(), free.end(), cert.colour) != free.end();
    }
  }
  return false;
}

}  // namespace dmm::lower
