#include "lower/realisation.hpp"

#include <algorithm>
#include <deque>

namespace dmm::lower {

ColourSystem realisation_ball(const Template& tmpl, NodeId t, int radius) {
  const ColourSystem& T = tmpl.tree();
  if (!T.is_exact() && T.depth(t) + radius > T.valid_radius()) {
    throw std::logic_error("realisation_ball: template truncation too shallow");
  }
  // The view is a truncation of the infinite d-regular realisation:
  // faithful exactly to `radius`.
  ColourSystem out(T.k(), radius);
  struct Item {
    NodeId label;    // p-label in T
    NodeId lift;     // node in the output ball
    Colour arrived;  // colour towards the ball parent
    int d;
  };
  std::deque<Item> queue{{t, ColourSystem::root(), gk::kNoColour, 0}};
  while (!queue.empty()) {
    const Item it = queue.front();
    queue.pop_front();
    if (it.d == radius) continue;
    const Colour forbidden = tmpl.tau(it.label);
    for (Colour c = 1; c <= T.k(); ++c) {
      if (c == forbidden || c == it.arrived) continue;
      const NodeId tree_next = T.neighbour(it.label, c);
      const NodeId label_next = tree_next != colsys::kNullNode ? tree_next : it.label;
      queue.push_back({label_next, out.add_child(it.lift, c), c, it.d + 1});
    }
  }
  return out;
}

Colour Evaluator::operator()(const Template& tmpl, NodeId t) {
  const ColourSystem view = realisation_ball(tmpl, t, radius());
  if (!memoise_) {
    ++evaluations_;
    return algorithm_.evaluate(view);
  }
  const std::vector<std::uint8_t> canon = view.serialize(radius());
  std::string key(canon.begin(), canon.end());
  const auto it = memo_.find(key);
  if (it != memo_.end()) {
    ++memo_hits_;
    return it->second;
  }
  ++evaluations_;
  const Colour out = algorithm_.evaluate(view);
  memo_.emplace(std::move(key), out);
  return out;
}

std::string Certificate::describe() const {
  const char* names[] = {"M1", "M2", "M3", "Lemma 9 (M3 against a free-copy)"};
  std::string out = std::string(names[static_cast<int>(kind)]) + " violation";
  out += " at node " + instance.tree().word_of(node).str();
  if (other != colsys::kNullNode) {
    out += " vs " + instance.tree().word_of(other).str();
  }
  if (colour != gk::kNoColour) out += ", colour " + std::to_string(static_cast<int>(colour));
  out += "; output=" + std::to_string(static_cast<int>(output));
  if (other != colsys::kNullNode || kind == Kind::M2) {
    out += ", partner output=" + std::to_string(static_cast<int>(other_output));
  }
  if (!detail.empty()) out += " — " + detail;
  return out;
}

CheckedOutput evaluate_checked(Evaluator& eval, const Template& tmpl, NodeId t) {
  CheckedOutput result;
  result.output = eval(tmpl, t);
  if (result.output == local::kUnmatched) return result;
  // (M1): in the realisation, t's copy is incident to exactly the colours
  // [k] − τ(t).
  if (result.output < 1 || result.output > static_cast<Colour>(tmpl.k()) ||
      result.output == tmpl.tau(t)) {
    Certificate cert{Certificate::Kind::M1, tmpl,          t,
                     colsys::kNullNode,     result.output, result.output,
                     gk::kNoColour,         ""};
    cert.detail = "output is not an incident colour of the realisation copy";
    result.violation = std::move(cert);
  }
  return result;
}

bool certificate_holds(const Certificate& cert, Evaluator& eval) {
  const Template& tmpl = cert.instance;
  const Colour out = eval(tmpl, cert.node);
  if (out != cert.output) return false;  // stored evidence stale
  switch (cert.kind) {
    case Certificate::Kind::M1:
      return out != local::kUnmatched &&
             (out < 1 || out > static_cast<Colour>(tmpl.k()) || out == tmpl.tau(cert.node));
    case Certificate::Kind::M2: {
      if (out != cert.colour) return false;
      const NodeId partner = tmpl.tree().neighbour(cert.node, cert.colour);
      if (partner == colsys::kNullNode || partner != cert.other) return false;
      return eval(tmpl, partner) != out;
    }
    case Certificate::Kind::M3: {
      const NodeId partner = tmpl.tree().neighbour(cert.node, cert.colour);
      if (partner == colsys::kNullNode || partner != cert.other) return false;
      return out == local::kUnmatched && eval(tmpl, partner) == local::kUnmatched;
    }
    case Certificate::Kind::L9: {
      // ⊥ at a node with a free colour c: the free-copy neighbour has, by
      // construction of realisation balls, the *same* view and hence the
      // same output ⊥ — two adjacent unmatched nodes.
      if (out != local::kUnmatched) return false;
      const std::vector<Colour> free = tmpl.free_colours(cert.node);
      return std::find(free.begin(), free.end(), cert.colour) != free.end();
    }
  }
  return false;
}

}  // namespace dmm::lower
