// Zero-templates and Lemma 10 (§3.6).
//
// (Z, ĉ) is the 0-template on the single node e with forbidden colour c.
// Writing h(c) = A(Z, ĉ, e), Lemma 9 and (M1) force h : [k] → [k] to be
// fixed-point free, and Lemma 10 extracts distinct colours c1, c2, c3 with
// A(Z, ĉ1, e) = c2 and A(Z, ĉ3, e) ≠ c2 — the seed asymmetry the whole
// lower-bound construction grows from.
#pragma once

#include <optional>
#include <variant>

#include "lower/realisation.hpp"

namespace dmm::lower {

/// The 0-template (Z, ĉ).
Template zero_template(int k, Colour c);

struct Lemma10Colours {
  Colour c1, c2, c3, c4;  // c4 = A(Z, ĉ3, e) ≠ c2
};

/// Runs the Lemma 10 case analysis against the algorithm behind `eval`.
/// Requires k ≥ 3.  Returns the colours, or a Certificate if the algorithm
/// already errs on a zero-template realisation.
std::variant<Lemma10Colours, Certificate> choose_lemma10_colours(int k, Evaluator& eval);

}  // namespace dmm::lower
