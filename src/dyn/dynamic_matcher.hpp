// Incremental maximal matching under edge churn (ROADMAP scenario (a)).
//
// DynamicMatcher owns an instance and a maximal matching over it in the
// library's output encoding (outputs[v] = the colour v is matched along,
// local::kUnmatched = ⊥), seeded by a full LOCAL greedy run.  apply()
// mutates the graph by one ChurnBatch and repairs the matching locally
// instead of recomputing:
//
//   * insert {u, v}: the matching stays a matching; maximality can only
//     break at the new edge itself, and only when both endpoints are
//     free — in which case the edge is matched on the spot;
//   * delete of an unmatched edge: nothing changes anywhere;
//   * delete of a matched edge: both endpoints become free, and each
//     greedily re-matches along its lowest incident colour with a free
//     partner.  The two repairs cannot interfere: the deleted edge is
//     gone so u ∉ N(v), and a repair only turns free nodes matched, never
//     the reverse — so maximality, intact everywhere else before the op,
//     is restored by inspecting just N(u) ∪ N(v).
//
// Each repair therefore touches O(Δ) nodes.  The stats() counters measure
// exactly that locality and are pure functions of (instance, plan) —
// engine-, thread- and schedule-independent — which is what the e12 bench
// baseline gates exactly.  recompute() is the from-scratch oracle: a full
// LOCAL greedy run on the current graph through the session API, every
// oracle run sharing one local::Runtime across graph versions (one worker
// pool however many recomputes).  Incremental and oracle outputs need not
// be byte-equal — repair may keep an edge a fresh greedy run would not
// pick — but both must pass verify::check_outputs after every batch;
// docs/dynamic.md carries the invariant argument and
// tests/test_dynamic.cpp enforces it across the churn grid.
#pragma once

#include <cstdint>
#include <vector>

#include "dyn/churn.hpp"
#include "graph/edge_coloured_graph.hpp"
#include "local/engine.hpp"
#include "local/runtime.hpp"
#include "verify/matching.hpp"

namespace dmm::dyn {

struct MatcherOptions {
  /// Engine for the seeding run and for recompute(); either must agree
  /// with the other on maximality (they are bit-identical by the engine
  /// equivalence suite, so this only changes who does the work).
  local::EngineKind engine = local::EngineKind::kSync;
  /// Worker budget of the shared runtime backing flat oracle runs.
  int threads = 1;
};

/// Cumulative apply() accounting.  All pure functions of (instance, plan).
struct RepairStats {
  std::uint64_t batches = 0;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  /// Matching edges created by repair: immediate matches of inserted
  /// edges plus greedy re-matches after a matched-edge delete.  (Deleting
  /// a matched edge is damage, not repair — it is not counted here.)
  std::uint64_t repairs = 0;
  /// Σ over batches of the distinct nodes whose matching state the batch
  /// read or wrote: op endpoints plus every neighbour a re-match scan
  /// inspected.  The locality claim, as a number.
  std::uint64_t touched_nodes = 0;
  /// Σ over batches of (node_count − touched): the per-node work a
  /// recompute-from-scratch would have redone for no reason.
  std::uint64_t recompute_avoided = 0;

  bool operator==(const RepairStats&) const = default;
};

class DynamicMatcher {
 public:
  /// Takes the instance by value and seeds the matching with a full LOCAL
  /// greedy run on it.
  explicit DynamicMatcher(graph::EdgeColouredGraph g, const MatcherOptions& options = {});

  const graph::EdgeColouredGraph& graph() const noexcept { return g_; }
  const std::vector<Colour>& outputs() const noexcept { return outputs_; }
  const RepairStats& stats() const noexcept { return stats_; }

  /// Applies the batch — ops in order, each repaired before the next —
  /// and updates the counters.  Invalid ops throw std::invalid_argument
  /// mid-batch; callers with a whole plan should prefer the ChurnPlan
  /// overload, which validates everything up front.
  void apply(const ChurnBatch& batch);

  /// Validates the whole plan against the current graph
  /// (ChurnPlan::require_applies — throws with the instance untouched),
  /// then applies every batch.
  void apply(const ChurnPlan& plan);

  /// Recompute-from-scratch oracle: full LOCAL greedy on the current
  /// graph via the session API over the shared runtime.
  std::vector<Colour> recompute() { return recompute(opts_.engine); }
  std::vector<Colour> recompute(local::EngineKind engine);

  /// check_outputs of the incremental matching against the current graph.
  verify::MatchingReport check() const { return verify::check_outputs(g_, outputs_); }

 private:
  void apply_one(const ChurnOp& op);
  void rematch(graph::NodeIndex v);
  void touch(graph::NodeIndex v);

  graph::EdgeColouredGraph g_;
  MatcherOptions opts_;
  local::Runtime runtime_;
  local::ProgramSource source_;  // pooled greedy, shared by every recompute
  std::vector<Colour> outputs_;
  RepairStats stats_;
  // Per-batch distinct-node accounting: a node is "touched" once per
  // batch, however many ops of the batch visit it.
  std::vector<std::uint32_t> touch_stamp_;
  std::uint32_t batch_stamp_ = 0;
  std::uint64_t touched_this_batch_ = 0;
};

}  // namespace dmm::dyn
