// Deterministic edge churn for dynamic maximal matching (ROADMAP
// scenario (a), experiment e12).
//
// A ChurnPlan is a seeded schedule of batched edge insertions and
// deletions against one EdgeColouredGraph, in the same pure-data style as
// local::FaultPlan: built (or randomly generated) up front, validated
// against the instance before anything mutates, and replayed as a pure
// function of (instance, plan).  No RNG state survives into the apply
// path, so everything downstream — the matcher's repair/locality counters
// included — is exactly reproducible from (instance, seed), which is what
// BENCH_e12.json gates exactly (docs/dynamic.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/edge_coloured_graph.hpp"

namespace dmm::dyn {

using gk::Colour;

/// One edge mutation.  An insert names the colour the new edge carries; a
/// delete names the colour it expects the live edge to carry — redundant
/// (the endpoints determine it in a simple graph) but it makes plans
/// self-describing and lets validation reject a plan whose idea of the
/// graph has drifted from the instance it is applied to.
struct ChurnOp {
  enum class Kind : std::uint8_t { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  graph::NodeIndex u = 0;
  graph::NodeIndex v = 0;
  Colour colour = gk::kNoColour;
};

/// Ops applied together.  The matcher repairs after every op (repairs are
/// per-edge local either way) but accounts locality per batch, and the
/// oracle cross-check runs once per batch boundary.
struct ChurnBatch {
  std::vector<ChurnOp> ops;
};

/// Knobs for ChurnPlan::random.
struct ChurnSpec {
  int batches = 8;
  int ops_per_batch = 16;
  /// Target insert share of each batch; the generator falls back to the
  /// other kind when the preferred one is unavailable (no deletable edge /
  /// no proper insertion found), so the realised mix tracks this only as
  /// far as the instance allows.
  double insert_fraction = 0.5;
  std::uint64_t seed = 0;
};

/// "insert" / "delete".
const char* op_kind_name(ChurnOp::Kind kind) noexcept;

class ChurnPlan {
 public:
  ChurnPlan() = default;
  explicit ChurnPlan(std::vector<ChurnBatch> batches) : batches_(std::move(batches)) {}

  /// Seeded random plan against `g`, valid by construction: generation
  /// replays the graph's evolution on a scratch copy, so every insert is
  /// proper and simple *at its point in the schedule* and every delete
  /// names a then-live edge.  Inserts are found by bounded rejection
  /// sampling; when the instance is colour-saturated (or empty, for
  /// deletes) a batch may come out shorter than spec.ops_per_batch.
  static ChurnPlan random(const graph::EdgeColouredGraph& g, const ChurnSpec& spec);

  const std::vector<ChurnBatch>& batches() const noexcept { return batches_; }
  bool empty() const noexcept { return batches_.empty(); }

  std::size_t op_count() const noexcept;
  std::size_t insert_count() const noexcept;
  std::size_t delete_count() const noexcept;

  /// Replays the plan against a scratch copy of `g` and throws
  /// std::invalid_argument on the first invalid op: an insert that would
  /// break properness or simplicity (self-loop, node out of range, colour
  /// out of range or already used at an endpoint, parallel edge) or a
  /// delete that names no live edge — or a live edge of a different
  /// colour.  DynamicMatcher calls this before mutating anything, so an
  /// invalid plan is rejected with the instance untouched.
  void require_applies(const graph::EdgeColouredGraph& g) const;

 private:
  std::vector<ChurnBatch> batches_;
};

}  // namespace dmm::dyn
