#include "dyn/dynamic_matcher.hpp"

#include <stdexcept>

#include "algo/greedy.hpp"
#include "local/flat_engine.hpp"

namespace dmm::dyn {

DynamicMatcher::DynamicMatcher(graph::EdgeColouredGraph g, const MatcherOptions& options)
    : g_(std::move(g)),
      opts_(options),
      runtime_(options.threads),
      source_(algo::greedy_program_factory()),
      touch_stamp_(static_cast<std::size_t>(g_.node_count()), 0) {
  outputs_ = recompute(opts_.engine);
}

std::vector<Colour> DynamicMatcher::recompute(local::EngineKind engine) {
  local::RunOptions options;
  options.max_rounds = g_.k() + 1;
  local::FlatEngineOptions engine_options;
  engine_options.threads = opts_.threads;
  auto session = local::make_session(engine, g_, source_, options, engine_options, &runtime_);
  while (!session->done()) session->step();
  return session->result().outputs;
}

void DynamicMatcher::touch(graph::NodeIndex v) {
  auto& stamp = touch_stamp_[static_cast<std::size_t>(v)];
  if (stamp != batch_stamp_) {
    stamp = batch_stamp_;
    ++touched_this_batch_;
  }
}

void DynamicMatcher::rematch(graph::NodeIndex v) {
  // Greedy repair: lowest incident colour whose neighbour is also free.
  // incident_colours is sorted ascending, so the first hit is the match —
  // the same preference order the one-shot greedy algorithm uses.
  for (const Colour c : g_.incident_colours(v)) {
    const auto w = g_.neighbour(v, c);
    touch(*w);
    if (outputs_[static_cast<std::size_t>(*w)] == local::kUnmatched) {
      outputs_[static_cast<std::size_t>(v)] = c;
      outputs_[static_cast<std::size_t>(*w)] = c;
      ++stats_.repairs;
      return;
    }
  }
}

void DynamicMatcher::apply_one(const ChurnOp& op) {
  touch(op.u);
  touch(op.v);
  if (op.kind == ChurnOp::Kind::kInsert) {
    g_.add_edge(op.u, op.v, op.colour);  // throws on an improper insert
    ++stats_.inserts;
    if (outputs_[static_cast<std::size_t>(op.u)] == local::kUnmatched &&
        outputs_[static_cast<std::size_t>(op.v)] == local::kUnmatched) {
      outputs_[static_cast<std::size_t>(op.u)] = op.colour;
      outputs_[static_cast<std::size_t>(op.v)] = op.colour;
      ++stats_.repairs;
    }
    return;
  }
  const auto live = g_.edge_colour(op.u, op.v);
  if (!live) throw std::invalid_argument("DynamicMatcher: delete of a non-edge");
  if (op.colour != gk::kNoColour && op.colour != *live) {
    throw std::invalid_argument("DynamicMatcher: delete names the wrong colour");
  }
  g_.remove_edge(op.u, op.v);
  ++stats_.deletes;
  const bool was_matched = outputs_[static_cast<std::size_t>(op.u)] == *live &&
                           outputs_[static_cast<std::size_t>(op.v)] == *live;
  if (!was_matched) return;  // unmatched edge: the matching never referenced it
  outputs_[static_cast<std::size_t>(op.u)] = local::kUnmatched;
  outputs_[static_cast<std::size_t>(op.v)] = local::kUnmatched;
  rematch(op.u);
  rematch(op.v);
}

void DynamicMatcher::apply(const ChurnBatch& batch) {
  ++batch_stamp_;
  touched_this_batch_ = 0;
  for (const ChurnOp& op : batch.ops) apply_one(op);
  ++stats_.batches;
  stats_.touched_nodes += touched_this_batch_;
  const auto n = static_cast<std::uint64_t>(g_.node_count());
  stats_.recompute_avoided += n - touched_this_batch_;
}

void DynamicMatcher::apply(const ChurnPlan& plan) {
  plan.require_applies(g_);
  for (const ChurnBatch& batch : plan.batches()) apply(batch);
}

}  // namespace dmm::dyn
