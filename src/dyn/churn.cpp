#include "dyn/churn.hpp"

#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace dmm::dyn {

namespace {

/// Rejection-sampling budget per random draw.  Misses only matter on
/// nearly colour-saturated instances, where the generator falls back to a
/// delete anyway; 64 keeps generation deterministic-and-fast without ever
/// spinning on an instance that has no proper insertion left.
constexpr int kTries = 64;

/// One proper, simple, not-yet-present edge of `g`, or nullopt when the
/// budget runs out.
std::optional<ChurnOp> find_insert(const graph::EdgeColouredGraph& g, Rng& rng) {
  const int n = g.node_count();
  const int k = g.k();
  if (n < 2 || k < 1) return std::nullopt;
  for (int attempt = 0; attempt < kTries; ++attempt) {
    const auto u = static_cast<graph::NodeIndex>(rng.index(static_cast<std::size_t>(n)));
    const auto c = static_cast<Colour>(1 + rng.uniform(0, k - 1));
    if (g.neighbour(u, c)) continue;
    const auto v = static_cast<graph::NodeIndex>(rng.index(static_cast<std::size_t>(n)));
    if (v == u || g.neighbour(v, c) || g.has_edge(u, v)) continue;
    return ChurnOp{ChurnOp::Kind::kInsert, u, v, c};
  }
  return std::nullopt;
}

/// A uniformly random live edge of `g`, or nullopt when it has none.
std::optional<ChurnOp> find_delete(const graph::EdgeColouredGraph& g, Rng& rng) {
  if (g.edge_count() == 0) return std::nullopt;
  const graph::Edge& e = g.edges()[rng.index(static_cast<std::size_t>(g.edge_count()))];
  return ChurnOp{ChurnOp::Kind::kDelete, e.u, e.v, e.colour};
}

[[noreturn]] void reject(std::size_t batch, std::size_t op, const ChurnOp& o,
                         const std::string& why) {
  throw std::invalid_argument("ChurnPlan: batch " + std::to_string(batch) + " op " +
                              std::to_string(op) + " (" + op_kind_name(o.kind) + " {" +
                              std::to_string(o.u) + "," + std::to_string(o.v) + "} colour " +
                              std::to_string(static_cast<int>(o.colour)) + "): " + why);
}

}  // namespace

const char* op_kind_name(ChurnOp::Kind kind) noexcept {
  return kind == ChurnOp::Kind::kInsert ? "insert" : "delete";
}

ChurnPlan ChurnPlan::random(const graph::EdgeColouredGraph& g, const ChurnSpec& spec) {
  if (spec.batches < 0 || spec.ops_per_batch < 0) {
    throw std::invalid_argument("ChurnPlan: negative batch/op count");
  }
  if (spec.insert_fraction < 0.0 || spec.insert_fraction > 1.0) {
    throw std::invalid_argument("ChurnPlan: insert_fraction outside [0, 1]");
  }
  Rng rng(spec.seed);
  graph::EdgeColouredGraph scratch = g;  // the plan's view of the evolving instance
  std::vector<ChurnBatch> batches;
  batches.reserve(static_cast<std::size_t>(spec.batches));
  for (int b = 0; b < spec.batches; ++b) {
    ChurnBatch batch;
    batch.ops.reserve(static_cast<std::size_t>(spec.ops_per_batch));
    for (int i = 0; i < spec.ops_per_batch; ++i) {
      const bool prefer_insert = rng.chance(spec.insert_fraction);
      std::optional<ChurnOp> op =
          prefer_insert ? find_insert(scratch, rng) : find_delete(scratch, rng);
      if (!op) op = prefer_insert ? find_delete(scratch, rng) : find_insert(scratch, rng);
      if (!op) continue;  // saturated AND empty: nothing this slot can do
      if (op->kind == ChurnOp::Kind::kInsert) {
        scratch.add_edge(op->u, op->v, op->colour);
      } else {
        scratch.remove_edge(op->u, op->v);
      }
      batch.ops.push_back(*op);
    }
    batches.push_back(std::move(batch));
  }
  return ChurnPlan(std::move(batches));
}

std::size_t ChurnPlan::op_count() const noexcept {
  std::size_t count = 0;
  for (const ChurnBatch& b : batches_) count += b.ops.size();
  return count;
}

std::size_t ChurnPlan::insert_count() const noexcept {
  std::size_t count = 0;
  for (const ChurnBatch& b : batches_) {
    for (const ChurnOp& o : b.ops) count += o.kind == ChurnOp::Kind::kInsert ? 1 : 0;
  }
  return count;
}

std::size_t ChurnPlan::delete_count() const noexcept { return op_count() - insert_count(); }

void ChurnPlan::require_applies(const graph::EdgeColouredGraph& g) const {
  graph::EdgeColouredGraph scratch = g;
  for (std::size_t b = 0; b < batches_.size(); ++b) {
    const ChurnBatch& batch = batches_[b];
    for (std::size_t i = 0; i < batch.ops.size(); ++i) {
      const ChurnOp& o = batch.ops[i];
      if (o.kind == ChurnOp::Kind::kInsert) {
        try {
          scratch.add_edge(o.u, o.v, o.colour);
        } catch (const std::exception& e) {
          reject(b, i, o, e.what());
        }
      } else {
        const auto live = (o.u >= 0 && o.u < scratch.node_count() && o.v >= 0 &&
                           o.v < scratch.node_count())
                              ? scratch.edge_colour(o.u, o.v)
                              : std::nullopt;
        if (!live) reject(b, i, o, "no such live edge");
        if (o.colour != gk::kNoColour && o.colour != *live) {
          reject(b, i, o, "live edge has colour " + std::to_string(static_cast<int>(*live)));
        }
        scratch.remove_edge(o.u, o.v);
      }
    }
  }
}

}  // namespace dmm::dyn
