#include "local/engine.hpp"

#include <chrono>
#include <stdexcept>

#include "local/checkpoint.hpp"
#include "local/faults.hpp"
#include "local/program_pool.hpp"

namespace dmm::local {

void NodeProgram::save_state(std::string& /*out*/) const {
  throw std::logic_error(
      "NodeProgram::save_state: this program does not support checkpointing");
}

void NodeProgram::load_state(std::string_view /*in*/) {
  throw std::logic_error(
      "NodeProgram::load_state: this program does not support checkpointing");
}

namespace {

/// Snapshot of the engine state after a completed round; shared between the
/// checkpoint sink and (structurally) FlatEngine::snapshot.
EngineCheckpoint capture_checkpoint(const graph::EdgeColouredGraph& g, int round,
                                    int running, const RunResult& result,
                                    const std::vector<char>& halted,
                                    const std::vector<char>& down,
                                    const std::vector<char>& dead, ProgramPool& pool) {
  EngineCheckpoint cp;
  cp.node_count = g.node_count();
  cp.k = g.k();
  cp.edge_hash = graph_fingerprint(g);
  cp.round = round;
  cp.running = running;
  cp.crashes = result.crashes;
  cp.restarts = result.restarts;
  cp.messages_dropped = result.messages_dropped;
  cp.max_message_bytes = result.max_message_bytes;
  cp.total_message_bytes = result.total_message_bytes;
  cp.messages_sent = result.messages_sent;
  cp.outputs = result.outputs;
  cp.halt_round.assign(result.halt_round.begin(), result.halt_round.end());
  cp.halted.assign(halted.begin(), halted.end());
  cp.down.assign(down.begin(), down.end());
  cp.dead.assign(dead.begin(), dead.end());
  const auto n = static_cast<std::size_t>(g.node_count());
  for (std::size_t v = 0; v < n; ++v) {
    if (halted[v] || dead[v]) continue;
    std::string blob;
    pool[v]->save_state(blob);
    cp.program_state.push_back(std::move(blob));
  }
  return cp;
}

double elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - since)
                                 .count());
}

/// run_sync, stepwise.  The constructor is the old function's setup phase
/// (program construction, init delivery, checkpoint resume); step() is one
/// iteration of its round loop, verbatim.  run_sync itself is now a thin
/// loop over this class, so a stepped run is the closed run.
class SyncSession final : public Session {
 public:
  SyncSession(const graph::EdgeColouredGraph& g, const ProgramSource& source,
              const RunOptions& options)
      : g_(g),
        n_(g.node_count()),
        max_rounds_(options.max_rounds),
        every_(options.checkpoint.every),
        sink_(options.checkpoint.sink) {
    plan_ = (options.faults.plan != nullptr && !options.faults.plan->empty())
                ? options.faults.plan
                : nullptr;
    if (plan_ != nullptr) plan_->require_fits(n_);

    result_.outputs.assign(static_cast<std::size_t>(n_), kUnmatched);
    result_.halt_round.assign(static_cast<std::size_t>(n_), -1);
    halted_.assign(static_cast<std::size_t>(n_), 0);
    down_.assign(static_cast<std::size_t>(n_), 0);
    dead_.assign(static_cast<std::size_t>(n_), 0);
    running_ = n_;
    round_ = 0;

    // Setup phase (timed into init_ns): batch-construct the programs into
    // the pool, then deliver each node its initial knowledge.
    const auto init_start = std::chrono::steady_clock::now();
    pool_.reserve(static_cast<std::size_t>(n_));
    source.build(static_cast<std::size_t>(n_), pool_);
    if (options.checkpoint.resume != nullptr) {
      const EngineCheckpoint& cp = *options.checkpoint.resume;
      cp.require_matches(g_);
      // init still runs on every node — it hands each program its initial
      // knowledge, from which graph-shaped state is re-derived.  The
      // round-0 halt decisions it reports are already recorded in the
      // checkpoint, so they are ignored here; load_state below overwrites
      // the dynamic state.
      for (graph::NodeIndex v = 0; v < n_; ++v) {
        pool_[static_cast<std::size_t>(v)]->init(g_.incident_colours(v));
      }
      for (std::size_t v = 0; v < static_cast<std::size_t>(n_); ++v) {
        result_.outputs[v] = cp.outputs[v];
        result_.halt_round[v] = cp.halt_round[v];
        halted_[v] = static_cast<char>(cp.halted[v]);
        down_[v] = static_cast<char>(cp.down[v]);
        dead_[v] = static_cast<char>(cp.dead[v]);
      }
      running_ = cp.running;
      round_ = cp.round;
      result_.crashes = cp.crashes;
      result_.restarts = cp.restarts;
      result_.messages_dropped = cp.messages_dropped;
      result_.max_message_bytes = static_cast<std::size_t>(cp.max_message_bytes);
      result_.total_message_bytes = static_cast<std::size_t>(cp.total_message_bytes);
      result_.messages_sent = static_cast<std::size_t>(cp.messages_sent);
      std::size_t blob = 0;
      for (std::size_t v = 0; v < static_cast<std::size_t>(n_); ++v) {
        if (halted_[v] || dead_[v]) continue;
        pool_[v]->load_state(cp.program_state[blob++]);
      }
    } else {
      for (graph::NodeIndex v = 0; v < n_; ++v) {
        if (pool_[static_cast<std::size_t>(v)]->init(g_.incident_colours(v))) {
          halted_[static_cast<std::size_t>(v)] = 1;
          result_.halt_round[static_cast<std::size_t>(v)] = 0;
          result_.outputs[static_cast<std::size_t>(v)] =
              pool_[static_cast<std::size_t>(v)]->output();
          --running_;
        }
      }
    }
    result_.init_ns = elapsed_ns(init_start);

    // Fault-event cursor.  On a resume the checkpointed flags already
    // reflect every event up to round_, so the cursor skips them.
    ev_ = plan_ != nullptr ? plan_->first_event_at(round_ + 1) : 0;
  }

  bool done() const noexcept override { return running_ == 0; }
  int round() const noexcept override { return round_; }

  void step() override {
    const int round = round_ + 1;
    if (round > max_rounds_) {
      throw std::runtime_error("run_sync: algorithm did not halt within max_rounds");
    }
    // Phase 0: apply this round's fault events before the send phase.  A
    // crash aimed at a halted or dead node is a no-op; a permanent crash
    // removes the node from the run (output stays ⊥, halt_round −1).
    if (plan_ != nullptr) {
      const std::vector<FaultEvent>& events = plan_->events();
      while (ev_ < events.size() && events[ev_].round <= round) {
        const FaultEvent& e = events[ev_++];
        if (e.node < 0 || e.node >= n_) {
          throw std::invalid_argument("FaultPlan: event targets a node outside the graph");
        }
        const auto v = static_cast<std::size_t>(e.node);
        if (e.up) {
          if (!halted_[v] && !dead_[v] && down_[v]) {
            down_[v] = 0;
            ++result_.restarts;
          }
        } else {
          if (!halted_[v] && !dead_[v]) {
            down_[v] = 1;
            ++result_.crashes;
            if (e.permanent) {
              dead_[v] = 1;
              --running_;
            }
          }
        }
      }
    }
    // Phase 1: collect outgoing messages.  Halted nodes re-announce their
    // final output (visible per the paper's output announcement); down and
    // dead nodes send nothing.
    const auto send_start = std::chrono::steady_clock::now();
    std::vector<std::map<Colour, Message>> outgoing(static_cast<std::size_t>(n_));
    for (graph::NodeIndex v = 0; v < n_; ++v) {
      if (halted_[static_cast<std::size_t>(v)] || down_[static_cast<std::size_t>(v)]) continue;
      outgoing[static_cast<std::size_t>(v)] = pool_[static_cast<std::size_t>(v)]->send(round);
      for (const auto& [colour, message] : outgoing[static_cast<std::size_t>(v)]) {
        result_.max_message_bytes = std::max(result_.max_message_bytes, message.size());
        result_.total_message_bytes += message.size();
        ++result_.messages_sent;
      }
    }
    result_.send_ns += elapsed_ns(send_start);
    // Phase 2: build every inbox from the state at the *start* of the
    // round, then deliver.  A node halting in this round must not leak its
    // decision to same-round receivers — all nodes act simultaneously.
    // Down/dead receivers get no inbox; a down/dead sender reads as absent
    // on the shared edge.  Drops hit only messages actually in flight
    // (running sender, running receiver, message present) — halted
    // announcements are environment, not messages, and are never dropped.
    const auto receive_start = std::chrono::steady_clock::now();
    std::vector<std::map<Colour, Message>> inboxes(static_cast<std::size_t>(n_));
    for (graph::NodeIndex v = 0; v < n_; ++v) {
      if (halted_[static_cast<std::size_t>(v)] || down_[static_cast<std::size_t>(v)]) continue;
      for (Colour c : g_.incident_colours(v)) {
        const graph::NodeIndex u = *g_.neighbour(v, c);
        if (halted_[static_cast<std::size_t>(u)]) {
          inboxes[static_cast<std::size_t>(v)][c] =
              std::string(1, kHaltedPrefix) +
              std::to_string(static_cast<int>(result_.outputs[static_cast<std::size_t>(u)]));
        } else if (down_[static_cast<std::size_t>(u)]) {
          inboxes[static_cast<std::size_t>(v)][c] = Message{};
        } else {
          auto it = outgoing[static_cast<std::size_t>(u)].find(c);
          if (it == outgoing[static_cast<std::size_t>(u)].end()) {
            inboxes[static_cast<std::size_t>(v)][c] = Message{};
          } else if (plan_ != nullptr && plan_->drops(round, u, c)) {
            inboxes[static_cast<std::size_t>(v)][c] = Message{};
            ++result_.messages_dropped;
          } else {
            inboxes[static_cast<std::size_t>(v)][c] = it->second;
          }
        }
      }
    }
    for (graph::NodeIndex v = 0; v < n_; ++v) {
      if (halted_[static_cast<std::size_t>(v)] || down_[static_cast<std::size_t>(v)]) continue;
      if (pool_[static_cast<std::size_t>(v)]->receive(round,
                                                      inboxes[static_cast<std::size_t>(v)])) {
        halted_[static_cast<std::size_t>(v)] = 1;
        result_.halt_round[static_cast<std::size_t>(v)] = round;
        result_.outputs[static_cast<std::size_t>(v)] =
            pool_[static_cast<std::size_t>(v)]->output();
        --running_;
      }
    }
    result_.receive_ns += elapsed_ns(receive_start);
    round_ = round;
    // Round `round` is now complete — the only point a checkpoint can be
    // captured (checkpoint.hpp explains why round boundaries suffice).
    if (every_ > 0 && sink_ && running_ > 0 && round % every_ == 0) {
      sink_(capture_checkpoint(g_, round, running_, result_, halted_, down_, dead_, pool_));
    }
  }

  RunResult result() override {
    for (int r : result_.halt_round) result_.rounds = std::max(result_.rounds, r);
    return std::move(result_);
  }

 private:
  const graph::EdgeColouredGraph& g_;
  int n_;
  int max_rounds_;
  int every_;
  std::function<void(const EngineCheckpoint&)> sink_;
  const FaultPlan* plan_ = nullptr;
  ProgramPool pool_;
  RunResult result_;
  std::vector<char> halted_;
  std::vector<char> down_;
  std::vector<char> dead_;
  int running_ = 0;
  int round_ = 0;  // last completed round
  std::size_t ev_ = 0;  // fault-event cursor
};

}  // namespace

std::unique_ptr<Session> make_sync_session(const graph::EdgeColouredGraph& g,
                                           const ProgramSource& source,
                                           const RunOptions& options) {
  return std::make_unique<SyncSession>(g, source, options);
}

RunResult run_sync(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   int max_rounds) {
  return run_sync(g, source, RunOptions{max_rounds, {}, {}});
}

RunResult run_sync(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   int max_rounds, const FaultOptions& faults,
                   const CheckpointOptions& checkpoint) {
  return run_sync(g, source, RunOptions{max_rounds, faults, checkpoint});
}

RunResult run_sync(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   const RunOptions& options) {
  SyncSession session(g, source, options);
  while (!session.done()) session.step();
  return session.result();
}

}  // namespace dmm::local
