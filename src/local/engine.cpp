#include "local/engine.hpp"

#include <chrono>
#include <stdexcept>

#include "local/checkpoint.hpp"
#include "local/faults.hpp"
#include "local/program_pool.hpp"

namespace dmm::local {

void NodeProgram::save_state(std::string& /*out*/) const {
  throw std::logic_error(
      "NodeProgram::save_state: this program does not support checkpointing");
}

void NodeProgram::load_state(std::string_view /*in*/) {
  throw std::logic_error(
      "NodeProgram::load_state: this program does not support checkpointing");
}

namespace {

/// Snapshot of the engine state after a completed round; shared between the
/// checkpoint sink and (structurally) FlatEngine::snapshot.
EngineCheckpoint capture_checkpoint(const graph::EdgeColouredGraph& g, int round,
                                    int running, const RunResult& result,
                                    const std::vector<char>& halted,
                                    const std::vector<char>& down,
                                    const std::vector<char>& dead, ProgramPool& pool) {
  EngineCheckpoint cp;
  cp.node_count = g.node_count();
  cp.k = g.k();
  cp.edge_hash = graph_fingerprint(g);
  cp.round = round;
  cp.running = running;
  cp.crashes = result.crashes;
  cp.restarts = result.restarts;
  cp.messages_dropped = result.messages_dropped;
  cp.max_message_bytes = result.max_message_bytes;
  cp.total_message_bytes = result.total_message_bytes;
  cp.messages_sent = result.messages_sent;
  cp.outputs = result.outputs;
  cp.halt_round.assign(result.halt_round.begin(), result.halt_round.end());
  cp.halted.assign(halted.begin(), halted.end());
  cp.down.assign(down.begin(), down.end());
  cp.dead.assign(dead.begin(), dead.end());
  const auto n = static_cast<std::size_t>(g.node_count());
  for (std::size_t v = 0; v < n; ++v) {
    if (halted[v] || dead[v]) continue;
    std::string blob;
    pool[v]->save_state(blob);
    cp.program_state.push_back(std::move(blob));
  }
  return cp;
}

}  // namespace

RunResult run_sync(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   int max_rounds) {
  return run_sync(g, source, max_rounds, FaultOptions{});
}

RunResult run_sync(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   int max_rounds, const FaultOptions& faults,
                   const CheckpointOptions& checkpoint) {
  const int n = g.node_count();
  const FaultPlan* plan =
      (faults.plan != nullptr && !faults.plan->empty()) ? faults.plan : nullptr;
  if (plan != nullptr) plan->require_fits(n);

  RunResult result;
  result.outputs.assign(static_cast<std::size_t>(n), kUnmatched);
  result.halt_round.assign(static_cast<std::size_t>(n), -1);

  std::vector<char> halted(static_cast<std::size_t>(n), 0);
  std::vector<char> down(static_cast<std::size_t>(n), 0);
  std::vector<char> dead(static_cast<std::size_t>(n), 0);
  int running = n;
  int start_round = 0;

  // Setup phase (timed into init_ns): batch-construct the programs into
  // the pool, then deliver each node its initial knowledge.
  ProgramPool pool;
  const auto init_start = std::chrono::steady_clock::now();
  pool.reserve(static_cast<std::size_t>(n));
  source.build(static_cast<std::size_t>(n), pool);
  if (checkpoint.resume != nullptr) {
    const EngineCheckpoint& cp = *checkpoint.resume;
    cp.require_matches(g);
    // init still runs on every node — it hands each program its initial
    // knowledge, from which graph-shaped state is re-derived.  The round-0
    // halt decisions it reports are already recorded in the checkpoint, so
    // they are ignored here; load_state below overwrites the dynamic state.
    for (graph::NodeIndex v = 0; v < n; ++v) {
      pool[static_cast<std::size_t>(v)]->init(g.incident_colours(v));
    }
    for (std::size_t v = 0; v < static_cast<std::size_t>(n); ++v) {
      result.outputs[v] = cp.outputs[v];
      result.halt_round[v] = cp.halt_round[v];
      halted[v] = static_cast<char>(cp.halted[v]);
      down[v] = static_cast<char>(cp.down[v]);
      dead[v] = static_cast<char>(cp.dead[v]);
    }
    running = cp.running;
    start_round = cp.round;
    result.crashes = cp.crashes;
    result.restarts = cp.restarts;
    result.messages_dropped = cp.messages_dropped;
    result.max_message_bytes = static_cast<std::size_t>(cp.max_message_bytes);
    result.total_message_bytes = static_cast<std::size_t>(cp.total_message_bytes);
    result.messages_sent = static_cast<std::size_t>(cp.messages_sent);
    std::size_t blob = 0;
    for (std::size_t v = 0; v < static_cast<std::size_t>(n); ++v) {
      if (halted[v] || dead[v]) continue;
      pool[v]->load_state(cp.program_state[blob++]);
    }
  } else {
    for (graph::NodeIndex v = 0; v < n; ++v) {
      if (pool[static_cast<std::size_t>(v)]->init(g.incident_colours(v))) {
        halted[static_cast<std::size_t>(v)] = 1;
        result.halt_round[static_cast<std::size_t>(v)] = 0;
        result.outputs[static_cast<std::size_t>(v)] = pool[static_cast<std::size_t>(v)]->output();
        --running;
      }
    }
  }
  result.init_ns = static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                           std::chrono::steady_clock::now() - init_start)
                                           .count());

  // Fault-event cursor.  On a resume the checkpointed flags already
  // reflect every event up to start_round, so the cursor skips them.
  std::size_t ev = plan != nullptr ? plan->first_event_at(start_round + 1) : 0;

  for (int round = start_round + 1; running > 0; ++round) {
    if (round > max_rounds) {
      throw std::runtime_error("run_sync: algorithm did not halt within max_rounds");
    }
    // Phase 0: apply this round's fault events before the send phase.  A
    // crash aimed at a halted or dead node is a no-op; a permanent crash
    // removes the node from the run (output stays ⊥, halt_round −1).
    if (plan != nullptr) {
      const std::vector<FaultEvent>& events = plan->events();
      while (ev < events.size() && events[ev].round <= round) {
        const FaultEvent& e = events[ev++];
        if (e.node < 0 || e.node >= n) {
          throw std::invalid_argument("FaultPlan: event targets a node outside the graph");
        }
        const auto v = static_cast<std::size_t>(e.node);
        if (e.up) {
          if (!halted[v] && !dead[v] && down[v]) {
            down[v] = 0;
            ++result.restarts;
          }
        } else {
          if (!halted[v] && !dead[v]) {
            down[v] = 1;
            ++result.crashes;
            if (e.permanent) {
              dead[v] = 1;
              --running;
            }
          }
        }
      }
    }
    // Phase 1: collect outgoing messages.  Halted nodes re-announce their
    // final output (visible per the paper's output announcement); down and
    // dead nodes send nothing.
    std::vector<std::map<Colour, Message>> outgoing(static_cast<std::size_t>(n));
    for (graph::NodeIndex v = 0; v < n; ++v) {
      if (halted[static_cast<std::size_t>(v)] || down[static_cast<std::size_t>(v)]) continue;
      outgoing[static_cast<std::size_t>(v)] = pool[static_cast<std::size_t>(v)]->send(round);
      for (const auto& [colour, message] : outgoing[static_cast<std::size_t>(v)]) {
        result.max_message_bytes = std::max(result.max_message_bytes, message.size());
        result.total_message_bytes += message.size();
        ++result.messages_sent;
      }
    }
    // Phase 2: build every inbox from the state at the *start* of the
    // round, then deliver.  A node halting in this round must not leak its
    // decision to same-round receivers — all nodes act simultaneously.
    // Down/dead receivers get no inbox; a down/dead sender reads as absent
    // on the shared edge.  Drops hit only messages actually in flight
    // (running sender, running receiver, message present) — halted
    // announcements are environment, not messages, and are never dropped.
    std::vector<std::map<Colour, Message>> inboxes(static_cast<std::size_t>(n));
    for (graph::NodeIndex v = 0; v < n; ++v) {
      if (halted[static_cast<std::size_t>(v)] || down[static_cast<std::size_t>(v)]) continue;
      for (Colour c : g.incident_colours(v)) {
        const graph::NodeIndex u = *g.neighbour(v, c);
        if (halted[static_cast<std::size_t>(u)]) {
          inboxes[static_cast<std::size_t>(v)][c] =
              std::string(1, kHaltedPrefix) +
              std::to_string(static_cast<int>(result.outputs[static_cast<std::size_t>(u)]));
        } else if (down[static_cast<std::size_t>(u)]) {
          inboxes[static_cast<std::size_t>(v)][c] = Message{};
        } else {
          auto it = outgoing[static_cast<std::size_t>(u)].find(c);
          if (it == outgoing[static_cast<std::size_t>(u)].end()) {
            inboxes[static_cast<std::size_t>(v)][c] = Message{};
          } else if (plan != nullptr && plan->drops(round, u, c)) {
            inboxes[static_cast<std::size_t>(v)][c] = Message{};
            ++result.messages_dropped;
          } else {
            inboxes[static_cast<std::size_t>(v)][c] = it->second;
          }
        }
      }
    }
    for (graph::NodeIndex v = 0; v < n; ++v) {
      if (halted[static_cast<std::size_t>(v)] || down[static_cast<std::size_t>(v)]) continue;
      if (pool[static_cast<std::size_t>(v)]->receive(round, inboxes[static_cast<std::size_t>(v)])) {
        halted[static_cast<std::size_t>(v)] = 1;
        result.halt_round[static_cast<std::size_t>(v)] = round;
        result.outputs[static_cast<std::size_t>(v)] = pool[static_cast<std::size_t>(v)]->output();
        --running;
      }
    }
    // Round `round` is now complete — the only point a checkpoint can be
    // captured (checkpoint.hpp explains why round boundaries suffice).
    if (checkpoint.every > 0 && checkpoint.sink && running > 0 &&
        round % checkpoint.every == 0) {
      checkpoint.sink(capture_checkpoint(g, round, running, result, halted, down, dead, pool));
    }
  }
  for (int r : result.halt_round) result.rounds = std::max(result.rounds, r);
  return result;
}

}  // namespace dmm::local
