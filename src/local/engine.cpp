#include "local/engine.hpp"

#include <chrono>
#include <stdexcept>

#include "local/program_pool.hpp"

namespace dmm::local {

RunResult run_sync(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   int max_rounds) {
  const int n = g.node_count();
  RunResult result;
  result.outputs.assign(static_cast<std::size_t>(n), kUnmatched);
  result.halt_round.assign(static_cast<std::size_t>(n), -1);

  std::vector<char> halted(static_cast<std::size_t>(n), 0);
  int running = n;
  // Setup phase (timed into init_ns): batch-construct the programs into
  // the pool, then deliver each node its initial knowledge.
  ProgramPool pool;
  const auto init_start = std::chrono::steady_clock::now();
  pool.reserve(static_cast<std::size_t>(n));
  source.build(static_cast<std::size_t>(n), pool);
  for (graph::NodeIndex v = 0; v < n; ++v) {
    if (pool[static_cast<std::size_t>(v)]->init(g.incident_colours(v))) {
      halted[static_cast<std::size_t>(v)] = 1;
      result.halt_round[static_cast<std::size_t>(v)] = 0;
      result.outputs[static_cast<std::size_t>(v)] = pool[static_cast<std::size_t>(v)]->output();
      --running;
    }
  }
  result.init_ns = static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                           std::chrono::steady_clock::now() - init_start)
                                           .count());

  for (int round = 1; running > 0; ++round) {
    if (round > max_rounds) {
      throw std::runtime_error("run_sync: algorithm did not halt within max_rounds");
    }
    // Phase 1: collect outgoing messages.  Halted nodes re-announce their
    // final output (visible per the paper's output announcement).
    std::vector<std::map<Colour, Message>> outgoing(static_cast<std::size_t>(n));
    for (graph::NodeIndex v = 0; v < n; ++v) {
      if (halted[static_cast<std::size_t>(v)]) continue;
      outgoing[static_cast<std::size_t>(v)] = pool[static_cast<std::size_t>(v)]->send(round);
      for (const auto& [colour, message] : outgoing[static_cast<std::size_t>(v)]) {
        result.max_message_bytes = std::max(result.max_message_bytes, message.size());
        result.total_message_bytes += message.size();
        ++result.messages_sent;
      }
    }
    // Phase 2: build every inbox from the state at the *start* of the
    // round, then deliver.  A node halting in this round must not leak its
    // decision to same-round receivers — all nodes act simultaneously.
    std::vector<std::map<Colour, Message>> inboxes(static_cast<std::size_t>(n));
    for (graph::NodeIndex v = 0; v < n; ++v) {
      if (halted[static_cast<std::size_t>(v)]) continue;
      for (Colour c : g.incident_colours(v)) {
        const graph::NodeIndex u = *g.neighbour(v, c);
        if (halted[static_cast<std::size_t>(u)]) {
          inboxes[static_cast<std::size_t>(v)][c] =
              std::string(1, kHaltedPrefix) +
              std::to_string(static_cast<int>(result.outputs[static_cast<std::size_t>(u)]));
        } else {
          auto it = outgoing[static_cast<std::size_t>(u)].find(c);
          inboxes[static_cast<std::size_t>(v)][c] =
              it == outgoing[static_cast<std::size_t>(u)].end() ? Message{} : it->second;
        }
      }
    }
    for (graph::NodeIndex v = 0; v < n; ++v) {
      if (halted[static_cast<std::size_t>(v)]) continue;
      if (pool[static_cast<std::size_t>(v)]->receive(round, inboxes[static_cast<std::size_t>(v)])) {
        halted[static_cast<std::size_t>(v)] = 1;
        result.halt_round[static_cast<std::size_t>(v)] = round;
        result.outputs[static_cast<std::size_t>(v)] = pool[static_cast<std::size_t>(v)]->output();
        --running;
      }
    }
  }
  for (int r : result.halt_round) result.rounds = std::max(result.rounds, r);
  return result;
}

}  // namespace dmm::local
