#include "local/view_engine.hpp"

#include "local/ball.hpp"

namespace dmm::local {

std::vector<Colour> run_views(const graph::EdgeColouredGraph& g, const LocalAlgorithm& algo) {
  const int radius = algo.running_time() + 1;
  std::vector<Colour> out(static_cast<std::size_t>(g.node_count()), kUnmatched);
  for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
    out[static_cast<std::size_t>(v)] = algo.evaluate(view_ball(g, v, radius));
  }
  return out;
}

}  // namespace dmm::local
