#include "local/ball.hpp"

#include <deque>

namespace dmm::local {

colsys::ColourSystem view_ball(const graph::EdgeColouredGraph& g, graph::NodeIndex v, int radius) {
  // Views are truncations: faithful exactly to `radius` (§2.3).
  colsys::ColourSystem out(g.k(), radius);
  struct Item {
    graph::NodeIndex base;       // node of g this cover node lies over
    colsys::NodeId lift;         // node in the output tree
    gk::Colour arrived_by;       // colour of the edge towards the parent
    int depth;
  };
  std::deque<Item> queue{{v, colsys::ColourSystem::root(), gk::kNoColour, 0}};
  while (!queue.empty()) {
    const Item it = queue.front();
    queue.pop_front();
    if (it.depth == radius) continue;
    for (gk::Colour c : g.incident_colours(it.base)) {
      if (c == it.arrived_by) continue;  // reduced walks do not backtrack
      const auto next = g.neighbour(it.base, c);
      queue.push_back({*next, out.add_child(it.lift, c), c, it.depth + 1});
    }
  }
  return out;
}

bool indistinguishable(const graph::EdgeColouredGraph& g, graph::NodeIndex u,
                       graph::NodeIndex v, int rounds) {
  const int radius = rounds + 1;
  return colsys::ColourSystem::equal_to_radius(view_ball(g, u, radius), view_ball(g, v, radius),
                                               radius);
}

}  // namespace dmm::local
