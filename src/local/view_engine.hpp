// View-based execution: applies a LocalAlgorithm (the paper's functional
// definition of a distributed algorithm, §2.3) to every node of a finite
// graph by extracting each node's radius-(r+1) view.
//
// Together with the message-passing engine this gives two independent
// implementations of the model; tests check they agree (experiment E12).
#pragma once

#include <vector>

#include "graph/edge_coloured_graph.hpp"
#include "local/algorithm.hpp"

namespace dmm::local {

/// Outputs of `algo` on every node of g.
std::vector<Colour> run_views(const graph::EdgeColouredGraph& g, const LocalAlgorithm& algo);

}  // namespace dmm::local
