#include "local/program_pool.hpp"

#include <stdexcept>

namespace dmm::local {

NodeProgram* ProgramPool::adopt(std::unique_ptr<NodeProgram> program) {
  NodeProgram* raw = program.get();
  adopted_.push_back(std::move(program));
  items_.push_back(raw);
  return raw;
}

void ProgramPool::clear() {
  for (auto it = pooled_.rbegin(); it != pooled_.rend(); ++it) {
    (*it)->~NodeProgram();
  }
  pooled_.clear();
  adopted_.clear();
  items_.clear();
  arena_.reset();
}

void ProgramFactory::make_programs(std::size_t count, ProgramPool& pool) const {
  for (std::size_t i = 0; i < count; ++i) make_one(pool);
}

void ProgramSource::build(std::size_t count, ProgramPool& pool) const {
  const std::size_t before = pool.size();
  if (factory_) {
    factory_->make_programs(count, pool);
  } else if (legacy_) {
    for (std::size_t i = 0; i < count; ++i) pool.adopt(legacy_());
  } else {
    throw std::logic_error("ProgramSource: empty source (no factory)");
  }
  if (pool.size() - before < count) {
    throw std::logic_error("ProgramSource: factory constructed too few programs");
  }
}

}  // namespace dmm::local
