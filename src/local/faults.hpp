// Deterministic fault injection for the LOCAL engines (ISSUE 8).
//
// A FaultPlan is a seeded, schedule-independent description of what goes
// wrong during a run: per-round node crashes (with a restart round, or
// permanent), and per-message drops.  Both engines consume the same plan
// through FaultOptions and are required to produce bit-identical
// RunResults — the plan is pure data, so the engine-equivalence discipline
// of PRs 2–7 extends unchanged to faulty runs (tests/test_faults.cpp).
//
// Semantics (docs/faults.md):
//   * a node that is *down* sends nothing, receives nothing and cannot
//     halt; its neighbours read absent messages on the shared edges;
//   * a *restart* resumes the node from its frozen pre-crash program state
//     (the deterministic equivalent of replaying its kept transcript: the
//     state is a pure function of the rounds it actually observed);
//   * a *permanent* crash removes the node from the run — output ⊥,
//     halt_round −1 — and is what the fault counters gauge;
//   * a crash aimed at an already-halted node is a no-op (its announced
//     output is part of the environment, not of the protocol);
//   * message drops are a pure hash of (round, sender, colour) against the
//     drop probability — no RNG state advances, so whether a given message
//     is dropped is independent of thread count, chunk size and read
//     order.  (A properly edge-coloured graph has at most one edge per
//     colour at each node, so the triple names one directed edge.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_coloured_graph.hpp"

namespace dmm::local {

/// One node transition, applied at the *start* of `round` (before the
/// round's send phase): up == false takes the node down (permanently when
/// `permanent`), up == true brings it back.
struct FaultEvent {
  int round = 0;
  graph::NodeIndex node = 0;
  bool up = false;
  bool permanent = false;
};

/// Knobs for FaultPlan::random; parse_fault_spec reads the CLI grammar
/// "crash=0.02,down=2-5,perm=0.1,drop=0.01,horizon=16,seed=7".
struct FaultSpec {
  double crash_prob = 0.0;      // per-node chance of one crash
  int horizon = 8;              // last round at which a crash may start
  int min_down = 1;             // crash duration range (rounds)
  int max_down = 2;
  double permanent_prob = 0.0;  // chance a crash never restarts
  double drop_prob = 0.0;       // per-(round, sender, colour) drop chance
  std::uint64_t seed = 0;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Crashes `node` at the start of `round`, down for `down_rounds` rounds
  /// (it restarts at round + down_rounds); down_rounds <= 0 means the
  /// crash is permanent.  Rounds start at 1.
  void add_crash(graph::NodeIndex node, int round, int down_rounds);

  /// Every (round, sender, colour) message is dropped independently with
  /// probability `drop_prob`, decided by hashing the triple against
  /// `seed` — stateless, so the decision is identical on every engine and
  /// schedule.
  void set_drops(double drop_prob, std::uint64_t seed);

  /// Seeded random plan over the nodes of `g` per `spec`.
  static FaultPlan random(const graph::EdgeColouredGraph& g, const FaultSpec& spec);

  bool empty() const noexcept { return events_.empty() && !has_drops_; }
  bool has_crashes() const noexcept { return !events_.empty(); }
  bool has_drops() const noexcept { return has_drops_; }

  /// Sorted by (round, node), restarts before crashes on ties.
  const std::vector<FaultEvent>& events() const noexcept { return events_; }

  /// Index of the first event with event.round >= round (the resume
  /// cursor: a run restored after completing round r continues at
  /// first_event_at(r + 1)).
  std::size_t first_event_at(int round) const noexcept;

  /// True iff the round-`round` message from `sender` along `colour` is
  /// dropped.  Pure function of the arguments and the drop seed.
  bool drops(int round, graph::NodeIndex sender, gk::Colour colour) const noexcept;

  /// Largest restart round in the plan (0 when none): faulty runs need
  /// max_rounds headroom past it, since a restarted node still has to
  /// finish its protocol.
  int max_restart_round() const noexcept;

  /// Throws std::invalid_argument when any event targets a node outside
  /// [0, node_count).  The engines call this before round 1, so a
  /// mistargeted plan is rejected even when the run halts before the
  /// event's round would have applied it.
  void require_fits(graph::NodeIndex node_count) const;

 private:
  std::vector<FaultEvent> events_;
  double drop_prob_ = 0.0;
  std::uint64_t drop_threshold_ = 0;
  std::uint64_t drop_seed_ = 0;
  bool has_drops_ = false;
};

/// Parses the CLI fault grammar (see FaultSpec); unknown keys and malformed
/// values throw std::invalid_argument.
FaultSpec parse_fault_spec(const std::string& text);

}  // namespace dmm::local
