#include "local/flat_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "local/checkpoint.hpp"
#include "local/faults.hpp"

namespace dmm::local {

namespace {

/// Slot length value meaning "the payload spilled to the arena".
constexpr std::uint8_t kSpillLen = 0xff;

/// Auto chunking (FlatEngineOptions::chunk_slots == 0): aim for this many
/// chunks per worker so the tail imbalance of the last chunks stays a
/// small fraction of a phase, with a floor so tiny graphs do not shatter
/// into per-node chunks whose claim overhead exceeds their work.
constexpr std::size_t kChunksPerWorker = 16;
constexpr std::size_t kMinAutoChunkSlots = 1024;

double phase_elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - since)
                                 .count());
}

}  // namespace

// The persistent phase-dispatch pool lives in runtime.hpp as WorkerPool
// since the shared-Runtime refactor: a standalone engine still owns a
// private instance, a runtime-backed engine borrows the process-shared one.

/// One directed-edge message slot, sender-major: node v's outgoing message
/// on its i-th port lives at slot row[v] + i, so the send phase streams
/// sequentially and only the receive phase gathers.  A slot is live only
/// when its stamp equals the current round's 8-bit tag, which makes
/// clearing the plane between rounds unnecessary (the engine wipes the
/// plane once per 255-round tag cycle instead).  Payloads up to
/// kFlatInlineBytes live inline — 8 slots per cache line, so even a
/// million-edge plane stays cache-resident; longer payloads spill to the
/// writing worker's arena, addressed by the {offset, arena} pair stored in
/// the payload bytes.
struct FlatSlot {
  std::uint8_t stamp = 0;  // 0 = never written; round tags are 1..255
  std::uint8_t len = 0;    // inline length, or kSpillLen
  char payload[kFlatInlineBytes];
};
static_assert(sizeof(FlatSlot) == 8, "eight slots per cache line");
static_assert(kFlatInlineBytes >= 6, "payload must hold a spill {offset, arena} pair");

struct FlatPlane {
  std::vector<FlatSlot> slots;
  // Spill for unbounded messages, per worker.  A standalone engine owns
  // its arenas (own_arenas); a runtime-backed engine points `arenas` at
  // the shared Runtime set instead — spills are round-scoped scratch
  // (cleared by new_round, read only within the same step, never reachable
  // from a stale-stamped slot), and the runtime's borrow lock spans the
  // whole step, so sharing them across sessions is safe and keeps the
  // steady-state footprint one arena set per process, not per session.
  std::vector<std::vector<char>> own_arenas;
  std::vector<std::vector<char>>* arenas = &own_arenas;

  void configure(std::size_t slot_count, int workers,
                 std::vector<std::vector<char>>* shared) {
    slots.assign(slot_count, FlatSlot{});
    if (shared != nullptr) {
      arenas = shared;
      if (arenas->size() < static_cast<std::size_t>(workers)) {
        arenas->resize(static_cast<std::size_t>(workers));
      }
    } else {
      arenas = &own_arenas;
      own_arenas.resize(static_cast<std::size_t>(workers));
    }
  }

  /// Arena capacity is kept, so steady-state rounds allocate nothing; the
  /// slots themselves are invalidated by the round stamp, not by clearing.
  void new_round() {
    for (auto& arena : *arenas) arena.clear();
  }
};

struct alignas(64) FlatEngine::ChunkCursor {
  std::atomic<std::int64_t> next{0};
};

void FlatOutbox::set(int port, std::string_view bytes) {
  if (port < 0 || port >= count_) {
    throw std::out_of_range("FlatOutbox::set: port out of range");
  }
  stats_->max_bytes = std::max(stats_->max_bytes, bytes.size());
  stats_->total_bytes += bytes.size();
  ++stats_->sent;
  FlatSlot& slot = plane_->slots[flat_slot(base_, port)];
  slot.stamp = static_cast<std::uint8_t>(stamp_);
  if (bytes.size() <= kFlatInlineBytes) {
    slot.len = static_cast<std::uint8_t>(bytes.size());
    if (!bytes.empty()) std::memcpy(slot.payload, bytes.data(), bytes.size());
  } else {
    if (bytes.size() > 0xffffffffu) {
      throw std::length_error("FlatOutbox::set: message too long");
    }
    std::vector<char>& arena = (*plane_->arenas)[arena_];
    const std::uint64_t off = arena.size();  // byte cursor: always 64-bit
    if (off > kMaxSpillOffset) {
      throw std::length_error("FlatOutbox::set: spill arena exceeds the 40-bit offset space");
    }
    const auto len = static_cast<std::uint32_t>(bytes.size());
    arena.resize(arena.size() + sizeof(len) + bytes.size());
    std::memcpy(arena.data() + off, &len, sizeof(len));
    std::memcpy(arena.data() + off + sizeof(len), bytes.data(), bytes.size());
    slot.len = kSpillLen;
    // {offset:40, arena:8} packed little-endian byte by byte (portable).
    for (int i = 0; i < 5; ++i) {
      slot.payload[i] = static_cast<char>((off >> (8 * i)) & 0xff);
    }
    slot.payload[5] = static_cast<char>(arena_);
  }
}

void FlatOutbox::set_colour(Colour c, std::string_view bytes) {
  const Colour* end = colours_ + count_;
  const Colour* it = std::lower_bound(colours_, end, c);
  if (it != end && *it == c) {
    set(static_cast<int>(it - colours_), bytes);
    return;
  }
  // Not an incident colour: nothing to deliver, but run_sync counts every
  // message a program produces, so the accounting must match.
  stats_->max_bytes = std::max(stats_->max_bytes, bytes.size());
  stats_->total_bytes += bytes.size();
  ++stats_->sent;
}

void FlatOutbox::broadcast(std::string_view bytes) {
  if (count_ == 0) return;
  if (bytes.size() > kFlatInlineBytes) {
    // Spilling broadcasts are rare; the generic path handles the arena.
    for (int port = 0; port < count_; ++port) set(port, bytes);
    return;
  }
  // The hot path of constant-size protocols (greedy sends one status byte
  // to every neighbour): one stats update and one prepared 8-byte slot
  // store per port.
  stats_->max_bytes = std::max(stats_->max_bytes, bytes.size());
  stats_->total_bytes += bytes.size() * static_cast<std::size_t>(count_);
  stats_->sent += static_cast<std::size_t>(count_);
  FlatSlot proto;
  proto.stamp = static_cast<std::uint8_t>(stamp_);
  proto.len = static_cast<std::uint8_t>(bytes.size());
  if (!bytes.empty()) std::memcpy(proto.payload, bytes.data(), bytes.size());
  FlatSlot* row = plane_->slots.data() + base_;
  for (int port = 0; port < count_; ++port) row[port] = proto;
}

// Default flat hooks: bridge to the map-based API, preserving run_sync's
// semantics (and its message accounting) exactly.
bool NodeProgram::init_flat(const Colour* incident, int degree) {
  return init(std::vector<Colour>(incident, incident + degree));
}

void NodeProgram::send_flat(int round, FlatOutbox& out) {
  for (const auto& [colour, message] : send(round)) out.set_colour(colour, message);
}

bool NodeProgram::receive_flat(int round, const FlatInbox& in) {
  std::map<Colour, Message> inbox;
  for (int port = 0; port < in.ports(); ++port) {
    inbox.emplace(in.colour(port), Message(in.at(port)));
  }
  return receive(round, inbox);
}

FlatEngine::FlatEngine(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                       int max_rounds, const FlatEngineOptions& options, Runtime* runtime)
    : g_(g), source_(source), max_rounds_(max_rounds), runtime_(runtime) {
  // Everything the constructor does — CSR construction, chunk planning,
  // spawning the persistent pool — is setup work, timed into build_ns_
  // and folded into RunResult::init_ns by run() (the old engine started
  // the clock inside run() and under-reported init by the whole CSR).
  const auto build_start = std::chrono::steady_clock::now();
  n_ = g.node_count();
  // Worker clamp: never more workers than nodes (an empty partition buys
  // nothing and the n = 0 / threads = 8 edge used to depend on every
  // phase tolerating it), never more than the one-byte spill-arena index
  // can address, and never fewer than one.  A runtime-backed engine takes
  // its worker budget from the shared runtime (the pool is process-wide
  // and fixed-size), not from options.threads.
  const int budget = runtime_ != nullptr ? runtime_->threads() : options.threads;
  workers_ = std::max(1, std::min(budget, kMaxFlatWorkers));
  if (workers_ > n_) workers_ = std::max(1, n_);
  steal_ = options.steal;
  build_csr();
  if (workers_ > 1) {
    plan_chunks(options.chunk_slots);
    if (runtime_ == nullptr) {
      // The private pool is spawned exactly once per engine and parked
      // between phases — per-round thread creations are zero by
      // construction.  A runtime-backed engine spawns nothing: the shared
      // pool is created lazily by the runtime, once per process.
      pool_threads_ = std::make_unique<WorkerPool>(workers_ - 1);
    }
  }
  plane_ = std::make_unique<FlatPlane>();
  build_ns_ = phase_elapsed_ns(build_start);
}

FlatEngine::~FlatEngine() = default;

void FlatEngine::initialise(const EngineCheckpoint* cp) {
  result_ = RunResult{};
  result_.outputs.assign(static_cast<std::size_t>(n_), kUnmatched);
  result_.halt_round.assign(static_cast<std::size_t>(n_), -1);
  halted_.assign(static_cast<std::size_t>(n_), 0);
  down_.assign(static_cast<std::size_t>(n_), 0);
  dead_.assign(static_cast<std::size_t>(n_), 0);
  announcements_.assign(static_cast<std::size_t>(n_), {});
  pool_.clear();
  pool_.reserve(static_cast<std::size_t>(n_));

  // Setup phase (timed into init_ns): batch-construct every program in
  // the pool's arena, then hand each node a pointer straight into its
  // CSR colour row — no per-node vector is materialised.
  const auto init_start = std::chrono::steady_clock::now();
  source_.build(static_cast<std::size_t>(n_), pool_);
  running_ = n_;
  round_ = 0;
  if (cp != nullptr) {
    // init still runs on every node — programs re-derive graph-shaped
    // state from it; the round-0 halt decisions it reports are already in
    // the checkpoint, and load_state overwrites the dynamic state.
    for (graph::NodeIndex v = 0; v < n_; ++v) {
      const std::size_t begin = row_[static_cast<std::size_t>(v)];
      pool_[static_cast<std::size_t>(v)]->init_flat(port_colour_.data() + begin, degree(v));
    }
    for (std::size_t v = 0; v < static_cast<std::size_t>(n_); ++v) {
      result_.outputs[v] = cp->outputs[v];
      result_.halt_round[v] = cp->halt_round[v];
      halted_[v] = static_cast<char>(cp->halted[v]);
      down_[v] = static_cast<char>(cp->down[v]);
      dead_[v] = static_cast<char>(cp->dead[v]);
    }
    running_ = cp->running;
    round_ = cp->round;
    result_.crashes = cp->crashes;
    result_.restarts = cp->restarts;
    result_.messages_dropped = cp->messages_dropped;
    result_.max_message_bytes = static_cast<std::size_t>(cp->max_message_bytes);
    result_.total_message_bytes = static_cast<std::size_t>(cp->total_message_bytes);
    result_.messages_sent = static_cast<std::size_t>(cp->messages_sent);
    std::size_t blob = 0;
    for (std::size_t v = 0; v < static_cast<std::size_t>(n_); ++v) {
      if (halted_[v] || dead_[v]) continue;
      pool_[v]->load_state(cp->program_state[blob++]);
    }
  } else {
    for (graph::NodeIndex v = 0; v < n_; ++v) {
      const std::size_t begin = row_[static_cast<std::size_t>(v)];
      if (pool_[static_cast<std::size_t>(v)]->init_flat(port_colour_.data() + begin,
                                                        degree(v))) {
        halt(v, /*round=*/0);
        --running_;
      }
    }
  }
  result_.init_ns = build_ns_ + phase_elapsed_ns(init_start);
  result_.threads_spawned = pool_threads_ ? pool_threads_->spawned() : 0;

  // Everything the rounds need is built lazily: a 0-round algorithm on a
  // million nodes never pays for the message plane.
  planes_ready_ = false;
  stats_.assign(static_cast<std::size_t>(workers_), MessageStats{});
  newly_halted_.assign(static_cast<std::size_t>(workers_), {});
}

RunResult FlatEngine::run() { return run(FaultOptions{}); }

RunResult FlatEngine::run(const FaultOptions& faults, const CheckpointOptions& checkpoint) {
  begin(RunOptions{max_rounds_, faults, checkpoint});
  while (!done()) step();
  return finish();
}

void FlatEngine::begin(const RunOptions& options) {
  if (options.max_rounds > 0) max_rounds_ = options.max_rounds;
  plan_ = (options.faults.plan != nullptr && !options.faults.plan->empty())
              ? options.faults.plan
              : nullptr;
  if (plan_ != nullptr) plan_->require_fits(n_);
  faulty_ = plan_ != nullptr;
  drop_mask_ = plan_ != nullptr && plan_->has_drops();
  if (options.checkpoint.resume != nullptr) restore(*options.checkpoint.resume);
  if (!primed_) initialise(nullptr);
  primed_ = false;
  every_ = options.checkpoint.every;
  sink_ = options.checkpoint.sink;
  // On a resume the checkpointed flags already reflect every fault event
  // up to round_, so the cursor skips them.
  ev_ = plan_ != nullptr ? plan_->first_event_at(round_ + 1) : 0;
}

void FlatEngine::step() {
  const int round = round_ + 1;
  if (round > max_rounds_) {
    throw std::runtime_error("run_flat: algorithm did not halt within max_rounds");
  }
  step_round(round);
  round_ = round;
  // Round `round` is now complete — the only point a checkpoint can be
  // captured (checkpoint.hpp explains why round boundaries suffice).
  if (every_ > 0 && sink_ && running_ > 0 && round % every_ == 0) {
    sink_(snapshot());
  }
}

void FlatEngine::step_round(int round) {
  // Borrow the shared runtime for the WHOLE step, not per phase: the spill
  // arenas are shared across sessions and a payload spilled in the send
  // phase is read in this step's receive phase — another session's step in
  // between would clear it.  Standalone engines (runtime_ == nullptr) take
  // no lock; their pool and arenas are private.
  std::unique_lock<std::mutex> borrow;
  if (runtime_ != nullptr) borrow = std::unique_lock<std::mutex>(runtime_->mutex());
  round_now_ = round;
  // Phase 0: apply this round's fault events before the send phase.  A
  // crash aimed at a halted or dead node is a no-op; a permanent crash
  // removes the node from the run (output stays ⊥, halt_round −1).
  if (plan_ != nullptr) {
    const std::vector<FaultEvent>& events = plan_->events();
    while (ev_ < events.size() && events[ev_].round <= round) {
      const FaultEvent& e = events[ev_++];
      if (e.node < 0 || e.node >= n_) {
        throw std::invalid_argument("FaultPlan: event targets a node outside the graph");
      }
      const auto v = static_cast<std::size_t>(e.node);
      if (e.up) {
        if (!halted_[v] && !dead_[v] && down_[v]) {
          down_[v] = 0;
          ++result_.restarts;
        }
      } else {
        if (!halted_[v] && !dead_[v]) {
          down_[v] = 1;
          ++result_.crashes;
          if (e.permanent) {
            dead_[v] = 1;
            --running_;
          }
        }
      }
    }
  }
  if (!planes_ready_) {
    plane_->configure(port_colour_.size(), workers_,
                      runtime_ != nullptr ? &runtime_->arenas() : nullptr);
    // Halts recorded before the first simulated round (round-0 halts, or
    // everything a restored checkpoint carries) rendered no announcements
    // yet; render the ones with a live audience now.
    for (graph::NodeIndex v = 0; v < n_; ++v) {
      if (halted_[static_cast<std::size_t>(v)]) render_announcement(v);
    }
    planes_ready_ = true;
  }
  // One contiguous plane, reused every round: the round stamp plays the
  // role of the classic send/recv buffer swap — a slot whose stamp is
  // not this round's tag is last round's (or older) data and reads as
  // absent, so nothing needs clearing.  Tags cycle through 1..255; the
  // plane is wiped when the cycle restarts so a stale stamp can never
  // alias.  (A restored engine starts mid-cycle on a freshly zeroed
  // plane — stamp 0 never matches a round tag, so that reads as absent
  // exactly like the uninterrupted run's stale-stamp slots.)
  const auto stamp = static_cast<std::uint8_t>(1 + (round - 1) % 255);
  if (round > 1 && stamp == 1) wipe_running_rows();
  FlatPlane& plane = *plane_;
  plane.new_round();

  // Phase 1: running nodes stream this round's messages into their own
  // slot rows; down and dead nodes send nothing.  A chunk (contiguous node
  // range) is claimed by exactly one worker per phase, so no two workers
  // ever touch the same slot.
  const auto send_start = std::chrono::steady_clock::now();
  for_chunks([&](int worker, graph::NodeIndex begin, graph::NodeIndex end) {
    FlatOutbox out;
    out.plane_ = &plane;
    out.arena_ = static_cast<std::uint8_t>(worker);
    out.stats_ = &stats_[static_cast<std::size_t>(worker)];
    out.stamp_ = stamp;
    for (graph::NodeIndex v = begin; v < end; ++v) {
      if (halted_[static_cast<std::size_t>(v)] || down_[static_cast<std::size_t>(v)]) continue;
      out.base_ = row_[static_cast<std::size_t>(v)];
      out.colours_ = port_colour_.data() + out.base_;
      out.count_ = degree(v);
      pool_[static_cast<std::size_t>(v)]->send_flat(round, out);
    }
  });

  // Drop accounting: one serial pass over the freshly stamped slots,
  // counting exactly what run_sync counts while building its inboxes — a
  // message actually in flight (running sender wrote the port, running
  // receiver on the other end) whose (round, sender, colour) hash says
  // drop.  The count is therefore read-independent: a program that never
  // reads the port still loses (and counts) the same messages.  Delivery
  // masking happens separately in resolve().
  if (drop_mask_) {
    for (graph::NodeIndex u = 0; u < n_; ++u) {
      if (halted_[static_cast<std::size_t>(u)] || down_[static_cast<std::size_t>(u)]) continue;
      const std::size_t begin = row_[static_cast<std::size_t>(u)];
      const std::size_t end = row_[static_cast<std::size_t>(u) + 1];
      for (std::size_t s = begin; s < end; ++s) {
        if (plane.slots[s].stamp != stamp) continue;
        const graph::NodeIndex r = peer_node_[s];
        if (halted_[static_cast<std::size_t>(r)] || down_[static_cast<std::size_t>(r)]) continue;
        if (plan_->drops(round, u, port_colour_[s])) ++result_.messages_dropped;
      }
    }
  }
  result_.send_ns += phase_elapsed_ns(send_start);

  const auto receive_start = std::chrono::steady_clock::now();
  // Phase 2: hand each running node a lazy view over its peers' slots,
  // reflecting the start-of-round halted state (a node halting this
  // round must not leak its decision to same-round receivers).  New
  // halts are collected per worker and applied after the barrier.
  for_chunks([&](int worker, graph::NodeIndex begin, graph::NodeIndex end) {
    for (graph::NodeIndex v = begin; v < end; ++v) {
      if (halted_[static_cast<std::size_t>(v)] || down_[static_cast<std::size_t>(v)]) continue;
      const std::size_t row = row_[static_cast<std::size_t>(v)];
      FlatInbox in;
      in.engine_ = this;
      in.plane_ = &plane;
      in.colours_ = port_colour_.data() + row;
      in.row_ = row;
      in.count_ = degree(v);
      in.stamp_ = stamp;
      if (pool_[static_cast<std::size_t>(v)]->receive_flat(round, in)) {
        newly_halted_[static_cast<std::size_t>(worker)].push_back(v);
      }
    }
  });

  for (auto& batch : newly_halted_) {
    for (graph::NodeIndex v : batch) {
      halt(v, round);
      --running_;
    }
  }
  // Render after every same-round halt is marked, so the audience
  // check sees the final halted state.
  for (auto& batch : newly_halted_) {
    for (graph::NodeIndex v : batch) render_announcement(v);
    batch.clear();
  }
  result_.receive_ns += phase_elapsed_ns(receive_start);
}

RunResult FlatEngine::finish() {
  for (const MessageStats& s : stats_) {
    result_.max_message_bytes = std::max(result_.max_message_bytes, s.max_bytes);
    result_.total_message_bytes += s.total_bytes;
    result_.messages_sent += s.sent;
  }
  stats_.assign(static_cast<std::size_t>(workers_), MessageStats{});
  for (int r : result_.halt_round) result_.rounds = std::max(result_.rounds, r);
  return std::move(result_);
}

EngineCheckpoint FlatEngine::snapshot() const {
  EngineCheckpoint cp;
  cp.node_count = n_;
  cp.k = g_.k();
  cp.edge_hash = graph_fingerprint(g_);
  cp.round = round_;
  cp.running = running_;
  cp.crashes = result_.crashes;
  cp.restarts = result_.restarts;
  cp.messages_dropped = result_.messages_dropped;
  // The per-worker stats are merged into the checkpoint exactly like
  // finalise merges them into the RunResult — both folds are commutative,
  // so the checkpointed totals equal run_sync's inline accounting.
  std::size_t max_bytes = result_.max_message_bytes;
  std::size_t total_bytes = result_.total_message_bytes;
  std::size_t sent = result_.messages_sent;
  for (const MessageStats& s : stats_) {
    max_bytes = std::max(max_bytes, s.max_bytes);
    total_bytes += s.total_bytes;
    sent += s.sent;
  }
  cp.max_message_bytes = max_bytes;
  cp.total_message_bytes = total_bytes;
  cp.messages_sent = sent;
  cp.outputs = result_.outputs;
  cp.halt_round.assign(result_.halt_round.begin(), result_.halt_round.end());
  cp.halted.assign(halted_.begin(), halted_.end());
  cp.down.assign(down_.begin(), down_.end());
  cp.dead.assign(dead_.begin(), dead_.end());
  for (std::size_t v = 0; v < static_cast<std::size_t>(n_); ++v) {
    if (halted_[v] || dead_[v]) continue;
    std::string blob;
    pool_[v]->save_state(blob);
    cp.program_state.push_back(std::move(blob));
  }
  return cp;
}

void FlatEngine::checkpoint(std::ostream& out) const { snapshot().write(out); }

void FlatEngine::restore(const EngineCheckpoint& cp) {
  cp.require_matches(g_);
  initialise(&cp);
  primed_ = true;
}

void FlatEngine::restore(std::istream& in) { restore(EngineCheckpoint::read(in)); }

void FlatEngine::build_csr() {
  // Built straight from the edge list: one counting pass, one scatter
  // pass into an interleaved scratch (one cache miss per half-edge, not
  // two), then a sequential split + per-row insertion sort by colour.
  // Never calls incident_colours/neighbour, which allocate per node.
  const std::vector<graph::Edge>& edges = g_.edges();
  std::vector<int> degrees(static_cast<std::size_t>(n_), 0);
  for (const graph::Edge& e : edges) {
    ++degrees[static_cast<std::size_t>(e.u)];
    ++degrees[static_cast<std::size_t>(e.v)];
  }
  row_ = flat_row_offsets(degrees);
  const std::size_t slot_count = row_[static_cast<std::size_t>(n_)];
  struct Half {
    Colour colour;
    graph::NodeIndex peer;
  };
  std::vector<Half> halves(slot_count);
  {
    std::vector<std::size_t> cursor(row_.begin(), row_.end() - 1);
    for (const graph::Edge& e : edges) {
      halves[cursor[static_cast<std::size_t>(e.u)]++] = {e.colour, e.v};
      halves[cursor[static_cast<std::size_t>(e.v)]++] = {e.colour, e.u};
    }
  }
  // Ports must ascend by colour within a row (that is what defines the
  // port order seen by programs); rows have at most k entries.
  for (graph::NodeIndex v = 0; v < n_; ++v) {
    const std::size_t begin = row_[static_cast<std::size_t>(v)];
    const std::size_t end = row_[static_cast<std::size_t>(v) + 1];
    for (std::size_t i = begin + 1; i < end; ++i) {
      const Half h = halves[i];
      std::size_t j = i;
      for (; j > begin && halves[j - 1].colour > h.colour; --j) halves[j] = halves[j - 1];
      halves[j] = h;
    }
  }
  port_colour_.resize(slot_count);
  peer_node_.resize(slot_count);
  for (std::size_t s = 0; s < slot_count; ++s) {
    port_colour_[s] = halves[s].colour;
    peer_node_[s] = halves[s].peer;
  }
}

std::string_view FlatEngine::resolve(const FlatPlane& plane, std::size_t s,
                                     std::uint8_t stamp) const noexcept {
  const graph::NodeIndex u = peer_node_[s];
  if (halted_[static_cast<std::size_t>(u)]) {
    return announcements_[static_cast<std::size_t>(u)];
  }
  // A down (or dead) sender reads as absent on the shared edge.
  if (faulty_ && down_[static_cast<std::size_t>(u)]) return {};
  const std::size_t u_row = row_[static_cast<std::size_t>(u)];
  const std::size_t u_end = row_[static_cast<std::size_t>(u) + 1];
  const auto begin = port_colour_.begin() + static_cast<std::ptrdiff_t>(u_row);
  const auto end = port_colour_.begin() + static_cast<std::ptrdiff_t>(u_end);
  const auto it = std::lower_bound(begin, end, port_colour_[s]);
  const std::string_view view =
      slot_view(plane, u_row + static_cast<std::size_t>(it - begin), stamp);
  // Drop masking: a message the sender actually wrote this round reads as
  // absent when the (round, sender, colour) hash says drop.  Counting
  // happened in the serial pass of step_round; this is delivery only.
  if (drop_mask_ && !view.empty() && plan_->drops(round_now_, u, port_colour_[s])) {
    return {};
  }
  return view;
}

std::string_view FlatEngine::slot_view(const FlatPlane& plane, std::size_t s,
                                       std::uint8_t stamp) const noexcept {
  const FlatSlot& slot = plane.slots[s];
  if (slot.stamp != stamp) return {};
  if (slot.len != kSpillLen) return {slot.payload, slot.len};
  // Unpack the {offset:40, arena:8} spill address written by
  // FlatOutbox::set; the offset expands into a 64-bit cursor.
  std::uint64_t off = 0;
  for (int i = 0; i < 5; ++i) {
    off |= static_cast<std::uint64_t>(static_cast<unsigned char>(slot.payload[i])) << (8 * i);
  }
  const auto arena = static_cast<unsigned char>(slot.payload[5]);
  std::uint32_t len = 0;
  const char* base = (*plane.arenas)[arena].data() + off;
  std::memcpy(&len, base, sizeof(len));
  return {base + sizeof(len), len};
}

void FlatEngine::halt(graph::NodeIndex v, int round) {
  halted_[static_cast<std::size_t>(v)] = 1;
  result_.halt_round[static_cast<std::size_t>(v)] = round;
  result_.outputs[static_cast<std::size_t>(v)] =
      pool_[static_cast<std::size_t>(v)]->output();
}

/// Announcement cache: rendered once per halted node — and only for nodes
/// with a non-halted neighbour, since nobody else ever reads the slot
/// (run_sync re-renders this string per edge per round).  A down peer
/// counts as audience: it may restart and read the announcement later.
void FlatEngine::render_announcement(graph::NodeIndex v) {
  const std::size_t begin = row_[static_cast<std::size_t>(v)];
  const std::size_t end = row_[static_cast<std::size_t>(v) + 1];
  bool audience = false;
  for (std::size_t s = begin; s < end && !audience; ++s) {
    audience = !halted_[static_cast<std::size_t>(peer_node_[s])];
  }
  if (!audience) return;
  announcements_[static_cast<std::size_t>(v)] =
      std::string(1, kHaltedPrefix) +
      std::to_string(static_cast<int>(result_.outputs[static_cast<std::size_t>(v)]));
}

/// The tag cycle restarted: every stamp value is about to be reused, so
/// stale slots must be cleared — but only in rows whose sender is still
/// running.  A halted node never writes again, and resolve() serves its
/// cached announcement without ever reading its slots, so halted rows
/// are dead storage; the old full-plane wipe rewrote them every cycle
/// (pinned by the two-tag-cycle regression in tests/test_flat_stress.cpp).
/// Down rows are wiped too: a down node may restart mid-cycle and leave
/// unwritten ports whose stale stamps must never alias a fresh tag.
void FlatEngine::wipe_running_rows() {
  for (graph::NodeIndex v = 0; v < n_; ++v) {
    if (halted_[static_cast<std::size_t>(v)]) continue;
    const std::size_t begin = row_[static_cast<std::size_t>(v)];
    const std::size_t end = row_[static_cast<std::size_t>(v) + 1];
    std::fill(plane_->slots.begin() + static_cast<std::ptrdiff_t>(begin),
              plane_->slots.begin() + static_cast<std::ptrdiff_t>(end), FlatSlot{});
  }
}

/// Pre-splits the node range into chunks of roughly `target` slot
/// (directed-edge) weight — a node costs 1 + degree, so a run of
/// max-degree hub rows splits into many chunks while the same node count
/// of leaves packs into one.  The chunk list is then divided into one
/// contiguous run per worker, balanced by cumulative weight; each run
/// gets a cache-line-isolated atomic cursor that for_chunks resets per
/// phase and workers drain (and steal from) with fetch_add.
void FlatEngine::plan_chunks(std::size_t chunk_slots) {
  const std::size_t total =
      row_[static_cast<std::size_t>(n_)] + static_cast<std::size_t>(n_);
  std::size_t target = chunk_slots;
  if (target == 0) {
    target = std::max(kMinAutoChunkSlots,
                      total / (static_cast<std::size_t>(workers_) * kChunksPerWorker));
  }
  chunks_.clear();
  std::vector<std::size_t> weight;  // per chunk, for the run split below
  {
    graph::NodeIndex begin = 0;
    std::size_t acc = 0;
    for (graph::NodeIndex v = 0; v < n_; ++v) {
      acc += 1 + static_cast<std::size_t>(degree(v));
      if (acc >= target) {
        chunks_.push_back({begin, v + 1});
        weight.push_back(acc);
        begin = v + 1;
        acc = 0;
      }
    }
    if (begin < n_) {
      chunks_.push_back({begin, n_});
      weight.push_back(acc);
    }
  }
  // Contiguous per-worker runs with balanced cumulative weight: worker w
  // owns chunks [run_begin_[w], run_end_[w]).  Runs may be empty (fewer
  // chunks than workers); the drain loop tolerates that.
  run_begin_.assign(static_cast<std::size_t>(workers_), 0);
  run_end_.assign(static_cast<std::size_t>(workers_), 0);
  cursors_ = std::make_unique<ChunkCursor[]>(static_cast<std::size_t>(workers_));
  std::size_t cut = 0;
  std::size_t carried = 0;
  for (int w = 0; w < workers_; ++w) {
    const std::size_t share =
        total * static_cast<std::size_t>(w + 1) / static_cast<std::size_t>(workers_);
    run_begin_[static_cast<std::size_t>(w)] = static_cast<std::int64_t>(cut);
    while (cut < chunks_.size() && carried + weight[cut] <= share) {
      carried += weight[cut];
      ++cut;
    }
    if (w + 1 == workers_) cut = chunks_.size();  // the tail always lands somewhere
    run_end_[static_cast<std::size_t>(w)] = static_cast<std::int64_t>(cut);
  }
}

/// Runs fn(worker, begin, end) over the planned chunks, in-line when
/// workers_ == 1.  Each worker drains its own chunk run through an
/// atomic cursor, then (when stealing is on) round-robins through the
/// other workers' cursors until every run is dry — so a worker stuck on
/// hub-heavy chunks cannot leave the rest idle.  `worker` is always the
/// *executing* worker: stats, spill arenas and halt batches stay
/// worker-indexed no matter whose chunk is being run, which is what
/// keeps results schedule-independent.  Exceptions propagate through
/// the pool's first-exception-wins barrier, matching the serial
/// engine's fail-fast contract.
template <class F>
void FlatEngine::for_chunks(const F& fn) {
  if (workers_ == 1) {
    fn(0, 0, n_);
    return;
  }
  for (int w = 0; w < workers_; ++w) {
    cursors_[static_cast<std::size_t>(w)].next.store(run_begin_[static_cast<std::size_t>(w)],
                                                     std::memory_order_relaxed);
  }
  auto phase = [&](int worker) {
    // The shared pool may carry more parked threads than this engine has
    // workers (the runtime budget is clamped per engine by node count);
    // surplus workers sit the phase out.
    if (worker >= workers_) return;
    drain(worker, worker, fn);
    if (!steal_) return;
    for (int step = 1; step < workers_; ++step) {
      drain((worker + step) % workers_, worker, fn);
    }
  };
  if (runtime_ != nullptr) {
    // Lazy shared-pool spawn: exactly one session's call creates the
    // threads and inherits them into its threads_spawned gauge; every
    // other session adds 0, so the per-process sum stays threads - 1.
    result_.threads_spawned += runtime_->ensure_pool();
    runtime_->pool()->run(phase);
  } else {
    pool_threads_->run(phase);
  }
}

/// Claims chunks from `victim`'s run until its cursor passes the end and
/// executes them as `worker`.  The cursor is a relaxed fetch_add:
/// claimed values are unique, overshoot past the end is harmless (the
/// cursor is reset before the next phase), and the pool's phase barrier
/// provides all cross-phase ordering.
template <class F>
void FlatEngine::drain(int victim, int worker, const F& fn) {
  const std::int64_t end = run_end_[static_cast<std::size_t>(victim)];
  std::atomic<std::int64_t>& cursor = cursors_[static_cast<std::size_t>(victim)].next;
  for (;;) {
    const std::int64_t c = cursor.fetch_add(1, std::memory_order_relaxed);
    if (c >= end) return;
    const Chunk& chunk = chunks_[static_cast<std::size_t>(c)];
    fn(worker, chunk.begin, chunk.end);
  }
}

std::vector<std::size_t> flat_row_offsets(const std::vector<int>& degrees) {
  std::vector<std::size_t> offsets(degrees.size() + 1, 0);
  for (std::size_t v = 0; v < degrees.size(); ++v) {
    if (degrees[v] < 0) throw std::invalid_argument("flat_row_offsets: negative degree");
    offsets[v + 1] = offsets[v] + static_cast<std::size_t>(degrees[v]);
  }
  return offsets;
}

std::string_view FlatInbox::at(int port) const {
  if (port < 0 || port >= count_) {
    throw std::out_of_range("FlatInbox::at: port out of range");
  }
  return engine_->resolve(*plane_, flat_slot(row_, port), stamp_);
}

namespace {

/// Session adapter over FlatEngine: the engine IS the stepped run; this
/// class only owns it and forwards the Session verbs.
class FlatSession final : public Session {
 public:
  FlatSession(const graph::EdgeColouredGraph& g, const ProgramSource& source,
              const RunOptions& options, const FlatEngineOptions& engine_options,
              Runtime* runtime)
      : engine_(g, source, options.max_rounds, engine_options, runtime) {
    engine_.begin(options);
  }

  void step() override { engine_.step(); }
  bool done() const noexcept override { return engine_.done(); }
  int round() const noexcept override { return engine_.round(); }
  RunResult result() override { return engine_.finish(); }

 private:
  FlatEngine engine_;
};

}  // namespace

RunResult run_flat(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   int max_rounds, const FlatEngineOptions& options) {
  return FlatEngine(g, source, max_rounds, options).run();
}

RunResult run_flat(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   int max_rounds, const FlatEngineOptions& options,
                   const FaultOptions& faults, const CheckpointOptions& checkpoint) {
  return FlatEngine(g, source, max_rounds, options).run(faults, checkpoint);
}

RunResult run_flat(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   const RunOptions& options, const FlatEngineOptions& engine_options,
                   Runtime* runtime) {
  FlatEngine engine(g, source, options.max_rounds, engine_options, runtime);
  engine.begin(options);
  while (!engine.done()) engine.step();
  return engine.finish();
}

std::unique_ptr<Session> make_flat_session(const graph::EdgeColouredGraph& g,
                                           const ProgramSource& source,
                                           const RunOptions& options,
                                           const FlatEngineOptions& engine_options,
                                           Runtime* runtime) {
  return std::make_unique<FlatSession>(g, source, options, engine_options, runtime);
}

std::unique_ptr<Session> make_session(EngineKind kind, const graph::EdgeColouredGraph& g,
                                      const ProgramSource& source, const RunOptions& options,
                                      const FlatEngineOptions& engine_options,
                                      Runtime* runtime) {
  switch (kind) {
    case EngineKind::kFlat:
      return make_flat_session(g, source, options, engine_options, runtime);
    case EngineKind::kSync:
      break;
  }
  return make_sync_session(g, source, options);
}

RunResult run(EngineKind kind, const graph::EdgeColouredGraph& g,
              const ProgramSource& source, int max_rounds) {
  return run(kind, g, source, RunOptions{max_rounds, {}, {}});
}

RunResult run(EngineKind kind, const graph::EdgeColouredGraph& g,
              const ProgramSource& source, int max_rounds, const FaultOptions& faults,
              const CheckpointOptions& checkpoint) {
  return run(kind, g, source, RunOptions{max_rounds, faults, checkpoint});
}

RunResult run(EngineKind kind, const graph::EdgeColouredGraph& g,
              const ProgramSource& source, const RunOptions& options) {
  switch (kind) {
    case EngineKind::kFlat:
      return run_flat(g, source, options);
    case EngineKind::kSync:
      break;
  }
  return run_sync(g, source, options);
}

const char* engine_kind_name(EngineKind kind) noexcept {
  return kind == EngineKind::kFlat ? "flat" : "sync";
}

std::optional<EngineKind> parse_engine_kind(std::string_view name) noexcept {
  if (name == "sync") return EngineKind::kSync;
  if (name == "flat") return EngineKind::kFlat;
  return std::nullopt;
}

}  // namespace dmm::local
