#include "local/flat_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "local/program_pool.hpp"

namespace dmm::local {

namespace {

/// Slot length value meaning "the payload spilled to the arena".
constexpr std::uint8_t kSpillLen = 0xff;

}  // namespace

/// One directed-edge message slot, sender-major: node v's outgoing message
/// on its i-th port lives at slot row[v] + i, so the send phase streams
/// sequentially and only the receive phase gathers.  A slot is live only
/// when its stamp equals the current round's 8-bit tag, which makes
/// clearing the plane between rounds unnecessary (the engine wipes the
/// plane once per 255-round tag cycle instead).  Payloads up to
/// kFlatInlineBytes live inline — 8 slots per cache line, so even a
/// million-edge plane stays cache-resident; longer payloads spill to the
/// writing worker's arena, addressed by the {offset, arena} pair stored in
/// the payload bytes.
struct FlatSlot {
  std::uint8_t stamp = 0;  // 0 = never written; round tags are 1..255
  std::uint8_t len = 0;    // inline length, or kSpillLen
  char payload[kFlatInlineBytes];
};
static_assert(sizeof(FlatSlot) == 8, "eight slots per cache line");
static_assert(kFlatInlineBytes >= 6, "payload must hold a spill {offset, arena} pair");

struct FlatPlane {
  std::vector<FlatSlot> slots;
  std::vector<std::vector<char>> arenas;  // spill for unbounded messages, per worker

  void configure(std::size_t slot_count, int workers) {
    slots.assign(slot_count, FlatSlot{});
    arenas.resize(static_cast<std::size_t>(workers));
  }

  /// Arena capacity is kept, so steady-state rounds allocate nothing; the
  /// slots themselves are invalidated by the round stamp, not by clearing.
  void new_round() {
    for (auto& arena : arenas) arena.clear();
  }

  void wipe_stamps() { std::fill(slots.begin(), slots.end(), FlatSlot{}); }
};

void FlatOutbox::set(int port, std::string_view bytes) {
  if (port < 0 || port >= count_) {
    throw std::out_of_range("FlatOutbox::set: port out of range");
  }
  stats_->max_bytes = std::max(stats_->max_bytes, bytes.size());
  stats_->total_bytes += bytes.size();
  ++stats_->sent;
  FlatSlot& slot = plane_->slots[flat_slot(base_, port)];
  slot.stamp = static_cast<std::uint8_t>(stamp_);
  if (bytes.size() <= kFlatInlineBytes) {
    slot.len = static_cast<std::uint8_t>(bytes.size());
    if (!bytes.empty()) std::memcpy(slot.payload, bytes.data(), bytes.size());
  } else {
    if (bytes.size() > 0xffffffffu) {
      throw std::length_error("FlatOutbox::set: message too long");
    }
    std::vector<char>& arena = plane_->arenas[arena_];
    const std::uint64_t off = arena.size();  // byte cursor: always 64-bit
    if (off > kMaxSpillOffset) {
      throw std::length_error("FlatOutbox::set: spill arena exceeds the 40-bit offset space");
    }
    const auto len = static_cast<std::uint32_t>(bytes.size());
    arena.resize(arena.size() + sizeof(len) + bytes.size());
    std::memcpy(arena.data() + off, &len, sizeof(len));
    std::memcpy(arena.data() + off + sizeof(len), bytes.data(), bytes.size());
    slot.len = kSpillLen;
    // {offset:40, arena:8} packed little-endian byte by byte (portable).
    for (int i = 0; i < 5; ++i) {
      slot.payload[i] = static_cast<char>((off >> (8 * i)) & 0xff);
    }
    slot.payload[5] = static_cast<char>(arena_);
  }
}

void FlatOutbox::set_colour(Colour c, std::string_view bytes) {
  const Colour* end = colours_ + count_;
  const Colour* it = std::lower_bound(colours_, end, c);
  if (it != end && *it == c) {
    set(static_cast<int>(it - colours_), bytes);
    return;
  }
  // Not an incident colour: nothing to deliver, but run_sync counts every
  // message a program produces, so the accounting must match.
  stats_->max_bytes = std::max(stats_->max_bytes, bytes.size());
  stats_->total_bytes += bytes.size();
  ++stats_->sent;
}

void FlatOutbox::broadcast(std::string_view bytes) {
  if (count_ == 0) return;
  if (bytes.size() > kFlatInlineBytes) {
    // Spilling broadcasts are rare; the generic path handles the arena.
    for (int port = 0; port < count_; ++port) set(port, bytes);
    return;
  }
  // The hot path of constant-size protocols (greedy sends one status byte
  // to every neighbour): one stats update and one prepared 8-byte slot
  // store per port.
  stats_->max_bytes = std::max(stats_->max_bytes, bytes.size());
  stats_->total_bytes += bytes.size() * static_cast<std::size_t>(count_);
  stats_->sent += static_cast<std::size_t>(count_);
  FlatSlot proto;
  proto.stamp = static_cast<std::uint8_t>(stamp_);
  proto.len = static_cast<std::uint8_t>(bytes.size());
  if (!bytes.empty()) std::memcpy(proto.payload, bytes.data(), bytes.size());
  FlatSlot* row = plane_->slots.data() + base_;
  for (int port = 0; port < count_; ++port) row[port] = proto;
}

// Default flat hooks: bridge to the map-based API, preserving run_sync's
// semantics (and its message accounting) exactly.
bool NodeProgram::init_flat(const Colour* incident, int degree) {
  return init(std::vector<Colour>(incident, incident + degree));
}

void NodeProgram::send_flat(int round, FlatOutbox& out) {
  for (const auto& [colour, message] : send(round)) out.set_colour(colour, message);
}

bool NodeProgram::receive_flat(int round, const FlatInbox& in) {
  std::map<Colour, Message> inbox;
  for (int port = 0; port < in.ports(); ++port) {
    inbox.emplace(in.colour(port), Message(in.at(port)));
  }
  return receive(round, inbox);
}

class FlatEngine {
 public:
  FlatEngine(const graph::EdgeColouredGraph& g, const ProgramSource& source,
             int max_rounds, const FlatEngineOptions& options)
      : g_(g), source_(source), max_rounds_(max_rounds) {
    n_ = g.node_count();
    // Worker clamp: never more workers than nodes (an empty partition buys
    // nothing and the n = 0 / threads = 8 edge used to depend on every
    // phase tolerating it), never more than the one-byte spill-arena index
    // can address, and never fewer than one.
    workers_ = std::max(1, std::min(options.threads, kMaxFlatWorkers));
    if (workers_ > n_) workers_ = std::max(1, n_);
    build_csr();
  }

  RunResult run() {
    RunResult result;
    result.outputs.assign(static_cast<std::size_t>(n_), kUnmatched);
    result.halt_round.assign(static_cast<std::size_t>(n_), -1);
    halted_.assign(static_cast<std::size_t>(n_), 0);
    announcements_.assign(static_cast<std::size_t>(n_), {});
    pool_.clear();
    pool_.reserve(static_cast<std::size_t>(n_));

    // Setup phase (timed into init_ns): batch-construct every program in
    // the pool's arena, then hand each node a pointer straight into its
    // CSR colour row — no per-node vector is materialised.
    const auto init_start = std::chrono::steady_clock::now();
    source_.build(static_cast<std::size_t>(n_), pool_);
    int running = n_;
    for (graph::NodeIndex v = 0; v < n_; ++v) {
      const std::size_t begin = row_[static_cast<std::size_t>(v)];
      if (pool_[static_cast<std::size_t>(v)]->init_flat(port_colour_.data() + begin,
                                                        degree(v))) {
        halt(result, v, /*round=*/0);
        --running;
      }
    }
    result.init_ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - init_start)
                                .count());

    // Everything the rounds need is built lazily: a 0-round algorithm on a
    // million nodes never pays for the message plane.
    bool planes_ready = false;
    std::vector<MessageStats> stats(static_cast<std::size_t>(workers_));
    std::vector<std::vector<graph::NodeIndex>> newly_halted(
        static_cast<std::size_t>(workers_));

    for (int round = 1; running > 0; ++round) {
      if (round > max_rounds_) {
        throw std::runtime_error("run_flat: algorithm did not halt within max_rounds");
      }
      if (!planes_ready) {
        plane_.configure(port_colour_.size(), workers_);
        // Round-0 halts rendered no announcements yet; render the ones
        // with a live audience now.
        for (graph::NodeIndex v = 0; v < n_; ++v) {
          if (halted_[static_cast<std::size_t>(v)]) render_announcement(result, v);
        }
        planes_ready = true;
      }
      // One contiguous plane, reused every round: the round stamp plays the
      // role of the classic send/recv buffer swap — a slot whose stamp is
      // not this round's tag is last round's (or older) data and reads as
      // absent, so nothing needs clearing.  Tags cycle through 1..255; the
      // plane is wiped when the cycle restarts so a stale stamp can never
      // alias.
      const auto stamp = static_cast<std::uint8_t>(1 + (round - 1) % 255);
      if (round > 1 && stamp == 1) plane_.wipe_stamps();
      FlatPlane& plane = plane_;
      plane.new_round();

      // Phase 1: running nodes stream this round's messages into their own
      // slot rows.  Rows partition by node, so no two workers ever touch
      // the same slot.
      for_ranges([&](int worker, graph::NodeIndex begin, graph::NodeIndex end) {
        FlatOutbox out;
        out.plane_ = &plane;
        out.arena_ = static_cast<std::uint8_t>(worker);
        out.stats_ = &stats[static_cast<std::size_t>(worker)];
        out.stamp_ = stamp;
        for (graph::NodeIndex v = begin; v < end; ++v) {
          if (halted_[static_cast<std::size_t>(v)]) continue;
          out.base_ = row_[static_cast<std::size_t>(v)];
          out.colours_ = port_colour_.data() + out.base_;
          out.count_ = degree(v);
          pool_[static_cast<std::size_t>(v)]->send_flat(round, out);
        }
      });

      // Phase 2: hand each running node a lazy view over its peers' slots,
      // reflecting the start-of-round halted state (a node halting this
      // round must not leak its decision to same-round receivers).  New
      // halts are collected per worker and applied after the barrier.
      for_ranges([&](int worker, graph::NodeIndex begin, graph::NodeIndex end) {
        for (graph::NodeIndex v = begin; v < end; ++v) {
          if (halted_[static_cast<std::size_t>(v)]) continue;
          const std::size_t row = row_[static_cast<std::size_t>(v)];
          FlatInbox in;
          in.engine_ = this;
          in.plane_ = &plane;
          in.colours_ = port_colour_.data() + row;
          in.row_ = row;
          in.count_ = degree(v);
          in.stamp_ = stamp;
          if (pool_[static_cast<std::size_t>(v)]->receive_flat(round, in)) {
            newly_halted[static_cast<std::size_t>(worker)].push_back(v);
          }
        }
      });

      for (auto& batch : newly_halted) {
        for (graph::NodeIndex v : batch) {
          halt(result, v, round);
          --running;
        }
      }
      // Render after every same-round halt is marked, so the audience
      // check sees the final halted state.
      for (auto& batch : newly_halted) {
        for (graph::NodeIndex v : batch) render_announcement(result, v);
        batch.clear();
      }
    }

    for (const MessageStats& s : stats) {
      result.max_message_bytes = std::max(result.max_message_bytes, s.max_bytes);
      result.total_message_bytes += s.total_bytes;
      result.messages_sent += s.sent;
    }
    for (int r : result.halt_round) result.rounds = std::max(result.rounds, r);
    return result;
  }

 private:
  void build_csr() {
    // Built straight from the edge list: one counting pass, one scatter
    // pass into an interleaved scratch (one cache miss per half-edge, not
    // two), then a sequential split + per-row insertion sort by colour.
    // Never calls incident_colours/neighbour, which allocate per node.
    const std::vector<graph::Edge>& edges = g_.edges();
    std::vector<int> degrees(static_cast<std::size_t>(n_), 0);
    for (const graph::Edge& e : edges) {
      ++degrees[static_cast<std::size_t>(e.u)];
      ++degrees[static_cast<std::size_t>(e.v)];
    }
    row_ = flat_row_offsets(degrees);
    const std::size_t slot_count = row_[static_cast<std::size_t>(n_)];
    struct Half {
      Colour colour;
      graph::NodeIndex peer;
    };
    std::vector<Half> halves(slot_count);
    {
      std::vector<std::size_t> cursor(row_.begin(), row_.end() - 1);
      for (const graph::Edge& e : edges) {
        halves[cursor[static_cast<std::size_t>(e.u)]++] = {e.colour, e.v};
        halves[cursor[static_cast<std::size_t>(e.v)]++] = {e.colour, e.u};
      }
    }
    // Ports must ascend by colour within a row (that is what defines the
    // port order seen by programs); rows have at most k entries.
    for (graph::NodeIndex v = 0; v < n_; ++v) {
      const std::size_t begin = row_[static_cast<std::size_t>(v)];
      const std::size_t end = row_[static_cast<std::size_t>(v) + 1];
      for (std::size_t i = begin + 1; i < end; ++i) {
        const Half h = halves[i];
        std::size_t j = i;
        for (; j > begin && halves[j - 1].colour > h.colour; --j) halves[j] = halves[j - 1];
        halves[j] = h;
      }
    }
    port_colour_.resize(slot_count);
    peer_node_.resize(slot_count);
    for (std::size_t s = 0; s < slot_count; ++s) {
      port_colour_[s] = halves[s].colour;
      peer_node_[s] = halves[s].peer;
    }
  }

  int degree(graph::NodeIndex v) const noexcept {
    return static_cast<int>(row_[static_cast<std::size_t>(v) + 1] -
                            row_[static_cast<std::size_t>(v)]);
  }

 public:
  /// Lazy inbox resolution (FlatInbox::at): the message delivered into
  /// receiver slot s this round.  The sender's slot is found by a binary
  /// search of its (tiny, colour-sorted) row — programs typically read far
  /// fewer ports than there are slots, so no in-slot table is kept.
  std::string_view resolve(const FlatPlane& plane, std::size_t s,
                           std::uint8_t stamp) const noexcept {
    const graph::NodeIndex u = peer_node_[s];
    if (halted_[static_cast<std::size_t>(u)]) {
      return announcements_[static_cast<std::size_t>(u)];
    }
    const std::size_t u_row = row_[static_cast<std::size_t>(u)];
    const std::size_t u_end = row_[static_cast<std::size_t>(u) + 1];
    const auto begin = port_colour_.begin() + static_cast<std::ptrdiff_t>(u_row);
    const auto end = port_colour_.begin() + static_cast<std::ptrdiff_t>(u_end);
    const auto it = std::lower_bound(begin, end, port_colour_[s]);
    return slot_view(plane, u_row + static_cast<std::size_t>(it - begin), stamp);
  }

 private:

  std::string_view slot_view(const FlatPlane& plane, std::size_t s,
                             std::uint8_t stamp) const noexcept {
    const FlatSlot& slot = plane.slots[s];
    if (slot.stamp != stamp) return {};
    if (slot.len != kSpillLen) return {slot.payload, slot.len};
    // Unpack the {offset:40, arena:8} spill address written by
    // FlatOutbox::set; the offset expands into a 64-bit cursor.
    std::uint64_t off = 0;
    for (int i = 0; i < 5; ++i) {
      off |= static_cast<std::uint64_t>(static_cast<unsigned char>(slot.payload[i])) << (8 * i);
    }
    const auto arena = static_cast<unsigned char>(slot.payload[5]);
    std::uint32_t len = 0;
    const char* base = plane.arenas[arena].data() + off;
    std::memcpy(&len, base, sizeof(len));
    return {base + sizeof(len), len};
  }

  void halt(RunResult& result, graph::NodeIndex v, int round) {
    halted_[static_cast<std::size_t>(v)] = 1;
    result.halt_round[static_cast<std::size_t>(v)] = round;
    result.outputs[static_cast<std::size_t>(v)] =
        pool_[static_cast<std::size_t>(v)]->output();
  }

  /// Announcement cache: rendered once per halted node — and only for nodes
  /// with a still-running neighbour, since nobody else ever reads the slot
  /// (run_sync re-renders this string per edge per round).
  void render_announcement(const RunResult& result, graph::NodeIndex v) {
    const std::size_t begin = row_[static_cast<std::size_t>(v)];
    const std::size_t end = row_[static_cast<std::size_t>(v) + 1];
    bool audience = false;
    for (std::size_t s = begin; s < end && !audience; ++s) {
      audience = !halted_[static_cast<std::size_t>(peer_node_[s])];
    }
    if (!audience) return;
    announcements_[static_cast<std::size_t>(v)] =
        std::string(1, kHaltedPrefix) +
        std::to_string(static_cast<int>(result.outputs[static_cast<std::size_t>(v)]));
  }

  /// Runs fn(worker, begin, end) over a balanced contiguous node partition,
  /// in-line when workers_ == 1.  The constructor clamps workers_ into
  /// [1, max(1, n)], so every spawned range is non-empty; the guard below
  /// keeps the partition stable even if a future caller bypasses the clamp.
  /// The first exception wins and is rethrown on the calling thread,
  /// matching the serial engine's fail-fast contract.
  template <class F>
  void for_ranges(const F& fn) {
    if (workers_ == 1) {
      fn(0, 0, n_);
      return;
    }
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers_));
    std::exception_ptr error;
    std::mutex error_mutex;
    for (int worker = 0; worker < workers_; ++worker) {
      // 64-bit intermediate: n * worker cannot wrap for any 32-bit n.
      const auto begin = static_cast<graph::NodeIndex>(
          static_cast<std::int64_t>(n_) * worker / workers_);
      const auto end = static_cast<graph::NodeIndex>(
          static_cast<std::int64_t>(n_) * (worker + 1) / workers_);
      if (begin == end) continue;  // empty partition: nothing to spawn
      pool.emplace_back([&, worker, begin, end] {
        try {
          fn(worker, begin, end);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
      });
    }
    for (std::thread& t : pool) t.join();
    if (error) std::rethrow_exception(error);
  }

  const graph::EdgeColouredGraph& g_;
  const ProgramSource& source_;
  int max_rounds_;
  int n_ = 0;
  int workers_ = 1;

  std::vector<std::size_t> row_;             // n+1 offsets, sender-major CSR
  std::vector<Colour> port_colour_;          // per slot
  std::vector<graph::NodeIndex> peer_node_;  // per slot: the port's neighbour

  // Declared after the CSR vectors: programs may hold init_flat spans into
  // port_colour_, so the pool (and its destructors) must go first.
  ProgramPool pool_;
  std::vector<char> halted_;
  std::vector<std::string> announcements_;
  FlatPlane plane_;
};

std::vector<std::size_t> flat_row_offsets(const std::vector<int>& degrees) {
  std::vector<std::size_t> offsets(degrees.size() + 1, 0);
  for (std::size_t v = 0; v < degrees.size(); ++v) {
    if (degrees[v] < 0) throw std::invalid_argument("flat_row_offsets: negative degree");
    offsets[v + 1] = offsets[v] + static_cast<std::size_t>(degrees[v]);
  }
  return offsets;
}

std::string_view FlatInbox::at(int port) const {
  if (port < 0 || port >= count_) {
    throw std::out_of_range("FlatInbox::at: port out of range");
  }
  return engine_->resolve(*plane_, flat_slot(row_, port), stamp_);
}

RunResult run_flat(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   int max_rounds, const FlatEngineOptions& options) {
  return FlatEngine(g, source, max_rounds, options).run();
}

RunResult run(EngineKind kind, const graph::EdgeColouredGraph& g,
              const ProgramSource& source, int max_rounds) {
  switch (kind) {
    case EngineKind::kFlat:
      return run_flat(g, source, max_rounds);
    case EngineKind::kSync:
      break;
  }
  return run_sync(g, source, max_rounds);
}

const char* engine_kind_name(EngineKind kind) noexcept {
  return kind == EngineKind::kFlat ? "flat" : "sync";
}

std::optional<EngineKind> parse_engine_kind(std::string_view name) noexcept {
  if (name == "sync") return EngineKind::kSync;
  if (name == "flat") return EngineKind::kFlat;
  return std::nullopt;
}

}  // namespace dmm::local
