#include "local/checkpoint.hpp"

#include <ostream>

#include "io/serialize.hpp"

namespace dmm::local {

namespace {

constexpr std::uint32_t kCheckpointVersion = 1;

void write_flags(io::ByteWriter& w, const std::vector<std::uint8_t>& flags) {
  w.bytes(std::string_view(reinterpret_cast<const char*>(flags.data()), flags.size()));
}

std::vector<std::uint8_t> read_flags(io::ByteReader& r, std::size_t expected,
                                     const char* what) {
  const std::string_view v = r.bytes();
  if (v.size() != expected) {
    throw CheckpointError(std::string(what) + " array has wrong length");
  }
  std::vector<std::uint8_t> flags(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const auto b = static_cast<std::uint8_t>(v[i]);
    if (b > 1) throw CheckpointError(std::string(what) + " flag is not 0/1");
    flags[i] = b;
  }
  return flags;
}

}  // namespace

std::uint64_t graph_fingerprint(const graph::EdgeColouredGraph& g) {
  io::ByteWriter w;
  w.varint(static_cast<std::uint64_t>(g.node_count()));
  w.varint(static_cast<std::uint64_t>(g.k()));
  for (const graph::Edge& e : g.edges()) {
    w.varint(static_cast<std::uint64_t>(e.u));
    w.varint(static_cast<std::uint64_t>(e.v));
    w.u8(e.colour);
  }
  return io::fnv1a64(w.buffer().data(), w.buffer().size());
}

void EngineCheckpoint::write(std::ostream& out) const {
  {
    io::ByteWriter w;
    w.svarint(node_count);
    w.svarint(k);
    w.varint(edge_hash);
    w.svarint(round);
    w.svarint(running);
    w.varint(crashes);
    w.varint(restarts);
    w.varint(messages_dropped);
    w.varint(max_message_bytes);
    w.varint(total_message_bytes);
    w.varint(messages_sent);
    io::write_frame(out, "CKPH", kCheckpointVersion, w.buffer());
  }
  {
    io::ByteWriter w;
    w.bytes(std::string_view(reinterpret_cast<const char*>(outputs.data()), outputs.size()));
    w.varint(halt_round.size());
    for (std::int32_t r : halt_round) w.svarint(r);
    write_flags(w, halted);
    write_flags(w, down);
    write_flags(w, dead);
    io::write_frame(out, "CKPN", kCheckpointVersion, w.buffer());
  }
  {
    io::ByteWriter w;
    w.varint(program_state.size());
    for (const std::string& blob : program_state) w.bytes(blob);
    io::write_frame(out, "CKPP", kCheckpointVersion, w.buffer());
  }
}

EngineCheckpoint EngineCheckpoint::read(std::istream& in) {
  EngineCheckpoint cp;
  {
    const io::Frame frame = io::read_frame(in, "CKPH");
    if (frame.version != kCheckpointVersion) {
      throw CheckpointError("unsupported checkpoint version " + std::to_string(frame.version));
    }
    io::ByteReader r(frame.payload);
    cp.node_count = static_cast<std::int32_t>(r.svarint());
    cp.k = static_cast<std::int32_t>(r.svarint());
    cp.edge_hash = r.varint();
    cp.round = static_cast<std::int32_t>(r.svarint());
    cp.running = static_cast<std::int32_t>(r.svarint());
    cp.crashes = r.varint();
    cp.restarts = r.varint();
    cp.messages_dropped = r.varint();
    cp.max_message_bytes = r.varint();
    cp.total_message_bytes = r.varint();
    cp.messages_sent = r.varint();
    r.expect_done("checkpoint header");
    if (cp.node_count < 0 || cp.k < 0 || cp.round < 0 || cp.running < 0 ||
        cp.running > cp.node_count) {
      throw CheckpointError("impossible header counters");
    }
  }
  const auto n = static_cast<std::size_t>(cp.node_count);
  {
    const io::Frame frame = io::read_frame(in, "CKPN");
    io::ByteReader r(frame.payload);
    const std::string_view outs = r.bytes();
    if (outs.size() != n) throw CheckpointError("output array has wrong length");
    cp.outputs.assign(outs.begin(), outs.end());
    if (r.varint() != n) throw CheckpointError("halt_round array has wrong length");
    cp.halt_round.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      cp.halt_round[i] = static_cast<std::int32_t>(r.svarint());
    }
    cp.halted = read_flags(r, n, "halted");
    cp.down = read_flags(r, n, "down");
    cp.dead = read_flags(r, n, "dead");
    r.expect_done("checkpoint node arrays");
  }
  {
    const io::Frame frame = io::read_frame(in, "CKPP");
    io::ByteReader r(frame.payload);
    const std::uint64_t count = r.varint();
    std::size_t expected = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (!cp.halted[v] && !cp.dead[v]) ++expected;
    }
    if (count != expected) {
      throw CheckpointError("program state count does not match the live node set");
    }
    cp.program_state.reserve(expected);
    for (std::uint64_t i = 0; i < count; ++i) {
      cp.program_state.emplace_back(r.bytes());
    }
    r.expect_done("checkpoint program states");
  }
  // Cross-checks the arrays agree with the header.
  int live = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (cp.halted[v] && (cp.down[v] || cp.dead[v])) {
      throw CheckpointError("node is both halted and crashed");
    }
    if (!cp.halted[v] && !cp.dead[v]) ++live;
    if (cp.halted[v] != (cp.halt_round[v] >= 0)) {
      throw CheckpointError("halt_round disagrees with the halted flag");
    }
  }
  if (live != cp.running) throw CheckpointError("running count disagrees with the flags");
  return cp;
}

void EngineCheckpoint::require_matches(const graph::EdgeColouredGraph& g) const {
  if (node_count != g.node_count() || k != g.k() || edge_hash != graph_fingerprint(g)) {
    throw CheckpointError(
        "checkpoint was captured on a different instance (fingerprint mismatch)");
  }
}

}  // namespace dmm::local
