// Engine checkpoints (ISSUE 8): everything needed to kill a run after any
// completed round and later resume it to a bit-identical RunResult, on
// either engine.
//
// A checkpoint is captured only at round boundaries, which is what makes
// it engine-agnostic and small: the synchronous model has no in-flight
// state between rounds — every message of round r was delivered (or
// dropped) inside round r — so the flat engine's slot planes and spill
// arenas need no serialisation at all.  A restored flat engine starts from
// a fresh zero-stamped plane (every slot reads as absent, exactly like the
// first round of a run) and its halted-announcement cache is re-rendered
// from the restored outputs.  What does need saving is exactly:
//
//   * the completed round counter and the engine's node partition
//     (halted / down / dead / running),
//   * the per-node outputs and halt rounds recorded so far,
//   * the commutatively-merged message stats and fault counters,
//   * the opaque per-node program state of every node that can still act
//     (NodeProgram::save_state; halted and dead nodes are skipped — their
//     fate is already in the outputs),
//   * a fingerprint of the graph, so a checkpoint can never be silently
//     resumed against the wrong instance.
//
// The byte format is the checksummed frame layer of io/serialize.hpp
// (three frames: CKPH header, CKPN node arrays, CKPP program states);
// truncation or corruption anywhere raises io::CorruptFrameError, and a
// graph/shape mismatch raises CheckpointError.  Because the checkpoint is
// engine-agnostic, a sync-engine checkpoint restores into the flat engine
// and vice versa — pinned by tests/test_faults.cpp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/edge_coloured_graph.hpp"
#include "local/algorithm.hpp"

namespace dmm::local {

/// A checkpoint that is structurally sound but unusable here: wrong graph,
/// inconsistent shapes, impossible counters.  (Byte-level damage raises
/// io::CorruptFrameError instead.)
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error("dmm::local checkpoint error: " + what) {}
};

/// FNV-1a over (node_count, k, edge list) — the identity a checkpoint is
/// pinned to.  Edge order matters: the same construction yields the same
/// fingerprint, a different instance practically never does.
std::uint64_t graph_fingerprint(const graph::EdgeColouredGraph& g);

struct EngineCheckpoint {
  // Graph fingerprint.
  std::int32_t node_count = 0;
  std::int32_t k = 0;
  std::uint64_t edge_hash = 0;

  // Progress: rounds 1..round are complete; `running` nodes can still act
  // (not halted, not dead — a temporarily-down node still counts).
  std::int32_t round = 0;
  std::int32_t running = 0;

  // Fault counters and message accounting (commutative merges, so the
  // restored run's totals equal the uninterrupted run's).
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t max_message_bytes = 0;
  std::uint64_t total_message_bytes = 0;
  std::uint64_t messages_sent = 0;

  // Per-node state (size node_count each).
  std::vector<Colour> outputs;
  std::vector<std::int32_t> halt_round;
  std::vector<std::uint8_t> halted;
  std::vector<std::uint8_t> down;
  std::vector<std::uint8_t> dead;

  // Opaque NodeProgram::save_state blobs, node order, one per node with
  // !halted && !dead.
  std::vector<std::string> program_state;

  /// Serialises as three checksummed frames.
  void write(std::ostream& out) const;

  /// Reads and validates; throws io::CorruptFrameError on byte damage and
  /// CheckpointError on internal inconsistency.
  static EngineCheckpoint read(std::istream& in);

  /// Throws CheckpointError unless the checkpoint was captured on `g`.
  void require_matches(const graph::EdgeColouredGraph& g) const;
};

}  // namespace dmm::local
