// Arena-pooled, type-erased NodeProgram storage.
//
// Both simulation engines used to hold one std::unique_ptr<NodeProgram>
// per node — at n = 10⁷ that is ten million malloc/free pairs before the
// first message is sent, and it was the dominant phase of flat-engine
// setup (ROADMAP "Engine throughput").  A ProgramPool instead places the
// programs into a util::Arena:
//
//   * emplace<T>        — one program, one cursor bump;
//   * emplace_batch<T>  — the tuned path: one contiguous allocation for
//     the whole node range, so a homogeneous population (greedy) is laid
//     out back to back and the engines' per-node walk is sequential;
//   * adopt             — the legacy bridge for std::function factories,
//     which still own their programs on the heap.
//
// The pool owns lifetime, the arena owns memory: clear() runs every
// pooled destructor (reverse order), releases adopted programs, and
// resets the arena so a reused pool reallocates nothing.
#pragma once

#include <memory>
#include <type_traits>
#include <vector>

#include "local/engine.hpp"
#include "util/arena.hpp"

namespace dmm::local {

class ProgramPool {
 public:
  ProgramPool() = default;
  explicit ProgramPool(std::size_t slab_bytes) : arena_(slab_bytes) {}
  ~ProgramPool() { clear(); }

  ProgramPool(const ProgramPool&) = delete;
  ProgramPool& operator=(const ProgramPool&) = delete;

  /// Constructs one T in the arena and appends it.
  template <class T, class... Args>
  T* emplace(Args&&... args) {
    static_assert(std::is_base_of_v<NodeProgram, T>);
    T* program = arena_.make<T>(std::forward<Args>(args)...);
    pooled_.push_back(program);
    items_.push_back(program);
    return program;
  }

  /// The batched fast path: one contiguous arena block for `count`
  /// programs, each constructed from (a copy of) the same arguments.
  template <class T, class... Args>
  void emplace_batch(std::size_t count, const Args&... args) {
    static_assert(std::is_base_of_v<NodeProgram, T>);
    if (count == 0) return;
    T* block = arena_.allocate_array<T>(count);
    items_.reserve(items_.size() + count);
    pooled_.reserve(pooled_.size() + count);
    for (std::size_t i = 0; i < count; ++i) {
      // Registered one by one so a throwing constructor leaves no
      // untracked live objects behind.
      T* program = new (block + i) T(args...);
      pooled_.push_back(program);
      items_.push_back(program);
    }
  }

  /// Legacy bridge: takes ownership of a heap-constructed program.
  NodeProgram* adopt(std::unique_ptr<NodeProgram> program);

  NodeProgram* operator[](std::size_t i) const noexcept { return items_[i]; }
  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  void reserve(std::size_t count) { items_.reserve(count); }

  /// Destroys every program (pooled ones in reverse construction order)
  /// and rewinds the arena; the slabs stay reserved for the next fill.
  void clear();

  const util::Arena& arena() const noexcept { return arena_; }

 private:
  util::Arena arena_;
  std::vector<NodeProgram*> items_;    // node order, pooled and adopted mixed
  std::vector<NodeProgram*> pooled_;   // arena-constructed: destroy in place
  std::vector<std::unique_ptr<NodeProgram>> adopted_;  // heap bridge
};

}  // namespace dmm::local
