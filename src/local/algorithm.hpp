// The two algorithm abstractions of the library.
//
// 1. LocalAlgorithm — the paper's formal definition (§2.3): a deterministic
//    distributed algorithm with running time r is a function of the
//    radius-(r+1) view (v̄V)[r+1].  This is the interface the lower-bound
//    adversary queries; it never sees anything but canonicalised balls, so
//    it cannot cheat on anonymity.
//
// 2. NodeProgram (engine.hpp) — an operational message-passing state
//    machine, used by the synchronous engine.  The two styles are
//    cross-validated in the test suite (experiment E12).
//
// Local outputs use the paper's encoding (§2.4): kUnmatched (⊥) or the
// colour of the matched edge.
#pragma once

#include <string>

#include "colsys/colour_system.hpp"

namespace dmm::local {

using gk::Colour;

/// ⊥ — the node is unmatched.
inline constexpr Colour kUnmatched = gk::kNoColour;

class LocalAlgorithm {
 public:
  virtual ~LocalAlgorithm() = default;

  /// The running time r: the output may depend only on the radius-(r+1)
  /// view of the node.
  virtual int running_time() const = 0;

  /// Computes the local output from the view (v̄V)[r+1], given as a colour
  /// system rooted at the node.  Must be a pure function of the view.
  virtual Colour evaluate(const colsys::ColourSystem& view) const = 0;

  /// True iff the algorithm commutes with global colour relabellings:
  /// A(π·V) = π(A(V)) for every permutation π of [k] (with π(⊥) = ⊥).
  /// Such "order-invariant" algorithms admit one evaluator memo entry per
  /// colour-permutation *orbit* of views; everything else (greedy included
  /// — it processes colours in increasing order) must keep one answer per
  /// view, and the orbit memo stores per-coset answers instead.  Default:
  /// not equivariant, which is always sound.
  virtual bool colour_equivariant() const { return false; }

  virtual std::string name() const = 0;
};

}  // namespace dmm::local
