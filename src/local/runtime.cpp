#include "local/runtime.hpp"

#include <algorithm>

namespace dmm::local {

Runtime::Runtime(int threads)
    : threads_(std::max(1, std::min(threads, kMaxRuntimeWorkers))) {
  // Arenas exist from the start (they are cheap empty vectors); only the
  // pool is lazy.  One arena per worker id, including the caller's id 0.
  arenas_.resize(static_cast<std::size_t>(threads_));
}

Runtime::~Runtime() = default;

std::size_t Runtime::ensure_pool() {
  const std::lock_guard<std::mutex> lock(spawn_mu_);
  if (pool_ != nullptr || threads_ <= 1) return 0;
  pool_ = std::make_unique<WorkerPool>(threads_ - 1);
  ++pool_spawns_;
  return pool_->spawned();
}

std::uint64_t Runtime::pool_spawns() const {
  const std::lock_guard<std::mutex> lock(spawn_mu_);
  return pool_spawns_;
}

std::size_t Runtime::threads_spawned() const {
  const std::lock_guard<std::mutex> lock(spawn_mu_);
  return pool_ != nullptr ? pool_->spawned() : 0;
}

}  // namespace dmm::local
