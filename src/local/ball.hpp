// Views of anonymous nodes (§2.3).
//
// After r communication rounds, a node v of an instance V knows precisely
// (v̄V)[r+1].  For tree instances (colour systems) that is a ball in the
// tree; for general properly edge-coloured graphs it is a ball in the
// universal cover: the tree of reduced (non-backtracking) walks leaving v.
// Both are returned as rooted colour systems, which makes "two nodes are
// indistinguishable after r rounds" a structural equality check.
#pragma once

#include "colsys/colour_system.hpp"
#include "graph/edge_coloured_graph.hpp"

namespace dmm::local {

/// The radius-`radius` view of node v: the ball around v in the universal
/// cover of g, rooted at (the lift of) v.  For forests this coincides with
/// the subtree ball around v.
colsys::ColourSystem view_ball(const graph::EdgeColouredGraph& g, graph::NodeIndex v, int radius);

/// True iff u and v cannot be distinguished by any deterministic anonymous
/// algorithm within `rounds` rounds, i.e. their radius-(rounds+1) views
/// coincide.
bool indistinguishable(const graph::EdgeColouredGraph& g, graph::NodeIndex u,
                       graph::NodeIndex v, int rounds);

}  // namespace dmm::local
