#include "local/faults.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace dmm::local {

namespace {

bool event_before(const FaultEvent& a, const FaultEvent& b) {
  if (a.round != b.round) return a.round < b.round;
  if (a.node != b.node) return a.node < b.node;
  // A restart sorts before a crash at the same (round, node), so a plan
  // that restarts and immediately re-crashes a node is well-defined.
  return a.up && !b.up;
}

/// splitmix64 finaliser: a full-avalanche mix of one 64-bit word.
std::uint64_t mix64(std::uint64_t h) noexcept {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

}  // namespace

void FaultPlan::add_crash(graph::NodeIndex node, int round, int down_rounds) {
  if (round < 1) throw std::invalid_argument("FaultPlan::add_crash: rounds start at 1");
  const bool permanent = down_rounds <= 0;
  events_.push_back({round, node, /*up=*/false, permanent});
  if (!permanent) events_.push_back({round + down_rounds, node, /*up=*/true, false});
  std::sort(events_.begin(), events_.end(), event_before);
}

void FaultPlan::set_drops(double drop_prob, std::uint64_t seed) {
  if (drop_prob < 0.0 || drop_prob > 1.0 || !std::isfinite(drop_prob)) {
    throw std::invalid_argument("FaultPlan::set_drops: probability must be in [0, 1]");
  }
  drop_prob_ = drop_prob;
  drop_seed_ = seed;
  has_drops_ = drop_prob > 0.0;
  // The hash is compared against p·2⁶⁴; p = 1 saturates (ldexp(1, 64)
  // does not fit a uint64_t).
  drop_threshold_ = drop_prob >= 1.0
                        ? std::numeric_limits<std::uint64_t>::max()
                        : static_cast<std::uint64_t>(std::ldexp(drop_prob, 64));
}

FaultPlan FaultPlan::random(const graph::EdgeColouredGraph& g, const FaultSpec& spec) {
  if (spec.horizon < 1) throw std::invalid_argument("FaultSpec: horizon must be >= 1");
  if (spec.min_down < 1 || spec.max_down < spec.min_down) {
    throw std::invalid_argument("FaultSpec: need 1 <= min_down <= max_down");
  }
  FaultPlan plan;
  Rng rng(spec.seed);
  // One sequential pass over the nodes: the plan is a pure function of
  // (graph size, spec), independent of how the engines later schedule it.
  for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
    if (!rng.chance(spec.crash_prob)) continue;
    const int round = static_cast<int>(rng.uniform(1, spec.horizon));
    const int down = static_cast<int>(rng.uniform(spec.min_down, spec.max_down));
    const bool permanent = rng.chance(spec.permanent_prob);
    plan.add_crash(v, round, permanent ? 0 : down);
  }
  if (spec.drop_prob > 0.0) {
    plan.set_drops(spec.drop_prob, mix64(spec.seed + 0x9e3779b97f4a7c15ull));
  }
  return plan;
}

std::size_t FaultPlan::first_event_at(int round) const noexcept {
  const auto it = std::lower_bound(
      events_.begin(), events_.end(), round,
      [](const FaultEvent& e, int r) { return e.round < r; });
  return static_cast<std::size_t>(it - events_.begin());
}

bool FaultPlan::drops(int round, graph::NodeIndex sender, gk::Colour colour) const noexcept {
  if (!has_drops_) return false;
  // (round, sender, colour) packed into one word: sender and colour fill
  // the low 40 bits exactly (NodeIndex is 31 bits, Colour 8), the round
  // occupies the rest.  Wrap-around at astronomically large rounds only
  // changes *which* messages drop, never determinism.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(round)) << 40) ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sender)) << 8) ^
      static_cast<std::uint64_t>(colour);
  const std::uint64_t h = mix64(drop_seed_ ^ mix64(key));
  return h < drop_threshold_;
}

int FaultPlan::max_restart_round() const noexcept {
  int last = 0;
  for (const FaultEvent& e : events_) {
    if (e.up) last = std::max(last, e.round);
  }
  return last;
}

void FaultPlan::require_fits(graph::NodeIndex node_count) const {
  for (const FaultEvent& e : events_) {
    if (e.node < 0 || e.node >= node_count) {
      throw std::invalid_argument("FaultPlan: event targets a node outside the graph");
    }
  }
}

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string field = text.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault spec: expected key=value, got '" + field + "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    const bool known = key == "crash" || key == "drop" || key == "perm" ||
                       key == "horizon" || key == "seed" || key == "down";
    if (!known) throw std::invalid_argument("fault spec: unknown key '" + key + "'");
    try {
      if (key == "crash") {
        spec.crash_prob = std::stod(value);
      } else if (key == "drop") {
        spec.drop_prob = std::stod(value);
      } else if (key == "perm") {
        spec.permanent_prob = std::stod(value);
      } else if (key == "horizon") {
        spec.horizon = std::stoi(value);
      } else if (key == "seed") {
        spec.seed = std::stoull(value);
      } else {  // down: "down=2" or "down=2-5"
        const std::size_t dash = value.find('-');
        if (dash == std::string::npos) {
          spec.min_down = spec.max_down = std::stoi(value);
        } else {
          spec.min_down = std::stoi(value.substr(0, dash));
          spec.max_down = std::stoi(value.substr(dash + 1));
        }
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("fault spec: bad value for '" + key + "': '" + value + "'");
    }
  }
  if (spec.crash_prob < 0.0 || spec.crash_prob > 1.0 ||
      spec.permanent_prob < 0.0 || spec.permanent_prob > 1.0 ||
      spec.drop_prob < 0.0 || spec.drop_prob > 1.0) {
    throw std::invalid_argument("fault spec: probabilities must be in [0, 1]");
  }
  return spec;
}

}  // namespace dmm::local
