// Synchronous message-passing engine for anonymous networks (§1.2).
//
// In every round each node, in parallel, (1) sends a message to each
// neighbour, (2) receives the neighbours' messages, and (3) updates its
// state.  After any round — including "round 0", before any communication —
// a node may halt and announce its local output.  Per the paper, an
// announced output is visible to neighbours; the engine models this by
// continuing to deliver a halted node's final announcement.
//
// The engine measures the running time as the maximum halting round over
// all nodes, which matches the paper's definition (greedy halts everyone by
// round k-1).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/edge_coloured_graph.hpp"
#include "local/algorithm.hpp"

namespace dmm::local {

/// Messages are opaque byte strings; the model allows unbounded messages.
using Message = std::string;

struct FlatPlane;  // flat_engine.cpp
class FlatEngine;
class FaultPlan;          // faults.hpp
struct EngineCheckpoint;  // checkpoint.hpp
class Runtime;            // runtime.hpp

/// Running totals for the paper's message-size accounting; shared between
/// the engines and the flat-plane writers.  Cache-line aligned: the flat
/// engine keeps one per worker in a vector, and every send updates it —
/// unpadded, adjacent workers would false-share a line on each message.
struct alignas(64) MessageStats {
  std::size_t max_bytes = 0;
  std::size_t total_bytes = 0;
  std::size_t sent = 0;
};

/// Write side of the flat message plane: one slot per incident colour
/// ("port"), ports sorted by colour exactly like the std::map inbox.  A
/// message may be set at most once per port per round.
class FlatOutbox {
 public:
  int ports() const noexcept { return count_; }
  Colour colour(int port) const noexcept { return colours_[port]; }

  /// Stores `bytes` in the slot of the given port (index into the node's
  /// sorted incident-colour list).
  void set(int port, std::string_view bytes);

  /// Routes by colour; a non-incident colour is counted in the message
  /// accounting (matching run_sync, which counts everything a program
  /// returns) but never delivered.
  void set_colour(Colour c, std::string_view bytes);

  /// Same bytes on every port.
  void broadcast(std::string_view bytes);

 private:
  friend class FlatEngine;
  FlatPlane* plane_ = nullptr;
  std::size_t base_ = 0;             // first slot of the node's own row
  const Colour* colours_ = nullptr;  // sorted incident colours
  int count_ = 0;
  std::uint8_t arena_ = 0;         // spill arena of the writing worker (≤ 256 workers)
  std::uint32_t stamp_ = 0;        // current round: stamps written slots live
  MessageStats* stats_ = nullptr;
};

/// Read side of the flat message plane.  Ports resolve lazily: a program
/// that only cares about one colour (greedy reads just the colour-(t+1)
/// port) pays for one slot gather, not deg(v).  at() yields a contiguous
/// byte view — empty when the neighbour sent nothing, the halted
/// neighbour's cached announcement (prefixed with kHaltedPrefix) once it
/// has stopped.
class FlatInbox {
 public:
  int ports() const noexcept { return count_; }
  Colour colour(int port) const noexcept { return colours_[port]; }
  std::string_view at(int port) const;  // flat_engine.cpp

 private:
  friend class FlatEngine;
  const FlatEngine* engine_ = nullptr;
  const FlatPlane* plane_ = nullptr;
  const Colour* colours_ = nullptr;
  std::size_t row_ = 0;  // first slot of the receiving node's row
  int count_ = 0;
  std::uint8_t stamp_ = 0;
};

/// Per-node state machine.  Implementations must be anonymous: the only
/// instance information ever provided is the list of incident edge colours
/// and the received messages (keyed by incident colour, which is how an
/// anonymous node tells its ports apart in an edge-coloured graph).
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once before round 1 with the node's initial knowledge.  May
  /// halt immediately (return true) — that is a running time of 0.
  virtual bool init(const std::vector<Colour>& incident) = 0;

  /// Flat-engine init fast path: `incident` points directly at the
  /// engine's sorted CSR colour row (`degree` entries), which stays valid
  /// for the whole run.  The default copies into a vector and bridges to
  /// init(); allocation-free programs (greedy) override this and keep the
  /// span, which is what makes pooled init at n = 10⁷ cheap.
  virtual bool init_flat(const Colour* incident, int degree);

  /// Produces this round's outgoing message per incident colour.  Only
  /// called while the node is running.
  virtual std::map<Colour, Message> send(int round) = 0;

  /// Delivers this round's incoming messages (one per incident colour; for
  /// a halted neighbour this is its final announcement, prefixed by the
  /// engine with kHaltedPrefix).  Returns true to halt after this round.
  virtual bool receive(int round, const std::map<Colour, Message>& inbox) = 0;

  /// The local output; valid once halted.
  virtual Colour output() const = 0;

  // Flat-plane fast path (optional).  The defaults bridge to the map-based
  // send/receive above, so every program runs unchanged — and bit-for-bit
  // identically — on the flat engine.  Hot programs override these to skip
  // the per-round std::map churn; the engine-equivalence suite
  // (tests/test_flat_engine.cpp) pins the two paths together.
  virtual void send_flat(int round, FlatOutbox& out);
  virtual bool receive_flat(int round, const FlatInbox& in);

  // Checkpoint hooks (optional; checkpoint.hpp).  save_state serialises
  // everything the program's future behaviour depends on *beyond* what
  // init re-derives from the graph; load_state restores it after init ran
  // on a resumed engine.  The defaults throw std::logic_error, so
  // checkpointing a program that has not implemented them fails loudly
  // instead of resuming with silently reset state (greedy and flooding
  // implement both).
  virtual void save_state(std::string& out) const;
  virtual void load_state(std::string_view in);
};

inline constexpr char kHaltedPrefix = '!';

/// Legacy per-node factory: one heap allocation per node.  Still accepted
/// everywhere (tests build throwaway programs this way), but the pooled
/// ProgramFactory path below is what the engines are tuned for.
using NodeProgramFactory = std::function<std::unique_ptr<NodeProgram>()>;

class ProgramPool;  // program_pool.hpp: arena-backed type-erased storage

/// Batched program construction: the engines hand the factory the whole
/// node range at once and it constructs every program in place inside the
/// pool's slab arena.  The per-node default bridges to make_one, so a
/// factory only has to implement the batch path when it is hot (greedy and
/// flooding override make_programs; see algo/greedy.hpp).
class ProgramFactory {
 public:
  virtual ~ProgramFactory() = default;

  /// Appends programs for `count` nodes to the pool, in node order.  The
  /// default performs `count` make_one calls.
  virtual void make_programs(std::size_t count, ProgramPool& pool) const;

  /// Constructs a single program into the pool.
  virtual NodeProgram* make_one(ProgramPool& pool) const = 0;
};

/// What the engines actually accept: either a pooled ProgramFactory or any
/// legacy callable returning std::unique_ptr<NodeProgram>.  Both engine
/// paths must produce bit-identical RunResults — pinned by
/// tests/test_program_pool.cpp.
class ProgramSource {
 public:
  ProgramSource() = default;

  template <class F,
            std::enable_if_t<std::is_invocable_r_v<std::unique_ptr<NodeProgram>, F&>, int> = 0>
  ProgramSource(F factory) : legacy_(std::move(factory)) {}  // NOLINT(google-explicit-constructor)

  ProgramSource(std::shared_ptr<const ProgramFactory> factory)  // NOLINT(google-explicit-constructor)
      : factory_(std::move(factory)) {}

  /// Fills `pool` with programs for `count` nodes (program_pool.cpp).
  /// Throws std::logic_error when the source is empty.
  void build(std::size_t count, ProgramPool& pool) const;

  /// True when programs construct in the pool's arena (no per-node heap).
  bool pooled() const noexcept { return factory_ != nullptr; }

 private:
  NodeProgramFactory legacy_;
  std::shared_ptr<const ProgramFactory> factory_;
};

struct RunResult {
  std::vector<Colour> outputs;    // per node; kUnmatched = ⊥
  std::vector<int> halt_round;    // per node
  int rounds = 0;                 // max halting round = running time
  // Message accounting — the paper notes (after Theorem 2) that the lower
  // bound allows unbounded messages while greedy needs only constant-size
  // ones; the engine measures that claim.
  std::size_t max_message_bytes = 0;
  std::size_t total_message_bytes = 0;
  std::size_t messages_sent = 0;
  // Fault accounting (faults.hpp): crash events applied, restarts applied,
  // and messages dropped in flight.  All zero on fault-free runs.  Part of
  // engine equivalence — both engines must agree on every faulty run.
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t messages_dropped = 0;
  // Wall-clock of the setup phase (program construction + init calls —
  // and, on the flat engine, CSR construction, chunk planning and the
  // worker-pool spawn, which all happen in the engine constructor), the
  // part the pooled allocator exists to shrink; surfaced as `init_ms` in
  // the BENCH_*.json schema.  Not part of engine equivalence.
  double init_ns = 0.0;
  // Wall-clock of the send and receive phases summed over every round
  // (fault phase 0 and checkpoint sinks excluded), surfaced as
  // `send_ms`/`receive_ms` in the BENCH_*.json schema so the per-phase
  // bench gate can tell a regressed send path from a regressed gather.
  // Not part of engine equivalence.
  double send_ns = 0.0;
  double receive_ns = 0.0;
  // Worker threads created over the whole run.  A standalone flat engine
  // spawns its persistent pool (threads − 1 workers beyond the caller)
  // exactly once in the constructor and parks it between phases, so this
  // stays constant in the round count — the old engine spawned/joined a
  // fresh set every phase of every round.  A runtime-backed engine
  // (runtime.hpp) reports only the threads the shared pool spawned on ITS
  // behalf: the one session that triggered the lazy spawn reports
  // threads − 1, every other session 0 — so the sum over N sessions stays
  // threads − 1 (one pool per process).  0 on every serial path
  // (run_sync, threads = 1).  Not part of engine equivalence.
  std::size_t threads_spawned = 0;
};

/// Fault injection for a run: a borrowed FaultPlan (faults.hpp).  The plan
/// must outlive the run; nullptr or an empty plan means a fault-free run.
struct FaultOptions {
  const FaultPlan* plan = nullptr;
};

/// Checkpointing for a run (checkpoint.hpp).  When `every` > 0 and `sink`
/// is set, the engine hands a full EngineCheckpoint to `sink` after every
/// `every`-th completed round (while any node is still running).  `resume`
/// restores a previously captured checkpoint before the first round; the
/// run then continues at checkpoint.round + 1 and — given the same graph,
/// program and fault plan — finishes with a RunResult bit-identical to the
/// uninterrupted run's (tests/test_faults.cpp).
struct CheckpointOptions {
  int every = 0;
  std::function<void(const EngineCheckpoint&)> sink;
  const EngineCheckpoint* resume = nullptr;
};

/// Everything a run is parameterised by, in one struct.  The historical
/// (max_rounds, faults, checkpoint) overload pairs forward here; new code
/// (and the Session API below) takes RunOptions directly.
struct RunOptions {
  /// Throw after this many rounds without global halt (a distributed
  /// algorithm that does not halt is a bug).  Must be positive.
  int max_rounds = 0;
  FaultOptions faults;
  CheckpointOptions checkpoint;
};

/// A round-stepped engine run.  A session is created primed (programs
/// built, init delivered, any checkpoint resumed); each step() simulates
/// exactly one synchronous round — send, receive, update, plus that
/// round's fault events and checkpoint sink.  When done(), result() moves
/// the finished RunResult out (call it once).
///
/// The run-to-completion entry points (run_sync / run_flat / run) are thin
/// loops over a session, so a stepped run is bit-identical to a closed
/// one — which is what lets a scheduler interleave steps of many sessions
/// in any order and still hand every caller the standalone result
/// (svc/service.hpp builds exactly that; tests/test_service.cpp pins it).
class Session {
 public:
  virtual ~Session() = default;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Simulates one round.  Throws (like the closed loops) when the round
  /// would exceed max_rounds, and propagates program exceptions.  Must not
  /// be called once done().
  virtual void step() = 0;

  /// True once every node has halted (or died permanently).
  virtual bool done() const noexcept = 0;

  /// The last completed round (0 before the first step).
  virtual int round() const noexcept = 0;

  /// Moves the finished RunResult out; valid once done(), once.
  virtual RunResult result() = 0;

 protected:
  Session() = default;
};

/// A round-stepped run_sync (the reference oracle, stepwise).
std::unique_ptr<Session> make_sync_session(const graph::EdgeColouredGraph& g,
                                           const ProgramSource& source,
                                           const RunOptions& options);

/// Runs one copy of the program on every node until all have halted or
/// max_rounds is exceeded (which throws — a distributed algorithm that does
/// not halt is a bug).
RunResult run_sync(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   int max_rounds);

/// As above, with fault injection and checkpointing.
RunResult run_sync(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   int max_rounds, const FaultOptions& faults,
                   const CheckpointOptions& checkpoint = {});

/// The primary form: both historical overloads forward here.
RunResult run_sync(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   const RunOptions& options);

/// The library's simulation engines.  kSync is the reference oracle
/// (per-round std::map inboxes, engine.cpp); kFlat is the high-throughput
/// CSR message plane (flat_engine.cpp).  The two are required to agree on
/// every RunResult field for every program.
enum class EngineKind {
  kSync,
  kFlat,
};

/// Dispatches to run_sync or run_flat (with default options).
RunResult run(EngineKind kind, const graph::EdgeColouredGraph& g,
              const ProgramSource& source, int max_rounds);

/// As above, with fault injection and checkpointing.
RunResult run(EngineKind kind, const graph::EdgeColouredGraph& g,
              const ProgramSource& source, int max_rounds, const FaultOptions& faults,
              const CheckpointOptions& checkpoint = {});

/// The primary form: both historical overloads forward here.
RunResult run(EngineKind kind, const graph::EdgeColouredGraph& g,
              const ProgramSource& source, const RunOptions& options);

/// "sync" / "flat".
const char* engine_kind_name(EngineKind kind) noexcept;

/// Inverse of engine_kind_name; nullopt for anything else.
std::optional<EngineKind> parse_engine_kind(std::string_view name) noexcept;

}  // namespace dmm::local
