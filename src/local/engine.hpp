// Synchronous message-passing engine for anonymous networks (§1.2).
//
// In every round each node, in parallel, (1) sends a message to each
// neighbour, (2) receives the neighbours' messages, and (3) updates its
// state.  After any round — including "round 0", before any communication —
// a node may halt and announce its local output.  Per the paper, an
// announced output is visible to neighbours; the engine models this by
// continuing to deliver a halted node's final announcement.
//
// The engine measures the running time as the maximum halting round over
// all nodes, which matches the paper's definition (greedy halts everyone by
// round k-1).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/edge_coloured_graph.hpp"
#include "local/algorithm.hpp"

namespace dmm::local {

/// Messages are opaque byte strings; the model allows unbounded messages.
using Message = std::string;

/// Per-node state machine.  Implementations must be anonymous: the only
/// instance information ever provided is the list of incident edge colours
/// and the received messages (keyed by incident colour, which is how an
/// anonymous node tells its ports apart in an edge-coloured graph).
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once before round 1 with the node's initial knowledge.  May
  /// halt immediately (return true) — that is a running time of 0.
  virtual bool init(const std::vector<Colour>& incident) = 0;

  /// Produces this round's outgoing message per incident colour.  Only
  /// called while the node is running.
  virtual std::map<Colour, Message> send(int round) = 0;

  /// Delivers this round's incoming messages (one per incident colour; for
  /// a halted neighbour this is its final announcement, prefixed by the
  /// engine with kHaltedPrefix).  Returns true to halt after this round.
  virtual bool receive(int round, const std::map<Colour, Message>& inbox) = 0;

  /// The local output; valid once halted.
  virtual Colour output() const = 0;
};

inline constexpr char kHaltedPrefix = '!';

using NodeProgramFactory = std::function<std::unique_ptr<NodeProgram>()>;

struct RunResult {
  std::vector<Colour> outputs;    // per node; kUnmatched = ⊥
  std::vector<int> halt_round;    // per node
  int rounds = 0;                 // max halting round = running time
  // Message accounting — the paper notes (after Theorem 2) that the lower
  // bound allows unbounded messages while greedy needs only constant-size
  // ones; the engine measures that claim.
  std::size_t max_message_bytes = 0;
  std::size_t total_message_bytes = 0;
  std::size_t messages_sent = 0;
};

/// Runs one copy of the program on every node until all have halted or
/// max_rounds is exceeded (which throws — a distributed algorithm that does
/// not halt is a bug).
RunResult run_sync(const graph::EdgeColouredGraph& g, const NodeProgramFactory& factory,
                   int max_rounds);

}  // namespace dmm::local
