#include "local/flooding.hpp"

#include <deque>
#include <utility>

#include "io/serialize.hpp"
#include "local/program_pool.hpp"

namespace dmm::local {

namespace {

/// Copies `src` (rooted at its root) below `dst_parent`, preserving child
/// colours; the source root itself is identified with dst_parent.
void graft_below(const colsys::ColourSystem& src, colsys::ColourSystem& dst,
                 colsys::NodeId dst_parent) {
  std::deque<std::pair<colsys::NodeId, colsys::NodeId>> queue{{src.root(), dst_parent}};
  while (!queue.empty()) {
    const auto [from, to] = queue.front();
    queue.pop_front();
    for (Colour c = 1; c <= src.k(); ++c) {
      const colsys::NodeId child = src.child(from, c);
      if (child != colsys::kNullNode) queue.push_back({child, dst.add_child(to, c)});
    }
  }
}

}  // namespace

FloodingProgram::FloodingProgram(std::shared_ptr<const LocalAlgorithm> algorithm, int k)
    : algorithm_(std::move(algorithm)), k_(k), view_(k, /*valid_radius=*/1) {
  running_time_ = algorithm_->running_time();
}

bool FloodingProgram::init(const std::vector<Colour>& incident) {
  incident_ = incident;
  return start();
}

bool FloodingProgram::init_flat(const Colour* incident, int degree) {
  incident_.assign(incident, incident + degree);
  return start();
}

bool FloodingProgram::start() {
  // The radius-1 view: the root plus one child per incident colour.
  view_ = colsys::ColourSystem(k_, /*valid_radius=*/1);
  for (Colour c : incident_) view_.add_child(view_.root(), c);
  if (running_time_ == 0) {
    output_ = algorithm_->evaluate(view_);
    return true;
  }
  return false;
}

std::map<Colour, Message> FloodingProgram::send(int round) {
  (void)round;
  std::map<Colour, Message> out;
  // The neighbour across colour c gets everything except the branch it
  // contributed itself — walks towards it must not backtrack.
  for (Colour c : incident_) out[c] = io::write_system(view_.pruned(c));
  return out;
}

bool FloodingProgram::receive(int round, const std::map<Colour, Message>& inbox) {
  colsys::ColourSystem next(k_, view_.valid_radius() + 1);
  for (Colour c : incident_) {
    const colsys::NodeId branch = next.add_child(next.root(), c);
    const Message& m = inbox.at(c);
    // Under faults a neighbour may contribute nothing this round (it is
    // down, or its message was dropped), or only its halted announcement;
    // either way the branch stays a bare stub — the view keeps growing
    // with that subtree missing (recovery semantics: docs/faults.md).
    // Fault-free runs never take this branch: flooding nodes all halt in
    // the same round, so every inbox entry is a serialised view.
    if (m.empty() || m.front() == kHaltedPrefix) continue;
    graft_below(io::read_system(m), next, branch);
  }
  view_ = std::move(next);
  // `>=`, not `==`: a node that was down at round running_time_ halts at
  // its first completed round after restarting, evaluating on the (partial)
  // view it actually accumulated.  Equivalent fault-free.
  if (round >= running_time_) {
    output_ = algorithm_->evaluate(view_);
    return true;
  }
  return false;
}

void FloodingProgram::save_state(std::string& out) const {
  out.append(io::write_system(view_));
}

void FloodingProgram::load_state(std::string_view in) {
  view_ = io::read_system(std::string(in));
}

void FloodingProgramFactory::make_programs(std::size_t count, ProgramPool& pool) const {
  pool.emplace_batch<FloodingProgram>(count, algorithm_, k_);
}

NodeProgram* FloodingProgramFactory::make_one(ProgramPool& pool) const {
  return pool.emplace<FloodingProgram>(algorithm_, k_);
}

ProgramSource flooding_program_factory(std::shared_ptr<const LocalAlgorithm> algorithm,
                                       int k) {
  return ProgramSource(std::make_shared<const FloodingProgramFactory>(std::move(algorithm), k));
}

}  // namespace dmm::local
