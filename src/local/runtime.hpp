// Shared execution runtime for the local engines.
//
// Before this layer existed every FlatEngine owned a private worker pool:
// constructing an engine spawned threads-1 workers even for a ten-node
// graph, and N concurrent instances meant N pools fighting over the same
// cores.  `Runtime` hoists the pool (and the spill arenas it feeds) out of
// the engine so that many engine sessions share ONE pool per process:
//
//   * the pool is spawned lazily, on the first parallel phase any borrowing
//     engine runs — a process that only ever runs serial sessions spawns
//     nothing, and `pool_spawns()` is the regression gauge that N sessions
//     spawn it exactly once (tests/test_service.cpp);
//   * a session borrows the runtime for the duration of one round step
//     (`mutex()`): the send and receive phases of a step share spill-arena
//     state, so the borrow must span the whole step, not just one phase;
//   * the spill arenas are shared for the same reason the pool is — they
//     are round-scoped scratch (cleared at the top of every step, read only
//     within it), so per-engine copies would multiply the steady-state
//     footprint by the session count for no benefit.
//
// The pool itself (`WorkerPool`) is the flat engine's persistent
// phase-dispatch pool, verbatim: threads park on a condition variable
// between phases, dispatch is a generation counter under one mutex, and the
// first exception from any worker wins — deliberately boring
// mutex-and-condvar synchronisation so the ThreadSanitizer CI leg can vouch
// for the whole stack, scheduler included.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dmm::local {

/// Hard cap on runtime workers: the flat engine's spill-arena index is one
/// byte (flat_engine.hpp packs it into the slot payload).
inline constexpr int kMaxRuntimeWorkers = 256;

/// Persistent phase-dispatch pool: `spawn` threads are created once and
/// parked on a condition variable; every run() call wakes them for one
/// phase and the calling thread participates as worker 0.  Dispatch is a
/// generation counter (seq_) under one mutex — deliberately boring,
/// mutex-and-condvar-only synchronisation so the ThreadSanitizer leg can
/// vouch for it.  The first exception from any worker (including worker 0)
/// wins and is rethrown on the calling thread after the phase barrier,
/// preserving the serial engine's fail-fast contract.
class WorkerPool {
 public:
  explicit WorkerPool(int spawn) {
    threads_.reserve(static_cast<std::size_t>(spawn));
    for (int i = 0; i < spawn; ++i) {
      threads_.emplace_back([this, id = i + 1] { worker_main(id); });
    }
  }

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t spawned() const noexcept { return threads_.size(); }

  /// Runs fn(worker) for every worker id in [0, spawned()]: id 0 inline on
  /// the calling thread, the rest on the parked pool threads.  Returns
  /// only after every worker finished the phase.
  template <class F>
  void run(F& fn) {
    struct Thunk {
      static void call(void* ctx, int worker) { (*static_cast<F*>(ctx))(worker); }
    };
    dispatch(&Thunk::call, &fn);
  }

 private:
  void dispatch(void (*call)(void*, int), void* ctx) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      call_ = call;
      ctx_ = ctx;
      error_ = nullptr;
      remaining_ = static_cast<int>(threads_.size());
      ++seq_;
    }
    cv_work_.notify_all();
    try {
      call(ctx, 0);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
    if (error_) {
      const std::exception_ptr error = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

  void worker_main(int id) {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_work_.wait(lock, [&] { return stop_ || seq_ != seen; });
      if (stop_) return;
      seen = seq_;
      void (*const call)(void*, int) = call_;
      void* const ctx = ctx_;
      lock.unlock();
      std::exception_ptr error;
      try {
        call(ctx, id);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      if (error && !error_) error_ = error;
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  void (*call_)(void*, int) = nullptr;
  void* ctx_ = nullptr;
  std::exception_ptr error_;
  std::uint64_t seq_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
};

/// One pool (and one set of spill arenas) shared by many engine sessions.
///
/// Borrow discipline: a session holds `mutex()` for the duration of one
/// round step (the flat engine takes it in step_round).  The shared spill
/// arenas make the full-step span necessary — a spilled payload written in
/// the send phase is read in the same step's receive phase, and the next
/// session's step clears the arenas.  Slots themselves are per-engine, so
/// nothing a session writes outlives its own step except its own state.
class Runtime {
 public:
  /// `threads` is the worker budget for parallel phases (clamped to
  /// [1, kMaxRuntimeWorkers]); 1 means every borrowing session runs its
  /// phases inline and no pool is ever spawned.
  explicit Runtime(int threads);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int threads() const noexcept { return threads_; }

  /// Lazily spawns the shared pool.  Returns the number of worker threads
  /// created by THIS call — threads() - 1 on the first call that needs a
  /// pool, 0 on every later call — which is how a borrowing engine folds
  /// the one-time spawn into its own RunResult::threads_spawned without
  /// double counting across sessions.
  std::size_t ensure_pool();

  /// The shared pool; non-null once ensure_pool() ran with threads() > 1.
  WorkerPool* pool() noexcept { return pool_.get(); }

  /// Per-worker spill arenas, shared by every borrowing engine (round-
  /// scoped scratch; see the borrow discipline above).
  std::vector<std::vector<char>>& arenas() noexcept { return arenas_; }

  /// The borrow lock: held by a session for one full round step.
  std::mutex& mutex() noexcept { return mu_; }

  /// Number of pool-spawn events so far.  The whole point of the runtime is
  /// that this stays at most 1 no matter how many sessions run
  /// (tests/test_service.cpp pins it).
  std::uint64_t pool_spawns() const;

  /// Total worker threads ever created by this runtime (threads() - 1 once
  /// the pool exists, 0 before).
  std::size_t threads_spawned() const;

 private:
  int threads_;
  std::mutex mu_;                 // the borrow lock (one stepping session at a time)
  mutable std::mutex spawn_mu_;   // guards pool_ creation and the gauges
  std::unique_ptr<WorkerPool> pool_;
  std::vector<std::vector<char>> arenas_;
  std::uint64_t pool_spawns_ = 0;
};

}  // namespace dmm::local
