// High-throughput simulation engine over a flat CSR message plane.
//
// run_flat simulates the same synchronous model as run_sync (engine.hpp)
// but replaces the per-round std::map inboxes with per-edge message slots
// in one contiguous, round-stamped buffer (the stamp subsumes the classic
// send/recv double-buffer swap: last round's slots read as absent):
//
//   * one 8-byte slot per directed edge, laid out sender-major so the send
//     phase streams sequentially and the plane stays cache-resident even
//     at millions of edges;
//   * messages up to kFlatInlineBytes live inline in the slot, the
//     unbounded tail spills to a per-worker side arena (the model allows
//     unbounded messages — flooding programs exercise this path);
//   * inboxes resolve lazily (FlatInbox::at), so a program that reads one
//     port pays for one gather, not deg(v);
//   * a halted node's announcement is rendered once, when it halts — and
//     only if a still-running neighbour can read it — then served from
//     that cache in every later round;
//   * the send and receive phases optionally run on a persistent worker
//     pool (options.threads > 1) owned by the engine: the threads are
//     spawned once in the constructor, parked on a condition-variable
//     barrier between phases, and joined in the destructor — no per-round
//     thread churn.  Work is pre-split into chunks of roughly equal *slot*
//     (directed-edge) weight, so a run of max-degree hub rows no longer
//     serialises one worker the way the old node-count partition did, and
//     workers that exhaust their own chunk run steal the remainder of the
//     others' (options.steal).  Writes stay per-slot disjoint — a chunk is
//     claimed by exactly one worker per phase — so no locks are taken on
//     the plane itself.
//
// Results are bit-identical to run_sync for every thread count, chunk
// size and steal setting: all racy-looking state (message stats, spill
// arenas, newly-halted batches) is worker-indexed and merged with
// commutative folds.  run_sync stays the reference oracle:
// tests/test_flat_engine.cpp checks the two engines produce identical
// RunResult fields (outputs, halt rounds, message accounting) for every
// algorithm in the library, and tests/test_flat_stress.cpp re-checks that
// across a schedule-perturbation grid (threads × chunk_slots × steal).
#pragma once

#include <iosfwd>

#include "local/engine.hpp"
#include "local/program_pool.hpp"
#include "local/runtime.hpp"

namespace dmm::local {

/// Messages at most this long are stored inline in the slot buffer (slots
/// are 8 bytes, so the whole plane stays cache-resident even at a million
/// edges); longer ones spill to the arena.
inline constexpr std::size_t kFlatInlineBytes = 6;

/// Spill payloads are addressed by a 40-bit byte offset plus an 8-bit
/// worker-arena index packed into the 6 payload bytes of the slot, so a
/// single worker arena may hold up to 1 TiB before the engine refuses —
/// with an explicit length_error, never a silent 32-bit wrap.
inline constexpr std::uint64_t kMaxSpillOffset = (std::uint64_t{1} << 40) - 1;

/// Hard cap on flat-engine workers (the spill arena index is one byte);
/// the shared runtime carries the same cap for the same reason.
inline constexpr int kMaxFlatWorkers = kMaxRuntimeWorkers;

struct FlatEngineOptions {
  /// Workers for the send/receive phases; 1 (the default) runs in-line on
  /// the calling thread.  Values above the node count or kMaxFlatWorkers
  /// are clamped; results are identical for every value.
  int threads = 1;
  /// Target slot (directed-edge) weight per work chunk.  0 (the default)
  /// auto-sizes to roughly 16 chunks per worker, floored so tiny graphs
  /// do not shatter into per-node chunks.  Smaller chunks balance skewed
  /// degree distributions at the price of more atomic claims; results are
  /// identical for every value (tests/test_flat_stress.cpp).
  std::size_t chunk_slots = 0;
  /// When true (the default) a worker that drains its own chunk run keeps
  /// going on the other workers' remaining chunks, so a worker stuck on a
  /// hub-heavy run cannot leave the rest idle.  Results are identical
  /// either way.
  bool steal = true;
};

/// Exclusive prefix sum of per-node degrees into the CSR row offsets used
/// by the flat engine's slot plane.  Accumulates in std::size_t from the
/// first addition, so an n·Δ slot count beyond 2³¹ cannot wrap — pinned by
/// the 64-bit regression test in tests/test_flat_engine.cpp.  Throws
/// std::invalid_argument on a negative degree.
std::vector<std::size_t> flat_row_offsets(const std::vector<int>& degrees);

/// Slot index of `port` within the row starting at `row`; the port is
/// widened before the addition.
constexpr std::size_t flat_slot(std::size_t row, int port) noexcept {
  return row + static_cast<std::size_t>(port);
}

/// The engine object behind run_flat, exposed so a run can be checkpointed
/// and resumed (checkpoint.hpp): construct once (CSR build, chunk planning,
/// worker-pool spawn), then either run() to completion — optionally under a
/// FaultPlan, with a CheckpointOptions sink observing round boundaries — or
/// restore() a previously captured checkpoint and run() the remainder.
/// Checkpoints are engine-agnostic: a FlatEngine restores what run_sync
/// captured and vice versa (tests/test_faults.cpp).
class FlatEngine {
 public:
  /// With `runtime` == nullptr the engine owns a private worker pool
  /// (options.threads workers, spawned in the constructor).  With a
  /// runtime, the engine borrows the process-shared pool and spill arenas
  /// instead: the worker count comes from runtime->threads(), nothing is
  /// spawned here (the runtime spawns its pool lazily, once per process),
  /// and each round step takes the runtime's borrow lock — so many
  /// concurrent sessions multiplex on one pool (runtime.hpp).
  FlatEngine(const graph::EdgeColouredGraph& g, const ProgramSource& source,
             int max_rounds, const FlatEngineOptions& options,
             Runtime* runtime = nullptr);
  ~FlatEngine();

  FlatEngine(const FlatEngine&) = delete;
  FlatEngine& operator=(const FlatEngine&) = delete;

  /// Runs to completion.  When the engine was primed by restore(), the run
  /// continues at checkpoint.round + 1 and finishes with a RunResult
  /// bit-identical to the uninterrupted run's.  Implemented as
  /// begin() + step() to completion + finish() — the stepped API below is
  /// the engine; these are the thin loop.
  RunResult run();
  RunResult run(const FaultOptions& faults, const CheckpointOptions& checkpoint = {});

  // Stepped session API (engine.hpp::Session wraps it via
  // make_flat_session).  begin() primes a run: applies the options'
  // fault plan, restores any checkpoint, builds programs and delivers
  // init.  Each step() then simulates exactly one round (including that
  // round's fault events and checkpoint sink); finish() moves the
  // RunResult out once done().
  void begin(const RunOptions& options);
  void step();
  bool done() const noexcept { return running_ == 0; }
  int round() const noexcept { return round_; }
  RunResult finish();

  /// The engine state after the last completed round, as the same
  /// engine-agnostic checkpoint run_sync captures; checkpoint() writes it
  /// to `out` in the checksummed io/serialize frame format.  Only valid
  /// while a run is in progress (i.e. from a CheckpointOptions sink).
  EngineCheckpoint snapshot() const;
  void checkpoint(std::ostream& out) const;

  /// Primes the engine with a checkpoint captured on the same instance (by
  /// either engine); throws CheckpointError on a fingerprint mismatch and
  /// io::CorruptFrameError on byte damage.  The next run() resumes it.
  void restore(const EngineCheckpoint& cp);
  void restore(std::istream& in);

  /// Lazy inbox resolution (FlatInbox::at): the message delivered into
  /// receiver slot s this round.  The sender's slot is found by a binary
  /// search of its (tiny, colour-sorted) row — programs typically read far
  /// fewer ports than there are slots, so no in-slot table is kept.  Under
  /// faults this is also where delivery is masked: a down sender reads as
  /// absent, and a dropped message reads as absent without the sender's
  /// slot ever being touched.
  std::string_view resolve(const FlatPlane& plane, std::size_t s,
                           std::uint8_t stamp) const noexcept;

 private:
  void build_csr();

  int degree(graph::NodeIndex v) const noexcept {
    return static_cast<int>(row_[static_cast<std::size_t>(v) + 1] -
                            row_[static_cast<std::size_t>(v)]);
  }

  /// Builds programs and per-run state; `cp` != nullptr overlays a restored
  /// checkpoint (init still runs — programs re-derive graph-shaped state —
  /// then load_state overwrites the dynamic part).
  void initialise(const EngineCheckpoint* cp);
  void step_round(int round);

  std::string_view slot_view(const FlatPlane& plane, std::size_t s,
                             std::uint8_t stamp) const noexcept;
  void halt(graph::NodeIndex v, int round);
  void render_announcement(graph::NodeIndex v);
  void wipe_running_rows();
  void plan_chunks(std::size_t chunk_slots);
  template <class F>
  void for_chunks(const F& fn);
  template <class F>
  void drain(int victim, int worker, const F& fn);

  struct Chunk {
    graph::NodeIndex begin;
    graph::NodeIndex end;
  };
  struct ChunkCursor;  // cache-line-isolated atomic claim cursor (flat_engine.cpp)

  const graph::EdgeColouredGraph& g_;
  const ProgramSource& source_;
  int max_rounds_;
  int n_ = 0;
  int workers_ = 1;
  bool steal_ = true;
  double build_ns_ = 0.0;

  // Chunk plan (workers_ > 1 only): contiguous node ranges of roughly
  // equal slot weight, split into one contiguous run per worker.
  std::vector<Chunk> chunks_;
  std::vector<std::int64_t> run_begin_;
  std::vector<std::int64_t> run_end_;
  std::unique_ptr<ChunkCursor[]> cursors_;
  std::unique_ptr<WorkerPool> pool_threads_;  // private pool (no runtime): workers_ - 1 parked threads
  Runtime* runtime_ = nullptr;                // shared pool + arenas, borrowed per step

  std::vector<std::size_t> row_;             // n+1 offsets, sender-major CSR
  std::vector<Colour> port_colour_;          // per slot
  std::vector<graph::NodeIndex> peer_node_;  // per slot: the port's neighbour

  // Declared after the CSR vectors: programs may hold init_flat spans into
  // port_colour_, so the pool (and its destructors) must go first.
  ProgramPool pool_;

  // Per-run state, owned by the engine so snapshot()/restore() can reach
  // it between rounds.
  RunResult result_;
  int running_ = 0;
  int round_ = 0;  // last completed round
  bool primed_ = false;
  bool planes_ready_ = false;
  std::vector<MessageStats> stats_;  // per worker, merged by finalise/snapshot
  std::vector<std::vector<graph::NodeIndex>> newly_halted_;  // per worker
  std::vector<char> halted_;
  std::vector<char> down_;  // includes dead nodes (a dead node stays down)
  std::vector<char> dead_;
  std::vector<std::string> announcements_;
  std::unique_ptr<FlatPlane> plane_;

  // Fault context of the current run (set by begin(), read by resolve()).
  const FaultPlan* plan_ = nullptr;
  bool faulty_ = false;
  bool drop_mask_ = false;
  int round_now_ = 0;
  std::size_t ev_ = 0;  // fault-event cursor

  // Checkpoint sink of the current run (set by begin(), fired by step()).
  int every_ = 0;
  std::function<void(const EngineCheckpoint&)> sink_;
};

RunResult run_flat(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   int max_rounds, const FlatEngineOptions& options = {});

/// As above, with fault injection and checkpointing.
RunResult run_flat(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   int max_rounds, const FlatEngineOptions& options,
                   const FaultOptions& faults, const CheckpointOptions& checkpoint = {});

/// The primary form: the overloads above forward here.
RunResult run_flat(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   const RunOptions& options, const FlatEngineOptions& engine_options = {},
                   Runtime* runtime = nullptr);

/// A round-stepped flat run, optionally multiplexed on a shared Runtime.
/// The graph, source, fault plan and runtime are borrowed and must outlive
/// the session.
std::unique_ptr<Session> make_flat_session(const graph::EdgeColouredGraph& g,
                                           const ProgramSource& source,
                                           const RunOptions& options,
                                           const FlatEngineOptions& engine_options = {},
                                           Runtime* runtime = nullptr);

/// Engine-dispatching session factory (kSync ignores engine_options and
/// runtime — the reference engine is always serial).
std::unique_ptr<Session> make_session(EngineKind kind, const graph::EdgeColouredGraph& g,
                                      const ProgramSource& source, const RunOptions& options,
                                      const FlatEngineOptions& engine_options = {},
                                      Runtime* runtime = nullptr);

}  // namespace dmm::local
