// High-throughput simulation engine over a flat CSR message plane.
//
// run_flat simulates the same synchronous model as run_sync (engine.hpp)
// but replaces the per-round std::map inboxes with per-edge message slots
// in one contiguous, round-stamped buffer (the stamp subsumes the classic
// send/recv double-buffer swap: last round's slots read as absent):
//
//   * one 8-byte slot per directed edge, laid out sender-major so the send
//     phase streams sequentially and the plane stays cache-resident even
//     at millions of edges;
//   * messages up to kFlatInlineBytes live inline in the slot, the
//     unbounded tail spills to a per-worker side arena (the model allows
//     unbounded messages — flooding programs exercise this path);
//   * inboxes resolve lazily (FlatInbox::at), so a program that reads one
//     port pays for one gather, not deg(v);
//   * a halted node's announcement is rendered once, when it halts — and
//     only if a still-running neighbour can read it — then served from
//     that cache in every later round;
//   * the send and receive phases optionally run on a row-partitioned
//     thread pool (options.threads > 1) — writes are per-slot disjoint,
//     so the partition needs no locks.
//
// run_sync stays the reference oracle: tests/test_flat_engine.cpp checks
// the two engines produce identical RunResult fields (outputs, halt
// rounds, message accounting) for every algorithm in the library.
#pragma once

#include "local/engine.hpp"

namespace dmm::local {

/// Messages at most this long are stored inline in the slot buffer (slots
/// are 8 bytes, so the whole plane stays cache-resident even at a million
/// edges); longer ones spill to the arena.
inline constexpr std::size_t kFlatInlineBytes = 6;

struct FlatEngineOptions {
  /// Workers for the send/receive phases; 1 (the default) runs in-line on
  /// the calling thread.  Results are identical for every value.
  int threads = 1;
};

RunResult run_flat(const graph::EdgeColouredGraph& g, const NodeProgramFactory& factory,
                   int max_rounds, const FlatEngineOptions& options = {});

}  // namespace dmm::local
