// High-throughput simulation engine over a flat CSR message plane.
//
// run_flat simulates the same synchronous model as run_sync (engine.hpp)
// but replaces the per-round std::map inboxes with per-edge message slots
// in one contiguous, round-stamped buffer (the stamp subsumes the classic
// send/recv double-buffer swap: last round's slots read as absent):
//
//   * one 8-byte slot per directed edge, laid out sender-major so the send
//     phase streams sequentially and the plane stays cache-resident even
//     at millions of edges;
//   * messages up to kFlatInlineBytes live inline in the slot, the
//     unbounded tail spills to a per-worker side arena (the model allows
//     unbounded messages — flooding programs exercise this path);
//   * inboxes resolve lazily (FlatInbox::at), so a program that reads one
//     port pays for one gather, not deg(v);
//   * a halted node's announcement is rendered once, when it halts — and
//     only if a still-running neighbour can read it — then served from
//     that cache in every later round;
//   * the send and receive phases optionally run on a persistent worker
//     pool (options.threads > 1) owned by the engine: the threads are
//     spawned once in the constructor, parked on a condition-variable
//     barrier between phases, and joined in the destructor — no per-round
//     thread churn.  Work is pre-split into chunks of roughly equal *slot*
//     (directed-edge) weight, so a run of max-degree hub rows no longer
//     serialises one worker the way the old node-count partition did, and
//     workers that exhaust their own chunk run steal the remainder of the
//     others' (options.steal).  Writes stay per-slot disjoint — a chunk is
//     claimed by exactly one worker per phase — so no locks are taken on
//     the plane itself.
//
// Results are bit-identical to run_sync for every thread count, chunk
// size and steal setting: all racy-looking state (message stats, spill
// arenas, newly-halted batches) is worker-indexed and merged with
// commutative folds.  run_sync stays the reference oracle:
// tests/test_flat_engine.cpp checks the two engines produce identical
// RunResult fields (outputs, halt rounds, message accounting) for every
// algorithm in the library, and tests/test_flat_stress.cpp re-checks that
// across a schedule-perturbation grid (threads × chunk_slots × steal).
#pragma once

#include "local/engine.hpp"

namespace dmm::local {

/// Messages at most this long are stored inline in the slot buffer (slots
/// are 8 bytes, so the whole plane stays cache-resident even at a million
/// edges); longer ones spill to the arena.
inline constexpr std::size_t kFlatInlineBytes = 6;

/// Spill payloads are addressed by a 40-bit byte offset plus an 8-bit
/// worker-arena index packed into the 6 payload bytes of the slot, so a
/// single worker arena may hold up to 1 TiB before the engine refuses —
/// with an explicit length_error, never a silent 32-bit wrap.
inline constexpr std::uint64_t kMaxSpillOffset = (std::uint64_t{1} << 40) - 1;

/// Hard cap on flat-engine workers (the spill arena index is one byte).
inline constexpr int kMaxFlatWorkers = 256;

struct FlatEngineOptions {
  /// Workers for the send/receive phases; 1 (the default) runs in-line on
  /// the calling thread.  Values above the node count or kMaxFlatWorkers
  /// are clamped; results are identical for every value.
  int threads = 1;
  /// Target slot (directed-edge) weight per work chunk.  0 (the default)
  /// auto-sizes to roughly 16 chunks per worker, floored so tiny graphs
  /// do not shatter into per-node chunks.  Smaller chunks balance skewed
  /// degree distributions at the price of more atomic claims; results are
  /// identical for every value (tests/test_flat_stress.cpp).
  std::size_t chunk_slots = 0;
  /// When true (the default) a worker that drains its own chunk run keeps
  /// going on the other workers' remaining chunks, so a worker stuck on a
  /// hub-heavy run cannot leave the rest idle.  Results are identical
  /// either way.
  bool steal = true;
};

/// Exclusive prefix sum of per-node degrees into the CSR row offsets used
/// by the flat engine's slot plane.  Accumulates in std::size_t from the
/// first addition, so an n·Δ slot count beyond 2³¹ cannot wrap — pinned by
/// the 64-bit regression test in tests/test_flat_engine.cpp.  Throws
/// std::invalid_argument on a negative degree.
std::vector<std::size_t> flat_row_offsets(const std::vector<int>& degrees);

/// Slot index of `port` within the row starting at `row`; the port is
/// widened before the addition.
constexpr std::size_t flat_slot(std::size_t row, int port) noexcept {
  return row + static_cast<std::size_t>(port);
}

RunResult run_flat(const graph::EdgeColouredGraph& g, const ProgramSource& source,
                   int max_rounds, const FlatEngineOptions& options = {});

}  // namespace dmm::local
