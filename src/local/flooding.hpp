// The full-information protocol (§2.3): a NodeProgram realisation of any
// LocalAlgorithm.
//
// Every round each node forwards everything it knows — its current view,
// minus the branch the recipient contributed — and grafts what it hears
// onto a fresh root.  After r rounds of this the node holds exactly its
// radius-(r+1) view (v̄V)[r+1], i.e. the same colour system view_ball
// extracts centrally, so evaluating the LocalAlgorithm on it reproduces
// run_views on any engine.
//
// This is the construction that turns the paper's functional definition of
// a distributed algorithm into an operational one, and it is the library's
// canonical source of *unbounded* messages: the serialised views grow with
// the round number, which exercises the flat engine's spill arena (the
// greedy fast path never leaves the inline slots).
#pragma once

#include <memory>

#include "colsys/colour_system.hpp"
#include "local/engine.hpp"

namespace dmm::local {

class FloodingProgram final : public NodeProgram {
 public:
  /// `k` is the (globally known) palette size; the algorithm's running time
  /// fixes the halting round.
  FloodingProgram(std::shared_ptr<const LocalAlgorithm> algorithm, int k);

  bool init(const std::vector<Colour>& incident) override;
  // Assigns straight from the engine's CSR row — one container fill, not
  // the default bridge's temporary-vector-then-copy.
  bool init_flat(const Colour* incident, int degree) override;
  std::map<Colour, Message> send(int round) override;
  bool receive(int round, const std::map<Colour, Message>& inbox) override;
  Colour output() const override { return output_; }
  // Checkpoint hooks: the dynamic state is exactly the accumulated view
  // (the text format of io/serialize.hpp); everything else is re-derived
  // by init or fixed at construction.
  void save_state(std::string& out) const override;
  void load_state(std::string_view in) override;

 private:
  bool start();

  std::shared_ptr<const LocalAlgorithm> algorithm_;
  int k_;
  int running_time_ = 0;
  std::vector<Colour> incident_;
  colsys::ColourSystem view_;
  Colour output_ = kUnmatched;
};

/// Pooled factory for FloodingProgram; the batched path constructs all n
/// simulators back to back in the pool's arena.
class FloodingProgramFactory final : public ProgramFactory {
 public:
  FloodingProgramFactory(std::shared_ptr<const LocalAlgorithm> algorithm, int k)
      : algorithm_(std::move(algorithm)), k_(k) {}

  void make_programs(std::size_t count, ProgramPool& pool) const override;
  NodeProgram* make_one(ProgramPool& pool) const override;

 private:
  std::shared_ptr<const LocalAlgorithm> algorithm_;
  int k_;
};

/// One FloodingProgram per node, all simulating `algorithm`.
ProgramSource flooding_program_factory(std::shared_ptr<const LocalAlgorithm> algorithm,
                                       int k);

}  // namespace dmm::local
