#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>

#include "local/flat_engine.hpp"
#include "local/runtime.hpp"

namespace dmm::svc {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

double nearest_rank_percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  // 1-based nearest rank ceil(q·N): the smallest element whose rank covers
  // a q-fraction of the sample.  Monotone in q, so p50 ≤ p99 always, and
  // never above the max (rank N at q = 1).
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const auto idx = rank < 1.0 ? std::size_t{0} : static_cast<std::size_t>(rank) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct MatchingService::Impl {
  /// A job that has been accepted but not yet completed.  Owns everything
  /// the session borrows (graph, program source, fault plan), held behind
  /// a unique_ptr so the addresses stay stable from queue to completion.
  struct Pending {
    Job job;
    std::promise<local::RunResult> promise;
    Clock::time_point submitted;
  };

  struct Active {
    std::string tenant;
    std::unique_ptr<Pending> pending;
    // Declared after `pending`: the session borrows the job, so it must be
    // destroyed first (members die in reverse declaration order).
    std::unique_ptr<local::Session> session;
    std::exception_ptr error;
  };

  struct Tenant {
    std::deque<std::unique_ptr<Pending>> queue;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t steps = 0;
    std::vector<double> latencies_ms;
  };

  explicit Impl(const ServiceOptions& options) : opts(options), runtime(opts.threads) {
    if (opts.inflight < 1) opts.inflight = 1;
    if (opts.quantum < 1) opts.quantum = 1;
    scheduler = std::thread([this] { scheduler_main(); });
  }

  ~Impl() {
    {
      const std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    cv.notify_all();
    scheduler.join();
  }

  // ---- scheduler thread ------------------------------------------------

  void scheduler_main() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv.wait(lock, [&] { return stop || queued > 0 || !active.empty(); });
      if (queued == 0 && active.empty()) {
        if (stop) return;
        continue;
      }
      admit(lock);
      pass(lock);
    }
  }

  /// Admission: pull queued jobs into the active set, round-robin across
  /// tenants (so a tenant that batched a thousand submissions cannot
  /// monopolise the in-flight slots), until the bound is reached.  Session
  /// construction (program build + init — the expensive part) happens with
  /// the lock dropped.
  void admit(std::unique_lock<std::mutex>& lock) {
    while (static_cast<int>(active.size()) < opts.inflight && queued > 0) {
      auto it = tenants.upper_bound(admit_cursor);
      if (it == tenants.end()) it = tenants.begin();
      while (it->second.queue.empty()) {
        ++it;
        if (it == tenants.end()) it = tenants.begin();
      }
      admit_cursor = it->first;
      auto entry = std::make_unique<Active>();
      entry->tenant = it->first;
      entry->pending = std::move(it->second.queue.front());
      it->second.queue.pop_front();
      --queued;

      lock.unlock();
      const Job& job = entry->pending->job;
      local::RunOptions ropts;
      ropts.max_rounds = job.max_rounds;
      if (!job.faults.empty()) ropts.faults.plan = &entry->pending->job.faults;
      local::FlatEngineOptions fopts;
      fopts.threads = opts.threads;
      fopts.chunk_slots = opts.chunk_slots;
      fopts.steal = opts.steal;
      try {
        entry->session = local::make_session(job.engine, entry->pending->job.graph,
                                             entry->pending->job.source, ropts, fopts,
                                             &runtime);
      } catch (...) {
        entry->error = std::current_exception();
      }
      lock.lock();

      active.push_back(std::move(entry));
      // Zero-round sessions (and failed constructions) complete without
      // ever costing scheduling credit.
      if (active.back()->error || active.back()->session->done()) {
        complete(active.size() - 1, lock);
      }
    }
  }

  /// One deficit-round-robin pass: tenants with admitted sessions, in
  /// sorted-name order, each get up to `quantum` round steps, spread
  /// round-robin over their own sessions.  Unused credit is forfeited —
  /// never banked — which is what bounds cross-tenant stalls at
  /// quantum × (tenants − 1) foreign steps (see service.hpp).
  void pass(std::unique_lock<std::mutex>& lock) {
    std::vector<std::string> order;
    order.reserve(active.size());
    for (const auto& a : active) order.push_back(a->tenant);
    std::sort(order.begin(), order.end());
    order.erase(std::unique(order.begin(), order.end()), order.end());

    for (const std::string& tenant : order) {
      int credit = opts.quantum;
      bool progressed = true;
      while (credit > 0 && progressed) {
        progressed = false;
        std::size_t i = 0;
        while (i < active.size() && credit > 0) {
          if (active[i]->tenant != tenant) {
            ++i;
            continue;
          }
          Active* a = active[i].get();
          --credit;
          ++tenants[tenant].steps;
          progressed = true;
          lock.unlock();
          if (opts.step_observer) opts.step_observer(tenant);
          try {
            a->session->step();
          } catch (...) {
            a->error = std::current_exception();
          }
          lock.lock();
          if (a->error || a->session->done()) {
            complete(i, lock);  // erases active[i]; do not advance i
          } else {
            ++i;
          }
        }
      }
    }
  }

  /// Finishes active[i]: records latency and tenant stats, then delivers
  /// the RunResult (or the session's exception) through the promise with
  /// the lock dropped.
  void complete(std::size_t i, std::unique_lock<std::mutex>& lock) {
    std::unique_ptr<Active> a = std::move(active[i]);
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
    Tenant& t = tenants[a->tenant];
    ++t.completed;
    ++completed_total;
    t.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - a->pending->submitted)
            .count());
    lock.unlock();
    if (a->error) {
      a->pending->promise.set_exception(a->error);
    } else {
      try {
        a->pending->promise.set_value(a->session->result());
      } catch (...) {
        a->pending->promise.set_exception(std::current_exception());
      }
    }
    a.reset();  // session (borrower) dies before pending (owner)
    lock.lock();
  }

  // ---- shared state ----------------------------------------------------

  ServiceOptions opts;
  local::Runtime runtime;

  mutable std::mutex mu;
  std::condition_variable cv;
  std::map<std::string, Tenant> tenants;
  std::vector<std::unique_ptr<Active>> active;  // scheduler-thread only
  std::string admit_cursor;                     // last tenant admitted from
  std::size_t queued = 0;
  std::uint64_t completed_total = 0;
  bool stop = false;

  std::thread scheduler;
};

MatchingService::MatchingService(const ServiceOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

MatchingService::~MatchingService() = default;

namespace {

void validate(const Job& job, const ServiceOptions& opts) {
  if (job.max_rounds <= 0) {
    throw std::invalid_argument("MatchingService::submit: Job.max_rounds must be positive");
  }
  if (opts.max_nodes > 0 &&
      static_cast<std::size_t>(job.graph.node_count()) > opts.max_nodes) {
    throw std::invalid_argument(
        "MatchingService::submit: instance exceeds the service's max_nodes");
  }
}

}  // namespace

std::future<local::RunResult> MatchingService::submit(const std::string& tenant, Job job) {
  validate(job, impl_->opts);
  auto pending = std::make_unique<Impl::Pending>();
  pending->job = std::move(job);
  pending->submitted = Clock::now();
  std::future<local::RunResult> future = pending->promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->stop) {
      throw std::runtime_error("MatchingService::submit: service is shut down");
    }
    Impl::Tenant& t = impl_->tenants[tenant];
    ++t.submitted;
    t.queue.push_back(std::move(pending));
    ++impl_->queued;
  }
  impl_->cv.notify_one();
  return future;
}

std::vector<std::future<local::RunResult>> MatchingService::submit_batch(
    const std::string& tenant, std::vector<Job> jobs) {
  // Validate the whole batch before enqueuing any of it, so a rejection
  // cannot leave a half-admitted batch behind.
  for (const Job& job : jobs) validate(job, impl_->opts);
  std::vector<std::future<local::RunResult>> futures;
  futures.reserve(jobs.size());
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->stop) {
      throw std::runtime_error("MatchingService::submit: service is shut down");
    }
    Impl::Tenant& t = impl_->tenants[tenant];
    for (Job& job : jobs) {
      auto pending = std::make_unique<Impl::Pending>();
      pending->job = std::move(job);
      pending->submitted = Clock::now();
      futures.push_back(pending->promise.get_future());
      ++t.submitted;
      t.queue.push_back(std::move(pending));
      ++impl_->queued;
    }
  }
  impl_->cv.notify_one();
  return futures;
}

void MatchingService::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
}

ServiceStats MatchingService::stats() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  ServiceStats s;
  s.sessions = impl_->completed_total;
  s.pool_spawns = impl_->runtime.pool_spawns();
  s.threads_spawned = impl_->runtime.threads_spawned();
  double min_mean = 0.0;
  double max_mean = 0.0;
  int measured = 0;
  for (const auto& [name, t] : impl_->tenants) {
    TenantStats out;
    out.tenant = name;
    out.submitted = t.submitted;
    out.completed = t.completed;
    out.steps = t.steps;
    if (!t.latencies_ms.empty()) {
      std::vector<double> sorted = t.latencies_ms;
      std::sort(sorted.begin(), sorted.end());
      out.p50_ms = nearest_rank_percentile(sorted, 0.50);
      out.p99_ms = nearest_rank_percentile(sorted, 0.99);
      out.mean_ms = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
                    static_cast<double>(sorted.size());
      if (measured == 0) {
        min_mean = max_mean = out.mean_ms;
      } else {
        min_mean = std::min(min_mean, out.mean_ms);
        max_mean = std::max(max_mean, out.mean_ms);
      }
      ++measured;
    }
    s.tenants.push_back(std::move(out));
  }
  if (measured >= 2 && min_mean > 0.0) s.fairness_ratio = max_mean / min_mean;
  return s;
}

}  // namespace dmm::svc
