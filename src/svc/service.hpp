// Multi-tenant request front-end over the session-stepped engines
// (ROADMAP scenario (c): many concurrent matching instances behind a
// batched async API with per-tenant fair-share admission).
//
// The service owns one shared local::Runtime (one worker pool per
// process) and a single scheduler thread.  submit() enqueues a Job on its
// tenant's FIFO and returns a std::future; the scheduler admits queued
// jobs round-robin across tenants up to the in-flight bound, then
// interleaves the admitted sessions one round step at a time under a
// deficit-round-robin discipline:
//
//   * every scheduling pass visits the tenants that have admitted
//     sessions in a fixed (sorted) order and grants each a quantum of
//     round steps;
//   * a tenant that cannot use its credit (no runnable session) forfeits
//     the remainder — credit never accumulates, so an idle tenant cannot
//     later burst;
//   * consequently, between two consecutive steps granted to a tenant
//     with runnable work, every other tenant receives at most `quantum`
//     steps — a flooding tenant with thousand-round sessions cannot stall
//     a greedy tenant beyond the deficit window
//     (tests/test_service.cpp pins the bound via step_observer).
//
// Correctness under interleaving is structural, not scheduled: sessions
// share no mutable state except the runtime (whose borrow lock spans a
// full step), so every session's RunResult is bit-identical to its
// standalone run no matter how steps interleave — the equivalence suite
// checks results against the run_sync oracle across engines, fault plans
// and scheduling knobs.  Queueing/fair-share idiom per the ytsaurus
// scheduler sources cited in ROADMAP.md; docs/service.md has the full
// semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "graph/edge_coloured_graph.hpp"
#include "local/engine.hpp"
#include "local/faults.hpp"

namespace dmm::svc {

/// One matching instance submitted to the front-end.  The service takes
/// the Job by value and owns the graph / source / fault plan for the
/// session's lifetime (the engine borrows them), so a submitter may drop
/// its own copies immediately after submit() returns.
struct Job {
  graph::EdgeColouredGraph graph{0, 1};
  local::ProgramSource source;
  /// Round budget; must be positive (submit rejects otherwise — an
  /// unbounded job could starve every tenant forever).
  int max_rounds = 0;
  local::EngineKind engine = local::EngineKind::kFlat;
  /// Deterministic fault plan for this run; empty = fault-free.
  local::FaultPlan faults;
};

struct ServiceOptions {
  /// Admission bound: at most this many sessions are in flight (admitted,
  /// stepping) at once; the rest wait in their tenant queues.
  int inflight = 8;
  /// Deficit-round-robin quantum: round steps granted per tenant per
  /// scheduling pass.  The starvation bound is quantum × (tenants − 1)
  /// foreign steps between two of a tenant's own.
  int quantum = 4;
  /// Worker budget of the shared Runtime used by flat sessions.  1 keeps
  /// everything serial (no pool is ever spawned).
  int threads = 1;
  /// Forwarded to FlatEngineOptions for flat sessions.
  std::size_t chunk_slots = 0;
  bool steal = true;
  /// Reject instances with more nodes than this (0 = unlimited).
  std::size_t max_nodes = 0;
  /// Test hook: called on the scheduler thread immediately before each
  /// granted round step, with the tenant receiving the step.  Must be
  /// thread-compatible with the scheduler (it is never called
  /// concurrently with itself).
  std::function<void(const std::string& tenant)> step_observer;
};

/// Nearest-rank percentile over an ascending-sorted sample: the element of
/// 1-based rank ceil(q·N), i.e. the smallest sample value that is ≥ at
/// least a q-fraction of the sample.  q is clamped to the sample (empty →
/// 0, q ≤ 0 → min, q ≥ 1 → max); p50 of a 2-sample is the LOWER element.
/// This is the formula behind TenantStats::p50_ms/p99_ms; exposed so the
/// regression suite can pin exact ranks (tests/test_service.cpp).
double nearest_rank_percentile(const std::vector<double>& sorted, double q);

struct TenantStats {
  std::string tenant;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t steps = 0;  // round steps granted so far
  // Sojourn latency (submit → result ready) over completed sessions, ms.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
};

struct ServiceStats {
  std::uint64_t sessions = 0;  // completed sessions, all tenants
  // Shared-runtime gauges: pool_spawns stays ≤ 1 no matter how many
  // sessions ran (the whole point of the runtime), threads_spawned is the
  // pool size actually created.
  std::uint64_t pool_spawns = 0;
  std::size_t threads_spawned = 0;
  /// max / min of tenant mean sojourn latency over tenants with at least
  /// one completed session; 1.0 when fewer than two such tenants.  Under
  /// identical per-tenant workloads DRR keeps this near 1.
  double fairness_ratio = 1.0;
  std::vector<TenantStats> tenants;  // sorted by tenant name
};

/// The front-end.  Thread-safe: submit()/stats()/shutdown() may be called
/// from any thread.  Destruction shuts down admissions and drains every
/// already-submitted job (their futures all complete).
class MatchingService {
 public:
  explicit MatchingService(const ServiceOptions& options);
  ~MatchingService();

  MatchingService(const MatchingService&) = delete;
  MatchingService& operator=(const MatchingService&) = delete;

  /// Enqueues a job for `tenant` and returns the future of its final
  /// RunResult — bit-identical to the job's standalone run.  Throws
  /// std::invalid_argument synchronously for a non-positive round budget
  /// or an instance above max_nodes, and std::runtime_error after
  /// shutdown().  A job whose session throws (program error, round-budget
  /// exhaustion) delivers the exception through the future.
  std::future<local::RunResult> submit(const std::string& tenant, Job job);

  /// Batched submission: one queue pass, futures in job order.
  std::vector<std::future<local::RunResult>> submit_batch(const std::string& tenant,
                                                          std::vector<Job> jobs);

  /// Stops admissions (further submits throw); already-submitted jobs
  /// still run to completion.  Idempotent, non-blocking — wait on the
  /// futures (or destroy the service) to observe the drain.
  void shutdown();

  ServiceStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dmm::svc
