// Output verification (§2.4): a local output assignment encodes a maximal
// matching iff
//   (M1) every output is an incident colour or ⊥,
//   (M2) if v says colour c, then v's c-neighbour exists and also says c,
//   (M3) if v says ⊥, no neighbour of v says ⊥ ... more precisely every
//        neighbour is matched (along some edge), so no edge of the graph
//        has two unmatched endpoints.
#pragma once

#include <string>
#include <vector>

#include "colsys/colour_system.hpp"
#include "graph/edge_coloured_graph.hpp"
#include "local/algorithm.hpp"

namespace dmm::verify {

using gk::Colour;

struct Violation {
  enum class Kind { M1, M2, M3 } kind;
  graph::NodeIndex node = -1;     // offending node
  graph::NodeIndex other = -1;    // partner / unmatched neighbour, if any
  Colour colour = gk::kNoColour;  // colour involved, if any
  std::string describe() const;
};

struct MatchingReport {
  std::vector<Violation> violations;
  bool ok() const noexcept { return violations.empty(); }
  bool has(Violation::Kind kind) const noexcept;
  std::string describe() const;
};

/// Checks (M1)-(M3) of `outputs` (one entry per node) against g.
MatchingReport check_outputs(const graph::EdgeColouredGraph& g,
                             const std::vector<Colour>& outputs);

/// Checks (M1)-(M3) restricted to node v: v's own output (M1/M2) plus
/// every incident edge's two-sided-⊥ condition (M3, reported from v's
/// side).  Work is bounded by v's neighbourhood — independent of n and
/// m — which is what lets the dynamic-matching subsystem (src/dyn)
/// spot-check exactly the nodes a churn batch touched instead of paying
/// check_outputs' full sweep.  Clean at every node of N(v) ∪ {v} implies
/// check_outputs clean at v.
MatchingReport check_node(const graph::EdgeColouredGraph& g,
                          const std::vector<Colour>& outputs, graph::NodeIndex v);

/// The matched edges induced by a valid output assignment.
std::vector<graph::Edge> matched_edges(const graph::EdgeColouredGraph& g,
                                       const std::vector<Colour>& outputs);

/// True iff `edges` is a matching of g (pairwise disjoint endpoints).
bool is_matching(const graph::EdgeColouredGraph& g, const std::vector<graph::Edge>& edges);

/// True iff `edges` is a maximal matching of g.
bool is_maximal_matching(const graph::EdgeColouredGraph& g,
                         const std::vector<graph::Edge>& edges);

}  // namespace dmm::verify
