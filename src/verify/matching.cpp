#include "verify/matching.hpp"

#include <algorithm>

namespace dmm::verify {

std::string Violation::describe() const {
  const char* names[] = {"M1", "M2", "M3"};
  std::string out = names[static_cast<int>(kind)];
  out += " violation at node " + std::to_string(node);
  if (other >= 0) out += " (other node " + std::to_string(other) + ")";
  if (colour != gk::kNoColour) out += " colour " + std::to_string(static_cast<int>(colour));
  return out;
}

bool MatchingReport::has(Violation::Kind kind) const noexcept {
  return std::any_of(violations.begin(), violations.end(),
                     [kind](const Violation& v) { return v.kind == kind; });
}

std::string MatchingReport::describe() const {
  if (ok()) return "valid maximal matching";
  std::string out;
  for (const Violation& v : violations) out += v.describe() + "\n";
  return out;
}

MatchingReport check_outputs(const graph::EdgeColouredGraph& g,
                             const std::vector<Colour>& outputs) {
  MatchingReport report;
  if (static_cast<int>(outputs.size()) != g.node_count()) {
    report.violations.push_back({Violation::Kind::M1, -1, -1, gk::kNoColour});
    return report;
  }
  for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
    const Colour out = outputs[static_cast<std::size_t>(v)];
    if (out == local::kUnmatched) continue;
    const auto partner = g.neighbour(v, out);
    if (!partner) {
      report.violations.push_back({Violation::Kind::M1, v, -1, out});
      continue;
    }
    if (outputs[static_cast<std::size_t>(*partner)] != out) {
      report.violations.push_back({Violation::Kind::M2, v, *partner, out});
    }
  }
  for (const graph::Edge& e : g.edges()) {
    if (outputs[static_cast<std::size_t>(e.u)] == local::kUnmatched &&
        outputs[static_cast<std::size_t>(e.v)] == local::kUnmatched) {
      report.violations.push_back({Violation::Kind::M3, e.u, e.v, e.colour});
    }
  }
  return report;
}

MatchingReport check_node(const graph::EdgeColouredGraph& g,
                          const std::vector<Colour>& outputs, graph::NodeIndex v) {
  MatchingReport report;
  if (static_cast<int>(outputs.size()) != g.node_count()) {
    report.violations.push_back({Violation::Kind::M1, -1, -1, gk::kNoColour});
    return report;
  }
  const Colour out = outputs[static_cast<std::size_t>(v)];
  if (out != local::kUnmatched) {
    const auto partner = g.neighbour(v, out);
    if (!partner) {
      report.violations.push_back({Violation::Kind::M1, v, -1, out});
    } else if (outputs[static_cast<std::size_t>(*partner)] != out) {
      report.violations.push_back({Violation::Kind::M2, v, *partner, out});
    }
  } else {
    for (const Colour c : g.incident_colours(v)) {
      const auto w = g.neighbour(v, c);
      if (w && outputs[static_cast<std::size_t>(*w)] == local::kUnmatched) {
        report.violations.push_back({Violation::Kind::M3, v, *w, c});
      }
    }
  }
  return report;
}

std::vector<graph::Edge> matched_edges(const graph::EdgeColouredGraph& g,
                                       const std::vector<Colour>& outputs) {
  std::vector<graph::Edge> out;
  for (const graph::Edge& e : g.edges()) {
    if (outputs[static_cast<std::size_t>(e.u)] == e.colour &&
        outputs[static_cast<std::size_t>(e.v)] == e.colour) {
      out.push_back(e);
    }
  }
  return out;
}

bool is_matching(const graph::EdgeColouredGraph& g, const std::vector<graph::Edge>& edges) {
  std::vector<char> used(static_cast<std::size_t>(g.node_count()), 0);
  for (const graph::Edge& e : edges) {
    if (used[static_cast<std::size_t>(e.u)] || used[static_cast<std::size_t>(e.v)]) return false;
    used[static_cast<std::size_t>(e.u)] = used[static_cast<std::size_t>(e.v)] = 1;
  }
  return true;
}

bool is_maximal_matching(const graph::EdgeColouredGraph& g,
                         const std::vector<graph::Edge>& edges) {
  if (!is_matching(g, edges)) return false;
  std::vector<char> used(static_cast<std::size_t>(g.node_count()), 0);
  for (const graph::Edge& e : edges) {
    used[static_cast<std::size_t>(e.u)] = used[static_cast<std::size_t>(e.v)] = 1;
  }
  for (const graph::Edge& e : g.edges()) {
    if (!used[static_cast<std::size_t>(e.u)] && !used[static_cast<std::size_t>(e.v)]) return false;
  }
  return true;
}

}  // namespace dmm::verify
