#include "colsys/colour_system.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <utility>

namespace dmm::colsys {

namespace {

int shrink_radius(int valid_radius, int delta) {
  if (valid_radius == kExactRadius) return kExactRadius;
  return valid_radius - delta;
}

}  // namespace

ColourSystem::ColourSystem(int k, int valid_radius) : k_(k), valid_radius_(valid_radius) {
  if (k < 1) throw std::invalid_argument("ColourSystem: k must be >= 1");
  if (valid_radius < 0) throw std::invalid_argument("ColourSystem: negative valid_radius");
  nodes_.push_back(Node{});
  children_.assign(static_cast<std::size_t>(k_), kNullNode);
}

NodeId ColourSystem::check(NodeId v) const {
  if (v < 0 || v >= size()) throw std::out_of_range("ColourSystem: bad node id");
  return v;
}

void ColourSystem::require_within(int radius, const char* what) const {
  if (valid_radius_ != kExactRadius && radius > valid_radius_) {
    throw std::logic_error(std::string("ColourSystem: ") + what +
                           " reads beyond the faithful truncation radius (" +
                           std::to_string(radius) + " > " + std::to_string(valid_radius_) + ")");
  }
}

NodeId ColourSystem::child(NodeId v, Colour c) const {
  check(v);
  if (c < 1 || c > k_) throw std::invalid_argument("ColourSystem::child: colour out of range");
  return children_[child_slot(v, c)];
}

NodeId ColourSystem::neighbour(NodeId v, Colour c) const {
  check(v);
  if (nodes_[v].pcolour == c) return nodes_[v].parent;
  return child(v, c);
}

NodeId ColourSystem::add_child(NodeId v, Colour c) {
  check(v);
  if (c < 1 || c > k_) throw std::invalid_argument("ColourSystem::add_child: colour out of range");
  if (nodes_[v].pcolour == c) {
    throw std::logic_error("ColourSystem::add_child: colour equals parent colour (word not reduced)");
  }
  if (children_[child_slot(v, c)] != kNullNode) {
    throw std::logic_error("ColourSystem::add_child: child slot already taken");
  }
  Node n;
  n.parent = v;
  n.pcolour = c;
  n.depth = nodes_[v].depth + 1;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(n);
  children_.resize(children_.size() + static_cast<std::size_t>(k_), kNullNode);
  children_[child_slot(v, c)] = id;
  return id;
}

std::vector<Colour> ColourSystem::colours_at(NodeId v) const {
  check(v);
  std::vector<Colour> out;
  for (Colour c = 1; c <= k_; ++c) {
    if (nodes_[v].pcolour == c || children_[child_slot(v, c)] != kNullNode) out.push_back(c);
  }
  return out;
}

int ColourSystem::degree(NodeId v) const {
  check(v);
  int d = nodes_[v].pcolour != gk::kNoColour ? 1 : 0;
  for (Colour c = 1; c <= k_; ++c) {
    if (children_[child_slot(v, c)] != kNullNode) ++d;
  }
  return d;
}

NodeId ColourSystem::find(const gk::Word& w) const {
  NodeId v = root();
  for (Colour c : w.letters()) {
    v = children_[child_slot(v, c)];
    if (v == kNullNode) return kNullNode;
  }
  return v;
}

gk::Word ColourSystem::word_of(NodeId v) const {
  check(v);
  std::vector<Colour> letters;
  for (NodeId u = v; u != root(); u = nodes_[u].parent) letters.push_back(nodes_[u].pcolour);
  std::reverse(letters.begin(), letters.end());
  return gk::Word::from_letters(letters);
}

std::vector<NodeId> ColourSystem::nodes_up_to(int h) const {
  std::vector<NodeId> out;
  std::deque<NodeId> queue{root()};
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    if (nodes_[v].depth > h) continue;
    out.push_back(v);
    for (Colour c = 1; c <= k_; ++c) {
      const NodeId u = children_[child_slot(v, c)];
      if (u != kNullNode) queue.push_back(u);
    }
  }
  return out;
}

bool ColourSystem::is_regular(int d) const {
  for (NodeId v = 0; v < size(); ++v) {
    const bool interior = is_exact() || nodes_[v].depth < valid_radius_;
    if (interior && degree(v) != d) return false;
  }
  return true;
}

ColourSystem ColourSystem::restricted(int h, std::vector<NodeId>* old_to_new) const {
  require_within(h, "restricted");
  ColourSystem out(k_, kExactRadius);
  if (old_to_new) old_to_new->assign(nodes_.size(), kNullNode);
  // BFS; node 0 maps to node 0.
  std::vector<NodeId> map(nodes_.size(), kNullNode);
  map[root()] = out.root();
  for (NodeId v : nodes_up_to(h)) {
    if (v == root()) continue;
    map[v] = out.add_child(map[nodes_[v].parent], nodes_[v].pcolour);
  }
  if (old_to_new) *old_to_new = std::move(map);
  return out;
}

ColourSystem ColourSystem::rerooted(NodeId y, std::vector<NodeId>* old_to_new) const {
  check(y);
  const int new_radius = shrink_radius(valid_radius_, nodes_[y].depth);
  if (valid_radius_ != kExactRadius && new_radius < 0) {
    throw std::logic_error("ColourSystem::rerooted: truncation too shallow to re-root here");
  }
  ColourSystem out(k_, new_radius);
  std::vector<NodeId> map(nodes_.size(), kNullNode);
  map[y] = out.root();
  // BFS over the undirected tree starting from y.
  std::deque<NodeId> queue{y};
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    // Neighbours: parent (if any) plus children.
    auto visit = [&](NodeId u, Colour edge_colour) {
      if (u == kNullNode || map[u] != kNullNode) return;
      map[u] = out.add_child(map[v], edge_colour);
      queue.push_back(u);
    };
    if (nodes_[v].parent != kNullNode) visit(nodes_[v].parent, nodes_[v].pcolour);
    for (Colour c = 1; c <= k_; ++c) visit(children_[child_slot(v, c)], c);
  }
  if (old_to_new) *old_to_new = std::move(map);
  return out;
}

ColourSystem ColourSystem::pruned(Colour c, std::vector<NodeId>* old_to_new) const {
  if (child(root(), c) == kNullNode) {
    throw std::logic_error("ColourSystem::pruned: root has no child of this colour");
  }
  ColourSystem out(k_, valid_radius_);
  std::vector<NodeId> map(nodes_.size(), kNullNode);
  map[root()] = out.root();
  std::deque<NodeId> queue;
  for (Colour cc = 1; cc <= k_; ++cc) {
    const NodeId u = children_[child_slot(root(), cc)];
    if (u != kNullNode && cc != c) {
      map[u] = out.add_child(out.root(), cc);
      queue.push_back(u);
    }
  }
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (Colour cc = 1; cc <= k_; ++cc) {
      const NodeId u = children_[child_slot(v, cc)];
      if (u != kNullNode) {
        map[u] = out.add_child(map[v], cc);
        queue.push_back(u);
      }
    }
  }
  if (old_to_new) *old_to_new = std::move(map);
  return out;
}

ColourSystem ColourSystem::grafted(Colour c, const ColourSystem& other,
                                   std::vector<NodeId>* self_to_new,
                                   std::vector<NodeId>* other_to_new) const {
  if (other.k() != k_) throw std::invalid_argument("ColourSystem::grafted: mismatched k");
  if (other.child(other.root(), c) == kNullNode) {
    throw std::logic_error("ColourSystem::grafted: donor has no subtree of this colour");
  }
  const int new_radius = std::min(valid_radius_, other.valid_radius_);
  // Start from this system without its c-subtree (if it has one).
  ColourSystem out(k_, new_radius);
  std::vector<NodeId> self_map(nodes_.size(), kNullNode);
  self_map[root()] = out.root();
  std::deque<NodeId> queue;
  for (Colour cc = 1; cc <= k_; ++cc) {
    const NodeId u = children_[child_slot(root(), cc)];
    if (u != kNullNode && cc != c) {
      self_map[u] = out.add_child(out.root(), cc);
      queue.push_back(u);
    }
  }
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (Colour cc = 1; cc <= k_; ++cc) {
      const NodeId u = children_[child_slot(v, cc)];
      if (u != kNullNode) {
        self_map[u] = out.add_child(self_map[v], cc);
        queue.push_back(u);
      }
    }
  }
  // Copy the donor's c-subtree under our root.
  std::vector<NodeId> other_map(other.nodes_.size(), kNullNode);
  const NodeId donor_top = other.child(other.root(), c);
  other_map[donor_top] = out.add_child(out.root(), c);
  queue.push_back(donor_top);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (Colour cc = 1; cc <= k_; ++cc) {
      const NodeId u = other.children_[child_slot(v, cc)];
      if (u != kNullNode) {
        other_map[u] = out.add_child(other_map[v], cc);
        queue.push_back(u);
      }
    }
  }
  if (self_to_new) *self_to_new = std::move(self_map);
  if (other_to_new) *other_to_new = std::move(other_map);
  return out;
}

ColourSystem ColourSystem::permuted(const std::vector<Colour>& perm,
                                    std::vector<NodeId>* old_to_new) const {
  if (static_cast<int>(perm.size()) != k_ + 1) {
    throw std::invalid_argument("ColourSystem::permuted: perm must have size k + 1");
  }
  ColourSystem out(k_, valid_radius_);
  std::vector<NodeId> map(nodes_.size(), kNullNode);
  map[root()] = out.root();
  // BFS, visiting each node's children in *relabelled* colour order so the
  // output's node numbering is its own canonical BFS numbering.
  std::deque<NodeId> queue{root()};
  std::vector<std::pair<Colour, NodeId>> order;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    order.clear();
    for (Colour c = 1; c <= k_; ++c) {
      const NodeId u = children_[child_slot(v, c)];
      if (u != kNullNode) order.emplace_back(perm[c], u);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [c, u] : order) {
      map[u] = out.add_child(map[v], c);
      queue.push_back(u);
    }
  }
  if (old_to_new) *old_to_new = std::move(map);
  return out;
}

ColourSystem ColourSystem::ball(NodeId v, int radius) const {
  check(v);
  if (radius < 0) throw std::invalid_argument("ColourSystem::ball: negative radius");
  require_within(valid_radius_ == kExactRadius ? 0 : nodes_[v].depth + radius, "ball");
  // A ball is a truncation of (v̄V): faithful exactly to `radius`.
  ColourSystem out(k_, radius);
  std::vector<std::pair<NodeId, NodeId>> frontier{{v, out.root()}};  // (src, dst)
  std::vector<std::pair<NodeId, NodeId>> next;
  std::vector<char> seen(nodes_.size(), 0);
  seen[v] = 1;
  for (int step = 0; step < radius && !frontier.empty(); ++step) {
    next.clear();
    for (auto [src, dst] : frontier) {
      auto visit = [&](NodeId u, Colour edge_colour) {
        if (u == kNullNode || seen[u]) return;
        seen[u] = 1;
        next.emplace_back(u, out.add_child(dst, edge_colour));
      };
      if (nodes_[src].parent != kNullNode) visit(nodes_[src].parent, nodes_[src].pcolour);
      for (Colour c = 1; c <= k_; ++c) visit(children_[child_slot(src, c)], c);
    }
    frontier.swap(next);
  }
  return out;
}

std::vector<std::uint8_t> ColourSystem::serialize(int radius) const {
  std::vector<std::uint8_t> out;
  serialize_into(radius, out);
  return out;
}

void ColourSystem::serialize_into(int radius, std::vector<std::uint8_t>& out) const {
  require_within(radius, "serialize");
  serialize_subtree_into(root(), gk::kNoColour, radius, out);
}

void ColourSystem::serialize_subtree_into(NodeId top, Colour dropped, int radius,
                                          std::vector<std::uint8_t>& out) const {
  check(top);
  if (valid_radius_ != kExactRadius && nodes_[top].depth + radius > valid_radius_) {
    throw std::logic_error(
        "ColourSystem: serialize_subtree_into reads beyond the faithful truncation radius");
  }
  out.push_back(static_cast<std::uint8_t>(k_));
  // Pre-order DFS with children in colour order; depth-limited.  Each node
  // emits the sorted list of child colours present, then recurses.  Because
  // child order is canonical, equal trees serialise identically.
  struct Frame {
    NodeId v;
    int depth;
  };
  std::vector<Frame> stack{{top, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.depth == radius) {
      out.push_back(0xff);  // leaf-by-truncation marker
      continue;
    }
    const Colour omitted = f.v == top ? dropped : gk::kNoColour;
    std::uint8_t mask_count = 0;
    for (Colour c = 1; c <= k_; ++c) {
      if (c != omitted && children_[child_slot(f.v, c)] != kNullNode) ++mask_count;
    }
    out.push_back(mask_count);
    // Push in reverse colour order so DFS visits ascending colours.
    for (Colour c = k_; c >= 1; --c) {
      const NodeId u = children_[child_slot(f.v, c)];
      if (c != omitted && u != kNullNode) {
        // Emitting the colour here (before the subtree) keeps the encoding
        // prefix-free per node.
        stack.push_back({u, f.depth + 1});
      }
    }
    for (Colour c = 1; c <= k_; ++c) {
      if (c != omitted && children_[child_slot(f.v, c)] != kNullNode) out.push_back(c);
    }
  }
}

bool ColourSystem::equal_to_radius(const ColourSystem& a, const ColourSystem& b, int h) {
  if (a.k() != b.k()) return false;
  return a.serialize(h) == b.serialize(h);
}

std::string ColourSystem::str(int max_depth) const {
  std::string out;
  struct Frame {
    NodeId v;
    int indent;
  };
  std::vector<Frame> stack{{root(), 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    out.append(static_cast<std::size_t>(f.indent) * 2, ' ');
    if (f.v == root()) {
      out += "e";
    } else {
      out += "-" + std::to_string(static_cast<int>(nodes_[f.v].pcolour)) + "-";
    }
    out += "\n";
    if (nodes_[f.v].depth >= max_depth) continue;
    for (Colour c = k_; c >= 1; --c) {
      const NodeId u = children_[child_slot(f.v, c)];
      if (u != kNullNode) stack.push_back({u, f.indent + 1});
    }
  }
  return out;
}

ColourSystem cayley_ball(int k, int depth) {
  return regular_system(k, k, depth);
}

ColourSystem regular_system(int k, int d, int depth) {
  if (d < 0 || d > k) throw std::invalid_argument("regular_system: need 0 <= d <= k");
  ColourSystem out(k, depth);
  if (d == 0) {
    // Z = {e}; a 0-regular system is exact regardless of `depth`.
    return ColourSystem(k, kExactRadius);
  }
  // BFS construction: the root takes colours {1..d}; every other node keeps
  // its parent colour and adds the smallest d-1 other colours.
  std::deque<NodeId> queue{ColourSystem::root()};
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    if (out.depth(v) >= depth) continue;
    const Colour pc = out.parent_colour(v);
    int added = pc != gk::kNoColour ? 1 : 0;  // parent edge counts towards d
    for (Colour c = 1; c <= k && added < d; ++c) {
      if (c == pc) continue;
      queue.push_back(out.add_child(v, c));
      ++added;
    }
  }
  return out;
}

ColourSystem path_system(int k, const std::vector<Colour>& colours) {
  ColourSystem out(k, kExactRadius);
  NodeId v = ColourSystem::root();
  for (Colour c : colours) v = out.add_child(v, c);
  return out;
}

}  // namespace dmm::colsys
