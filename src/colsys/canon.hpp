// Hash-consed canonical forms for rooted coloured trees, and their
// quotient under global colour permutations.
//
// Everything on the lower-bound side of the library (the Remark-2 view
// catalogues, the compatible-pair index, the §3 adversary's evaluator memo)
// keys work on the canonical byte serialisation of some rooted tree.  The
// seed implementation re-serialised and copied those byte vectors at every
// lookup; a CanonicalStore interns each distinct serialisation exactly once
// and hands out a dense ViewId, so equality of trees becomes equality of
// 32-bit integers and memo tables become flat vectors indexed by id.
//
// A TransformCache is the companion structure for the root surgeries the
// neighbourhood pipeline performs per (view, colour) — "the subtree across
// the root's c-edge" and "the view minus its c-branch" — expressed as
// dense (ViewId, Colour) → ViewId maps instead of repeated
// rerooted/pruned/restricted tree copies.
//
// Colour-permutation orbits.  Every structure above is also acted on by
// S_k relabelling the colours globally (π·V renames each edge colour c to
// π(c)); catalogues, pair indices and memo key sets are closed under that
// action, so they carry ~k! copies of every structure.  The orbit layer
// quotients them: the *orbit-canonical form* of a view is the
// lexicographically smallest serialisation over all k! relabellings, found
// by an incremental branch-and-bound (colour images are assigned lazily in
// emission order and pruned against the incumbent — not a literal k! loop),
// and CanonicalStore::intern_orbit hands out dense OrbitIds for it.  The
// witness permutation (the relabelling that realises the minimum) is what
// lets callers lift per-colour data between a raw view and its orbit
// representative.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "colsys/colour_system.hpp"

namespace dmm::colsys {

/// Dense id of an interned canonical serialisation.  Ids are assigned in
/// interning order starting at 0, so stores whose interning order mirrors a
/// catalogue's view order have ViewId == view index.
using ViewId = std::int32_t;

/// Dense id of an interned *orbit-canonical* serialisation (a colour
/// permutation orbit of views).  Lives in its own id space.
using OrbitId = std::int32_t;

inline constexpr ViewId kNullView = -1;

// ---------------------------------------------------------------------------
// Colour permutations (elements of S_k acting on the colour alphabet).
// ---------------------------------------------------------------------------

/// perm[c] is the image of colour c for c ∈ [1, k]; perm[0] == kNoColour
/// always (⊥ is fixed by every relabelling), so perm.size() == k + 1.
using ColourPerm = std::vector<Colour>;

/// Largest k the orbit machinery accepts: stabiliser and coset sweeps
/// enumerate S_k, so k! must stay small (8! = 40320).
inline constexpr int kMaxOrbitColours = 8;

ColourPerm identity_perm(int k);
/// (a ∘ b)(c) = a(b(c)).
ColourPerm compose_perm(const ColourPerm& a, const ColourPerm& b);
ColourPerm inverse_perm(const ColourPerm& p);
/// All k! permutations in lexicographic order.  Requires k ≤ kMaxOrbitColours.
std::vector<ColourPerm> all_perms(int k);
/// Lexicographic rank (Lehmer code) of p among all_perms(k); < k!.
std::uint32_t perm_rank(const ColourPerm& p);
/// The lexicographically smallest element of the left coset σ·H, where H is
/// given by its element list (must contain the identity).
ColourPerm min_coset_rep(const ColourPerm& sigma, const std::vector<ColourPerm>& stab);

// ---------------------------------------------------------------------------
// Orbit-canonical serialisations.
// ---------------------------------------------------------------------------

/// A parsed canonical serialisation (the byte format emitted by
/// ColourSystem::serialize): a rooted tree whose nodes carry sorted child
/// colour lists, with explicit leaf-by-truncation markers.  Parsing once
/// makes the per-permutation work (re-emission, stabiliser checks, the
/// branch-and-bound minimisation) a traversal of flat arrays instead of a
/// ColourSystem surgery.
class SerialisedView {
 public:
  /// Parses serialize()-format bytes.  Throws std::invalid_argument on a
  /// malformed buffer.
  explicit SerialisedView(const std::vector<std::uint8_t>& bytes);
  /// Equivalent to SerialisedView(view.serialize(radius)) without the
  /// intermediate buffer.
  SerialisedView(const ColourSystem& view, int radius);

  /// Orderly-generation support: the shared serialisation *skeleton* of the
  /// complete d-regular depth-rho views (the root has d children, every
  /// deeper internal node d-1, depth-rho nodes are leaves-by-truncation).
  /// Nodes are laid out in preorder — the order their segments appear in
  /// the serialisation — with every child-colour slot unassigned.  Colours
  /// are then supplied one internal node at a time via push_assignment(),
  /// which keeps the identity serialisation of the assigned region
  /// available as a growing byte prefix (prefix_bytes()).
  SerialisedView(int k, int d, int rho);

  int k() const noexcept { return k_; }
  int node_count() const noexcept { return static_cast<int>(nodes_.size()); }

  /// Preorder indices of the internal (non-truncated) nodes — the
  /// assignment order of the orderly walk.  Populated for every view.
  const std::vector<std::int32_t>& internal_preorder() const noexcept {
    return internal_order_;
  }
  /// Internal nodes whose child colours have been assigned.  A parsed view
  /// is fully assigned; a fresh skeleton starts at 0.
  int assigned() const noexcept { return assigned_; }
  int child_count_of(std::int32_t node) const {
    return nodes_[static_cast<std::size_t>(node)].child_count;
  }
  /// The i-th child (slot order) of an internal node.  In a skeleton, slot
  /// order is creation order, so assigning an ascending colour list gives
  /// slot i the i-th smallest downward colour.
  std::int32_t child_node(std::int32_t node, int i) const {
    return child_nodes_[static_cast<std::size_t>(
        nodes_[static_cast<std::size_t>(node)].first_child + i)];
  }

  /// Assigns the sorted child-colour list of the next unassigned internal
  /// node (preorder).  `colours` must hold child_count_of(that node)
  /// strictly ascending colours in [1, k].  Skeleton views only.
  void push_assignment(const Colour* colours);
  /// Undoes the most recent push_assignment.
  void pop_assignment();
  /// The identity serialisation of the assigned region: the bytes of
  /// serialise(id) that are already determined by the pushed assignments
  /// (the full serialisation once every internal node is assigned).
  const std::vector<std::uint8_t>& prefix_bytes() const noexcept { return prefix_; }

  /// Appends the serialisation of the π-relabelled tree to `out` — the
  /// bytes of permuted(π).serialize(radius), children re-sorted under π.
  void serialise(const ColourPerm& pi, std::vector<std::uint8_t>& out) const;

  /// Appends the orbit-canonical bytes (the lexicographic minimum of
  /// serialise(π) over all π ∈ S_k) to `out`.  `witness`, if non-null,
  /// receives one minimising π.  Branch-and-bound: colour images are
  /// assigned greedily in emission order (the first node that shows an
  /// unassigned colour set must receive the smallest unused images), and
  /// whole assignment subtrees are pruned the moment a byte exceeds the
  /// incumbent — for trees whose top levels pin the permutation this visits
  /// a tiny fraction of the k! relabellings.
  void canonicalise(std::vector<std::uint8_t>& out, ColourPerm* witness = nullptr) const;

  /// All π with serialise(π) == serialise(id): the stabiliser of the tree
  /// in S_k, in Lehmer-rank (= all_perms) order.  Always contains the
  /// identity.  Branch-and-bound: a π-branch dies at its first byte that
  /// differs from the identity serialisation, so the cost tracks the tree's
  /// actual symmetry instead of a literal k! re-serialisation sweep.
  std::vector<ColourPerm> stabiliser() const;

  /// Incremental is-canonical test over the assigned prefix (the orderly
  /// generator's prune).  Returns true iff there is a permutation π whose
  /// serialisation is certifiably smaller than the identity serialisation
  /// on bytes the assignment already determines — in which case *no*
  /// completion of the unassigned colours can be orbit-canonical, and the
  /// whole augmentation subtree may be skipped.  Sound but deliberately
  /// partial on prefixes (a π-branch that reaches an unassigned node is
  /// indeterminate and certifies nothing); on a fully assigned view the
  /// test is exact: it returns true iff the view is not its own
  /// orbit-canonical form.  `stabiliser`, allowed only on fully assigned
  /// views, receives the stabiliser (rank order) when the view is not
  /// rejected — a free by-product of the exhausted search.
  bool prefix_rejects(std::vector<ColourPerm>* stabiliser = nullptr) const;

 private:
  struct Node {
    std::int32_t first_child = 0;  // index into child_colours_/child_nodes_
    std::int32_t child_count = 0;
    bool truncated = false;  // leaf-by-truncation: emits 0xff, no child list
  };

  struct Canon;       // branch-and-bound minimisation state (canon.cpp)
  struct PrefixWalk;  // prefix-rejection / stabiliser walk state (canon.cpp)

  /// The identity-serialisation reference for the walkers: prefix_ when the
  /// skeleton machinery maintains it, else serialise(id) into `local`.
  const std::vector<std::uint8_t>& reference_bytes(std::vector<std::uint8_t>& local) const;

  int k_ = 0;
  std::vector<Node> nodes_;  // node 0 is the root
  std::vector<Colour> child_colours_;
  std::vector<std::int32_t> child_nodes_;
  // Orderly-generation state (see the skeleton constructor).  Parsed views
  // are fully assigned with an empty (lazily derived) prefix.
  std::vector<std::int32_t> internal_order_;  // preorder internal node indices
  std::int32_t assigned_ = 0;
  bool skeleton_ = false;
  std::vector<std::uint8_t> prefix_;
  std::vector<std::size_t> prefix_marks_;  // prefix_ length before each push
};

/// Convenience wrappers over SerialisedView for one-shot callers.
void orbit_canonical_bytes(const ColourSystem& view, int radius, std::vector<std::uint8_t>& out,
                           ColourPerm* witness = nullptr);
std::vector<ColourPerm> serialisation_stabiliser(const std::vector<std::uint8_t>& bytes);

// ---------------------------------------------------------------------------
// Interning.
// ---------------------------------------------------------------------------

/// FNV-1a over serialisation bytes — the shared hasher for every map keyed
/// on canonical serialisations (the keys are short and high-entropy, so a
/// simple streaming hash beats fancier mixing).
struct SerialisationHash {
  std::size_t operator()(const std::vector<std::uint8_t>& bytes) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (const std::uint8_t b : bytes) {
      h ^= b;
      h *= 1099511628211ull;
    }
    return h;
  }
};

class CanonicalStore {
 public:
  /// Interns `bytes`, returning the existing id when the serialisation has
  /// been seen before (the bytes are copied only on first sight).
  ViewId intern(const std::vector<std::uint8_t>& bytes);

  /// Serialises view[radius] into an internal scratch buffer and interns it.
  ViewId intern(const ColourSystem& view, int radius);

  /// Id of a previously interned serialisation, or kNullView.
  ViewId find(const std::vector<std::uint8_t>& bytes) const;

  /// The interned bytes of an id (valid for the store's lifetime).
  const std::vector<std::uint8_t>& bytes(ViewId id) const;

  std::int32_t size() const noexcept { return static_cast<std::int32_t>(keys_.size()); }

  /// Orbit interning: canonises view[radius] modulo colour permutation and
  /// interns the orbit-canonical bytes into a separate dense OrbitId space.
  /// `witness`, if non-null, receives a π with π·view == representative.
  /// Requires view.k() ≤ kMaxOrbitColours.
  OrbitId intern_orbit(const ColourSystem& view, int radius, ColourPerm* witness = nullptr);

  /// Interns bytes that are already orbit-canonical (callers that ran the
  /// canoniser themselves, e.g. the evaluator's serialise-then-canonise
  /// fast path).
  OrbitId intern_orbit_canonical(const std::vector<std::uint8_t>& canonical_bytes);

  /// The orbit-canonical bytes of an orbit id.
  const std::vector<std::uint8_t>& orbit_bytes(OrbitId id) const;

  std::int32_t orbit_count() const noexcept {
    return static_cast<std::int32_t>(orbit_keys_.size());
  }

  /// Approximate heap footprint: interned key bytes plus index/bucket
  /// overhead (both id spaces).  Reported by AdversaryStats so memo growth
  /// is observable.
  std::size_t resident_bytes() const noexcept;

 private:
  using Index = std::unordered_map<std::vector<std::uint8_t>, ViewId, SerialisationHash>;

  // Keys live in the node-based map; keys_ holds stable pointers to them in
  // id order, so each serialisation is stored exactly once.
  Index index_;
  std::vector<const std::vector<std::uint8_t>*> keys_;
  Index orbit_index_;
  std::vector<const std::vector<std::uint8_t>*> orbit_keys_;
  std::size_t key_bytes_ = 0;
  std::vector<std::uint8_t> scratch_;
  std::vector<std::uint8_t> orbit_scratch_;
};

/// Dense (ViewId, Colour) → ViewId memo for per-colour root transforms.
/// Entries default to kUncachedView; kNullView is a legal cached value
/// (meaning "the transform does not exist for this colour").
inline constexpr ViewId kUncachedView = -2;

class TransformCache {
 public:
  explicit TransformCache(int k) : k_(k) {}

  ViewId get(ViewId id, Colour c) const {
    const std::size_t slot = index(id, c);
    return slot < entries_.size() ? entries_[slot] : kUncachedView;
  }

  void put(ViewId id, Colour c, ViewId value) {
    const std::size_t slot = index(id, c);
    if (slot >= entries_.size()) entries_.resize(slot + 1, kUncachedView);
    entries_[slot] = value;
  }

  std::size_t resident_bytes() const noexcept { return entries_.size() * sizeof(ViewId); }

 private:
  std::size_t index(ViewId id, Colour c) const {
    return static_cast<std::size_t>(id) * static_cast<std::size_t>(k_) +
           static_cast<std::size_t>(c - 1);
  }

  int k_;
  std::vector<ViewId> entries_;
};

}  // namespace dmm::colsys
