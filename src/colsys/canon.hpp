// Hash-consed canonical forms for rooted coloured trees.
//
// Everything on the lower-bound side of the library (the Remark-2 view
// catalogues, the compatible-pair index, the §3 adversary's evaluator memo)
// keys work on the canonical byte serialisation of some rooted tree.  The
// seed implementation re-serialised and copied those byte vectors at every
// lookup; a CanonicalStore interns each distinct serialisation exactly once
// and hands out a dense ViewId, so equality of trees becomes equality of
// 32-bit integers and memo tables become flat vectors indexed by id.
//
// A TransformCache is the companion structure for the root surgeries the
// neighbourhood pipeline performs per (view, colour) — "the subtree across
// the root's c-edge" and "the view minus its c-branch" — expressed as
// dense (ViewId, Colour) → ViewId maps instead of repeated
// rerooted/pruned/restricted tree copies.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "colsys/colour_system.hpp"

namespace dmm::colsys {

/// Dense id of an interned canonical serialisation.  Ids are assigned in
/// interning order starting at 0, so stores whose interning order mirrors a
/// catalogue's view order have ViewId == view index.
using ViewId = std::int32_t;

inline constexpr ViewId kNullView = -1;

class CanonicalStore {
 public:
  /// Interns `bytes`, returning the existing id when the serialisation has
  /// been seen before (the bytes are copied only on first sight).
  ViewId intern(const std::vector<std::uint8_t>& bytes);

  /// Serialises view[radius] into an internal scratch buffer and interns it.
  ViewId intern(const ColourSystem& view, int radius);

  /// Id of a previously interned serialisation, or kNullView.
  ViewId find(const std::vector<std::uint8_t>& bytes) const;

  /// The interned bytes of an id (valid for the store's lifetime).
  const std::vector<std::uint8_t>& bytes(ViewId id) const;

  std::int32_t size() const noexcept { return static_cast<std::int32_t>(keys_.size()); }

  /// Approximate heap footprint: interned key bytes plus index/bucket
  /// overhead.  Reported by AdversaryStats so memo growth is observable.
  std::size_t resident_bytes() const noexcept;

 private:
  struct BytesHash {
    std::size_t operator()(const std::vector<std::uint8_t>& bytes) const noexcept;
  };

  // Keys live in the node-based map; keys_ holds stable pointers to them in
  // id order, so each serialisation is stored exactly once.
  std::unordered_map<std::vector<std::uint8_t>, ViewId, BytesHash> index_;
  std::vector<const std::vector<std::uint8_t>*> keys_;
  std::size_t key_bytes_ = 0;
  std::vector<std::uint8_t> scratch_;
};

/// Dense (ViewId, Colour) → ViewId memo for per-colour root transforms.
/// Entries default to kUncachedView; kNullView is a legal cached value
/// (meaning "the transform does not exist for this colour").
inline constexpr ViewId kUncachedView = -2;

class TransformCache {
 public:
  explicit TransformCache(int k) : k_(k) {}

  ViewId get(ViewId id, Colour c) const {
    const std::size_t slot = index(id, c);
    return slot < entries_.size() ? entries_[slot] : kUncachedView;
  }

  void put(ViewId id, Colour c, ViewId value) {
    const std::size_t slot = index(id, c);
    if (slot >= entries_.size()) entries_.resize(slot + 1, kUncachedView);
    entries_[slot] = value;
  }

  std::size_t resident_bytes() const noexcept { return entries_.size() * sizeof(ViewId); }

 private:
  std::size_t index(ViewId id, Colour c) const {
    return static_cast<std::size_t>(id) * static_cast<std::size_t>(k_) +
           static_cast<std::size_t>(c - 1);
  }

  int k_;
  std::vector<ViewId> entries_;
};

}  // namespace dmm::colsys
