#include "colsys/canon.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmm::colsys {

// ---------------------------------------------------------------------------
// Colour permutations.
// ---------------------------------------------------------------------------

namespace {

void require_orbit_k(int k, const char* what) {
  if (k < 1 || k > kMaxOrbitColours) {
    throw std::invalid_argument(std::string(what) + ": orbit machinery needs 1 <= k <= " +
                                std::to_string(kMaxOrbitColours));
  }
}

}  // namespace

ColourPerm identity_perm(int k) {
  ColourPerm p(static_cast<std::size_t>(k) + 1);
  for (int c = 0; c <= k; ++c) p[static_cast<std::size_t>(c)] = static_cast<Colour>(c);
  return p;
}

ColourPerm compose_perm(const ColourPerm& a, const ColourPerm& b) {
  if (a.size() != b.size()) throw std::invalid_argument("compose_perm: mismatched k");
  ColourPerm out(a.size());
  out[0] = gk::kNoColour;
  for (std::size_t c = 1; c < b.size(); ++c) out[c] = a[b[c]];
  return out;
}

ColourPerm inverse_perm(const ColourPerm& p) {
  ColourPerm out(p.size());
  out[0] = gk::kNoColour;
  for (std::size_t c = 1; c < p.size(); ++c) out[p[c]] = static_cast<Colour>(c);
  return out;
}

std::vector<ColourPerm> all_perms(int k) {
  require_orbit_k(k, "all_perms");
  std::vector<Colour> images;
  for (Colour c = 1; c <= k; ++c) images.push_back(c);
  std::vector<ColourPerm> out;
  do {
    ColourPerm p(static_cast<std::size_t>(k) + 1, gk::kNoColour);
    for (int c = 1; c <= k; ++c) p[static_cast<std::size_t>(c)] = images[static_cast<std::size_t>(c - 1)];
    out.push_back(std::move(p));
  } while (std::next_permutation(images.begin(), images.end()));
  return out;
}

std::uint32_t perm_rank(const ColourPerm& p) {
  // Lehmer code over the images p[1..k].
  const int k = static_cast<int>(p.size()) - 1;
  std::uint32_t rank = 0;
  for (int i = 1; i <= k; ++i) {
    std::uint32_t smaller = 0;
    for (int j = i + 1; j <= k; ++j) {
      if (p[static_cast<std::size_t>(j)] < p[static_cast<std::size_t>(i)]) ++smaller;
    }
    rank = rank * static_cast<std::uint32_t>(k - i + 1) + smaller;
  }
  return rank;
}

ColourPerm min_coset_rep(const ColourPerm& sigma, const std::vector<ColourPerm>& stab) {
  if (stab.empty()) throw std::invalid_argument("min_coset_rep: empty stabiliser");
  // Lexicographic order on the image sequence == Lehmer-rank order, and
  // comparing ranks keeps this integer-only on the pair-index hot path.
  ColourPerm best = compose_perm(sigma, stab.front());
  std::uint32_t best_rank = perm_rank(best);
  for (std::size_t i = 1; i < stab.size(); ++i) {
    ColourPerm candidate = compose_perm(sigma, stab[i]);
    const std::uint32_t rank = perm_rank(candidate);
    if (rank < best_rank) {
      best = std::move(candidate);
      best_rank = rank;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// SerialisedView.
// ---------------------------------------------------------------------------

SerialisedView::SerialisedView(const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) throw std::invalid_argument("SerialisedView: empty buffer");
  k_ = bytes[0];
  if (k_ < 1) throw std::invalid_argument("SerialisedView: bad k byte");
  // The format is prefix-free per node: [count][colours...][subtrees...] or
  // the 0xff truncation marker.  Parse it with an explicit stack whose
  // entries are node indices waiting for their subtrees.
  std::size_t pos = 1;
  struct Pending {
    std::int32_t node;
    std::int32_t remaining;  // children still to parse
  };
  std::vector<Pending> stack;
  // Parse one node, attach it under `parent` (or as the root).
  const auto parse_node = [&]() {
    if (pos >= bytes.size()) throw std::invalid_argument("SerialisedView: truncated buffer");
    const std::uint8_t head = bytes[pos++];
    const std::int32_t node = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back({});
    if (head == 0xff) {
      nodes_[static_cast<std::size_t>(node)].truncated = true;
      return node;
    }
    const int count = head;
    nodes_[static_cast<std::size_t>(node)].first_child =
        static_cast<std::int32_t>(child_colours_.size());
    nodes_[static_cast<std::size_t>(node)].child_count = count;
    if (pos + static_cast<std::size_t>(count) > bytes.size()) {
      throw std::invalid_argument("SerialisedView: truncated colour list");
    }
    for (int i = 0; i < count; ++i) {
      const Colour c = bytes[pos++];
      if (c < 1 || c > k_) throw std::invalid_argument("SerialisedView: colour out of range");
      child_colours_.push_back(c);
      child_nodes_.push_back(0);  // filled as the subtrees parse
    }
    if (count > 0) stack.push_back({node, count});
    return node;
  };
  parse_node();  // the root
  while (!stack.empty()) {
    Pending& top = stack.back();
    const std::int32_t parent = top.node;
    const std::int32_t slot =
        nodes_[static_cast<std::size_t>(parent)].child_count - top.remaining;
    if (--top.remaining == 0) stack.pop_back();  // invalidates `top`
    const std::int32_t child = parse_node();
    child_nodes_[static_cast<std::size_t>(
        nodes_[static_cast<std::size_t>(parent)].first_child + slot)] = child;
  }
  if (pos != bytes.size()) throw std::invalid_argument("SerialisedView: trailing bytes");
}

SerialisedView::SerialisedView(const ColourSystem& view, int radius)
    : SerialisedView(view.serialize(radius)) {}

void SerialisedView::serialise(const ColourPerm& pi, std::vector<std::uint8_t>& out) const {
  if (static_cast<int>(pi.size()) != k_ + 1) {
    throw std::invalid_argument("SerialisedView::serialise: permutation has wrong k");
  }
  out.push_back(static_cast<std::uint8_t>(k_));
  std::vector<std::int32_t> stack{0};
  // Scratch for the per-node (image colour, child) sort; degree ≤ k.
  std::vector<std::pair<Colour, std::int32_t>> order;
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (node.truncated) {
      out.push_back(0xff);
      continue;
    }
    out.push_back(static_cast<std::uint8_t>(node.child_count));
    order.clear();
    for (std::int32_t i = 0; i < node.child_count; ++i) {
      const std::size_t slot = static_cast<std::size_t>(node.first_child + i);
      order.emplace_back(pi[child_colours_[slot]], child_nodes_[slot]);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [c, child] : order) out.push_back(c);
    for (auto it = order.rbegin(); it != order.rend(); ++it) stack.push_back(it->second);
  }
}

std::vector<ColourPerm> SerialisedView::stabiliser() const {
  std::vector<std::uint8_t> reference;
  serialise(identity_perm(k_), reference);
  std::vector<ColourPerm> out;
  std::vector<std::uint8_t> buf;
  for (ColourPerm& pi : all_perms(k_)) {
    buf.clear();
    serialise(pi, buf);
    if (buf == reference) out.push_back(std::move(pi));
  }
  return out;
}

/// Branch-and-bound minimisation state.  The emission mirrors serialise():
/// a DFS over the parsed tree, children visited in ascending image order.
/// Colour images are assigned lazily: the first node whose child colours
/// include unassigned ones forces their image *set* (the smallest unused
/// values — any other set emits a lexicographically larger sorted list at
/// that very node), and only the assignment *within* the set branches.
/// Every emitted byte is compared against the incumbent best; a byte above
/// the incumbent prunes the whole assignment subtree.
struct SerialisedView::Canon {
  const SerialisedView& t;
  int k;
  std::vector<std::uint8_t> cur;
  std::vector<std::uint8_t> best;
  bool have_best = false;
  std::uint64_t best_generation = 0;
  ColourPerm best_perm;
  ColourPerm perm;              // colour → image, kNoColour = unassigned
  std::vector<char> value_used;  // image → taken
  // 0: cur is byte-equal to best's prefix; 1: cur is already strictly
  // smaller (no more comparisons needed on this branch).
  int state = 0;

  explicit Canon(const SerialisedView& view)
      : t(view),
        k(view.k()),
        perm(static_cast<std::size_t>(view.k()) + 1, gk::kNoColour),
        value_used(static_cast<std::size_t>(view.k()) + 1, 0) {}

  bool emit(std::uint8_t b) {
    if (have_best && state == 0) {
      const std::uint8_t incumbent = best[cur.size()];
      if (b > incumbent) return false;
      if (b < incumbent) state = 1;
    }
    cur.push_back(b);
    return true;
  }

  void run() {
    if (!emit(static_cast<std::uint8_t>(k))) return;  // never prunes (no best yet)
    step({0});
    // Complete the witness over colours that never appear in the tree:
    // unused images to unassigned colours, both ascending (deterministic,
    // and irrelevant to the bytes).
    std::vector<char> taken(static_cast<std::size_t>(k) + 1, 0);
    for (int c = 1; c <= k; ++c) taken[best_perm[static_cast<std::size_t>(c)]] = 1;
    Colour next = 1;
    for (int c = 1; c <= k; ++c) {
      if (best_perm[static_cast<std::size_t>(c)] != gk::kNoColour) continue;
      while (taken[next]) ++next;
      best_perm[static_cast<std::size_t>(c)] = next;
      taken[next] = 1;
    }
  }

  /// Processes the pending DFS stack (top = next node) to completion or
  /// prune.  Branching copies the stack so each assignment explores the
  /// full remaining traversal.
  void step(std::vector<std::int32_t> stack) {
    std::vector<std::pair<Colour, std::int32_t>> order;
    while (!stack.empty()) {
      const Node& node = t.nodes_[static_cast<std::size_t>(stack.back())];
      stack.pop_back();
      if (node.truncated) {
        if (!emit(0xff)) return;
        continue;
      }
      if (!emit(static_cast<std::uint8_t>(node.child_count))) return;
      // Partition this node's child colours into assigned and unassigned.
      std::vector<Colour> unassigned;
      for (std::int32_t i = 0; i < node.child_count; ++i) {
        const Colour c =
            t.child_colours_[static_cast<std::size_t>(node.first_child + i)];
        if (perm[c] == gk::kNoColour) unassigned.push_back(c);
      }
      if (unassigned.empty()) {
        order.clear();
        for (std::int32_t i = 0; i < node.child_count; ++i) {
          const std::size_t slot = static_cast<std::size_t>(node.first_child + i);
          order.emplace_back(perm[t.child_colours_[slot]], t.child_nodes_[slot]);
        }
        std::sort(order.begin(), order.end());
        bool pruned = false;
        for (const auto& [c, child] : order) {
          if (!emit(c)) {
            pruned = true;
            break;
          }
        }
        if (pruned) return;
        for (auto it = order.rbegin(); it != order.rend(); ++it) stack.push_back(it->second);
        continue;
      }
      // Branch point.  The image set is forced: the smallest unused values.
      std::sort(unassigned.begin(), unassigned.end());
      std::vector<Colour> images;
      for (Colour v = 1; static_cast<int>(v) <= k &&
                         images.size() < unassigned.size(); ++v) {
        if (!value_used[v]) images.push_back(v);
      }
      const std::size_t saved_len = cur.size();
      const int saved_state = state;
      const std::uint64_t saved_generation = best_generation;
      do {
        for (std::size_t i = 0; i < unassigned.size(); ++i) {
          perm[unassigned[i]] = images[i];
          value_used[images[i]] = 1;
        }
        std::vector<std::int32_t> continuation = stack;
        // Re-enter this node with its colours now assigned: emission falls
        // into the unassigned.empty() path above.  The count byte is
        // already out, so hand step() a tree position just past it — done
        // by emitting the colour list here and pushing the children.
        order.clear();
        for (std::int32_t i = 0; i < node.child_count; ++i) {
          const std::size_t slot = static_cast<std::size_t>(node.first_child + i);
          order.emplace_back(perm[t.child_colours_[slot]], t.child_nodes_[slot]);
        }
        std::sort(order.begin(), order.end());
        bool pruned = false;
        for (const auto& [c, child] : order) {
          if (!emit(c)) {
            pruned = true;
            break;
          }
        }
        if (!pruned) {
          for (auto it = order.rbegin(); it != order.rend(); ++it) {
            continuation.push_back(it->second);
          }
          step(std::move(continuation));
        }
        // Restore the emission state for the next assignment.
        cur.resize(saved_len);
        state = best_generation == saved_generation ? saved_state : 0;
        for (std::size_t i = 0; i < unassigned.size(); ++i) {
          perm[unassigned[i]] = gk::kNoColour;
          value_used[images[i]] = 0;
        }
      } while (std::next_permutation(images.begin(), images.end()));
      return;  // every continuation ran inside the loop
    }
    // Complete serialisation.  state == 0 with a best means byte-equal:
    // keep the earlier witness.
    if (!have_best || state == 1) {
      best = cur;
      best_perm = perm;
      have_best = true;
      ++best_generation;
      state = 0;  // cur now equals best's prefix by definition
    }
  }
};

void SerialisedView::canonicalise(std::vector<std::uint8_t>& out, ColourPerm* witness) const {
  require_orbit_k(k_, "SerialisedView::canonicalise");
  Canon canon(*this);
  canon.run();
  out.insert(out.end(), canon.best.begin(), canon.best.end());
  if (witness) *witness = std::move(canon.best_perm);
}

void orbit_canonical_bytes(const ColourSystem& view, int radius, std::vector<std::uint8_t>& out,
                           ColourPerm* witness) {
  SerialisedView(view, radius).canonicalise(out, witness);
}

std::vector<ColourPerm> serialisation_stabiliser(const std::vector<std::uint8_t>& bytes) {
  return SerialisedView(bytes).stabiliser();
}

// ---------------------------------------------------------------------------
// CanonicalStore.
// ---------------------------------------------------------------------------

ViewId CanonicalStore::intern(const std::vector<std::uint8_t>& bytes) {
  const auto [it, inserted] = index_.try_emplace(bytes, static_cast<ViewId>(keys_.size()));
  if (inserted) {
    keys_.push_back(&it->first);
    key_bytes_ += bytes.size();
  }
  return it->second;
}

ViewId CanonicalStore::intern(const ColourSystem& view, int radius) {
  scratch_.clear();
  view.serialize_into(radius, scratch_);
  return intern(scratch_);
}

OrbitId CanonicalStore::intern_orbit(const ColourSystem& view, int radius, ColourPerm* witness) {
  orbit_scratch_.clear();
  orbit_canonical_bytes(view, radius, orbit_scratch_, witness);
  return intern_orbit_canonical(orbit_scratch_);
}

OrbitId CanonicalStore::intern_orbit_canonical(const std::vector<std::uint8_t>& canonical_bytes) {
  const auto [it, inserted] =
      orbit_index_.try_emplace(canonical_bytes, static_cast<OrbitId>(orbit_keys_.size()));
  if (inserted) {
    orbit_keys_.push_back(&it->first);
    key_bytes_ += canonical_bytes.size();
  }
  return it->second;
}

const std::vector<std::uint8_t>& CanonicalStore::orbit_bytes(OrbitId id) const {
  if (id < 0 || id >= orbit_count()) {
    throw std::out_of_range("CanonicalStore::orbit_bytes: bad id");
  }
  return *orbit_keys_[static_cast<std::size_t>(id)];
}

ViewId CanonicalStore::find(const std::vector<std::uint8_t>& bytes) const {
  const auto it = index_.find(bytes);
  return it == index_.end() ? kNullView : it->second;
}

const std::vector<std::uint8_t>& CanonicalStore::bytes(ViewId id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("CanonicalStore::bytes: bad id");
  return *keys_[static_cast<std::size_t>(id)];
}

std::size_t CanonicalStore::resident_bytes() const noexcept {
  // Keys + per-node map overhead (key vector header, id, next pointer) +
  // bucket array + the id→key pointer table.  An estimate, not an audit.
  constexpr std::size_t kNodeOverhead =
      sizeof(std::vector<std::uint8_t>) + sizeof(ViewId) + 2 * sizeof(void*);
  return key_bytes_ + (keys_.size() + orbit_keys_.size()) * (kNodeOverhead + sizeof(void*)) +
         (index_.bucket_count() + orbit_index_.bucket_count()) * sizeof(void*);
}

}  // namespace dmm::colsys
