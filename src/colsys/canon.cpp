#include "colsys/canon.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmm::colsys {

// ---------------------------------------------------------------------------
// Colour permutations.
// ---------------------------------------------------------------------------

namespace {

void require_orbit_k(int k, const char* what) {
  if (k < 1 || k > kMaxOrbitColours) {
    throw std::invalid_argument(std::string(what) + ": orbit machinery needs 1 <= k <= " +
                                std::to_string(kMaxOrbitColours));
  }
}

}  // namespace

ColourPerm identity_perm(int k) {
  ColourPerm p(static_cast<std::size_t>(k) + 1);
  for (int c = 0; c <= k; ++c) p[static_cast<std::size_t>(c)] = static_cast<Colour>(c);
  return p;
}

ColourPerm compose_perm(const ColourPerm& a, const ColourPerm& b) {
  if (a.size() != b.size()) throw std::invalid_argument("compose_perm: mismatched k");
  ColourPerm out(a.size());
  out[0] = gk::kNoColour;
  for (std::size_t c = 1; c < b.size(); ++c) out[c] = a[b[c]];
  return out;
}

ColourPerm inverse_perm(const ColourPerm& p) {
  ColourPerm out(p.size());
  out[0] = gk::kNoColour;
  for (std::size_t c = 1; c < p.size(); ++c) out[p[c]] = static_cast<Colour>(c);
  return out;
}

std::vector<ColourPerm> all_perms(int k) {
  require_orbit_k(k, "all_perms");
  std::vector<Colour> images;
  for (Colour c = 1; c <= k; ++c) images.push_back(c);
  std::vector<ColourPerm> out;
  do {
    ColourPerm p(static_cast<std::size_t>(k) + 1, gk::kNoColour);
    for (int c = 1; c <= k; ++c) p[static_cast<std::size_t>(c)] = images[static_cast<std::size_t>(c - 1)];
    out.push_back(std::move(p));
  } while (std::next_permutation(images.begin(), images.end()));
  return out;
}

std::uint32_t perm_rank(const ColourPerm& p) {
  // Lehmer code over the images p[1..k].
  const int k = static_cast<int>(p.size()) - 1;
  std::uint32_t rank = 0;
  for (int i = 1; i <= k; ++i) {
    std::uint32_t smaller = 0;
    for (int j = i + 1; j <= k; ++j) {
      if (p[static_cast<std::size_t>(j)] < p[static_cast<std::size_t>(i)]) ++smaller;
    }
    rank = rank * static_cast<std::uint32_t>(k - i + 1) + smaller;
  }
  return rank;
}

ColourPerm min_coset_rep(const ColourPerm& sigma, const std::vector<ColourPerm>& stab) {
  if (stab.empty()) throw std::invalid_argument("min_coset_rep: empty stabiliser");
  // Lexicographic order on the image sequence == Lehmer-rank order, and
  // comparing ranks keeps this integer-only on the pair-index hot path.
  ColourPerm best = compose_perm(sigma, stab.front());
  std::uint32_t best_rank = perm_rank(best);
  for (std::size_t i = 1; i < stab.size(); ++i) {
    ColourPerm candidate = compose_perm(sigma, stab[i]);
    const std::uint32_t rank = perm_rank(candidate);
    if (rank < best_rank) {
      best = std::move(candidate);
      best_rank = rank;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// SerialisedView.
// ---------------------------------------------------------------------------

SerialisedView::SerialisedView(const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) throw std::invalid_argument("SerialisedView: empty buffer");
  k_ = bytes[0];
  if (k_ < 1) throw std::invalid_argument("SerialisedView: bad k byte");
  // The format is prefix-free per node: [count][colours...][subtrees...] or
  // the 0xff truncation marker.  Parse it with an explicit stack whose
  // entries are node indices waiting for their subtrees.
  std::size_t pos = 1;
  struct Pending {
    std::int32_t node;
    std::int32_t remaining;  // children still to parse
  };
  std::vector<Pending> stack;
  // Parse one node, attach it under `parent` (or as the root).
  const auto parse_node = [&]() {
    if (pos >= bytes.size()) throw std::invalid_argument("SerialisedView: truncated buffer");
    const std::uint8_t head = bytes[pos++];
    const std::int32_t node = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back({});
    if (head == 0xff) {
      nodes_[static_cast<std::size_t>(node)].truncated = true;
      return node;
    }
    const int count = head;
    internal_order_.push_back(node);  // parse order is preorder
    nodes_[static_cast<std::size_t>(node)].first_child =
        static_cast<std::int32_t>(child_colours_.size());
    nodes_[static_cast<std::size_t>(node)].child_count = count;
    if (pos + static_cast<std::size_t>(count) > bytes.size()) {
      throw std::invalid_argument("SerialisedView: truncated colour list");
    }
    for (int i = 0; i < count; ++i) {
      const Colour c = bytes[pos++];
      if (c < 1 || c > k_) throw std::invalid_argument("SerialisedView: colour out of range");
      child_colours_.push_back(c);
      child_nodes_.push_back(0);  // filled as the subtrees parse
    }
    if (count > 0) stack.push_back({node, count});
    return node;
  };
  parse_node();  // the root
  while (!stack.empty()) {
    Pending& top = stack.back();
    const std::int32_t parent = top.node;
    const std::int32_t slot =
        nodes_[static_cast<std::size_t>(parent)].child_count - top.remaining;
    if (--top.remaining == 0) stack.pop_back();  // invalidates `top`
    const std::int32_t child = parse_node();
    child_nodes_[static_cast<std::size_t>(
        nodes_[static_cast<std::size_t>(parent)].first_child + slot)] = child;
  }
  if (pos != bytes.size()) throw std::invalid_argument("SerialisedView: trailing bytes");
  assigned_ = static_cast<std::int32_t>(internal_order_.size());
}

SerialisedView::SerialisedView(const ColourSystem& view, int radius)
    : SerialisedView(view.serialize(radius)) {}

SerialisedView::SerialisedView(int k, int d, int rho) : k_(k), skeleton_(true) {
  if (d < 1 || d > k) throw std::invalid_argument("SerialisedView skeleton: need 1 <= d <= k");
  if (rho < 1) throw std::invalid_argument("SerialisedView skeleton: need rho >= 1");
  // Preorder build: allocate a node's child slots before recursing so slots
  // stay contiguous (the parser's layout), then fill child_nodes_ as the
  // subtrees are created.  Child colours stay 0 (= unassigned).
  const auto build = [&](auto&& self, int depth) -> std::int32_t {
    const std::int32_t node = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back({});
    if (depth == rho) {
      nodes_[static_cast<std::size_t>(node)].truncated = true;
      return node;
    }
    internal_order_.push_back(node);
    const int count = depth == 0 ? d : d - 1;
    nodes_[static_cast<std::size_t>(node)].first_child =
        static_cast<std::int32_t>(child_colours_.size());
    nodes_[static_cast<std::size_t>(node)].child_count = count;
    child_colours_.resize(child_colours_.size() + static_cast<std::size_t>(count), gk::kNoColour);
    child_nodes_.resize(child_nodes_.size() + static_cast<std::size_t>(count), 0);
    const std::int32_t first = nodes_[static_cast<std::size_t>(node)].first_child;
    for (int i = 0; i < count; ++i) {
      child_nodes_[static_cast<std::size_t>(first + i)] = self(self, depth + 1);
    }
    return node;
  };
  build(build, 0);
  prefix_.push_back(static_cast<std::uint8_t>(k_));
}

void SerialisedView::push_assignment(const Colour* colours) {
  if (!skeleton_) throw std::logic_error("push_assignment: not a skeleton view");
  if (assigned_ >= static_cast<std::int32_t>(internal_order_.size())) {
    throw std::logic_error("push_assignment: every internal node is already assigned");
  }
  const std::int32_t node = internal_order_[static_cast<std::size_t>(assigned_)];
  const Node& nd = nodes_[static_cast<std::size_t>(node)];
  prefix_marks_.push_back(prefix_.size());
  prefix_.push_back(static_cast<std::uint8_t>(nd.child_count));
  for (std::int32_t i = 0; i < nd.child_count; ++i) {
    const Colour c = colours[i];
    if (c < 1 || c > k_ || (i > 0 && colours[i - 1] >= c)) {
      prefix_.resize(prefix_marks_.back());
      prefix_marks_.pop_back();
      throw std::invalid_argument("push_assignment: colours must be ascending in [1, k]");
    }
    child_colours_[static_cast<std::size_t>(nd.first_child + i)] = c;
    prefix_.push_back(static_cast<std::uint8_t>(c));
  }
  ++assigned_;
  // Segments appear in node-index order, so the prefix extends through any
  // truncated nodes sitting between this internal node and the next one.
  const std::int32_t stop = assigned_ < static_cast<std::int32_t>(internal_order_.size())
                                ? internal_order_[static_cast<std::size_t>(assigned_)]
                                : node_count();
  for (std::int32_t j = node + 1; j < stop; ++j) prefix_.push_back(0xff);
}

void SerialisedView::pop_assignment() {
  if (prefix_marks_.empty()) throw std::logic_error("pop_assignment: nothing to pop");
  prefix_.resize(prefix_marks_.back());
  prefix_marks_.pop_back();
  --assigned_;
}

const std::vector<std::uint8_t>& SerialisedView::reference_bytes(
    std::vector<std::uint8_t>& local) const {
  if (skeleton_) return prefix_;
  serialise(identity_perm(k_), local);
  return local;
}

void SerialisedView::serialise(const ColourPerm& pi, std::vector<std::uint8_t>& out) const {
  if (static_cast<int>(pi.size()) != k_ + 1) {
    throw std::invalid_argument("SerialisedView::serialise: permutation has wrong k");
  }
  out.push_back(static_cast<std::uint8_t>(k_));
  std::vector<std::int32_t> stack{0};
  // Scratch for the per-node (image colour, child) sort; degree ≤ k.
  std::vector<std::pair<Colour, std::int32_t>> order;
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (node.truncated) {
      out.push_back(0xff);
      continue;
    }
    out.push_back(static_cast<std::uint8_t>(node.child_count));
    order.clear();
    for (std::int32_t i = 0; i < node.child_count; ++i) {
      const std::size_t slot = static_cast<std::size_t>(node.first_child + i);
      order.emplace_back(pi[child_colours_[slot]], child_nodes_[slot]);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [c, child] : order) out.push_back(c);
    for (auto it = order.rbegin(); it != order.rend(); ++it) stack.push_back(it->second);
  }
}

/// Shared walk behind stabiliser() and prefix_rejects(): a DFS over the
/// tree in π-image order with lazy colour-image assignment, compared byte
/// by byte against the identity serialisation (`ref`).  Every live branch
/// is byte-equal to ref so far, which keeps the state machine simpler than
/// Canon's incumbent tracking:
///
///   - reject mode hunts for a *certificate*: a branch whose next byte is
///     strictly below ref while everything before matched.  Such a π beats
///     the identity on bytes the assignment already determines, so no
///     completion of the prefix can be canonical.  At a branch node the
///     free colour images are forced to the smallest unused values (the
///     lex-min composite list); if even that list exceeds ref the branch is
///     dead, if it ties it is the unique tying image set, and if it drops
///     below ref it is the certificate.
///   - tie mode (stabiliser) keeps only branches that stay byte-equal, so
///     the free image multiset is dictated by ref itself — the walker reads
///     the required images straight out of the reference segment.
///
/// A branch that reaches a node whose colours are not yet assigned (or
/// runs past the known prefix) is indeterminate and certifies nothing.
/// Branches that walk the whole tree byte-equal are stabiliser elements;
/// their free (never-emitted) colours extend to every bijection on the
/// unused values.
struct SerialisedView::PrefixWalk {
  const SerialisedView& t;
  const std::vector<std::uint8_t>& ref;
  std::int32_t unknown_from;  // non-truncated nodes >= this have unassigned colours
  bool reject_mode;
  std::vector<ColourPerm>* ties;
  int k;
  ColourPerm perm;               // colour → image, kNoColour = unassigned
  std::vector<char> value_used;  // image → taken
  std::size_t pos = 1;           // ref[0] is the shared k byte
  bool smaller = false;          // reject mode: certificate found

  PrefixWalk(const SerialisedView& view, const std::vector<std::uint8_t>& reference,
             std::int32_t unknown, bool reject, std::vector<ColourPerm>* tie_sink)
      : t(view),
        ref(reference),
        unknown_from(unknown),
        reject_mode(reject),
        ties(tie_sink),
        k(view.k()),
        perm(static_cast<std::size_t>(view.k()) + 1, gk::kNoColour),
        value_used(static_cast<std::size_t>(view.k()) + 1, 0) {}

  bool emit(std::uint8_t b) {
    if (pos >= ref.size()) return false;  // past the determined prefix: indeterminate
    const std::uint8_t r = ref[pos];
    if (b != r) {
      if (reject_mode && b < r) smaller = true;
      return false;
    }
    ++pos;
    return true;
  }

  void run() { step({0}); }

  void step(std::vector<std::int32_t> stack) {
    std::vector<std::pair<Colour, std::int32_t>> order;
    while (!stack.empty()) {
      const Node& node = t.nodes_[static_cast<std::size_t>(stack.back())];
      const std::int32_t idx = stack.back();
      stack.pop_back();
      if (node.truncated) {
        if (!emit(0xff)) return;
        continue;
      }
      if (idx >= unknown_from) return;  // unassigned colours: indeterminate
      if (!emit(static_cast<std::uint8_t>(node.child_count))) return;
      std::vector<Colour> unassigned;
      for (std::int32_t i = 0; i < node.child_count; ++i) {
        const Colour c = t.child_colours_[static_cast<std::size_t>(node.first_child + i)];
        if (perm[c] == gk::kNoColour) unassigned.push_back(c);
      }
      if (unassigned.empty()) {
        order.clear();
        for (std::int32_t i = 0; i < node.child_count; ++i) {
          const std::size_t slot = static_cast<std::size_t>(node.first_child + i);
          order.emplace_back(perm[t.child_colours_[slot]], t.child_nodes_[slot]);
        }
        std::sort(order.begin(), order.end());
        for (const auto& [c, child] : order) {
          if (!emit(c)) return;
        }
        for (auto it = order.rbegin(); it != order.rend(); ++it) stack.push_back(it->second);
        continue;
      }
      // Branch point: pick the free image set, then try every matching.
      std::sort(unassigned.begin(), unassigned.end());
      std::vector<Colour> images;
      if (reject_mode) {
        // The smallest unused values give the lex-min composite list; see
        // the struct comment for why this loses no certificate and no tie.
        for (Colour v = 1; static_cast<int>(v) <= k && images.size() < unassigned.size(); ++v) {
          if (!value_used[v]) images.push_back(v);
        }
      } else {
        // Tie mode: the required composite multiset is ref's own segment;
        // subtract the fixed images, the remainder is the forced free set.
        if (pos + static_cast<std::size_t>(node.child_count) > ref.size()) return;
        std::vector<char> needed(static_cast<std::size_t>(k) + 1, 0);
        for (std::int32_t i = 0; i < node.child_count; ++i) {
          const std::uint8_t v = ref[pos + static_cast<std::size_t>(i)];
          if (v < 1 || v > static_cast<std::uint8_t>(k)) return;
          ++needed[v];
        }
        for (std::int32_t i = 0; i < node.child_count; ++i) {
          const Colour c = t.child_colours_[static_cast<std::size_t>(node.first_child + i)];
          if (perm[c] == gk::kNoColour) continue;
          if (needed[perm[c]] == 0) return;  // fixed image not in ref's segment
          --needed[perm[c]];
        }
        for (Colour v = 1; static_cast<int>(v) <= k; ++v) {
          if (needed[v] > 1 || (needed[v] == 1 && value_used[v])) return;
          if (needed[v] == 1) images.push_back(v);
        }
        if (images.size() != unassigned.size()) return;
      }
      const std::size_t saved_pos = pos;
      do {
        for (std::size_t i = 0; i < unassigned.size(); ++i) {
          perm[unassigned[i]] = images[i];
          value_used[images[i]] = 1;
        }
        order.clear();
        for (std::int32_t i = 0; i < node.child_count; ++i) {
          const std::size_t slot = static_cast<std::size_t>(node.first_child + i);
          order.emplace_back(perm[t.child_colours_[slot]], t.child_nodes_[slot]);
        }
        std::sort(order.begin(), order.end());
        bool dead = false;
        for (const auto& [c, child] : order) {
          if (!emit(c)) {
            dead = true;
            break;
          }
        }
        if (!dead) {
          std::vector<std::int32_t> continuation = stack;
          for (auto it = order.rbegin(); it != order.rend(); ++it) {
            continuation.push_back(it->second);
          }
          step(std::move(continuation));
        }
        pos = saved_pos;
        for (std::size_t i = 0; i < unassigned.size(); ++i) {
          perm[unassigned[i]] = gk::kNoColour;
          value_used[images[i]] = 0;
        }
        if (smaller) return;  // a certificate aborts the whole search
      } while (std::next_permutation(images.begin(), images.end()));
      return;  // every continuation ran inside the loop
    }
    // Whole tree walked byte-equal: a tie.  (An unassigned node would have
    // aborted the branch, so reaching here means the view is fully
    // assigned and pos == ref.size().)  Colours that never appear in the
    // emitted bytes extend to every bijection onto the unused values.
    if (ties == nullptr) return;
    std::vector<Colour> free_cols, free_vals;
    for (Colour c = 1; static_cast<int>(c) <= k; ++c) {
      if (perm[c] == gk::kNoColour) free_cols.push_back(c);
    }
    for (Colour v = 1; static_cast<int>(v) <= k; ++v) {
      if (!value_used[v]) free_vals.push_back(v);
    }
    do {
      ColourPerm full = perm;
      for (std::size_t i = 0; i < free_cols.size(); ++i) full[free_cols[i]] = free_vals[i];
      ties->push_back(std::move(full));
    } while (std::next_permutation(free_vals.begin(), free_vals.end()));
  }
};

std::vector<ColourPerm> SerialisedView::stabiliser() const {
  require_orbit_k(k_, "SerialisedView::stabiliser");
  std::vector<std::uint8_t> local;
  std::vector<ColourPerm> out;
  PrefixWalk walk(*this, reference_bytes(local), node_count(), /*reject=*/false, &out);
  walk.run();
  std::sort(out.begin(), out.end(), [](const ColourPerm& a, const ColourPerm& b) {
    return perm_rank(a) < perm_rank(b);
  });
  return out;
}

bool SerialisedView::prefix_rejects(std::vector<ColourPerm>* stabiliser) const {
  require_orbit_k(k_, "SerialisedView::prefix_rejects");
  const bool complete = assigned_ == static_cast<std::int32_t>(internal_order_.size());
  if (stabiliser != nullptr && !complete) {
    throw std::invalid_argument("prefix_rejects: stabiliser needs a complete assignment");
  }
  std::vector<std::uint8_t> local;
  const std::int32_t unknown_from =
      complete ? node_count() : internal_order_[static_cast<std::size_t>(assigned_)];
  if (stabiliser != nullptr) stabiliser->clear();
  PrefixWalk walk(*this, reference_bytes(local), unknown_from, /*reject=*/true, stabiliser);
  walk.run();
  if (stabiliser != nullptr) {
    if (walk.smaller) {
      stabiliser->clear();  // a rejected view has no meaningful tie set
    } else {
      std::sort(stabiliser->begin(), stabiliser->end(),
                [](const ColourPerm& a, const ColourPerm& b) {
                  return perm_rank(a) < perm_rank(b);
                });
    }
  }
  return walk.smaller;
}

/// Branch-and-bound minimisation state.  The emission mirrors serialise():
/// a DFS over the parsed tree, children visited in ascending image order.
/// Colour images are assigned lazily: the first node whose child colours
/// include unassigned ones forces their image *set* (the smallest unused
/// values — any other set emits a lexicographically larger sorted list at
/// that very node), and only the assignment *within* the set branches.
/// Every emitted byte is compared against the incumbent best; a byte above
/// the incumbent prunes the whole assignment subtree.
struct SerialisedView::Canon {
  const SerialisedView& t;
  int k;
  std::vector<std::uint8_t> cur;
  std::vector<std::uint8_t> best;
  bool have_best = false;
  std::uint64_t best_generation = 0;
  ColourPerm best_perm;
  ColourPerm perm;              // colour → image, kNoColour = unassigned
  std::vector<char> value_used;  // image → taken
  // 0: cur is byte-equal to best's prefix; 1: cur is already strictly
  // smaller (no more comparisons needed on this branch).
  int state = 0;

  explicit Canon(const SerialisedView& view)
      : t(view),
        k(view.k()),
        perm(static_cast<std::size_t>(view.k()) + 1, gk::kNoColour),
        value_used(static_cast<std::size_t>(view.k()) + 1, 0) {}

  bool emit(std::uint8_t b) {
    if (have_best && state == 0) {
      const std::uint8_t incumbent = best[cur.size()];
      if (b > incumbent) return false;
      if (b < incumbent) state = 1;
    }
    cur.push_back(b);
    return true;
  }

  void run() {
    if (!emit(static_cast<std::uint8_t>(k))) return;  // never prunes (no best yet)
    step({0});
    // Complete the witness over colours that never appear in the tree:
    // unused images to unassigned colours, both ascending (deterministic,
    // and irrelevant to the bytes).
    std::vector<char> taken(static_cast<std::size_t>(k) + 1, 0);
    for (int c = 1; c <= k; ++c) taken[best_perm[static_cast<std::size_t>(c)]] = 1;
    Colour next = 1;
    for (int c = 1; c <= k; ++c) {
      if (best_perm[static_cast<std::size_t>(c)] != gk::kNoColour) continue;
      while (taken[next]) ++next;
      best_perm[static_cast<std::size_t>(c)] = next;
      taken[next] = 1;
    }
  }

  /// Processes the pending DFS stack (top = next node) to completion or
  /// prune.  Branching copies the stack so each assignment explores the
  /// full remaining traversal.
  void step(std::vector<std::int32_t> stack) {
    std::vector<std::pair<Colour, std::int32_t>> order;
    while (!stack.empty()) {
      const Node& node = t.nodes_[static_cast<std::size_t>(stack.back())];
      stack.pop_back();
      if (node.truncated) {
        if (!emit(0xff)) return;
        continue;
      }
      if (!emit(static_cast<std::uint8_t>(node.child_count))) return;
      // Partition this node's child colours into assigned and unassigned.
      std::vector<Colour> unassigned;
      for (std::int32_t i = 0; i < node.child_count; ++i) {
        const Colour c =
            t.child_colours_[static_cast<std::size_t>(node.first_child + i)];
        if (perm[c] == gk::kNoColour) unassigned.push_back(c);
      }
      if (unassigned.empty()) {
        order.clear();
        for (std::int32_t i = 0; i < node.child_count; ++i) {
          const std::size_t slot = static_cast<std::size_t>(node.first_child + i);
          order.emplace_back(perm[t.child_colours_[slot]], t.child_nodes_[slot]);
        }
        std::sort(order.begin(), order.end());
        bool pruned = false;
        for (const auto& [c, child] : order) {
          if (!emit(c)) {
            pruned = true;
            break;
          }
        }
        if (pruned) return;
        for (auto it = order.rbegin(); it != order.rend(); ++it) stack.push_back(it->second);
        continue;
      }
      // Branch point.  The image set is forced: the smallest unused values.
      std::sort(unassigned.begin(), unassigned.end());
      std::vector<Colour> images;
      for (Colour v = 1; static_cast<int>(v) <= k &&
                         images.size() < unassigned.size(); ++v) {
        if (!value_used[v]) images.push_back(v);
      }
      const std::size_t saved_len = cur.size();
      const int saved_state = state;
      const std::uint64_t saved_generation = best_generation;
      do {
        for (std::size_t i = 0; i < unassigned.size(); ++i) {
          perm[unassigned[i]] = images[i];
          value_used[images[i]] = 1;
        }
        std::vector<std::int32_t> continuation = stack;
        // Re-enter this node with its colours now assigned: emission falls
        // into the unassigned.empty() path above.  The count byte is
        // already out, so hand step() a tree position just past it — done
        // by emitting the colour list here and pushing the children.
        order.clear();
        for (std::int32_t i = 0; i < node.child_count; ++i) {
          const std::size_t slot = static_cast<std::size_t>(node.first_child + i);
          order.emplace_back(perm[t.child_colours_[slot]], t.child_nodes_[slot]);
        }
        std::sort(order.begin(), order.end());
        bool pruned = false;
        for (const auto& [c, child] : order) {
          if (!emit(c)) {
            pruned = true;
            break;
          }
        }
        if (!pruned) {
          for (auto it = order.rbegin(); it != order.rend(); ++it) {
            continuation.push_back(it->second);
          }
          step(std::move(continuation));
        }
        // Restore the emission state for the next assignment.
        cur.resize(saved_len);
        state = best_generation == saved_generation ? saved_state : 0;
        for (std::size_t i = 0; i < unassigned.size(); ++i) {
          perm[unassigned[i]] = gk::kNoColour;
          value_used[images[i]] = 0;
        }
      } while (std::next_permutation(images.begin(), images.end()));
      return;  // every continuation ran inside the loop
    }
    // Complete serialisation.  state == 0 with a best means byte-equal:
    // keep the earlier witness.
    if (!have_best || state == 1) {
      best = cur;
      best_perm = perm;
      have_best = true;
      ++best_generation;
      state = 0;  // cur now equals best's prefix by definition
    }
  }
};

void SerialisedView::canonicalise(std::vector<std::uint8_t>& out, ColourPerm* witness) const {
  require_orbit_k(k_, "SerialisedView::canonicalise");
  Canon canon(*this);
  canon.run();
  out.insert(out.end(), canon.best.begin(), canon.best.end());
  if (witness) *witness = std::move(canon.best_perm);
}

void orbit_canonical_bytes(const ColourSystem& view, int radius, std::vector<std::uint8_t>& out,
                           ColourPerm* witness) {
  SerialisedView(view, radius).canonicalise(out, witness);
}

std::vector<ColourPerm> serialisation_stabiliser(const std::vector<std::uint8_t>& bytes) {
  return SerialisedView(bytes).stabiliser();
}

// ---------------------------------------------------------------------------
// CanonicalStore.
// ---------------------------------------------------------------------------

ViewId CanonicalStore::intern(const std::vector<std::uint8_t>& bytes) {
  const auto [it, inserted] = index_.try_emplace(bytes, static_cast<ViewId>(keys_.size()));
  if (inserted) {
    keys_.push_back(&it->first);
    key_bytes_ += bytes.size();
  }
  return it->second;
}

ViewId CanonicalStore::intern(const ColourSystem& view, int radius) {
  scratch_.clear();
  view.serialize_into(radius, scratch_);
  return intern(scratch_);
}

OrbitId CanonicalStore::intern_orbit(const ColourSystem& view, int radius, ColourPerm* witness) {
  orbit_scratch_.clear();
  orbit_canonical_bytes(view, radius, orbit_scratch_, witness);
  return intern_orbit_canonical(orbit_scratch_);
}

OrbitId CanonicalStore::intern_orbit_canonical(const std::vector<std::uint8_t>& canonical_bytes) {
  const auto [it, inserted] =
      orbit_index_.try_emplace(canonical_bytes, static_cast<OrbitId>(orbit_keys_.size()));
  if (inserted) {
    orbit_keys_.push_back(&it->first);
    key_bytes_ += canonical_bytes.size();
  }
  return it->second;
}

const std::vector<std::uint8_t>& CanonicalStore::orbit_bytes(OrbitId id) const {
  if (id < 0 || id >= orbit_count()) {
    throw std::out_of_range("CanonicalStore::orbit_bytes: bad id");
  }
  return *orbit_keys_[static_cast<std::size_t>(id)];
}

ViewId CanonicalStore::find(const std::vector<std::uint8_t>& bytes) const {
  const auto it = index_.find(bytes);
  return it == index_.end() ? kNullView : it->second;
}

const std::vector<std::uint8_t>& CanonicalStore::bytes(ViewId id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("CanonicalStore::bytes: bad id");
  return *keys_[static_cast<std::size_t>(id)];
}

std::size_t CanonicalStore::resident_bytes() const noexcept {
  // Keys + per-node map overhead (key vector header, id, next pointer) +
  // bucket array + the id→key pointer table.  An estimate, not an audit.
  constexpr std::size_t kNodeOverhead =
      sizeof(std::vector<std::uint8_t>) + sizeof(ViewId) + 2 * sizeof(void*);
  return key_bytes_ + (keys_.size() + orbit_keys_.size()) * (kNodeOverhead + sizeof(void*)) +
         (index_.bucket_count() + orbit_index_.bucket_count()) * sizeof(void*);
}

}  // namespace dmm::colsys
