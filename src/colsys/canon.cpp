#include "colsys/canon.hpp"

#include <stdexcept>

namespace dmm::colsys {

std::size_t CanonicalStore::BytesHash::operator()(
    const std::vector<std::uint8_t>& bytes) const noexcept {
  // FNV-1a: the serialisations are short (tens to hundreds of bytes) and
  // already high-entropy, so a simple streaming hash beats fancier mixing.
  std::size_t h = 1469598103934665603ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

ViewId CanonicalStore::intern(const std::vector<std::uint8_t>& bytes) {
  const auto [it, inserted] = index_.try_emplace(bytes, static_cast<ViewId>(keys_.size()));
  if (inserted) {
    keys_.push_back(&it->first);
    key_bytes_ += bytes.size();
  }
  return it->second;
}

ViewId CanonicalStore::intern(const ColourSystem& view, int radius) {
  scratch_.clear();
  view.serialize_into(radius, scratch_);
  return intern(scratch_);
}

ViewId CanonicalStore::find(const std::vector<std::uint8_t>& bytes) const {
  const auto it = index_.find(bytes);
  return it == index_.end() ? kNullView : it->second;
}

const std::vector<std::uint8_t>& CanonicalStore::bytes(ViewId id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("CanonicalStore::bytes: bad id");
  return *keys_[static_cast<std::size_t>(id)];
}

std::size_t CanonicalStore::resident_bytes() const noexcept {
  // Keys + per-node map overhead (key vector header, id, next pointer) +
  // bucket array + the id→key pointer table.  An estimate, not an audit.
  constexpr std::size_t kNodeOverhead =
      sizeof(std::vector<std::uint8_t>) + sizeof(ViewId) + 2 * sizeof(void*);
  return key_bytes_ + keys_.size() * (kNodeOverhead + sizeof(void*)) +
         index_.bucket_count() * sizeof(void*);
}

}  // namespace dmm::colsys
