// Colour systems (paper §2.2): prefix-closed subsets V ⊆ G_k, represented as
// explicit rooted edge-coloured trees Γ_k(V).
//
// A node of the tree corresponds to an element v ∈ V; the root is the
// identity e; the edge between pred(v) and v carries colour tail(v).  The
// representation supports every operation the lower-bound construction of
// Section 3 needs:
//
//   * V[h]           — restricted(h)
//   * ūV (Lemma 3)   — rerooted(u), which also reports the node relabelling
//                      so that functions on V (such as a template's τ) can be
//                      transported
//   * prune(V, c)    — pruned(c)
//   * K₁ ∪ L₁ (§3.9) — grafted(c, L): subtree surgery at the root
//   * (v̄V)[h]        — ball(v, h)
//
// Truncation bookkeeping.  Most colour systems in the paper are infinite
// (e.g. Γ_k itself, or any d-regular system with d ≥ 2).  We store finite
// truncations together with a `valid_radius`: the structure is faithful for
// every node at depth ≤ valid_radius, and every node at depth < valid_radius
// has all of its true children materialised.  Finite systems that are known
// exactly (such as Z = {e} or the base-case systems {e, c2}) use
// kExactRadius.  Every operation computes the valid radius of its result;
// use-sites that would read beyond the faithful region throw instead of
// silently returning boundary-polluted data.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "gk/word.hpp"

namespace dmm::colsys {

using gk::Colour;
using NodeId = std::int32_t;

inline constexpr NodeId kNullNode = -1;

/// valid_radius value meaning "this finite system is represented exactly".
inline constexpr int kExactRadius = std::numeric_limits<int>::max();

class ColourSystem {
 public:
  /// The singleton system Z = {e}.
  explicit ColourSystem(int k, int valid_radius = kExactRadius);

  int k() const noexcept { return k_; }
  int size() const noexcept { return static_cast<int>(nodes_.size()); }
  int valid_radius() const noexcept { return valid_radius_; }
  bool is_exact() const noexcept { return valid_radius_ == kExactRadius; }

  static constexpr NodeId root() noexcept { return 0; }

  NodeId parent(NodeId v) const { return nodes_[check(v)].parent; }
  /// Colour of the edge towards the parent, i.e. tail(v).  kNoColour for e.
  Colour parent_colour(NodeId v) const { return nodes_[check(v)].pcolour; }
  int depth(NodeId v) const { return nodes_[check(v)].depth; }

  /// Child of v along colour c, or kNullNode.
  NodeId child(NodeId v, Colour c) const;

  /// Neighbour of v along colour c (parent or child), or kNullNode.
  NodeId neighbour(NodeId v, Colour c) const;

  /// Appends a child; used by builders.  Throws if the slot is taken or the
  /// colour equals the parent colour (words must stay reduced).
  NodeId add_child(NodeId v, Colour c);

  /// C(V, v): the sorted set of colours incident to v in Γ_k(V).
  std::vector<Colour> colours_at(NodeId v) const;

  /// deg(V, v) = |C(V, v)|.
  int degree(NodeId v) const;

  /// Locates the node for a group element, or kNullNode if absent.
  NodeId find(const gk::Word& w) const;

  /// The group element this node represents (root-to-node colour word).
  gk::Word word_of(NodeId v) const;

  /// All nodes with depth ≤ h, in BFS order (root first).
  std::vector<NodeId> nodes_up_to(int h) const;

  /// True iff every interior node (depth < valid_radius; all nodes when
  /// exact) has degree exactly d.  This is the paper's d-regularity,
  /// restricted to the faithful region of the truncation.
  bool is_regular(int d) const;

  /// V[h].  Requires h ≤ valid_radius.  The result is exact (it is a
  /// faithful representation of the finite system V[h]).  `old_to_new`, if
  /// non-null, receives the relabelling.
  ColourSystem restricted(int h, std::vector<NodeId>* old_to_new = nullptr) const;

  /// ūV where u = word_of(y) (Lemma 3): the same tree re-rooted at y.  All
  /// stored nodes are kept; valid_radius becomes valid_radius - depth(y)
  /// (exact stays exact).  `old_to_new` receives the relabelling.
  ColourSystem rerooted(NodeId y, std::vector<NodeId>* old_to_new = nullptr) const;

  /// prune(V, c) (§2.2): drops the subtree hanging off the root's c-child.
  /// Requires c ∈ C(V, e).  `old_to_new` receives the relabelling.
  ColourSystem pruned(Colour c, std::vector<NodeId>* old_to_new = nullptr) const;

  /// Root-level graft (the X = K₁ ∪ L₁ step of §3.9): returns the system
  /// whose root subtrees are this system's subtrees except along colour c,
  /// where the subtree is taken from `other` (which must have a c-child at
  /// its root).  Relabellings for both sources are reported.
  ColourSystem grafted(Colour c, const ColourSystem& other,
                       std::vector<NodeId>* self_to_new = nullptr,
                       std::vector<NodeId>* other_to_new = nullptr) const;

  /// (v̄V)[radius]: the ball of the given radius around v, as an exact
  /// colour system rooted at v.  Requires depth(v) + radius ≤ valid_radius.
  ColourSystem ball(NodeId v, int radius) const;

  /// π·V: the same tree with every edge colour c relabelled to perm[c].
  /// `perm` must be a bijection of [k] given as a (k+1)-vector with
  /// perm[0] == kNoColour (see colsys::ColourPerm).  Children are
  /// re-inserted in relabelled colour order, so serialisations of the
  /// result are canonical.  `old_to_new` receives the node relabelling.
  ColourSystem permuted(const std::vector<Colour>& perm,
                        std::vector<NodeId>* old_to_new = nullptr) const;

  /// Canonical byte serialisation of V[radius] (children visited in colour
  /// order), suitable for hashing and equality of rooted coloured trees.
  /// Requires radius ≤ valid_radius.
  std::vector<std::uint8_t> serialize(int radius) const;

  /// Appends the bytes of serialize(radius) to `out`; reusing one buffer
  /// across calls avoids the per-call allocation of serialize.
  void serialize_into(int radius, std::vector<std::uint8_t>& out) const;

  /// Appends the canonical serialisation of the subtree hanging at `top`
  /// (the edge towards top's parent removed), cut `radius` levels below
  /// `top`; `dropped`, when not kNoColour, names one child colour of `top`
  /// to omit.  The bytes equal what
  ///   rerooted(top).pruned(tail)…restricted(radius).serialize(radius)
  /// produced in the seed pipeline, but no intermediate trees are built —
  /// this is what makes the compatible-pair index allocation-free per
  /// lookup.  Requires depth(top) + radius ≤ valid_radius.
  void serialize_subtree_into(NodeId top, Colour dropped, int radius,
                              std::vector<std::uint8_t>& out) const;

  /// Structural equality of U[h] and V[h] (paper's U[h] = V[h]).
  static bool equal_to_radius(const ColourSystem& a, const ColourSystem& b, int h);

  /// Multi-line ASCII rendering (for examples and failure messages).
  std::string str(int max_depth = 6) const;

 private:
  struct Node {
    NodeId parent = kNullNode;
    Colour pcolour = gk::kNoColour;
    std::int32_t depth = 0;
  };

  NodeId check(NodeId v) const;
  void require_within(int radius, const char* what) const;

  /// Index into the flat children slab; computed in std::size_t *before*
  /// the multiply so a 10⁷-node k = 6 tree (6·10⁷ slots) can never wrap a
  /// 32-bit intermediate.
  std::size_t child_slot(NodeId v, Colour c) const noexcept {
    return static_cast<std::size_t>(v) * static_cast<std::size_t>(k_) +
           static_cast<std::size_t>(c) - 1;
  }

  int k_ = 0;
  int valid_radius_ = kExactRadius;
  std::vector<Node> nodes_;
  // Child per (node, colour), k_ slots per node in one contiguous slab
  // (kNullNode when absent).  Keeping this out of Node removes the
  // per-node heap allocation that dominated building the adversary's
  // ~10⁷-node k = 6 template trees.
  std::vector<NodeId> children_;
};

/// Builds the truncation Γ_k[depth] of the full Cayley graph (k-regular).
ColourSystem cayley_ball(int k, int depth);

/// Builds a d-regular k-colour system truncated to `depth`: each node uses
/// its parent colour plus the smallest d-1 other colours.  For d = k this is
/// cayley_ball.  Requires 0 ≤ d ≤ k (d = 0 gives Z exactly).
ColourSystem regular_system(int k, int d, int depth);

/// Builds the colour system of a simple path e - c1 - c1c2 - ... (finite,
/// exact).  Consecutive colours must differ.
ColourSystem path_system(int k, const std::vector<Colour>& colours);

}  // namespace dmm::colsys
