// Slab bump allocator for the library's large, uniform object populations
// (per-node engine programs, template-tree bookkeeping).
//
// The regime this targets is n = 10⁷ objects constructed in one burst at
// the start of a run and destroyed together at the end: a general-purpose
// heap pays a malloc/free pair plus ~16 bytes of header per object, which
// is exactly the "per-node allocation dominates init" ceiling the ROADMAP
// names.  The arena instead carves objects out of megabyte slabs with a
// single 64-bit cursor bump, and reset() recycles every slab without
// returning memory to the OS, so a reused arena allocates nothing in
// steady state.
//
// The arena owns raw memory only — it never runs destructors.  Owners that
// place non-trivial objects in it (local::ProgramPool) must destroy them
// before reset().  All cursors and size arithmetic are std::size_t; the
// only platform assumption is that operator new[] returns memory aligned
// for std::max_align_t, which bounds the alignment the arena can serve.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <utility>
#include <vector>

namespace dmm::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = std::size_t{1} << 20;  // 1 MiB

  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes == 0 ? kDefaultSlabBytes : slab_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two, at most
  /// alignof(std::max_align_t)).  Never returns nullptr; throws
  /// std::bad_alloc when the request itself cannot be represented.
  void* allocate(std::size_t bytes, std::size_t align) {
    if (align == 0 || (align & (align - 1)) != 0 || align > alignof(std::max_align_t)) {
      throw std::invalid_argument("Arena: unsupported alignment");
    }
    if (bytes > SIZE_MAX - align) throw std::bad_alloc();
    for (;;) {
      if (active_ < slabs_.size()) {
        Slab& slab = slabs_[active_];
        // Slab bases are max_align-aligned, so aligning the offset aligns
        // the pointer.  Computed entirely in std::size_t: a 16 GiB slot
        // plane cannot wrap this cursor.
        const std::size_t aligned = (cursor_ + (align - 1)) & ~(align - 1);
        if (aligned <= slab.capacity && bytes <= slab.capacity - aligned) {
          cursor_ = aligned + bytes;
          allocated_ += bytes;
          return slab.data.get() + aligned;
        }
        // The tail of this slab is too small; move on.  reset() rewinds to
        // slab 0, so the waste is bounded and recycled.
        ++active_;
        cursor_ = 0;
        continue;
      }
      const std::size_t capacity = bytes > slab_bytes_ ? bytes : slab_bytes_;
      slabs_.push_back(Slab{std::make_unique<std::byte[]>(capacity), capacity});
    }
  }

  /// Uninitialised storage for `count` objects of type T; the caller
  /// placement-constructs.  Guards the count*sizeof(T) product.
  template <class T>
  T* allocate_array(std::size_t count) {
    if (count > SIZE_MAX / sizeof(T)) throw std::bad_alloc();
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Constructs one T in the arena.  The caller is responsible for running
  /// the destructor (the arena will not).
  template <class T, class... Args>
  T* make(Args&&... args) {
    return new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Rewinds every cursor without releasing slabs: the next fill reuses the
  /// same memory.  Any objects previously placed in the arena must already
  /// have been destroyed.
  void reset() noexcept {
    active_ = 0;
    cursor_ = 0;
    allocated_ = 0;
  }

  /// Bytes handed out since construction or the last reset().
  std::size_t bytes_allocated() const noexcept { return allocated_; }

  /// Total slab capacity held (survives reset — the reuse guarantee).
  std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const Slab& s : slabs_) total += s.capacity;
    return total;
  }

  std::size_t slab_count() const noexcept { return slabs_.size(); }

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
  };

  std::size_t slab_bytes_;
  std::vector<Slab> slabs_;
  std::size_t active_ = 0;  // slab currently being bumped
  std::size_t cursor_ = 0;  // byte offset into the active slab
  std::size_t allocated_ = 0;
};

}  // namespace dmm::util
