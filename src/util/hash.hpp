// Hash combining utilities used for canonical forms and memoisation tables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dmm {

/// 64-bit FNV-1a over a byte sequence; stable across runs (unlike std::hash
/// for strings on some platforms) so memo tables can be compared in tests.
inline std::uint64_t fnv1a(const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

inline std::uint64_t fnv1a(const std::string& s) noexcept {
  return fnv1a(s.data(), s.size());
}

inline std::uint64_t fnv1a(const std::vector<std::uint8_t>& v) noexcept {
  return fnv1a(v.data(), v.size());
}

/// boost-style hash_combine.
inline void hash_combine(std::size_t& seed, std::size_t value) noexcept {
  seed ^= value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

}  // namespace dmm
