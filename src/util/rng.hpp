// Deterministic random number generation for tests, generators and benches.
//
// All randomized components of the library take an explicit Rng so that every
// experiment is reproducible from a seed printed in its output.
#pragma once

#include <cstdint>
#include <random>

namespace dmm {

/// Thin wrapper around a fixed-algorithm engine (mt19937_64) so results are
/// stable across platforms and standard-library versions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform value in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dmm
