// Iterated logarithm and related small numeric helpers.
//
// The paper's Section 1.3 bounds are stated in terms of log* k — the number
// of times log2 must be applied to k before the value drops to at most 1.
#pragma once

#include <cstdint>

namespace dmm {

/// log*(x): number of applications of log2 needed to bring x to <= 1.
/// log_star(1) == 0, log_star(2) == 1, log_star(4) == 2, log_star(16) == 3,
/// log_star(65536) == 4.  Defined as 0 for x <= 1.
int log_star(std::uint64_t x) noexcept;

/// floor(log2(x)) for x >= 1.
int floor_log2(std::uint64_t x) noexcept;

/// ceil(log2(x)) for x >= 1.
int ceil_log2(std::uint64_t x) noexcept;

}  // namespace dmm
