#include "util/logstar.hpp"

#include <bit>

namespace dmm {

int floor_log2(std::uint64_t x) noexcept {
  if (x == 0) return 0;
  return 63 - std::countl_zero(x);
}

int ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return floor_log2(x - 1) + 1;
}

int log_star(std::uint64_t x) noexcept {
  int iterations = 0;
  while (x > 1) {
    // ceil(log2) dominates real log2, giving the standard values
    // log*(2)=1, log*(4)=2, log*(16)=3, log*(65536)=4; the paper's
    // asymptotic statements are insensitive to the rounding convention.
    x = static_cast<std::uint64_t>(ceil_log2(x));
    ++iterations;
  }
  return iterations;
}

}  // namespace dmm
