// Neighbourhood graphs (Remark 2, after Linial [14]).
//
// For radius ρ and d-regular k-colour systems, the ρ-views form a finite
// set: complete depth-ρ d-regular coloured trees.  Two views A, B are
// c-compatible if some instance contains a c-edge {u, v} with
// ball_ρ(u) = A and ball_ρ(v) = B; for trees this is a local condition —
// A's subtree across its c-edge, cut to depth ρ-1, must equal B without
// its own c-branch, cut to depth ρ-1, and vice versa.
//
// An r-round algorithm is exactly an (M1)-respecting labelling of the
// (r+1)-view catalogue; (M2)/(M3) become constraints along compatible
// pairs.  csp.hpp turns non-existence of such labellings into a search —
// Linial's proof technique, executable.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "colsys/canon.hpp"
#include "colsys/colour_system.hpp"

namespace dmm::nbhd {

using colsys::ColourPerm;
using colsys::ColourSystem;
using gk::Colour;

struct ViewCatalogue {
  int k = 0;
  int d = 0;
  int rho = 0;
  /// All complete depth-ρ views, canonically deduplicated; index = view id.
  std::vector<ColourSystem> views;

  int size() const noexcept { return static_cast<int>(views.size()); }
};

/// Enumerates every radius-ρ view arising in d-regular k-colour systems.
/// Throws if the catalogue would exceed `max_views` (guards the
/// exponential blow-up).
ViewCatalogue enumerate_views(int k, int d, int rho, int max_views = 2'000'000);

/// True iff views A and B can sit at the two ends of a colour-c edge of
/// some d-regular instance.
bool c_compatible(const ColourSystem& a, const ColourSystem& b, Colour c, int rho);

struct CompatiblePair {
  int a = 0;  // view ids
  int b = 0;
  Colour colour = gk::kNoColour;
};

/// All compatible (a, b, c) triples with a <= b.
std::vector<CompatiblePair> compatible_pairs(const ViewCatalogue& catalogue);

// ---------------------------------------------------------------------------
// Colour-permutation orbit reduction.
//
// The view catalogue is closed under the S_k action relabelling colours
// globally, so it carries ~k! copies of every tree; the same holds for the
// compatible-pair index.  An OrbitCatalogue stores one canonical
// representative per orbit plus its stabiliser and the sorted left-coset
// permutations that regenerate the members — a ~k!-fold cut in materialised
// trees.  The labelling CSP itself must NOT be quotiented (a satisfiable
// catalogue need not admit a colour-symmetric labelling — see
// docs/lowerbound.md, "Colour symmetry"), so the orbit-mode solver expands
// the member views back through the witnesses; what the quotient buys is
// the catalogue/pair-index construction and storage, and a canonical
// (input-permutation-invariant) CSP instance.
// ---------------------------------------------------------------------------

/// Closed-form Burnside census of the catalogue: views (= the raw count)
/// and orbits, both exact in double precision for every parameter set whose
/// counts stay below 2^53.  Pure arithmetic — never enumerates, so it is
/// the guard and the headline number for catalogues far beyond
/// materialisation (k = 5, ρ = 3: 21 474 836 480 views, 178 981 952
/// orbits — exactly the 5! = 120-fold cut, views at this depth having
/// almost no colour symmetry).
struct OrbitCensus {
  double views = 0;
  double orbits = 0;
};
OrbitCensus orbit_census(int k, int d, int rho);

struct OrbitCatalogue {
  int k = 0;
  int d = 0;
  int rho = 0;
  /// One orbit-canonical representative per orbit, sorted by canonical
  /// serialisation bytes — an order independent of any relabelling of the
  /// input, which is what makes the orbit pipeline metamorphically stable.
  std::vector<ColourSystem> reps;
  /// Per orbit: the stabiliser of the representative in S_k (contains id).
  std::vector<std::vector<ColourPerm>> stabilisers;
  /// Per orbit: sorted canonical left-coset representatives σ; the orbit's
  /// members are σ·rep, so cosets[o].size() == k!/|stabilisers[o]| and the
  /// member views of the whole catalogue are indexed (orbit, coset) in
  /// lexicographic order.
  std::vector<std::vector<ColourPerm>> cosets;
  /// offsets[o] is the member index of cosets[o][0]; offsets.back() is the
  /// total member count (== the raw catalogue size).
  std::vector<std::int64_t> offsets;

  int orbit_count() const noexcept { return static_cast<int>(reps.size()); }
  std::int64_t view_count() const noexcept { return offsets.empty() ? 0 : offsets.back(); }
};

/// Counters from an orderly generation run (orderly_orbit_reps /
/// enumerate_orbits).  On the orderly path no raw view is ever replayed:
/// `views_replayed` stays 0 and `member_views` is the closed-form
/// Σ k!/|Stab(rep)| — the raw catalogue size reached without walking it.
struct OrbitGenStats {
  std::int64_t reps_generated = 0;
  /// Raw views materialised along the way (0 for orderly generation; the
  /// PR 5 replay-fold in reduce_catalogue walks one per member).
  std::int64_t views_replayed = 0;
  /// Partial choice vectors pruned by the incremental is-canonical test.
  std::int64_t prefixes_rejected = 0;
  /// Orbit sizes summed in closed form; exact below 2^53.
  double member_views = 0;
  /// False iff the callback stopped the walk early.
  bool complete = false;
};

/// One canonical orbit representative as streamed by orderly_orbit_reps.
struct OrderlyRep {
  /// The representative's serialisation — already orbit-canonical (the
  /// generator never emits a view that fails to canonise to itself), and
  /// emitted in ascending lexicographic byte order.
  std::vector<std::uint8_t> bytes;
  /// Ordinal of this rep in emission (== canonical-bytes) order.
  std::int64_t index = 0;
  /// Stabiliser of the representative in S_k, sorted by Lehmer rank.
  std::vector<ColourPerm> stabiliser;
};

/// McKay-style orderly generation: walks the augmentation tree of partial
/// choice vectors in canonical order, prunes every prefix whose completions
/// cannot be orbit-canonical (SerialisedView::prefix_rejects), and streams
/// exactly the canonical orbit representatives — no raw view is ever
/// materialised.  Return false from `fn` to stop early (stats.complete
/// records whether the walk ran dry).  Unbounded: the caller guards scale,
/// e.g. with orbit_census.
OrbitGenStats orderly_orbit_reps(int k, int d, int rho,
                                 const std::function<bool(OrderlyRep&&)>& fn);

/// Enumerates the catalogue modulo colour permutation via orderly
/// generation: only the canonical representatives are built (+ stabiliser
/// and member cosets per orbit), so `max_views` now guards *reps
/// generated*, not raw members — `k = 5, ρ = 3` (1.79×10⁸ reps over
/// 2.1×10¹⁰ raw views) is reachable by raising it.  The rep set is
/// cross-checked against the closed-form Burnside census before returning;
/// `stats`, when given, receives the generation counters.
OrbitCatalogue enumerate_orbits(int k, int d, int rho, int max_views = 2'000'000,
                                OrbitGenStats* stats = nullptr);

/// Folds an explicit catalogue into orbits.  For a full enumerate_views
/// catalogue this equals enumerate_orbits (and the result is identical for
/// any globally colour-permuted copy of the input).
OrbitCatalogue reduce_catalogue(const ViewCatalogue& catalogue);

/// Materialises every member view, in (orbit, coset) order.  Inverse of
/// reduce_catalogue up to view order.
ViewCatalogue expand_catalogue(const OrbitCatalogue& catalogue);

/// All compatible (a, b, c) triples over the member index space, a <= b.
/// Built at orbit level: the two half-trees are serialised and canonised
/// once per (representative, colour), and each member's half identity is
/// the group element lifting it through the representative's witness — no
/// per-member serialisation, hashing of plain integers only.  The result
/// equals compatible_pairs(expand_catalogue(catalogue)) exactly.
std::vector<CompatiblePair> compatible_pairs(const OrbitCatalogue& catalogue);

}  // namespace dmm::nbhd
