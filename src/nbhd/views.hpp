// Neighbourhood graphs (Remark 2, after Linial [14]).
//
// For radius ρ and d-regular k-colour systems, the ρ-views form a finite
// set: complete depth-ρ d-regular coloured trees.  Two views A, B are
// c-compatible if some instance contains a c-edge {u, v} with
// ball_ρ(u) = A and ball_ρ(v) = B; for trees this is a local condition —
// A's subtree across its c-edge, cut to depth ρ-1, must equal B without
// its own c-branch, cut to depth ρ-1, and vice versa.
//
// An r-round algorithm is exactly an (M1)-respecting labelling of the
// (r+1)-view catalogue; (M2)/(M3) become constraints along compatible
// pairs.  csp.hpp turns non-existence of such labellings into a search —
// Linial's proof technique, executable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "colsys/colour_system.hpp"

namespace dmm::nbhd {

using colsys::ColourSystem;
using gk::Colour;

struct ViewCatalogue {
  int k = 0;
  int d = 0;
  int rho = 0;
  /// All complete depth-ρ views, canonically deduplicated; index = view id.
  std::vector<ColourSystem> views;

  int size() const noexcept { return static_cast<int>(views.size()); }
};

/// Enumerates every radius-ρ view arising in d-regular k-colour systems.
/// Throws if the catalogue would exceed `max_views` (guards the
/// exponential blow-up).
ViewCatalogue enumerate_views(int k, int d, int rho, int max_views = 2'000'000);

/// True iff views A and B can sit at the two ends of a colour-c edge of
/// some d-regular instance.
bool c_compatible(const ColourSystem& a, const ColourSystem& b, Colour c, int rho);

struct CompatiblePair {
  int a = 0;  // view ids
  int b = 0;
  Colour colour = gk::kNoColour;
};

/// All compatible (a, b, c) triples with a <= b.
std::vector<CompatiblePair> compatible_pairs(const ViewCatalogue& catalogue);

}  // namespace dmm::nbhd
