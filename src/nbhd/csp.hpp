// Existence of r-round algorithms as a constraint-satisfaction problem
// (Linial's technique, Remark 2) — the second, independent proof engine of
// this library.
//
// A deterministic r-round algorithm on d-regular k-colour systems is an
// assignment out : views(ρ = r+1) → {⊥} ∪ C(view) such that for every
// compatible pair (A, B, c):
//
//   (M2)  out(A) = c  ⇔  out(B) = c,
//   (M3)  not (out(A) = ⊥ and out(B) = ⊥).
//
// If no assignment exists, *no* r-round algorithm exists — a universal
// statement obtained by exhaustive search rather than the §3 adversary.
// The two engines cross-validate: the CSP is UNSAT exactly for r < k-1
// (checked for the parameters small enough to enumerate), and the greedy
// algorithm's own labelling is a solution at r = k-1.
#pragma once

#include <optional>
#include <vector>

#include "local/algorithm.hpp"
#include "nbhd/views.hpp"

namespace dmm::nbhd {

struct CspResult {
  bool satisfiable = false;
  /// One solution when satisfiable: out[view id] (⊥ = kNoColour).
  std::vector<Colour> labelling;
  std::uint64_t nodes_explored = 0;
};

struct CspOptions {
  /// Worker threads exploring the root variable's branchings in parallel.
  /// The verdict and (for SAT instances) the labelling are identical to the
  /// serial search — a branch may only be cancelled by a SAT result in a
  /// lower-indexed branch, so the winning branch always runs to completion.
  /// nodes_explored is deterministic only at threads == 1 (cancelled
  /// branches stop at a race-dependent point).
  int threads = 1;
};

/// Decides whether a valid labelling of the catalogue exists (bitset
/// domains, arc-consistency preprocessing, then backtracking with MRV and
/// forward checking; domains have at most d+1 values).
CspResult solve(const ViewCatalogue& catalogue, const CspOptions& options = {});

/// Same, reusing an already-computed compatible_pairs(catalogue) result —
/// the pair index is the expensive half of large instances.
CspResult solve(const ViewCatalogue& catalogue, const std::vector<CompatiblePair>& pairs,
                const CspOptions& options = {});

/// Orbit-mode solve: decides the SAME CSP as solve(expand_catalogue(c))
/// — every member view is a variable; the catalogue's symmetry quotient is
/// NOT applied to the solution space (a satisfiable instance need not have
/// a colour-symmetric labelling; see docs/lowerbound.md).  Domains are read
/// off the orbit representatives through the coset witnesses, so no member
/// tree is materialised.  Because the orbit catalogue is canonically
/// ordered, verdict *and* nodes_explored are invariant under any global
/// colour relabelling of the original catalogue.  The labelling is indexed
/// by member (orbit, coset) order.
CspResult solve(const OrbitCatalogue& catalogue, const CspOptions& options = {});

/// Same, reusing an already-computed compatible_pairs(catalogue) result.
CspResult solve(const OrbitCatalogue& catalogue, const std::vector<CompatiblePair>& pairs,
                const CspOptions& options = {});

/// The labelling induced by a concrete algorithm (evaluating it on every
/// view).  The algorithm's running time must be rho-1.
std::vector<Colour> induced_labelling(const ViewCatalogue& catalogue,
                                      const local::LocalAlgorithm& algorithm);

/// Checks a labelling against (M1)+(M2)+(M3); returns the first violated
/// pair, if any.
std::optional<CompatiblePair> check_labelling(const ViewCatalogue& catalogue,
                                              const std::vector<Colour>& labelling);

}  // namespace dmm::nbhd
