#include "nbhd/csp.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <deque>
#include <queue>
#include <stdexcept>
#include <thread>

namespace dmm::nbhd {

namespace {

bool consistent(const CompatiblePair& pair, Colour out_a, Colour out_b) {
  // (M2): matched along the shared edge iff both say so.
  if ((out_a == pair.colour) != (out_b == pair.colour)) return false;
  // (M3): not both unmatched.
  if (out_a == gk::kNoColour && out_b == gk::kNoColour) return false;
  return true;
}

/// Domains as bitsets: bit 0 is ⊥, bit c is colour c.  d+1 values at most,
/// so every domain operation is a handful of mask instructions.
using Mask = std::uint32_t;

inline int domain_size(Mask m) { return std::popcount(m); }

/// One arc of the constraint graph in CSR form: the far endpoint and the
/// shared edge colour of a compatible pair.
struct Arc {
  std::int32_t other;
  Colour colour;
};

/// The shared, read-only half of the problem: domains after the initial
/// arc-consistency pass, plus the CSR arc lists.
struct Problem {
  int n = 0;
  std::vector<Mask> base_domains;
  std::vector<std::size_t> row;  // n+1 offsets into arcs
  std::vector<Arc> arcs;
  bool wiped_out = false;  // arc consistency emptied a domain: UNSAT, no search
};

/// Values of dom(x) supported by some value of dom(y) across a c-arc:
///   * c is supported iff c ∈ dom(y);
///   * a colour v ∉ {c, ⊥} is supported iff dom(y) has any value ≠ c;
///   * ⊥ is supported iff dom(y) has any value ∉ {c, ⊥}  (M3).
inline Mask support(Mask dom_y, Colour c, Mask all_colours) {
  const Mask cbit = Mask{1} << c;
  Mask s = 0;
  if (dom_y & cbit) s |= cbit;
  if (dom_y & ~cbit) s |= all_colours & ~cbit;
  if (dom_y & ~(cbit | Mask{1})) s |= Mask{1};
  return s;
}

/// AC-3 over the pair constraints.  Returns false on a domain wipe-out
/// (the instance is UNSAT with zero search nodes).
bool arc_consistency(Problem& problem, Mask all_colours) {
  std::vector<char> queued(static_cast<std::size_t>(problem.n), 1);
  std::deque<std::int32_t> queue;
  for (std::int32_t v = 0; v < problem.n; ++v) queue.push_back(v);
  while (!queue.empty()) {
    const std::int32_t x = queue.front();
    queue.pop_front();
    queued[static_cast<std::size_t>(x)] = 0;
    Mask dom = problem.base_domains[static_cast<std::size_t>(x)];
    const Mask before = dom;
    for (std::size_t i = problem.row[static_cast<std::size_t>(x)];
         i < problem.row[static_cast<std::size_t>(x) + 1] && dom != 0; ++i) {
      const Arc& arc = problem.arcs[i];
      dom &= support(problem.base_domains[static_cast<std::size_t>(arc.other)], arc.colour,
                     all_colours);
    }
    if (dom == before) continue;
    problem.base_domains[static_cast<std::size_t>(x)] = dom;
    if (dom == 0) return false;
    for (std::size_t i = problem.row[static_cast<std::size_t>(x)];
         i < problem.row[static_cast<std::size_t>(x) + 1]; ++i) {
      const std::int32_t y = problem.arcs[i].other;
      if (!queued[static_cast<std::size_t>(y)]) {
        queued[static_cast<std::size_t>(y)] = 1;
        queue.push_back(y);
      }
    }
  }
  return true;
}

/// Backtracking search state.  MRV is served by a lazy min-heap of
/// (domain size, variable) entries: every domain change pushes a fresh
/// entry, and stale ones are discarded on pop — O(log n) per pick instead
/// of the seed's O(n) scan per node (the dominant cost at 78k variables).
struct SearchState {
  std::vector<Mask> domains;
  std::vector<Colour> assignment;
  std::vector<char> assigned;
  std::priority_queue<std::pair<int, std::int32_t>, std::vector<std::pair<int, std::int32_t>>,
                      std::greater<>>
      mrv;
  std::uint64_t explored = 0;

  explicit SearchState(const Problem& problem)
      : domains(problem.base_domains),
        assignment(static_cast<std::size_t>(problem.n), gk::kNoColour),
        assigned(static_cast<std::size_t>(problem.n), 0) {
    for (std::int32_t v = 0; v < problem.n; ++v) {
      mrv.emplace(domain_size(domains[static_cast<std::size_t>(v)]), v);
    }
  }

  void touch(std::int32_t v) { mrv.emplace(domain_size(domains[static_cast<std::size_t>(v)]), v); }

  /// Smallest-domain unassigned variable (ties by index), or -1.
  std::int32_t pick() {
    while (!mrv.empty()) {
      const auto [size, v] = mrv.top();
      if (!assigned[static_cast<std::size_t>(v)] &&
          domain_size(domains[static_cast<std::size_t>(v)]) == size) {
        mrv.pop();
        return v;
      }
      mrv.pop();
    }
    // The heap invariant (every unassigned variable has a live entry)
    // should make this scan dead code; it is a cheap safety net that runs
    // at most once per solution.
    for (std::int32_t v = 0; v < static_cast<std::int32_t>(domains.size()); ++v) {
      if (!assigned[static_cast<std::size_t>(v)]) {
        touch(v);
        return v;
      }
    }
    return -1;
  }
};

struct Frame {
  std::int32_t variable;
  Mask values;  // values of the variable's domain not yet tried
  std::vector<std::pair<std::int32_t, Mask>> saved;
};

/// Serial backtracking from a prepared state.  `first_value_mask`, when
/// non-zero, restricts the root frame to a subset of its domain (the unit
/// of parallel branch decomposition).  `cancel` aborts the search with an
/// indeterminate result (only ever observed by branches that lost the
/// deterministic merge).
bool search(const Problem& problem, SearchState& state, Mask first_value_mask,
            const std::atomic<bool>* cancel) {
  std::vector<Frame> stack;
  const std::int32_t first = state.pick();
  if (first < 0) return true;  // no variables at all
  stack.push_back({first,
                   first_value_mask ? first_value_mask & state.domains[static_cast<std::size_t>(first)]
                                    : state.domains[static_cast<std::size_t>(first)],
                   {}});

  auto undo = [&](Frame& frame) {
    for (auto& [other, mask] : frame.saved) {
      state.domains[static_cast<std::size_t>(other)] = mask;
      state.touch(other);
    }
    frame.saved.clear();
    state.assigned[static_cast<std::size_t>(frame.variable)] = 0;
  };

  while (!stack.empty()) {
    if (cancel && (state.explored & 1023u) == 0 &&
        cancel->load(std::memory_order_relaxed)) {
      return false;
    }
    Frame& frame = stack.back();
    const std::int32_t var = frame.variable;
    if (frame.values == 0) {
      state.touch(var);  // its pick-time heap entry was consumed
      stack.pop_back();
      if (!stack.empty()) undo(stack.back());
      continue;
    }
    // Try ⊥ first, then colours ascending (bit order == the seed's domain
    // vector order).
    const Mask value_bit = frame.values & (~frame.values + 1);
    frame.values &= ~value_bit;
    const Colour value = static_cast<Colour>(std::countr_zero(value_bit));
    ++state.explored;
    state.assignment[static_cast<std::size_t>(var)] = value;
    state.assigned[static_cast<std::size_t>(var)] = 1;

    bool dead = false;
    for (std::size_t i = problem.row[static_cast<std::size_t>(var)];
         i < problem.row[static_cast<std::size_t>(var) + 1]; ++i) {
      const Arc& arc = problem.arcs[i];
      const std::int32_t other = arc.other;
      if (state.assigned[static_cast<std::size_t>(other)]) {
        const Colour other_value = state.assignment[static_cast<std::size_t>(other)];
        if ((value == arc.colour) != (other_value == arc.colour) ||
            (value == gk::kNoColour && other_value == gk::kNoColour)) {
          dead = true;
          break;
        }
        continue;
      }
      // Forward check: value == c forces the partner to c; otherwise the
      // partner cannot be c, and if value is ⊥ it cannot be ⊥ either (M3).
      const Mask cbit = Mask{1} << arc.colour;
      Mask allowed;
      if (value == arc.colour) {
        allowed = cbit;
      } else {
        allowed = ~cbit;
        if (value == gk::kNoColour) allowed &= ~Mask{1};
      }
      Mask& dom = state.domains[static_cast<std::size_t>(other)];
      const Mask pruned = dom & allowed;
      if (pruned != dom) {
        frame.saved.emplace_back(other, dom);
        dom = pruned;
        state.touch(other);
        if (pruned == 0) {
          dead = true;
          break;
        }
      }
    }
    if (dead) {
      // Roll back this value's prunes; the frame then tries its next value.
      undo(frame);
      continue;
    }
    const std::int32_t next = state.pick();
    if (next < 0) return true;  // complete assignment
    stack.push_back({next, state.domains[static_cast<std::size_t>(next)], {}});
  }
  return false;
}

/// (M1) domains: ⊥ plus the root's incident colours, per view.
std::vector<Mask> base_domains(const ViewCatalogue& catalogue) {
  std::vector<Mask> domains(static_cast<std::size_t>(catalogue.size()));
  for (int v = 0; v < catalogue.size(); ++v) {
    Mask dom = Mask{1};
    for (Colour c : catalogue.views[static_cast<std::size_t>(v)].colours_at(
             colsys::ColourSystem::root())) {
      dom |= Mask{1} << c;
    }
    domains[static_cast<std::size_t>(v)] = dom;
  }
  return domains;
}

/// Same for the members of an orbit catalogue, read off the representatives
/// through the coset witnesses: member (o, σ) is σ·rep, so its root colours
/// are the σ-images of the representative's — no member tree needed.
std::vector<Mask> base_domains(const OrbitCatalogue& catalogue) {
  std::vector<Mask> domains;
  domains.reserve(static_cast<std::size_t>(catalogue.view_count()));
  for (int o = 0; o < catalogue.orbit_count(); ++o) {
    const std::vector<Colour> roots = catalogue.reps[static_cast<std::size_t>(o)].colours_at(
        colsys::ColourSystem::root());
    for (const ColourPerm& sigma : catalogue.cosets[static_cast<std::size_t>(o)]) {
      Mask dom = Mask{1};
      for (Colour c : roots) dom |= Mask{1} << sigma[c];
      domains.push_back(dom);
    }
  }
  return domains;
}

Problem build_problem(std::vector<Mask> domains, int k,
                      const std::vector<CompatiblePair>& pairs) {
  Problem problem;
  problem.n = static_cast<int>(domains.size());
  problem.base_domains = std::move(domains);
  // CSR arc lists.  Self pairs (a view compatible with itself along c) are
  // a unary constraint — (M3) bans ⊥ — applied to the domain directly.
  std::vector<std::size_t> degree(static_cast<std::size_t>(problem.n), 0);
  for (const CompatiblePair& pair : pairs) {
    if (pair.a == pair.b) {
      problem.base_domains[static_cast<std::size_t>(pair.a)] &= ~Mask{1};
      continue;
    }
    ++degree[static_cast<std::size_t>(pair.a)];
    ++degree[static_cast<std::size_t>(pair.b)];
  }
  problem.row.assign(static_cast<std::size_t>(problem.n) + 1, 0);
  for (int v = 0; v < problem.n; ++v) {
    problem.row[static_cast<std::size_t>(v) + 1] =
        problem.row[static_cast<std::size_t>(v)] + degree[static_cast<std::size_t>(v)];
  }
  problem.arcs.resize(problem.row.back());
  std::vector<std::size_t> fill(problem.row.begin(), problem.row.end() - 1);
  for (const CompatiblePair& pair : pairs) {
    if (pair.a == pair.b) continue;
    problem.arcs[fill[static_cast<std::size_t>(pair.a)]++] = {pair.b, pair.colour};
    problem.arcs[fill[static_cast<std::size_t>(pair.b)]++] = {pair.a, pair.colour};
  }

  Mask all_colours = 0;
  for (Colour c = 1; c <= k; ++c) all_colours |= Mask{1} << c;
  problem.wiped_out = !arc_consistency(problem, all_colours);
  return problem;
}

/// The search driver shared by the raw and the orbit-mode entry points.
CspResult solve_problem(const Problem& problem, const CspOptions& options) {
  CspResult result;
  if (problem.wiped_out) return result;  // UNSAT by propagation alone

  const int threads = std::max(1, options.threads);
  if (threads == 1 || problem.n == 0) {
    SearchState state(problem);
    result.satisfiable = search(problem, state, 0, nullptr);
    result.nodes_explored = state.explored;
    if (result.satisfiable) result.labelling = std::move(state.assignment);
    return result;
  }

  // Parallel exploration of the root variable's branchings.  Branch i may
  // only be cancelled once a branch j < i has proven SAT, so the smallest
  // SAT branch always completes — its labelling is exactly what the serial
  // search (which tries branch values in the same ⊥-then-ascending order)
  // would have returned.
  SearchState root_probe(problem);
  const std::int32_t root_var = root_probe.pick();
  if (root_var < 0) {
    result.satisfiable = true;
    result.labelling.assign(static_cast<std::size_t>(problem.n), gk::kNoColour);
    return result;
  }
  std::vector<Mask> branch_bits;
  Mask dom = problem.base_domains[static_cast<std::size_t>(root_var)];
  while (dom != 0) {
    const Mask bit = dom & (~dom + 1);
    branch_bits.push_back(bit);
    dom &= ~bit;
  }
  const int branch_count = static_cast<int>(branch_bits.size());
  std::vector<char> found(static_cast<std::size_t>(branch_count), 0);
  std::vector<std::vector<Colour>> labellings(static_cast<std::size_t>(branch_count));
  std::vector<std::uint64_t> explored(static_cast<std::size_t>(branch_count), 0);
  std::atomic<int> best{branch_count};
  std::vector<std::atomic<bool>> cancel(static_cast<std::size_t>(branch_count));
  for (auto& flag : cancel) flag.store(false, std::memory_order_relaxed);
  std::atomic<int> next_branch{0};

  auto worker = [&]() {
    while (true) {
      const int i = next_branch.fetch_add(1, std::memory_order_relaxed);
      if (i >= branch_count) return;
      if (best.load(std::memory_order_acquire) < i) continue;
      SearchState state(problem);
      const bool sat = search(problem, state, branch_bits[static_cast<std::size_t>(i)],
                              &cancel[static_cast<std::size_t>(i)]);
      explored[static_cast<std::size_t>(i)] = state.explored;
      if (sat) {
        found[static_cast<std::size_t>(i)] = 1;
        labellings[static_cast<std::size_t>(i)] = std::move(state.assignment);
        int expected = best.load(std::memory_order_acquire);
        while (i < expected &&
               !best.compare_exchange_weak(expected, i, std::memory_order_acq_rel)) {
        }
        // Cancel every higher-indexed branch.
        for (int j = i + 1; j < branch_count; ++j) {
          cancel[static_cast<std::size_t>(j)].store(true, std::memory_order_relaxed);
        }
      }
    }
  };
  std::vector<std::thread> pool;
  const int workers = std::min(threads, branch_count);
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  for (std::uint64_t count : explored) result.nodes_explored += count;
  const int winner = best.load(std::memory_order_acquire);
  if (winner < branch_count) {
    result.satisfiable = true;
    result.labelling = std::move(labellings[static_cast<std::size_t>(winner)]);
  }
  return result;
}

}  // namespace

CspResult solve(const ViewCatalogue& catalogue, const std::vector<CompatiblePair>& pairs,
                const CspOptions& options) {
  if (catalogue.k + 1 >= 32) throw std::invalid_argument("solve: k too large for mask domains");
  const Problem problem = build_problem(base_domains(catalogue), catalogue.k, pairs);
  return solve_problem(problem, options);
}

CspResult solve(const ViewCatalogue& catalogue, const CspOptions& options) {
  return solve(catalogue, compatible_pairs(catalogue), options);
}

CspResult solve(const OrbitCatalogue& catalogue, const std::vector<CompatiblePair>& pairs,
                const CspOptions& options) {
  if (catalogue.k + 1 >= 32) throw std::invalid_argument("solve: k too large for mask domains");
  const Problem problem = build_problem(base_domains(catalogue), catalogue.k, pairs);
  return solve_problem(problem, options);
}

CspResult solve(const OrbitCatalogue& catalogue, const CspOptions& options) {
  return solve(catalogue, compatible_pairs(catalogue), options);
}

std::vector<Colour> induced_labelling(const ViewCatalogue& catalogue,
                                      const local::LocalAlgorithm& algorithm) {
  if (algorithm.running_time() + 1 != catalogue.rho) {
    throw std::invalid_argument("induced_labelling: algorithm radius does not match catalogue");
  }
  std::vector<Colour> out;
  out.reserve(static_cast<std::size_t>(catalogue.size()));
  for (const colsys::ColourSystem& view : catalogue.views) {
    out.push_back(algorithm.evaluate(view));
  }
  return out;
}

std::optional<CompatiblePair> check_labelling(const ViewCatalogue& catalogue,
                                              const std::vector<Colour>& labelling) {
  if (labelling.size() != static_cast<std::size_t>(catalogue.size())) {
    throw std::invalid_argument("check_labelling: size mismatch");
  }
  // (M1).
  for (int v = 0; v < catalogue.size(); ++v) {
    const Colour out = labelling[static_cast<std::size_t>(v)];
    if (out == gk::kNoColour) continue;
    const auto incident =
        catalogue.views[static_cast<std::size_t>(v)].colours_at(colsys::ColourSystem::root());
    if (std::find(incident.begin(), incident.end(), out) == incident.end()) {
      return CompatiblePair{v, v, out};
    }
  }
  for (const CompatiblePair& pair : compatible_pairs(catalogue)) {
    if (!consistent(pair, labelling[static_cast<std::size_t>(pair.a)],
                    labelling[static_cast<std::size_t>(pair.b)])) {
      return pair;
    }
  }
  return std::nullopt;
}

}  // namespace dmm::nbhd
