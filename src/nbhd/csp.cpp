#include "nbhd/csp.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmm::nbhd {

namespace {

struct Problem {
  const ViewCatalogue& catalogue;
  std::vector<std::vector<Colour>> domains;           // per view
  std::vector<std::vector<CompatiblePair>> incident;  // pairs touching each view
};

bool consistent(const CompatiblePair& pair, Colour out_a, Colour out_b) {
  // (M2): matched along the shared edge iff both say so.
  if ((out_a == pair.colour) != (out_b == pair.colour)) return false;
  // (M3): not both unmatched.
  if (out_a == gk::kNoColour && out_b == gk::kNoColour) return false;
  return true;
}

/// One backtracking level: the chosen variable, which of its domain values
/// have been tried, and the domain prunes to undo on the way back.
struct Frame {
  int variable = -1;
  std::size_t next_value = 0;
  std::vector<std::pair<int, std::vector<Colour>>> saved;
};

/// Iterative backtracking with MRV + forward checking (the catalogue can
/// have tens of thousands of variables, far past safe recursion depth).
bool search(Problem& problem, std::vector<Colour>& assignment, std::vector<char>& assigned,
            std::uint64_t& explored) {
  const int n = problem.catalogue.size();
  auto pick_variable = [&]() {
    int best = -1;
    std::size_t best_size = SIZE_MAX;
    for (int v = 0; v < n; ++v) {
      if (!assigned[static_cast<std::size_t>(v)] &&
          problem.domains[static_cast<std::size_t>(v)].size() < best_size) {
        best = v;
        best_size = problem.domains[static_cast<std::size_t>(v)].size();
      }
    }
    return best;
  };
  auto undo = [&](Frame& frame) {
    for (auto& [other, dom] : frame.saved) {
      problem.domains[static_cast<std::size_t>(other)] = std::move(dom);
    }
    frame.saved.clear();
    assigned[static_cast<std::size_t>(frame.variable)] = 0;
  };

  std::vector<Frame> stack;
  stack.push_back({pick_variable(), 0, {}});
  if (stack.back().variable < 0) return true;  // no variables at all

  while (!stack.empty()) {
    Frame& frame = stack.back();
    const int var = frame.variable;
    const std::vector<Colour>& domain = problem.domains[static_cast<std::size_t>(var)];
    if (frame.next_value >= domain.size()) {
      stack.pop_back();
      if (!stack.empty()) undo(stack.back());
      continue;
    }
    const Colour value = domain[frame.next_value++];
    ++explored;
    assignment[static_cast<std::size_t>(var)] = value;
    assigned[static_cast<std::size_t>(var)] = 1;

    bool dead = false;
    for (const CompatiblePair& pair : problem.incident[static_cast<std::size_t>(var)]) {
      const int other = pair.a == var ? pair.b : pair.a;
      if (other == var) {
        if (!consistent(pair, value, value)) dead = true;
        continue;
      }
      if (assigned[static_cast<std::size_t>(other)]) {
        const Colour other_value = assignment[static_cast<std::size_t>(other)];
        const bool ok = pair.a == var ? consistent(pair, value, other_value)
                                      : consistent(pair, other_value, value);
        if (!ok) dead = true;
        continue;
      }
      std::vector<Colour>& dom = problem.domains[static_cast<std::size_t>(other)];
      std::vector<Colour> kept;
      bool shrank = false;
      for (Colour candidate : dom) {
        const bool ok = pair.a == var ? consistent(pair, value, candidate)
                                      : consistent(pair, candidate, value);
        if (ok) {
          kept.push_back(candidate);
        } else {
          shrank = true;
        }
      }
      if (shrank) {
        frame.saved.emplace_back(other, std::move(dom));
        dom = std::move(kept);
        if (dom.empty()) dead = true;
      }
      if (dead) break;
    }
    if (dead) {
      // Roll back this value's prunes; the frame then tries its next value.
      undo(frame);
      continue;
    }
    const int next = pick_variable();
    if (next < 0) return true;  // complete assignment
    stack.push_back({next, 0, {}});
  }
  return false;
}

}  // namespace

CspResult solve(const ViewCatalogue& catalogue) {
  Problem problem{catalogue, {}, {}};
  problem.domains.resize(static_cast<std::size_t>(catalogue.size()));
  for (int v = 0; v < catalogue.size(); ++v) {
    // (M1) domain: ⊥ plus the root's incident colours.
    problem.domains[static_cast<std::size_t>(v)].push_back(gk::kNoColour);
    for (Colour c : catalogue.views[static_cast<std::size_t>(v)].colours_at(
             colsys::ColourSystem::root())) {
      problem.domains[static_cast<std::size_t>(v)].push_back(c);
    }
  }
  problem.incident.resize(static_cast<std::size_t>(catalogue.size()));
  for (const CompatiblePair& pair : compatible_pairs(catalogue)) {
    problem.incident[static_cast<std::size_t>(pair.a)].push_back(pair);
    if (pair.b != pair.a) problem.incident[static_cast<std::size_t>(pair.b)].push_back(pair);
  }

  CspResult result;
  std::vector<Colour> assignment(static_cast<std::size_t>(catalogue.size()), gk::kNoColour);
  std::vector<char> assigned(static_cast<std::size_t>(catalogue.size()), 0);
  result.satisfiable = search(problem, assignment, assigned, result.nodes_explored);
  if (result.satisfiable) result.labelling = std::move(assignment);
  return result;
}

std::vector<Colour> induced_labelling(const ViewCatalogue& catalogue,
                                      const local::LocalAlgorithm& algorithm) {
  if (algorithm.running_time() + 1 != catalogue.rho) {
    throw std::invalid_argument("induced_labelling: algorithm radius does not match catalogue");
  }
  std::vector<Colour> out;
  out.reserve(static_cast<std::size_t>(catalogue.size()));
  for (const colsys::ColourSystem& view : catalogue.views) {
    out.push_back(algorithm.evaluate(view));
  }
  return out;
}

std::optional<CompatiblePair> check_labelling(const ViewCatalogue& catalogue,
                                              const std::vector<Colour>& labelling) {
  if (labelling.size() != static_cast<std::size_t>(catalogue.size())) {
    throw std::invalid_argument("check_labelling: size mismatch");
  }
  // (M1).
  for (int v = 0; v < catalogue.size(); ++v) {
    const Colour out = labelling[static_cast<std::size_t>(v)];
    if (out == gk::kNoColour) continue;
    const auto incident =
        catalogue.views[static_cast<std::size_t>(v)].colours_at(colsys::ColourSystem::root());
    if (std::find(incident.begin(), incident.end(), out) == incident.end()) {
      return CompatiblePair{v, v, out};
    }
  }
  for (const CompatiblePair& pair : compatible_pairs(catalogue)) {
    if (!consistent(pair, labelling[static_cast<std::size_t>(pair.a)],
                    labelling[static_cast<std::size_t>(pair.b)])) {
      return pair;
    }
  }
  return std::nullopt;
}

}  // namespace dmm::nbhd
